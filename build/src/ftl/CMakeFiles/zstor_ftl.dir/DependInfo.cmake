
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/conv_device.cc" "src/ftl/CMakeFiles/zstor_ftl.dir/conv_device.cc.o" "gcc" "src/ftl/CMakeFiles/zstor_ftl.dir/conv_device.cc.o.d"
  "/root/repo/src/ftl/conv_profile.cc" "src/ftl/CMakeFiles/zstor_ftl.dir/conv_profile.cc.o" "gcc" "src/ftl/CMakeFiles/zstor_ftl.dir/conv_profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/zstor_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/zstor_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/zns/CMakeFiles/zstor_zns.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
