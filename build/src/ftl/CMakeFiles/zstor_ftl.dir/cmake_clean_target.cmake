file(REMOVE_RECURSE
  "libzstor_ftl.a"
)
