file(REMOVE_RECURSE
  "CMakeFiles/zstor_ftl.dir/conv_device.cc.o"
  "CMakeFiles/zstor_ftl.dir/conv_device.cc.o.d"
  "CMakeFiles/zstor_ftl.dir/conv_profile.cc.o"
  "CMakeFiles/zstor_ftl.dir/conv_profile.cc.o.d"
  "libzstor_ftl.a"
  "libzstor_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zstor_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
