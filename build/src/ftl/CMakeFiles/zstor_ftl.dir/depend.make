# Empty dependencies file for zstor_ftl.
# This may be replaced when dependencies are built.
