file(REMOVE_RECURSE
  "CMakeFiles/zstor_zobj.dir/zone_object_store.cc.o"
  "CMakeFiles/zstor_zobj.dir/zone_object_store.cc.o.d"
  "libzstor_zobj.a"
  "libzstor_zobj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zstor_zobj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
