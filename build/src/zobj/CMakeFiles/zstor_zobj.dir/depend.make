# Empty dependencies file for zstor_zobj.
# This may be replaced when dependencies are built.
