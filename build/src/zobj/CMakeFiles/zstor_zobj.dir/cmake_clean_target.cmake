file(REMOVE_RECURSE
  "libzstor_zobj.a"
)
