file(REMOVE_RECURSE
  "CMakeFiles/zstor_sim.dir/stats.cc.o"
  "CMakeFiles/zstor_sim.dir/stats.cc.o.d"
  "libzstor_sim.a"
  "libzstor_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zstor_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
