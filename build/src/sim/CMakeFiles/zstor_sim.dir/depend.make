# Empty dependencies file for zstor_sim.
# This may be replaced when dependencies are built.
