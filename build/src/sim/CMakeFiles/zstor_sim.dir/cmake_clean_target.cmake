file(REMOVE_RECURSE
  "libzstor_sim.a"
)
