# Empty compiler generated dependencies file for zstor_workload.
# This may be replaced when dependencies are built.
