file(REMOVE_RECURSE
  "CMakeFiles/zstor_workload.dir/runner.cc.o"
  "CMakeFiles/zstor_workload.dir/runner.cc.o.d"
  "CMakeFiles/zstor_workload.dir/spec_parser.cc.o"
  "CMakeFiles/zstor_workload.dir/spec_parser.cc.o.d"
  "libzstor_workload.a"
  "libzstor_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zstor_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
