file(REMOVE_RECURSE
  "libzstor_workload.a"
)
