# Empty compiler generated dependencies file for zstor_zns.
# This may be replaced when dependencies are built.
