file(REMOVE_RECURSE
  "CMakeFiles/zstor_zns.dir/profile.cc.o"
  "CMakeFiles/zstor_zns.dir/profile.cc.o.d"
  "CMakeFiles/zstor_zns.dir/zns_device.cc.o"
  "CMakeFiles/zstor_zns.dir/zns_device.cc.o.d"
  "libzstor_zns.a"
  "libzstor_zns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zstor_zns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
