file(REMOVE_RECURSE
  "libzstor_zns.a"
)
