# Empty compiler generated dependencies file for zstor_nand.
# This may be replaced when dependencies are built.
