file(REMOVE_RECURSE
  "libzstor_nand.a"
)
