file(REMOVE_RECURSE
  "CMakeFiles/zstor_nand.dir/flash_array.cc.o"
  "CMakeFiles/zstor_nand.dir/flash_array.cc.o.d"
  "libzstor_nand.a"
  "libzstor_nand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zstor_nand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
