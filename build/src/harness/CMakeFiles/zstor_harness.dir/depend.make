# Empty dependencies file for zstor_harness.
# This may be replaced when dependencies are built.
