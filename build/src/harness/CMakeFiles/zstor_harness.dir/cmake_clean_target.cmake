file(REMOVE_RECURSE
  "libzstor_harness.a"
)
