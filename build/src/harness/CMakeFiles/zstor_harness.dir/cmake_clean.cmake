file(REMOVE_RECURSE
  "CMakeFiles/zstor_harness.dir/experiments.cc.o"
  "CMakeFiles/zstor_harness.dir/experiments.cc.o.d"
  "CMakeFiles/zstor_harness.dir/gc_experiment.cc.o"
  "CMakeFiles/zstor_harness.dir/gc_experiment.cc.o.d"
  "CMakeFiles/zstor_harness.dir/table.cc.o"
  "CMakeFiles/zstor_harness.dir/table.cc.o.d"
  "libzstor_harness.a"
  "libzstor_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zstor_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
