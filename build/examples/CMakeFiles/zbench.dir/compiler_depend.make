# Empty compiler generated dependencies file for zbench.
# This may be replaced when dependencies are built.
