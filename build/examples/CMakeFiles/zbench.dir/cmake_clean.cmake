file(REMOVE_RECURSE
  "CMakeFiles/zbench.dir/zbench.cpp.o"
  "CMakeFiles/zbench.dir/zbench.cpp.o.d"
  "zbench"
  "zbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
