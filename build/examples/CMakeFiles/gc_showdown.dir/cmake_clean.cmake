file(REMOVE_RECURSE
  "CMakeFiles/gc_showdown.dir/gc_showdown.cpp.o"
  "CMakeFiles/gc_showdown.dir/gc_showdown.cpp.o.d"
  "gc_showdown"
  "gc_showdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_showdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
