# Empty compiler generated dependencies file for gc_showdown.
# This may be replaced when dependencies are built.
