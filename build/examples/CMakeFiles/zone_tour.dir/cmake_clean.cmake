file(REMOVE_RECURSE
  "CMakeFiles/zone_tour.dir/zone_tour.cpp.o"
  "CMakeFiles/zone_tour.dir/zone_tour.cpp.o.d"
  "zone_tour"
  "zone_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zone_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
