# Empty dependencies file for zone_tour.
# This may be replaced when dependencies are built.
