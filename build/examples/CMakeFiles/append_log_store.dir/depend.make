# Empty dependencies file for append_log_store.
# This may be replaced when dependencies are built.
