file(REMOVE_RECURSE
  "CMakeFiles/append_log_store.dir/append_log_store.cpp.o"
  "CMakeFiles/append_log_store.dir/append_log_store.cpp.o.d"
  "append_log_store"
  "append_log_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/append_log_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
