# CMake generated Testfile for 
# Source directory: /root/repo/tests/nand
# Build directory: /root/repo/build/tests/nand
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/nand/flash_array_test[1]_include.cmake")
