# Empty dependencies file for flash_array_test.
# This may be replaced when dependencies are built.
