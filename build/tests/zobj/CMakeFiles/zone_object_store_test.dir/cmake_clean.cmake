file(REMOVE_RECURSE
  "CMakeFiles/zone_object_store_test.dir/zone_object_store_test.cc.o"
  "CMakeFiles/zone_object_store_test.dir/zone_object_store_test.cc.o.d"
  "zone_object_store_test"
  "zone_object_store_test.pdb"
  "zone_object_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zone_object_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
