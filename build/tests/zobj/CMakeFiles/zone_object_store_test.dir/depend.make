# Empty dependencies file for zone_object_store_test.
# This may be replaced when dependencies are built.
