# CMake generated Testfile for 
# Source directory: /root/repo/tests/ftl
# Build directory: /root/repo/build/tests/ftl
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ftl/conv_device_test[1]_include.cmake")
include("/root/repo/build/tests/ftl/conv_trim_test[1]_include.cmake")
