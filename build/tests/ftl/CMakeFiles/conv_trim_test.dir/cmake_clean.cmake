file(REMOVE_RECURSE
  "CMakeFiles/conv_trim_test.dir/conv_trim_test.cc.o"
  "CMakeFiles/conv_trim_test.dir/conv_trim_test.cc.o.d"
  "conv_trim_test"
  "conv_trim_test.pdb"
  "conv_trim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_trim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
