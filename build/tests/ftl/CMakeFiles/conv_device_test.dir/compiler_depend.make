# Empty compiler generated dependencies file for conv_device_test.
# This may be replaced when dependencies are built.
