# Empty compiler generated dependencies file for zns_sweep_test.
# This may be replaced when dependencies are built.
