file(REMOVE_RECURSE
  "CMakeFiles/zns_sweep_test.dir/zns_sweep_test.cc.o"
  "CMakeFiles/zns_sweep_test.dir/zns_sweep_test.cc.o.d"
  "zns_sweep_test"
  "zns_sweep_test.pdb"
  "zns_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zns_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
