file(REMOVE_RECURSE
  "CMakeFiles/zns_state_machine_test.dir/zns_state_machine_test.cc.o"
  "CMakeFiles/zns_state_machine_test.dir/zns_state_machine_test.cc.o.d"
  "zns_state_machine_test"
  "zns_state_machine_test.pdb"
  "zns_state_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zns_state_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
