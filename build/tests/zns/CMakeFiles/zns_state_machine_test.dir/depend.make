# Empty dependencies file for zns_state_machine_test.
# This may be replaced when dependencies are built.
