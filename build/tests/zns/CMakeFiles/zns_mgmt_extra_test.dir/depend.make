# Empty dependencies file for zns_mgmt_extra_test.
# This may be replaced when dependencies are built.
