file(REMOVE_RECURSE
  "CMakeFiles/zns_mgmt_extra_test.dir/zns_mgmt_extra_test.cc.o"
  "CMakeFiles/zns_mgmt_extra_test.dir/zns_mgmt_extra_test.cc.o.d"
  "zns_mgmt_extra_test"
  "zns_mgmt_extra_test.pdb"
  "zns_mgmt_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zns_mgmt_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
