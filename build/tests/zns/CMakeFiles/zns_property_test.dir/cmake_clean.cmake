file(REMOVE_RECURSE
  "CMakeFiles/zns_property_test.dir/zns_property_test.cc.o"
  "CMakeFiles/zns_property_test.dir/zns_property_test.cc.o.d"
  "zns_property_test"
  "zns_property_test.pdb"
  "zns_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zns_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
