file(REMOVE_RECURSE
  "CMakeFiles/zns_cost_model_test.dir/zns_cost_model_test.cc.o"
  "CMakeFiles/zns_cost_model_test.dir/zns_cost_model_test.cc.o.d"
  "zns_cost_model_test"
  "zns_cost_model_test.pdb"
  "zns_cost_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zns_cost_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
