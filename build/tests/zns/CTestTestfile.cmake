# CMake generated Testfile for 
# Source directory: /root/repo/tests/zns
# Build directory: /root/repo/build/tests/zns
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/zns/zns_state_machine_test[1]_include.cmake")
include("/root/repo/build/tests/zns/zns_cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/zns/zns_property_test[1]_include.cmake")
include("/root/repo/build/tests/zns/zns_mgmt_extra_test[1]_include.cmake")
include("/root/repo/build/tests/zns/zns_sweep_test[1]_include.cmake")
