# CMake generated Testfile for 
# Source directory: /root/repo/tests/nvme
# Build directory: /root/repo/build/tests/nvme
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/nvme/queue_pair_test[1]_include.cmake")
