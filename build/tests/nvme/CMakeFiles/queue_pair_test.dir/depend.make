# Empty dependencies file for queue_pair_test.
# This may be replaced when dependencies are built.
