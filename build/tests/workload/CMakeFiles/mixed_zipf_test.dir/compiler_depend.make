# Empty compiler generated dependencies file for mixed_zipf_test.
# This may be replaced when dependencies are built.
