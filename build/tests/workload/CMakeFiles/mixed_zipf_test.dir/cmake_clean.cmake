file(REMOVE_RECURSE
  "CMakeFiles/mixed_zipf_test.dir/mixed_zipf_test.cc.o"
  "CMakeFiles/mixed_zipf_test.dir/mixed_zipf_test.cc.o.d"
  "mixed_zipf_test"
  "mixed_zipf_test.pdb"
  "mixed_zipf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_zipf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
