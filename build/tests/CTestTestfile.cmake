# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("nand")
subdirs("nvme")
subdirs("zns")
subdirs("hostif")
subdirs("workload")
subdirs("calibration")
subdirs("ftl")
subdirs("zobj")
subdirs("integration")
