file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_reqsize.dir/bench_fig3_reqsize.cc.o"
  "CMakeFiles/bench_fig3_reqsize.dir/bench_fig3_reqsize.cc.o.d"
  "bench_fig3_reqsize"
  "bench_fig3_reqsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_reqsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
