# Empty dependencies file for bench_fig3_reqsize.
# This may be replaced when dependencies are built.
