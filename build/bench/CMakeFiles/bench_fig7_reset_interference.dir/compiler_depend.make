# Empty compiler generated dependencies file for bench_fig7_reset_interference.
# This may be replaced when dependencies are built.
