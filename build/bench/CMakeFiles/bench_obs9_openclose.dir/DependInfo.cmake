
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_obs9_openclose.cc" "bench/CMakeFiles/bench_obs9_openclose.dir/bench_obs9_openclose.cc.o" "gcc" "bench/CMakeFiles/bench_obs9_openclose.dir/bench_obs9_openclose.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/zstor_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/zstor_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/zns/CMakeFiles/zstor_zns.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/zstor_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/zstor_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zstor_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
