file(REMOVE_RECURSE
  "CMakeFiles/bench_obs9_openclose.dir/bench_obs9_openclose.cc.o"
  "CMakeFiles/bench_obs9_openclose.dir/bench_obs9_openclose.cc.o.d"
  "bench_obs9_openclose"
  "bench_obs9_openclose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obs9_openclose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
