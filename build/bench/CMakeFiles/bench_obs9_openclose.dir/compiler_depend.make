# Empty compiler generated dependencies file for bench_obs9_openclose.
# This may be replaced when dependencies are built.
