file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_qd_curves.dir/bench_fig8_qd_curves.cc.o"
  "CMakeFiles/bench_fig8_qd_curves.dir/bench_fig8_qd_curves.cc.o.d"
  "bench_fig8_qd_curves"
  "bench_fig8_qd_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_qd_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
