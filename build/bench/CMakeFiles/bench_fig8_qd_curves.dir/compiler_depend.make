# Empty compiler generated dependencies file for bench_fig8_qd_curves.
# This may be replaced when dependencies are built.
