file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_env.dir/bench_table2_env.cc.o"
  "CMakeFiles/bench_table2_env.dir/bench_table2_env.cc.o.d"
  "bench_table2_env"
  "bench_table2_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
