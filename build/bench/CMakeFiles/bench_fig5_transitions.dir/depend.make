# Empty dependencies file for bench_fig5_transitions.
# This may be replaced when dependencies are built.
