file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_gc_interference.dir/bench_fig6_gc_interference.cc.o"
  "CMakeFiles/bench_fig6_gc_interference.dir/bench_fig6_gc_interference.cc.o.d"
  "bench_fig6_gc_interference"
  "bench_fig6_gc_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_gc_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
