file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_emulators.dir/bench_sec4_emulators.cc.o"
  "CMakeFiles/bench_sec4_emulators.dir/bench_sec4_emulators.cc.o.d"
  "bench_sec4_emulators"
  "bench_sec4_emulators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_emulators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
