// Zone state machine tests: the Fig.-1 transitions, resource limits, and
// write-pointer semantics of the ZNS command set.
#include <gtest/gtest.h>

#include "zns_test_util.h"

namespace zstor::zns {
namespace {

using nvme::Status;
using nvme::ZoneAction;
using zstor::zns::testing::Harness;
using zstor::zns::testing::QuietTiny;

TEST(ZnsStateMachine, AllZonesStartEmpty) {
  Harness h(QuietTiny());
  for (std::uint32_t z = 0; z < h.dev.info().num_zones; ++z) {
    EXPECT_EQ(h.dev.GetZoneState(z), ZoneState::kEmpty);
    EXPECT_EQ(h.dev.ZoneWrittenBytes(z), 0u);
  }
  EXPECT_EQ(h.dev.open_zone_count(), 0u);
  EXPECT_EQ(h.dev.active_zone_count(), 0u);
}

TEST(ZnsStateMachine, WriteImplicitlyOpensAnEmptyZone) {
  Harness h(QuietTiny());
  EXPECT_TRUE(h.Write(0, 0, 1).ok());
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kImplicitlyOpened);
  EXPECT_EQ(h.dev.open_zone_count(), 1u);
  EXPECT_EQ(h.dev.active_zone_count(), 1u);
  EXPECT_EQ(h.dev.counters().implicit_opens, 1u);
}

TEST(ZnsStateMachine, AppendImplicitlyOpensAnEmptyZone) {
  Harness h(QuietTiny());
  auto c = h.Append(2, 1);
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(c.result_lba, h.dev.ZoneStartLba(2));
  EXPECT_EQ(h.dev.GetZoneState(2), ZoneState::kImplicitlyOpened);
}

TEST(ZnsStateMachine, ExplicitOpenThenWrite) {
  Harness h(QuietTiny());
  EXPECT_TRUE(h.Open(1).ok());
  EXPECT_EQ(h.dev.GetZoneState(1), ZoneState::kExplicitlyOpened);
  EXPECT_EQ(h.dev.counters().explicit_opens, 1u);
  EXPECT_TRUE(h.Write(1, 0, 4).ok());
  EXPECT_EQ(h.dev.GetZoneState(1), ZoneState::kExplicitlyOpened);
  EXPECT_EQ(h.dev.counters().implicit_opens, 0u);
}

TEST(ZnsStateMachine, OpenOfImplicitlyOpenedZonePinsIt) {
  Harness h(QuietTiny());
  EXPECT_TRUE(h.Write(0, 0, 1).ok());
  EXPECT_TRUE(h.Open(0).ok());
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kExplicitlyOpened);
  EXPECT_EQ(h.dev.open_zone_count(), 1u);  // no double count
}

TEST(ZnsStateMachine, CloseWrittenZoneKeepsItActive) {
  Harness h(QuietTiny());
  EXPECT_TRUE(h.Write(0, 0, 1).ok());
  EXPECT_TRUE(h.Close(0).ok());
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kClosed);
  EXPECT_EQ(h.dev.open_zone_count(), 0u);
  EXPECT_EQ(h.dev.active_zone_count(), 1u);
}

TEST(ZnsStateMachine, CloseUnwrittenOpenZoneReturnsItToEmpty) {
  Harness h(QuietTiny());
  EXPECT_TRUE(h.Open(0).ok());
  EXPECT_TRUE(h.Close(0).ok());
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kEmpty);
  EXPECT_EQ(h.dev.active_zone_count(), 0u);
}

TEST(ZnsStateMachine, CloseOfClosedZoneIsANoOp) {
  Harness h(QuietTiny());
  EXPECT_TRUE(h.Write(0, 0, 1).ok());
  EXPECT_TRUE(h.Close(0).ok());
  EXPECT_TRUE(h.Close(0).ok());
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kClosed);
}

TEST(ZnsStateMachine, CloseOfEmptyZoneIsAnError) {
  Harness h(QuietTiny());
  EXPECT_EQ(h.Close(0).status, Status::kZoneInvalidStateTransition);
}

TEST(ZnsStateMachine, WritingToCapacityMakesZoneFullAndReleasesResources) {
  Harness h(QuietTiny());
  h.FillZone(0);
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kFull);
  EXPECT_EQ(h.dev.open_zone_count(), 0u);
  EXPECT_EQ(h.dev.active_zone_count(), 0u);
  EXPECT_EQ(h.dev.ZoneWrittenBytes(0), h.dev.profile().zone_cap_bytes);
}

TEST(ZnsStateMachine, WriteToFullZoneFails) {
  Harness h(QuietTiny());
  h.FillZone(0);
  EXPECT_EQ(h.Write(0, 0, 1).status, Status::kZoneIsFull);
}

TEST(ZnsStateMachine, AppendToFullZoneFails) {
  Harness h(QuietTiny());
  h.FillZone(0);
  EXPECT_EQ(h.Append(0, 1).status, Status::kZoneIsFull);
}

TEST(ZnsStateMachine, WriteNotAtWritePointerFails) {
  Harness h(QuietTiny());
  EXPECT_TRUE(h.Write(0, 0, 4).ok());
  EXPECT_EQ(h.Write(0, 8, 1).status, Status::kZoneInvalidWrite);  // gap
  EXPECT_EQ(h.Write(0, 2, 1).status, Status::kZoneInvalidWrite);  // rewind
  EXPECT_TRUE(h.Write(0, 4, 1).ok());  // exactly at WP
}

TEST(ZnsStateMachine, WriteBeyondZoneCapacityFails) {
  Harness h(QuietTiny());
  std::uint64_t cap = h.dev.info().zone_cap_lbas;
  EXPECT_EQ(h.Write(0, cap - 1, 2).status, Status::kZoneBoundaryError);
}

TEST(ZnsStateMachine, AppendBeyondRemainingCapacityFails) {
  Harness h(QuietTiny());
  std::uint64_t cap = h.dev.info().zone_cap_lbas;
  EXPECT_TRUE(h.Append(0, static_cast<std::uint32_t>(cap - 1)).ok());
  EXPECT_EQ(h.Append(0, 2).status, Status::kZoneBoundaryError);
  EXPECT_TRUE(h.Append(0, 1).ok());  // exactly fills
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kFull);
}

TEST(ZnsStateMachine, IoAcrossZoneBoundaryFails) {
  Harness h(QuietTiny());
  std::uint64_t size = h.dev.info().zone_size_lbas;
  auto c = h.Run({.opcode = nvme::Opcode::kRead, .slba = size - 1, .nlb = 2});
  EXPECT_EQ(c.status, Status::kZoneBoundaryError);
}

TEST(ZnsStateMachine, LbaOutOfRangeFails) {
  Harness h(QuietTiny());
  auto c = h.Run({.opcode = nvme::Opcode::kRead,
                  .slba = h.dev.info().capacity_lbas,
                  .nlb = 1});
  EXPECT_EQ(c.status, Status::kLbaOutOfRange);
}

TEST(ZnsStateMachine, ExplicitOpensAreLimitedAndNotEvictable) {
  Harness h(QuietTiny());  // max_open = 3
  EXPECT_TRUE(h.Open(0).ok());
  EXPECT_TRUE(h.Open(1).ok());
  EXPECT_TRUE(h.Open(2).ok());
  EXPECT_EQ(h.Open(3).status, Status::kTooManyOpenZones);
  // An implicit open (write) cannot evict explicitly-opened zones either.
  EXPECT_EQ(h.Write(3, 0, 1).status, Status::kTooManyOpenZones);
}

TEST(ZnsStateMachine, ImplicitOpenEvictsLruImplicitlyOpenedZone) {
  Harness h(QuietTiny());  // max_open = 3
  EXPECT_TRUE(h.Write(0, 0, 1).ok());
  EXPECT_TRUE(h.Write(1, 0, 1).ok());
  EXPECT_TRUE(h.Write(2, 0, 1).ok());
  EXPECT_EQ(h.dev.open_zone_count(), 3u);
  // Fourth implicit open: zone 0 (the LRU) is closed to make room.
  EXPECT_TRUE(h.Write(3, 0, 1).ok());
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kClosed);
  EXPECT_EQ(h.dev.GetZoneState(3), ZoneState::kImplicitlyOpened);
  EXPECT_EQ(h.dev.open_zone_count(), 3u);
  EXPECT_EQ(h.dev.active_zone_count(), 4u);
  EXPECT_EQ(h.dev.counters().implicit_open_evictions, 1u);
}

TEST(ZnsStateMachine, ActiveLimitBlocksNewZones) {
  Harness h(QuietTiny());  // max_active = 5, max_open = 3
  // Activate 5 zones (write one LBA, then close to stay under max_open).
  for (std::uint32_t z = 0; z < 5; ++z) {
    ASSERT_TRUE(h.Write(z, 0, 1).ok());
    ASSERT_TRUE(h.Close(z).ok());
  }
  EXPECT_EQ(h.dev.active_zone_count(), 5u);
  EXPECT_EQ(h.Write(5, 0, 1).status, Status::kTooManyActiveZones);
  EXPECT_EQ(h.Open(5).status, Status::kTooManyActiveZones);
  // Resetting one active zone frees a slot.
  EXPECT_TRUE(h.Reset(0).ok());
  EXPECT_TRUE(h.Write(5, 0, 1).ok());
}

TEST(ZnsStateMachine, ReopeningAClosedZoneNeedsNoActiveSlot) {
  Harness h(QuietTiny());
  for (std::uint32_t z = 0; z < 5; ++z) {
    ASSERT_TRUE(h.Write(z, 0, 1).ok());
    ASSERT_TRUE(h.Close(z).ok());
  }
  // All 5 active slots used, but writing to an already-active zone is fine.
  EXPECT_TRUE(h.WriteAtWp(2, 1).ok());
  EXPECT_EQ(h.dev.GetZoneState(2), ZoneState::kImplicitlyOpened);
}

TEST(ZnsStateMachine, FinishOnEmptyAndFullZonesIsRejected) {
  Harness h(QuietTiny());
  EXPECT_EQ(h.Finish(0).status, Status::kZoneIsEmpty);
  h.FillZone(1);
  EXPECT_EQ(h.Finish(1).status, Status::kZoneIsFull);
}

TEST(ZnsStateMachine, FinishPadsZoneToFull) {
  Harness h(QuietTiny());
  EXPECT_TRUE(h.Write(0, 0, 4).ok());
  EXPECT_TRUE(h.Finish(0).ok());
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kFull);
  EXPECT_EQ(h.dev.ZoneWrittenBytes(0), h.dev.profile().zone_cap_bytes);
  EXPECT_EQ(h.dev.open_zone_count(), 0u);
  EXPECT_EQ(h.dev.active_zone_count(), 0u);
  // The padded region is readable.
  EXPECT_TRUE(h.Read(0, h.dev.info().zone_cap_lbas - 1, 1).ok());
}

TEST(ZnsStateMachine, FinishOfClosedZoneWorks) {
  Harness h(QuietTiny());
  EXPECT_TRUE(h.Write(0, 0, 2).ok());
  EXPECT_TRUE(h.Close(0).ok());
  EXPECT_TRUE(h.Finish(0).ok());
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kFull);
}

TEST(ZnsStateMachine, ResetReturnsZoneToEmpty) {
  Harness h(QuietTiny());
  EXPECT_TRUE(h.Write(0, 0, 8).ok());
  EXPECT_TRUE(h.Reset(0).ok());
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kEmpty);
  EXPECT_EQ(h.dev.ZoneWrittenBytes(0), 0u);
  EXPECT_EQ(h.dev.active_zone_count(), 0u);
  // The zone is immediately rewritable from the start.
  EXPECT_TRUE(h.Write(0, 0, 1).ok());
}

TEST(ZnsStateMachine, ResetOfEmptyZoneSucceeds) {
  Harness h(QuietTiny());
  EXPECT_TRUE(h.Reset(0).ok());
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kEmpty);
}

TEST(ZnsStateMachine, ResetOfFullZoneRecyclesIt) {
  Harness h(QuietTiny());
  h.FillZone(0);
  EXPECT_TRUE(h.Reset(0).ok());
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kEmpty);
  h.FillZone(0);  // full write-reset-write cycle works
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kFull);
}

TEST(ZnsStateMachine, ResetCountsNandErases) {
  Harness h(QuietTiny());
  h.FillZone(0);
  ASSERT_NE(h.dev.flash(), nullptr);
  EXPECT_TRUE(h.Reset(0).ok());
  EXPECT_GT(h.dev.flash()->counters().block_erases, 0u);
}

TEST(ZnsStateMachine, AppendReturnsConsecutiveLbas) {
  Harness h(QuietTiny());
  nvme::Lba expected = h.dev.ZoneStartLba(0);
  for (int i = 0; i < 5; ++i) {
    auto c = h.Append(0, 2);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c.result_lba, expected);
    expected += 2;
  }
}

TEST(ZnsStateMachine, AppendMustTargetZoneStartLba) {
  Harness h(QuietTiny());
  auto c = h.Run({.opcode = nvme::Opcode::kAppend,
                  .slba = h.dev.ZoneStartLba(0) + 1,
                  .nlb = 1});
  EXPECT_EQ(c.status, Status::kInvalidField);
}

TEST(ZnsStateMachine, ReadBeyondWritePointerReturnsDeallocatedData) {
  Harness h(QuietTiny());
  EXPECT_TRUE(h.Write(0, 0, 1).ok());
  EXPECT_TRUE(h.Read(0, 100, 4).ok());  // unwritten: zeroes, still success
}

TEST(ZnsStateMachine, ReadInTheZoneGapSucceeds) {
  Harness h(QuietTiny());
  // LBAs between zone capacity and zone size are addressable, unwritable.
  std::uint64_t gap_lba = h.dev.info().zone_cap_lbas + 1;
  EXPECT_TRUE(h.Read(0, gap_lba, 1).ok());
  EXPECT_EQ(h.Write(0, gap_lba, 1).status, Status::kZoneBoundaryError);
}

TEST(ZnsStateMachine, ErrorCountsAreTracked) {
  Harness h(QuietTiny());
  EXPECT_EQ(h.Close(0).status, Status::kZoneInvalidStateTransition);
  EXPECT_EQ(h.Write(0, 5, 1).status, Status::kZoneInvalidWrite);
  EXPECT_EQ(h.dev.counters().host_rejects, 2u);
  EXPECT_EQ(h.dev.counters().media_errors, 0u);
}

TEST(ZnsStateMachine, DebugFillMatchesRealFillObservably) {
  Harness h(QuietTiny());
  h.FillZone(0);
  h.dev.DebugFillZone(1, h.dev.profile().zone_cap_bytes);
  EXPECT_EQ(h.dev.GetZoneState(0), h.dev.GetZoneState(1));
  EXPECT_EQ(h.dev.ZoneWrittenBytes(0), h.dev.ZoneWrittenBytes(1));
  // Both read and reset behave the same way afterwards.
  EXPECT_TRUE(h.Read(1, 0, 8).ok());
  sim::Time r0 = 0, r1 = 0;
  EXPECT_TRUE(h.Reset(0, &r0).ok());
  EXPECT_TRUE(h.Reset(1, &r1).ok());
  EXPECT_EQ(r0, r1);  // identical occupancy -> identical reset cost
}

TEST(ZnsStateMachine, DebugFillPartialConsumesActiveSlot) {
  Harness h(QuietTiny());
  h.dev.DebugFillZone(0, 1 << 20);
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kClosed);
  EXPECT_EQ(h.dev.active_zone_count(), 1u);
}

TEST(ZnsStateMachine, NamespaceInfoMatchesProfile) {
  Harness h(QuietTiny());
  const auto& i = h.dev.info();
  EXPECT_TRUE(i.zoned);
  EXPECT_EQ(i.num_zones, 16u);
  EXPECT_EQ(i.zone_size_lbas, (4ull << 20) / 4096);
  EXPECT_EQ(i.zone_cap_lbas, (3ull << 20) / 4096);
  EXPECT_EQ(i.max_open_zones, 3u);
  EXPECT_EQ(i.max_active_zones, 5u);
  EXPECT_EQ(i.capacity_lbas, i.zone_size_lbas * 16);
}

TEST(ZnsStateMachine, ReadOnlyZoneServesReadsButRejectsMutation) {
  Harness h(QuietTiny());
  EXPECT_TRUE(h.Write(0, 0, 4).ok());
  h.dev.DebugSetZoneState(0, ZoneState::kReadOnly);
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kReadOnly);
  // Data written before degradation stays readable.
  EXPECT_TRUE(h.Read(0, 0, 4).ok());
  // All mutation is refused.
  EXPECT_EQ(h.WriteAtWp(0, 1).status, Status::kZoneIsReadOnly);
  EXPECT_EQ(h.Append(0, 1).status, Status::kZoneIsReadOnly);
  EXPECT_EQ(h.Open(0).status, Status::kZoneInvalidStateTransition);
  EXPECT_EQ(h.Close(0).status, Status::kZoneInvalidStateTransition);
  EXPECT_EQ(h.Finish(0).status, Status::kZoneInvalidStateTransition);
  EXPECT_EQ(h.Reset(0).status, Status::kZoneInvalidStateTransition);
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kReadOnly);
}

TEST(ZnsStateMachine, OfflineZoneRejectsEvenReads) {
  Harness h(QuietTiny());
  EXPECT_TRUE(h.Write(0, 0, 4).ok());
  h.dev.DebugSetZoneState(0, ZoneState::kOffline);
  // Offline zones lost their data: nothing works, including reads.
  EXPECT_EQ(h.Read(0, 0, 1).status, Status::kZoneIsOffline);
  EXPECT_EQ(h.WriteAtWp(0, 1).status, Status::kZoneIsOffline);
  EXPECT_EQ(h.Append(0, 1).status, Status::kZoneIsOffline);
  EXPECT_EQ(h.Open(0).status, Status::kZoneInvalidStateTransition);
  EXPECT_EQ(h.Close(0).status, Status::kZoneInvalidStateTransition);
  EXPECT_EQ(h.Finish(0).status, Status::kZoneInvalidStateTransition);
  EXPECT_EQ(h.Reset(0).status, Status::kZoneInvalidStateTransition);
}

TEST(ZnsStateMachine, DegradationReleasesOpenAndActiveSlots) {
  Harness h(QuietTiny());
  EXPECT_TRUE(h.Write(0, 0, 1).ok());  // implicitly opened
  EXPECT_EQ(h.dev.open_zone_count(), 1u);
  EXPECT_EQ(h.dev.active_zone_count(), 1u);
  h.dev.DebugSetZoneState(0, ZoneState::kReadOnly);
  // A degraded zone consumes no open/active resources: the slots return
  // to the pool for healthy zones.
  EXPECT_EQ(h.dev.open_zone_count(), 0u);
  EXPECT_EQ(h.dev.active_zone_count(), 0u);
  EXPECT_TRUE(h.Write(1, 0, 1).ok());
  EXPECT_EQ(h.dev.open_zone_count(), 1u);
}

TEST(ZnsStateMachine, DegradedZonesShowInTheZoneReport) {
  Harness h(QuietTiny());
  EXPECT_TRUE(h.Write(0, 0, 2).ok());
  h.dev.DebugSetZoneState(0, ZoneState::kReadOnly);
  h.dev.DebugSetZoneState(1, ZoneState::kOffline);
  nvme::ZoneReportLog log = h.dev.GetZoneReportLog();
  EXPECT_EQ(log.read_only_zones, 1u);
  EXPECT_EQ(log.offline_zones, 1u);
  // The degradation edges count as zone-state-machine transitions.
  EXPECT_GE(h.dev.counters().zone_transitions, 2u);
}

TEST(ZnsStateMachine, Lba512FormatScalesAddressing) {
  Harness h(QuietTiny(), /*lba_bytes=*/512);
  EXPECT_EQ(h.dev.info().zone_size_lbas, (4ull << 20) / 512);
  EXPECT_TRUE(h.Write(0, 0, 8).ok());  // 8 x 512 B = 4 KiB
  EXPECT_EQ(h.dev.ZoneWrittenBytes(0), 4096u);
}

}  // namespace
}  // namespace zstor::zns
