// Log-page tests: the Zone Report log must agree with the zone state
// machine at every step of an open/close/finish/reset lifecycle, the
// SMART log with the device counters, and the Die Utilization log with
// the flash array's accounting — all as free introspection (no virtual
// time, no counter side effects). The JSON renderings are checked with
// the ztrace parser, closing the loop between producer and consumer.
#include <gtest/gtest.h>

#include <string>

#include "zns/zns_device.h"
#include "zns_test_util.h"
#include "ztrace/json_value.h"

namespace zstor::zns {
namespace {

using testing::Harness;
using testing::QuietTiny;
using ztrace::JsonValue;

const nvme::ZoneReportEntry& Entry(const nvme::ZoneReportLog& log,
                                   std::uint32_t zone) {
  return log.zones.at(zone);
}

TEST(ZoneReportLog, FollowsTheStateMachineThroughALifecycle) {
  Harness h(QuietTiny());
  const std::uint32_t lba_bytes = 4096;

  // Fresh device: everything Empty, nothing open or active.
  nvme::ZoneReportLog log = h.dev.GetZoneReportLog();
  EXPECT_EQ(log.num_zones, h.dev.profile().num_zones);
  ASSERT_EQ(log.zones.size(), log.num_zones);
  EXPECT_EQ(log.open_zones, 0u);
  EXPECT_EQ(log.active_zones, 0u);
  EXPECT_EQ(log.max_open, h.dev.profile().max_open_zones);
  EXPECT_EQ(log.max_active, h.dev.profile().max_active_zones);
  for (const auto& e : log.zones) {
    EXPECT_EQ(e.state, "Empty");
    EXPECT_EQ(e.write_pointer, e.zslba);
    EXPECT_DOUBLE_EQ(e.Occupancy(), 0.0);
  }

  // A write implicitly opens zone 0 and advances its write pointer.
  ASSERT_TRUE(h.Write(0, 0, 2).ok());
  log = h.dev.GetZoneReportLog();
  EXPECT_EQ(Entry(log, 0).state, "ImplicitlyOpened");
  EXPECT_EQ(Entry(log, 0).write_pointer, Entry(log, 0).zslba + 2);
  EXPECT_EQ(Entry(log, 0).written_bytes, 2ull * lba_bytes);
  EXPECT_EQ(log.open_zones, 1u);
  EXPECT_EQ(log.active_zones, 1u);

  // Explicit open of zone 1.
  ASSERT_TRUE(h.Open(1).ok());
  log = h.dev.GetZoneReportLog();
  EXPECT_EQ(Entry(log, 1).state, "ExplicitlyOpened");
  EXPECT_EQ(log.open_zones, 2u);
  EXPECT_EQ(log.active_zones, 2u);

  // Closing zone 0 keeps it active but not open.
  ASSERT_TRUE(h.Close(0).ok());
  log = h.dev.GetZoneReportLog();
  EXPECT_EQ(Entry(log, 0).state, "Closed");
  EXPECT_EQ(log.open_zones, 1u);
  EXPECT_EQ(log.active_zones, 2u);

  // Finishing zone 0 pads it to Full: wp jumps, occupancy hits 1.
  ASSERT_TRUE(h.Finish(0).ok());
  log = h.dev.GetZoneReportLog();
  EXPECT_EQ(Entry(log, 0).state, "Full");
  EXPECT_DOUBLE_EQ(Entry(log, 0).Occupancy(), 1.0);
  EXPECT_EQ(log.active_zones, 1u);  // Full zones are no longer active

  // Reset returns it to Empty with a rewound write pointer.
  ASSERT_TRUE(h.Reset(0).ok());
  log = h.dev.GetZoneReportLog();
  EXPECT_EQ(Entry(log, 0).state, "Empty");
  EXPECT_EQ(Entry(log, 0).write_pointer, Entry(log, 0).zslba);
  EXPECT_EQ(Entry(log, 0).written_bytes, 0u);

  // Zone 1 was untouched by all of the above.
  EXPECT_EQ(Entry(log, 1).state, "ExplicitlyOpened");
  EXPECT_EQ(log.open_zones, 1u);
  EXPECT_EQ(log.active_zones, 1u);
}

TEST(ZoneReportLog, StateRawMatchesStateString) {
  Harness h(QuietTiny());
  ASSERT_TRUE(h.Write(0, 0, 1).ok());
  nvme::ZoneReportLog log = h.dev.GetZoneReportLog();
  for (const auto& e : log.zones) {
    EXPECT_EQ(e.state, ToString(static_cast<ZoneState>(e.state_raw)));
  }
}

TEST(SmartLog, CountsZoneManagementAndHostActivity) {
  Harness h(QuietTiny());
  ASSERT_TRUE(h.Write(0, 0, 1).ok());   // implicit open
  ASSERT_TRUE(h.Append(0, 1).ok());
  ASSERT_TRUE(h.Read(0, 0, 1).ok());
  ASSERT_TRUE(h.Open(1).ok());          // explicit open
  ASSERT_TRUE(h.Append(1, 1).ok());     // closing an empty zone == Empty
  ASSERT_TRUE(h.Close(1).ok());
  ASSERT_TRUE(h.Finish(1).ok());
  ASSERT_TRUE(h.Reset(1).ok());

  nvme::SmartLog s = h.dev.GetSmartLog();
  EXPECT_EQ(s.device, "zns");
  EXPECT_EQ(s.host_reads, 1u);
  EXPECT_EQ(s.host_writes, 3u);  // one write + two appends
  EXPECT_EQ(s.bytes_written, 3u * 4096u);
  EXPECT_EQ(s.bytes_read, 4096u);
  EXPECT_EQ(s.zone_implicit_opens, 1u);
  EXPECT_EQ(s.zone_explicit_opens, 1u);
  EXPECT_EQ(s.zone_closes, 1u);
  EXPECT_EQ(s.zone_finishes, 1u);
  EXPECT_EQ(s.zone_resets, 1u);
  EXPECT_GE(s.zone_transitions, 4u);
  EXPECT_EQ(s.host_rejects, 0u);
  EXPECT_EQ(s.media_errors, 0u);
  // Host-managed placement: ZNS never programs more than the host wrote.
  EXPECT_DOUBLE_EQ(s.write_amplification, 1.0);

  // Introspection is free: taking a log page bumps no counters.
  nvme::SmartLog again = h.dev.GetSmartLog();
  EXPECT_EQ(again.host_reads, s.host_reads);
  EXPECT_EQ(again.zone_transitions, s.zone_transitions);
}

TEST(DieUtilLog, ReflectsFlashActivityWithinBounds) {
  Harness h(testing::QuietZn540());
  ASSERT_TRUE(h.Write(0, 0, 8).ok());
  ASSERT_TRUE(h.Read(0, 0, 8).ok());

  nvme::DieUtilLog log = h.dev.GetDieUtilLog();
  EXPECT_EQ(log.elapsed_ns, static_cast<std::uint64_t>(h.sim.now()));
  ASSERT_FALSE(log.dies.empty());
  std::uint64_t programs = 0, reads = 0, busy = 0;
  for (const auto& d : log.dies) {
    EXPECT_GE(d.utilization, 0.0);
    EXPECT_LE(d.utilization, 1.0);
    programs += d.programs;
    reads += d.reads;
    busy += d.busy_ns;
  }
  const nand::FlashCounters& fc = h.dev.flash()->counters();
  EXPECT_EQ(programs, fc.page_programs);
  EXPECT_EQ(reads, fc.page_reads);
  EXPECT_GT(busy, 0u);
}

TEST(LogPageJson, RendersParseableDocuments) {
  Harness h(QuietTiny());
  ASSERT_TRUE(h.Write(0, 0, 1).ok());

  auto smart = JsonValue::Parse(h.dev.GetSmartLog().ToJson());
  ASSERT_TRUE(smart.has_value());
  EXPECT_EQ(smart->StringOr("device", ""), "zns");
  EXPECT_DOUBLE_EQ(smart->NumberOr("host_writes", -1), 1.0);

  auto report = JsonValue::Parse(h.dev.GetZoneReportLog().ToJson());
  ASSERT_TRUE(report.has_value());
  const JsonValue* zones = report->Find("zones");
  ASSERT_NE(zones, nullptr);
  ASSERT_TRUE(zones->is_array());
  EXPECT_EQ(zones->array().size(), h.dev.profile().num_zones);
  EXPECT_EQ(zones->array().front().StringOr("state", ""),
            "ImplicitlyOpened");

  auto dies = JsonValue::Parse(h.dev.GetDieUtilLog().ToJson());
  ASSERT_TRUE(dies.has_value());
  EXPECT_NE(dies->Find("dies"), nullptr);
}

}  // namespace
}  // namespace zstor::zns
