// Device cost-model tests on the calibrated (noise-free) ZN540 profile:
// each paper-measured constant, exercised through the public command set.
// Host-stack overheads are NOT included here (these are device-internal
// latencies); the calibration_test adds the host stack and checks the
// paper's end-to-end numbers.
#include <gtest/gtest.h>

#include "zns_test_util.h"

namespace zstor::zns {
namespace {

using sim::Microseconds;
using sim::Milliseconds;
using sim::Time;
using sim::ToMicroseconds;
using sim::ToMilliseconds;
using zstor::zns::testing::Harness;
using zstor::zns::testing::QuietZn540;

TEST(ZnsCostModel, Write4kQd1DeviceLatency) {
  Harness h(QuietZn540());
  sim::Time lat = 0;
  ASSERT_TRUE(h.Write(0, 0, 1, &lat).ok());
  // First write pays the implicit-open penalty; measure the second.
  ASSERT_TRUE(h.WriteAtWp(0, 1, &lat).ok());
  // fcp.write (5.37) + post.write_fixed (3.7) + DMA 4 KiB (1.28) = 10.35 us
  EXPECT_NEAR(ToMicroseconds(lat), 10.35, 0.1);
}

TEST(ZnsCostModel, Append4kQd1DeviceLatency) {
  Harness h(QuietZn540());
  sim::Time lat = 0;
  ASSERT_TRUE(h.Append(0, 1, &lat).ok());
  ASSERT_TRUE(h.Append(0, 1, &lat).ok());
  // fcp.append (7.58) + post (3.7) + substripe (2.4) + DMA (1.28) = 14.96
  EXPECT_NEAR(ToMicroseconds(lat), 14.96, 0.1);
}

TEST(ZnsCostModel, Append8kIsFasterThanAppend4k) {
  Harness h(QuietZn540());
  sim::Time lat4 = 0, lat8 = 0;
  ASSERT_TRUE(h.Append(0, 1).ok());
  ASSERT_TRUE(h.Append(0, 1, &lat4).ok());
  ASSERT_TRUE(h.Append(0, 2, &lat8).ok());
  // Observation #3: doubling the append size slightly improves latency.
  EXPECT_LT(lat8, lat4);
}

TEST(ZnsCostModel, WriteIsFasterThanAppendAtEveryCommonSize) {
  // Observation #4: write latency < append latency across configurations.
  Harness h(QuietZn540());
  ASSERT_TRUE(h.Write(0, 0, 1).ok());
  ASSERT_TRUE(h.Append(1, 1).ok());
  for (std::uint32_t nlb : {1u, 2u, 4u, 8u, 16u, 32u}) {
    sim::Time w = 0, a = 0;
    ASSERT_TRUE(h.WriteAtWp(0, nlb, &w).ok());
    ASSERT_TRUE(h.Append(1, nlb, &a).ok());
    EXPECT_LT(w, a) << "nlb=" << nlb;
  }
}

TEST(ZnsCostModel, SmallLbaFormatRoughlyDoublesSmallWriteLatency) {
  // Observation #1 (Fig. 2a): 512 B requests on the 512 B format vs 4 KiB
  // requests on the 4 KiB format — up to a factor of two.
  Harness h4(QuietZn540(), 4096);
  Harness h512(QuietZn540(), 512);
  sim::Time l4 = 0, l512 = 0;
  ASSERT_TRUE(h4.Write(0, 0, 1).ok());
  ASSERT_TRUE(h4.WriteAtWp(0, 1, &l4).ok());
  ASSERT_TRUE(h512.Write(0, 0, 1).ok());
  ASSERT_TRUE(h512.WriteAtWp(0, 1, &l512).ok());
  double ratio = static_cast<double>(l512) / static_cast<double>(l4);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.2);
}

TEST(ZnsCostModel, FourKOn512FormatStillSlowerButLess) {
  // Fig. 2b: with request sizes that are unit multiples the format overhead
  // shrinks but does not vanish.
  Harness h4(QuietZn540(), 4096);
  Harness h512(QuietZn540(), 512);
  sim::Time l4 = 0, l512 = 0;
  ASSERT_TRUE(h4.Write(0, 0, 1).ok());
  ASSERT_TRUE(h4.WriteAtWp(0, 1, &l4).ok());
  ASSERT_TRUE(h512.Write(0, 0, 8).ok());
  ASSERT_TRUE(h512.WriteAtWp(0, 8, &l512).ok());
  double ratio = static_cast<double>(l512) / static_cast<double>(l4);
  EXPECT_GT(ratio, 1.1);
  EXPECT_LT(ratio, 1.6);
}

TEST(ZnsCostModel, ImplicitOpenPenaltyOnFirstWrite) {
  Harness h(QuietZn540());
  sim::Time first = 0, second = 0;
  ASSERT_TRUE(h.Write(0, 0, 1, &first).ok());
  ASSERT_TRUE(h.WriteAtWp(0, 1, &second).ok());
  // Observation #9: +2.02 us on the first write to an implicitly opened
  // zone.
  EXPECT_NEAR(ToMicroseconds(first - second), 2.02, 0.05);
}

TEST(ZnsCostModel, ImplicitOpenPenaltyOnFirstAppend) {
  Harness h(QuietZn540());
  sim::Time first = 0, second = 0;
  ASSERT_TRUE(h.Append(0, 1, &first).ok());
  ASSERT_TRUE(h.Append(0, 1, &second).ok());
  EXPECT_NEAR(ToMicroseconds(first - second), 2.83, 0.05);
}

TEST(ZnsCostModel, ExplicitOpenAndCloseCosts) {
  Harness h(QuietZn540());
  sim::Time open = 0, close = 0;
  ASSERT_TRUE(h.Open(0, &open).ok());
  ASSERT_TRUE(h.Write(0, 0, 1).ok());
  ASSERT_TRUE(h.Close(0, &close).ok());
  // Observation #9: ~9.56 us open / ~11.01 us close end-to-end; the device
  // share here excludes the ~1 us host stack.
  EXPECT_NEAR(ToMicroseconds(open), 8.55, 0.05);
  EXPECT_NEAR(ToMicroseconds(close), 10.0, 0.05);
}

TEST(ZnsCostModel, ReadLatencyIsNandBound) {
  Harness h(QuietZn540());
  ASSERT_TRUE(h.Write(0, 0, 4).ok());
  // Let the NAND drain finish so the read hits flash, not the buffer.
  h.sim.RunUntil(h.sim.now() + sim::Milliseconds(10));
  sim::Time lat = 0;
  ASSERT_TRUE(h.Read(0, 0, 1, &lat).ok());
  // fcp.read (2.36) + tR (68) + bus (0.8) + post (0.5) + DMA (1.28) ~ 73 us
  EXPECT_NEAR(ToMicroseconds(lat), 73.0, 1.5);
}

TEST(ZnsCostModel, BufferedReadIsFast) {
  Harness h(QuietZn540());
  // A 4 KiB write leaves a partial NAND page in the write-back buffer;
  // reading it back immediately is served from DRAM.
  ASSERT_TRUE(h.Write(0, 0, 1).ok());
  sim::Time lat = 0;
  ASSERT_TRUE(h.Read(0, 0, 1, &lat).ok());
  EXPECT_LT(ToMicroseconds(lat), 10.0);
}

TEST(ZnsCostModel, LargeReadFansOutAcrossDies) {
  Harness h(QuietZn540());
  // 256 KiB of data spans 16 NAND pages on 16 distinct dies.
  ASSERT_TRUE(h.Write(0, 0, 64).ok());
  h.sim.RunUntil(h.sim.now() + sim::Milliseconds(10));
  sim::Time lat = 0;
  ASSERT_TRUE(h.Read(0, 0, 64, &lat).ok());
  // Parallel page reads: far cheaper than 16 serial tR (16 x 68 us).
  EXPECT_LT(ToMicroseconds(lat), 200.0);
  EXPECT_GT(ToMicroseconds(lat), 68.0);
}

// ---- reset model (Fig. 5a) ------------------------------------------

double ResetMsAtOccupancy(double occ, bool finished) {
  Harness h(QuietZn540());
  std::uint64_t cap = h.dev.profile().zone_cap_bytes;
  auto bytes = static_cast<std::uint64_t>(occ * static_cast<double>(cap));
  bytes -= bytes % 4096;
  h.dev.DebugFillZone(7, bytes);
  if (finished && bytes < cap) {
    EXPECT_TRUE(h.Finish(7).ok());
  }
  sim::Time lat = 0;
  EXPECT_TRUE(h.Reset(7, &lat).ok());
  return ToMilliseconds(lat);
}

TEST(ZnsCostModel, ResetOfHalfFullZoneCosts11_6ms) {
  EXPECT_NEAR(ResetMsAtOccupancy(0.5, false), 11.60, 0.4);
}

TEST(ZnsCostModel, ResetOfFullZoneCosts16_19ms) {
  EXPECT_NEAR(ResetMsAtOccupancy(1.0, false), 16.19, 0.5);
}

TEST(ZnsCostModel, ResetCostGrowsWithOccupancy) {
  double prev = 0;
  for (double occ : {0.0625, 0.125, 0.25, 0.5, 1.0}) {
    double ms = ResetMsAtOccupancy(occ, false);
    EXPECT_GT(ms, prev) << "occ=" << occ;
    prev = ms;
  }
}

TEST(ZnsCostModel, ResetOfEmptyZoneIsCheap) {
  Harness h(QuietZn540());
  sim::Time lat = 0;
  ASSERT_TRUE(h.Reset(3, &lat).ok());
  EXPECT_LT(ToMicroseconds(lat), 100.0);
}

TEST(ZnsCostModel, FinishedZoneResetCostsMore) {
  // Observation #10: resetting a half-full zone takes ~3.08 ms less than
  // resetting the same zone after a finish.
  double plain = ResetMsAtOccupancy(0.5, false);
  double finished = ResetMsAtOccupancy(0.5, true);
  EXPECT_NEAR(finished - plain, 3.08, 0.3);
}

// ---- finish model (Fig. 5b) ------------------------------------------

double FinishMsAtOccupancy(double occ) {
  Harness h(QuietZn540());
  std::uint64_t cap = h.dev.profile().zone_cap_bytes;
  auto bytes = static_cast<std::uint64_t>(occ * static_cast<double>(cap));
  bytes -= bytes % 4096;
  if (bytes == 0) bytes = 4096;
  if (bytes >= cap) bytes = cap - 4096;
  h.dev.DebugFillZone(9, bytes);
  sim::Time lat = 0;
  EXPECT_TRUE(h.Finish(9, &lat).ok());
  return ToMilliseconds(lat);
}

TEST(ZnsCostModel, FinishOfNearlyEmptyZoneCostsNearlyASecond) {
  EXPECT_NEAR(FinishMsAtOccupancy(0.0), 907.51, 25.0);
}

TEST(ZnsCostModel, FinishOfNearlyFullZoneIsCheap) {
  EXPECT_NEAR(FinishMsAtOccupancy(1.0), 3.07, 0.3);
}

TEST(ZnsCostModel, FinishCostDecreasesLinearlyWithOccupancy) {
  // Fig. 5b: latency falls linearly as occupancy rises.
  double f0 = FinishMsAtOccupancy(0.0);
  double f25 = FinishMsAtOccupancy(0.25);
  double f50 = FinishMsAtOccupancy(0.50);
  double f100 = FinishMsAtOccupancy(1.0);
  EXPECT_GT(f0, f25);
  EXPECT_GT(f25, f50);
  EXPECT_GT(f50, f100);
  // Linearity: the 0->25% drop matches the 25->50% drop within 5%.
  EXPECT_NEAR((f0 - f25) / (f25 - f50), 1.0, 0.05);
  // The paper's ~295x ratio between the extremes.
  EXPECT_NEAR(f0 / f100, 295.0, 45.0);
}

// ---- emulator profiles (§IV) -----------------------------------------

TEST(ZnsCostModel, FemuLikeProfileHasNoLatencyModel) {
  Harness h(FemuLikeProfile());
  sim::Time w = 0, a = 0, r = 0;
  ASSERT_TRUE(h.Write(0, 0, 1, &w).ok());
  ASSERT_TRUE(h.Append(1, 1, &a).ok());
  ASSERT_TRUE(h.Read(0, 0, 1, &r).ok());
  // Everything is "as fast as the host permits": ~sub-microsecond.
  EXPECT_LT(ToMicroseconds(w), 2.0);
  EXPECT_LT(ToMicroseconds(a), 2.0);
  EXPECT_LT(ToMicroseconds(r), 2.0);
  sim::Time reset = 0, fin = 0;
  ASSERT_TRUE(h.Finish(0, &fin).ok());
  h.dev.DebugFillZone(5, h.dev.profile().zone_cap_bytes);
  ASSERT_TRUE(h.Reset(5, &reset).ok());
  EXPECT_LT(ToMicroseconds(reset), 70.0);  // no occupancy model
  EXPECT_LT(ToMicroseconds(fin), 70.0);
}

TEST(ZnsCostModel, NvmeVirtLikeProfilePricesAppendAsWrite) {
  Harness h(NvmeVirtLikeProfile());
  sim::Time w = 0, a = 0;
  ASSERT_TRUE(h.Write(0, 0, 1).ok());
  ASSERT_TRUE(h.Append(1, 1).ok());
  ASSERT_TRUE(h.WriteAtWp(0, 1, &w).ok());
  ASSERT_TRUE(h.Append(1, 1, &a).ok());
  // The §IV critique: NVMeVirt cannot represent Observation #4.
  double ratio = static_cast<double>(a) / static_cast<double>(w);
  EXPECT_NEAR(ratio, 1.0, 0.15);
}

TEST(ZnsCostModel, NvmeVirtLikeProfileResetIsOccupancyBlind) {
  Harness h(NvmeVirtLikeProfile());
  h.dev.DebugFillZone(0, h.dev.profile().zone_cap_bytes);
  h.dev.DebugFillZone(1, h.dev.profile().zone_cap_bytes / 2);
  sim::Time full = 0, half = 0;
  ASSERT_TRUE(h.Reset(0, &full).ok());
  ASSERT_TRUE(h.Reset(1, &half).ok());
  EXPECT_NEAR(static_cast<double>(full) / static_cast<double>(half), 1.0,
              0.05);
  EXPECT_NEAR(ToMilliseconds(full), 3.5, 0.4);  // static NAND-erase cost
}

}  // namespace
}  // namespace zstor::zns
