// Shared harness for ZNS device tests: issues single commands synchronously
// in virtual time and exposes the command helpers by name.
#pragma once

#include "nvme/types.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "zns/zns_device.h"

namespace zstor::zns::testing {

class Harness {
 public:
  explicit Harness(ZnsProfile profile, std::uint32_t lba_bytes = 4096)
      : dev(sim, std::move(profile), lba_bytes) {}

  /// Runs one command to completion; returns its completion and, via
  /// `latency`, the submission-to-completion virtual time.
  nvme::Completion Run(nvme::Command cmd, sim::Time* latency = nullptr) {
    nvme::Completion out;
    sim::Time t0 = 0, t1 = 0;
    auto body = [&]() -> sim::Task<> {
      t0 = sim.now();
      out = co_await dev.Execute(cmd);
      t1 = sim.now();
    };
    auto t = body();
    sim.Run();
    if (latency != nullptr) *latency = t1 - t0;
    return out;
  }

  nvme::Completion Write(std::uint32_t zone, std::uint64_t lba_off,
                         std::uint32_t nlb, sim::Time* lat = nullptr) {
    return Run({.opcode = nvme::Opcode::kWrite,
                .slba = dev.ZoneStartLba(zone) + lba_off,
                .nlb = nlb},
               lat);
  }

  nvme::Completion WriteAtWp(std::uint32_t zone, std::uint32_t nlb,
                             sim::Time* lat = nullptr) {
    return Run({.opcode = nvme::Opcode::kWrite,
                .slba = dev.ZoneWritePointerLba(zone),
                .nlb = nlb},
               lat);
  }

  nvme::Completion Append(std::uint32_t zone, std::uint32_t nlb,
                          sim::Time* lat = nullptr) {
    return Run({.opcode = nvme::Opcode::kAppend,
                .slba = dev.ZoneStartLba(zone),
                .nlb = nlb},
               lat);
  }

  nvme::Completion Read(std::uint32_t zone, std::uint64_t lba_off,
                        std::uint32_t nlb, sim::Time* lat = nullptr) {
    return Run({.opcode = nvme::Opcode::kRead,
                .slba = dev.ZoneStartLba(zone) + lba_off,
                .nlb = nlb},
               lat);
  }

  nvme::Completion Mgmt(std::uint32_t zone, nvme::ZoneAction action,
                        sim::Time* lat = nullptr) {
    return Run({.opcode = nvme::Opcode::kZoneMgmtSend,
                .slba = dev.ZoneStartLba(zone),
                .nlb = 0,
                .zone_action = action},
               lat);
  }

  nvme::Completion Open(std::uint32_t z, sim::Time* lat = nullptr) {
    return Mgmt(z, nvme::ZoneAction::kOpen, lat);
  }
  nvme::Completion Close(std::uint32_t z, sim::Time* lat = nullptr) {
    return Mgmt(z, nvme::ZoneAction::kClose, lat);
  }
  nvme::Completion Finish(std::uint32_t z, sim::Time* lat = nullptr) {
    return Mgmt(z, nvme::ZoneAction::kFinish, lat);
  }
  nvme::Completion Reset(std::uint32_t z, sim::Time* lat = nullptr) {
    return Mgmt(z, nvme::ZoneAction::kReset, lat);
  }

  /// Fills a zone to Full with maximum-size writes (real simulated I/O).
  void FillZone(std::uint32_t zone) {
    std::uint64_t cap = dev.info().zone_cap_lbas;
    std::uint64_t wp = 0;
    while (wp < cap) {
      std::uint32_t n = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(cap - wp, 256));
      ZSTOR_CHECK(Write(zone, wp, n).ok());
      wp += n;
    }
  }

  sim::Simulator sim;
  ZnsDevice dev;
};

/// TinyProfile with noise disabled: cost assertions become exact.
inline ZnsProfile QuietTiny() {
  ZnsProfile p = TinyProfile();
  p.io_sigma = 0;
  p.reset.sigma = 0;
  p.finish.sigma = 0;
  return p;
}

/// ZN540 with noise disabled.
inline ZnsProfile QuietZn540() {
  ZnsProfile p = Zn540Profile();
  p.io_sigma = 0;
  p.reset.sigma = 0;
  p.finish.sigma = 0;
  p.nand_timing.read_sigma = 0;
  p.nand_timing.program_sigma = 0;
  return p;
}

}  // namespace zstor::zns::testing
