// ZNS power-loss crash/recovery tests (DESIGN.md §11): loss semantics
// (flushed data survives byte-exact, the unflushed tail is dropped at
// page granularity), write-pointer rediscovery, in-flight command
// behavior across the outage, recovery-latency charging, and whole-run
// determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/fault_plan.h"
#include "nand/flash_array.h"
#include "sim/task.h"
#include "zns/zns_device.h"
#include "zns_test_util.h"

namespace zstor::zns {
namespace {

using nvme::Opcode;
using nvme::Status;
using testing::Harness;
using testing::QuietTiny;

constexpr std::uint64_t kTag = 0x1000;

/// LBAs per NAND page under the test profile (16 KiB page, 4 KiB LBA).
std::uint32_t LbasPerPage(const Harness& h) {
  return h.dev.profile().nand_geometry.page_bytes / 4096;
}

nvme::Command TaggedAppend(Harness& h, std::uint32_t zone, std::uint32_t nlb,
                           std::uint64_t tag) {
  return {.opcode = Opcode::kAppend,
          .slba = h.dev.ZoneStartLba(zone),
          .nlb = nlb,
          .payload_tag = tag};
}

nvme::Command TaggedRead(Harness& h, std::uint32_t zone, std::uint64_t off,
                         std::uint32_t nlb) {
  return {.opcode = Opcode::kRead,
          .slba = h.dev.ZoneStartLba(zone) + off,
          .nlb = nlb,
          .payload_tag = 1};  // any nonzero value requests tag readback
}

TEST(ZnsCrash, IdleDeviceRecoversCleanly) {
  Harness h(QuietTiny());
  auto body = [&]() -> sim::Task<> { co_await h.dev.CrashNow(); };
  auto t = body();
  h.sim.Run();

  const ZnsCounters& c = h.dev.counters();
  EXPECT_EQ(c.crashes, 1u);
  EXPECT_EQ(c.recoveries, 1u);
  EXPECT_EQ(c.crash_lost_bytes, 0u);
  EXPECT_EQ(c.torn_pages, 0u);
  EXPECT_EQ(h.dev.power_epoch(), 1u);
  // The outage still costs the controller boot.
  EXPECT_GE(h.dev.last_recovery_ns(), h.dev.profile().recovery_boot_cost);
  for (std::uint32_t z = 0; z < h.dev.info().num_zones; ++z) {
    EXPECT_EQ(h.dev.GetZoneState(z), ZoneState::kEmpty);
  }
  // The recovered device accepts I/O again.
  EXPECT_TRUE(h.Append(0, LbasPerPage(h)).ok());
}

TEST(ZnsCrash, FlushedDataSurvivesByteExact) {
  Harness h(QuietTiny());
  const std::uint32_t nlb = 8 * LbasPerPage(h);
  ASSERT_TRUE(h.Run(TaggedAppend(h, 0, nlb, kTag)).ok());
  ASSERT_TRUE(h.Run({.opcode = Opcode::kFlush}).ok());

  auto body = [&]() -> sim::Task<> { co_await h.dev.CrashNow(); };
  auto t = body();
  h.sim.Run();

  // Nothing was volatile: the crash drops zero bytes and the write
  // pointer holds.
  EXPECT_EQ(h.dev.counters().crash_lost_bytes, 0u);
  EXPECT_EQ(h.dev.ZoneWritePointerLba(0), h.dev.ZoneStartLba(0) + nlb);
  nvme::Completion rd = h.Run(TaggedRead(h, 0, 0, nlb));
  ASSERT_TRUE(rd.ok());
  ASSERT_EQ(rd.payload_tags.size(), nlb);
  for (std::uint32_t i = 0; i < nlb; ++i) {
    EXPECT_EQ(rd.payload_tags[i], kTag + i) << "LBA " << i;
  }
}

TEST(ZnsCrash, UnflushedTailIsDroppedAtPageGranularity) {
  Harness h(QuietTiny());
  const std::uint32_t upp = LbasPerPage(h);
  const std::uint32_t nlb = 16 * upp;
  std::uint64_t wp_lbas = 0;
  auto body = [&]() -> sim::Task<> {
    // The append acks once buffered (write-back); its NAND programs are
    // still in flight when the power cut lands. 900 us is mid-flight: 16
    // pages over 4 dies need ~4 x tPROG (433 us each) to all settle, so
    // the crash finds a settled prefix AND a volatile tail.
    nvme::Completion c = co_await h.dev.Execute(TaggedAppend(h, 0, nlb, kTag));
    ZSTOR_CHECK(c.ok());
    co_await h.sim.Delay(sim::Microseconds(900));
    co_await h.dev.CrashNow();
    wp_lbas = h.dev.ZoneWritePointerLba(0) - h.dev.ZoneStartLba(0);
  };
  auto t = body();
  h.sim.Run();

  const ZnsCounters& c = h.dev.counters();
  // The recovered write pointer is the durable prefix: page-aligned, and
  // everything beyond it is accounted as lost.
  EXPECT_EQ(wp_lbas % upp, 0u);
  EXPECT_LT(wp_lbas, nlb);  // the full append cannot have settled yet
  EXPECT_EQ(c.crash_lost_bytes, (nlb - wp_lbas) * 4096u);
  EXPECT_GT(c.crash_lost_bytes, 0u);
  EXPECT_EQ(h.dev.ZoneWrittenBytes(0), wp_lbas * 4096u);
  // Recovery rediscovered the write pointer by scanning the zone.
  EXPECT_GE(c.recovery_zone_scans, 1u);
  EXPECT_GE(h.dev.flash()->counters().recovery_probes, 1u);
  // Whatever survived reads back byte-exact.
  if (wp_lbas > 0) {
    nvme::Completion rd = h.Run(
        TaggedRead(h, 0, 0, static_cast<std::uint32_t>(wp_lbas)));
    ASSERT_TRUE(rd.ok());
    ASSERT_EQ(rd.payload_tags.size(), wp_lbas);
    for (std::uint64_t i = 0; i < wp_lbas; ++i) {
      EXPECT_EQ(rd.payload_tags[i], kTag + i) << "LBA " << i;
    }
  }
  // The zone state was recomputed from the recovered write pointer.
  EXPECT_EQ(h.dev.GetZoneState(0),
            wp_lbas == 0 ? ZoneState::kEmpty : ZoneState::kClosed);
}

TEST(ZnsCrash, PostRecoveryAppendsLandAtTheRecoveredWp) {
  Harness h(QuietTiny());
  const std::uint32_t upp = LbasPerPage(h);
  auto body = [&]() -> sim::Task<> {
    nvme::Completion c =
        co_await h.dev.Execute(TaggedAppend(h, 0, 16 * upp, kTag));
    ZSTOR_CHECK(c.ok());
    co_await h.sim.Delay(sim::Microseconds(900));  // settle a prefix
    co_await h.dev.CrashNow();
  };
  auto t = body();
  h.sim.Run();

  const nvme::Lba recovered_wp = h.dev.ZoneWritePointerLba(0);
  nvme::Completion ap = h.Run(TaggedAppend(h, 0, upp, 0x9000));
  ASSERT_TRUE(ap.ok());
  EXPECT_EQ(ap.result_lba, recovered_wp);
  nvme::Completion rd = h.Run(TaggedRead(
      h, 0, recovered_wp - h.dev.ZoneStartLba(0), upp));
  ASSERT_TRUE(rd.ok());
  ASSERT_EQ(rd.payload_tags.size(), upp);
  for (std::uint32_t i = 0; i < upp; ++i) {
    EXPECT_EQ(rd.payload_tags[i], 0x9000u + i);
  }
}

TEST(ZnsCrash, InFlightAndOutageCommandsFailWithDeviceReset) {
  Harness h(QuietTiny());
  const std::uint32_t upp = LbasPerPage(h);
  nvme::Completion inflight, during_outage, after;
  auto body = [&]() -> sim::Task<> {
    auto submit = [&](nvme::Completion* out) -> sim::Task<> {
      *out = co_await h.dev.Execute(TaggedAppend(h, 1, 4 * upp, kTag));
    };
    sim::Spawn(submit(&inflight));
    co_await h.sim.Delay(100);  // the append is mid-execution
    auto crash = [&]() -> sim::Task<> { co_await h.dev.CrashNow(); };
    sim::Spawn(crash());
    co_await h.sim.Delay(sim::Milliseconds(1));  // inside the boot window
    during_outage = co_await h.dev.Execute(TaggedAppend(h, 1, upp, kTag));
    co_await h.sim.Delay(h.dev.profile().recovery_boot_cost +
                         sim::Milliseconds(5));
    after = co_await h.dev.Execute(TaggedAppend(h, 1, upp, kTag));
  };
  auto t = body();
  h.sim.Run();

  EXPECT_EQ(inflight.status, Status::kDeviceReset);
  EXPECT_EQ(during_outage.status, Status::kDeviceReset);
  EXPECT_TRUE(after.ok());
  EXPECT_GE(h.dev.counters().reset_drops, 2u);
}

TEST(ZnsCrash, ScheduledCrashFiresFromTheFaultPlan) {
  fault::FaultSpec spec;
  std::string err;
  ASSERT_TRUE(fault::ParseFaultSpec("crash=500", &spec, &err)) << err;
  fault::FaultPlan plan{spec};

  Harness h(QuietTiny());
  h.dev.AttachFaultPlan(&plan);
  auto body = [&]() -> sim::Task<> {
    co_await h.sim.Delay(sim::Milliseconds(10));
  };
  auto t = body();
  h.sim.Run();

  EXPECT_EQ(h.dev.counters().crashes, 1u);
  EXPECT_EQ(h.dev.counters().recoveries, 1u);
  EXPECT_EQ(h.dev.power_epoch(), 1u);
}

TEST(ZnsCrash, CrashRecoveryIsDeterministic) {
  auto run = [](ZnsCounters* out, nvme::Lba* wp) {
    Harness h(zns::TinyProfile());  // noise on: determinism must not
                                    // depend on quiet profiles
    auto body = [&]() -> sim::Task<> {
      nvme::Completion c = co_await h.dev.Execute(
          {.opcode = Opcode::kAppend,
           .slba = h.dev.ZoneStartLba(0),
           .nlb = 64,
           .payload_tag = kTag});
      ZSTOR_CHECK(c.ok());
      co_await h.dev.CrashNow();
    };
    auto t = body();
    h.sim.Run();
    *out = h.dev.counters();
    *wp = h.dev.ZoneWritePointerLba(0);
  };
  ZnsCounters a{}, b{};
  nvme::Lba wp_a = 0, wp_b = 0;
  run(&a, &wp_a);
  run(&b, &wp_b);
  EXPECT_EQ(wp_a, wp_b);
  EXPECT_EQ(a.crash_lost_bytes, b.crash_lost_bytes);
  EXPECT_EQ(a.torn_pages, b.torn_pages);
  EXPECT_EQ(a.recovery_ns_total, b.recovery_ns_total);
  EXPECT_EQ(a.recovery_zone_scans, b.recovery_zone_scans);
}

TEST(NandCrash, DiscardTailAndProbeModelTornPrograms) {
  Harness h(QuietTiny());
  nand::FlashArray* flash = h.dev.flash();
  ASSERT_NE(flash, nullptr);
  bool probed[4] = {};
  auto body = [&]() -> sim::Task<> {
    for (std::uint32_t p = 0; p < 4; ++p) {
      co_await flash->ProgramPage({.die = 0, .block = 0, .page = p});
    }
    // Power loss trusted only the first two pages.
    flash->CrashDiscardTail(/*die=*/0, /*block=*/0, /*new_write_ptr=*/2);
    for (std::uint32_t p = 0; p < 4; ++p) {
      probed[p] = co_await flash->ProbePage({.die = 0, .block = 0, .page = p});
    }
  };
  auto t = body();
  h.sim.Run();

  EXPECT_TRUE(probed[0]);
  EXPECT_TRUE(probed[1]);
  EXPECT_FALSE(probed[2]);  // discarded: recovery must not trust it
  EXPECT_FALSE(probed[3]);
  EXPECT_EQ(flash->counters().crash_discarded_pages, 2u);
  EXPECT_EQ(flash->counters().recovery_probes, 4u);
}

}  // namespace
}  // namespace zstor::zns
