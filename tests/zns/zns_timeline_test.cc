// Zone-lifecycle timeline coverage: every host-visible state transition
// a zone goes through must emit a zone_state record, and resets must
// leave a zone.reset window, so a timeline fully replays a zone's life.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "telemetry/telemetry.h"
#include "telemetry/timeline.h"
#include "zns_test_util.h"

namespace zstor::zns {
namespace {

using testing::Harness;
using testing::QuietTiny;

struct TimelineFixture {
  std::string cap;
  Harness h{QuietTiny()};
  telemetry::Telemetry telem;

  TimelineFixture() {
    auto writer = std::make_unique<telemetry::TimelineWriter>(&cap);
    telem.SetTimeline(std::move(writer));
    telem.set_timeline_label("zns-test");
    h.dev.AttachTelemetry(&telem, /*lane=*/3);
  }

  bool Saw(const std::string& needle) const {
    return cap.find(needle) != std::string::npos;
  }
};

TEST(ZnsTimeline, WriteLifecycleEmitsEveryTransition) {
  TimelineFixture f;
  f.h.FillZone(0);  // Empty -> ImplicitlyOpened -> Full
  ASSERT_TRUE(f.h.Reset(0).ok());  // Full -> Empty
  EXPECT_TRUE(f.Saw(
      "\"zone\":0,\"from\":\"Empty\",\"to\":\"ImplicitlyOpened\""));
  EXPECT_TRUE(f.Saw(
      "\"zone\":0,\"from\":\"ImplicitlyOpened\",\"to\":\"Full\""));
  EXPECT_TRUE(f.Saw("\"zone\":0,\"from\":\"Full\",\"to\":\"Empty\""));
  // The reset's whole service window is visible as a background window.
  EXPECT_TRUE(f.Saw("\"kind\":\"zone.reset\""));
  // Device-scoped records carry the attach-time lane.
  EXPECT_TRUE(f.Saw("\"tb\":\"zns-test\",\"lane\":3,\"zone\":0"));
}

TEST(ZnsTimeline, ExplicitOpenCloseFinishTransitions) {
  TimelineFixture f;
  ASSERT_TRUE(f.h.Open(1).ok());
  ASSERT_TRUE(f.h.Write(1, 0, 8).ok());
  ASSERT_TRUE(f.h.Close(1).ok());
  ASSERT_TRUE(f.h.Finish(1).ok());
  EXPECT_TRUE(f.Saw(
      "\"zone\":1,\"from\":\"Empty\",\"to\":\"ExplicitlyOpened\""));
  EXPECT_TRUE(f.Saw(
      "\"zone\":1,\"from\":\"ExplicitlyOpened\",\"to\":\"Closed\""));
  EXPECT_TRUE(f.Saw("\"zone\":1,\"from\":\"Closed\",\"to\":\"Full\""));
}

TEST(ZnsTimeline, NoTimelineMeansNoRecordsAndNoCrash) {
  // Telemetry without a timeline: the emit sites must all gate on the
  // writer's presence.
  Harness h{QuietTiny()};
  telemetry::Telemetry telem;
  h.dev.AttachTelemetry(&telem, 0);
  h.FillZone(0);
  ASSERT_TRUE(h.Reset(0).ok());
  EXPECT_EQ(telem.timeline(), nullptr);
}

TEST(ZnsTimeline, DieActivityIsRecordedAndFlushable) {
  TimelineFixture f;
  f.telem.timeline()->set_die_merge_gap_ns(sim::Microseconds(50));
  f.h.FillZone(0);
  ASSERT_TRUE(f.h.dev.flash() != nullptr);
  f.h.dev.flash()->FlushDieWindows();  // emit windows still open
  EXPECT_TRUE(f.Saw("\"type\":\"die_busy\""));
  EXPECT_TRUE(f.Saw("\"busy_ns\":"));
}

}  // namespace
}  // namespace zstor::zns
