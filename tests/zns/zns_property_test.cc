// Property-based tests: random command sequences against a host-side
// reference model of the zone state machine, parameterized over LBA
// formats and seeds. The device must agree with the model on every status
// code, write pointer, state, and resource count — and its internal
// accounting must stay consistent throughout.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "zns_test_util.h"

namespace zstor::zns {
namespace {

using nvme::Status;
using zstor::zns::testing::Harness;
using zstor::zns::testing::QuietTiny;

/// Host-side reference model: zone states per the ZNS spec, mirrored
/// independently of the device implementation.
class ReferenceModel {
 public:
  explicit ReferenceModel(const ZnsProfile& p, std::uint32_t lba_bytes)
      : p_(p), lba_(lba_bytes), zones_(p.num_zones) {}

  struct RefZone {
    ZoneState state = ZoneState::kEmpty;
    std::uint64_t wp = 0;  // bytes
    std::uint64_t seq = 0;
  };

  Status Write(std::uint32_t z, std::uint64_t off_bytes,
               std::uint64_t bytes) {
    RefZone& zn = zones_[z];
    if (off_bytes + bytes > p_.zone_cap_bytes) {
      return Status::kZoneBoundaryError;
    }
    if (zn.state == ZoneState::kFull) return Status::kZoneIsFull;
    if (off_bytes != zn.wp) return Status::kZoneInvalidWrite;
    if (Status st = EnsureOpen(z); st != Status::kSuccess) return st;
    Advance(z, bytes);
    return Status::kSuccess;
  }

  Status Append(std::uint32_t z, std::uint64_t bytes) {
    RefZone& zn = zones_[z];
    if (zn.state == ZoneState::kFull) return Status::kZoneIsFull;
    if (zn.wp + bytes > p_.zone_cap_bytes) {
      return Status::kZoneBoundaryError;
    }
    if (Status st = EnsureOpen(z); st != Status::kSuccess) return st;
    Advance(z, bytes);
    return Status::kSuccess;
  }

  Status Open(std::uint32_t z) {
    RefZone& zn = zones_[z];
    switch (zn.state) {
      case ZoneState::kExplicitlyOpened:
        return Status::kSuccess;
      case ZoneState::kImplicitlyOpened:
        zn.state = ZoneState::kExplicitlyOpened;
        return Status::kSuccess;
      case ZoneState::kEmpty:
        if (ActiveCount() >= p_.max_active_zones) {
          return Status::kTooManyActiveZones;
        }
        [[fallthrough]];
      case ZoneState::kClosed:
        if (!MakeOpenRoom()) return Status::kTooManyOpenZones;
        zn.state = ZoneState::kExplicitlyOpened;
        zn.seq = ++seq_;
        return Status::kSuccess;
      case ZoneState::kFull:
        return Status::kZoneIsFull;
      default:
        return Status::kZoneInvalidStateTransition;
    }
  }

  Status Close(std::uint32_t z) {
    RefZone& zn = zones_[z];
    if (zn.state == ZoneState::kClosed) return Status::kSuccess;
    if (!IsOpen(zn.state)) return Status::kZoneInvalidStateTransition;
    zn.state = zn.wp == 0 ? ZoneState::kEmpty : ZoneState::kClosed;
    return Status::kSuccess;
  }

  Status Finish(std::uint32_t z) {
    RefZone& zn = zones_[z];
    switch (zn.state) {
      case ZoneState::kEmpty: return Status::kZoneIsEmpty;
      case ZoneState::kFull: return Status::kZoneIsFull;
      case ZoneState::kImplicitlyOpened:
      case ZoneState::kExplicitlyOpened:
      case ZoneState::kClosed:
        zn.state = ZoneState::kFull;
        zn.wp = p_.zone_cap_bytes;
        return Status::kSuccess;
      default:
        return Status::kZoneInvalidStateTransition;
    }
  }

  Status Reset(std::uint32_t z) {
    zones_[z] = RefZone{};
    return Status::kSuccess;
  }

  std::uint32_t OpenCount() const {
    std::uint32_t n = 0;
    for (const auto& z : zones_) n += IsOpen(z.state) ? 1 : 0;
    return n;
  }
  std::uint32_t ActiveCount() const {
    std::uint32_t n = 0;
    for (const auto& z : zones_) n += IsActive(z.state) ? 1 : 0;
    return n;
  }
  const RefZone& zone(std::uint32_t z) const { return zones_[z]; }

 private:
  Status EnsureOpen(std::uint32_t z) {
    RefZone& zn = zones_[z];
    if (IsOpen(zn.state)) return Status::kSuccess;
    if (zn.state == ZoneState::kEmpty &&
        ActiveCount() >= p_.max_active_zones) {
      return Status::kTooManyActiveZones;
    }
    if (!MakeOpenRoom()) return Status::kTooManyOpenZones;
    zn.state = ZoneState::kImplicitlyOpened;
    zn.seq = ++seq_;
    return Status::kSuccess;
  }

  bool MakeOpenRoom() {
    if (OpenCount() < p_.max_open_zones) return true;
    // Evict the LRU implicitly-opened zone, as the device does.
    RefZone* victim = nullptr;
    for (auto& z : zones_) {
      if (z.state == ZoneState::kImplicitlyOpened &&
          (victim == nullptr || z.seq < victim->seq)) {
        victim = &z;
      }
    }
    if (victim == nullptr) return false;
    victim->state = ZoneState::kClosed;
    return true;
  }

  void Advance(std::uint32_t z, std::uint64_t bytes) {
    RefZone& zn = zones_[z];
    zn.wp += bytes;
    if (zn.wp == p_.zone_cap_bytes) zn.state = ZoneState::kFull;
  }

  ZnsProfile p_;
  std::uint32_t lba_;
  std::vector<RefZone> zones_;
  std::uint64_t seq_ = 0;
};

struct Param {
  std::uint32_t lba_bytes;
  std::uint64_t seed;
};

class ZnsPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(ZnsPropertyTest, DeviceAgreesWithReferenceModelUnderRandomOps) {
  const Param param = GetParam();
  Harness h(QuietTiny(), param.lba_bytes);
  ReferenceModel ref(h.dev.profile(), param.lba_bytes);
  sim::Rng rng(param.seed);
  const std::uint32_t zones = h.dev.info().num_zones;
  const std::uint64_t cap_lbas = h.dev.info().zone_cap_lbas;

  for (int step = 0; step < 800; ++step) {
    auto z = static_cast<std::uint32_t>(rng.UniformU64(zones));
    std::uint64_t kind = rng.UniformU64(100);
    Status dev_st;
    Status ref_st;
    if (kind < 35) {  // write at a mostly-valid offset
      std::uint64_t off = rng.UniformU64(4) == 0
                              ? rng.UniformU64(cap_lbas)
                              : h.dev.ZoneWritePointerLba(z) -
                                    h.dev.ZoneStartLba(z);
      auto nlb = static_cast<std::uint32_t>(1 + rng.UniformU64(16));
      if (off + nlb > cap_lbas) continue;  // out-of-cap covered elsewhere
      dev_st = h.Write(z, off, nlb).status;
      ref_st = ref.Write(z, off * param.lba_bytes,
                         static_cast<std::uint64_t>(nlb) * param.lba_bytes);
    } else if (kind < 60) {  // append
      auto nlb = static_cast<std::uint32_t>(1 + rng.UniformU64(16));
      dev_st = h.Append(z, nlb).status;
      ref_st = ref.Append(z, static_cast<std::uint64_t>(nlb) * param.lba_bytes);
    } else if (kind < 70) {  // read (never changes state)
      std::uint64_t off = rng.UniformU64(cap_lbas);
      auto nlb = static_cast<std::uint32_t>(
          1 + rng.UniformU64(std::min<std::uint64_t>(16, cap_lbas - off)));
      EXPECT_TRUE(h.Read(z, off, nlb).ok());
      continue;
    } else if (kind < 78) {
      dev_st = h.Open(z).status;
      ref_st = ref.Open(z);
    } else if (kind < 86) {
      dev_st = h.Close(z).status;
      ref_st = ref.Close(z);
    } else if (kind < 93) {
      dev_st = h.Finish(z).status;
      ref_st = ref.Finish(z);
    } else {
      dev_st = h.Reset(z).status;
      ref_st = ref.Reset(z);
    }

    ASSERT_EQ(dev_st, ref_st)
        << "step " << step << " zone " << z << " kind " << kind;

    // Full-device agreement and internal consistency after every step.
    ASSERT_EQ(h.dev.open_zone_count(), ref.OpenCount());
    ASSERT_EQ(h.dev.active_zone_count(), ref.ActiveCount());
    ASSERT_LE(h.dev.open_zone_count(), h.dev.profile().max_open_zones);
    ASSERT_LE(h.dev.active_zone_count(), h.dev.profile().max_active_zones);
    for (std::uint32_t i = 0; i < zones; ++i) {
      ASSERT_EQ(h.dev.GetZoneState(i), ref.zone(i).state) << "zone " << i;
      ASSERT_EQ(h.dev.ZoneWrittenBytes(i), ref.zone(i).wp) << "zone " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FormatsAndSeeds, ZnsPropertyTest,
    ::testing::Values(Param{4096, 1}, Param{4096, 2}, Param{4096, 3},
                      Param{512, 1}, Param{512, 2}, Param{512, 7},
                      Param{4096, 0xDEADBEEF}, Param{512, 0xDEADBEEF}),
    [](const ::testing::TestParamInfo<Param>& p) {
      return "lba" + std::to_string(p.param.lba_bytes) + "_seed" +
             std::to_string(p.param.seed);
    });

// Degradation property: under random operations interleaved with random
// zone degradations, degraded zones must never hold open/active slots,
// must refuse all mutation, and the device's slot accounting must equal a
// recount from the per-zone states after every step.
TEST(ZnsDegradationProperty, DegradedZonesHoldNoSlotsAndStayDegraded) {
  Harness h(QuietTiny());
  sim::Rng rng(0xD15EA5E);
  const std::uint32_t zones = h.dev.info().num_zones;

  for (int step = 0; step < 600; ++step) {
    auto z = static_cast<std::uint32_t>(rng.UniformU64(zones));
    std::uint64_t kind = rng.UniformU64(100);
    const ZoneState before = h.dev.GetZoneState(z);
    const bool degraded =
        before == ZoneState::kReadOnly || before == ZoneState::kOffline;
    if (kind < 8 && !degraded) {
      h.dev.DebugSetZoneState(z, rng.UniformU64(2) == 0
                                     ? ZoneState::kReadOnly
                                     : ZoneState::kOffline);
    } else if (kind < 40) {
      Status st = h.WriteAtWp(z, 1).status;
      // Range validation runs before the state check, so a degraded zone
      // that froze at full capacity reports the boundary error instead.
      if (before == ZoneState::kReadOnly) {
        ASSERT_TRUE(st == Status::kZoneIsReadOnly ||
                    st == Status::kZoneBoundaryError)
            << ToString(st);
      } else if (before == ZoneState::kOffline) {
        ASSERT_TRUE(st == Status::kZoneIsOffline ||
                    st == Status::kZoneBoundaryError)
            << ToString(st);
      }
    } else if (kind < 65) {
      Status st = h.Append(z, 1).status;
      if (before == ZoneState::kReadOnly) {
        ASSERT_TRUE(st == Status::kZoneIsReadOnly ||
                    st == Status::kZoneBoundaryError)
            << ToString(st);
      } else if (before == ZoneState::kOffline) {
        ASSERT_TRUE(st == Status::kZoneIsOffline ||
                    st == Status::kZoneBoundaryError)
            << ToString(st);
      }
    } else if (kind < 75) {
      Status st = h.Read(z, 0, 1).status;
      if (before == ZoneState::kOffline) {
        ASSERT_EQ(st, Status::kZoneIsOffline);
      } else {
        ASSERT_EQ(st, Status::kSuccess);
      }
    } else {
      auto action = static_cast<nvme::ZoneAction>(
          1 + rng.UniformU64(4));  // open/close/finish/reset
      Status st = h.Mgmt(z, action).status;
      if (degraded) {
        ASSERT_EQ(st, Status::kZoneInvalidStateTransition)
            << "action " << static_cast<int>(action) << " on degraded zone";
      }
    }

    // Degraded zones never recover without device service.
    if (degraded) {
      ASSERT_EQ(h.dev.GetZoneState(z), before) << "step " << step;
    }

    // Slot accounting always equals a recount over zone states, and
    // degraded zones contribute to neither pool.
    std::uint32_t open = 0;
    std::uint32_t active = 0;
    for (std::uint32_t i = 0; i < zones; ++i) {
      ZoneState st = h.dev.GetZoneState(i);
      open += IsOpen(st) ? 1 : 0;
      active += IsActive(st) ? 1 : 0;
      ASSERT_FALSE(IsOpen(st) && (st == ZoneState::kReadOnly ||
                                  st == ZoneState::kOffline));
    }
    ASSERT_EQ(h.dev.open_zone_count(), open) << "step " << step;
    ASSERT_EQ(h.dev.active_zone_count(), active) << "step " << step;
  }
}

// Conservation property: all bytes acknowledged as written are readable
// and accounted; counters match.
TEST(ZnsConservation, AcknowledgedBytesMatchWritePointers) {
  Harness h(QuietTiny());
  sim::Rng rng(99);
  std::uint64_t acked = 0;
  for (int i = 0; i < 300; ++i) {
    auto z = static_cast<std::uint32_t>(rng.UniformU64(4));
    auto nlb = static_cast<std::uint32_t>(1 + rng.UniformU64(8));
    auto c = h.Append(z, nlb);
    if (c.ok()) acked += static_cast<std::uint64_t>(nlb) * 4096;
  }
  std::uint64_t wp_sum = 0;
  for (std::uint32_t z = 0; z < 4; ++z) wp_sum += h.dev.ZoneWrittenBytes(z);
  EXPECT_EQ(acked, wp_sum);
  EXPECT_EQ(h.dev.counters().bytes_written, acked);
}

// Concurrent appends to one zone: every returned LBA range is disjoint,
// and together they tile the zone exactly (the paper's §II-B safety
// argument for reordering appends).
TEST(ZnsConservation, ConcurrentAppendsGetDisjointTilingLbas) {
  Harness h(QuietTiny());
  std::vector<std::pair<nvme::Lba, std::uint32_t>> got;
  auto issue = [&](std::uint32_t nlb) -> sim::Task<> {
    auto c = co_await h.dev.Execute({.opcode = nvme::Opcode::kAppend,
                                     .slba = h.dev.ZoneStartLba(0),
                                     .nlb = nlb});
    ZSTOR_CHECK(c.ok());
    got.emplace_back(c.result_lba, nlb);
  };
  std::uint32_t total = 0;
  sim::Rng rng(5);
  std::vector<std::uint32_t> sizes;
  for (int i = 0; i < 64; ++i) {
    auto nlb = static_cast<std::uint32_t>(1 + rng.UniformU64(8));
    sizes.push_back(nlb);
    total += nlb;
  }
  for (auto nlb : sizes) sim::Spawn(issue(nlb));
  h.sim.Run();
  ASSERT_EQ(got.size(), sizes.size());
  std::sort(got.begin(), got.end());
  nvme::Lba expect = h.dev.ZoneStartLba(0);
  for (auto [lba, nlb] : got) {
    EXPECT_EQ(lba, expect);  // disjoint and gap-free
    expect = lba + nlb;
  }
  EXPECT_EQ(expect - h.dev.ZoneStartLba(0), total);
}

// NAND-level conservation: after draining, programmed bytes cover all full
// pages of acknowledged data, and resets erase exactly the written blocks.
TEST(ZnsConservation, NandProgramsMatchAcknowledgedData) {
  Harness h(QuietTiny());
  const std::uint64_t page = h.dev.profile().nand_geometry.page_bytes;
  // Write 40 x 16 KiB = exactly 40 pages.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(h.WriteAtWp(0, static_cast<std::uint32_t>(page / 4096)).ok());
  }
  h.sim.Run();  // drain
  EXPECT_EQ(h.dev.flash()->counters().page_programs, 40u);
  EXPECT_EQ(h.dev.flash()->counters().bytes_programmed, 40 * page);
}

}  // namespace
}  // namespace zstor::zns
