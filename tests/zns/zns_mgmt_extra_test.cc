// Tests for the extended ZNS command surface: zone reports (Zone
// Management Receive), reset-all (select_all), flush, and the NAND
// endurance / wear-out model.
#include <gtest/gtest.h>

#include "zns_test_util.h"

namespace zstor::zns {
namespace {

using nvme::Status;
using nvme::ZoneAction;
using zstor::zns::testing::Harness;
using zstor::zns::testing::QuietTiny;

nvme::Command Report(nvme::Lba slba, std::uint32_t max = 0) {
  return {.opcode = nvme::Opcode::kZoneMgmtRecv,
          .slba = slba,
          .nlb = 0,
          .report_max = max};
}

TEST(ZoneReport, ReportsAllZonesFromStart) {
  Harness h(QuietTiny());
  auto c = h.Run(Report(0));
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c.report.size(), h.dev.info().num_zones);
  for (std::uint32_t z = 0; z < c.report.size(); ++z) {
    EXPECT_EQ(c.report[z].zslba, h.dev.ZoneStartLba(z));
    EXPECT_EQ(c.report[z].write_pointer, h.dev.ZoneStartLba(z));
    EXPECT_EQ(c.report[z].zone_cap_lbas, h.dev.info().zone_cap_lbas);
    EXPECT_EQ(static_cast<ZoneState>(c.report[z].state_raw),
              ZoneState::kEmpty);
  }
}

TEST(ZoneReport, ReflectsStateAndWritePointer) {
  Harness h(QuietTiny());
  ASSERT_TRUE(h.Write(0, 0, 5).ok());
  ASSERT_TRUE(h.Write(1, 0, 2).ok());
  ASSERT_TRUE(h.Close(1).ok());
  h.dev.DebugFillZone(2, h.dev.profile().zone_cap_bytes);
  auto c = h.Run(Report(0, 3));
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c.report.size(), 3u);
  EXPECT_EQ(static_cast<ZoneState>(c.report[0].state_raw),
            ZoneState::kImplicitlyOpened);
  EXPECT_EQ(c.report[0].write_pointer, h.dev.ZoneStartLba(0) + 5);
  EXPECT_EQ(static_cast<ZoneState>(c.report[1].state_raw),
            ZoneState::kClosed);
  EXPECT_EQ(static_cast<ZoneState>(c.report[2].state_raw),
            ZoneState::kFull);
}

TEST(ZoneReport, PartialReportFromMiddle) {
  Harness h(QuietTiny());
  auto c = h.Run(Report(h.dev.ZoneStartLba(10), 4));
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c.report.size(), 4u);
  EXPECT_EQ(c.report[0].zslba, h.dev.ZoneStartLba(10));
  // Clamped at the end of the namespace.
  auto tail = h.Run(Report(h.dev.ZoneStartLba(14), 100));
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail.report.size(), 2u);
}

TEST(ZoneReport, CostScalesWithDescriptorCount) {
  Harness h(QuietTiny());
  sim::Time small = 0, large = 0;
  ASSERT_TRUE(h.Run(Report(0, 1), &small).ok());
  ASSERT_TRUE(h.Run(Report(0, 16), &large).ok());
  EXPECT_GT(large, small);
}

TEST(ResetAll, ResetsEveryNonEmptyZone) {
  Harness h(QuietTiny());
  ASSERT_TRUE(h.Write(0, 0, 4).ok());
  ASSERT_TRUE(h.Write(3, 0, 4).ok());
  h.dev.DebugFillZone(5, h.dev.profile().zone_cap_bytes);
  auto c = h.Run({.opcode = nvme::Opcode::kZoneMgmtSend,
                  .slba = 0,
                  .zone_action = ZoneAction::kReset,
                  .select_all = true});
  ASSERT_TRUE(c.ok());
  for (std::uint32_t z = 0; z < h.dev.info().num_zones; ++z) {
    EXPECT_EQ(h.dev.GetZoneState(z), ZoneState::kEmpty) << "zone " << z;
  }
  EXPECT_EQ(h.dev.active_zone_count(), 0u);
  EXPECT_EQ(h.dev.counters().resets, 3u);  // only the non-empty zones
}

TEST(ResetAll, SelectAllWithOtherActionsIsInvalid) {
  Harness h(QuietTiny());
  auto c = h.Run({.opcode = nvme::Opcode::kZoneMgmtSend,
                  .slba = 0,
                  .zone_action = ZoneAction::kFinish,
                  .select_all = true});
  EXPECT_EQ(c.status, Status::kInvalidField);
}

TEST(Flush, WaitsForTheNandDrain) {
  Harness h(QuietTiny());
  // 16 pages of data: the drain takes ~16/4dies * tPROG.
  ASSERT_TRUE(h.Write(0, 0, 64).ok());
  sim::Time lat = 0;
  auto c = h.Run({.opcode = nvme::Opcode::kFlush}, &lat);
  ASSERT_TRUE(c.ok());
  // Flush completed only after all programs landed.
  EXPECT_EQ(h.dev.flash()->counters().page_programs, 16u);
  EXPECT_EQ(h.dev.counters().flushes, 1u);
}

TEST(Flush, IsCheapWhenIdle) {
  Harness h(QuietTiny());
  sim::Time lat = 0;
  ASSERT_TRUE(h.Run({.opcode = nvme::Opcode::kFlush}, &lat).ok());
  EXPECT_LT(sim::ToMicroseconds(lat), 20.0);
}

TEST(Wear, ZoneGoesOfflineAtPeCycleLimit) {
  ZnsProfile p = QuietTiny();
  p.pe_cycle_limit = 3;
  Harness h(p);
  // Two full write/reset cycles leave the blocks at 2 P/E: still fine.
  for (int cycle = 0; cycle < 2; ++cycle) {
    h.FillZone(0);
    ASSERT_TRUE(h.Reset(0).ok());
    ASSERT_EQ(h.dev.GetZoneState(0), ZoneState::kEmpty);
  }
  // The third cycle reaches the limit: the zone retires.
  h.FillZone(0);
  ASSERT_TRUE(h.Reset(0).ok());
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kOffline);
  EXPECT_EQ(h.dev.counters().zones_worn_offline, 1u);
  // Offline zones reject everything.
  EXPECT_EQ(h.Write(0, 0, 1).status, Status::kZoneIsOffline);
  EXPECT_EQ(h.Reset(0).status, Status::kZoneInvalidStateTransition);
  EXPECT_EQ(h.Open(0).status, Status::kZoneInvalidStateTransition);
  // Other zones are unaffected.
  EXPECT_TRUE(h.Write(1, 0, 1).ok());
}

TEST(Wear, UnlimitedEnduranceByDefault) {
  Harness h(QuietTiny());
  for (int cycle = 0; cycle < 6; ++cycle) {
    h.FillZone(0);
    ASSERT_TRUE(h.Reset(0).ok());
  }
  EXPECT_EQ(h.dev.GetZoneState(0), ZoneState::kEmpty);
  EXPECT_EQ(h.dev.counters().zones_worn_offline, 0u);
}

TEST(Wear, PeCyclesAreCountedPerBlock) {
  Harness h(QuietTiny());
  h.FillZone(0);
  ASSERT_TRUE(h.Reset(0).ok());
  // Zone 0's blocks cycled once; zone 1's not at all.
  std::uint32_t bpz = h.dev.profile().blocks_per_zone_per_die();
  EXPECT_EQ(h.dev.flash()->BlockPeCycles(0, 0), 1u);
  EXPECT_EQ(h.dev.flash()->BlockPeCycles(0, bpz), 0u);  // zone 1's block
}

}  // namespace
}  // namespace zstor::zns
