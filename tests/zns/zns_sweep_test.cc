// Parameterized cost-model sweeps: monotonicity and consistency
// properties that must hold across the whole (request size x LBA format x
// op) space, not just at the calibrated points.
#include <gtest/gtest.h>

#include "zns_test_util.h"

namespace zstor::zns {
namespace {

using nvme::Opcode;
using zstor::zns::testing::Harness;
using zstor::zns::testing::QuietZn540;

struct SweepParam {
  std::uint32_t lba_bytes;
  nvme::Opcode op;
};

class CostSweepTest : public ::testing::TestWithParam<SweepParam> {};

// Device-internal latency of the op at a given request size (second op,
// past the implicit-open penalty).
sim::Time LatAt(Harness& h, Opcode op, std::uint32_t nlb,
                std::uint32_t zone) {
  sim::Time lat = 0;
  if (op == Opcode::kWrite) {
    EXPECT_TRUE(h.WriteAtWp(zone, nlb, &lat).ok());
  } else {
    EXPECT_TRUE(h.Append(zone, nlb, &lat).ok());
  }
  return lat;
}

TEST_P(CostSweepTest, LatencyIsMonotonicInRequestSize) {
  const SweepParam p = GetParam();
  Harness h(QuietZn540(), p.lba_bytes);
  // Open the zone once so the penalty does not perturb the sweep.
  ASSERT_TRUE(h.Open(0).ok());
  std::uint32_t unit = 4096 / p.lba_bytes;  // one mapping unit in LBAs
  sim::Time prev = 0;
  for (std::uint32_t units = 1; units <= 64; units *= 2) {
    sim::Time lat = LatAt(h, p.op, units * unit, 0);
    EXPECT_GE(lat + sim::Microseconds(1), prev)
        << "latency regressed at " << units * 4 << " KiB";
    prev = lat;
  }
}

TEST_P(CostSweepTest, SmallFormatNeverFaster) {
  const SweepParam p = GetParam();
  if (p.lba_bytes == 512) GTEST_SKIP() << "baseline case";
  Harness h4(QuietZn540(), 4096);
  Harness h512(QuietZn540(), 512);
  ASSERT_TRUE(h4.Open(0).ok());
  ASSERT_TRUE(h512.Open(0).ok());
  for (std::uint32_t kib4 : {1u, 2u, 4u, 16u}) {
    sim::Time l4 = LatAt(h4, p.op, kib4, 0);
    sim::Time l512 = LatAt(h512, p.op, kib4 * 8, 0);
    EXPECT_GE(l512, l4) << "512 B format faster at " << 4 * kib4 << " KiB";
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndFormats, CostSweepTest,
    ::testing::Values(SweepParam{4096, Opcode::kWrite},
                      SweepParam{4096, Opcode::kAppend},
                      SweepParam{512, Opcode::kWrite},
                      SweepParam{512, Opcode::kAppend}),
    [](const ::testing::TestParamInfo<SweepParam>& p) {
      return std::string(p.param.op == Opcode::kWrite ? "write" : "append") +
             "_lba" + std::to_string(p.param.lba_bytes);
    });

TEST(CostSweep, ResetCostIsMonotonicInOccupancyEverywhere) {
  Harness h(QuietZn540());
  sim::Time prev = 0;
  int zone = 0;
  for (double occ = 0.05; occ <= 1.0; occ += 0.05) {
    auto bytes = static_cast<std::uint64_t>(
        occ * static_cast<double>(h.dev.profile().zone_cap_bytes));
    bytes -= bytes % 4096;
    h.dev.DebugFillZone(static_cast<std::uint32_t>(zone), bytes);
    sim::Time lat = 0;
    ASSERT_TRUE(h.Reset(static_cast<std::uint32_t>(zone), &lat).ok());
    EXPECT_GE(lat, prev) << "reset cost regressed at occupancy " << occ;
    prev = lat;
    ++zone;
  }
}

TEST(CostSweep, FinishCostIsAntitoneInOccupancyEverywhere) {
  Harness h(QuietZn540());
  sim::Time prev = sim::Seconds(10);
  int zone = 0;
  for (double occ = 0.05; occ <= 0.95; occ += 0.05) {
    auto bytes = static_cast<std::uint64_t>(
        occ * static_cast<double>(h.dev.profile().zone_cap_bytes));
    bytes -= bytes % 4096;
    h.dev.DebugFillZone(static_cast<std::uint32_t>(zone), bytes);
    sim::Time lat = 0;
    ASSERT_TRUE(h.Finish(static_cast<std::uint32_t>(zone), &lat).ok());
    EXPECT_LE(lat, prev) << "finish cost grew at occupancy " << occ;
    prev = lat;
    ASSERT_TRUE(h.Reset(static_cast<std::uint32_t>(zone)).ok());
    ++zone;
  }
}

TEST(CostSweep, AppendSaturationIsInverseOfFcpCost) {
  // Halving/doubling the FCP per-append cost doubles/halves the append
  // saturation plateau — the model's central proportionality (the read
  // and write ceilings are asserted against paper values in the
  // calibration suite; reads are additionally die-bound at low QD).
  auto plateau_kiops = [](double fcp_us) {
    ZnsProfile p = QuietZn540();
    p.fcp.append = sim::Microseconds(fcp_us);
    sim::Simulator s;
    zns::ZnsDevice dev(s, p);
    int done = 0;
    auto stream = [&](std::uint32_t id) -> sim::Task<> {
      for (int k = 0; k < 200; ++k) {
        auto c = co_await dev.Execute({.opcode = Opcode::kAppend,
                                       .slba = dev.ZoneStartLba(id % 4),
                                       .nlb = 1});
        ZSTOR_CHECK(c.ok());
        ++done;
      }
    };
    for (std::uint32_t w = 0; w < 32; ++w) sim::Spawn(stream(w));
    s.Run();
    return done / sim::ToSeconds(s.now()) / 1000.0;
  };
  double base = plateau_kiops(7.58);
  double halved = plateau_kiops(3.79);
  double doubled = plateau_kiops(15.16);
  EXPECT_NEAR(base, 131.9, 7.0);
  EXPECT_NEAR(halved / base, 2.0, 0.1);
  EXPECT_NEAR(doubled / base, 0.5, 0.03);
}

}  // namespace
}  // namespace zstor::zns
