// YcsbRunner tests against a mock backend: mix fractions, determinism,
// load coverage, and worker partitioning.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "sim/simulator.h"
#include "sim/task.h"
#include "workload/ycsb.h"

namespace zstor::workload {
namespace {

/// Counts operations and answers everything instantly and successfully.
struct MockKv : KvBackend {
  explicit MockKv(sim::Simulator& s) : sim(s) {}
  sim::Task<nvme::Status> Put(std::uint64_t key,
                              std::uint64_t value_bytes) override {
    puts++;
    put_bytes += value_bytes;
    keys.insert(key);
    co_await sim.Delay(sim::Microseconds(5));
    co_return nvme::Status::kSuccess;
  }
  sim::Task<nvme::Status> Get(std::uint64_t key, bool* found) override {
    gets++;
    if (found) *found = keys.count(key) > 0;
    co_await sim.Delay(sim::Microseconds(2));
    co_return nvme::Status::kSuccess;
  }
  sim::Simulator& sim;
  std::uint64_t puts = 0, gets = 0, put_bytes = 0;
  std::set<std::uint64_t> keys;
};

YcsbResult RunSpec(const YcsbSpec& spec) {
  sim::Simulator sim;
  MockKv kv(sim);
  YcsbRunner runner(sim, kv, spec);
  YcsbResult result;
  auto body = [&]() -> sim::Task<> {
    co_await runner.Load();
    result = co_await runner.Run();
  };
  auto t = body();
  sim.Run();
  return result;
}

TEST(Ycsb, LoadCoversTheWholeKeySpace) {
  sim::Simulator sim;
  MockKv kv(sim);
  YcsbSpec spec;
  spec.record_count = 100;
  spec.workers = 7;  // uneven split
  YcsbRunner runner(sim, kv, spec);
  auto body = [&]() -> sim::Task<> { co_await runner.Load(); };
  auto t = body();
  sim.Run();
  EXPECT_EQ(kv.puts, 100u);
  EXPECT_EQ(kv.keys.size(), 100u);  // keys 0..99, each exactly once
}

TEST(Ycsb, MixCIsReadOnly) {
  YcsbSpec spec;
  spec.mix = YcsbMix::kC;
  spec.operations = 1000;
  YcsbResult r = RunSpec(spec);
  EXPECT_EQ(r.ops, 1000u);
  EXPECT_EQ(r.reads, 1000u);
  EXPECT_EQ(r.updates, 0u);
  EXPECT_EQ(r.not_found, 0u);  // loaded records are all present
}

TEST(Ycsb, MixFractionsApproximatelyHold) {
  YcsbSpec spec;
  spec.operations = 8000;
  spec.mix = YcsbMix::kB;  // 95% read / 5% update
  YcsbResult r = RunSpec(spec);
  EXPECT_EQ(r.reads + r.updates, r.ops);
  const double read_frac = static_cast<double>(r.reads) / r.ops;
  EXPECT_NEAR(read_frac, 0.95, 0.02);

  spec.mix = YcsbMix::kA;  // 50/50
  r = RunSpec(spec);
  EXPECT_NEAR(static_cast<double>(r.reads) / r.ops, 0.5, 0.03);
}

TEST(Ycsb, MixFDoesReadModifyWrite) {
  YcsbSpec spec;
  spec.mix = YcsbMix::kF;
  spec.operations = 2000;
  YcsbResult r = RunSpec(spec);
  EXPECT_GT(r.rmws, 0u);
  EXPECT_EQ(r.rmws, r.updates);  // every write in F is an RMW
  // The RMW's read half is extra device traffic on top of r.reads.
}

TEST(Ycsb, SameSpecIsDeterministic) {
  YcsbSpec spec;
  spec.mix = YcsbMix::kA;
  spec.operations = 4000;
  spec.zipf_theta = 0.99;
  YcsbResult a = RunSpec(spec);
  YcsbResult b = RunSpec(spec);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.not_found, b.not_found);
  EXPECT_EQ(a.span, b.span);
  EXPECT_EQ(a.read_latency.p99_ns(), b.read_latency.p99_ns());
}

TEST(Ycsb, DifferentSeedsChangeTheStream) {
  YcsbSpec spec;
  spec.operations = 4000;
  YcsbResult a = RunSpec(spec);
  spec.seed = 2;
  YcsbResult b = RunSpec(spec);
  // Same op count, different read/update interleavings.
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_NE(a.reads, b.reads);
}

TEST(Ycsb, UniformThetaZeroWorks) {
  YcsbSpec spec;
  spec.zipf_theta = 0.0;
  spec.operations = 1000;
  YcsbResult r = RunSpec(spec);
  EXPECT_EQ(r.ops, 1000u);
  EXPECT_EQ(r.errors, 0u);
}

}  // namespace
}  // namespace zstor::workload
