// Mixed (randrw) workloads, Zipfian skew, per-direction statistics, and
// the psync stack.
#include <gtest/gtest.h>

#include <map>

#include "ftl/conv_device.h"
#include "hostif/kernel_stack.h"
#include "hostif/psync_stack.h"
#include "hostif/spdk_stack.h"
#include "workload/runner.h"
#include "workload/zipf.h"
#include "zns/zns_device.h"

namespace zstor::workload {
namespace {

using nvme::Opcode;

TEST(Zipf, RanksStayInRange) {
  ZipfGenerator z(1000, 0.99);
  sim::Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(z.Next(rng), 1000u);
  }
}

TEST(Zipf, HotItemsDominate) {
  ZipfGenerator z(10000, 0.99);
  sim::Rng rng(2);
  std::uint64_t top10 = 0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    if (z.Next(rng) < 10) ++top10;
  }
  // With theta 0.99 over 10k items, the top-10 take a large share
  // (~zeta(10)/zeta(10000) ~ 30%); uniform would give 0.1%.
  EXPECT_GT(static_cast<double>(top10) / kN, 0.15);
}

TEST(Zipf, LowThetaApproachesUniform) {
  ZipfGenerator z(1000, 0.05);
  sim::Rng rng(3);
  std::uint64_t top10 = 0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    if (z.Next(rng) < 10) ++top10;
  }
  EXPECT_LT(static_cast<double>(top10) / kN, 0.05);
}

TEST(MixedWorkload, ConventionalRandrwHitsTheRequestedMix) {
  sim::Simulator s;
  ftl::ConvDevice dev(s, ftl::TinyConvProfile());
  dev.DebugPrefill();
  hostif::SpdkStack stack(s, dev);
  JobSpec spec;
  spec.op = Opcode::kWrite;
  spec.random = true;
  spec.read_fraction = 0.7;
  spec.queue_depth = 4;
  spec.duration = sim::Milliseconds(300);
  JobResult r = RunJob(s, stack, spec);
  ASSERT_GT(r.ops, 500u);
  double reads = static_cast<double>(r.read_latency.count());
  double total = static_cast<double>(r.ops);
  EXPECT_NEAR(reads / total, 0.7, 0.05);
  EXPECT_EQ(r.read_latency.count() + r.write_latency.count(), r.ops);
  EXPECT_EQ(r.errors, 0u);
}

TEST(MixedWorkload, ReadsAreSlowerThanBufferedWrites) {
  sim::Simulator s;
  ftl::ConvDevice dev(s, ftl::TinyConvProfile());
  dev.DebugPrefill();
  hostif::SpdkStack stack(s, dev);
  JobSpec spec;
  spec.op = Opcode::kWrite;
  spec.random = true;
  spec.read_fraction = 0.5;
  spec.duration = sim::Milliseconds(200);
  JobResult r = RunJob(s, stack, spec);
  // Reads pay tR; small writes ack from the buffer.
  EXPECT_GT(r.read_latency.mean_ns(), 2.0 * r.write_latency.mean_ns());
}

TEST(MixedWorkload, ZonedAppendPlusReadWorks) {
  sim::Simulator s;
  zns::ZnsDevice dev(s, zns::TinyProfile());
  hostif::SpdkStack stack(s, dev);
  JobSpec spec;
  spec.op = Opcode::kAppend;
  spec.random = true;
  spec.read_fraction = 0.4;
  spec.zones = {0, 1};
  spec.queue_depth = 2;
  spec.duration = sim::Milliseconds(100);
  JobResult r = RunJob(s, stack, spec);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(r.read_latency.count(), 0u);
  EXPECT_GT(r.write_latency.count(), 0u);
  // Reads only ever touched appended data: no failures, no zero-reads of
  // unwritten space beyond the write pointers (errors would show).
}

TEST(MixedWorkload, ZipfianReadsFavorHotOffsets) {
  // Device-level check: zipfian reads produce far fewer distinct offsets
  // than uniform ones for the same op count.
  auto distinct_pages = [](double theta) {
    sim::Simulator s;
    zns::ZnsProfile p = zns::TinyProfile();
    p.io_sigma = 0;
    zns::ZnsDevice dev(s, p);
    dev.DebugFillZone(0, dev.profile().zone_cap_bytes);
    hostif::SpdkStack stack(s, dev);
    JobSpec spec;
    spec.op = Opcode::kRead;
    spec.random = true;
    spec.zipf_theta = theta;
    spec.zones = {0};
    spec.duration = sim::Milliseconds(50);
    JobResult r = RunJob(s, stack, spec);
    return r.ops;  // same duration; rely on bytes_read spread below
  };
  // Spread check via the generator at region scale: the hottest offset
  // takes a few percent of all accesses (uniform would give ~0.13%).
  ZipfGenerator z(768, 0.99);
  sim::Rng rng(9);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 5000; ++i) counts[z.Next(rng)]++;
  int hottest = 0;
  for (auto& [slot, n] : counts) hottest = std::max(hottest, n);
  EXPECT_GT(hottest, 5000 / 50);  // >= 2% on one slot
  (void)distinct_pages;
}

TEST(PsyncStack, SlowestOfTheStacks) {
  auto second_write_us = [](auto make_stack) {
    sim::Simulator s;
    zns::ZnsProfile p = zns::TinyProfile();
    p.io_sigma = 0;
    zns::ZnsDevice dev(s, p);
    auto stack = make_stack(s, dev);
    sim::Time lat = 0;
    auto body = [&]() -> sim::Task<> {
      (void)co_await stack->Submit(
          {.opcode = Opcode::kWrite, .slba = 0, .nlb = 1});
      auto tc = co_await stack->Submit(
          {.opcode = Opcode::kWrite, .slba = 1, .nlb = 1});
      lat = tc.latency();
    };
    auto t = body();
    s.Run();
    return sim::ToMicroseconds(lat);
  };
  double spdk = second_write_us([](auto& s, auto& d) {
    return std::make_unique<hostif::SpdkStack>(s, d);
  });
  double psync = second_write_us([](auto& s, auto& d) {
    return std::make_unique<hostif::PsyncStack>(s, d);
  });
  double kernel = second_write_us([](auto& s, auto& d) {
    return std::make_unique<hostif::KernelStack>(
        s, d, hostif::Scheduler::kNone);
  });
  // The [14]/[82] ordering: psync > io_uring > SPDK.
  EXPECT_GT(psync, kernel);
  EXPECT_GT(kernel, spdk);
  EXPECT_NEAR(psync - spdk, 3.9, 1.2);  // ~4 us of syscall overhead
}

TEST(PsyncStack, MgmtCommandsPassThrough) {
  sim::Simulator s;
  zns::ZnsDevice dev(s, zns::TinyProfile());
  hostif::PsyncStack stack(s, dev);
  JobSpec spec;
  spec.op = Opcode::kZoneMgmtSend;
  spec.zone_action = nvme::ZoneAction::kReset;
  spec.zones = {0, 1};
  spec.duration = sim::Seconds(1);
  JobResult r = RunJob(s, stack, spec);
  EXPECT_EQ(r.ops, 2u);
}

}  // namespace
}  // namespace zstor::workload
