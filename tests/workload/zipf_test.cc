// ZipfGenerator contract tests: the YCSB driver leans on this generator
// for its request distribution, so pin down (a) determinism — a fixed
// seed yields a byte-identical rank sequence — and (b) skew accuracy —
// empirical top-rank frequencies track the analytic zipf mass.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "workload/zipf.h"

namespace zstor::workload {
namespace {

// Analytic probability of rank r under the generator's model:
// P(r) = (1/(r+1)^theta) / zeta_n(theta).
double ZipfMass(std::uint64_t n, double theta, std::uint64_t rank) {
  double zetan = 0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    zetan += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return (1.0 / std::pow(static_cast<double>(rank + 1), theta)) / zetan;
}

TEST(Zipf, FixedSeedGivesIdenticalSequences) {
  ZipfGenerator zipf(1000, 0.99);
  sim::Rng a(42), b(42);
  for (int i = 0; i < 4096; ++i) {
    ASSERT_EQ(zipf.Next(a), zipf.Next(b)) << "draw " << i;
  }
}

TEST(Zipf, DifferentSeedsDiverge) {
  ZipfGenerator zipf(1000, 0.99);
  sim::Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 1024; ++i) {
    if (zipf.Next(a) != zipf.Next(b)) ++differing;
  }
  EXPECT_GT(differing, 512);  // independent streams, not shifted copies
}

TEST(Zipf, TwoGeneratorInstancesAgree) {
  // The generator itself is stateless between draws: two instances with
  // the same (n, theta) fed the same rng stream must agree exactly.
  ZipfGenerator g1(512, 0.6), g2(512, 0.6);
  sim::Rng a(7), b(7);
  for (int i = 0; i < 2048; ++i) {
    ASSERT_EQ(g1.Next(a), g2.Next(b));
  }
}

TEST(Zipf, RanksStayInRange) {
  ZipfGenerator zipf(37, 0.99);
  sim::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(rng), 37u);
  }
}

TEST(Zipf, TopRankFrequenciesMatchAnalyticMass) {
  const std::uint64_t n = 1000;
  const double theta = 0.99;
  const int draws = 200000;
  ZipfGenerator zipf(n, theta);
  sim::Rng rng(9);
  std::vector<std::uint64_t> count(n, 0);
  for (int i = 0; i < draws; ++i) count[zipf.Next(rng)]++;
  // Ranks 0 and 1 are emitted by exact inverse-CDF branches in the Gray
  // construction: their frequencies must match the analytic mass tightly
  // (rank 0 ~ 13% at theta=0.99, n=1000).
  for (std::uint64_t r = 0; r < 2; ++r) {
    const double expect = ZipfMass(n, theta, r);
    const double got = static_cast<double>(count[r]) / draws;
    EXPECT_NEAR(got, expect, 0.05 * expect) << "rank " << r;
  }
  // Mid ranks use the power-curve approximation; individually they can
  // be ~15-20% off, but cumulative mass is preserved. Top-10 share and
  // monotone decay pin the skew.
  double top10_expect = 0, top10_got = 0;
  for (std::uint64_t r = 0; r < 10; ++r) {
    top10_expect += ZipfMass(n, theta, r);
    top10_got += static_cast<double>(count[r]) / draws;
  }
  EXPECT_NEAR(top10_got, top10_expect, 0.10 * top10_expect);
  EXPECT_GT(count[0], count[1]);
  EXPECT_GT(count[1], count[4]);
  EXPECT_GT(count[4], count[50]);
}

TEST(Zipf, HigherThetaConcentratesMass) {
  const std::uint64_t n = 1000;
  const int draws = 100000;
  auto top10_share = [&](double theta, std::uint64_t seed) {
    ZipfGenerator zipf(n, theta);
    sim::Rng rng(seed);
    std::uint64_t hot = 0;
    for (int i = 0; i < draws; ++i) {
      if (zipf.Next(rng) < 10) ++hot;
    }
    return static_cast<double>(hot) / draws;
  };
  const double skewed = top10_share(0.99, 5);
  const double mild = top10_share(0.2, 5);
  EXPECT_GT(skewed, 0.3);   // classic hot-spot: top-1% gets >30%
  EXPECT_LT(mild, 0.05);    // near-uniform: top-1% gets ~1%
  EXPECT_GT(skewed, 3 * mild);
}

}  // namespace
}  // namespace zstor::workload
