// Workload engine tests: job mechanics, rate limiting, zone policies,
// statistics windows — on the Tiny device so they run instantly.
#include <gtest/gtest.h>

#include "hostif/spdk_stack.h"
#include "workload/runner.h"
#include "zns/zns_device.h"

namespace zstor::workload {
namespace {

using hostif::SpdkStack;
using nvme::Opcode;
using zns::ZnsProfile;

struct Fixture {
  explicit Fixture(ZnsProfile p = QuietProfile())
      : dev(sim, std::move(p)), stack(sim, dev) {}

  static ZnsProfile QuietProfile() {
    ZnsProfile p = zns::TinyProfile();
    p.io_sigma = 0;
    p.reset.sigma = 0;
    p.finish.sigma = 0;
    return p;
  }

  sim::Simulator sim;
  zns::ZnsDevice dev;
  SpdkStack stack;
};

TEST(Runner, SequentialWriteJobWritesExpectedBytes) {
  Fixture f;
  JobSpec spec;
  spec.op = Opcode::kWrite;
  spec.request_bytes = 16 * 1024;
  spec.zones = {0, 1};
  spec.duration = sim::Milliseconds(50);
  JobResult r = RunJob(f.sim, f.stack, spec);
  EXPECT_GT(r.ops, 0u);
  EXPECT_EQ(r.bytes, r.ops * spec.request_bytes);
  EXPECT_EQ(r.errors, 0u);
  // Device saw exactly what the job acknowledged (plus nothing).
  EXPECT_EQ(f.dev.counters().bytes_written, r.bytes);
}

TEST(Runner, WriterAdvancesAcrossZonesWhenFull) {
  Fixture f;
  JobSpec spec;
  spec.op = Opcode::kWrite;
  spec.request_bytes = 256 * 1024;
  spec.zones = {0, 1, 2};
  spec.on_full = JobSpec::OnFull::kAdvance;
  spec.duration = sim::Seconds(5);  // long enough to fill all three
  JobResult r = RunJob(f.sim, f.stack, spec);
  EXPECT_EQ(f.dev.GetZoneState(0), zns::ZoneState::kFull);
  EXPECT_EQ(f.dev.GetZoneState(1), zns::ZoneState::kFull);
  EXPECT_EQ(f.dev.GetZoneState(2), zns::ZoneState::kFull);
  // 3 zones x 3 MiB cap.
  EXPECT_EQ(r.bytes, 3u * 3 * 1024 * 1024);
  EXPECT_EQ(r.errors, 0u);
}

TEST(Runner, WriterStopsWhenConfiguredTo) {
  Fixture f;
  JobSpec spec;
  spec.op = Opcode::kWrite;
  spec.request_bytes = 256 * 1024;
  spec.zones = {0};
  spec.on_full = JobSpec::OnFull::kStop;
  spec.duration = sim::Seconds(5);
  JobResult r = RunJob(f.sim, f.stack, spec);
  EXPECT_EQ(r.bytes, 3u * 1024 * 1024);  // exactly one zone capacity
}

TEST(Runner, WriterResetsAndRecyclesZone) {
  Fixture f;
  JobSpec spec;
  spec.op = Opcode::kWrite;
  spec.request_bytes = 256 * 1024;
  spec.zones = {0};
  spec.on_full = JobSpec::OnFull::kReset;
  spec.duration = sim::Seconds(2);
  JobResult r = RunJob(f.sim, f.stack, spec);
  // Wrote more than one zone capacity: the zone was recycled.
  EXPECT_GT(r.bytes, 3u * 1024 * 1024);
  EXPECT_GT(f.dev.counters().resets, 0u);
  EXPECT_GT(r.reset_latency.count(), 0u);
  EXPECT_EQ(r.errors, 0u);
}

TEST(Runner, RandomAppendJobSpreadsOverZones) {
  Fixture f;
  JobSpec spec;
  spec.op = Opcode::kAppend;
  spec.random = true;
  spec.request_bytes = 16 * 1024;
  spec.zones = {0, 1, 2};
  spec.duration = sim::Milliseconds(20);
  JobResult r = RunJob(f.sim, f.stack, spec);
  EXPECT_EQ(r.errors, 0u);
  int zones_touched = 0;
  for (std::uint32_t z : {0u, 1u, 2u}) {
    if (f.dev.ZoneWrittenBytes(z) > 0) ++zones_touched;
  }
  EXPECT_GE(zones_touched, 2);
}

TEST(Runner, RandomReadJobStaysInBounds) {
  Fixture f;
  f.dev.DebugFillZone(0, f.dev.profile().zone_cap_bytes);
  f.dev.DebugFillZone(1, f.dev.profile().zone_cap_bytes);
  JobSpec spec;
  spec.op = Opcode::kRead;
  spec.random = true;
  spec.request_bytes = 4096;
  spec.zones = {0, 1};
  spec.duration = sim::Milliseconds(20);
  JobResult r = RunJob(f.sim, f.stack, spec);
  EXPECT_GT(r.ops, 0u);
  EXPECT_EQ(r.errors, 0u);
}

TEST(Runner, RateLimitCapsThroughput) {
  Fixture f;
  f.dev.DebugFillZone(0, f.dev.profile().zone_cap_bytes);
  JobSpec spec;
  spec.op = Opcode::kRead;
  spec.random = true;
  spec.request_bytes = 4096;
  spec.queue_depth = 8;
  spec.zones = {0};
  spec.rate_bytes_per_sec = 1.0 * 1024 * 1024;  // 1 MiB/s
  spec.duration = sim::Seconds(1);
  JobResult r = RunJob(f.sim, f.stack, spec);
  EXPECT_NEAR(r.MibPerSec(), 1.0, 0.1);
}

TEST(Runner, UnlimitedReadThroughputExceedsRateLimited) {
  auto run = [](double rate) {
    Fixture f;
    f.dev.DebugFillZone(0, f.dev.profile().zone_cap_bytes);
    JobSpec spec;
    spec.op = Opcode::kRead;
    spec.random = true;
    spec.queue_depth = 4;
    spec.zones = {0};
    spec.rate_bytes_per_sec = rate;
    spec.duration = sim::Milliseconds(200);
    return RunJob(f.sim, f.stack, spec).BytesPerSec();
  };
  EXPECT_GT(run(0), 2 * run(512.0 * 1024));
}

TEST(Runner, WarmupExcludesEarlyCompletions) {
  Fixture f;
  f.dev.DebugFillZone(0, f.dev.profile().zone_cap_bytes);
  JobSpec with_warmup;
  with_warmup.op = Opcode::kRead;
  with_warmup.zones = {0};
  with_warmup.duration = sim::Milliseconds(100);
  with_warmup.warmup = sim::Milliseconds(50);
  JobResult r = RunJob(f.sim, f.stack, with_warmup);
  EXPECT_EQ(r.measured_span, sim::Milliseconds(50));
  // IOPS over the window should match the device's read rate regardless
  // of the warmup cut.
  EXPECT_GT(r.Iops(), 1000.0);
}

TEST(Runner, QueueDepthRaisesReadThroughput) {
  auto run = [](std::uint32_t qd) {
    Fixture f;
    f.dev.DebugFillZone(0, f.dev.profile().zone_cap_bytes);
    JobSpec spec;
    spec.op = Opcode::kRead;
    spec.random = true;
    spec.queue_depth = qd;
    spec.zones = {0};
    spec.duration = sim::Milliseconds(100);
    return RunJob(f.sim, f.stack, spec).Iops();
  };
  double q1 = run(1), q4 = run(4);
  EXPECT_GT(q4, 2.0 * q1);  // Tiny device has 4 dies: QD4 ~ up to 4x
}

TEST(Runner, PartitionedWorkersSplitZonesEvenly) {
  Fixture f;
  JobSpec spec;
  spec.op = Opcode::kWrite;
  spec.workers = 3;
  spec.partition_zones = true;
  spec.request_bytes = 16 * 1024;
  spec.zones = {0, 1, 2};
  spec.duration = sim::Milliseconds(10);
  JobResult r = RunJob(f.sim, f.stack, spec);
  EXPECT_EQ(r.errors, 0u);
  // Each worker wrote its own zone.
  EXPECT_GT(f.dev.ZoneWrittenBytes(0), 0u);
  EXPECT_GT(f.dev.ZoneWrittenBytes(1), 0u);
  EXPECT_GT(f.dev.ZoneWrittenBytes(2), 0u);
}

TEST(Runner, MgmtJobResetsItsZoneList) {
  Fixture f;
  for (std::uint32_t z = 0; z < 4; ++z) {
    f.dev.DebugFillZone(z, f.dev.profile().zone_cap_bytes);
  }
  JobSpec spec;
  spec.op = Opcode::kZoneMgmtSend;
  spec.zone_action = nvme::ZoneAction::kReset;
  spec.zones = {0, 1, 2, 3};
  spec.duration = sim::Seconds(5);
  JobResult r = RunJob(f.sim, f.stack, spec);
  EXPECT_EQ(r.ops, 4u);
  EXPECT_GT(r.latency.mean_ns(), 0.0);
  for (std::uint32_t z = 0; z < 4; ++z) {
    EXPECT_EQ(f.dev.GetZoneState(z), zns::ZoneState::kEmpty);
  }
}

TEST(Runner, ConcurrentJobsShareTheDevice) {
  Fixture f;
  f.dev.DebugFillZone(7, f.dev.profile().zone_cap_bytes);
  JobSpec writer;
  writer.op = Opcode::kAppend;
  writer.zones = {0};
  writer.on_full = JobSpec::OnFull::kReset;
  writer.request_bytes = 16 * 1024;
  writer.duration = sim::Milliseconds(50);
  JobSpec reader;
  reader.op = Opcode::kRead;
  reader.random = true;
  reader.zones = {7};
  reader.duration = sim::Milliseconds(50);
  auto results = RunJobs(f.sim, {{&f.stack, writer}, {&f.stack, reader}});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].ops, 0u);
  EXPECT_GT(results[1].ops, 0u);
  EXPECT_EQ(results[0].errors + results[1].errors, 0u);
}

TEST(Runner, SeriesRecordsThroughputOverTime) {
  Fixture f;
  f.dev.DebugFillZone(0, f.dev.profile().zone_cap_bytes);
  JobSpec spec;
  spec.op = Opcode::kRead;
  spec.random = true;
  spec.zones = {0};
  spec.duration = sim::Milliseconds(100);
  spec.series_bin = sim::Milliseconds(10);
  JobResult r = RunJob(f.sim, f.stack, spec);
  EXPECT_GE(r.series.num_bins(), 9u);
  // Steady single-op workload: roughly flat rate series over the interior
  // bins (the first and last bins are partially filled).
  sim::Welford interior;
  for (std::size_t i = 1; i + 1 < r.series.num_bins(); ++i) {
    interior.Record(r.series.BinRate(i));
  }
  EXPECT_LT(interior.cv(), 0.2);
}

}  // namespace
}  // namespace zstor::workload
