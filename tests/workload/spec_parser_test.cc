// Tests for the fio-style job specification parser.
#include <gtest/gtest.h>

#include "workload/spec_parser.h"

namespace zstor::workload {
namespace {

using nvme::Opcode;
using nvme::ZoneAction;

TEST(SpecParser, FullFioStyleLine) {
  auto r = ParseJobSpec(
      "op=append random=1 bs=16k qd=8 workers=4 zones=0-11 rate=250m "
      "duration=2s warmup=500ms on_full=reset rwmix=70 zipf=0.99 seed=42 "
      "partition=1");
  ASSERT_TRUE(r.ok) << r.error;
  const JobSpec& s = r.spec;
  EXPECT_EQ(s.op, Opcode::kAppend);
  EXPECT_TRUE(s.random);
  EXPECT_EQ(s.request_bytes, 16u * 1024);
  EXPECT_EQ(s.queue_depth, 8u);
  EXPECT_EQ(s.workers, 4u);
  EXPECT_EQ(s.zones.size(), 12u);
  EXPECT_EQ(s.zones.front(), 0u);
  EXPECT_EQ(s.zones.back(), 11u);
  EXPECT_DOUBLE_EQ(s.rate_bytes_per_sec, 250.0 * 1024 * 1024);
  EXPECT_EQ(s.duration, sim::Seconds(2));
  EXPECT_EQ(s.warmup, sim::Milliseconds(500));
  EXPECT_EQ(s.on_full, JobSpec::OnFull::kReset);
  EXPECT_DOUBLE_EQ(s.read_fraction, 0.7);
  EXPECT_DOUBLE_EQ(s.zipf_theta, 0.99);
  EXPECT_EQ(s.seed, 42u);
  EXPECT_TRUE(s.partition_zones);
}

TEST(SpecParser, DefaultsWhenOmitted) {
  auto r = ParseJobSpec("op=read");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.spec.queue_depth, 1u);
  EXPECT_EQ(r.spec.workers, 1u);
  EXPECT_EQ(r.spec.request_bytes, 4096u);
  EXPECT_FALSE(r.spec.random);
  EXPECT_LT(r.spec.read_fraction, 0);  // not mixed
}

TEST(SpecParser, MgmtOps) {
  for (auto [name, action] :
       {std::pair{"reset", ZoneAction::kReset},
        std::pair{"finish", ZoneAction::kFinish},
        std::pair{"open", ZoneAction::kOpen},
        std::pair{"close", ZoneAction::kClose}}) {
    auto r = ParseJobSpec(std::string("op=") + name);
    ASSERT_TRUE(r.ok) << name;
    EXPECT_EQ(r.spec.op, Opcode::kZoneMgmtSend);
    EXPECT_EQ(r.spec.zone_action, action);
  }
}

TEST(SpecParser, ZoneListsMixRangesAndSingles) {
  auto r = ParseJobSpec("op=read zones=0-2,7,9-10");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.spec.zones,
            (std::vector<std::uint32_t>{0, 1, 2, 7, 9, 10}));
}

TEST(SpecParser, ByteSuffixes) {
  EXPECT_EQ(ParseJobSpec("op=read bs=512").spec.request_bytes, 512u);
  EXPECT_EQ(ParseJobSpec("op=read bs=4k").spec.request_bytes, 4096u);
  EXPECT_EQ(ParseJobSpec("op=read bs=1m").spec.request_bytes, 1u << 20);
  EXPECT_EQ(ParseJobSpec("op=read rate=1g").spec.rate_bytes_per_sec,
            double{1u << 30});
}

TEST(SpecParser, TimeSuffixes) {
  EXPECT_EQ(ParseJobSpec("op=read duration=250us").spec.duration,
            sim::Microseconds(250));
  EXPECT_EQ(ParseJobSpec("op=read duration=1.5s").spec.duration,
            sim::Seconds(1.5));
  EXPECT_EQ(ParseJobSpec("op=read duration=20ms").spec.duration,
            sim::Milliseconds(20));
}

TEST(SpecParser, ErrorsNameTheToken) {
  EXPECT_FALSE(ParseJobSpec("op=read bogus=1").ok);
  EXPECT_NE(ParseJobSpec("op=read bogus=1").error.find("bogus"),
            std::string::npos);
  EXPECT_FALSE(ParseJobSpec("op=warp").ok);
  EXPECT_FALSE(ParseJobSpec("op=read qd=0").ok);
  EXPECT_FALSE(ParseJobSpec("op=read bs=12q").ok);
  EXPECT_FALSE(ParseJobSpec("op=read zones=5-2").ok);
  EXPECT_FALSE(ParseJobSpec("op=read zipf=1.5").ok);
  EXPECT_FALSE(ParseJobSpec("op=read rwmix=150").ok);
  EXPECT_FALSE(ParseJobSpec("op=read duration").ok);
  EXPECT_FALSE(ParseJobSpec("op=read warmup=2s duration=1s").ok);
}

TEST(SpecParser, WhitespaceIsFlexible) {
  auto r = ParseJobSpec("  op=read \n qd=4\tbs=8k  ");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.spec.queue_depth, 4u);
  EXPECT_EQ(r.spec.request_bytes, 8192u);
}

}  // namespace
}  // namespace zstor::workload
