// ZoneObjectStore crash-recovery tests (DESIGN.md §11): reconciling the
// object index with a device that lost its volatile tail — torn-extent
// detection, truncation, fill/garbage resync, and post-recovery service.
#include <gtest/gtest.h>

#include <cstdint>

#include "hostif/resilient_stack.h"
#include "hostif/spdk_stack.h"
#include "sim/task.h"
#include "zns/zns_device.h"
#include "zobj/zone_object_store.h"

namespace zstor::zobj {
namespace {

using nvme::Status;

struct Fixture {
  Fixture()
      : dev(sim, Profile()),
        inner(sim, dev),
        stack(sim, inner,
              {.max_attempts = 8, .backoff = sim::Microseconds(500)}),
        store(sim, stack, {.first_zone = 0, .zone_count = 6}) {
    // ~4 ms of backoff budget rides out the 2 ms boot + scan outage.
  }

  static zns::ZnsProfile Profile() {
    zns::ZnsProfile p = zns::TinyProfile();
    p.io_sigma = 0;
    p.reset.sigma = 0;
    p.finish.sigma = 0;
    return p;
  }

  template <typename F>
  void Sync(F&& f) {
    auto body = [&]() -> sim::Task<> { co_await f(); };
    auto t = body();
    sim.Run();
  }

  sim::Simulator sim;
  zns::ZnsDevice dev;
  hostif::SpdkStack inner;
  hostif::ResilientStack stack;
  ZoneObjectStore store;
};

TEST(ZoneObjectStoreCrash, RecoveryOnAQuietStoreChangesNothing) {
  Fixture f;
  Status put = Status::kInternalError;
  auto body = [&]() -> sim::Task<> {
    put = co_await f.store.Put(1, 256 * 1024);
    co_await f.stack.Submit({.opcode = nvme::Opcode::kFlush});
    co_await f.dev.CrashNow();
    co_await f.store.RecoverAfterCrash();
  };
  f.Sync(body);

  EXPECT_EQ(put, Status::kSuccess);
  const StoreStats& st = f.store.stats();
  EXPECT_EQ(st.crash_recoveries, 1u);
  EXPECT_EQ(st.torn_extents, 0u);
  EXPECT_EQ(st.truncated_extents, 0u);
  EXPECT_EQ(st.crash_lost_bytes, 0u);
  EXPECT_TRUE(f.store.Contains(1));
  EXPECT_EQ(f.store.ObjectBytes(1), 256u * 1024);
  Status get = Status::kInternalError;
  auto rd = [&]() -> sim::Task<> { get = co_await f.store.Get(1); };
  auto t = rd();
  f.sim.Run();
  EXPECT_EQ(get, Status::kSuccess);
}

TEST(ZoneObjectStoreCrash, VolatileTailExtentsAreTruncated) {
  Fixture f;
  Status put1 = Status::kInternalError, put2 = Status::kInternalError;
  auto body = [&]() -> sim::Task<> {
    // Object 1 is made durable; object 2's appends are still volatile
    // (acked into the write buffer) when the power cut lands.
    put1 = co_await f.store.Put(1, 128 * 1024);
    co_await f.stack.Submit({.opcode = nvme::Opcode::kFlush});
    put2 = co_await f.store.Put(2, 1 << 20);
    co_await f.dev.CrashNow();
    co_await f.store.RecoverAfterCrash();
  };
  f.Sync(body);

  ASSERT_EQ(put1, Status::kSuccess);
  ASSERT_EQ(put2, Status::kSuccess);
  const StoreStats& st = f.store.stats();
  EXPECT_EQ(st.crash_recoveries, 1u);
  // The crash dropped part of object 2: some of its extents vanished
  // (truncated) or lost their tail (torn).
  EXPECT_GT(st.truncated_extents + st.torn_extents, 0u);
  EXPECT_GT(st.crash_lost_bytes, 0u);
  // A torn/truncated object loses its index entry entirely (objects are
  // immutable blobs: a partial object is useless) or keeps only durable
  // extents — but the flushed object always survives intact.
  EXPECT_TRUE(f.store.Contains(1));
  EXPECT_EQ(f.store.ObjectBytes(1), 128u * 1024);
  if (!f.store.Contains(2)) {
    EXPECT_GE(st.crash_lost_objects, 1u);
  }
  // live_bytes dropped consistently with what was lost.
  EXPECT_EQ(f.store.live_bytes(),
            f.store.ObjectBytes(1) + f.store.ObjectBytes(2));
}

TEST(ZoneObjectStoreCrash, StoreKeepsServingAfterRecovery) {
  Fixture f;
  Status late_put = Status::kInternalError;
  Status late_get = Status::kInternalError;
  auto body = [&]() -> sim::Task<> {
    co_await f.store.Put(1, 512 * 1024);
    co_await f.store.Put(2, 512 * 1024);
    co_await f.dev.CrashNow();
    co_await f.store.RecoverAfterCrash();
    // Post-recovery: the store must accept new objects and read back
    // whatever its reconciled index still claims.
    late_put = co_await f.store.Put(3, 256 * 1024);
    if (f.store.Contains(3)) {
      late_get = co_await f.store.Get(3);
    }
  };
  f.Sync(body);

  EXPECT_EQ(late_put, Status::kSuccess);
  EXPECT_EQ(late_get, Status::kSuccess);
  // Every object still indexed must be fully readable (no extent may
  // point past a recovered write pointer).
  for (std::uint64_t key : {1ull, 2ull, 3ull}) {
    if (!f.store.Contains(key)) continue;
    Status got = Status::kInternalError;
    auto rd = [&]() -> sim::Task<> { got = co_await f.store.Get(key); };
    auto t = rd();
    f.sim.Run();
    EXPECT_EQ(got, Status::kSuccess) << "object " << key;
  }
}

TEST(ZoneObjectStoreCrash, RecoveryIsDeterministic) {
  auto run = [](StoreStats* out) {
    Fixture f;
    auto body = [&]() -> sim::Task<> {
      co_await f.store.Put(1, 768 * 1024);
      co_await f.store.Put(2, 768 * 1024);
      co_await f.dev.CrashNow();
      co_await f.store.RecoverAfterCrash();
    };
    f.Sync(body);
    *out = f.store.stats();
  };
  StoreStats a{}, b{};
  run(&a);
  run(&b);
  EXPECT_EQ(a.torn_extents, b.torn_extents);
  EXPECT_EQ(a.truncated_extents, b.truncated_extents);
  EXPECT_EQ(a.crash_lost_bytes, b.crash_lost_bytes);
  EXPECT_EQ(a.crash_lost_objects, b.crash_lost_objects);
}

}  // namespace
}  // namespace zstor::zobj
