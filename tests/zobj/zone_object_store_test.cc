// ZoneObjectStore tests: object semantics, garbage accounting, compaction
// correctness under churn, concurrency, and a randomized differential
// test against an in-memory reference map.
#include <gtest/gtest.h>

#include <map>

#include "hostif/spdk_stack.h"
#include "sim/rng.h"
#include "sim/task.h"
#include "zns/zns_device.h"
#include "zobj/zone_object_store.h"

namespace zstor::zobj {
namespace {

using nvme::Status;

struct Fixture {
  explicit Fixture(ZoneObjectStore::Options opt = DefaultOptions())
      : dev(sim, Profile()), stack(sim, dev), store(sim, stack, opt) {}

  static zns::ZnsProfile Profile() {
    zns::ZnsProfile p = zns::TinyProfile();
    p.io_sigma = 0;
    p.reset.sigma = 0;
    p.finish.sigma = 0;
    return p;
  }
  static ZoneObjectStore::Options DefaultOptions() {
    return {.first_zone = 0, .zone_count = 6};
  }

  /// Runs a store operation synchronously.
  template <typename F>
  Status Sync(F&& f) {
    Status out = Status::kSuccess;
    auto body = [&]() -> sim::Task<> { out = co_await f(); };
    auto t = body();
    sim.Run();
    return out;
  }

  Status Put(std::uint64_t key, std::uint64_t bytes) {
    return Sync([&] { return store.Put(key, bytes); });
  }
  Status Get(std::uint64_t key) {
    return Sync([&] { return store.Get(key); });
  }
  Status Delete(std::uint64_t key) {
    return Sync([&] { return store.Delete(key); });
  }

  sim::Simulator sim;
  zns::ZnsDevice dev;
  hostif::SpdkStack stack;
  ZoneObjectStore store;
};

TEST(ZoneObjectStore, PutGetDeleteRoundTrip) {
  Fixture f;
  EXPECT_EQ(f.Put(1, 64 * 1024), Status::kSuccess);
  EXPECT_TRUE(f.store.Contains(1));
  EXPECT_EQ(f.store.ObjectBytes(1), 64u * 1024);
  EXPECT_EQ(f.Get(1), Status::kSuccess);
  EXPECT_EQ(f.Delete(1), Status::kSuccess);
  EXPECT_FALSE(f.store.Contains(1));
  EXPECT_NE(f.Get(1), Status::kSuccess);
}

TEST(ZoneObjectStore, ZeroByteObjectIsRejected) {
  Fixture f;
  EXPECT_EQ(f.Put(1, 0), Status::kInvalidField);
}

TEST(ZoneObjectStore, SizesRoundUpToLbas) {
  Fixture f;
  EXPECT_EQ(f.Put(1, 5000), Status::kSuccess);  // 2 LBAs
  EXPECT_EQ(f.store.ObjectBytes(1), 8192u);
}

TEST(ZoneObjectStore, LargeObjectsSplitIntoExtents) {
  Fixture f;
  // 1 MiB at max_append_lbas=64 (256 KiB) -> 4 extents.
  EXPECT_EQ(f.Put(7, 1 << 20), Status::kSuccess);
  EXPECT_EQ(f.store.ObjectBytes(7), 1u << 20);
  EXPECT_EQ(f.Get(7), Status::kSuccess);
}

TEST(ZoneObjectStore, OverwriteCreatesGarbageAndKeepsLiveBytesRight) {
  Fixture f;
  EXPECT_EQ(f.Put(1, 128 * 1024), Status::kSuccess);
  std::uint64_t live1 = f.store.live_bytes();
  EXPECT_EQ(f.Put(1, 128 * 1024), Status::kSuccess);  // replace
  EXPECT_EQ(f.store.live_bytes(), live1);             // same live size
  // The old copy is garbage somewhere.
  double total_garbage = 0;
  for (std::uint32_t z = 0; z < 6; ++z) {
    total_garbage += f.store.GarbageFraction(z);
  }
  EXPECT_GT(total_garbage, 0.0);
}

TEST(ZoneObjectStore, FillsMultipleZones) {
  Fixture f;
  // Zone cap 3 MiB: write 4 x 1 MiB objects -> spans >1 zone.
  for (std::uint64_t k = 0; k < 4; ++k) {
    ASSERT_EQ(f.Put(k, 1 << 20), Status::kSuccess);
  }
  EXPECT_EQ(f.store.live_bytes(), 4u << 20);
  for (std::uint64_t k = 0; k < 4; ++k) {
    EXPECT_EQ(f.Get(k), Status::kSuccess);
  }
}

TEST(ZoneObjectStore, CompactionReclaimsSpaceUnderChurn) {
  Fixture f;
  // Working set of 8 x 256 KiB objects, overwritten many times: total
  // writes far exceed raw capacity (18 MiB usable); only compaction can
  // keep this running.
  sim::Rng rng(5);
  for (int round = 0; round < 120; ++round) {
    std::uint64_t k = rng.UniformU64(8);
    ASSERT_EQ(f.Put(k, 256 * 1024), Status::kSuccess) << "round " << round;
  }
  EXPECT_GT(f.store.stats().compactions, 0u);
  EXPECT_GT(f.store.stats().zone_resets, 0u);
  // Everything written is still readable.
  for (std::uint64_t k = 0; k < 8; ++k) {
    if (f.store.Contains(k)) {
      EXPECT_EQ(f.Get(k), Status::kSuccess);
    }
  }
  // 120 x 256 KiB = 30 MiB written through an ~18 MiB store.
  EXPECT_GT(f.store.stats().bytes_written, 29u << 20);
}

TEST(ZoneObjectStore, WriteAmplificationStaysBounded) {
  Fixture f;
  sim::Rng rng(11);
  for (int round = 0; round < 150; ++round) {
    ASSERT_EQ(f.Put(rng.UniformU64(6), 256 * 1024), Status::kSuccess);
  }
  // Hot overwrites make mostly-garbage victims: relocation stays modest.
  EXPECT_LT(f.store.stats().WriteAmplification(), 2.5);
}

TEST(ZoneObjectStore, DeleteThenChurnReclaimsDeletedSpace) {
  Fixture f;
  for (std::uint64_t k = 0; k < 12; ++k) {
    ASSERT_EQ(f.Put(k, 1 << 20), Status::kSuccess);
  }
  for (std::uint64_t k = 0; k < 12; k += 2) {
    ASSERT_EQ(f.Delete(k), Status::kSuccess);
  }
  // Keep writing into the space deletes freed.
  for (std::uint64_t k = 100; k < 106; ++k) {
    ASSERT_EQ(f.Put(k, 1 << 20), Status::kSuccess);
  }
  EXPECT_EQ(f.store.live_bytes(), 12u << 20);  // 6 survivors + 6 new
}

TEST(ZoneObjectStore, ConcurrentPutsAllLand) {
  Fixture f;
  int done = 0;
  auto writer = [&](std::uint64_t key) -> sim::Task<> {
    auto st = co_await f.store.Put(key, 64 * 1024);
    ZSTOR_CHECK(st == Status::kSuccess);
    ++done;
  };
  for (std::uint64_t k = 0; k < 20; ++k) sim::Spawn(writer(k));
  f.sim.Run();
  EXPECT_EQ(done, 20);
  EXPECT_EQ(f.store.object_count(), 20u);
  EXPECT_EQ(f.store.live_bytes(), 20u * 64 * 1024);
}

TEST(ZoneObjectStore, RandomizedDifferentialAgainstReferenceMap) {
  Fixture f;
  sim::Rng rng(77);
  std::map<std::uint64_t, std::uint64_t> ref;  // key -> bytes (rounded)
  for (int step = 0; step < 400; ++step) {
    std::uint64_t key = rng.UniformU64(16);
    std::uint64_t kind = rng.UniformU64(10);
    if (kind < 6) {
      std::uint64_t bytes = 4096 * (1 + rng.UniformU64(64));
      ASSERT_EQ(f.Put(key, bytes), Status::kSuccess);
      ref[key] = bytes;
    } else if (kind < 8) {
      Status st = f.Delete(key);
      EXPECT_EQ(st == Status::kSuccess, ref.erase(key) == 1);
    } else {
      Status st = f.Get(key);
      EXPECT_EQ(st == Status::kSuccess, ref.count(key) == 1);
    }
    // Invariants after every step.
    ASSERT_EQ(f.store.object_count(), ref.size());
    std::uint64_t live = 0;
    for (auto& [k, b] : ref) {
      live += b;
      ASSERT_EQ(f.store.ObjectBytes(k), b);
    }
    ASSERT_EQ(f.store.live_bytes(), live);
  }
  EXPECT_GT(f.store.stats().compactions, 0u);  // churn forced reclaim
}

TEST(ZoneObjectStore, UsesAtMostTwoOpenZones) {
  // The store obeys the paper's resource guidance: one active + one
  // relocation zone, regardless of churn (max-open on the ZN540 is 14;
  // a store that hoards open zones starves other users).
  Fixture f;
  sim::Rng rng(13);
  for (int round = 0; round < 80; ++round) {
    ASSERT_EQ(f.Put(rng.UniformU64(8), 256 * 1024), Status::kSuccess);
    ASSERT_LE(f.dev.open_zone_count(), 2u);
  }
}

}  // namespace
}  // namespace zstor::zobj
