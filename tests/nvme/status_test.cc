// Status-code hygiene: every enumerator must print a real name (the trace
// and log-page paths stringify statuses, and "Unknown" in a trace means a
// status was added without updating ToString), and the media-error
// classification must match the SMART split (media_errors vs host_rejects).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "nvme/types.h"

namespace zstor::nvme {
namespace {

TEST(Status, ToStringCoversEveryEnumerator) {
  for (std::uint8_t i = 0; i <= static_cast<std::uint8_t>(kMaxStatus); ++i) {
    const Status s = static_cast<Status>(i);
    EXPECT_NE(ToString(s), "Unknown")
        << "Status " << static_cast<int>(i) << " has no ToString arm";
    EXPECT_FALSE(ToString(s).empty());
  }
}

TEST(Status, NamesAreUnique) {
  std::set<std::string> seen;
  for (std::uint8_t i = 0; i <= static_cast<std::uint8_t>(kMaxStatus); ++i) {
    const std::string name{ToString(static_cast<Status>(i))};
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate ToString name: " << name;
  }
}

TEST(Status, FaultStatusesSpellTheirNames) {
  // The fault-injection statuses added for the robustness work.
  EXPECT_EQ(ToString(Status::kMediaReadError), "MediaReadError");
  EXPECT_EQ(ToString(Status::kWriteFault), "WriteFault");
  EXPECT_EQ(ToString(Status::kInternalError), "InternalError");
  EXPECT_EQ(ToString(Status::kHostTimeout), "HostTimeout");
}

TEST(Status, IsMediaErrorMatchesTheSmartSplit) {
  // Exactly the device-fault statuses count as media errors; everything
  // else a device returns is a host reject (caller bug, not a fault).
  std::set<Status> media;
  for (std::uint8_t i = 0; i <= static_cast<std::uint8_t>(kMaxStatus); ++i) {
    const Status s = static_cast<Status>(i);
    if (IsMediaError(s)) media.insert(s);
  }
  EXPECT_EQ(media, (std::set<Status>{Status::kMediaReadError,
                                     Status::kWriteFault,
                                     Status::kInternalError}));
}

TEST(Status, HostTimeoutIsNotADeviceMediaError) {
  // kHostTimeout is synthesized by the host stack; devices never produce
  // it, so it must not inflate the device's media-error accounting.
  EXPECT_FALSE(IsMediaError(Status::kHostTimeout));
}

TEST(Status, SuccessIsNeitherRejectNorMediaError) {
  EXPECT_FALSE(IsMediaError(Status::kSuccess));
  EXPECT_EQ(ToString(Status::kSuccess), "Success");
}

}  // namespace
}  // namespace zstor::nvme
