#include "nvme/queue_pair.h"

#include <gtest/gtest.h>

#include <vector>

#include "nvme/controller.h"
#include "nvme/types.h"
#include "sim/resource.h"
#include "sim/task.h"

namespace zstor::nvme {
namespace {

// A controller that charges a fixed service time per command, serialized
// through a single slot (like a one-deep device pipeline).
class FixedLatencyController : public Controller {
 public:
  FixedLatencyController(sim::Simulator& s, sim::Time service,
                         bool serialize)
      : sim_(s), service_(service), server_(s, 1), serialize_(serialize) {
    info_.capacity_lbas = 1 << 20;
  }

  const NamespaceInfo& info() const override { return info_; }

  sim::Task<Completion> Execute(const Command& cmd) override {
    ++executed_;
    if (serialize_) {
      auto g = co_await server_.Acquire();
      co_await sim_.Delay(service_);
    } else {
      co_await sim_.Delay(service_);
    }
    Completion c;
    c.status = cmd.opcode == Opcode::kFlush ? Status::kInvalidOpcode
                                            : Status::kSuccess;
    c.result_lba = cmd.slba + 100;
    co_return c;
  }

  int executed() const { return executed_; }

 private:
  sim::Simulator& sim_;
  sim::Time service_;
  sim::FifoResource server_;
  bool serialize_;
  NamespaceInfo info_;
  int executed_ = 0;
};

TEST(QueuePair, MeasuresSubmissionToCompletionLatency) {
  sim::Simulator s;
  FixedLatencyController ctrl(s, sim::Microseconds(10), false);
  QueuePair qp(s, ctrl, 4);
  sim::Time latency = 0;
  auto body = [&]() -> sim::Task<> {
    auto tc = co_await qp.Issue({.opcode = Opcode::kRead, .slba = 5});
    latency = tc.latency();
    EXPECT_TRUE(tc.completion.ok());
    EXPECT_EQ(tc.completion.result_lba, 105u);
  };
  auto t = body();
  s.Run();
  EXPECT_EQ(latency, sim::Microseconds(10));
  EXPECT_EQ(qp.completed(), 1u);
}

TEST(QueuePair, QueueDepthBoundsInFlight) {
  sim::Simulator s;
  FixedLatencyController ctrl(s, sim::Microseconds(10), false);
  QueuePair qp(s, ctrl, 2);
  std::vector<sim::Time> finish;
  auto body = [&]() -> sim::Task<> {
    auto tc = co_await qp.Issue({.opcode = Opcode::kRead});
    finish.push_back(s.now());
  };
  for (int i = 0; i < 4; ++i) sim::Spawn(body());
  s.Run();
  ASSERT_EQ(finish.size(), 4u);
  // Non-serialized device, but only 2 in flight at once: waves of 2.
  EXPECT_EQ(finish[0], sim::Microseconds(10));
  EXPECT_EQ(finish[1], sim::Microseconds(10));
  EXPECT_EQ(finish[2], sim::Microseconds(20));
  EXPECT_EQ(finish[3], sim::Microseconds(20));
}

TEST(QueuePair, HigherQdRaisesThroughputUntilDeviceSerializes) {
  // With a serialized device, QD beyond 1 adds queueing latency but no
  // throughput — the basis of every saturation plot in the paper.
  for (std::uint32_t qd : {1u, 4u}) {
    sim::Simulator s;
    FixedLatencyController ctrl(s, sim::Microseconds(10), true);
    QueuePair qp(s, ctrl, qd);
    auto body = [&]() -> sim::Task<> {
      co_await qp.Issue({.opcode = Opcode::kWrite});
    };
    for (int i = 0; i < 100; ++i) sim::Spawn(body());
    s.Run();
    // 100 serialized commands at 10 us each: 1 ms regardless of QD.
    EXPECT_EQ(s.now(), sim::Milliseconds(1));
  }
}

TEST(QueuePair, InFlightAccountingIsAccurate) {
  sim::Simulator s;
  FixedLatencyController ctrl(s, sim::Microseconds(10), false);
  QueuePair qp(s, ctrl, 8);
  auto body = [&]() -> sim::Task<> {
    co_await qp.Issue({.opcode = Opcode::kRead});
  };
  for (int i = 0; i < 3; ++i) sim::Spawn(body());
  s.RunUntil(sim::Microseconds(5));
  EXPECT_EQ(qp.in_flight(), 3u);
  s.Run();
  EXPECT_EQ(qp.in_flight(), 0u);
  EXPECT_EQ(qp.depth(), 8u);
}

TEST(QueuePair, PropagatesErrorStatus) {
  sim::Simulator s;
  FixedLatencyController ctrl(s, sim::Microseconds(1), false);
  QueuePair qp(s, ctrl, 1);
  Status got = Status::kSuccess;
  auto body = [&]() -> sim::Task<> {
    auto tc = co_await qp.Issue({.opcode = Opcode::kFlush});
    got = tc.completion.status;
  };
  auto t = body();
  s.Run();
  EXPECT_EQ(got, Status::kInvalidOpcode);
}

TEST(LbaFormat, BytesToLbasRoundsUp) {
  LbaFormat f4k{4096};
  EXPECT_EQ(f4k.BytesToLbas(4096), 1u);
  EXPECT_EQ(f4k.BytesToLbas(4097), 2u);
  EXPECT_EQ(f4k.BytesToLbas(1), 1u);
  LbaFormat f512{512};
  EXPECT_EQ(f512.BytesToLbas(4096), 8u);
}

TEST(Types, StatusAndOpcodeNames) {
  EXPECT_EQ(ToString(Status::kTooManyOpenZones), "TooManyOpenZones");
  EXPECT_EQ(ToString(Opcode::kAppend), "append");
}

}  // namespace
}  // namespace zstor::nvme
