// FaultPlan unit tests: spec grammar, determinism, scheduled one-shot
// faults, the wear model, and the inertness of a disabled plan.
#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/time.h"

namespace zstor::fault {
namespace {

TEST(ParseFaultSpec, FullGrammarRoundTrips) {
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(ParseFaultSpec(
      "seed=7,read_c=0.25,read_uc=0.001,prog=0.0005,retries=6,"
      "retry_us=12.5,wear_pe=1000,wear_slope=0.0001,"
      "sched=1000:prog:0:*,sched=2500:read_uc:*:3",
      &spec, &error))
      << error;
  EXPECT_TRUE(spec.enabled);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_DOUBLE_EQ(spec.read_correctable_rate, 0.25);
  EXPECT_DOUBLE_EQ(spec.read_uncorrectable_rate, 0.001);
  EXPECT_DOUBLE_EQ(spec.program_fail_rate, 0.0005);
  EXPECT_EQ(spec.max_read_retries, 6u);
  EXPECT_EQ(spec.read_retry_penalty, sim::Microseconds(12.5));
  EXPECT_EQ(spec.wear_threshold_pe, 1000u);
  EXPECT_DOUBLE_EQ(spec.wear_rber_slope, 0.0001);
  ASSERT_EQ(spec.scheduled.size(), 2u);
  EXPECT_EQ(spec.scheduled[0].at, sim::Microseconds(1000));
  EXPECT_EQ(spec.scheduled[0].kind, FaultKind::kProgramFail);
  EXPECT_EQ(spec.scheduled[0].die, 0u);
  EXPECT_EQ(spec.scheduled[0].block, kAnySite);
  EXPECT_EQ(spec.scheduled[1].kind, FaultKind::kReadUncorrectable);
  EXPECT_EQ(spec.scheduled[1].die, kAnySite);
  EXPECT_EQ(spec.scheduled[1].block, 3u);

  // Format -> parse -> format is a fixed point: the canonical rendering
  // is what benches use to label fault runs, so it must round-trip.
  const std::string canon = FormatFaultSpec(spec);
  FaultSpec reparsed;
  ASSERT_TRUE(ParseFaultSpec(canon, &reparsed, &error)) << error;
  EXPECT_EQ(FormatFaultSpec(reparsed), canon);
  EXPECT_EQ(reparsed.seed, spec.seed);
  EXPECT_EQ(reparsed.scheduled.size(), spec.scheduled.size());
}

TEST(ParseFaultSpec, CrashTimesParseFormatAndRoundTrip) {
  FaultSpec spec;
  std::string error;
  // crash=US is repeatable; times are microseconds of virtual time.
  ASSERT_TRUE(ParseFaultSpec("crash=1500,crash=9000.5", &spec, &error))
      << error;
  EXPECT_TRUE(spec.enabled);
  ASSERT_EQ(spec.crashes.size(), 2u);
  EXPECT_EQ(spec.crashes[0], sim::Microseconds(1500));
  EXPECT_EQ(spec.crashes[1], sim::Microseconds(9000.5));

  const std::string canon = FormatFaultSpec(spec);
  FaultSpec reparsed;
  ASSERT_TRUE(ParseFaultSpec(canon, &reparsed, &error)) << error;
  EXPECT_EQ(reparsed.crashes, spec.crashes);
  EXPECT_EQ(FormatFaultSpec(reparsed), canon);
}

TEST(ParseFaultSpec, RejectsMalformedCrashTimes) {
  const char* bad[] = {
      "crash=",        // missing value
      "crash=banana",  // not a number
      "crash=-5",      // a crash cannot predate the run
  };
  for (const char* text : bad) {
    FaultSpec spec;
    std::string error;
    EXPECT_FALSE(ParseFaultSpec(text, &spec, &error))
        << "accepted malformed spec: " << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(ParseFaultSpec, AnySpecEnablesFaults) {
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(ParseFaultSpec("seed=1", &spec, &error));
  EXPECT_TRUE(spec.enabled);
}

TEST(ParseFaultSpec, RejectsMalformedInput) {
  const char* bad[] = {
      "frobnicate=1",          // unknown key
      "read_c=1.5",            // probability out of range
      "read_uc=-0.1",          // negative probability
      "prog=banana",           // not a number
      "retries=",              // missing value
      "sched=1000:prog:0",     // too few schedule fields
      "sched=1000:explode:0:0",  // unknown fault kind
      "sched=x:prog:0:0",      // non-numeric time
  };
  for (const char* text : bad) {
    FaultSpec spec;
    std::string error;
    EXPECT_FALSE(ParseFaultSpec(text, &spec, &error))
        << "accepted malformed spec: " << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(FaultPlan, DisabledPlanIsInert) {
  FaultPlan plan{FaultSpec{}};  // enabled = false
  for (int i = 0; i < 1000; ++i) {
    ReadVerdict r = plan.OnRead(i, 0, 0, 0);
    EXPECT_EQ(r.retry_steps, 0u);
    EXPECT_FALSE(r.uncorrectable);
    EXPECT_FALSE(plan.OnProgram(i, 0, 0, 0).fail);
  }
  const FaultCounters& c = plan.counters();
  EXPECT_EQ(c.correctable_read_errors, 0u);
  EXPECT_EQ(c.uncorrectable_read_errors, 0u);
  EXPECT_EQ(c.program_failures, 0u);
  EXPECT_EQ(c.read_retry_steps, 0u);
}

TEST(FaultPlan, SameSeedSameVerdictStream) {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 42;
  spec.read_correctable_rate = 0.3;
  spec.read_uncorrectable_rate = 0.05;
  spec.program_fail_rate = 0.1;
  FaultPlan a{spec};
  FaultPlan b{spec};
  for (int i = 0; i < 2000; ++i) {
    ReadVerdict ra = a.OnRead(i, i % 4, i % 7, 0);
    ReadVerdict rb = b.OnRead(i, i % 4, i % 7, 0);
    EXPECT_EQ(ra.retry_steps, rb.retry_steps) << "op " << i;
    EXPECT_EQ(ra.uncorrectable, rb.uncorrectable) << "op " << i;
    EXPECT_EQ(a.OnProgram(i, i % 4, i % 7, 0).fail,
              b.OnProgram(i, i % 4, i % 7, 0).fail)
        << "op " << i;
  }
  EXPECT_EQ(a.counters().uncorrectable_read_errors,
            b.counters().uncorrectable_read_errors);
  EXPECT_EQ(a.counters().program_failures, b.counters().program_failures);
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  FaultSpec spec;
  spec.enabled = true;
  spec.read_uncorrectable_rate = 0.5;
  spec.seed = 1;
  FaultPlan a{spec};
  spec.seed = 2;
  FaultPlan b{spec};
  bool diverged = false;
  for (int i = 0; i < 200 && !diverged; ++i) {
    diverged = a.OnRead(i, 0, 0, 0).uncorrectable !=
               b.OnRead(i, 0, 0, 0).uncorrectable;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultPlan, UncorrectableReadChargesFullRetryBudget) {
  FaultSpec spec;
  spec.enabled = true;
  spec.read_uncorrectable_rate = 1.0;
  spec.max_read_retries = 5;
  FaultPlan plan{spec};
  ReadVerdict v = plan.OnRead(0, 0, 0, 0);
  EXPECT_TRUE(v.uncorrectable);
  EXPECT_EQ(v.retry_steps, 5u);  // the drive tried every voltage
  EXPECT_EQ(plan.counters().uncorrectable_read_errors, 1u);
  EXPECT_EQ(plan.counters().read_retry_steps, 5u);
}

TEST(FaultPlan, CorrectableReadUsesPartialBudget) {
  FaultSpec spec;
  spec.enabled = true;
  spec.read_correctable_rate = 1.0;
  spec.max_read_retries = 8;
  FaultPlan plan{spec};
  for (int i = 0; i < 100; ++i) {
    ReadVerdict v = plan.OnRead(i, 0, 0, 0);
    EXPECT_FALSE(v.uncorrectable);
    EXPECT_GE(v.retry_steps, 1u);
    EXPECT_LE(v.retry_steps, 8u);
  }
  EXPECT_EQ(plan.counters().correctable_read_errors, 100u);
}

TEST(FaultPlan, ScheduledFaultFiresOnceAtItsSite) {
  FaultSpec spec;
  spec.enabled = true;
  spec.scheduled.push_back({.at = sim::Microseconds(1000),
                            .kind = FaultKind::kProgramFail,
                            .die = 2,
                            .block = kAnySite});
  FaultPlan plan{spec};
  // Before the arm time: nothing fires.
  EXPECT_FALSE(plan.OnProgram(sim::Microseconds(999), 2, 0, 0).fail);
  // At/after the arm time but on the wrong die: still armed.
  EXPECT_FALSE(plan.OnProgram(sim::Microseconds(1000), 1, 0, 0).fail);
  // First matching op fires it...
  EXPECT_TRUE(plan.OnProgram(sim::Microseconds(1001), 2, 5, 0).fail);
  EXPECT_EQ(plan.counters().scheduled_fired, 1u);
  EXPECT_EQ(plan.counters().program_failures, 1u);
  // ...and it is one-shot.
  EXPECT_FALSE(plan.OnProgram(sim::Microseconds(1002), 2, 5, 0).fail);
  EXPECT_EQ(plan.counters().scheduled_fired, 1u);
}

TEST(FaultPlan, ScheduledReadFaultKindsAreDistinguished) {
  FaultSpec spec;
  spec.enabled = true;
  spec.max_read_retries = 4;
  spec.scheduled.push_back({.at = 0,
                            .kind = FaultKind::kReadCorrectable,
                            .die = kAnySite,
                            .block = kAnySite});
  spec.scheduled.push_back({.at = 0,
                            .kind = FaultKind::kReadUncorrectable,
                            .die = kAnySite,
                            .block = kAnySite});
  FaultPlan plan{spec};
  ReadVerdict first = plan.OnRead(1, 0, 0, 0);
  ReadVerdict second = plan.OnRead(2, 0, 0, 0);
  // Both scheduled read faults fire, one per read, in schedule order.
  EXPECT_FALSE(first.uncorrectable);
  EXPECT_GE(first.retry_steps, 1u);
  EXPECT_TRUE(second.uncorrectable);
  EXPECT_EQ(second.retry_steps, 4u);
  EXPECT_EQ(plan.counters().scheduled_fired, 2u);
  // A program never consumes a read-kind schedule entry.
  EXPECT_FALSE(plan.OnProgram(3, 0, 0, 0).fail);
}

TEST(FaultPlan, WearRaisesErrorRatesPastThreshold) {
  FaultSpec spec;
  spec.enabled = true;
  spec.wear_threshold_pe = 100;
  spec.wear_rber_slope = 0.01;  // +1% per cycle over threshold
  FaultPlan plan{spec};
  // Under the threshold with zero base rates: nothing ever fails.
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(plan.OnProgram(i, 0, 0, 100).fail);
  }
  EXPECT_EQ(plan.counters().wear_boosted_ops, 0u);
  // 200 cycles past the threshold: +200% -> certain program failure.
  EXPECT_TRUE(plan.OnProgram(1000, 0, 0, 300).fail);
  EXPECT_GE(plan.counters().wear_boosted_ops, 1u);
  // Reads on worn blocks become retry-prone too.
  ReadVerdict v = plan.OnRead(1001, 0, 0, 300);
  EXPECT_GE(v.retry_steps, 1u);
}

TEST(FaultKindNames, RoundTripThroughTheSpecGrammar) {
  EXPECT_EQ(ToString(FaultKind::kReadCorrectable), "read_c");
  EXPECT_EQ(ToString(FaultKind::kReadUncorrectable), "read_uc");
  EXPECT_EQ(ToString(FaultKind::kProgramFail), "prog");
}

}  // namespace
}  // namespace zstor::fault
