#include "sim/resource.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/task.h"

namespace zstor::sim {
namespace {

// A single-slot FIFO resource serializes its users: with N users each
// holding the slot for S ns, user i finishes at (i+1)*S.
TEST(FifoResource, SingleSlotSerializesUsers) {
  Simulator s;
  FifoResource r(s, 1);
  std::vector<Time> finish;
  auto user = [&]() -> Task<> {
    auto g = co_await r.Acquire();
    co_await s.Delay(100);
    finish.push_back(s.now());
  };
  for (int i = 0; i < 4; ++i) Spawn(user());
  s.Run();
  ASSERT_EQ(finish.size(), 4u);
  EXPECT_EQ(finish, (std::vector<Time>{100, 200, 300, 400}));
}

TEST(FifoResource, MultiSlotAllowsParallelism) {
  Simulator s;
  FifoResource r(s, 3);
  std::vector<Time> finish;
  auto user = [&]() -> Task<> {
    auto g = co_await r.Acquire();
    co_await s.Delay(100);
    finish.push_back(s.now());
  };
  for (int i = 0; i < 6; ++i) Spawn(user());
  s.Run();
  ASSERT_EQ(finish.size(), 6u);
  // First wave of 3 at t=100, second wave at t=200.
  EXPECT_EQ(finish, (std::vector<Time>{100, 100, 100, 200, 200, 200}));
}

TEST(FifoResource, GuardReleaseAllowsEarlyHandoff) {
  Simulator s;
  FifoResource r(s, 1);
  Time second_started = 0;
  auto first = [&]() -> Task<> {
    auto g = co_await r.Acquire();
    co_await s.Delay(50);
    g.Release();          // give up the slot early
    co_await s.Delay(50);  // keep running without the slot
  };
  auto second = [&]() -> Task<> {
    co_await s.Delay(1);
    auto g = co_await r.Acquire();
    second_started = s.now();
  };
  Spawn(first());
  Spawn(second());
  s.Run();
  EXPECT_EQ(second_started, 50u);
}

TEST(FifoResource, QueueLengthReflectsWaiters) {
  Simulator s;
  FifoResource r(s, 1);
  auto holder = [&]() -> Task<> {
    auto g = co_await r.Acquire();
    co_await s.Delay(100);
  };
  auto waiter = [&]() -> Task<> {
    co_await s.Delay(1);
    auto g = co_await r.Acquire();
  };
  Spawn(holder());
  Spawn(waiter());
  Spawn(waiter());
  s.RunUntil(10);
  EXPECT_EQ(r.free_slots(), 0u);
  EXPECT_EQ(r.queue_length(), 2u);
  s.Run();
  EXPECT_EQ(r.free_slots(), 1u);
  EXPECT_EQ(r.queue_length(), 0u);
}

// The key property for the ZNS firmware model: low-priority (background)
// waiters only get the server when no high-priority work is queued.
TEST(PriorityResource, HighPriorityBypassesQueuedBackgroundWork) {
  Simulator s;
  PriorityResource r(s, 1, 2);
  std::vector<char> order;
  auto bg = [&]() -> Task<> {
    co_await s.Delay(1);
    auto g = co_await r.Acquire(1);
    order.push_back('B');
    co_await s.Delay(10);
  };
  auto io = [&]() -> Task<> {
    co_await s.Delay(2);
    auto g = co_await r.Acquire(0);
    order.push_back('I');
    co_await s.Delay(10);
  };
  // Occupy the server first so both bg and io must queue.
  auto holder = [&]() -> Task<> {
    auto g = co_await r.Acquire(0);
    order.push_back('H');
    co_await s.Delay(100);
  };
  Spawn(holder());
  Spawn(bg());  // queues at t=1 (low prio)
  Spawn(io());  // queues at t=2 (high prio) — must run before bg
  s.Run();
  EXPECT_EQ(order, (std::vector<char>{'H', 'I', 'B'}));
}

TEST(PriorityResource, FifoWithinSamePriority) {
  Simulator s;
  PriorityResource r(s, 1, 2);
  std::vector<int> order;
  auto holder = [&]() -> Task<> {
    auto g = co_await r.Acquire(0);
    co_await s.Delay(100);
  };
  Spawn(holder());
  auto w = [&](int id) -> Task<> {
    co_await s.Delay(static_cast<Time>(1 + id));
    auto g = co_await r.Acquire(1);
    order.push_back(id);
  };
  for (int i = 0; i < 3; ++i) Spawn(w(i));
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(PriorityResource, BackgroundRunsWhenNoForegroundPending) {
  Simulator s;
  PriorityResource r(s, 1, 2);
  Time bg_ran_at = 0;
  auto bg = [&]() -> Task<> {
    auto g = co_await r.Acquire(1);
    bg_ran_at = s.now();
  };
  Spawn(bg());
  s.Run();
  EXPECT_EQ(bg_ran_at, 0u);  // nothing contended; ran immediately
}

// Background work sliced into small acquisitions lets foreground work
// interleave: the foreground's extra wait is bounded by one slice.
TEST(PriorityResource, SlicedBackgroundBoundsForegroundDelay) {
  Simulator s;
  PriorityResource r(s, 1, 2);
  constexpr Time kSlice = 5;
  bool bg_done = false;
  auto bg = [&]() -> Task<> {
    for (int i = 0; i < 100; ++i) {
      auto g = co_await r.Acquire(1);
      co_await s.Delay(kSlice);
    }
    bg_done = true;
  };
  Time io_latency = 0;
  auto io = [&]() -> Task<> {
    co_await s.Delay(17);  // arrive mid-slice
    Time start = s.now();
    auto g = co_await r.Acquire(0);
    io_latency = s.now() - start;
  };
  Spawn(bg());
  Spawn(io());
  s.Run();
  EXPECT_TRUE(bg_done);
  EXPECT_LE(io_latency, kSlice);  // waited at most one background slice
}

}  // namespace
}  // namespace zstor::sim
