// Runtime half of EventFn's performance contract (event_fn.h): once the
// simulator's containers are warm, the coroutine-resume path and the
// small-lambda scheduling path perform ZERO heap allocations per event.
// Every global allocation in this binary bumps a counter; the tests
// read the delta across a measured window.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/simulator.h"
#include "sim/task.h"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// GCC's mismatched-new-delete analysis peers through replacement
// operators into their malloc/free innards and misfires.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace zstor::sim {
namespace {

TEST(AllocCount, CoroutineResumePathIsAllocationFree) {
  Simulator s;
  bool done = false;
  auto body = [&]() -> Task<> {
    for (int i = 0; i < 5000; ++i) co_await s.Delay(1);
    done = true;
  };
  auto t = body();  // allocates the coroutine frame (once)
  // Warm-up: the first few events grow the timed heap to capacity.
  s.RunUntil(100);
  std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  s.RunUntil(4900);  // ~4800 schedule+resume round trips
  std::uint64_t delta =
      g_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(delta, 0u) << "coroutine resume path allocated";
  s.Run();
  EXPECT_TRUE(done);
}

TEST(AllocCount, SmallLambdaSchedulingIsAllocationFree) {
  Simulator s;
  // Warm the containers well past anything the chain below needs.
  for (int i = 0; i < 256; ++i) s.ScheduleIn(1, [] {});
  s.Run();

  int count = 0;
  struct Chain {
    Simulator* s;
    int* count;
    void operator()() const {
      if (++*count < 3000) s->ScheduleIn(1, *this);
    }
  };
  std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  s.ScheduleIn(1, Chain{&s, &count});
  s.Run();
  std::uint64_t delta =
      g_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(count, 3000);
  EXPECT_EQ(delta, 0u) << "small-callable scheduling path allocated";
}

TEST(AllocCount, ZeroDelayReadyRingPathIsAllocationFree) {
  Simulator s;
  // Warm the ready ring past the burst size used below.
  s.ScheduleIn(1, [&] {
    for (int i = 0; i < 64; ++i) s.ScheduleIn(0, [] {});
  });
  s.Run();

  int count = 0;
  std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  s.ScheduleIn(1, [&] {
    for (int i = 0; i < 32; ++i) {
      s.ScheduleIn(0, [&count] { ++count; });
    }
  });
  s.Run();
  std::uint64_t delta =
      g_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(count, 32);
  EXPECT_EQ(delta, 0u) << "ready-ring path allocated";
}

}  // namespace
}  // namespace zstor::sim
