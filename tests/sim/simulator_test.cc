#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace zstor::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleIn(30, [&] { order.push_back(3); });
  s.ScheduleIn(10, [&] { order.push_back(1); });
  s.ScheduleIn(20, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.ScheduleIn(100, [&, i] { order.push_back(i); });
  }
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator s;
  int fired = 0;
  s.ScheduleIn(1, [&] {
    ++fired;
    s.ScheduleIn(1, [&] {
      ++fired;
      s.ScheduleIn(1, [&] { ++fired; });
    });
  });
  s.Run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(s.now(), 3u);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator s;
  int fired = 0;
  s.ScheduleIn(10, [&] { ++fired; });
  s.ScheduleIn(20, [&] { ++fired; });
  s.ScheduleIn(30, [&] { ++fired; });
  s.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 20u);
  s.RunUntil(25);  // no events in (20, 25]; clock still advances
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 25u);
  s.Run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunReturnsEventCount) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.ScheduleIn(static_cast<Time>(i), [] {});
  EXPECT_EQ(s.Run(), 7u);
}

TEST(Simulator, ZeroDelayEventRunsAtCurrentTime) {
  Simulator s;
  Time seen = 12345;
  s.ScheduleIn(50, [&] { s.ScheduleIn(0, [&] { seen = s.now(); }); });
  s.Run();
  EXPECT_EQ(seen, 50u);
}

// Same-timestamp events stay FIFO even when they land in different
// containers: events scheduled for a future time wait in the timed heap,
// while zero-delay events scheduled *at* that time go through the ready
// ring. The global sequence number must still order them.
TEST(Simulator, FifoHoldsAcrossReadyRingAndHeap) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleIn(100, [&] {
    order.push_back(0);
    s.ScheduleIn(0, [&] { order.push_back(2); });    // ready ring
    s.ScheduleAt(100, [&] { order.push_back(3); });  // ring (at now)
    s.ScheduleIn(0, [&] {
      order.push_back(4);
      s.ScheduleIn(0, [&] { order.push_back(5); });
    });
  });
  s.ScheduleIn(100, [&] { order.push_back(1); });  // heap, earlier seq
  s.Run();
  // The heap-resident [1] must run before the ready-ring [2..] pushed
  // after it, even though the ring normally bypasses the heap.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(s.now(), 100u);
}

TEST(Simulator, FifoSurvivesReadyRingGrowth) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleIn(5, [&] {
    // Far more zero-delay events than the ring's initial capacity, so
    // it grows (and relocates pending events) mid-burst.
    for (int i = 0; i < 100; ++i) {
      s.ScheduleIn(0, [&, i] { order.push_back(i); });
    }
  });
  s.Run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, RunUntilFiresEventExactlyAtBoundary) {
  Simulator s;
  bool fired = false;
  s.ScheduleAt(20, [&] { fired = true; });
  s.RunUntil(20);  // when == until is inclusive
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.now(), 20u);
}

TEST(SimulatorDeathTest, SchedulingIntoThePastAborts) {
  Simulator s;
  s.ScheduleIn(100, [&] {
    EXPECT_DEATH(s.ScheduleAt(50, [] {}), "scheduling into the past");
  });
  s.Run();
}

TEST(TimeHelpers, ConversionsRoundTrip) {
  EXPECT_EQ(Microseconds(11.36), 11360u);
  EXPECT_EQ(Milliseconds(16.19), 16190000u);
  EXPECT_EQ(Seconds(2), 2'000'000'000u);
  EXPECT_DOUBLE_EQ(ToMicroseconds(11360), 11.36);
  EXPECT_DOUBLE_EQ(ToMilliseconds(16190000), 16.19);
  EXPECT_DOUBLE_EQ(ToSeconds(kSecond), 1.0);
}

}  // namespace
}  // namespace zstor::sim
