#include "sim/token_bucket.h"

#include <gtest/gtest.h>

#include "sim/task.h"

namespace zstor::sim {
namespace {

TEST(TokenBucket, BurstIsImmediatelyAvailable) {
  Simulator s;
  TokenBucket tb(s, /*rate=*/1000.0, /*burst=*/100.0);
  Time done_at = 1;
  auto t = [&]() -> Task<> {
    co_await tb.Take(100.0);
    done_at = s.now();
  };
  Spawn(t());
  s.Run();
  EXPECT_EQ(done_at, 0u);
}

TEST(TokenBucket, DrainedBucketDelaysAtConfiguredRate) {
  Simulator s;
  TokenBucket tb(s, /*rate=*/1000.0, /*burst=*/100.0);  // 1000 tokens/s
  Time done_at = 0;
  auto t = [&]() -> Task<> {
    co_await tb.Take(100.0);  // drains the burst instantly
    co_await tb.Take(50.0);   // must wait 50/1000 s = 50 ms
    done_at = s.now();
  };
  Spawn(t());
  s.Run();
  EXPECT_NEAR(ToSeconds(done_at), 0.050, 0.001);
}

TEST(TokenBucket, SustainedThroughputMatchesRate) {
  Simulator s;
  const double kRate = 1e6;  // tokens per second
  TokenBucket tb(s, kRate, /*burst=*/1000.0);
  int completed = 0;
  auto t = [&]() -> Task<> {
    for (int i = 0; i < 1000; ++i) {
      co_await tb.Take(1000.0);
      ++completed;
    }
  };
  Spawn(t());
  s.Run();
  EXPECT_EQ(completed, 1000);
  // 1e6 tokens at 1e6 tokens/s ≈ 1 s (minus the initial burst's worth).
  double elapsed = ToSeconds(s.now());
  EXPECT_NEAR(elapsed, 0.999, 0.01);
}

TEST(TokenBucket, OversizeRequestIncursDebt) {
  Simulator s;
  TokenBucket tb(s, /*rate=*/1000.0, /*burst=*/100.0);
  Time first = 0, second = 0;
  auto t = [&]() -> Task<> {
    co_await tb.Take(500.0);  // 5x burst: granted at full bucket, debt -400
    first = s.now();
    co_await tb.Take(100.0);  // must repay debt: (400+100)/1000 s
    second = s.now();
  };
  Spawn(t());
  s.Run();
  EXPECT_EQ(first, 0u);
  EXPECT_NEAR(ToSeconds(second), 0.5, 0.005);
}

TEST(TokenBucket, CompetingTakersShareFairlyFifo) {
  Simulator s;
  TokenBucket tb(s, /*rate=*/1000.0, /*burst=*/10.0);
  std::vector<int> order;
  auto t = [&](int id) -> Task<> {
    co_await s.Delay(static_cast<Time>(id));
    co_await tb.Take(10.0);
    order.push_back(id);
  };
  for (int i = 0; i < 3; ++i) Spawn(t(i));
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  // Three takes of 10 tokens at 1000/s: last finishes around 20 ms.
  EXPECT_NEAR(ToSeconds(s.now()), 0.020, 0.002);
}

TEST(TokenBucket, ModelsFioRateLimitInBytes) {
  // The §III-F experiment: rate limit 250 MiB/s, 128 KiB requests.
  Simulator s;
  const double kMiB = 1024.0 * 1024.0;
  TokenBucket tb(s, 250.0 * kMiB, /*burst=*/1.0 * kMiB);
  const double kReq = 128.0 * 1024.0;
  int completed = 0;
  auto t = [&]() -> Task<> {
    for (int i = 0; i < 2000; ++i) {
      co_await tb.Take(kReq);
      ++completed;
    }
  };
  Spawn(t());
  s.Run();
  double bytes = 2000 * kReq;
  double achieved = bytes / ToSeconds(s.now()) / kMiB;
  EXPECT_NEAR(achieved, 250.0, 5.0);
  EXPECT_EQ(completed, 2000);
}

}  // namespace
}  // namespace zstor::sim
