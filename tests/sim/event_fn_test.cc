#include "sim/event_fn.h"

#include <gtest/gtest.h>

#include <coroutine>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace zstor::sim {
namespace {

TEST(EventFn, DefaultConstructedIsDisengaged) {
  EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(EventFn, SmallCallableIsStoredInline) {
  // The shapes the simulator actually schedules: captureless, one
  // pointer, pointer + word. All must take the no-allocation path.
  static_assert(EventFn::kStoredInline<void (*)()>);
  int x = 0;
  auto one_ptr = [&x] { ++x; };
  static_assert(EventFn::kStoredInline<decltype(one_ptr)>);
  std::uint64_t w = 7;
  auto ptr_and_word = [&x, w] { x += static_cast<int>(w); };
  static_assert(EventFn::kStoredInline<decltype(ptr_and_word)>);

  EventFn fn(one_ptr);
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  EXPECT_EQ(x, 1);
}

TEST(EventFn, LargeCallableFallsBackToHeapAndStillRuns) {
  std::string s = "payload that certainly does not fit in two pointers";
  std::string seen;
  auto big = [s, &seen] { seen = s; };
  static_assert(!EventFn::kStoredInline<decltype(big)>);
  EventFn fn(big);
  fn();  // consumes: frees the owned copy itself
  EXPECT_EQ(seen, s);
}

TEST(EventFn, NonTriviallyCopyableCallableUsesHeapAndDestructs) {
  // A shared_ptr capture is pointer-sized but not trivially copyable,
  // so it must go to the heap — and an EventFn that is destroyed
  // without ever running must still release the payload.
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> weak = token;
  {
    auto cb = [token] { (void)*token; };
    static_assert(!EventFn::kStoredInline<decltype(cb)>);
    EventFn fn(cb);
    token.reset();
    EXPECT_FALSE(weak.expired());  // alive inside the pending event
  }
  EXPECT_TRUE(weak.expired());  // destructor released it
}

TEST(EventFn, InvocationConsumesHeapPayload) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> weak = token;
  EventFn fn([token] {});
  token.reset();
  EXPECT_FALSE(weak.expired());
  fn();  // the thunk deletes the payload after the call
  EXPECT_TRUE(weak.expired());
}

TEST(EventFn, MoveTransfersTheCallable) {
  int runs = 0;
  EventFn a([&runs] { ++runs; });
  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(runs, 1);
}

TEST(EventFn, MoveAssignmentReleasesThePreviousPayload) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> weak = token;
  EventFn a([token] {});
  token.reset();
  int runs = 0;
  a = EventFn([&runs] { ++runs; });
  EXPECT_TRUE(weak.expired());  // old heap payload freed by assignment
  a();
  EXPECT_EQ(runs, 1);
}

std::coroutine_handle<> g_handle;

struct MiniTask {
  struct promise_type {
    MiniTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() {}
  };
};

struct Capture {
  bool await_ready() { return false; }
  void await_suspend(std::coroutine_handle<> h) { g_handle = h; }
  void await_resume() {}
};

TEST(EventFn, CoroutineHandleConstructorResumes) {
  int after = 0;
  auto body = [&]() -> MiniTask {
    co_await Capture{};
    after = 1;
  };
  body();
  ASSERT_TRUE(g_handle);
  EventFn fn(g_handle);
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(after, 0);
  fn();
  EXPECT_EQ(after, 1);
  g_handle.destroy();
  g_handle = nullptr;
}

}  // namespace
}  // namespace zstor::sim
