#include "sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"

namespace zstor::sim {
namespace {

TEST(Welford, ComputesExactMomentsOfSmallSample) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.Record(x);
  EXPECT_EQ(w.count(), 8u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, EmptyIsZeroExceptExtrema) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.mean(), 0.0);
  EXPECT_EQ(w.variance(), 0.0);
  EXPECT_EQ(w.cv(), 0.0);
  // min/max of nothing is NaN, not 0 — an empty window must not look like
  // a real zero-latency sample.
  EXPECT_TRUE(std::isnan(w.min()));
  EXPECT_TRUE(std::isnan(w.max()));
}

TEST(Welford, CvOfConstantSeriesIsZero) {
  Welford w;
  for (int i = 0; i < 10; ++i) w.Record(3.5);
  EXPECT_NEAR(w.cv(), 0.0, 1e-9);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (Time v = 1; v <= 50; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 50u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 50.0);
  EXPECT_NEAR(h.Quantile(0.5), 25.0, 1.0);
}

TEST(LatencyHistogram, QuantilesWithinRelativeResolution) {
  LatencyHistogram h;
  // Latencies spanning µs to ms.
  Rng rng(5);
  std::vector<Time> vals;
  for (int i = 0; i < 50000; ++i) {
    Time v = 1000 + rng.UniformU64(10'000'000);
    vals.push_back(v);
    h.Record(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    double exact = static_cast<double>(
        vals[static_cast<std::size_t>(q * (vals.size() - 1))]);
    EXPECT_NEAR(h.Quantile(q) / exact, 1.0, 0.02) << "q=" << q;
  }
}

TEST(LatencyHistogram, MeanIsExact) {
  LatencyHistogram h;
  h.Record(Microseconds(11.36));
  h.Record(Microseconds(14.02));
  EXPECT_NEAR(h.mean_ns(), (11360.0 + 14020.0) / 2, 1e-9);
}

TEST(LatencyHistogram, HandlesHugeLatencies) {
  LatencyHistogram h;
  h.Record(Milliseconds(907.51));  // the paper's worst finish latency
  h.Record(Seconds(2));
  EXPECT_NEAR(h.Quantile(0.5) / static_cast<double>(Milliseconds(907.51)),
              1.0, 0.02);
  EXPECT_NEAR(h.Quantile(1.0) / static_cast<double>(Seconds(2)), 1.0, 0.02);
}

TEST(LatencyHistogram, MergeAddsCountsAndPreservesQuantiles) {
  LatencyHistogram a, b;
  for (int i = 0; i < 1000; ++i) a.Record(Microseconds(10));
  for (int i = 0; i < 1000; ++i) b.Record(Microseconds(1000));
  a.Merge(b);
  EXPECT_EQ(a.count(), 2000u);
  EXPECT_NEAR(a.Quantile(0.25) / 10e3, 1.0, 0.02);
  EXPECT_NEAR(a.Quantile(0.75) / 1000e3, 1.0, 0.02);
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isnan(h.Quantile(0.5)));
}

// An empty histogram has no quantiles: NaN for every q, matching the
// Welford min()/max() convention so an idle op class never reads as a
// zero-latency measurement.
TEST(LatencyHistogram, EmptyQuantilesAreNaN) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_TRUE(std::isnan(h.Quantile(q))) << "q=" << q;
  }
  EXPECT_TRUE(std::isnan(h.p50_ns()));
  EXPECT_TRUE(std::isnan(h.p99_ns()));
  EXPECT_TRUE(std::isnan(h.min_ns()));
  EXPECT_TRUE(std::isnan(h.max_ns()));
  EXPECT_EQ(h.Summary(), "n=0");
}

// With one sample every quantile — p0 through p100 — is that sample
// (within bucket resolution).
TEST(LatencyHistogram, SingleSampleDominatesAllQuantiles) {
  LatencyHistogram h;
  h.Record(Microseconds(42));
  for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_NEAR(h.Quantile(q) / 42e3, 1.0, 0.02) << "q=" << q;
  }
}

// p0 is the minimum's bucket, p100 the maximum's, even when the ranks
// collapse at the extremes of the CDF.
TEST(LatencyHistogram, ExtremeQuantilesHitMinAndMax) {
  LatencyHistogram h;
  h.Record(Microseconds(10));
  for (int i = 0; i < 100; ++i) h.Record(Microseconds(100));
  h.Record(Milliseconds(5));
  EXPECT_NEAR(h.Quantile(0.0) / 10e3, 1.0, 0.02);
  EXPECT_NEAR(h.Quantile(1.0) / 5e6, 1.0, 0.02);
}

TEST(LatencyHistogram, SummaryMentionsPercentiles) {
  LatencyHistogram h;
  h.Record(Microseconds(12));
  std::string s = h.Summary();
  EXPECT_NE(s.find("p95"), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

TEST(TimeSeries, BinsAccumulateByTime) {
  TimeSeries ts(Seconds(1));
  ts.Record(Milliseconds(100), 10.0);
  ts.Record(Milliseconds(900), 20.0);
  ts.Record(Milliseconds(1500), 5.0);
  ASSERT_EQ(ts.num_bins(), 2u);
  EXPECT_DOUBLE_EQ(ts.BinTotal(0), 30.0);
  EXPECT_DOUBLE_EQ(ts.BinTotal(1), 5.0);
  EXPECT_DOUBLE_EQ(ts.BinRate(0), 30.0);
}

TEST(TimeSeries, RatesScaleByBinWidth) {
  TimeSeries ts(Milliseconds(100));
  ts.Record(Milliseconds(50), 10.0);  // 10 units in 0.1 s = 100 units/s
  EXPECT_DOUBLE_EQ(ts.BinRate(0), 100.0);
}

TEST(TimeSeries, RateMomentsSkipWarmup) {
  TimeSeries ts(Seconds(1));
  ts.Record(Milliseconds(500), 1000.0);  // warmup spike
  ts.Record(Seconds(1.5), 10.0);
  ts.Record(Seconds(2.5), 10.0);
  ts.Record(Seconds(3.5), 10.0);
  Welford w = ts.RateMoments(/*skip_bins=*/1);
  EXPECT_EQ(w.count(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 10.0);
  EXPECT_NEAR(w.cv(), 0.0, 1e-9);
}

TEST(LatencyHistogramInterval, ReportsOnlySamplesSinceLastTake) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(1000);
  LatencyHistogram::IntervalStats first = h.TakeInterval();
  EXPECT_EQ(first.count, 100u);
  EXPECT_NEAR(first.p50_ns, 1000.0, 1000.0 * 0.02);
  // A second interval sees only what was recorded after the first take —
  // even though the cumulative histogram now mixes both populations.
  for (int i = 0; i < 50; ++i) h.Record(8000);
  LatencyHistogram::IntervalStats second = h.TakeInterval();
  EXPECT_EQ(second.count, 50u);
  EXPECT_NEAR(second.p50_ns, 8000.0, 8000.0 * 0.02);
  EXPECT_NEAR(second.max_ns, 8000.0, 8000.0 * 0.02);
}

TEST(LatencyHistogramInterval, CumulativeStatsUndisturbed) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(1000);
  h.TakeInterval();
  for (int i = 0; i < 100; ++i) h.Record(8000);
  h.TakeInterval();
  // --metrics consumers still see the whole run.
  EXPECT_EQ(h.count(), 200u);
  EXPECT_NEAR(h.p95_ns(), 8000.0, 8000.0 * 0.02);
  EXPECT_NEAR(h.p50_ns(), 1000.0, 1000.0 * 0.02);
}

TEST(LatencyHistogramInterval, EmptyIntervalHasNanStats) {
  LatencyHistogram h;
  h.Record(500);
  h.TakeInterval();
  LatencyHistogram::IntervalStats empty = h.TakeInterval();
  EXPECT_EQ(empty.count, 0u);
  // An idle interval must not look like a real zero-latency sample.
  EXPECT_TRUE(std::isnan(empty.mean_ns));
  EXPECT_TRUE(std::isnan(empty.p50_ns));
  EXPECT_TRUE(std::isnan(empty.max_ns));
}

TEST(LatencyHistogramInterval, ResetClearsBaseline) {
  LatencyHistogram h;
  h.Record(1000);
  h.TakeInterval();
  h.Reset();
  h.Record(2000);
  LatencyHistogram::IntervalStats s = h.TakeInterval();
  EXPECT_EQ(s.count, 1u);
  EXPECT_NEAR(s.p50_ns, 2000.0, 2000.0 * 0.02);
}

// The discriminator used for Obs. 11: a fluctuating (GC-ridden) series has
// high CV; a stable (ZNS) one has low CV.
TEST(TimeSeries, CvSeparatesStableFromFluctuating) {
  TimeSeries stable(Seconds(1)), sawtooth(Seconds(1));
  for (int i = 0; i < 60; ++i) {
    stable.Record(Seconds(i + 0.5), 1000.0);
    sawtooth.Record(Seconds(i + 0.5), (i % 2 == 0) ? 1900.0 : 100.0);
  }
  EXPECT_LT(stable.RateMoments().cv(), 0.01);
  EXPECT_GT(sawtooth.RateMoments().cv(), 0.5);
}

}  // namespace
}  // namespace zstor::sim
