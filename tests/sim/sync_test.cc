#include "sim/sync.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/task.h"

namespace zstor::sim {
namespace {

TEST(Semaphore, AcquireSucceedsWhenUnitsAvailable) {
  Simulator s;
  Semaphore sem(s, 2);
  int acquired = 0;
  auto worker = [&]() -> Task<> {
    co_await sem.Acquire();
    ++acquired;
  };
  Spawn(worker());
  Spawn(worker());
  s.Run();
  EXPECT_EQ(acquired, 2);
  EXPECT_EQ(sem.available(), 0u);
}

TEST(Semaphore, ThirdAcquirerWaitsForRelease) {
  Simulator s;
  Semaphore sem(s, 1);
  std::vector<int> order;
  auto holder = [&]() -> Task<> {
    co_await sem.Acquire();
    order.push_back(1);
    co_await s.Delay(100);
    order.push_back(2);
    sem.Release();
  };
  auto waiter = [&]() -> Task<> {
    co_await s.Delay(1);  // ensure holder acquires first
    co_await sem.Acquire();
    order.push_back(3);
    sem.Release();
  };
  Spawn(holder());
  Spawn(waiter());
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sem.available(), 1u);
}

TEST(Semaphore, WaitersWakeInFifoOrder) {
  Simulator s;
  Semaphore sem(s, 0);
  std::vector<int> order;
  auto w = [&](int id) -> Task<> {
    co_await s.Delay(static_cast<Time>(id));  // stagger arrival
    co_await sem.Acquire();
    order.push_back(id);
  };
  for (int i = 0; i < 4; ++i) Spawn(w(i));
  s.ScheduleIn(100, [&] {
    for (int i = 0; i < 4; ++i) sem.Release();
  });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(WaitGroup, WaitReturnsImmediatelyWhenCountZero) {
  Simulator s;
  WaitGroup wg(s);
  bool joined = false;
  auto j = [&]() -> Task<> {
    co_await wg.Wait();
    joined = true;
  };
  Spawn(j());
  EXPECT_TRUE(joined);  // no suspension needed
  s.Run();
}

TEST(WaitGroup, JoinsAllWorkers) {
  Simulator s;
  WaitGroup wg(s);
  int finished = 0;
  Time joined_at = 0;
  auto w = [&](Time d) -> Task<> {
    co_await s.Delay(d);
    ++finished;
    wg.Done();
  };
  for (int i = 1; i <= 3; ++i) {
    wg.Add();
    Spawn(w(static_cast<Time>(i * 10)));
  }
  auto joiner = [&]() -> Task<> {
    co_await wg.Wait();
    joined_at = s.now();
  };
  Spawn(joiner());
  s.Run();
  EXPECT_EQ(finished, 3);
  EXPECT_EQ(joined_at, 30u);
}

TEST(Queue, PopBlocksUntilPush) {
  Simulator s;
  Queue<int> q(s);
  int got = 0;
  Time got_at = 0;
  auto consumer = [&]() -> Task<> {
    got = co_await q.Pop();
    got_at = s.now();
  };
  Spawn(consumer());
  s.ScheduleIn(500, [&] { q.Push(99); });
  s.Run();
  EXPECT_EQ(got, 99);
  EXPECT_EQ(got_at, 500u);
}

TEST(Queue, BufferedItemsPopImmediately) {
  Simulator s;
  Queue<std::string> q(s);
  q.Push("a");
  q.Push("b");
  std::vector<std::string> got;
  auto consumer = [&]() -> Task<> {
    got.push_back(co_await q.Pop());
    got.push_back(co_await q.Pop());
  };
  Spawn(consumer());
  s.Run();
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(q.empty());
}

TEST(Queue, MultipleConsumersServedFifo) {
  Simulator s;
  Queue<int> q(s);
  std::vector<std::pair<int, int>> got;  // (consumer, item)
  auto consumer = [&](int id) -> Task<> {
    co_await s.Delay(static_cast<Time>(id));
    int item = co_await q.Pop();
    got.emplace_back(id, item);
  };
  for (int c = 0; c < 3; ++c) Spawn(consumer(c));
  s.ScheduleIn(10, [&] {
    q.Push(100);
    q.Push(200);
    q.Push(300);
  });
  s.Run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::pair<int, int>{0, 100}));
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 200}));
  EXPECT_EQ(got[2], (std::pair<int, int>{2, 300}));
}

TEST(Queue, ProducerConsumerPipelineConservesItems) {
  Simulator s;
  Queue<int> q(s);
  long sum = 0;
  const int kN = 1000;
  auto producer = [&]() -> Task<> {
    for (int i = 1; i <= kN; ++i) {
      co_await s.Delay(3);
      q.Push(i);
    }
  };
  auto consumer = [&]() -> Task<> {
    for (int i = 0; i < kN; ++i) {
      sum += co_await q.Pop();
      co_await s.Delay(5);  // slower than producer: queue builds up
    }
  };
  Spawn(producer());
  Spawn(consumer());
  s.Run();
  EXPECT_EQ(sum, static_cast<long>(kN) * (kN + 1) / 2);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace zstor::sim
