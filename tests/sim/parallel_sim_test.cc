#include "sim/parallel_sim.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace zstor::sim {
namespace {

// An execution log per lane: (virtual time, tag). Lane logs are only
// appended from that lane's own events, so no cross-thread access.
using LaneLog = std::vector<std::pair<Time, int>>;

TEST(ParallelSimulator, LanesStartAligned) {
  ParallelSimulator ps(3, 100);
  EXPECT_EQ(ps.num_lanes(), 3u);
  EXPECT_EQ(ps.lookahead(), 100u);
  for (std::uint32_t l = 0; l < 3; ++l) EXPECT_EQ(ps.lane(l).now(), 0u);
}

TEST(ParallelSimulator, IndependentLanesRunInOneUnboundedWindow) {
  ParallelSimulator ps(3, 100);
  std::vector<int> fired(3, 0);
  for (std::uint32_t l = 0; l < 3; ++l) {
    for (int i = 0; i < 5; ++i) {
      ps.lane(l).ScheduleIn(10 * (i + 1), [&fired, l] { ++fired[l]; });
    }
  }
  EXPECT_EQ(ps.Run(3), 15u);
  EXPECT_EQ(fired, (std::vector<int>{5, 5, 5}));
  // No lane may send, so the whole run is a single unbounded window.
  EXPECT_EQ(ps.windows(), 1u);
  EXPECT_EQ(ps.messages(), 0u);
}

TEST(ParallelSimulator, ClocksRealignAtQuiescence) {
  ParallelSimulator ps(2, 100);
  ps.lane(0).ScheduleIn(50, [] {});
  ps.lane(1).ScheduleIn(7777, [] {});
  ps.Run(2);
  EXPECT_EQ(ps.lane(0).now(), 7777u);
  EXPECT_EQ(ps.lane(1).now(), 7777u);
}

// Builds the tie scenario: lanes 1 and 2 each post two one-way messages
// toward lane 0, all delivering at the same virtual time. Returns lane
// 0's execution log; tag = src * 10 + message index.
LaneLog RunTieScenario(unsigned threads) {
  ParallelSimulator ps(3, 10);
  ps.SetSpontaneous(1, true);
  ps.SetSpontaneous(2, true);
  LaneLog log;
  for (std::uint32_t src : {2u, 1u}) {  // post order must not matter
    ps.lane(src).ScheduleIn(5, [&ps, &log, src] {
      for (int i = 0; i < 2; ++i) {
        ps.Post(src, 0, ps.lane(src).now() + 10, MsgKind::kOneWay,
                EventFn([&ps, &log, src, i] {
                  log.emplace_back(ps.lane(0).now(), int(src) * 10 + i);
                }));
      }
    });
  }
  ps.Run(threads);
  return log;
}

TEST(ParallelSimulator, SameTimeMessagesDrainInLaneSeqOrder) {
  // All four messages land at t=15; the (time, lane, seq) rule orders
  // lane 1's before lane 2's regardless of post order or thread count.
  LaneLog expected{{15, 10}, {15, 11}, {15, 20}, {15, 21}};
  for (unsigned threads : {1u, 2u, 3u}) {
    EXPECT_EQ(RunTieScenario(threads), expected) << "threads=" << threads;
  }
}

TEST(ParallelSimulator, LocalEventsRunBeforeSameTimeArrivals) {
  // Lane 0 has its own event at t=10; lane 1's message also delivers at
  // t=10. The window horizon is exactly 10, so the local event runs in
  // the first window and the arrival drains into the next one — local
  // work at time T always precedes cross-lane work at time T.
  for (unsigned threads : {1u, 2u}) {
    ParallelSimulator ps(2, 10);
    ps.SetSpontaneous(0, true);
    ps.SetSpontaneous(1, true);
    LaneLog log;
    ps.lane(0).ScheduleIn(10, [&ps, &log] {
      log.emplace_back(ps.lane(0).now(), 1);
    });
    ps.lane(1).ScheduleIn(0, [&ps, &log] {
      ps.Post(1, 0, 10, MsgKind::kOneWay, EventFn([&ps, &log] {
                log.emplace_back(ps.lane(0).now(), 2);
              }));
    });
    ps.Run(threads);
    EXPECT_EQ(log, (LaneLog{{10, 1}, {10, 2}})) << "threads=" << threads;
  }
}

TEST(ParallelSimulator, RequestReplyRoundTrip) {
  for (unsigned threads : {1u, 2u}) {
    ParallelSimulator ps(2, 250);
    ps.SetSpontaneous(0, true);
    Time reply_seen = 0;
    ps.lane(0).ScheduleIn(1000, [&ps, &reply_seen] {
      // Request departs lane 0 at t=1000, arrives at t=1250; the device
      // lane charges 500 ns of service and replies, landing at t=2000.
      ps.Post(0, 1, ps.lane(0).now() + 250, MsgKind::kRequest,
              EventFn([&ps, &reply_seen] {
                ps.lane(1).ScheduleIn(500, [&ps, &reply_seen] {
                  ps.Post(1, 0, ps.lane(1).now() + 250, MsgKind::kReply,
                          EventFn([&ps, &reply_seen] {
                            reply_seen = ps.lane(0).now();
                          }));
                });
              }));
    });
    ps.Run(threads);
    EXPECT_EQ(reply_seen, 2000u) << "threads=" << threads;
    EXPECT_EQ(ps.messages(), 2u);
  }
}

// A deterministic pseudo-random message storm: every lane runs an event
// chain that posts one-way messages to a rotating set of peers with
// varying extra delays. The merged per-lane logs must be identical for
// every thread count.
std::vector<LaneLog> RunStorm(unsigned threads) {
  constexpr std::uint32_t kLanes = 4;
  ParallelSimulator ps(kLanes, 50);
  std::vector<LaneLog> logs(kLanes);
  struct Chain {
    ParallelSimulator* ps;
    std::vector<LaneLog>* logs;
    std::uint32_t lane;
    std::uint64_t state;
    int remaining;
    void Fire() {
      Simulator& s = ps->lane(lane);
      (*logs)[lane].emplace_back(s.now(), remaining);
      if (remaining-- == 0) return;
      // xorshift64 — cheap, seeded, no globals.
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      std::uint32_t dst = (lane + 1 + state % (kLanes - 1)) % kLanes;
      Time extra = state % 97;
      ps->Post(lane, dst, s.now() + ps->lookahead() + extra, MsgKind::kOneWay,
               EventFn([p = ps, l = logs, dst] {
                 (*l)[dst].emplace_back(p->lane(dst).now(), -1);
               }));
      s.ScheduleIn(10 + state % 31, [this] { Fire(); });
    }
  };
  std::vector<Chain> chains;
  chains.reserve(kLanes);
  for (std::uint32_t l = 0; l < kLanes; ++l) {
    ps.SetSpontaneous(l, true);
    chains.push_back(Chain{&ps, &logs, l, 0x9E3779B9u + l, 40});
    ps.lane(l).ScheduleIn(l + 1, [c = &chains[l]] { c->Fire(); });
  }
  ps.Run(threads);
  return logs;
}

TEST(ParallelSimulator, MessageStormIsThreadCountInvariant) {
  std::vector<LaneLog> reference = RunStorm(1);
  std::size_t total = 0;
  for (const LaneLog& log : reference) total += log.size();
  EXPECT_GT(total, 200u);  // the storm actually stormed
  for (unsigned threads : {2u, 4u}) {
    EXPECT_EQ(RunStorm(threads), reference) << "threads=" << threads;
  }
}

/// Tortures the (time, lane, seq) tie rule: every lane runs local
/// events at exactly the times messages from every other lane arrive,
/// so each delivery slot mixes a local event with three same-time
/// arrivals from distinct senders. Returns all four lane logs.
std::vector<LaneLog> RunMixedTies(unsigned threads) {
  ParallelSimulator ps(4, 10);
  std::vector<LaneLog> logs(4);
  for (std::uint32_t l = 0; l < 4; ++l) {
    ps.SetSpontaneous(l, true);
    for (int k = 1; k <= 3; ++k) {
      ps.lane(l).ScheduleIn(10 * k, [&ps, &logs, l, k] {
        logs[l].emplace_back(ps.lane(l).now(), 100 * int(l) + k);
        for (std::uint32_t dst = 0; dst < 4; ++dst) {
          if (dst == l) continue;
          ps.Post(l, dst, ps.lane(l).now() + 10, MsgKind::kOneWay,
                  EventFn([&ps, &logs, dst, l, k] {
                    logs[dst].emplace_back(ps.lane(dst).now(),
                                           1000 + 100 * int(l) + k);
                  }));
        }
      });
    }
  }
  ps.Run(threads);
  return logs;
}

TEST(ParallelSimulator, MixedLocalAndRemoteTiesAreThreadCountInvariant) {
  std::vector<LaneLog> reference = RunMixedTies(1);
  // Spot-check the rule on lane 0's t=20 slot: its own local event (tag
  // 2) precedes the same-time arrivals, which come in sender-lane order.
  LaneLog at20;
  for (const auto& e : reference[0]) {
    if (e.first == 20) at20.push_back(e);
  }
  ASSERT_GE(at20.size(), 4u);
  EXPECT_EQ(at20[0].second, 2);     // local first
  EXPECT_EQ(at20[1].second, 1101);  // then lane 1's t=10 send...
  EXPECT_EQ(at20[2].second, 1201);  // ...then lane 2's...
  EXPECT_EQ(at20[3].second, 1301);  // ...then lane 3's
  for (unsigned threads : {2u, 4u}) {
    EXPECT_EQ(RunMixedTies(threads), reference) << "threads=" << threads;
  }
}

TEST(ParallelSimulator, SecondRunReusesRealignedClocks) {
  ParallelSimulator ps(2, 100);
  ps.SetSpontaneous(0, true);
  ps.lane(1).ScheduleIn(5000, [] {});
  ps.Run(2);
  ASSERT_EQ(ps.lane(0).now(), 5000u);
  // A cross-lane message in a second Run must clear the (realigned)
  // destination clock.
  bool delivered = false;
  ps.lane(0).ScheduleIn(10, [&ps, &delivered] {
    ps.Post(0, 1, ps.lane(0).now() + 100, MsgKind::kOneWay,
            EventFn([&delivered] { delivered = true; }));
  });
  ps.Run(2);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(ps.lane(1).now(), 5110u);
}

}  // namespace
}  // namespace zstor::sim
