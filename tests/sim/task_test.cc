#include "sim/task.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace zstor::sim {
namespace {

Task<> Sleeper(Simulator& s, Time d, int& out) {
  co_await s.Delay(d);
  out = 42;
}

TEST(Task, RunsEagerlyUntilFirstSuspension) {
  Simulator s;
  int stage = 0;
  auto body = [&](Simulator& sim) -> Task<> {
    stage = 1;
    co_await sim.Delay(10);
    stage = 2;
  };
  auto t = body(s);
  EXPECT_EQ(stage, 1);  // ran to the first co_await synchronously
  EXPECT_FALSE(t.Done());
  s.Run();
  EXPECT_EQ(stage, 2);
  EXPECT_TRUE(t.Done());
}

TEST(Task, DelayAdvancesVirtualTime) {
  Simulator s;
  int out = 0;
  auto t = Sleeper(s, Microseconds(5), out);
  s.Run();
  EXPECT_EQ(out, 42);
  EXPECT_EQ(s.now(), Microseconds(5));
  EXPECT_TRUE(t.Done());
}

Task<int> Answer(Simulator& s) {
  co_await s.Delay(1);
  co_return 7;
}

Task<> Caller(Simulator& s, int& out) {
  out = co_await Answer(s);
}

TEST(Task, AwaitingATaskYieldsItsValue) {
  Simulator s;
  int out = 0;
  auto t = Caller(s, out);
  s.Run();
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(t.Done());
}

Task<int> Immediate() { co_return 3; }

Task<> AwaitsImmediate(int& out) { out = co_await Immediate(); }

TEST(Task, AwaitingAnAlreadyDoneTaskDoesNotSuspend) {
  int out = 0;
  auto t = AwaitsImmediate(out);
  EXPECT_EQ(out, 3);
  EXPECT_TRUE(t.Done());
}

Task<> Chain(Simulator& s, int depth, Time& finished_at) {
  if (depth > 0) {
    co_await s.Delay(1);
    co_await Chain(s, depth - 1, finished_at);
  } else {
    finished_at = s.now();
  }
}

TEST(Task, DeepAwaitChainsAccumulateDelays) {
  Simulator s;
  Time finished_at = 0;
  auto t = Chain(s, 100, finished_at);
  s.Run();
  EXPECT_EQ(finished_at, 100u);
  EXPECT_TRUE(t.Done());
}

TEST(Task, DetachedTaskKeepsRunningAndSelfDestructs) {
  Simulator s;
  int out = 0;
  Spawn(Sleeper(s, 10, out));
  EXPECT_EQ(out, 0);
  s.Run();
  EXPECT_EQ(out, 42);
}

TEST(Task, DetachOfCompletedTaskIsSafe) {
  Simulator s;
  int out = 0;
  auto body = [&]() -> Task<> {
    out = 1;
    co_return;
  };
  auto t = body();
  EXPECT_TRUE(t.Done());
  std::move(t).Detach();  // frame destroyed immediately; no leak (ASAN-clean)
  EXPECT_EQ(out, 1);
}

TEST(Task, ManyConcurrentDetachedTasksInterleaveByTime) {
  Simulator s;
  int done = 0;
  auto body = [&](Time d) -> Task<> {
    co_await s.Delay(d);
    ++done;
  };
  for (int i = 0; i < 1000; ++i) {
    Spawn(body(static_cast<Time>(1000 - i)));
  }
  s.Run();
  EXPECT_EQ(done, 1000);
  EXPECT_EQ(s.now(), 1000u);
}

TEST(TaskDeathTest, DestroyingARunningTaskAborts) {
  EXPECT_DEATH(
      {
        Simulator s;
        int out = 0;
        { auto t = Sleeper(s, 10, out); }  // destroyed before completion
      },
      "destroyed while still running");
}

}  // namespace
}  // namespace zstor::sim
