#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace zstor::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformU64StaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.UniformU64(17), 17u);
  }
}

TEST(Rng, UniformU64CoversAllValues) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.UniformU64(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformU64IsApproximatelyUniform) {
  Rng r(123);
  const int kBuckets = 8, kN = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kN; ++i) {
    counts[r.UniformU64(kBuckets)]++;
  }
  // Chi-squared with 7 dof; 99.9% critical value ≈ 24.3.
  double expected = static_cast<double>(kN) / kBuckets;
  double chi2 = 0;
  for (int c : counts) {
    double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 24.3);
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    double u = r.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng r(11);
  const int kN = 100000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < kN; ++i) {
    double x = r.Normal();
    sum += x;
    sumsq += x * x;
  }
  double mean = sum / kN;
  double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, LogNormalNoiseHasMedianOne) {
  Rng r(13);
  const int kN = 20001;
  std::vector<double> xs(kN);
  for (auto& x : xs) x = r.LogNormalNoise(0.1);
  std::nth_element(xs.begin(), xs.begin() + kN / 2, xs.end());
  EXPECT_NEAR(xs[kN / 2], 1.0, 0.02);
}

TEST(Rng, LogNormalNoiseIsAlwaysPositive) {
  Rng r(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(r.LogNormalNoise(0.5), 0.0);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(19);
  const int kN = 100000;
  double sum = 0;
  for (int i = 0; i < kN; ++i) sum += r.Exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.1);
}

}  // namespace
}  // namespace zstor::sim
