#include "nand/flash_array.h"

#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_plan.h"
#include "sim/task.h"

namespace zstor::nand {
namespace {

Geometry SmallGeo() {
  Geometry g;
  g.channels = 2;
  g.dies_per_channel = 2;
  g.blocks_per_die = 4;
  g.pages_per_block = 8;
  g.page_bytes = 16 * 1024;
  return g;
}

TEST(Geometry, DerivedQuantities) {
  Geometry g = SmallGeo();
  EXPECT_EQ(g.total_dies(), 4u);
  EXPECT_EQ(g.total_blocks(), 16u);
  EXPECT_EQ(g.pages_per_die(), 32u);
  EXPECT_EQ(g.block_bytes(), 128u * 1024);
  EXPECT_EQ(g.total_bytes(), 4u * 32 * 16 * 1024);
  EXPECT_EQ(g.channel_of({0}), 0u);
  EXPECT_EQ(g.channel_of({1}), 1u);
  EXPECT_EQ(g.channel_of({2}), 0u);  // round-robin interleave
}

TEST(Geometry, Zn540ScaleBandwidthMatchesPaper) {
  // The default geometry+timing must reproduce the measured ~1155 MiB/s
  // device write bandwidth the paper reports (§III-F).
  sim::Simulator s;
  FlashArray arr(s, Geometry{}, Timing{});
  double mib_s = arr.PeakProgramBandwidth() / (1024.0 * 1024.0);
  EXPECT_NEAR(mib_s, 1155.0, 60.0);
}

TEST(FlashArray, ProgramThenReadTakesExpectedTime) {
  sim::Simulator s;
  Timing t;
  FlashArray arr(s, SmallGeo(), t);
  sim::Time done = 0;
  auto body = [&]() -> sim::Task<> {
    co_await arr.ProgramPage({0, 0, 0});
    co_await arr.ReadPage({0, 0, 0}, 16 * 1024);
    done = s.now();
  };
  auto task = body();
  s.Run();
  EXPECT_EQ(done,
            t.bus_xfer_page + t.program_page + t.read_page + t.bus_xfer_page);
  EXPECT_EQ(arr.counters().page_programs, 1u);
  EXPECT_EQ(arr.counters().page_reads, 1u);
}

TEST(FlashArray, SubPageReadTransfersProportionally) {
  sim::Simulator s;
  Timing t;
  FlashArray arr(s, SmallGeo(), t);
  sim::Time done = 0;
  auto body = [&]() -> sim::Task<> {
    co_await arr.ProgramPage({0, 0, 0});
    sim::Time start = s.now();
    co_await arr.ReadPage({0, 0, 0}, 4 * 1024);  // 1/4 page
    done = s.now() - start;
  };
  auto task = body();
  s.Run();
  EXPECT_EQ(done, t.read_page + t.bus_xfer_page / 4);
}

TEST(FlashArray, ProgramsOnSameDieSerialize) {
  sim::Simulator s;
  Timing t;
  FlashArray arr(s, SmallGeo(), t);
  auto body = [&](std::uint32_t page) -> sim::Task<> {
    co_await arr.ProgramPage({0, 0, page});
  };
  sim::Spawn(body(0));
  sim::Spawn(body(1));
  s.Run();
  // Two programs on one die: 2× (bus + tPROG) but bus of #2 overlaps die
  // busy of #1, so the span is bus + 2 * tPROG.
  EXPECT_EQ(s.now(), t.bus_xfer_page + 2 * t.program_page);
}

TEST(FlashArray, ProgramsOnDifferentDiesRunInParallel) {
  sim::Simulator s;
  Timing t;
  FlashArray arr(s, SmallGeo(), t);
  auto body = [&](std::uint32_t die) -> sim::Task<> {
    co_await arr.ProgramPage({die, 0, 0});
  };
  sim::Spawn(body(0));  // channel 0
  sim::Spawn(body(1));  // channel 1 — fully parallel
  s.Run();
  EXPECT_EQ(s.now(), t.bus_xfer_page + t.program_page);
}

TEST(FlashArray, DiesOnSameChannelShareTheBus) {
  sim::Simulator s;
  Timing t;
  FlashArray arr(s, SmallGeo(), t);
  auto body = [&](std::uint32_t die) -> sim::Task<> {
    co_await arr.ProgramPage({die, 0, 0});
  };
  sim::Spawn(body(0));  // channel 0
  sim::Spawn(body(2));  // channel 0 too: bus transfers serialize
  s.Run();
  EXPECT_EQ(s.now(), 2 * t.bus_xfer_page + t.program_page);
}

TEST(FlashArray, ReadQueuesBehindProgramOnBusyDie) {
  sim::Simulator s;
  Timing t;
  FlashArray arr(s, SmallGeo(), t);
  sim::Time read_latency = 0;
  auto prep = [&]() -> sim::Task<> { co_await arr.ProgramPage({0, 0, 0}); };
  auto w = [&]() -> sim::Task<> { co_await arr.ProgramPage({0, 0, 1}); };
  auto r = [&]() -> sim::Task<> {
    // Arrive while the second program holds the die.
    co_await s.Delay(t.bus_xfer_page + t.program_page / 2);
    sim::Time start = s.now();
    co_await arr.ReadPage({0, 0, 0}, 4096);
    read_latency = s.now() - start;
  };
  auto t1 = prep();
  s.Run();
  sim::Spawn(w());
  sim::Spawn(r());
  s.Run();
  // The read arrived 1 ns into the second program's die time and had to
  // wait for it to finish: latency ≈ tPROG + tR.
  EXPECT_GT(read_latency, t.read_page + t.program_page / 2);
}

TEST(FlashArray, EraseResetsWritePointerAndCountsPe) {
  sim::Simulator s;
  FlashArray arr(s, SmallGeo(), Timing{});
  auto body = [&]() -> sim::Task<> {
    co_await arr.ProgramPage({1, 2, 0});
    co_await arr.ProgramPage({1, 2, 1});
    EXPECT_EQ(arr.BlockWritePointer(1, 2), 2u);
    co_await arr.EraseBlock(1, 2);
    EXPECT_EQ(arr.BlockWritePointer(1, 2), 0u);
    EXPECT_EQ(arr.BlockPeCycles(1, 2), 1u);
    co_await arr.ProgramPage({1, 2, 0});  // reusable after erase
  };
  auto task = body();
  s.Run();
  EXPECT_EQ(arr.counters().block_erases, 1u);
}

TEST(FlashArrayDeathTest, NonSequentialProgramAborts) {
  EXPECT_DEATH(
      {
        sim::Simulator s;
        FlashArray arr(s, SmallGeo(), Timing{});
        auto body = [&]() -> sim::Task<> {
          co_await arr.ProgramPage({0, 0, 3});  // block is empty; wp = 0
        };
        auto task = body();
        s.Run();
      },
      "non-sequential program");
}

TEST(FlashArrayDeathTest, ReadingUnprogrammedPageAborts) {
  EXPECT_DEATH(
      {
        sim::Simulator s;
        FlashArray arr(s, SmallGeo(), Timing{});
        auto body = [&]() -> sim::Task<> {
          co_await arr.ReadPage({0, 0, 0}, 4096);
        };
        auto task = body();
        s.Run();
      },
      "unprogrammed");
}

TEST(FlashArray, AggregateStreamApproachesPeakBandwidth) {
  sim::Simulator s;
  Geometry g = SmallGeo();
  Timing t;
  FlashArray arr(s, g, t);
  // Stream every page of every block on every die.
  auto stream = [&](std::uint32_t die) -> sim::Task<> {
    for (std::uint32_t b = 0; b < g.blocks_per_die; ++b) {
      for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
        co_await arr.ProgramPage({die, b, p});
      }
    }
  };
  for (std::uint32_t d = 0; d < g.total_dies(); ++d) sim::Spawn(stream(d));
  s.Run();
  double bytes = static_cast<double>(arr.counters().bytes_programmed);
  double bw = bytes / sim::ToSeconds(s.now());
  EXPECT_GT(bw, 0.95 * arr.PeakProgramBandwidth());
}

// ---- fault injection (src/fault) ------------------------------------

TEST(FlashArrayFaults, CorrectableReadPaysRetryLatency) {
  sim::Simulator s;
  Timing t;
  FlashArray arr(s, SmallGeo(), t);
  fault::FaultSpec spec;
  spec.enabled = true;
  spec.read_correctable_rate = 1.0;
  spec.max_read_retries = 1;  // exactly one voltage step per read
  spec.read_retry_penalty = sim::Microseconds(25);
  fault::FaultPlan plan{spec};
  arr.AttachFaultPlan(&plan);
  sim::Time read_time = 0;
  MediaStatus st = MediaStatus::kProgramFail;
  auto body = [&]() -> sim::Task<> {
    co_await arr.ProgramPage({0, 0, 0});
    sim::Time start = s.now();
    st = co_await arr.ReadPage({0, 0, 0}, 16 * 1024);
    read_time = s.now() - start;
  };
  auto task = body();
  s.Run();
  // The read succeeds but the die was busy one extra retry step.
  EXPECT_EQ(st, MediaStatus::kOk);
  EXPECT_EQ(read_time,
            t.read_page + sim::Microseconds(25) + t.bus_xfer_page);
  EXPECT_EQ(arr.counters().read_retries, 1u);
  EXPECT_EQ(arr.counters().read_errors, 0u);
}

TEST(FlashArrayFaults, UncorrectableReadErrorsAndTransfersNothing) {
  sim::Simulator s;
  Timing t;
  FlashArray arr(s, SmallGeo(), t);
  fault::FaultSpec spec;
  spec.enabled = true;
  spec.read_uncorrectable_rate = 1.0;
  spec.max_read_retries = 4;
  spec.read_retry_penalty = sim::Microseconds(25);
  fault::FaultPlan plan{spec};
  arr.AttachFaultPlan(&plan);
  sim::Time read_time = 0;
  MediaStatus st = MediaStatus::kOk;
  std::uint64_t bytes_before = 0;
  auto body = [&]() -> sim::Task<> {
    co_await arr.ProgramPage({0, 0, 0});
    bytes_before = arr.counters().bytes_read;
    sim::Time start = s.now();
    st = co_await arr.ReadPage({0, 0, 0}, 16 * 1024);
    read_time = s.now() - start;
  };
  auto task = body();
  s.Run();
  EXPECT_EQ(st, MediaStatus::kReadError);
  // The die stepped through the whole retry budget, then gave up: no
  // channel transfer happens for a failed read.
  EXPECT_EQ(read_time, t.read_page + 4 * sim::Microseconds(25));
  EXPECT_EQ(arr.counters().read_errors, 1u);
  EXPECT_EQ(arr.counters().bytes_read, bytes_before);
}

TEST(FlashArrayFaults, ScheduledProgramFailureRetiresTheBlock) {
  sim::Simulator s;
  FlashArray arr(s, SmallGeo(), Timing{});
  fault::FaultSpec spec;
  spec.enabled = true;
  spec.scheduled.push_back({.at = 0,
                            .kind = fault::FaultKind::kProgramFail,
                            .die = 0,
                            .block = 0});
  fault::FaultPlan plan{spec};
  arr.AttachFaultPlan(&plan);
  std::vector<MediaStatus> results;
  auto body = [&]() -> sim::Task<> {
    results.push_back(co_await arr.ProgramPage({0, 0, 0}));  // fails
    // The failed program still consumed the page slot.
    EXPECT_EQ(arr.BlockWritePointer(0, 0), 1u);
    EXPECT_TRUE(arr.MarkBlockRetired(0, 0));
    results.push_back(co_await arr.ProgramPage({0, 0, 1}));  // fail-fast
    results.push_back(co_await arr.ProgramPage({0, 1, 0}));  // other block ok
  };
  auto task = body();
  s.Run();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0], MediaStatus::kProgramFail);
  EXPECT_EQ(results[1], MediaStatus::kProgramFail);
  EXPECT_EQ(results[2], MediaStatus::kOk);
  EXPECT_EQ(arr.counters().program_failures, 2u);
  EXPECT_EQ(arr.counters().blocks_retired, 1u);
}

TEST(FlashArrayFaults, RetiredBlockStaysReadableAndIsNeverRecycled) {
  sim::Simulator s;
  FlashArray arr(s, SmallGeo(), Timing{});
  MediaStatus read_st = MediaStatus::kProgramFail;
  auto body = [&]() -> sim::Task<> {
    co_await arr.ProgramPage({0, 0, 0});
    EXPECT_TRUE(arr.MarkBlockRetired(0, 0));
    // Retiring twice charges spare accounting only once.
    EXPECT_FALSE(arr.MarkBlockRetired(0, 0));
    // Data programmed before retirement is still readable.
    read_st = co_await arr.ReadPage({0, 0, 0}, 4096);
  };
  auto task = body();
  s.Run();
  EXPECT_EQ(read_st, MediaStatus::kOk);
  EXPECT_TRUE(arr.BlockRetired(0, 0));
  EXPECT_EQ(arr.counters().blocks_retired, 1u);
  // The deferred-erase recycling path refuses retired blocks.
  const std::uint32_t pe_before = arr.BlockPeCycles(0, 0);
  arr.DeferredEraseBlock(0, 0);
  EXPECT_EQ(arr.BlockPeCycles(0, 0), pe_before);
  EXPECT_EQ(arr.BlockWritePointer(0, 0), 1u);  // wp not reset
}

TEST(FlashArrayFaults, DetachedPlanRestoresCleanOperation) {
  sim::Simulator s;
  FlashArray arr(s, SmallGeo(), Timing{});
  fault::FaultSpec spec;
  spec.enabled = true;
  spec.read_uncorrectable_rate = 1.0;
  fault::FaultPlan plan{spec};
  arr.AttachFaultPlan(&plan);
  std::vector<MediaStatus> results;
  auto body = [&]() -> sim::Task<> {
    co_await arr.ProgramPage({0, 0, 0});
    results.push_back(co_await arr.ReadPage({0, 0, 0}, 4096));
    arr.AttachFaultPlan(nullptr);
    results.push_back(co_await arr.ReadPage({0, 0, 0}, 4096));
  };
  auto task = body();
  s.Run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], MediaStatus::kReadError);
  EXPECT_EQ(results[1], MediaStatus::kOk);
}

}  // namespace
}  // namespace zstor::nand
