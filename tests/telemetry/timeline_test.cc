// Timeline stream tests: TimelineWriter record formats, MetricSampler
// cadence and park/re-arm termination, and end-to-end timeline
// determinism through the Testbed facade.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/testbed.h"
#include "sim/simulator.h"
#include "telemetry/metrics.h"
#include "telemetry/sampler.h"
#include "telemetry/timeline.h"
#include "workload/job.h"

namespace zstor::telemetry {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

std::size_t CountContaining(const std::vector<std::string>& lines,
                            const std::string& needle) {
  std::size_t n = 0;
  for (const std::string& l : lines) {
    if (l.find(needle) != std::string::npos) ++n;
  }
  return n;
}

// ---- TimelineWriter record formats -------------------------------------

TEST(TimelineWriter, EmitsGoldenRecordLines) {
  std::string cap;
  TimelineWriter w(&cap);
  ASSERT_TRUE(w.ok());
  w.ZoneState(42, "tb0", 1, 7, "Empty", "ImplicitlyOpened");
  w.DieBusy(100, 50, "tb0", 0, 3, 4, 48);
  w.Window(200, 10, "tb0", 2, "gc.migrate", 9, 128);
  w.Sample(1000, "tb0", 1000, {{"c.a", 3.0}}, {{"g.b", 1.5}},
           {TimelineHist{"h", 2, 10.0, 10.0, 12.0, 12.0, 12.0}});
  std::vector<std::string> lines = Lines(cap);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0],
            "{\"type\":\"zone_state\",\"t\":42,\"tb\":\"tb0\",\"lane\":1,"
            "\"zone\":7,\"from\":\"Empty\",\"to\":\"ImplicitlyOpened\"}");
  EXPECT_EQ(lines[1],
            "{\"type\":\"die_busy\",\"t\":100,\"tb\":\"tb0\",\"dur\":50,"
            "\"lane\":0,\"die\":3,\"ops\":4,\"busy_ns\":48}");
  EXPECT_EQ(lines[2],
            "{\"type\":\"window\",\"t\":200,\"tb\":\"tb0\",\"dur\":10,"
            "\"lane\":2,\"kind\":\"gc.migrate\",\"a\":9,\"b\":128}");
  EXPECT_EQ(lines[3],
            "{\"type\":\"sample\",\"t\":1000,\"tb\":\"tb0\","
            "\"interval_ns\":1000,\"counters\":{\"c.a\":3},"
            "\"gauges\":{\"g.b\":1.5},\"hist\":{\"h\":{\"count\":2,"
            "\"mean_ns\":10,\"p50_ns\":10,\"p95_ns\":12,\"p99_ns\":12,"
            "\"max_ns\":12}}}");
  EXPECT_EQ(w.written(), 4u);
}

// ---- MetricSampler cadence and termination -----------------------------

TEST(MetricSampler, TicksOnIntervalMultiplesAndParksWhenDrained) {
  sim::Simulator s;
  MetricsRegistry m;
  std::string cap;
  TimelineWriter w(&cap);
  MetricSampler sampler(s, m, w, sim::Milliseconds(10), "t");
  Counter& work = m.GetCounter("work.items");
  s.ScheduleAt(sim::Milliseconds(5), [&work] { work.Add(3); });
  s.ScheduleAt(sim::Milliseconds(12), [&work] { work.Add(2); });
  s.ScheduleAt(sim::Milliseconds(25), [&work] { work.Add(1); });
  sampler.EnsureRunning();
  s.Run();  // must drain: the sampler parks once it is the only event
  EXPECT_EQ(sampler.samples(), 3u);
  std::vector<std::string> lines = Lines(cap);
  ASSERT_EQ(lines.size(), 3u);
  // Ticks on exact interval multiples, carrying per-interval deltas.
  EXPECT_NE(lines[0].find("\"t\":10000000,"), std::string::npos);
  EXPECT_NE(lines[0].find("\"work.items\":3"), std::string::npos);
  EXPECT_NE(lines[1].find("\"t\":20000000,"), std::string::npos);
  EXPECT_NE(lines[1].find("\"work.items\":2"), std::string::npos);
  EXPECT_NE(lines[2].find("\"t\":30000000,"), std::string::npos);
  EXPECT_NE(lines[2].find("\"work.items\":1"), std::string::npos);
}

TEST(MetricSampler, ZeroDeltasAreOmittedFromSamples) {
  sim::Simulator s;
  MetricsRegistry m;
  std::string cap;
  TimelineWriter w(&cap);
  MetricSampler sampler(s, m, w, sim::Milliseconds(10), "t");
  Counter& work = m.GetCounter("work.items");
  Counter& idle = m.GetCounter("idle.never_moves");
  idle.Add(5);  // counted before the first tick's baseline? No: emitted
                // as a delta of 5 in the first sample, then omitted.
  s.ScheduleAt(sim::Milliseconds(15), [&work] { work.Add(1); });
  sampler.EnsureRunning();
  s.Run();
  std::vector<std::string> lines = Lines(cap);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("idle.never_moves\":5"), std::string::npos);
  EXPECT_EQ(lines[1].find("idle.never_moves"), std::string::npos);
}

TEST(MetricSampler, EnsureRunningReArmsAfterPark) {
  sim::Simulator s;
  MetricsRegistry m;
  std::string cap;
  TimelineWriter w(&cap);
  MetricSampler sampler(s, m, w, sim::Milliseconds(10), "t");
  Counter& work = m.GetCounter("work.items");
  s.ScheduleAt(sim::Milliseconds(5), [&work] { work.Add(1); });
  sampler.EnsureRunning();
  s.Run();
  ASSERT_EQ(sampler.samples(), 1u);  // parked at t=10ms
  // Second workload run on the same testbed: re-arm and continue. The
  // next tick is the first interval multiple after now(), not a restart,
  // and ticks keep coming while the 33ms event is pending.
  s.ScheduleAt(sim::Milliseconds(33), [&work] { work.Add(2); });
  sampler.EnsureRunning();
  s.Run();
  std::vector<std::string> lines = Lines(cap);
  ASSERT_EQ(sampler.samples(), 4u);  // +20ms, +30ms (both empty), +40ms
  EXPECT_NE(lines[1].find("\"t\":20000000,"), std::string::npos);
  EXPECT_NE(lines[2].find("\"t\":30000000,"), std::string::npos);
  EXPECT_NE(lines[3].find("\"t\":40000000,"), std::string::npos);
  EXPECT_NE(lines[3].find("\"work.items\":2"), std::string::npos);
}

TEST(MetricSampler, SampleFinalCoversTheTailOnce) {
  sim::Simulator s;
  MetricsRegistry m;
  std::string cap;
  TimelineWriter w(&cap);
  MetricSampler sampler(s, m, w, sim::Milliseconds(10), "t");
  Counter& work = m.GetCounter("work.items");
  s.ScheduleAt(sim::Milliseconds(5), [&work] { work.Add(1); });
  sampler.EnsureRunning();
  s.Run();  // ticks at 10ms, then parks
  // Activity outside a sampled run (e.g. direct device commands between
  // jobs): the sim advances past the last tick with the sampler parked.
  s.ScheduleAt(sim::Milliseconds(14), [&work] { work.Add(1); });
  s.Run();
  sampler.SampleFinal();
  sampler.SampleFinal();  // idempotent: now() is already sampled
  std::vector<std::string> lines = Lines(cap);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("\"t\":14000000,"), std::string::npos);
  EXPECT_NE(lines[1].find("\"interval_ns\":4000000,"), std::string::npos);
  EXPECT_NE(lines[1].find("\"work.items\":1"), std::string::npos);
}

TEST(MetricSampler, SampleFinalIsNoOpWhenNothingRan) {
  sim::Simulator s;
  MetricsRegistry m;
  std::string cap;
  TimelineWriter w(&cap);
  MetricSampler sampler(s, m, w, sim::Milliseconds(10), "t");
  sampler.SampleFinal();
  EXPECT_EQ(cap, "");  // a testbed that never ran emits no sample
}

// ---- end-to-end determinism through the Testbed ------------------------

std::string RunTimelineWorkload() {
  std::string cap;
  {
    TelemetryConfig cfg;
    cfg.timeline_capture = &cap;
    cfg.sample_interval = sim::Milliseconds(10);
    Testbed tb = TestbedBuilder()
                     .WithZnsProfile(zns::Zn540Profile())
                     .WithLabel("det")
                     .WithTelemetry(cfg)
                     .Build();
    std::uint32_t base = tb.zns()->profile().num_zones / 2;
    tb.FillZones(base, 4);
    workload::JobSpec reader;
    reader.op = nvme::Opcode::kRead;
    reader.random = true;
    reader.request_bytes = 4096;
    reader.queue_depth = 4;
    reader.duration = sim::Milliseconds(50);
    reader.zones = tb.ZoneList(base, 4);
    tb.RunJob(reader);
    tb.Finish();
  }
  return cap;
}

TEST(TimelineDeterminism, IdenticalRunsProduceByteIdenticalTimelines) {
  std::string a = RunTimelineWorkload();
  std::string b = RunTimelineWorkload();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  std::vector<std::string> lines = Lines(a);
  // The stream carries periodic samples and die activity, all tagged
  // with the testbed label.
  EXPECT_GE(CountContaining(lines, "\"type\":\"sample\""), 5u);
  EXPECT_GE(CountContaining(lines, "\"type\":\"die_busy\""), 1u);
  EXPECT_EQ(CountContaining(lines, "\"tb\":\"det\""), lines.size());
}

}  // namespace
}  // namespace zstor::telemetry
