// Coverage guard for the Describe() protocol: every field of every
// counters struct must be exported into the metrics registry. The
// static_asserts pin each struct's field count — adding a field without
// updating Describe() (and this test) fails the build here, not
// silently in a dashboard.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "ftl/conv_device.h"
#include "hostif/kernel_stack.h"
#include "nand/flash_array.h"
#include "telemetry/metrics.h"
#include "zns/zns_device.h"

namespace zstor {
namespace {

// Field-count drift guards: uint64 counters only, so sizeof is exact.
static_assert(sizeof(zns::ZnsCounters) == 16 * sizeof(std::uint64_t),
              "ZnsCounters changed: update Describe(), GetSmartLog() and "
              "this test");
static_assert(sizeof(ftl::ConvCounters) == 11 * sizeof(std::uint64_t),
              "ConvCounters changed: update Describe(), GetSmartLog() and "
              "this test");
static_assert(sizeof(nand::FlashCounters) == 5 * sizeof(std::uint64_t),
              "FlashCounters changed: update Describe() and this test");
static_assert(sizeof(hostif::SchedulerStats) == 3 * sizeof(std::uint64_t),
              "SchedulerStats changed: update Describe() and this test");

std::vector<std::string> SnapshotNames(
    const telemetry::MetricsRegistry& reg) {
  std::vector<std::string> out;
  for (const auto& m : reg.TakeSnapshot().metrics) out.push_back(m.name);
  return out;
}

void ExpectAll(const std::vector<std::string>& have,
               const std::vector<std::string>& want) {
  for (const std::string& name : want) {
    EXPECT_NE(std::find(have.begin(), have.end(), name), have.end())
        << "counter not registered by Describe(): " << name;
  }
}

TEST(CountersCoverage, ZnsDescribeExportsEveryField) {
  telemetry::MetricsRegistry reg;
  zns::ZnsCounters{}.Describe(reg);
  std::vector<std::string> names = SnapshotNames(reg);
  EXPECT_EQ(names.size(), 16u);
  ExpectAll(names,
            {"zns.reads", "zns.writes", "zns.appends", "zns.flushes",
             "zns.zone_reports", "zns.zones_worn_offline",
             "zns.explicit_opens", "zns.implicit_opens",
             "zns.implicit_open_evictions", "zns.closes", "zns.finishes",
             "zns.resets", "zns.bytes_written", "zns.bytes_read",
             "zns.io_errors", "zns.zone_transitions"});
}

TEST(CountersCoverage, ConvDescribeExportsEveryFieldPlusWa) {
  telemetry::MetricsRegistry reg;
  ftl::ConvCounters{}.Describe(reg);
  std::vector<std::string> names = SnapshotNames(reg);
  // 11 counters + the derived write_amplification gauge.
  EXPECT_EQ(names.size(), 12u);
  ExpectAll(names,
            {"conv.reads", "conv.writes", "conv.deallocates",
             "conv.units_trimmed", "conv.bytes_read", "conv.bytes_written",
             "conv.host_units_programmed", "conv.gc_invocations",
             "conv.gc_units_migrated", "conv.gc_blocks_erased",
             "conv.io_errors", "conv.write_amplification"});
}

TEST(CountersCoverage, FlashDescribeExportsEveryField) {
  telemetry::MetricsRegistry reg;
  nand::FlashCounters{}.Describe(reg);
  std::vector<std::string> names = SnapshotNames(reg);
  EXPECT_EQ(names.size(), 5u);
  ExpectAll(names, {"nand.page_reads", "nand.page_programs",
                    "nand.block_erases", "nand.bytes_read",
                    "nand.bytes_programmed"});
}

TEST(CountersCoverage, SchedulerDescribeExportsEveryFieldPlusFraction) {
  telemetry::MetricsRegistry reg;
  hostif::SchedulerStats{}.Describe(reg);
  std::vector<std::string> names = SnapshotNames(reg);
  EXPECT_EQ(names.size(), 4u);
  ExpectAll(names, {"sched.staged_writes", "sched.dispatched_writes",
                    "sched.merged_writes", "sched.merged_fraction"});
}

}  // namespace
}  // namespace zstor
