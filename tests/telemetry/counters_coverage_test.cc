// Coverage guard for the Describe() protocol: every field of every
// counters struct must be exported into the metrics registry. The
// static_asserts pin each struct's field count — adding a field without
// updating Describe() (and this test) fails the build here, not
// silently in a dashboard.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "ftl/conv_device.h"
#include "hostif/kernel_stack.h"
#include "hostif/resilient_stack.h"
#include "nand/flash_array.h"
#include "telemetry/metrics.h"
#include "zkv/kv_store.h"
#include "zns/zns_device.h"
#include "zobj/zone_object_store.h"

namespace zstor {
namespace {

// Field-count drift guards: uint64 counters only, so sizeof is exact.
static_assert(sizeof(zns::ZnsCounters) == 30 * sizeof(std::uint64_t),
              "ZnsCounters changed: update Describe(), GetSmartLog() and "
              "this test");
static_assert(sizeof(ftl::ConvCounters) == 27 * sizeof(std::uint64_t),
              "ConvCounters changed: update Describe(), GetSmartLog() and "
              "this test");
static_assert(sizeof(nand::FlashCounters) == 11 * sizeof(std::uint64_t),
              "FlashCounters changed: update Describe() and this test");
static_assert(sizeof(hostif::SchedulerStats) == 3 * sizeof(std::uint64_t),
              "SchedulerStats changed: update Describe() and this test");
static_assert(sizeof(fault::FaultCounters) == 6 * sizeof(std::uint64_t),
              "FaultCounters changed: update Describe() and this test");
static_assert(sizeof(hostif::ResilienceStats) == 9 * sizeof(std::uint64_t),
              "ResilienceStats changed: update Describe() and this test");
static_assert(sizeof(zobj::StoreStats) == 15 * sizeof(std::uint64_t),
              "StoreStats changed: update Describe() and this test");
static_assert(sizeof(zkv::KvStats) == 27 * sizeof(std::uint64_t),
              "KvStats changed: update Describe() and this test");

std::vector<std::string> SnapshotNames(
    const telemetry::MetricsRegistry& reg) {
  std::vector<std::string> out;
  for (const auto& m : reg.TakeSnapshot().metrics) out.push_back(m.name);
  return out;
}

void ExpectAll(const std::vector<std::string>& have,
               const std::vector<std::string>& want) {
  for (const std::string& name : want) {
    EXPECT_NE(std::find(have.begin(), have.end(), name), have.end())
        << "counter not registered by Describe(): " << name;
  }
}

TEST(CountersCoverage, ZnsDescribeExportsEveryField) {
  telemetry::MetricsRegistry reg;
  zns::ZnsCounters{}.Describe(reg);
  std::vector<std::string> names = SnapshotNames(reg);
  EXPECT_EQ(names.size(), 30u);
  ExpectAll(names,
            {"zns.reads", "zns.writes", "zns.appends", "zns.flushes",
             "zns.zone_reports", "zns.zones_worn_offline",
             "zns.explicit_opens", "zns.implicit_opens",
             "zns.implicit_open_evictions", "zns.closes", "zns.finishes",
             "zns.resets", "zns.bytes_written", "zns.bytes_read",
             "zns.host_rejects", "zns.media_errors", "zns.read_faults",
             "zns.write_faults", "zns.retired_blocks",
             "zns.zones_degraded_readonly", "zns.zones_failed_offline",
             "zns.spare_blocks_used", "zns.zone_transitions",
             "zns.crashes", "zns.recoveries", "zns.torn_pages",
             "zns.crash_lost_bytes", "zns.recovery_zone_scans",
             "zns.recovery_ns_total", "zns.reset_drops"});
}

TEST(CountersCoverage, ConvDescribeExportsEveryFieldPlusWa) {
  telemetry::MetricsRegistry reg;
  ftl::ConvCounters{}.Describe(reg);
  std::vector<std::string> names = SnapshotNames(reg);
  // 27 counters + the derived write_amplification gauge.
  EXPECT_EQ(names.size(), 28u);
  ExpectAll(names,
            {"conv.reads", "conv.writes", "conv.deallocates",
             "conv.units_trimmed", "conv.bytes_read", "conv.bytes_written",
             "conv.host_units_programmed", "conv.gc_invocations",
             "conv.gc_units_migrated", "conv.gc_blocks_erased",
             "conv.host_rejects", "conv.media_errors", "conv.read_faults",
             "conv.write_faults", "conv.retired_blocks",
             "conv.program_retries", "conv.flushes", "conv.journal_syncs",
             "conv.checkpoints", "conv.journal_units_written",
             "conv.crashes", "conv.recoveries", "conv.crash_lost_units",
             "conv.journal_reverted_entries",
             "conv.recovery_replay_entries", "conv.recovery_ns_total",
             "conv.reset_drops", "conv.write_amplification"});
}

TEST(CountersCoverage, FlashDescribeExportsEveryField) {
  telemetry::MetricsRegistry reg;
  nand::FlashCounters{}.Describe(reg);
  std::vector<std::string> names = SnapshotNames(reg);
  EXPECT_EQ(names.size(), 11u);
  ExpectAll(names, {"nand.page_reads", "nand.page_programs",
                    "nand.block_erases", "nand.bytes_read",
                    "nand.bytes_programmed", "nand.read_retries",
                    "nand.read_errors", "nand.program_failures",
                    "nand.blocks_retired", "nand.recovery_probes",
                    "nand.crash_discarded_pages"});
}

TEST(CountersCoverage, FaultDescribeExportsEveryField) {
  telemetry::MetricsRegistry reg;
  fault::FaultCounters{}.Describe(reg);
  std::vector<std::string> names = SnapshotNames(reg);
  EXPECT_EQ(names.size(), 6u);
  ExpectAll(names,
            {"fault.correctable_read_errors",
             "fault.uncorrectable_read_errors", "fault.program_failures",
             "fault.read_retry_steps", "fault.scheduled_fired",
             "fault.wear_boosted_ops"});
}

TEST(CountersCoverage, ResilienceDescribeExportsEveryField) {
  telemetry::MetricsRegistry reg;
  hostif::ResilienceStats{}.Describe(reg);
  std::vector<std::string> names = SnapshotNames(reg);
  EXPECT_EQ(names.size(), 9u);
  ExpectAll(names,
            {"hostif.commands", "hostif.attempts", "hostif.retries",
             "hostif.timeouts", "hostif.recovered",
             "hostif.terminal_errors", "hostif.retries_exhausted",
             "hostif.device_resets_seen", "hostif.replayed_dupes"});
}

TEST(CountersCoverage, ZobjDescribeExportsEveryFieldPlusWa) {
  telemetry::MetricsRegistry reg;
  zobj::StoreStats{}.Describe(reg);
  std::vector<std::string> names = SnapshotNames(reg);
  // 15 counters + the derived write_amplification gauge.
  EXPECT_EQ(names.size(), 16u);
  ExpectAll(names,
            {"zobj.puts", "zobj.gets", "zobj.deletes", "zobj.compactions",
             "zobj.bytes_written", "zobj.bytes_relocated",
             "zobj.zone_resets", "zobj.write_reroutes",
             "zobj.zones_degraded", "zobj.lost_extents",
             "zobj.crash_recoveries", "zobj.truncated_extents",
             "zobj.torn_extents", "zobj.crash_lost_bytes",
             "zobj.crash_lost_objects", "zobj.write_amplification"});
}

TEST(CountersCoverage, KvDescribeExportsEveryFieldPlusWa) {
  telemetry::MetricsRegistry reg;
  zkv::KvStats{}.Describe(reg);
  std::vector<std::string> names = SnapshotNames(reg);
  // 27 counters + the derived write_amplification gauge.
  EXPECT_EQ(names.size(), 28u);
  ExpectAll(names,
            {"kv.puts", "kv.gets", "kv.deletes", "kv.found", "kv.missing",
             "kv.user_bytes", "kv.wal_appends", "kv.wal_bytes",
             "kv.wal_resets", "kv.memtable_rotations", "kv.flushes",
             "kv.flush_bytes", "kv.tables_written", "kv.tables_deleted",
             "kv.compactions", "kv.compact_bytes_read",
             "kv.compact_bytes_written", "kv.gc_passes",
             "kv.gc_relocated_bytes", "kv.zone_resets", "kv.write_stall_ns",
             "kv.read_ios", "kv.read_tag_mismatches", "kv.crash_recoveries",
             "kv.wal_replayed", "kv.wal_lost", "kv.tables_dropped",
             "kv.write_amplification"});
}

TEST(CountersCoverage, SchedulerDescribeExportsEveryFieldPlusFraction) {
  telemetry::MetricsRegistry reg;
  hostif::SchedulerStats{}.Describe(reg);
  std::vector<std::string> names = SnapshotNames(reg);
  EXPECT_EQ(names.size(), 4u);
  ExpectAll(names, {"sched.staged_writes", "sched.dispatched_writes",
                    "sched.merged_writes", "sched.merged_fraction"});
}

}  // namespace
}  // namespace zstor
