// Escaping tests for the telemetry JSON writers: hostile span and metric
// names must round-trip through the JSONL trace sink and the metrics
// snapshot as valid JSON. Verified with the ztrace parser — the actual
// downstream consumer of both formats.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "ztrace/json_value.h"

namespace zstor::telemetry {
namespace {

using ztrace::JsonValue;

TEST(JsonHelpers, EscapesQuotesBackslashesAndControls) {
  std::string out;
  AppendJsonString(out, "a\"b\\c\nd\te\x01");
  auto v = JsonValue::Parse(out);
  ASSERT_TRUE(v.has_value()) << out;
  EXPECT_EQ(v->string(), "a\"b\\c\nd\te\x01");
  EXPECT_EQ(JsonQuoted("x\"y"), "\"x\\\"y\"");
}

TEST(JsonHelpers, NumbersAreFiniteJson) {
  std::string out;
  AppendJsonNumber(out, 1.5);
  out += " ";
  AppendJsonNumber(out, std::numeric_limits<double>::quiet_NaN());
  out += " ";
  AppendJsonNumber(out, std::numeric_limits<double>::infinity());
  // NaN/inf have no JSON representation; they must render as null.
  EXPECT_EQ(out, "1.5 null null");
}

TEST(JsonlFileSink, HostileSpanNamesStayParseable) {
  std::string path =
      ::testing::TempDir() + "/hostile_trace.jsonl";
  {
    JsonlFileSink sink(path);
    ASSERT_TRUE(sink.ok());
    TraceEvent e;
    e.begin = 10;
    e.end = 20;
    e.cmd = 7;
    e.layer = Layer::kHost;
    e.name = "evil\"name\\with\ncontrols";
    sink.OnEvent(e);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto v = JsonValue::Parse(line);
  ASSERT_TRUE(v.has_value()) << line;
  EXPECT_EQ(v->StringOr("name", ""), "evil\"name\\with\ncontrols");
  EXPECT_DOUBLE_EQ(v->NumberOr("cmd", 0), 7.0);
  std::remove(path.c_str());
}

TEST(MetricsSnapshot, HostileMetricNamesStayParseable) {
  MetricsRegistry reg;
  reg.GetCounter("evil\"counter\nname").Set(3);
  reg.GetGauge("gauge\\name").Set(1.25);
  std::string json = reg.TakeSnapshot().ToJson();
  auto v = JsonValue::Parse(json);
  ASSERT_TRUE(v.has_value()) << json;
  EXPECT_DOUBLE_EQ(v->NumberOr("evil\"counter\nname", 0), 3.0);
  EXPECT_DOUBLE_EQ(v->NumberOr("gauge\\name", 0), 1.25);
}

}  // namespace
}  // namespace zstor::telemetry
