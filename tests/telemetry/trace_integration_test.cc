// End-to-end telemetry checks through the Testbed facade: the spans a
// traced command emits must tile its application-observed latency, and a
// run's metrics snapshot must agree with the device's own counters.
#include <gtest/gtest.h>

#include <map>
#include <string_view>
#include <vector>

#include "harness/testbed.h"
#include "sim/task.h"

namespace zstor {
namespace {

using nvme::Opcode;
using telemetry::TraceEvent;

Testbed TracedZnsTestbed() {
  return TestbedBuilder()
      .WithZnsProfile(zns::TinyProfile())
      .WithStack(StackChoice::kSpdk)
      .WithTelemetry({.ring_capacity = 4096})
      .Build();
}

// At QD=1 through the SPDK stack every phase of a command happens
// back-to-back in virtual time, so its span durations must sum exactly
// to the TimedCompletion latency the application sees.
TEST(TraceIntegration, Qd1AppendSpansSumToReportedLatency) {
  Testbed tb = TracedZnsTestbed();
  struct Done {
    std::uint64_t trace_id;
    sim::Time latency;
  };
  std::vector<Done> done;
  auto body = [&]() -> sim::Task<> {
    for (int i = 0; i < 10; ++i) {
      auto tc = co_await tb.stack().Submit(
          {.opcode = Opcode::kAppend, .slba = 0, .nlb = 1});
      EXPECT_TRUE(tc.completion.ok());
      done.push_back({tc.trace_id, tc.latency()});
    }
  };
  auto t = body();
  tb.sim().Run();
  ASSERT_EQ(done.size(), 10u);

  auto events = tb.ring()->Events();
  EXPECT_EQ(tb.ring()->dropped(), 0u);
  std::map<std::uint64_t, sim::Time> span_sum;
  for (const TraceEvent& e : events) span_sum[e.cmd] += e.duration();
  for (const Done& d : done) {
    EXPECT_NE(d.trace_id, 0u);
    EXPECT_EQ(span_sum[d.trace_id], d.latency)
        << "spans of command " << d.trace_id
        << " do not tile its latency";
  }
}

TEST(TraceIntegration, ReadSpansIncludeNandServiceAndSumToLatency) {
  Testbed tb = TracedZnsTestbed();
  tb.zns()->DebugFillZone(0, tb.zns()->profile().zone_cap_bytes);
  std::uint64_t trace_id = 0;
  sim::Time latency = 0;
  auto body = [&]() -> sim::Task<> {
    auto tc = co_await tb.stack().Submit(
        {.opcode = Opcode::kRead, .slba = 0, .nlb = 1});
    EXPECT_TRUE(tc.completion.ok());
    trace_id = tc.trace_id;
    latency = tc.latency();
  };
  auto t = body();
  tb.sim().Run();

  sim::Time sum = 0;
  bool saw_nand_read = false;
  for (const TraceEvent& e : tb.ring()->Events()) {
    if (e.cmd != trace_id) continue;
    sum += e.duration();
    if (std::string_view(e.name) == "nand.read") saw_nand_read = true;
  }
  EXPECT_TRUE(saw_nand_read);
  EXPECT_EQ(sum, latency);
}

TEST(TraceIntegration, SnapshotMatchesDeviceCounters) {
  Testbed tb = TracedZnsTestbed();
  auto body = [&]() -> sim::Task<> {
    for (int i = 0; i < 5; ++i) {
      auto tc = co_await tb.stack().Submit(
          {.opcode = Opcode::kAppend, .slba = 0, .nlb = 1});
      EXPECT_TRUE(tc.completion.ok());
    }
    auto r = co_await tb.stack().Submit(
        {.opcode = Opcode::kZoneMgmtSend,
         .slba = 0,
         .zone_action = nvme::ZoneAction::kReset});
    EXPECT_TRUE(r.completion.ok());
  };
  auto t = body();
  tb.sim().Run();

  telemetry::Snapshot snap = tb.TakeSnapshot();
  const auto* appends = snap.Find("zns.appends");
  ASSERT_NE(appends, nullptr);
  EXPECT_DOUBLE_EQ(appends->value,
                   static_cast<double>(tb.zns()->counters().appends));
  const auto* resets = snap.Find("zns.resets");
  ASSERT_NE(resets, nullptr);
  EXPECT_DOUBLE_EQ(resets->value, 1.0);
  // Transitions happened (Empty -> ImplicitlyOpen -> ... -> Empty).
  const auto* transitions = snap.Find("zns.zone_transitions");
  ASSERT_NE(transitions, nullptr);
  EXPECT_GE(transitions->value, 2.0);
  // The queue pair counted every command.
  const auto* cqes = snap.Find("qp.completions");
  ASSERT_NE(cqes, nullptr);
  EXPECT_DOUBLE_EQ(cqes->value, 6.0);
  // The host latency histogram recorded every submission.
  const auto* lat = snap.Find("host.latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->value, 6.0);
}

TEST(TraceIntegration, DisabledTelemetryMeansNullAccessors) {
  Testbed tb = TestbedBuilder().WithZnsProfile(zns::TinyProfile()).Build();
  EXPECT_EQ(tb.telemetry(), nullptr);
  EXPECT_EQ(tb.ring(), nullptr);
  // The device still works without any telemetry attached.
  auto body = [&]() -> sim::Task<> {
    auto tc = co_await tb.stack().Submit(
        {.opcode = Opcode::kAppend, .slba = 0, .nlb = 1});
    EXPECT_TRUE(tc.completion.ok());
    EXPECT_EQ(tc.trace_id, 0u);
  };
  auto t = body();
  tb.sim().Run();
}

TEST(TraceIntegration, JobResultDescribesIntoTestbedMetrics) {
  Testbed tb = TracedZnsTestbed();
  workload::JobSpec spec;
  spec.op = Opcode::kAppend;
  spec.request_bytes = 4096;
  spec.zones = {0, 1};
  spec.duration = sim::Milliseconds(5);
  workload::JobResult r = tb.RunJob(spec);
  ASSERT_GT(r.ops, 0u);
  telemetry::Snapshot snap = tb.TakeSnapshot();
  const auto* ops = snap.Find("job.ops");
  ASSERT_NE(ops, nullptr);
  EXPECT_DOUBLE_EQ(ops->value, static_cast<double>(r.ops));
}

}  // namespace
}  // namespace zstor
