#include "telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace zstor::telemetry {
namespace {

TraceEvent Ev(sim::Time begin, sim::Time end, std::uint64_t cmd,
              const char* name) {
  return {begin, end, cmd, Layer::kFcp, name, 0, 0};
}

TEST(RingBufferSink, KeepsEventsInEmissionOrder) {
  RingBufferSink ring(8);
  ring.OnEvent(Ev(0, 10, 1, "a"));
  ring.OnEvent(Ev(10, 20, 1, "b"));
  ring.OnEvent(Ev(5, 25, 2, "c"));
  auto events = ring.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_STREQ(events[1].name, "b");
  EXPECT_STREQ(events[2].name, "c");
  EXPECT_EQ(ring.total_events(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(RingBufferSink, WrapsAroundKeepingTheNewest) {
  RingBufferSink ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) ring.OnEvent(Ev(i, i + 1, i, "e"));
  auto events = ring.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first among the surviving (newest) four: cmds 6, 7, 8, 9.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].cmd, 6 + i);
  EXPECT_EQ(ring.total_events(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
}

TEST(Tracer, DisabledTracerDropsEverything) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  // No sink: these must be no-ops, not crashes.
  t.Span(0, 10, 1, Layer::kHost, "host.submit");
  t.Instant(5, 1, Layer::kZone, "zone.transition");
  t.Emit(Ev(0, 1, 1, "x"));
}

TEST(Tracer, EmitsToAttachedSinkAndStopsWhenDetached) {
  Tracer t;
  RingBufferSink ring(8);
  t.SetSink(&ring);
  EXPECT_TRUE(t.enabled());
  t.Span(0, 10, 7, Layer::kNand, "die.read", 3, 4096);
  ASSERT_EQ(ring.Events().size(), 1u);
  EXPECT_EQ(ring.Events()[0].cmd, 7u);
  EXPECT_EQ(ring.Events()[0].a, 3);
  EXPECT_EQ(ring.Events()[0].b, 4096);
  t.SetSink(nullptr);
  t.Span(10, 20, 7, Layer::kNand, "die.read");
  EXPECT_EQ(ring.Events().size(), 1u);
}

TEST(Tracer, NextCmdIdIsUniqueAndNonZero) {
  std::uint64_t a = Tracer::NextCmdId();
  std::uint64_t b = Tracer::NextCmdId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(JsonlFileSink, WritesOneJsonObjectPerEvent) {
  std::string path = testing::TempDir() + "/trace_test.jsonl";
  {
    JsonlFileSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.OnEvent(Ev(100, 250, 42, "fcp.service"));
    sink.OnEvent(Ev(250, 250, 42, "qp.cqe"));
    EXPECT_EQ(sink.written(), 2u);
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[512];
  ASSERT_NE(std::fgets(line, sizeof line, f), nullptr);
  std::string first = line;
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(first.find("\"ts\":100"), std::string::npos) << first;
  EXPECT_NE(first.find("\"dur\":150"), std::string::npos) << first;
  EXPECT_NE(first.find("\"cmd\":42"), std::string::npos) << first;
  EXPECT_NE(first.find("\"name\":\"fcp.service\""), std::string::npos)
      << first;
}

TEST(MetricsRegistry, SameNameReturnsTheSameInstrument) {
  MetricsRegistry m;
  Counter& c1 = m.GetCounter("zns.writes");
  c1.Add(3);
  Counter& c2 = m.GetCounter("zns.writes");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 3u);
  Gauge& g1 = m.GetGauge("conv.wa");
  g1.Set(1.5);
  EXPECT_EQ(&g1, &m.GetGauge("conv.wa"));
}

TEST(MetricsRegistryDeathTest, KindCollisionAborts) {
  MetricsRegistry m;
  m.GetCounter("x");
  EXPECT_DEATH(m.GetGauge("x"), "");
  EXPECT_DEATH(m.GetHistogram("x"), "");
}

TEST(MetricsRegistry, SnapshotFreezesSortedValues) {
  MetricsRegistry m;
  m.GetCounter("b.count").Add(7);
  m.GetGauge("a.level").Set(0.25);
  m.GetHistogram("c.latency_ns").Record(sim::Microseconds(10));
  Snapshot snap = m.TakeSnapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "a.level");
  EXPECT_EQ(snap.metrics[1].name, "b.count");
  EXPECT_EQ(snap.metrics[2].name, "c.latency_ns");

  const auto* c = snap.Find("b.count");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, "counter");
  EXPECT_DOUBLE_EQ(c->value, 7.0);

  const auto* h = snap.Find("c.latency_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, "histogram");
  EXPECT_DOUBLE_EQ(h->value, 1.0);  // count
  EXPECT_NEAR(h->mean, 10'000.0, 1.0);

  EXPECT_EQ(snap.Find("missing"), nullptr);

  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"b.count\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"a.level\":0.25"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
}

TEST(Telemetry, BundleOwnsSinkAndFlushes) {
  Telemetry t;
  EXPECT_FALSE(t.tracer().enabled());
  auto ring = std::make_unique<RingBufferSink>(4);
  RingBufferSink* raw = ring.get();
  t.SetSink(std::move(ring));
  EXPECT_TRUE(t.tracer().enabled());
  t.tracer().Span(0, 5, 1, Layer::kHost, "host.submit");
  EXPECT_EQ(raw->total_events(), 1u);
  t.Flush();  // ring flush is a no-op; must not crash
}

}  // namespace
}  // namespace zstor::telemetry
