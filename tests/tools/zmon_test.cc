// zmon timeline-analysis tests: golden parsing of the DESIGN.md §10
// record types, interval-row derivation, throughput-dip attribution, and
// tolerance of mixed/foreign record streams.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "zmon/timeline_analysis.h"

namespace zstor::zmon {
namespace {

LoadResult Load(const std::string& text) {
  std::istringstream in(text);
  return LoadTimeline(in);
}

// A two-interval run: full-speed first interval, then a GC-ridden one at
// a tenth the throughput. 100 ms sample cadence, 4 dies.
const char kGolden[] =
    R"({"type":"sample","t":100000000,"tb":"run","interval_ns":100000000,"counters":{"zns.bytes_written":104857600,"qp.completions":800},"gauges":{"qp.inflight":8},"hist":{"host.latency_ns":{"count":800,"mean_ns":1000,"p50_ns":900,"p95_ns":2000,"p99_ns":3000,"max_ns":4000}}}
{"type":"zone_state","t":120000000,"tb":"run","lane":0,"zone":5,"from":"Empty","to":"ImplicitlyOpened"}
{"type":"window","t":110000000,"tb":"run","dur":80000000,"lane":0,"kind":"gc.migrate","a":7,"b":64}
{"type":"die_busy","t":100000000,"tb":"run","dur":50000000,"lane":0,"die":0,"ops":100,"busy_ns":40000000}
{"type":"sample","t":200000000,"tb":"run","interval_ns":100000000,"counters":{"zns.bytes_written":10485760,"qp.completions":80},"gauges":{"qp.inflight":8},"hist":{}}
{"type":"sample","t":300000000,"tb":"run","interval_ns":100000000,"counters":{"zns.bytes_written":104857600,"qp.completions":800},"gauges":{"qp.inflight":8},"hist":{}}
{"type":"sample","t":400000000,"tb":"run","interval_ns":100000000,"counters":{"zns.bytes_written":104857600,"qp.completions":800},"gauges":{"qp.inflight":8},"hist":{}}
)";

TEST(ZmonLoad, ParsesAllRecordTypesGroupedByTestbed) {
  LoadResult r = Load(kGolden);
  EXPECT_EQ(r.bad_lines, 0u);
  EXPECT_EQ(r.skipped_records, 0u);
  ASSERT_EQ(r.tbs.size(), 1u);
  const TbTimeline& tl = r.tbs[0];
  EXPECT_EQ(tl.tb, "run");
  ASSERT_EQ(tl.samples.size(), 4u);
  EXPECT_EQ(tl.samples[0].t, 100000000u);
  EXPECT_EQ(tl.samples[0].counters.at("zns.bytes_written"), 104857600.0);
  EXPECT_EQ(tl.samples[0].gauges.at("qp.inflight"), 8.0);
  ASSERT_EQ(tl.samples[0].hists.count("host.latency_ns"), 1u);
  EXPECT_EQ(tl.samples[0].hists.at("host.latency_ns").count, 800u);
  ASSERT_EQ(tl.zone_events.size(), 1u);
  EXPECT_EQ(tl.zone_events[0].zone, 5u);
  EXPECT_EQ(tl.zone_events[0].to, "ImplicitlyOpened");
  ASSERT_EQ(tl.windows.size(), 1u);
  EXPECT_EQ(tl.windows[0].kind, "gc.migrate");
  ASSERT_EQ(tl.die_busy.size(), 1u);
  EXPECT_EQ(tl.die_busy[0].busy_ns, 40000000u);
}

TEST(ZmonLoad, SkipsForeignRecordsInsteadOfFailing) {
  // A mixed file: trace spans (no "type") and a future record type must
  // not break loading — mirror of ztrace's skip policy.
  LoadResult r = Load(
      "{\"ts\":5,\"dur\":2,\"layer\":\"nand\",\"name\":\"die.service\"}\n"
      "{\"type\":\"hologram\",\"t\":1,\"tb\":\"x\"}\n"
      "not json at all\n"
      "{\"type\":\"zone_state\",\"t\":1,\"tb\":\"x\",\"lane\":0,"
      "\"zone\":1,\"from\":\"Empty\",\"to\":\"Full\"}\n");
  EXPECT_EQ(r.skipped_records, 2u);
  EXPECT_EQ(r.bad_lines, 1u);
  // Only the real zone_state record creates a testbed group.
  ASSERT_EQ(r.tbs.size(), 1u);
  EXPECT_EQ(r.tbs[0].zone_events.size(), 1u);
}

TEST(ZmonIntervals, DerivesThroughputQdAndOverlaps) {
  LoadResult r = Load(kGolden);
  ASSERT_EQ(r.tbs.size(), 1u);
  std::vector<IntervalRow> rows = BuildIntervals(r.tbs[0], /*num_dies=*/4);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_NEAR(rows[0].write_mibps, 1000.0, 1e-6);  // 100 MiB in 0.1 s
  EXPECT_NEAR(rows[1].write_mibps, 100.0, 1e-6);
  EXPECT_NEAR(rows[0].iops, 8000.0, 1e-6);
  EXPECT_EQ(rows[0].qd, 8.0);
  EXPECT_EQ(rows[0].zone_transitions, 0u);  // event at t=120ms: interval 2
  EXPECT_EQ(rows[1].zone_transitions, 1u);
  // gc.migrate [110ms, 190ms) lies fully inside the second interval.
  EXPECT_EQ(rows[0].overlap("gc.migrate"), 0u);
  EXPECT_EQ(rows[1].overlap("gc.migrate"), 80000000u);
  // Die busy [100ms, 150ms): 40 ms of service across 4 dies lands in the
  // second interval.
  EXPECT_NEAR(rows[0].die_util, 0.0, 1e-9);
  EXPECT_NEAR(rows[1].die_util, 0.1, 1e-9);
}

TEST(ZmonDips, AttributesTheDipToTheOverlappingGcWindow) {
  LoadResult r = Load(kGolden);
  std::vector<IntervalRow> rows = BuildIntervals(r.tbs[0], 4);
  std::vector<Dip> dips = FindDips(rows, /*threshold_frac=*/0.5);
  ASSERT_EQ(dips.size(), 1u);
  EXPECT_EQ(dips[0].row.begin, 100000000u);
  EXPECT_NEAR(dips[0].throughput_mibps, 100.0, 1e-6);
  EXPECT_EQ(dips[0].dominant(), "gc.migrate");
}

TEST(ZmonDips, ShortRunsAndIdleTailsAreNotDips) {
  // Two samples only: not enough intervals to establish a median.
  LoadResult two = Load(
      R"({"type":"sample","t":100,"tb":"a","interval_ns":100,"counters":{"zns.bytes_written":1000},"gauges":{},"hist":{}}
{"type":"sample","t":200,"tb":"a","interval_ns":100,"counters":{"zns.bytes_written":10},"gauges":{},"hist":{}}
)");
  EXPECT_TRUE(FindDips(BuildIntervals(two.tbs[0])).empty());
}

TEST(ZmonChrome, ExportCarriesCounterTracksAndWindows) {
  LoadResult r = Load(kGolden);
  std::vector<IntervalRow> rows = BuildIntervals(r.tbs[0], 4);
  std::string json = ToChromeTrace(r.tbs[0], rows);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("throughput_MiBps"), std::string::npos);
  EXPECT_NE(json.find("queue_depth"), std::string::npos);
  EXPECT_NE(json.find("die_util"), std::string::npos);
  EXPECT_NE(json.find("\"gc.migrate\""), std::string::npos);
  // Chrome's ph "X" complete event with microsecond times.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

}  // namespace
}  // namespace zstor::zmon
