// ztrace analysis-library tests: the JSON parser, the trace loader, and
// the round-trip property the tool is built on — a traced QD1 run's
// per-command span sum must reproduce the latency the application saw
// (the span-tiling invariant of telemetry/trace.h), and the Chrome
// export must be valid JSON.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "harness/testbed.h"
#include "sim/task.h"
#include "ztrace/analysis.h"
#include "ztrace/json_value.h"

namespace zstor::ztrace {
namespace {

using nvme::Opcode;

// ---- JsonValue parser ------------------------------------------------

TEST(JsonValue, ParsesScalarsAndNesting) {
  auto v = JsonValue::Parse(
      R"({"n": -3.5e2, "s": "hi", "t": true, "nul": null,)"
      R"( "arr": [1, 2, 3], "obj": {"k": "v"}})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  EXPECT_DOUBLE_EQ(v->NumberOr("n", 0), -350.0);
  EXPECT_EQ(v->StringOr("s", ""), "hi");
  const JsonValue* arr = v->Find("arr");
  ASSERT_NE(arr, nullptr);
  ASSERT_TRUE(arr->is_array());
  EXPECT_EQ(arr->array().size(), 3u);
  const JsonValue* obj = v->Find("obj");
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->StringOr("k", ""), "v");
}

TEST(JsonValue, DecodesEscapesAndUnicode) {
  auto v = JsonValue::Parse(
      R"({"s": "a\"b\\c\n\t", "u": "Aé", "emoji": "😀"})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->StringOr("s", ""), "a\"b\\c\n\t");
  EXPECT_EQ(v->StringOr("u", ""), "A\xc3\xa9");
  EXPECT_EQ(v->StringOr("emoji", ""), "\xf0\x9f\x98\x80");
}

TEST(JsonValue, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").has_value());
  EXPECT_FALSE(JsonValue::Parse("{").has_value());
  EXPECT_FALSE(JsonValue::Parse("{} trailing").has_value());
  EXPECT_FALSE(JsonValue::Parse(R"({"a": 01})").has_value());
  EXPECT_FALSE(JsonValue::Parse("{\"a\": \"raw\ncontrol\"}").has_value());
}

// ---- loader ----------------------------------------------------------

TEST(LoadJsonl, SkipsBadLinesAndKeepsGoodOnes) {
  std::istringstream in(
      "{\"ts\":10,\"dur\":5,\"cmd\":1,\"layer\":\"host\","
      "\"name\":\"host.submit\",\"a\":2,\"b\":1}\n"
      "this is not json\n"
      "{\"ts\":15,\"dur\":7,\"cmd\":1,\"layer\":\"fcp\","
      "\"name\":\"fcp.service\"}\n");
  LoadResult r = LoadJsonl(in);
  EXPECT_EQ(r.bad_lines, 1u);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0].ts, 10u);
  EXPECT_EQ(r.records[0].a, 2);
  EXPECT_EQ(r.records[1].name, "fcp.service");
  EXPECT_EQ(r.records[1].end(), 22u);
}

TEST(LoadJsonl, SkipsTimelineRecordsInMixedFiles) {
  // A file carrying both --trace spans and --timeline records (same
  // shared path): typed records are counted and skipped, not mis-parsed
  // as zero-duration trace spans.
  std::istringstream in(
      "{\"ts\":10,\"dur\":5,\"cmd\":1,\"layer\":\"host\","
      "\"name\":\"host.submit\"}\n"
      "{\"type\":\"sample\",\"t\":100,\"tb\":\"x\",\"interval_ns\":100,"
      "\"counters\":{},\"gauges\":{},\"hist\":{}}\n"
      "{\"type\":\"zone_state\",\"t\":5,\"tb\":\"x\",\"lane\":0,"
      "\"zone\":1,\"from\":\"Empty\",\"to\":\"Full\"}\n");
  LoadResult r = LoadJsonl(in);
  EXPECT_EQ(r.bad_lines, 0u);
  EXPECT_EQ(r.skipped_records, 2u);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].name, "host.submit");
}

// ---- synthetic analysis ----------------------------------------------

std::vector<TraceRecord> SyntheticTwoCommands() {
  // cmd 1: submit(a=2 append) 10ns + service 90ns; cmd 2 overlaps.
  return {
      {0, 10, 1, "host", "host.submit", 2, 1},
      {10, 90, 1, "fcp", "fcp.service", 0, 0},
      {50, 10, 2, "host", "host.submit", 0, 1},
      {60, 40, 2, "fcp", "fcp.service", 0, 0},
  };
}

TEST(Analysis, StageBreakdownAggregatesAndSorts) {
  auto stages = StageBreakdown(SyntheticTwoCommands());
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].name, "fcp.service");  // 130ns > 20ns: sorted desc
  EXPECT_EQ(stages[0].count, 2u);
  EXPECT_EQ(stages[0].total_ns, 130u);
  EXPECT_DOUBLE_EQ(stages[1].mean_ns(), 10.0);
}

TEST(Analysis, GroupByCommandDecodesOpcodeAndSpanSum) {
  auto cmds = GroupByCommand(SyntheticTwoCommands());
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].op, "append");  // a=2 == Opcode::kAppend
  EXPECT_EQ(cmds[0].total_ns, 100u);
  EXPECT_EQ(cmds[1].op, "read");  // a=0 == Opcode::kRead
  EXPECT_EQ(cmds[1].begin, 50u);
  EXPECT_EQ(cmds[1].end, 100u);
}

TEST(Analysis, QueueDepthTracksOverlapAndWeightedMean) {
  auto cmds = GroupByCommand(SyntheticTwoCommands());
  QdTimeline qd = ComputeQueueDepth(cmds);
  // [0,50): 1 in flight, [50,100): 2 in flight -> mean 1.5, max 2.
  EXPECT_EQ(qd.max_qd, 2);
  EXPECT_DOUBLE_EQ(qd.mean_qd, 1.5);
}

TEST(Analysis, TailAttributionFindsDominantStage) {
  std::vector<TraceRecord> recs;
  // 20 reads: submit is always 10ns; nand.read is 100ns but 2000ns for
  // the slowest two -> the p95 tail must be attributed to nand.read.
  for (std::uint64_t i = 0; i < 20; ++i) {
    std::uint64_t nand = i >= 18 ? 2000 : 100;
    recs.push_back({i * 5000, 10, i + 1, "host", "host.submit", 0, 1});
    recs.push_back({i * 5000 + 10, nand, i + 1, "nand", "nand.read", 0, 0});
  }
  auto tails = AttributeTails(GroupByCommand(recs));
  ASSERT_EQ(tails.size(), 1u);
  EXPECT_EQ(tails[0].op, "read");
  EXPECT_EQ(tails[0].commands, 20u);
  EXPECT_EQ(tails[0].p95_dominant, "nand.read");
  EXPECT_EQ(tails[0].p99_dominant, "nand.read");
  EXPECT_GT(tails[0].p95_ns, tails[0].p50_ns);
}

TEST(Analysis, RetrySpansAreCountedButNotDoubleCounted) {
  // cmd 1: a failed first attempt (100ns nand.read overlaid by the
  // host.retry span) and a clean second attempt. The retry span must
  // count as a retry, not as extra latency.
  std::vector<TraceRecord> recs = {
      {0, 10, 1, "host", "host.submit", 0, 1},
      {10, 100, 1, "nand", "nand.read", 0, 0},
      {0, 110, 1, "host", "host.retry", 1, 20},  // overlays attempt 1
      {110, 100, 1, "nand", "nand.read", 0, 0},
      // cmd 2: times out twice, then every attempt is spent -> errored.
      {500, 10, 2, "host", "host.submit", 0, 1},
      {510, 0, 2, "host", "host.timeout", 1, 100},
      {510, 100, 2, "host", "host.retry", 1, 23},
      {610, 0, 2, "host", "host.timeout", 2, 100},
      {610, 0, 2, "host", "host.error", 23, 2},
  };
  auto cmds = GroupByCommand(recs);
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].retries, 1u);
  EXPECT_FALSE(cmds[0].errored);
  // 10 submit + 2x100 nand: the 110ns retry span added nothing.
  EXPECT_EQ(cmds[0].total_ns, 210u);
  EXPECT_EQ(cmds[0].stage_ns.count("host.retry"), 0u);
  EXPECT_EQ(cmds[1].retries, 1u);
  EXPECT_EQ(cmds[1].timeouts, 2u);
  EXPECT_TRUE(cmds[1].errored);

  auto tails = AttributeTails(cmds);
  ASSERT_EQ(tails.size(), 1u);
  EXPECT_EQ(tails[0].op, "read");
  EXPECT_EQ(tails[0].retries, 2u);
  EXPECT_EQ(tails[0].timeouts, 2u);
  EXPECT_EQ(tails[0].retried_commands, 2u);
  EXPECT_EQ(tails[0].errored_commands, 1u);
  EXPECT_DOUBLE_EQ(tails[0].error_rate(), 0.5);
}

TEST(Analysis, CleanTracesReportZeroResilienceActivity) {
  auto tails = AttributeTails(GroupByCommand(SyntheticTwoCommands()));
  for (const TailAttribution& t : tails) {
    EXPECT_EQ(t.retries, 0u);
    EXPECT_EQ(t.timeouts, 0u);
    EXPECT_EQ(t.errored_commands, 0u);
    EXPECT_DOUBLE_EQ(t.error_rate(), 0.0);
  }
}

// ---- round trip through a real traced run ----------------------------

std::string TempTracePath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(RoundTrip, Qd1SpanSumsMatchMeasuredLatencies) {
  std::string path = TempTracePath("ztrace_roundtrip.jsonl");
  struct Done {
    std::uint64_t trace_id;
    sim::Time latency;
    Opcode op;
  };
  std::vector<Done> done;
  {
    Testbed tb = TestbedBuilder()
                     .WithZnsProfile(zns::TinyProfile())
                     .WithStack(StackChoice::kSpdk)
                     .WithTelemetry({.trace_path = path})
                     .Build();
    auto body = [&]() -> sim::Task<> {
      for (int i = 0; i < 8; ++i) {
        auto tc = co_await tb.stack().Submit(
            {.opcode = Opcode::kAppend, .slba = 0, .nlb = 1});
        EXPECT_TRUE(tc.completion.ok());
        done.push_back({tc.trace_id, tc.latency(), Opcode::kAppend});
      }
      for (int i = 0; i < 4; ++i) {
        auto tc = co_await tb.stack().Submit(
            {.opcode = Opcode::kRead, .slba = 0, .nlb = 1});
        EXPECT_TRUE(tc.completion.ok());
        done.push_back({tc.trace_id, tc.latency(), Opcode::kRead});
      }
    };
    auto t = body();
    tb.sim().Run();
    tb.Finish();  // flush the JSONL sink
  }
  ASSERT_EQ(done.size(), 12u);

  LoadResult loaded = LoadJsonlFile(path);
  EXPECT_EQ(loaded.bad_lines, 0u);
  ASSERT_FALSE(loaded.records.empty());
  auto cmds = GroupByCommand(loaded.records);

  for (const Done& d : done) {
    const CommandTrace* found = nullptr;
    for (const CommandTrace& c : cmds) {
      if (c.cmd == d.trace_id) found = &c;
    }
    ASSERT_NE(found, nullptr) << "command " << d.trace_id << " not traced";
    // The tiling invariant: span durations sum to the e2e latency.
    EXPECT_EQ(found->total_ns, static_cast<std::uint64_t>(d.latency));
    EXPECT_EQ(found->op, nvme::ToString(d.op));
  }
  std::remove(path.c_str());
}

TEST(RoundTrip, FaultedRunTracesItsRetryHistory) {
  // One scheduled uncorrectable read against a retrying stack: the trace
  // must carry the host.retry span and the analysis must report exactly
  // one retried, recovered read — and no surfaced error.
  std::string path = TempTracePath("ztrace_faulted.jsonl");
  {
    fault::FaultSpec spec;
    spec.enabled = true;
    spec.scheduled.push_back(
        {.at = 0,
         .kind = fault::FaultKind::kReadUncorrectable,
         .die = fault::kAnySite,
         .block = fault::kAnySite});
    Testbed tb = TestbedBuilder()
                     .WithZnsProfile(zns::TinyProfile())
                     .WithFaults(spec)
                     .WithRetryPolicy({.max_attempts = 4,
                                       .backoff = sim::Microseconds(50)})
                     .WithTelemetry({.trace_path = path})
                     .Build();
    auto body = [&]() -> sim::Task<> {
      auto w = co_await tb.stack().Submit(
          {.opcode = Opcode::kWrite, .slba = 0, .nlb = 4});
      EXPECT_TRUE(w.completion.ok());
      auto f = co_await tb.stack().Submit({.opcode = Opcode::kFlush});
      EXPECT_TRUE(f.completion.ok());
      auto r = co_await tb.stack().Submit(
          {.opcode = Opcode::kRead, .slba = 0, .nlb = 4});
      EXPECT_TRUE(r.completion.ok());
    };
    auto t = body();
    tb.sim().Run();
    tb.Finish();
  }

  LoadResult loaded = LoadJsonlFile(path);
  EXPECT_EQ(loaded.bad_lines, 0u);
  auto tails = AttributeTails(GroupByCommand(loaded.records));
  const TailAttribution* read = nullptr;
  for (const TailAttribution& t : tails) {
    if (t.op == "read") read = &t;
  }
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->retries, 1u);
  EXPECT_EQ(read->retried_commands, 1u);
  EXPECT_EQ(read->errored_commands, 0u);  // the retry recovered it
  std::remove(path.c_str());
}

TEST(RoundTrip, ChromeExportIsValidJson) {
  auto recs = SyntheticTwoCommands();
  auto cmds = GroupByCommand(recs);
  QdTimeline qd = ComputeQueueDepth(cmds);
  std::string json = ToChromeTrace(recs, &qd);
  auto v = JsonValue::Parse(json);
  ASSERT_TRUE(v.has_value()) << "chrome export is not valid JSON";
  const JsonValue* events = v->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 4 spans + qd counter points + 9 thread_name metadata records.
  EXPECT_GE(events->array().size(), recs.size() + 9);
  std::size_t complete = 0, counters = 0, meta = 0;
  for (const JsonValue& e : events->array()) {
    std::string ph = e.StringOr("ph", "");
    if (ph == "X") {
      ++complete;
      ASSERT_NE(e.Find("dur"), nullptr);
    } else if (ph == "C") {
      ++counters;
    } else if (ph == "M") {
      ++meta;
    }
  }
  EXPECT_EQ(complete, 4u);
  EXPECT_EQ(counters, qd.points.size());
  EXPECT_EQ(meta, 9u);
}

}  // namespace
}  // namespace zstor::ztrace
