// Conventional-FTL power-loss crash/recovery tests (DESIGN.md §11): the
// mapping journal's loss window (buffered-write rollback + unsynced-tail
// revert), flush durability, checkpoint-bounded replay, the
// sync-interval WA/recovery tradeoff, and determinism.
#include <gtest/gtest.h>

#include <cstdint>

#include "ftl/conv_device.h"
#include "hostif/spdk_stack.h"
#include "sim/task.h"

namespace zstor::ftl {
namespace {

using nvme::Opcode;
using nvme::Status;

constexpr std::uint64_t kTagA = 0x0A00;
constexpr std::uint64_t kTagB = 0x0B00;

struct Fixture {
  explicit Fixture(ConvProfile p = TinyConvProfile())
      : dev(sim, std::move(p)), stack(sim, dev) {}

  nvme::Completion Run(nvme::Command cmd) {
    nvme::Completion out;
    auto body = [&]() -> sim::Task<> {
      auto tc = co_await stack.Submit(cmd);
      out = tc.completion;
    };
    auto t = body();
    sim.Run();
    return out;
  }

  nvme::Completion Write(nvme::Lba lba, std::uint32_t nlb,
                         std::uint64_t tag) {
    return Run({.opcode = Opcode::kWrite,
                .slba = lba,
                .nlb = nlb,
                .payload_tag = tag});
  }
  nvme::Completion ReadTags(nvme::Lba lba, std::uint32_t nlb) {
    return Run({.opcode = Opcode::kRead,
                .slba = lba,
                .nlb = nlb,
                .payload_tag = 1});
  }
  void Crash() {
    auto body = [&]() -> sim::Task<> { co_await dev.CrashNow(); };
    auto t = body();
    sim.Run();
  }

  sim::Simulator sim;
  ConvDevice dev;
  hostif::SpdkStack stack;
};

/// One NAND page worth of mapping units (the program-batch granule).
std::uint32_t Upp(const Fixture& f) { return f.dev.profile().units_per_page(); }

TEST(ConvCrash, FlushedDataSurvivesByteExact) {
  Fixture f;
  const std::uint32_t n = 8 * Upp(f);
  ASSERT_TRUE(f.Write(0, n, kTagA).ok());
  ASSERT_TRUE(f.Run({.opcode = Opcode::kFlush}).ok());
  f.Crash();

  EXPECT_EQ(f.dev.counters().crashes, 1u);
  EXPECT_EQ(f.dev.counters().recoveries, 1u);
  EXPECT_EQ(f.dev.counters().crash_lost_units, 0u);
  EXPECT_EQ(f.dev.counters().journal_reverted_entries, 0u);
  nvme::Completion rd = f.ReadTags(0, n);
  ASSERT_TRUE(rd.ok());
  ASSERT_EQ(rd.payload_tags.size(), n);
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(rd.payload_tags[i], kTagA + i) << "LBA " << i;
  }
}

TEST(ConvCrash, UnsyncedJournalTailRevertsToNothing) {
  // A huge sync interval keeps every mapping delta volatile: the crash
  // reverts all of them, and never-flushed fresh writes are legally lost.
  ConvProfile p = TinyConvProfile();
  p.journal_sync_interval = 1 << 20;
  Fixture f(p);
  const std::uint32_t n = 4 * Upp(f);
  ASSERT_TRUE(f.Write(0, n, kTagA).ok());  // programs settle, tail unsynced
  f.Crash();

  EXPECT_EQ(f.dev.counters().journal_reverted_entries, n);
  EXPECT_EQ(f.dev.counters().recovery_replay_entries, 0u);
  nvme::Completion rd = f.ReadTags(0, n);
  ASSERT_TRUE(rd.ok());
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(rd.payload_tags[i], 0u) << "LBA " << i;  // unmapped again
  }
}

TEST(ConvCrash, UnflushedOverwriteRollsBackToTheFlushedVersion) {
  ConvProfile p = TinyConvProfile();
  p.journal_sync_interval = 1 << 20;  // keep the overwrite delta unsynced
  Fixture f(p);
  const std::uint32_t n = Upp(f);
  ASSERT_TRUE(f.Write(0, n, kTagA).ok());
  ASSERT_TRUE(f.Run({.opcode = Opcode::kFlush}).ok());  // certify version A
  ASSERT_TRUE(f.Write(0, n, kTagB).ok());  // B settles; its delta is volatile
  f.Crash();

  // The journal revert re-validated version A's physical copy.
  EXPECT_EQ(f.dev.counters().journal_reverted_entries, n);
  nvme::Completion rd = f.ReadTags(0, n);
  ASSERT_TRUE(rd.ok());
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(rd.payload_tags[i], kTagA + i) << "LBA " << i;
  }
  // The rolled-back mapping stays consistent: overwriting again works.
  ASSERT_TRUE(f.Write(0, n, kTagB).ok());
  ASSERT_TRUE(f.Run({.opcode = Opcode::kFlush}).ok());
  rd = f.ReadTags(0, n);
  ASSERT_TRUE(rd.ok());
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(rd.payload_tags[i], kTagB + i) << "LBA " << i;
  }
}

TEST(ConvCrash, BufferedWritesThatNeverProgrammedAreLost) {
  Fixture f;
  const std::uint32_t n = Upp(f);
  ASSERT_TRUE(f.Write(0, n, kTagA).ok());
  ASSERT_TRUE(f.Run({.opcode = Opcode::kFlush}).ok());
  // A sub-page overwrite sits in the write buffer (no program dispatches
  // until a full page accumulates): pure buffered state.
  const std::uint32_t half = n / 2 == 0 ? 1 : n / 2;
  ASSERT_TRUE(f.Write(0, half, kTagB).ok());
  f.Crash();

  EXPECT_EQ(f.dev.counters().crash_lost_units, half);
  nvme::Completion rd = f.ReadTags(0, n);
  ASSERT_TRUE(rd.ok());
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(rd.payload_tags[i], kTagA + i)
        << "LBA " << i << " must hold the flushed version";
  }
}

TEST(ConvCrash, CheckpointBoundsTheReplayTail) {
  ConvProfile p = TinyConvProfile();
  p.journal_sync_interval = 2;
  p.journal_checkpoint_syncs = 4;  // checkpoint every 8 entries
  Fixture f(p);
  const std::uint32_t upp = Upp(f);
  ASSERT_EQ(upp, 4u);  // the arithmetic below assumes 16 KiB pages
  // 20 settled units -> 10 syncs -> checkpoints after entries 8 and 16,
  // leaving a 4-entry replay tail.
  for (std::uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(f.Write(i * upp, upp, kTagA + i * upp).ok());
  }
  f.Crash();

  EXPECT_EQ(f.dev.counters().checkpoints, 2u);
  EXPECT_EQ(f.dev.counters().recovery_replay_entries, 4u);
  EXPECT_EQ(f.dev.counters().journal_reverted_entries, 0u);
  // Replay cost is charged per entry on top of the boot cost.
  EXPECT_EQ(f.dev.last_recovery_ns(),
            f.dev.profile().recovery_boot_cost +
                4 * f.dev.profile().recovery_per_entry);
  // Synced-and-replayed mappings survive.
  nvme::Completion rd = f.ReadTags(0, 5 * upp);
  ASSERT_TRUE(rd.ok());
  for (std::uint32_t i = 0; i < 5 * upp; ++i) {
    EXPECT_EQ(rd.payload_tags[i], kTagA + i) << "LBA " << i;
  }
}

TEST(ConvCrash, SyncIntervalTradesWriteAmpForLossWindow) {
  auto run = [](std::uint32_t interval, ConvCounters* out) {
    ConvProfile p = TinyConvProfile();
    p.journal_sync_interval = interval;
    Fixture f(p);
    const std::uint32_t upp = f.dev.profile().units_per_page();
    for (std::uint32_t i = 0; i < 32; ++i) {
      ASSERT_TRUE(f.Write(i * upp, upp, kTagA).ok());
    }
    f.Crash();
    *out = f.dev.counters();
  };
  ConvCounters tight{}, loose{};
  run(8, &tight);
  run(1 << 20, &loose);
  // Tight syncing: more journal programs (write amplification), but the
  // crash reverts almost nothing. Loose syncing: the mirror image.
  EXPECT_GT(tight.journal_units_written, loose.journal_units_written);
  EXPECT_LT(tight.journal_reverted_entries, loose.journal_reverted_entries);
  EXPECT_EQ(loose.journal_reverted_entries, 32u * 4);
  EXPECT_GT(tight.recovery_replay_entries, loose.recovery_replay_entries);
}

TEST(ConvCrash, CommandsDuringTheOutageFailWithDeviceReset) {
  Fixture f;
  nvme::Completion during, after;
  auto body = [&]() -> sim::Task<> {
    auto crash = [&]() -> sim::Task<> { co_await f.dev.CrashNow(); };
    sim::Spawn(crash());
    co_await f.sim.Delay(sim::Milliseconds(1));  // inside the boot window
    during = co_await f.dev.Execute(
        {.opcode = Opcode::kWrite, .slba = 0, .nlb = 1});
    co_await f.sim.Delay(f.dev.profile().recovery_boot_cost +
                         sim::Milliseconds(5));
    after = co_await f.dev.Execute(
        {.opcode = Opcode::kWrite, .slba = 0, .nlb = 1});
  };
  auto t = body();
  f.sim.Run();

  EXPECT_EQ(during.status, Status::kDeviceReset);
  EXPECT_TRUE(after.ok());
  EXPECT_GE(f.dev.counters().reset_drops, 1u);
}

TEST(ConvCrash, CrashRecoveryIsDeterministic) {
  auto run = [](ConvCounters* out) {
    Fixture f;
    const std::uint32_t upp = f.dev.profile().units_per_page();
    auto body = [&]() -> sim::Task<> {
      for (std::uint32_t i = 0; i < 16; ++i) {
        nvme::Completion c = co_await f.dev.Execute(
            {.opcode = Opcode::kWrite,
             .slba = i * upp,
             .nlb = upp,
             .payload_tag = kTagA});
        ZSTOR_CHECK(c.ok());
      }
      // Crash with programs still in flight (acks are write-back).
      co_await f.dev.CrashNow();
    };
    auto t = body();
    f.sim.Run();
    *out = f.dev.counters();
  };
  ConvCounters a{}, b{};
  run(&a);
  run(&b);
  EXPECT_EQ(a.crash_lost_units, b.crash_lost_units);
  EXPECT_EQ(a.journal_reverted_entries, b.journal_reverted_entries);
  EXPECT_EQ(a.recovery_replay_entries, b.recovery_replay_entries);
  EXPECT_EQ(a.recovery_ns_total, b.recovery_ns_total);
  EXPECT_EQ(a.reset_drops, b.reset_drops);
}

}  // namespace
}  // namespace zstor::ftl
