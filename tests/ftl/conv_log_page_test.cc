// Conventional-device log pages: the SMART log must mirror the FTL's
// counters — including GC activity and the write-amplification figure
// the paper's Fig. 6 explanation rests on — and the Die Utilization log
// must mirror the flash array.
#include <gtest/gtest.h>

#include "ftl/conv_device.h"
#include "sim/task.h"
#include "workload/runner.h"
#include "hostif/spdk_stack.h"
#include "ztrace/json_value.h"

namespace zstor::ftl {
namespace {

using nvme::Opcode;
using ztrace::JsonValue;

TEST(ConvSmartLog, MirrorsCountersAndFlashActivity) {
  sim::Simulator sim;
  ConvDevice dev(sim, TinyConvProfile());
  hostif::SpdkStack stack(sim, dev);
  auto body = [&]() -> sim::Task<> {
    for (int i = 0; i < 8; ++i) {
      auto w = co_await stack.Submit(
          {.opcode = Opcode::kWrite, .slba = static_cast<nvme::Lba>(i * 8),
           .nlb = 8});
      EXPECT_TRUE(w.completion.ok());
    }
    auto r = co_await stack.Submit(
        {.opcode = Opcode::kRead, .slba = 0, .nlb = 8});
    EXPECT_TRUE(r.completion.ok());
  };
  auto t = body();
  sim.Run();

  nvme::SmartLog s = dev.GetSmartLog();
  EXPECT_EQ(s.device, "conv");
  EXPECT_EQ(s.host_writes, dev.counters().writes);
  EXPECT_EQ(s.host_reads, dev.counters().reads);
  EXPECT_EQ(s.bytes_written, dev.counters().bytes_written);
  EXPECT_EQ(s.media_page_programs, dev.flash().counters().page_programs);
  EXPECT_GT(s.media_page_programs, 0u);
  EXPECT_DOUBLE_EQ(s.write_amplification,
                   dev.counters().WriteAmplification());
  // Zone fields never apply to the conventional model.
  EXPECT_EQ(s.zone_resets, 0u);
  EXPECT_EQ(s.zone_transitions, 0u);
}

TEST(ConvSmartLog, ReportsGcActivityOnceItRuns) {
  // A prefilled device under sustained random overwrites must invoke GC;
  // the SMART log carries the invocation count and the resulting WA > 1.
  sim::Simulator sim;
  ConvDevice dev(sim, TinyConvProfile());
  dev.DebugPrefill();
  hostif::SpdkStack stack(sim, dev);
  workload::JobSpec spec;
  spec.op = Opcode::kWrite;
  spec.random = true;
  spec.request_bytes = 64 * 1024;
  spec.queue_depth = 8;
  spec.duration = sim::Seconds(2);
  workload::RunJob(sim, stack, spec);

  nvme::SmartLog s = dev.GetSmartLog();
  EXPECT_EQ(s.gc_invocations, dev.counters().gc_invocations);
  EXPECT_EQ(s.gc_units_migrated, dev.counters().gc_units_migrated);
  EXPECT_EQ(s.gc_blocks_erased, dev.counters().gc_blocks_erased);
  EXPECT_GT(s.gc_invocations, 0u);
  EXPECT_GT(s.gc_units_migrated, 0u);
  EXPECT_GT(s.write_amplification, 1.0);

  nvme::DieUtilLog dies = dev.GetDieUtilLog();
  ASSERT_FALSE(dies.dies.empty());
  std::uint64_t erases = 0;
  for (const auto& d : dies.dies) {
    EXPECT_GE(d.utilization, 0.0);
    EXPECT_LE(d.utilization, 1.0);
    erases += d.erases;
  }
  EXPECT_EQ(erases, dev.flash().counters().block_erases);
  EXPECT_GT(erases, 0u);
}

TEST(ConvSmartLog, JsonRendersAndParses) {
  sim::Simulator sim;
  ConvDevice dev(sim, TinyConvProfile());
  auto parsed = JsonValue::Parse(dev.GetSmartLog().ToJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->StringOr("device", ""), "conv");
  EXPECT_DOUBLE_EQ(parsed->NumberOr("write_amplification", 0), 1.0);
}

}  // namespace
}  // namespace zstor::ftl
