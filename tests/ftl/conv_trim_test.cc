// Deallocate (TRIM) tests: mapping semantics, the metadata-update cost the
// paper's Obs. 10 compares zone reset against, and the GC benefit.
#include <gtest/gtest.h>

#include "ftl/conv_device.h"
#include "zns/zns_device.h"
#include "hostif/spdk_stack.h"
#include "sim/task.h"
#include "workload/runner.h"

namespace zstor::ftl {
namespace {

using nvme::Opcode;
using nvme::Status;

struct Fixture {
  Fixture() : dev(sim, TinyConvProfile()), stack(sim, dev) {}

  nvme::Completion Run(nvme::Command cmd, sim::Time* latency = nullptr) {
    nvme::Completion out;
    sim::Time t0 = 0, t1 = 0;
    auto body = [&]() -> sim::Task<> {
      t0 = sim.now();
      auto tc = co_await stack.Submit(cmd);
      out = tc.completion;
      t1 = sim.now();
    };
    auto t = body();
    sim.Run();
    if (latency != nullptr) *latency = t1 - t0;
    return out;
  }

  sim::Simulator sim;
  ConvDevice dev;
  hostif::SpdkStack stack;
};

TEST(ConvTrim, DeallocateSucceedsAndCounts) {
  Fixture f;
  ASSERT_TRUE(f.Run({.opcode = Opcode::kWrite, .slba = 10, .nlb = 8}).ok());
  f.sim.Run();  // drain
  ASSERT_TRUE(
      f.Run({.opcode = Opcode::kDeallocate, .slba = 10, .nlb = 8}).ok());
  EXPECT_EQ(f.dev.counters().deallocates, 1u);
  EXPECT_EQ(f.dev.counters().units_trimmed, 8u);
}

TEST(ConvTrim, TrimOfUnmappedRangeIsANoOp) {
  Fixture f;
  ASSERT_TRUE(
      f.Run({.opcode = Opcode::kDeallocate, .slba = 0, .nlb = 64}).ok());
  EXPECT_EQ(f.dev.counters().units_trimmed, 0u);
}

TEST(ConvTrim, TrimmedDataReadsAsUnmapped) {
  Fixture f;
  ASSERT_TRUE(f.Run({.opcode = Opcode::kWrite, .slba = 5, .nlb = 4}).ok());
  f.sim.Run();
  ASSERT_TRUE(
      f.Run({.opcode = Opcode::kDeallocate, .slba = 5, .nlb = 4}).ok());
  // Reading unmapped data succeeds (zeroes) and skips NAND entirely.
  sim::Time lat = 0;
  ASSERT_TRUE(f.Run({.opcode = Opcode::kRead, .slba = 5, .nlb = 1}, &lat).ok());
  EXPECT_LT(sim::ToMicroseconds(lat), 10.0);
}

TEST(ConvTrim, CostScalesWithExtent) {
  Fixture f;
  f.dev.DebugPrefill();
  sim::Time small = 0, large = 0;
  ASSERT_TRUE(
      f.Run({.opcode = Opcode::kDeallocate, .slba = 0, .nlb = 8}, &small)
          .ok());
  ASSERT_TRUE(f.Run({.opcode = Opcode::kDeallocate, .slba = 1000, .nlb = 2048},
                    &large)
                  .ok());
  // The per-unit metadata-update term dominates for large extents.
  EXPECT_GT(large, 3 * small);
}

TEST(ConvTrim, TrimOfBufferedWriteForgetsIt) {
  Fixture f;
  // Write then trim before the drain maps it: the program must not
  // resurrect the unit.
  auto body = [&]() -> sim::Task<> {
    auto w = co_await f.stack.Submit(
        {.opcode = Opcode::kWrite, .slba = 3, .nlb = 1});
    ZSTOR_CHECK(w.completion.ok());
    auto d = co_await f.stack.Submit(
        {.opcode = Opcode::kDeallocate, .slba = 3, .nlb = 1});
    ZSTOR_CHECK(d.completion.ok());
  };
  auto t = body();
  f.sim.Run();
  sim::Time lat = 0;
  ASSERT_TRUE(f.Run({.opcode = Opcode::kRead, .slba = 3, .nlb = 1}, &lat).ok());
  EXPECT_LT(sim::ToMicroseconds(lat), 10.0);  // unmapped: no NAND read
}

TEST(ConvTrim, TrimCreatesGarbageThatGcReclaims) {
  Fixture f;
  f.dev.DebugPrefill();
  // Trim half the logical space: massive garbage, zero-cost victims.
  std::uint64_t half = f.dev.info().capacity_lbas / 2;
  ASSERT_TRUE(f.Run({.opcode = Opcode::kDeallocate,
                     .slba = 0,
                     .nlb = static_cast<std::uint32_t>(half)})
                  .ok());
  // Now a write burst: GC (when it runs) finds nearly-empty victims, so
  // write amplification stays far lower than the untrimmed baseline.
  workload::JobSpec spec;
  spec.op = Opcode::kWrite;
  spec.random = true;
  spec.request_bytes = 16 * 1024;
  spec.queue_depth = 8;
  spec.duration = sim::Seconds(2);
  spec.seed = 3;
  auto r = workload::RunJob(f.sim, f.stack, spec);
  EXPECT_GT(r.ops, 0u);
  EXPECT_LT(f.dev.counters().WriteAmplification(), 2.5);
}

TEST(ConvTrim, ZnsRejectsDeallocate) {
  sim::Simulator s;
  zns::ZnsDevice dev(s, zns::TinyProfile());
  nvme::Completion out;
  auto body = [&]() -> sim::Task<> {
    out = co_await dev.Execute(
        {.opcode = Opcode::kDeallocate, .slba = 0, .nlb = 1});
  };
  auto t = body();
  s.Run();
  EXPECT_EQ(out.status, Status::kInvalidOpcode);  // zones use reset
}

}  // namespace
}  // namespace zstor::ftl
