// Conventional-FTL device tests: mapping correctness, GC mechanics, write
// amplification, and the throughput/latency dynamics behind Obs. 11.
#include <gtest/gtest.h>

#include "ftl/conv_device.h"
#include "hostif/spdk_stack.h"
#include "sim/task.h"
#include "workload/runner.h"

namespace zstor::ftl {
namespace {

using nvme::Opcode;
using nvme::Status;

struct Fixture {
  explicit Fixture(ConvProfile p = TinyConvProfile())
      : dev(sim, std::move(p)), stack(sim, dev) {}

  nvme::Completion Run(nvme::Command cmd, sim::Time* latency = nullptr) {
    nvme::Completion out;
    sim::Time t0 = 0, t1 = 0;
    auto body = [&]() -> sim::Task<> {
      t0 = sim.now();
      auto tc = co_await stack.Submit(cmd);
      out = tc.completion;
      t1 = sim.now();
    };
    auto t = body();
    sim.Run();
    if (latency != nullptr) *latency = t1 - t0;
    return out;
  }

  sim::Simulator sim;
  ConvDevice dev;
  hostif::SpdkStack stack;
};

TEST(ConvDevice, NamespaceIsNotZoned) {
  Fixture f;
  EXPECT_FALSE(f.dev.info().zoned);
  EXPECT_EQ(f.dev.info().capacity_lbas,
            f.dev.profile().logical_bytes() / 4096);
}

TEST(ConvDevice, WritesAndReadsAnywhere) {
  Fixture f;
  // Unlike ZNS, random-address writes just work.
  EXPECT_TRUE(f.Run({.opcode = Opcode::kWrite, .slba = 1000, .nlb = 4}).ok());
  EXPECT_TRUE(f.Run({.opcode = Opcode::kWrite, .slba = 17, .nlb = 1}).ok());
  EXPECT_TRUE(f.Run({.opcode = Opcode::kRead, .slba = 1000, .nlb = 4}).ok());
  EXPECT_EQ(f.dev.counters().writes, 2u);
  EXPECT_EQ(f.dev.counters().reads, 1u);
}

TEST(ConvDevice, OverwritesAreAccepted) {
  Fixture f;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(f.Run({.opcode = Opcode::kWrite, .slba = 5, .nlb = 1}).ok());
  }
  EXPECT_EQ(f.dev.counters().host_rejects, 0u);
  EXPECT_EQ(f.dev.counters().media_errors, 0u);
}

TEST(ConvDevice, OutOfRangeIsRejected) {
  Fixture f;
  auto cap = f.dev.info().capacity_lbas;
  EXPECT_EQ(f.Run({.opcode = Opcode::kWrite, .slba = cap, .nlb = 1}).status,
            Status::kLbaOutOfRange);
  EXPECT_EQ(f.Run({.opcode = Opcode::kRead, .slba = cap - 1, .nlb = 2}).status,
            Status::kLbaOutOfRange);
}

TEST(ConvDevice, ZoneCommandsAreInvalid) {
  Fixture f;
  EXPECT_EQ(f.Run({.opcode = Opcode::kZoneMgmtSend,
                   .slba = 0,
                   .zone_action = nvme::ZoneAction::kReset})
                .status,
            Status::kInvalidOpcode);
  EXPECT_EQ(f.Run({.opcode = Opcode::kAppend, .slba = 0, .nlb = 1}).status,
            Status::kInvalidOpcode);
}

TEST(ConvDevice, PrefillMapsTheWholeLogicalSpace) {
  Fixture f;
  f.dev.DebugPrefill();
  // Every logical unit readable; reads hit NAND (not the buffer).
  EXPECT_TRUE(f.Run({.opcode = Opcode::kRead, .slba = 0, .nlb = 1}).ok());
  sim::Time lat = 0;
  EXPECT_TRUE(
      f.Run({.opcode = Opcode::kRead,
             .slba = f.dev.info().capacity_lbas - 1,
             .nlb = 1},
            &lat)
          .ok());
  EXPECT_GT(sim::ToMicroseconds(lat), 60.0);  // paid a real tR
}

TEST(ConvDevice, SustainedOverwriteTriggersGcAndAmplifiesWrites) {
  Fixture f;
  f.dev.DebugPrefill();
  workload::JobSpec spec;
  spec.op = Opcode::kWrite;
  spec.random = true;
  spec.request_bytes = 16 * 1024;
  spec.queue_depth = 8;
  spec.duration = sim::Seconds(3);
  // Random overwrites over the full device.
  auto r = workload::RunJob(f.sim, f.stack, spec);
  EXPECT_GT(r.ops, 0u);
  EXPECT_EQ(r.errors, 0u);
  const ConvCounters& c = f.dev.counters();
  EXPECT_GT(c.gc_blocks_erased, 0u) << "GC never ran";
  EXPECT_GT(c.gc_units_migrated, 0u);
  // Uniform random traffic at 25% OP: WA comfortably above 1.
  EXPECT_GT(c.WriteAmplification(), 1.3);
  EXPECT_LT(c.WriteAmplification(), 12.0);
}

TEST(ConvDevice, GcPreservesAllData) {
  // Mapping integrity through GC churn: every logical unit written maps
  // to a valid physical unit whose reverse mapping agrees.
  Fixture f;
  f.dev.DebugPrefill();
  workload::JobSpec spec;
  spec.op = Opcode::kWrite;
  spec.random = true;
  spec.request_bytes = 4096;
  spec.queue_depth = 4;
  spec.duration = sim::Seconds(2);
  (void)workload::RunJob(f.sim, f.stack, spec);
  // All reads still succeed after heavy churn.
  for (std::uint64_t lba = 0; lba < f.dev.info().capacity_lbas;
       lba += 97) {
    ASSERT_TRUE(f.Run({.opcode = Opcode::kRead, .slba = lba, .nlb = 1}).ok());
  }
}

TEST(ConvDevice, FreeBlocksStayAboveZeroUnderPressure) {
  Fixture f;
  f.dev.DebugPrefill();
  workload::JobSpec spec;
  spec.op = Opcode::kWrite;
  spec.random = true;
  spec.request_bytes = 16 * 1024;
  spec.queue_depth = 16;
  spec.duration = sim::Seconds(2);
  (void)workload::RunJob(f.sim, f.stack, spec);
  // The GC reserve plus watermarks keep the pool functional (no deadlock
  // happened, or this test would have hung).
  EXPECT_GE(f.dev.counters().gc_blocks_erased, 1u);
}

TEST(ConvDevice, ReadLatencyDegradesUnderWritePressure) {
  // The §III-F mechanism: reads queue behind GC/program/erase die time.
  auto read_p95_us = [](bool with_writes) {
    Fixture f;
    f.dev.DebugPrefill();
    std::vector<std::pair<hostif::Stack*, workload::JobSpec>> jobs;
    workload::JobSpec reader;
    reader.op = Opcode::kRead;
    reader.random = true;
    reader.queue_depth = 4;
    reader.duration = sim::Seconds(2);
    reader.warmup = sim::Milliseconds(500);
    jobs.emplace_back(&f.stack, reader);
    if (with_writes) {
      workload::JobSpec writer;
      writer.op = Opcode::kWrite;
      writer.random = true;
      writer.request_bytes = 16 * 1024;
      writer.queue_depth = 8;
      writer.duration = sim::Seconds(2);
      jobs.emplace_back(&f.stack, writer);
    }
    auto results = workload::RunJobs(f.sim, std::move(jobs));
    return results[0].latency.p95_ns() / 1000.0;
  };
  double idle = read_p95_us(false);
  double busy = read_p95_us(true);
  EXPECT_GT(busy, 3.0 * idle);
}

TEST(ConvDevice, WriteThroughputFluctuatesUnderGc) {
  // Obs. 11's conventional half: unlimited random writes produce a high
  // coefficient of variation in the throughput-over-time series.
  Fixture f;
  f.dev.DebugPrefill();
  workload::JobSpec spec;
  spec.op = Opcode::kWrite;
  spec.random = true;
  spec.request_bytes = 16 * 1024;
  spec.queue_depth = 16;
  spec.duration = sim::Seconds(4);
  spec.series_bin = sim::Milliseconds(100);
  auto r = workload::RunJob(f.sim, f.stack, spec);
  // Skip the pre-GC honeymoon (first second). The tiny device reaches a
  // fairly steady GC-limited regime; full-scale contrast with ZNS is
  // asserted in calibration (Obs. 11 via the Fig. 6 experiment).
  auto cv = r.series.RateMoments(10).cv();
  EXPECT_GT(cv, 0.10);
}

}  // namespace
}  // namespace zstor::ftl
