// Parallel-engine Testbed tests (DESIGN.md §12): WithSimThreads wiring,
// workload sharding across device lanes, and the determinism contract —
// results, device counters and timeline bytes must be identical for
// every worker-thread count, including under fault and power-loss
// injection, because N=1 executes the same bounded-window schedule
// serially.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "harness/testbed.h"
#include "workload/job.h"
#include "zns/zns_device.h"

namespace zstor {
namespace {

zns::ZnsProfile QuietTiny() {
  zns::ZnsProfile p = zns::TinyProfile();
  p.io_sigma = 0;
  p.reset.sigma = 0;
  p.finish.sigma = 0;
  return p;
}

workload::JobSpec ShardableAppendSpec(Testbed& tb, std::uint32_t ndev) {
  workload::JobSpec spec;
  spec.op = nvme::Opcode::kAppend;
  spec.request_bytes = 4096;
  spec.queue_depth = 2;
  spec.workers = ndev;
  spec.zones = tb.ZoneList(0, ndev);  // one zone -> one device per worker
  spec.partition_zones = true;
  spec.duration = sim::Milliseconds(10);
  spec.seed = 42;
  return spec;
}

struct RunOutcome {
  workload::JobResult result;
  std::vector<zns::ZnsCounters> counters;
  std::string timeline;
};

/// One complete experiment at a given thread count: build, run, finish,
/// harvest everything the determinism contract covers.
template <typename SpecFn>
RunOutcome RunAt(int sim_threads, std::uint32_t ndev, SpecFn make_spec,
                 const fault::FaultSpec* faults = nullptr) {
  RunOutcome out;
  TestbedBuilder b;
  TelemetryConfig cfg;
  cfg.timeline_capture = &out.timeline;
  cfg.sample_interval = sim::Milliseconds(2);
  b.WithZnsProfile(QuietTiny())
      .WithDevices(ndev)
      .WithStack(StackChoice::kSpdk)
      .WithTelemetry(cfg)
      .WithLabel("par")
      .WithSimThreads(sim_threads);
  if (faults != nullptr) b.WithFaults(*faults);
  Testbed tb = b.Build();
  out.result = tb.RunJob(make_spec(tb, ndev));
  for (std::uint32_t d = 0; d < ndev; ++d) {
    out.counters.push_back(tb.zns(d)->counters());
  }
  tb.Finish();
  return out;
}

void ExpectSameOutcome(const RunOutcome& a, const RunOutcome& b,
                       const char* what) {
  EXPECT_EQ(a.result.ops, b.result.ops) << what;
  EXPECT_EQ(a.result.bytes, b.result.bytes) << what;
  EXPECT_EQ(a.result.errors, b.result.errors) << what;
  EXPECT_EQ(a.result.measured_span, b.result.measured_span) << what;
  EXPECT_EQ(a.result.latency.count(), b.result.latency.count()) << what;
  EXPECT_DOUBLE_EQ(a.result.latency.mean_ns(), b.result.latency.mean_ns())
      << what;
  EXPECT_DOUBLE_EQ(a.result.latency.max_ns(), b.result.latency.max_ns())
      << what;
  ASSERT_EQ(a.counters.size(), b.counters.size()) << what;
  for (std::size_t d = 0; d < a.counters.size(); ++d) {
    EXPECT_EQ(a.counters[d].appends, b.counters[d].appends)
        << what << " d=" << d;
    EXPECT_EQ(a.counters[d].reads, b.counters[d].reads) << what << " d=" << d;
    EXPECT_EQ(a.counters[d].bytes_written, b.counters[d].bytes_written)
        << what << " d=" << d;
    EXPECT_EQ(a.counters[d].media_errors, b.counters[d].media_errors)
        << what << " d=" << d;
    EXPECT_EQ(a.counters[d].crashes, b.counters[d].crashes)
        << what << " d=" << d;
    EXPECT_EQ(a.counters[d].recoveries, b.counters[d].recoveries)
        << what << " d=" << d;
  }
  EXPECT_EQ(a.timeline, b.timeline) << what;  // byte-for-byte
}

TEST(TestbedParallel, WithSimThreadsBuildsParallelWiring) {
  Testbed tb = TestbedBuilder()
                   .WithZnsProfile(QuietTiny())
                   .WithDevices(3)
                   .WithSimThreads(2)
                   .Build();
  ASSERT_NE(tb.parallel_sim(), nullptr);
  EXPECT_EQ(tb.parallel_sim()->num_lanes(), 4u);  // coordinator + 3 devices
  EXPECT_EQ(tb.sim_threads(), 2);
  EXPECT_EQ(&tb.sim(), &tb.parallel_sim()->lane(0));
  ASSERT_NE(tb.striped(), nullptr);
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_NE(tb.lane_view(d), nullptr) << "d=" << d;
  }
}

TEST(TestbedParallel, SimThreadsZeroAndSingleDeviceStayClassic) {
  Testbed forced_off = TestbedBuilder()
                           .WithZnsProfile(QuietTiny())
                           .WithDevices(2)
                           .WithSimThreads(0)
                           .Build();
  EXPECT_EQ(forced_off.parallel_sim(), nullptr);
  Testbed single = TestbedBuilder()
                       .WithZnsProfile(QuietTiny())
                       .WithSimThreads(4)
                       .Build();
  EXPECT_EQ(single.parallel_sim(), nullptr);
  EXPECT_EQ(single.sim_threads(), 0);
}

TEST(TestbedParallel, ShardedAppendIsThreadCountInvariant) {
  RunOutcome ref = RunAt(1, 4, ShardableAppendSpec);
  EXPECT_GT(ref.result.ops, 0u);
  EXPECT_EQ(ref.result.errors, 0u);
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_GT(ref.counters[d].appends, 0u) << "d=" << d;
  }
  ExpectSameOutcome(ref, RunAt(2, 4, ShardableAppendSpec), "threads=2");
  ExpectSameOutcome(ref, RunAt(4, 4, ShardableAppendSpec), "threads=4");
}

/// Random reads across every zone from every worker cannot shard (each
/// worker touches all devices), so the job runs on the coordinator and
/// every command crosses lanes through the MailboxStack proxies.
workload::JobSpec ProxiedReadSpec(Testbed& tb, std::uint32_t ndev) {
  workload::JobSpec spec;
  spec.op = nvme::Opcode::kRead;
  spec.random = true;
  spec.request_bytes = 4096;
  spec.queue_depth = 4;
  spec.workers = 2;
  spec.zones = tb.ZoneList(0, 2 * ndev);
  spec.duration = sim::Milliseconds(5);
  spec.seed = 7;
  return spec;
}

template <typename SpecFn>
RunOutcome RunFilledAt(int sim_threads, std::uint32_t ndev,
                       SpecFn make_spec) {
  RunOutcome out;
  TestbedBuilder b;
  TelemetryConfig cfg;
  cfg.timeline_capture = &out.timeline;
  cfg.sample_interval = sim::Milliseconds(2);
  Testbed tb = b.WithZnsProfile(QuietTiny())
                   .WithDevices(ndev)
                   .WithTelemetry(cfg)
                   .WithLabel("par")
                   .WithSimThreads(sim_threads)
                   .Build();
  tb.FillZones(0, 2 * ndev);
  out.result = tb.RunJob(make_spec(tb, ndev));
  for (std::uint32_t d = 0; d < ndev; ++d) {
    out.counters.push_back(tb.zns(d)->counters());
  }
  tb.Finish();
  return out;
}

TEST(TestbedParallel, ProxiedReadsCrossLanesAndStayInvariant) {
  RunOutcome ref = RunFilledAt(1, 2, ProxiedReadSpec);
  EXPECT_GT(ref.result.ops, 0u);
  EXPECT_EQ(ref.result.errors, 0u);
  ExpectSameOutcome(ref, RunFilledAt(2, 2, ProxiedReadSpec), "threads=2");
  ExpectSameOutcome(ref, RunFilledAt(3, 2, ProxiedReadSpec), "threads=3");
}

TEST(TestbedParallel, ProxiedReadsActuallyUseTheMailboxes) {
  TestbedBuilder b;
  Testbed tb = b.WithZnsProfile(QuietTiny())
                   .WithDevices(2)
                   .WithSimThreads(2)
                   .Build();
  tb.FillZones(0, 4);
  workload::JobSpec spec = ProxiedReadSpec(tb, 2);
  workload::JobResult r = tb.RunJob(spec);
  EXPECT_GT(r.ops, 0u);
  // Every proxied command is one kRequest plus one kReply.
  EXPECT_GE(tb.parallel_sim()->messages(), 2 * r.ops);
  EXPECT_GT(tb.parallel_sim()->windows(), 1u);
}

TEST(TestbedParallel, CrashInjectionMatchesSingleThreadedReference) {
  // Power losses mid-append plus uncorrectable read noise: the retry
  // layer pins jobs to the coordinator, the per-device crash drivers
  // fire lane-locally, and the whole run must still be thread-count
  // invariant.
  fault::FaultSpec fs;
  fs.enabled = true;
  fs.seed = 99;
  fs.crashes = {sim::Milliseconds(3), sim::Milliseconds(7)};
  RunOutcome ref = RunAt(1, 3, ShardableAppendSpec, &fs);
  EXPECT_GT(ref.result.ops, 0u);
  std::uint64_t crashes = 0;
  for (const auto& c : ref.counters) crashes += c.crashes;
  EXPECT_GT(crashes, 0u);
  ExpectSameOutcome(ref, RunAt(2, 3, ShardableAppendSpec, &fs), "threads=2");
  ExpectSameOutcome(ref, RunAt(4, 3, ShardableAppendSpec, &fs), "threads=4");
}

TEST(TestbedParallel, LaneTelemetryMergesIntoFinalSnapshot) {
  std::string timeline;
  TelemetryConfig cfg;
  cfg.timeline_capture = &timeline;
  cfg.sample_interval = sim::Milliseconds(2);
  Testbed tb = TestbedBuilder()
                   .WithZnsProfile(QuietTiny())
                   .WithDevices(2)
                   .WithTelemetry(cfg)
                   .WithLabel("merge")
                   .WithSimThreads(2)
                   .Build();
  workload::JobSpec spec = ShardableAppendSpec(tb, 2);
  workload::JobResult r = tb.RunJob(spec);
  telemetry::Snapshot snap = tb.TakeSnapshot();
  // The aggregate "zns." counters must cover BOTH device lanes even
  // though the devices live outside the coordinator's registry.
  std::uint64_t appends = 0;
  for (std::uint32_t d = 0; d < 2; ++d) appends += tb.zns(d)->counters().appends;
  const auto* m = snap.Find("zns.appends");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, static_cast<double>(appends));
  EXPECT_GE(appends, static_cast<std::uint64_t>(r.ops));
  tb.Finish();
  // Lane timelines were concatenated in lane order; every lane's label
  // must appear in the merged capture.
  EXPECT_NE(timeline.find("\"merge\""), std::string::npos);
  EXPECT_NE(timeline.find("merge/lane0"), std::string::npos);
  EXPECT_NE(timeline.find("merge/lane1"), std::string::npos);
}

}  // namespace
}  // namespace zstor
