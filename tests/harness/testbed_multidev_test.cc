// Multi-device Testbed tests: WithDevices wiring, FillZones routing
// through the stripe map, and the aggregated log pages (SMART summed,
// zone report in logical order, die utilization concatenated).
#include <gtest/gtest.h>

#include <set>

#include "harness/testbed.h"
#include "nvme/log_page.h"
#include "zns/zns_device.h"

namespace zstor {
namespace {

zns::ZnsProfile QuietTiny() {
  zns::ZnsProfile p = zns::TinyProfile();
  p.io_sigma = 0;
  p.reset.sigma = 0;
  p.finish.sigma = 0;
  return p;
}

Testbed MakeBed(std::uint32_t ndev,
                StackChoice stack = StackChoice::kSpdk) {
  return TestbedBuilder()
      .WithZnsProfile(QuietTiny())
      .WithDevices(ndev)
      .WithStack(stack)
      .Build();
}

TEST(TestbedMultiDev, WithDevicesBuildsStripedWiring) {
  Testbed tb = MakeBed(4);
  EXPECT_EQ(tb.num_devices(), 4u);
  ASSERT_NE(tb.striped(), nullptr);
  EXPECT_EQ(tb.striped()->num_lanes(), 4u);
  EXPECT_EQ(&tb.stack(), tb.striped());  // the stripe IS the host stack
  std::set<zns::ZnsDevice*> distinct;
  for (std::size_t d = 0; d < 4; ++d) {
    ASSERT_NE(tb.zns(d), nullptr);
    distinct.insert(tb.zns(d));
  }
  EXPECT_EQ(distinct.size(), 4u);
  EXPECT_EQ(tb.zns(), tb.zns(0));
  // The merged namespace spans all four devices.
  EXPECT_EQ(tb.stack().info().num_zones, 4 * tb.zns()->info().num_zones);
}

TEST(TestbedMultiDev, SingleDeviceKeepsClassicWiring) {
  Testbed tb = MakeBed(1, StackChoice::kKernelMq);
  EXPECT_EQ(tb.num_devices(), 1u);
  EXPECT_EQ(tb.striped(), nullptr);
  EXPECT_NE(tb.kernel(), nullptr);  // scheduler stats still reachable
}

TEST(TestbedMultiDev, FillZonesRoutesThroughTheStripeMap) {
  Testbed tb = MakeBed(4);
  const std::uint64_t cap = tb.zns()->profile().zone_cap_bytes;
  // Logical zones 0..7 map one-per-device twice around: each device must
  // end up with its zones 0 and 1 full and nothing else touched.
  tb.FillZones(0, 8);
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(tb.zns(d)->ZoneWrittenBytes(0), cap) << "d=" << d;
    EXPECT_EQ(tb.zns(d)->ZoneWrittenBytes(1), cap) << "d=" << d;
    EXPECT_EQ(tb.zns(d)->ZoneWrittenBytes(2), 0u) << "d=" << d;
  }
}

TEST(TestbedMultiDev, SmartSumsCountersAcrossDevices) {
  Testbed tb = MakeBed(2);
  workload::JobSpec spec;
  spec.op = nvme::Opcode::kAppend;
  spec.zones = tb.ZoneList(0, 4);  // two logical zones per device
  spec.queue_depth = 2;
  spec.request_bytes = 8 * 1024;
  spec.duration = sim::Milliseconds(20);
  workload::JobResult r = tb.RunJob(spec);
  ASSERT_GT(r.ops, 0u);
  ASSERT_EQ(r.errors, 0u);

  std::uint64_t appends = 0, bytes = 0;
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_GT(tb.zns(d)->counters().appends, 0u) << "d=" << d;
    appends += tb.zns(d)->counters().appends;
    bytes += tb.zns(d)->counters().bytes_written;
  }
  nvme::SmartLog smart = tb.Smart();
  EXPECT_EQ(smart.device, "zns");
  EXPECT_EQ(smart.host_writes, appends);
  EXPECT_EQ(smart.bytes_written, bytes);
}

TEST(TestbedMultiDev, ZoneReportIsInLogicalOrderWithSummedBudgets) {
  Testbed tb = MakeBed(3);
  const zns::ZnsProfile& p = tb.zns()->profile();
  tb.FillZones(0, 5);
  nvme::ZoneReportLog report = tb.ZoneReport();
  EXPECT_EQ(report.num_zones, 3 * p.num_zones);
  EXPECT_EQ(report.max_open, 3 * p.max_open_zones);
  EXPECT_EQ(report.max_active, 3 * p.max_active_zones);
  ASSERT_EQ(report.zones.size(), report.num_zones);
  const std::uint64_t zsz_lbas = tb.stack().info().zone_size_lbas;
  for (std::uint32_t lz = 0; lz < report.num_zones; ++lz) {
    EXPECT_EQ(report.zones[lz].zone, lz);
    EXPECT_EQ(report.zones[lz].zslba, lz * zsz_lbas);
    EXPECT_EQ(report.zones[lz].state, lz < 5 ? "Full" : "Empty");
    EXPECT_EQ(report.zones[lz].written_bytes,
              lz < 5 ? p.zone_cap_bytes : 0u);
  }
}

TEST(TestbedMultiDev, DieUtilConcatenatesWithOffsetDieIndices) {
  Testbed tb = MakeBed(2);
  tb.FillZones(0, 2);  // touch both devices so dies report activity
  nvme::DieUtilLog log = tb.DieUtil();
  const std::uint32_t per_dev = tb.zns()->profile().nand_geometry.total_dies();
  ASSERT_EQ(log.dies.size(), 2u * per_dev);
  for (std::uint32_t i = 0; i < log.dies.size(); ++i) {
    EXPECT_EQ(log.dies[i].die, i);  // strictly increasing, device-offset
  }
}

TEST(TestbedMultiDev, ReadJobSpansAllDevicesCleanly) {
  Testbed tb = MakeBed(4);
  tb.FillZones(0, 8);
  workload::JobSpec spec;
  spec.op = nvme::Opcode::kRead;
  spec.random = true;
  spec.zones = tb.ZoneList(0, 8);
  spec.queue_depth = 8;
  spec.duration = sim::Milliseconds(20);
  workload::JobResult r = tb.RunJob(spec);
  EXPECT_GT(r.ops, 100u);
  EXPECT_EQ(r.errors, 0u);
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_GT(tb.zns(d)->counters().reads, 0u) << "d=" << d;
  }
}

}  // namespace
}  // namespace zstor
