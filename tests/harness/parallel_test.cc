#include "harness/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <thread>
#include <vector>

#include "harness/bench_flags.h"

namespace zstor::harness {
namespace {

// InitBench is process-global; run it once with a jobs count > 1 so
// ParallelSweep actually exercises its thread pool here.
struct InitOnce {
  InitOnce() {
    const char* argv[] = {"parallel_test", "--jobs=4"};
    int argc = 2;
    InitBench(argc, const_cast<char**>(argv));
  }
};

TEST(ParallelSweep, ResultsArriveInIndexOrder) {
  static InitOnce init;
  ASSERT_EQ(SweepJobs(), 4);
  std::vector<int> out = ParallelSweep(100, [](std::size_t i) {
    if (i % 7 == 0) std::this_thread::yield();  // perturb completion order
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ParallelSweep, EveryIndexRunsExactlyOnce) {
  static InitOnce init;
  std::vector<std::atomic<int>> hits(257);
  ParallelSweep(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    return 0;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelSweep, SinglePointStillWorks) {
  static InitOnce init;
  std::vector<double> out =
      ParallelSweep(1, [](std::size_t) { return 42.0; });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 42.0);
}

TEST(ParallelTasks, AllTasksComplete) {
  static InitOnce init;
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 1; i <= 10; ++i) {
    tasks.push_back([&sum, i] { sum.fetch_add(i); });
  }
  ParallelTasks(std::move(tasks));
  EXPECT_EQ(sum.load(), 55);
}

TEST(ParallelTasks, EmptyListIsANoOp) {
  static InitOnce init;
  ParallelTasks({});
}

}  // namespace
}  // namespace zstor::harness
