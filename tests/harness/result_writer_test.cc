// ResultWriter schema tests: the --json document must parse, follow the
// DESIGN.md §7 shape, render absent latency data as null (never zero),
// and survive hostile strings — validated with the same parser ztrace
// uses, so producer and consumer agree by construction.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "harness/result_writer.h"
#include "sim/stats.h"
#include "ztrace/json_value.h"

namespace zstor::harness {
namespace {

using ztrace::JsonValue;

TEST(ResultWriter, EmitsTheDocumentedSchema) {
  ResultWriter w;
  w.set_bench("my_bench");
  w.Config("device", "zn540");
  w.Config("runtime_s", 2.0);
  w.Series("lat", "us").Add(4096, 13.2).AddLabeled("8KiB", 8192, 14.0);

  auto v = JsonValue::Parse(w.ToJson());
  ASSERT_TRUE(v.has_value()) << w.ToJson();
  EXPECT_EQ(v->StringOr("bench", ""), "my_bench");
  EXPECT_DOUBLE_EQ(v->NumberOr("schema_version", 0), 3.0);

  const JsonValue* config = v->Find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->StringOr("device", ""), "zn540");
  EXPECT_DOUBLE_EQ(config->NumberOr("runtime_s", 0), 2.0);

  const JsonValue* series = v->Find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_TRUE(series->is_array());
  ASSERT_EQ(series->array().size(), 1u);
  const JsonValue& s = series->array()[0];
  EXPECT_EQ(s.StringOr("name", ""), "lat");
  EXPECT_EQ(s.StringOr("unit", ""), "us");
  const JsonValue* points = s.Find("points");
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->array().size(), 2u);
  EXPECT_DOUBLE_EQ(points->array()[0].NumberOr("x", 0), 4096.0);
  EXPECT_DOUBLE_EQ(points->array()[0].NumberOr("value", 0), 13.2);
  EXPECT_EQ(points->array()[1].StringOr("label", ""), "8KiB");
}

TEST(ResultWriter, AbsentLatencyIsNullNotZero) {
  ResultWriter w;
  w.Series("s", "us").Add(1, 2.0);
  auto v = JsonValue::Parse(w.ToJson());
  ASSERT_TRUE(v.has_value());
  const JsonValue& p =
      v->Find("series")->array()[0].Find("points")->array()[0];
  const JsonValue* mean = p.Find("mean_ns");
  ASSERT_NE(mean, nullptr);
  EXPECT_TRUE(mean->is_null());
  EXPECT_TRUE(p.Find("p99_ns")->is_null());
}

TEST(ResultWriter, HistogramFillsThePercentileFields) {
  sim::LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * 1000);
  ResultWriter w;
  w.Series("s", "us").Add(1, 2.0, h);
  auto v = JsonValue::Parse(w.ToJson());
  ASSERT_TRUE(v.has_value());
  const JsonValue& p =
      v->Find("series")->array()[0].Find("points")->array()[0];
  EXPECT_DOUBLE_EQ(p.NumberOr("samples", 0), 100.0);
  EXPECT_GT(p.NumberOr("mean_ns", 0), 0.0);
  EXPECT_GE(p.NumberOr("p99_ns", 0), p.NumberOr("p50_ns", 0));
  // An empty histogram must leave the fields null.
  sim::LatencyHistogram empty;
  w.Series("s").Add(2, 3.0, empty);
  v = JsonValue::Parse(w.ToJson());
  const JsonValue& p2 =
      v->Find("series")->array()[0].Find("points")->array()[1];
  EXPECT_TRUE(p2.Find("mean_ns")->is_null());
}

TEST(ResultWriter, PartsAreEmittedOnlyWhenAttached) {
  ResultWriter w;
  w.Series("kiops", "KIOPS")
      .Add(1, 130.0)
      .Add(2, 260.0)
      .WithParts({130.0, 130.0});
  auto v = JsonValue::Parse(w.ToJson());
  ASSERT_TRUE(v.has_value()) << w.ToJson();
  const auto& pts = v->Find("series")->array()[0].Find("points")->array();
  ASSERT_EQ(pts.size(), 2u);
  // The plain point has no "parts" key at all (v1 consumers unaffected).
  EXPECT_EQ(pts[0].Find("parts"), nullptr);
  const JsonValue* parts = pts[1].Find("parts");
  ASSERT_NE(parts, nullptr);
  ASSERT_TRUE(parts->is_array());
  ASSERT_EQ(parts->array().size(), 2u);
  EXPECT_DOUBLE_EQ(parts->array()[0].number(), 130.0);
  EXPECT_DOUBLE_EQ(parts->array()[1].number(), 130.0);
}

TEST(ResultWriter, WaIsEmittedOnlyWhenAttached) {
  ResultWriter w;
  w.Series("wa", "x").Add(1, 3.0).Add(2, 4.0).WithWa(3.4);
  auto v = JsonValue::Parse(w.ToJson());
  ASSERT_TRUE(v.has_value()) << w.ToJson();
  const auto& pts = v->Find("series")->array()[0].Find("points")->array();
  ASSERT_EQ(pts.size(), 2u);
  // The plain point has no "wa" key at all (v2 consumers unaffected).
  EXPECT_EQ(pts[0].Find("wa"), nullptr);
  const JsonValue* wa = pts[1].Find("wa");
  ASSERT_NE(wa, nullptr);
  EXPECT_DOUBLE_EQ(wa->number(), 3.4);
}

TEST(ResultWriter, SeriesIsGetOrCreateAndConfigLastWriteWins) {
  ResultWriter w;
  ResultSeries& a = w.Series("s", "us");
  ResultSeries& b = w.Series("s");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.unit(), "us");
  w.Config("k", 1.0);
  w.Config("k", "two");
  auto v = JsonValue::Parse(w.ToJson());
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->Find("config")->StringOr("k", ""), "two");
  // Only one "k" key survives.
  EXPECT_EQ(v->Find("config")->object().size(), 1u);
}

TEST(ResultWriter, EscapesHostileStrings) {
  ResultWriter w;
  w.set_bench("bench\"with\\quotes\nand newlines");
  w.Config("key \"x\"", "va\tlue");
  w.Series("ser\"ies", "u\\nit").AddLabeled("lab\nel", 1, 2.0);
  auto v = JsonValue::Parse(w.ToJson());
  ASSERT_TRUE(v.has_value()) << w.ToJson();
  EXPECT_EQ(v->StringOr("bench", ""), "bench\"with\\quotes\nand newlines");
  EXPECT_EQ(v->Find("config")->StringOr("key \"x\"", ""), "va\tlue");
  const JsonValue& s = v->Find("series")->array()[0];
  EXPECT_EQ(s.StringOr("name", ""), "ser\"ies");
  EXPECT_EQ(s.Find("points")->array()[0].StringOr("label", ""), "lab\nel");
}

TEST(ResultWriter, EmptyDocumentIsStillValid) {
  ResultWriter w;
  w.set_bench("noop");
  EXPECT_TRUE(w.empty());
  auto v = JsonValue::Parse(w.ToJson());
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->Find("series")->is_array());
  EXPECT_EQ(v->Find("series")->array().size(), 0u);
}

}  // namespace
}  // namespace zstor::harness
