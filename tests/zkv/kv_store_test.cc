// KvStore tests: LSM semantics (put/get/delete, overwrite, tombstones),
// the flush/compaction pipeline under churn, lifetime placement's effect
// on write amplification, open-zone discipline, and stats invariants.
#include <gtest/gtest.h>

#include <cstdint>

#include "hostif/spdk_stack.h"
#include "sim/rng.h"
#include "sim/task.h"
#include "workload/zipf.h"
#include "zkv/kv_store.h"
#include "zns/zns_device.h"

namespace zstor::zkv {
namespace {

using nvme::Status;

struct Fixture {
  explicit Fixture(KvStore::Options opt = DefaultOptions())
      : dev(sim, Profile()), stack(sim, dev), kv(sim, stack, opt) {}

  static zns::ZnsProfile Profile() {
    zns::ZnsProfile p = zns::TinyProfile();
    p.io_sigma = 0;
    p.reset.sigma = 0;
    p.finish.sigma = 0;
    // The store holds more zones active than zobj: two WAL segments plus
    // hot/cold/relocation data zones.
    p.max_open_zones = 8;
    p.max_active_zones = 10;
    return p;
  }
  static KvStore::Options DefaultOptions() {
    return {.first_zone = 0, .zone_count = 14};
  }

  template <typename F>
  void Sync(F&& f) {
    auto body = [&]() -> sim::Task<> { co_await f(); };
    auto t = body();
    sim.Run();
  }

  Status Put(std::uint64_t key, std::uint64_t bytes) {
    Status out = Status::kInternalError;
    Sync([&]() -> sim::Task<Status> { co_return co_await kv.Put(key, bytes); },
         &out);
    return out;
  }
  template <typename F>
  void Sync(F&& f, Status* out) {
    auto body = [&]() -> sim::Task<> { *out = co_await f(); };
    auto t = body();
    sim.Run();
  }
  Status Get(std::uint64_t key, bool* found) {
    Status out = Status::kInternalError;
    Sync([&]() -> sim::Task<Status> { co_return co_await kv.Get(key, found); },
         &out);
    return out;
  }
  Status Delete(std::uint64_t key) {
    Status out = Status::kInternalError;
    Sync([&]() -> sim::Task<Status> { co_return co_await kv.Delete(key); },
         &out);
    return out;
  }
  void Drain() {
    Sync([&]() -> sim::Task<> { co_await kv.Drain(); });
  }

  sim::Simulator sim;
  zns::ZnsDevice dev;
  hostif::SpdkStack stack;
  KvStore kv;
};

TEST(KvStore, PutGetDeleteRoundTrip) {
  Fixture f;
  EXPECT_EQ(f.Put(1, 4096), Status::kSuccess);
  bool found = false;
  EXPECT_EQ(f.Get(1, &found), Status::kSuccess);
  EXPECT_TRUE(found);
  EXPECT_EQ(f.Get(2, &found), Status::kSuccess);
  EXPECT_FALSE(found);
  EXPECT_EQ(f.Delete(1), Status::kSuccess);
  EXPECT_EQ(f.Get(1, &found), Status::kSuccess);
  EXPECT_FALSE(found);
  f.Drain();
  EXPECT_EQ(f.kv.stats().puts, 1u);
  EXPECT_EQ(f.kv.stats().deletes, 1u);
  EXPECT_EQ(f.kv.stats().gets, 3u);
  EXPECT_EQ(f.kv.stats().found, 1u);
  EXPECT_EQ(f.kv.stats().missing, 2u);
}

TEST(KvStore, EveryPutIsWalLogged) {
  Fixture f;
  for (std::uint64_t k = 0; k < 10; ++k) {
    ASSERT_EQ(f.Put(k, 8192), Status::kSuccess);
  }
  const KvStats& st = f.kv.stats();
  EXPECT_EQ(st.wal_appends, 10u);
  EXPECT_GE(st.wal_bytes, st.user_bytes);  // header + LBA padding
  EXPECT_EQ(st.user_bytes, 10u * 8192);
}

TEST(KvStore, MemtableRotationFlushesToL0) {
  Fixture f;
  // Default memtable_bytes = 256 KiB: 20 x 16 KiB overflows it.
  for (std::uint64_t k = 0; k < 20; ++k) {
    ASSERT_EQ(f.Put(k, 16 * 1024), Status::kSuccess);
  }
  f.Drain();
  const KvStats& st = f.kv.stats();
  EXPECT_GE(st.memtable_rotations, 1u);
  EXPECT_GE(st.flushes, 1u);
  EXPECT_GE(st.tables_written, 1u);
  EXPECT_GE(st.wal_resets, 1u);  // checkpoint after the durable flush
  // Everything is still readable after the flush.
  for (std::uint64_t k = 0; k < 20; ++k) {
    bool found = false;
    ASSERT_EQ(f.Get(k, &found), Status::kSuccess);
    EXPECT_TRUE(found) << "key " << k;
  }
}

TEST(KvStore, OverwritesAndTombstonesResolveNewestFirst) {
  Fixture f;
  for (int round = 0; round < 30; ++round) {
    ASSERT_EQ(f.Put(7, 16 * 1024), Status::kSuccess);
    ASSERT_EQ(f.Put(8, 16 * 1024), Status::kSuccess);
  }
  ASSERT_EQ(f.Delete(7), Status::kSuccess);
  f.Drain();
  bool found = true;
  EXPECT_EQ(f.Get(7, &found), Status::kSuccess);
  EXPECT_FALSE(found);  // tombstone shadows every flushed version
  EXPECT_EQ(f.Get(8, &found), Status::kSuccess);
  EXPECT_TRUE(found);
}

TEST(KvStore, CompactionTriggersUnderChurnAndKeepsDataReadable) {
  Fixture f;
  sim::Rng rng(5);
  // ~8 MiB of updates over 64 keys through 256 KiB memtables: many
  // flushes, L0 fills, leveled compaction must run.
  for (int round = 0; round < 512; ++round) {
    ASSERT_EQ(f.Put(rng.UniformU64(64), 16 * 1024), Status::kSuccess)
        << "round " << round;
  }
  f.Drain();
  const KvStats& st = f.kv.stats();
  EXPECT_GT(st.compactions, 0u);
  EXPECT_GT(st.compact_bytes_written, 0u);
  EXPECT_GT(st.zone_resets, 0u);  // WAL checkpoints at minimum
  for (std::uint64_t k = 0; k < 64; ++k) {
    bool found = false;
    ASSERT_EQ(f.Get(k, &found), Status::kSuccess);
    EXPECT_TRUE(found) << "key " << k;
  }
  // Per-level accounting adds up: every compaction outputs somewhere.
  std::uint64_t level_compactions = 0;
  for (const LevelStats& ls : f.kv.level_stats()) {
    level_compactions += ls.compactions;
  }
  EXPECT_EQ(level_compactions, st.compactions);
}

TEST(KvStore, WriteAmplificationIsAccounted) {
  Fixture f;
  sim::Rng rng(11);
  for (int round = 0; round < 256; ++round) {
    ASSERT_EQ(f.Put(rng.UniformU64(32), 16 * 1024), Status::kSuccess);
  }
  f.Drain();
  const KvStats& st = f.kv.stats();
  // WAL + flush already make WA >= 2; compaction adds more.
  EXPECT_GT(st.WriteAmplification(), 1.9);
  EXPECT_LT(st.WriteAmplification(), 20.0);
}

TEST(KvStore, LifetimePlacementDoesNotLoseData) {
  for (bool placement : {true, false}) {
    KvStore::Options opt = Fixture::DefaultOptions();
    opt.lifetime_placement = placement;
    Fixture f(opt);
    sim::Rng rng(3);
    for (int round = 0; round < 384; ++round) {
      ASSERT_EQ(f.Put(rng.UniformU64(48), 16 * 1024), Status::kSuccess);
    }
    f.Drain();
    for (std::uint64_t k = 0; k < 48; ++k) {
      bool found = false;
      ASSERT_EQ(f.Get(k, &found), Status::kSuccess);
      EXPECT_TRUE(found) << "placement " << placement << " key " << k;
    }
  }
}

void ZipfLikeChurn(Fixture& f) {
  sim::Rng rng(29);
  workload::ZipfGenerator zipf(64, 0.9);
  for (int round = 0; round < 768; ++round) {
    ASSERT_EQ(f.Put(zipf.Next(rng), 16 * 1024), Status::kSuccess);
  }
  f.Drain();
}

TEST(KvStore, ZipfChurnPlacementReducesRelocation) {
  // The R4 claim: with skewed updates, separating short-lived (L0/L1)
  // from long-lived (deep level) tables makes zones die wholesale, so
  // reclaim relocates less live data. Same deterministic op stream, only
  // the placement flag differs.
  auto run = [](bool placement) {
    KvStore::Options opt = Fixture::DefaultOptions();
    opt.lifetime_placement = placement;
    Fixture f(opt);
    ZipfLikeChurn(f);
    return f.kv.stats();
  };
  KvStats on = run(true);
  KvStats off = run(false);
  EXPECT_EQ(on.user_bytes, off.user_bytes);  // identical op streams
  EXPECT_LE(on.WriteAmplification(), off.WriteAmplification() + 1e-9);
}

TEST(KvStore, ObeysOpenZoneBudget) {
  Fixture f;
  sim::Rng rng(13);
  for (int round = 0; round < 256; ++round) {
    ASSERT_EQ(f.Put(rng.UniformU64(32), 16 * 1024), Status::kSuccess);
    // 2 WAL segments + hot + cold + relocation output.
    ASSERT_LE(f.dev.open_zone_count(), 5u);
  }
  f.Drain();
}

TEST(KvStore, ConcurrentPutsAllLand) {
  Fixture f;
  int done = 0;
  auto writer = [&](std::uint64_t key) -> sim::Task<> {
    auto st = co_await f.kv.Put(key, 16 * 1024);
    ZSTOR_CHECK(st == Status::kSuccess);
    ++done;
  };
  for (std::uint64_t k = 0; k < 40; ++k) sim::Spawn(writer(k));
  f.sim.Run();
  EXPECT_EQ(done, 40);
  f.Drain();
  for (std::uint64_t k = 0; k < 40; ++k) {
    bool found = false;
    ASSERT_EQ(f.Get(k, &found), Status::kSuccess);
    EXPECT_TRUE(found);
  }
}

TEST(KvStore, ReadsVerifyPayloadTags) {
  Fixture f;
  sim::Rng rng(17);
  for (int round = 0; round < 128; ++round) {
    ASSERT_EQ(f.Put(rng.UniformU64(16), 16 * 1024), Status::kSuccess);
  }
  f.Drain();
  for (std::uint64_t k = 0; k < 16; ++k) {
    bool found = false;
    ASSERT_EQ(f.Get(k, &found), Status::kSuccess);
  }
  EXPECT_GT(f.kv.stats().read_ios, 0u);
  EXPECT_EQ(f.kv.stats().read_tag_mismatches, 0u);
}

}  // namespace
}  // namespace zstor::zkv
