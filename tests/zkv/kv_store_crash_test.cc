// KvStore crash-recovery tests: WAL replay after a power loss, the
// IntegrityVerifier classification of every ledgered LBA, and the hard
// invariant the crash bench gates on — zero silent corruptions, ever.
#include <gtest/gtest.h>

#include <cstdint>

#include "hostif/resilient_stack.h"
#include "hostif/spdk_stack.h"
#include "sim/rng.h"
#include "sim/task.h"
#include "zkv/kv_store.h"
#include "zns/zns_device.h"

namespace zstor::zkv {
namespace {

using nvme::Status;
using Report = workload::IntegrityVerifier::Report;

struct Fixture {
  Fixture()
      : dev(sim, Profile()),
        inner(sim, dev),
        stack(sim, inner,
              {.max_attempts = 8, .backoff = sim::Microseconds(500)}),
        kv(sim, stack, Opts(dev)) {}

  static zns::ZnsProfile Profile() {
    zns::ZnsProfile p = zns::TinyProfile();
    p.io_sigma = 0;
    p.reset.sigma = 0;
    p.finish.sigma = 0;
    p.max_open_zones = 8;
    p.max_active_zones = 10;
    return p;
  }
  static KvStore::Options Opts(zns::ZnsDevice& d) {
    KvStore::Options o{.first_zone = 0, .zone_count = 14};
    o.crash_epoch = [&d] { return d.power_epoch(); };
    return o;
  }

  template <typename F>
  void Sync(F&& f) {
    auto body = [&]() -> sim::Task<> { co_await f(); };
    auto t = body();
    sim.Run();
  }

  sim::Simulator sim;
  zns::ZnsDevice dev;
  hostif::SpdkStack inner;
  hostif::ResilientStack stack;
  KvStore kv;
};

TEST(KvStoreCrash, QuietStoreRecoversExact) {
  Fixture f;
  Report rep;
  auto body = [&]() -> sim::Task<> {
    for (std::uint64_t k = 0; k < 8; ++k) {
      co_await f.kv.Put(k, 16 * 1024);
    }
    co_await f.kv.Drain();
    co_await f.dev.CrashNow();
    rep = co_await f.kv.RecoverAfterCrash();
  };
  f.Sync(body);

  EXPECT_EQ(rep.silent_corruptions, 0u);
  EXPECT_EQ(f.kv.stats().crash_recoveries, 1u);
  // Everything the WAL or a durable table held must come back.
  for (std::uint64_t k = 0; k < 8; ++k) {
    bool found = false;
    Status st = Status::kInternalError;
    auto rd = [&]() -> sim::Task<> { st = co_await f.kv.Get(k, &found); };
    auto t = rd();
    f.sim.Run();
    EXPECT_EQ(st, Status::kSuccess);
    EXPECT_TRUE(found) << "key " << k;
  }
}

TEST(KvStoreCrash, MidChurnCrashYieldsNoSilentCorruption) {
  Fixture f;
  Report rep;
  auto body = [&]() -> sim::Task<> {
    sim::Rng rng(7);
    // Churn enough to have flushes and compactions in flight, then cut
    // power without draining: volatile WAL tail + un-certified tables.
    for (int round = 0; round < 200; ++round) {
      co_await f.kv.Put(rng.UniformU64(24), 16 * 1024);
    }
    co_await f.dev.CrashNow();
    rep = co_await f.kv.RecoverAfterCrash();
  };
  f.Sync(body);

  // Losing unflushed data is legitimate; silently serving wrong data is
  // not. The verifier taxonomy keeps the two apart.
  EXPECT_EQ(rep.silent_corruptions, 0u);
  EXPECT_GT(rep.lbas_checked, 0u);
  EXPECT_GT(f.kv.stats().wal_replayed + f.kv.stats().wal_lost, 0u);
}

TEST(KvStoreCrash, StoreKeepsServingAfterRecovery) {
  Fixture f;
  Report rep;
  Status late_put = Status::kInternalError;
  bool late_found = false;
  auto body = [&]() -> sim::Task<> {
    sim::Rng rng(9);
    for (int round = 0; round < 120; ++round) {
      co_await f.kv.Put(rng.UniformU64(16), 16 * 1024);
    }
    co_await f.dev.CrashNow();
    rep = co_await f.kv.RecoverAfterCrash();
    late_put = co_await f.kv.Put(999, 16 * 1024);
    co_await f.kv.Get(999, &late_found);
    co_await f.kv.Drain();
  };
  f.Sync(body);

  EXPECT_EQ(rep.silent_corruptions, 0u);
  EXPECT_EQ(late_put, Status::kSuccess);
  EXPECT_TRUE(late_found);
}

TEST(KvStoreCrash, DoubleCrashSurvives) {
  Fixture f;
  Report rep1, rep2;
  auto body = [&]() -> sim::Task<> {
    sim::Rng rng(21);
    for (int round = 0; round < 100; ++round) {
      co_await f.kv.Put(rng.UniformU64(12), 16 * 1024);
    }
    co_await f.dev.CrashNow();
    rep1 = co_await f.kv.RecoverAfterCrash();
    for (int round = 0; round < 60; ++round) {
      co_await f.kv.Put(rng.UniformU64(12), 16 * 1024);
    }
    co_await f.dev.CrashNow();
    rep2 = co_await f.kv.RecoverAfterCrash();
  };
  f.Sync(body);

  EXPECT_EQ(rep1.silent_corruptions, 0u);
  EXPECT_EQ(rep2.silent_corruptions, 0u);
  EXPECT_EQ(f.kv.stats().crash_recoveries, 2u);
}

TEST(KvStoreCrash, RecoveryIsDeterministic) {
  auto run = [](Report* rep, KvStats* st) {
    Fixture f;
    auto body = [&]() -> sim::Task<> {
      sim::Rng rng(33);
      for (int round = 0; round < 150; ++round) {
        co_await f.kv.Put(rng.UniformU64(20), 16 * 1024);
      }
      co_await f.dev.CrashNow();
      *rep = co_await f.kv.RecoverAfterCrash();
    };
    f.Sync(body);
    *st = f.kv.stats();
  };
  Report ra, rb;
  KvStats sa{}, sb{};
  run(&ra, &sa);
  run(&rb, &sb);
  EXPECT_EQ(ra.exact, rb.exact);
  EXPECT_EQ(ra.lost_unflushed, rb.lost_unflushed);
  EXPECT_EQ(ra.silent_corruptions, rb.silent_corruptions);
  EXPECT_EQ(sa.wal_replayed, sb.wal_replayed);
  EXPECT_EQ(sa.wal_lost, sb.wal_lost);
  EXPECT_EQ(sa.tables_dropped, sb.tables_dropped);
}

}  // namespace
}  // namespace zstor::zkv
