// End-to-end calibration against the paper's published measurements of
// the WD Ultrastar DC ZN540 (DESIGN.md §5 lists every target). These run
// the full stack — workload engine, host stack, device model, NAND — with
// realistic service noise, and assert the paper's numbers within
// tolerance. Observations #1–#10, #12, #13 are covered here; #11 (the
// conventional-SSD GC comparison) lives in tests/ftl.
#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "harness/gc_experiment.h"
#include "zns/profile.h"

namespace zstor::harness {
namespace {

using nvme::Opcode;
using zns::Zn540Profile;

// ---- Observations #1, #2, #4: QD1 latencies (Fig. 2) -----------------

TEST(Calibration, Obs2_SpdkWrite4kIs11_36us) {
  EXPECT_NEAR(Qd1LatencyUs(Zn540Profile(), StackKind::kSpdk,
                           Opcode::kWrite, 4096, 4096),
              11.36, 0.6);
}

TEST(Calibration, Obs2_KernelNoneWrite4kIs12_62us) {
  EXPECT_NEAR(Qd1LatencyUs(Zn540Profile(), StackKind::kKernelNone,
                           Opcode::kWrite, 4096, 4096),
              12.62, 0.7);
}

TEST(Calibration, Obs2_MqDeadlineWrite4kIs14_47us) {
  EXPECT_NEAR(Qd1LatencyUs(Zn540Profile(), StackKind::kKernelMq,
                           Opcode::kWrite, 4096, 4096),
              14.47, 0.8);
}

TEST(Calibration, Obs4_SpdkAppend8kIs14_02us) {
  EXPECT_NEAR(Qd1LatencyUs(Zn540Profile(), StackKind::kSpdk,
                           Opcode::kAppend, 8192, 4096),
              14.02, 1.4);  // paper 14.02; model ~15.2 (within 10%)
}

TEST(Calibration, Obs4_WriteBeatsAppendByUpTo23Percent) {
  double w = Qd1LatencyUs(Zn540Profile(), StackKind::kSpdk, Opcode::kWrite,
                          4096, 4096);
  double a = Qd1LatencyUs(Zn540Profile(), StackKind::kSpdk,
                          Opcode::kAppend, 8192, 4096);
  double gap = (a - w) / a;
  EXPECT_GT(gap, 0.15);
  EXPECT_LT(gap, 0.33);
}

TEST(Calibration, Obs1_512FormatUpToTwiceAsSlow) {
  double w4 = Qd1LatencyUs(Zn540Profile(), StackKind::kSpdk,
                           Opcode::kWrite, 4096, 4096);
  double w512 = Qd1LatencyUs(Zn540Profile(), StackKind::kSpdk,
                             Opcode::kWrite, 512, 512);
  EXPECT_GT(w512 / w4, 1.5);
  EXPECT_LT(w512 / w4, 2.2);
  double a4 = Qd1LatencyUs(Zn540Profile(), StackKind::kSpdk,
                           Opcode::kAppend, 4096, 4096);
  double a512 = Qd1LatencyUs(Zn540Profile(), StackKind::kSpdk,
                             Opcode::kAppend, 512, 512);
  EXPECT_GT(a512 / a4, 1.3);
}

// ---- Observation #3: QD1 IOPS vs request size (Fig. 3) ----------------

TEST(Calibration, Obs3_Write4kAnd8kPeakNear85Kiops) {
  EXPECT_NEAR(Qd1Kiops(Zn540Profile(), Opcode::kWrite, 4096), 85.0, 8.5);
  EXPECT_NEAR(Qd1Kiops(Zn540Profile(), Opcode::kWrite, 8192), 85.0, 9.0);
  // IOPS fall beyond 8 KiB.
  EXPECT_LT(Qd1Kiops(Zn540Profile(), Opcode::kWrite, 32768),
            Qd1Kiops(Zn540Profile(), Opcode::kWrite, 4096));
}

TEST(Calibration, Obs3_Append66To69KiopsWhenDoubling4kTo8k) {
  double a4 = Qd1Kiops(Zn540Profile(), Opcode::kAppend, 4096);
  double a8 = Qd1Kiops(Zn540Profile(), Opcode::kAppend, 8192);
  EXPECT_NEAR(a4, 66.0, 6.0);
  EXPECT_NEAR(a8, 69.0, 6.0);
  EXPECT_GT(a8, a4);  // the paper's slight improvement
}

TEST(Calibration, Obs3_BytesThroughputHighestForLargeRequests) {
  auto mibps = [](std::uint64_t req) {
    return Qd1Kiops(Zn540Profile(), Opcode::kWrite, req) * 1000.0 *
           static_cast<double>(req) / (1024 * 1024);
  };
  EXPECT_GT(mibps(32768), mibps(8192));
  EXPECT_GT(mibps(8192), mibps(4096));
}

// ---- Observations #5-#8: scalability (Fig. 4) -------------------------

TEST(Calibration, Obs7_IntraZoneAppendSaturatesNear132Kiops) {
  auto r = IntraZone(Zn540Profile(), Opcode::kAppend, 4096, 4);
  EXPECT_NEAR(r.Kiops(), 132.0, 13.0);
  // No further scaling at higher QD (Obs. 6).
  auto r8 = IntraZone(Zn540Profile(), Opcode::kAppend, 4096, 8);
  EXPECT_NEAR(r8.Kiops(), r.Kiops(), 13.0);
}

TEST(Calibration, Obs7_IntraZoneMergedWritesReach293Kiops) {
  double merged = 0;
  auto r = IntraZone(Zn540Profile(), Opcode::kWrite, 4096, 32, &merged);
  EXPECT_NEAR(r.Kiops(), 293.0, 30.0);
  EXPECT_GT(merged, 0.85);
}

TEST(Calibration, Obs7_MergeFractionAtQd16Near92Percent) {
  double merged = 0;
  (void)IntraZone(Zn540Profile(), Opcode::kWrite, 4096, 16, &merged);
  EXPECT_NEAR(merged, 0.9235, 0.06);
}

TEST(Calibration, Obs7_IntraZoneReadReaches424KiopsAtQd128) {
  auto r = IntraZone(Zn540Profile(), Opcode::kRead, 4096, 128);
  EXPECT_NEAR(r.Kiops(), 424.0, 42.0);
  // And scales: QD32 is below QD128.
  auto r32 = IntraZone(Zn540Profile(), Opcode::kRead, 4096, 32);
  EXPECT_LT(r32.Kiops(), 0.9 * r.Kiops());
}

TEST(Calibration, Obs7_InterZoneWriteSaturatesNear186Kiops) {
  auto r = InterZone(Zn540Profile(), Opcode::kWrite, 4096, 14);
  EXPECT_NEAR(r.Kiops(), 186.0, 19.0);
}

TEST(Calibration, Obs6_AppendThroughputAgnosticToScalingMode) {
  auto intra = IntraZone(Zn540Profile(), Opcode::kAppend, 4096, 4);
  auto inter = InterZone(Zn540Profile(), Opcode::kAppend, 4096, 4);
  EXPECT_NEAR(intra.Kiops(), inter.Kiops(), 0.15 * intra.Kiops());
}

TEST(Calibration, Obs5_IntraZoneBeatsInterZoneAtEqualConcurrency) {
  // Reads: QD 14 in one zone vs 14 zones at QD 1 — intra wins (and
  // inter-zone is capped at 14 zones by the open-zone limit anyway).
  auto intra = IntraZone(Zn540Profile(), Opcode::kRead, 4096, 14);
  auto inter = InterZone(Zn540Profile(), Opcode::kRead, 4096, 14);
  EXPECT_GE(intra.Kiops(), 0.95 * inter.Kiops());
  // Writes: merged intra-zone writes beat inter-zone writes.
  double merged = 0;
  auto wintra = IntraZone(Zn540Profile(), Opcode::kWrite, 4096, 32, &merged);
  auto winter = InterZone(Zn540Profile(), Opcode::kWrite, 4096, 14);
  EXPECT_GT(wintra.Kiops(), winter.Kiops());
}

TEST(Calibration, Obs8_4kWritesCapNear727MibsLargeReachDeviceLimit) {
  auto w4 = InterZone(Zn540Profile(), Opcode::kWrite, 4096, 14);
  EXPECT_NEAR(w4.MibPerSec(), 726.7, 75.0);
  auto w16 = InterZone(Zn540Profile(), Opcode::kWrite, 16384, 4);
  EXPECT_NEAR(w16.MibPerSec(), 1155.0, 120.0);
  auto w8 = InterZone(Zn540Profile(), Opcode::kWrite, 8192, 4);
  EXPECT_GT(w8.MibPerSec(), 1000.0);
}

TEST(Calibration, Obs8_LargeAppendsApproachDeviceLimitWithQd) {
  auto a16 = IntraZone(Zn540Profile(), Opcode::kAppend, 16384, 8);
  EXPECT_GT(a16.MibPerSec(), 1000.0);
  // 4 KiB appends cannot get there.
  auto a4 = IntraZone(Zn540Profile(), Opcode::kAppend, 4096, 8);
  EXPECT_LT(a4.MibPerSec(), 650.0);
}

// ---- Observation #9: open/close (measured end-to-end) ----------------

TEST(Calibration, Obs9_OpenCloseAndImplicitPenalties) {
  OpenCloseCosts c = MeasureOpenClose(Zn540Profile());
  EXPECT_NEAR(c.explicit_open_us, 9.56, 0.6);
  EXPECT_NEAR(c.close_us, 11.01, 0.7);
  EXPECT_NEAR(c.implicit_write_extra_us, 2.02, 0.5);
  EXPECT_NEAR(c.implicit_append_extra_us, 2.83, 0.6);
}

// ---- Observation #10: reset/finish vs occupancy (Fig. 5) --------------

TEST(Calibration, Obs10_ResetCurve) {
  EXPECT_NEAR(ResetLatencyMs(Zn540Profile(), 0.5, false), 11.60, 1.2);
  EXPECT_NEAR(ResetLatencyMs(Zn540Profile(), 1.0, false), 16.19, 1.6);
  EXPECT_NEAR(ResetLatencyMs(Zn540Profile(), 0.5, true) -
                  ResetLatencyMs(Zn540Profile(), 0.5, false),
              3.08, 1.0);
}

TEST(Calibration, Obs10_FinishCurve) {
  double f0 = FinishLatencyMs(Zn540Profile(), 0.0, 3);
  double f100 = FinishLatencyMs(Zn540Profile(), 1.0, 3);
  EXPECT_NEAR(f0, 907.51, 50.0);
  EXPECT_NEAR(f100, 3.07, 0.4);
  EXPECT_NEAR(f0 / f100, 295.0, 60.0);
}

// ---- §III-F: read-only p95 --------------------------------------------

TEST(Calibration, ReadOnlyP95Near81us) {
  auto r = IntraZone(Zn540Profile(), Opcode::kRead, 4096, 1);
  EXPECT_NEAR(r.latency.p95_ns() / 1000.0, 81.41, 8.0);
}

// ---- Observation #11: GC interference, conv vs ZNS (Fig. 6) -----------

TEST(Calibration, Obs11_ZnsThroughputStableConventionalFluctuates) {
  // Full-rate writes + concurrent reads, 8 s of virtual time.
  GcExperimentResult conv =
      RunConvGcExperiment(/*rate=*/0, sim::Seconds(8), /*skip_bins=*/3);
  GcExperimentResult zns =
      RunZnsGcExperiment(/*rate=*/0, sim::Seconds(8), /*skip_bins=*/3);
  // ZNS writes run at the device limit, stably.
  EXPECT_GT(zns.write_mibps_mean, 1000.0);
  EXPECT_LT(zns.write_cv, 0.10);
  // The conventional drive fluctuates and sustains far less on average.
  EXPECT_GT(conv.write_cv, 3.0 * zns.write_cv);
  EXPECT_LT(conv.write_mibps_mean, 0.6 * zns.write_mibps_mean);
  EXPECT_GT(conv.write_amplification, 1.5);
  // Reads: both devices suffer under write pressure, the conventional
  // drive far more (paper: p95 299.89 ms vs 98.04 ms).
  EXPECT_GT(conv.read_p95_us, 1.5 * zns.read_p95_us);
  EXPECT_GT(zns.read_p95_us, 1000.0);  // well above the 81 us idle p95
}

TEST(Calibration, Obs11_RateLimitedZnsStaysStableToo) {
  GcExperimentResult z250 =
      RunZnsGcExperiment(/*rate=*/250, sim::Seconds(6), /*skip_bins=*/2);
  EXPECT_NEAR(z250.write_mibps_mean, 250.0, 25.0);
  EXPECT_LT(z250.write_cv, 0.10);
}

// ---- Observations #12-#13: reset interference (Fig. 7) ----------------

TEST(Calibration, Obs13_ResetP95IsolatedNear17_94ms) {
  auto r = ResetInterference(Zn540Profile(), Opcode::kFlush);  // no I/O
  EXPECT_NEAR(r.reset_p95_ms, 17.94, 2.0);
}

TEST(Calibration, Obs13_ConcurrentIoInflatesResetP95) {
  double base =
      ResetInterference(Zn540Profile(), Opcode::kFlush).reset_p95_ms;
  double with_read =
      ResetInterference(Zn540Profile(), Opcode::kRead).reset_p95_ms;
  double with_write =
      ResetInterference(Zn540Profile(), Opcode::kWrite).reset_p95_ms;
  double with_append =
      ResetInterference(Zn540Profile(), Opcode::kAppend).reset_p95_ms;
  // Paper: +56% (read), +78% (write), +75.5% (append).
  EXPECT_GT(with_read / base, 1.30);
  EXPECT_LT(with_read / base, 1.90);
  EXPECT_GT(with_write / base, 1.50);
  EXPECT_LT(with_write / base, 2.30);
  EXPECT_GT(with_append / base, 1.50);
  EXPECT_LT(with_append / base, 2.40);
  // Reads interfere least (they occupy the FCP least).
  EXPECT_LT(with_read, with_write);
  EXPECT_LT(with_read, with_append);
}

TEST(Calibration, Obs12_ResetsDoNotDisturbIoLatency) {
  // I/O mean latency with concurrent resets vs the same workload alone.
  auto with_resets = ResetInterference(Zn540Profile(), Opcode::kWrite);
  double baseline_us = Qd1LatencyUs(Zn540Profile(), StackKind::kSpdk,
                                    Opcode::kWrite, 4096, 4096);
  EXPECT_NEAR(with_resets.io_mean_us, baseline_us, 0.10 * baseline_us);
}

}  // namespace
}  // namespace zstor::harness
