// ResilientStack tests: status classification, retry/backoff behavior in
// virtual time, per-attempt timeouts, and the resilience counters — all
// against a scriptable fake stack so every failure is deterministic.
#include "hostif/resilient_stack.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/time.h"

namespace zstor::hostif {
namespace {

using sim::Microseconds;
using sim::Time;

/// Inner stack that completes each Submit() after `service_time` with the
/// next scripted status (the last entry repeats once the script runs dry).
class ScriptedStack : public Stack {
 public:
  explicit ScriptedStack(sim::Simulator& s) : sim_(s) {
    info_.capacity_lbas = 1 << 20;
  }

  sim::Task<nvme::TimedCompletion> Submit(nvme::Command cmd) override {
    submits_++;
    nvme::TimedCompletion tc;
    tc.submitted = sim_.now();
    tc.trace_id = cmd.trace_id;
    co_await sim_.Delay(service_time);
    tc.completed = sim_.now();
    tc.completion.status = NextStatus();
    co_return tc;
  }

  const nvme::NamespaceInfo& info() const override { return info_; }

  std::vector<nvme::Status> script{nvme::Status::kSuccess};
  Time service_time = Microseconds(10);
  std::uint64_t submits() const { return submits_; }

 private:
  nvme::Status NextStatus() {
    if (next_ < script.size()) return script[next_++];
    return script.back();
  }

  sim::Simulator& sim_;
  nvme::NamespaceInfo info_;
  std::size_t next_ = 0;
  std::uint64_t submits_ = 0;
};

nvme::TimedCompletion RunOne(sim::Simulator& s, ResilientStack& stack) {
  nvme::TimedCompletion out;
  auto body = [&]() -> sim::Task<> {
    out = co_await stack.Submit({.opcode = nvme::Opcode::kRead});
  };
  auto t = body();
  s.Run();
  return out;
}

TEST(Classify, TriageMatchesThePolicyTable) {
  EXPECT_EQ(Classify(nvme::Status::kSuccess), ErrorClass::kSuccess);
  // Retryable: a re-issue may genuinely succeed.
  EXPECT_EQ(Classify(nvme::Status::kMediaReadError), ErrorClass::kRetryable);
  EXPECT_EQ(Classify(nvme::Status::kInternalError), ErrorClass::kRetryable);
  EXPECT_EQ(Classify(nvme::Status::kHostTimeout), ErrorClass::kRetryable);
  // A power-loss outage ends: the recovered device can take the command.
  EXPECT_EQ(Classify(nvme::Status::kDeviceReset), ErrorClass::kRetryable);
  // Terminal: validation/state rejections — re-issuing cannot help.
  EXPECT_EQ(Classify(nvme::Status::kInvalidOpcode), ErrorClass::kTerminal);
  EXPECT_EQ(Classify(nvme::Status::kLbaOutOfRange), ErrorClass::kTerminal);
  EXPECT_EQ(Classify(nvme::Status::kZoneIsReadOnly), ErrorClass::kTerminal);
  EXPECT_EQ(Classify(nvme::Status::kZoneIsOffline), ErrorClass::kTerminal);
  // kWriteFault is terminal by design: the buffered data is gone and the
  // zone is degraded — recovery is a rewrite elsewhere, a caller decision.
  EXPECT_EQ(Classify(nvme::Status::kWriteFault), ErrorClass::kTerminal);
}

TEST(ResilientStack, SuccessPassesThroughUntouched) {
  sim::Simulator s;
  ScriptedStack inner(s);
  ResilientStack stack(s, inner);
  nvme::TimedCompletion tc = RunOne(s, stack);
  EXPECT_TRUE(tc.completion.ok());
  EXPECT_EQ(inner.submits(), 1u);
  EXPECT_EQ(stack.stats().commands, 1u);
  EXPECT_EQ(stack.stats().attempts, 1u);
  EXPECT_EQ(stack.stats().retries, 0u);
  EXPECT_EQ(tc.latency(), inner.service_time);
}

TEST(ResilientStack, RetryableErrorIsRetriedUntilSuccess) {
  sim::Simulator s;
  ScriptedStack inner(s);
  inner.script = {nvme::Status::kMediaReadError,
                  nvme::Status::kMediaReadError, nvme::Status::kSuccess};
  ResilientStack stack(s, inner, {.max_attempts = 4});
  nvme::TimedCompletion tc = RunOne(s, stack);
  EXPECT_TRUE(tc.completion.ok());
  EXPECT_EQ(inner.submits(), 3u);
  EXPECT_EQ(stack.stats().retries, 2u);
  EXPECT_EQ(stack.stats().recovered, 1u);
  EXPECT_EQ(stack.stats().retries_exhausted, 0u);
}

TEST(ResilientStack, BackoffGrowsExponentiallyInVirtualTime) {
  sim::Simulator s;
  ScriptedStack inner(s);
  inner.service_time = Microseconds(10);
  inner.script = {nvme::Status::kMediaReadError,
                  nvme::Status::kMediaReadError, nvme::Status::kSuccess};
  ResilientStack stack(s, inner,
                       {.max_attempts = 4,
                        .backoff = Microseconds(100),
                        .backoff_multiplier = 2.0});
  nvme::TimedCompletion tc = RunOne(s, stack);
  // 3 attempts x 10us service + 100us + 200us backoff.
  EXPECT_EQ(tc.latency(), Microseconds(3 * 10 + 100 + 200));
}

TEST(ResilientStack, TerminalErrorIsNotRetried) {
  sim::Simulator s;
  ScriptedStack inner(s);
  inner.script = {nvme::Status::kZoneIsFull};
  ResilientStack stack(s, inner, {.max_attempts = 8});
  nvme::TimedCompletion tc = RunOne(s, stack);
  EXPECT_EQ(tc.completion.status, nvme::Status::kZoneIsFull);
  EXPECT_EQ(inner.submits(), 1u);
  EXPECT_EQ(stack.stats().terminal_errors, 1u);
  EXPECT_EQ(stack.stats().retries, 0u);
}

TEST(ResilientStack, ExhaustedBudgetSurfacesTheLastError) {
  sim::Simulator s;
  ScriptedStack inner(s);
  inner.script = {nvme::Status::kMediaReadError};
  ResilientStack stack(s, inner,
                       {.max_attempts = 3, .backoff = Microseconds(1)});
  nvme::TimedCompletion tc = RunOne(s, stack);
  EXPECT_EQ(tc.completion.status, nvme::Status::kMediaReadError);
  EXPECT_EQ(inner.submits(), 3u);
  EXPECT_EQ(stack.stats().retries, 2u);
  EXPECT_EQ(stack.stats().retries_exhausted, 1u);
  EXPECT_EQ(stack.stats().recovered, 0u);
}

TEST(ResilientStack, SingleAttemptPolicyObservesRawErrors) {
  sim::Simulator s;
  ScriptedStack inner(s);
  inner.script = {nvme::Status::kMediaReadError};
  ResilientStack stack(s, inner, {.max_attempts = 1});
  nvme::TimedCompletion tc = RunOne(s, stack);
  EXPECT_EQ(tc.completion.status, nvme::Status::kMediaReadError);
  EXPECT_EQ(inner.submits(), 1u);
  EXPECT_EQ(stack.stats().retries, 0u);
  EXPECT_EQ(stack.stats().retries_exhausted, 1u);
}

TEST(ResilientStack, SlowAttemptsTimeOutAndExhaustTheBudget) {
  sim::Simulator s;
  ScriptedStack inner(s);
  // Every attempt takes 1ms against a 100us per-attempt timeout.
  inner.service_time = sim::Milliseconds(1);
  inner.script = {nvme::Status::kSuccess};
  ResilientStack stack(s, inner,
                       {.max_attempts = 2,
                        .backoff = Microseconds(10),
                        .timeout = Microseconds(100)});
  nvme::TimedCompletion tc = RunOne(s, stack);
  // Both attempts outlive the timeout: the caller sees kHostTimeout.
  EXPECT_EQ(tc.completion.status, nvme::Status::kHostTimeout);
  EXPECT_EQ(stack.stats().timeouts, 2u);
  EXPECT_EQ(stack.stats().retries, 1u);
  EXPECT_EQ(stack.stats().retries_exhausted, 1u);
  // The timed-out attempts were NOT cancelled: the device still saw both.
  EXPECT_EQ(inner.submits(), 2u);
  // Caller-observed latency = 2 timeouts + 1 backoff, NOT device time.
  EXPECT_EQ(tc.latency(), Microseconds(100 + 10 + 100));
}

TEST(ResilientStack, FastAttemptBeatsTheTimeout) {
  sim::Simulator s;
  ScriptedStack inner(s);
  inner.service_time = Microseconds(10);
  ResilientStack stack(s, inner,
                       {.max_attempts = 4, .timeout = Microseconds(100)});
  nvme::TimedCompletion tc = RunOne(s, stack);
  EXPECT_TRUE(tc.completion.ok());
  EXPECT_EQ(stack.stats().timeouts, 0u);
  EXPECT_EQ(tc.latency(), Microseconds(10));
}

TEST(ResilientStack, DeviceResetIsAbsorbedByRetry) {
  sim::Simulator s;
  ScriptedStack inner(s);
  inner.script = {nvme::Status::kDeviceReset, nvme::Status::kDeviceReset,
                  nvme::Status::kSuccess};
  ResilientStack stack(s, inner,
                       {.max_attempts = 4, .backoff = Microseconds(50)});
  nvme::TimedCompletion tc = RunOne(s, stack);
  EXPECT_TRUE(tc.completion.ok());
  EXPECT_EQ(stack.stats().device_resets_seen, 2u);
  EXPECT_EQ(stack.stats().recovered, 1u);
  // A read carries no dedupe hazard: no replay settles, plain re-drives.
  EXPECT_EQ(stack.stats().replayed_dupes, 0u);
}

/// Zoned fake for the append-replay path: appends follow the script (a
/// successful append lands at the tracked wp), and ZoneMgmtRecv reports
/// `recovered_wp` — the write pointer the device rediscovered after the
/// power loss.
class ZonedScriptedStack : public Stack {
 public:
  explicit ZonedScriptedStack(sim::Simulator& s) : sim_(s) {
    info_.capacity_lbas = 1 << 20;
    info_.zoned = true;
    info_.zone_size_lbas = 1024;
    info_.zone_cap_lbas = 1024;
    info_.num_zones = 1024;
  }

  sim::Task<nvme::TimedCompletion> Submit(nvme::Command cmd) override {
    nvme::TimedCompletion tc;
    tc.submitted = sim_.now();
    tc.trace_id = cmd.trace_id;
    co_await sim_.Delay(Microseconds(10));
    tc.completed = sim_.now();
    if (cmd.opcode == nvme::Opcode::kZoneMgmtRecv) {
      reports_++;
      tc.completion.status = nvme::Status::kSuccess;
      tc.completion.report.push_back(
          {.zslba = cmd.slba, .write_pointer = recovered_wp});
      co_return tc;
    }
    if (cmd.opcode == nvme::Opcode::kZoneMgmtSend) {
      tc.completion.status = nvme::Status::kSuccess;
      co_return tc;
    }
    appends_++;
    tc.completion.status = NextStatus();
    if (tc.completion.ok()) {
      tc.completion.result_lba = wp;
      wp += cmd.nlb;
    }
    co_return tc;
  }

  const nvme::NamespaceInfo& info() const override { return info_; }

  /// Per-append statuses. The cursor survives reassignment, so a script
  /// set mid-test lists the FULL append history from the start.
  std::vector<nvme::Status> script{nvme::Status::kSuccess};
  nvme::Lba wp = 0;            // where the next successful append lands
  nvme::Lba recovered_wp = 0;  // what a zone report claims after recovery
  std::uint64_t appends() const { return appends_; }
  std::uint64_t reports() const { return reports_; }

 private:
  nvme::Status NextStatus() {
    if (next_ < script.size()) return script[next_++];
    return script.back();
  }

  sim::Simulator& sim_;
  nvme::NamespaceInfo info_;
  std::size_t next_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t reports_ = 0;
};

nvme::TimedCompletion RunAppend(sim::Simulator& s, ResilientStack& stack,
                                std::uint32_t nlb = 4) {
  nvme::TimedCompletion out;
  auto body = [&]() -> sim::Task<> {
    out = co_await stack.Submit(
        {.opcode = nvme::Opcode::kAppend, .slba = 0, .nlb = nlb});
  };
  auto t = body();
  s.Run();
  return out;
}

TEST(ResilientStack, DurableAppendLostToACrashIsSettledNotReDriven) {
  sim::Simulator s;
  ZonedScriptedStack inner(s);
  ResilientStack stack(s, inner, {.max_attempts = 4});

  // Append 1 succeeds: the stack learns the zone's expected wp (4).
  ASSERT_TRUE(RunAppend(s, stack).completion.ok());
  // Append 2's completion is swallowed by a power loss — but the data
  // landed before the cut: the recovered wp already covers it.
  inner.script = {nvme::Status::kSuccess, nvme::Status::kDeviceReset};
  inner.wp = 8;  // the device durably holds both appends
  inner.recovered_wp = 8;
  nvme::TimedCompletion tc = RunAppend(s, stack);

  EXPECT_TRUE(tc.completion.ok());
  EXPECT_EQ(tc.completion.result_lba, 4u);  // settled at the expected LBA
  EXPECT_EQ(stack.stats().replayed_dupes, 1u);
  EXPECT_EQ(stack.stats().recovered, 1u);
  EXPECT_EQ(inner.appends(), 2u);  // never re-driven: no duplicate
  EXPECT_EQ(inner.reports(), 1u);  // one wp re-validation query
}

TEST(ResilientStack, VolatileAppendLostToACrashIsReDriven) {
  sim::Simulator s;
  ZonedScriptedStack inner(s);
  ResilientStack stack(s, inner,
                       {.max_attempts = 4, .backoff = Microseconds(10)});

  ASSERT_TRUE(RunAppend(s, stack).completion.ok());  // expected wp: 4
  // Append 2 dies in the outage AND its buffered data was rolled back:
  // the recovered wp is still 4, so the retry must re-drive it.
  inner.script = {nvme::Status::kSuccess, nvme::Status::kDeviceReset,
                  nvme::Status::kSuccess};
  inner.wp = 4;
  inner.recovered_wp = 4;
  nvme::TimedCompletion tc = RunAppend(s, stack);

  EXPECT_TRUE(tc.completion.ok());
  EXPECT_EQ(tc.completion.result_lba, 4u);  // the re-drive landed there
  EXPECT_EQ(stack.stats().replayed_dupes, 0u);
  EXPECT_EQ(stack.stats().retries, 1u);
  EXPECT_EQ(inner.appends(), 3u);  // initial + failed + re-drive
  EXPECT_EQ(inner.reports(), 1u);
}

TEST(ResilientStack, AppendReplayWithoutACachedWpFallsBackToRetry) {
  sim::Simulator s;
  ZonedScriptedStack inner(s);
  ResilientStack stack(s, inner,
                       {.max_attempts = 4, .backoff = Microseconds(10)});
  // No prior successful append: the wp cache is cold, so the stack
  // cannot prove durability and must re-drive.
  inner.script = {nvme::Status::kDeviceReset, nvme::Status::kSuccess};
  nvme::TimedCompletion tc = RunAppend(s, stack);

  EXPECT_TRUE(tc.completion.ok());
  EXPECT_EQ(stack.stats().replayed_dupes, 0u);
  EXPECT_EQ(inner.reports(), 0u);  // nothing to validate against
  EXPECT_EQ(inner.appends(), 2u);
}

TEST(ResilientStack, ZoneResetReseedsTheWpCache) {
  sim::Simulator s;
  ZonedScriptedStack inner(s);
  ResilientStack stack(s, inner, {.max_attempts = 4});
  ASSERT_TRUE(RunAppend(s, stack).completion.ok());  // expected wp: 4

  // A zone reset moves the expectation back to the zone start.
  auto body = [&]() -> sim::Task<> {
    co_await stack.Submit({.opcode = nvme::Opcode::kZoneMgmtSend,
                           .slba = 0,
                           .zone_action = nvme::ZoneAction::kReset});
  };
  auto t = body();
  s.Run();

  // Post-reset append dies in a crash; the device holds it (wp 0 -> 4).
  inner.script = {nvme::Status::kDeviceReset};
  inner.wp = 4;
  inner.recovered_wp = 4;
  nvme::TimedCompletion tc = RunAppend(s, stack);
  EXPECT_TRUE(tc.completion.ok());
  EXPECT_EQ(tc.completion.result_lba, 0u);  // settled at the reseeded wp
  EXPECT_EQ(stack.stats().replayed_dupes, 1u);
}

TEST(ResilientStack, CountsAccumulateAcrossCommands) {
  sim::Simulator s;
  ScriptedStack inner(s);
  inner.script = {nvme::Status::kMediaReadError, nvme::Status::kSuccess,
                  nvme::Status::kSuccess};
  ResilientStack stack(s, inner,
                       {.max_attempts = 2, .backoff = Microseconds(1)});
  (void)RunOne(s, stack);  // fail then recover: 2 attempts
  (void)RunOne(s, stack);  // clean: 1 attempt
  EXPECT_EQ(stack.stats().commands, 2u);
  EXPECT_EQ(stack.stats().attempts, 3u);
  EXPECT_EQ(stack.stats().recovered, 1u);
}

}  // namespace
}  // namespace zstor::hostif
