#include "hostif/lane_stacks.h"

#include <gtest/gtest.h>

#include <vector>

#include "nvme/types.h"
#include "sim/parallel_sim.h"
#include "sim/task.h"
#include "sim/time.h"

namespace zstor::hostif {
namespace {

// A device-lane stack that charges a fixed service time and records
// every slba it saw. Appends return the received slba as result_lba so
// translation round-trips are observable.
class FakeDeviceStack : public Stack {
 public:
  FakeDeviceStack(sim::Simulator& s, sim::Time service) : sim_(s) {
    service_ = service;
    info_.zoned = true;
    info_.format.lba_bytes = 4096;
    info_.zone_size_lbas = 100;
    info_.zone_cap_lbas = 100;
    info_.num_zones = 8;
    info_.capacity_lbas = 800;
    info_.max_open_zones = 8;
    info_.max_active_zones = 8;
  }

  sim::Task<nvme::TimedCompletion> Submit(nvme::Command cmd) override {
    seen_slbas.push_back(cmd.slba);
    const sim::Time start = sim_.now();
    co_await sim_.Delay(service_);
    nvme::TimedCompletion tc;
    tc.trace_id = cmd.trace_id;
    tc.submitted = start;
    tc.completed = sim_.now();
    if (cmd.opcode == nvme::Opcode::kAppend) {
      tc.completion.result_lba = cmd.slba;
    }
    co_return tc;
  }

  const nvme::NamespaceInfo& info() const override { return info_; }

  std::vector<nvme::Lba> seen_slbas;

 private:
  sim::Simulator& sim_;
  sim::Time service_;
  nvme::NamespaceInfo info_;
};

sim::Task<> DriveSubmit(Stack* s, nvme::Command cmd,
                        nvme::TimedCompletion* out, bool* done) {
  *out = co_await s->Submit(cmd);
  *done = true;
}

TEST(MailboxStack, RoundTripChargesTwoHopsPlusService) {
  for (unsigned threads : {1u, 2u}) {
    sim::ParallelSimulator ps(2, 250);
    FakeDeviceStack dev(ps.lane(1), 500);
    MailboxStack proxy(ps, 0, 1, dev);
    EXPECT_TRUE(proxy.info().zoned);
    EXPECT_EQ(proxy.info().num_zones, 8u);

    nvme::Command cmd;
    cmd.opcode = nvme::Opcode::kWrite;
    cmd.slba = 42;
    cmd.nlb = 1;
    nvme::TimedCompletion tc;
    bool done = false;
    sim::Spawn(DriveSubmit(&proxy, cmd, &tc, &done));
    ps.Run(threads);
    ASSERT_TRUE(done) << "threads=" << threads;
    EXPECT_TRUE(tc.completion.ok());
    EXPECT_EQ(tc.submitted, 0u);
    // hop (250) + service (500) + hop (250).
    EXPECT_EQ(tc.completed, 1000u) << "threads=" << threads;
    ASSERT_EQ(dev.seen_slbas.size(), 1u);
    EXPECT_EQ(dev.seen_slbas[0], 42u);
  }
}

TEST(StripeLaneView, TranslatesLogicalToDeviceAndBack) {
  sim::ParallelSimulator ps(2, 250);
  FakeDeviceStack dev(ps.lane(1), 100);
  StripeMap map{100, 2};  // zone_size_lbas=100, two devices
  nvme::NamespaceInfo logical = dev.info();
  logical.num_zones = 16;
  logical.capacity_lbas = 1600;
  StripeLaneView view(ps.lane(1), dev, map, 1, logical);
  EXPECT_EQ(view.info().num_zones, 16u);

  // Logical zone 3 lives on device 1 (3 % 2), device zone 1 (3 / 2).
  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kAppend;
  cmd.slba = 3 * 100;
  cmd.nlb = 4;
  nvme::TimedCompletion tc;
  bool done = false;
  sim::Spawn(DriveSubmit(&view, cmd, &tc, &done));
  ps.Run(1);
  ASSERT_TRUE(done);
  ASSERT_EQ(dev.seen_slbas.size(), 1u);
  EXPECT_EQ(dev.seen_slbas[0], 100u);  // device zone 1
  // The append result comes back in logical coordinates.
  EXPECT_EQ(tc.completion.result_lba, 300u);
  EXPECT_EQ(view.stats().issued, 1u);
  EXPECT_EQ(view.stats().completed, 1u);
}

TEST(StripeLaneView, RejectsZoneBoundaryCrossings) {
  sim::ParallelSimulator ps(2, 250);
  FakeDeviceStack dev(ps.lane(1), 100);
  StripeMap map{100, 2};
  StripeLaneView view(ps.lane(1), dev, map, 1, dev.info());

  nvme::Command cmd;
  cmd.opcode = nvme::Opcode::kWrite;
  cmd.slba = 100 + 98;  // logical zone 1 (device 1), 2 LBAs before the end
  cmd.nlb = 4;          // ...crossing into logical zone 2
  nvme::TimedCompletion tc;
  bool done = false;
  sim::Spawn(DriveSubmit(&view, cmd, &tc, &done));
  ps.Run(1);
  ASSERT_TRUE(done);
  EXPECT_EQ(tc.completion.status, nvme::Status::kZoneBoundaryError);
  EXPECT_EQ(view.boundary_rejects(), 1u);
  EXPECT_TRUE(dev.seen_slbas.empty());  // never reached the device
}

}  // namespace
}  // namespace zstor::hostif
