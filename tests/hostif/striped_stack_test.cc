// StripedStack tests: the zone round-robin address map (exhaustively, as
// a bijection), single-lane routing with append LBA translation, the
// host-side zone-boundary reject, broadcast and gather semantics, and
// per-lane accounting against the backing devices' own counters.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "hostif/stack_factory.h"
#include "hostif/striped_stack.h"
#include "sim/task.h"
#include "zns/zns_device.h"

namespace zstor::hostif {
namespace {

using sim::Time;

zns::ZnsProfile Quiet() {
  zns::ZnsProfile p = zns::TinyProfile();
  p.io_sigma = 0;
  p.reset.sigma = 0;
  p.finish.sigma = 0;
  return p;
}

/// N quiet Tiny devices, each behind its own SPDK lane, striped.
struct Rig {
  explicit Rig(std::size_t n, StackOptions opts = {}) {
    std::vector<std::unique_ptr<Stack>> lanes;
    for (std::size_t d = 0; d < n; ++d) {
      devs.push_back(std::make_unique<zns::ZnsDevice>(sim, Quiet()));
      lanes.push_back(
          MakeStack(StackChoice::kSpdk, sim, *devs.back(), opts).stack);
    }
    stack = std::make_unique<StripedStack>(sim, std::move(lanes));
  }

  nvme::TimedCompletion Run(nvme::Command cmd) {
    nvme::TimedCompletion out;
    auto body = [&]() -> sim::Task<> { out = co_await stack->Submit(cmd); };
    auto t = body();
    sim.Run();
    return out;
  }

  nvme::Lba ZoneStart(std::uint32_t lz) const {
    return nvme::Lba{lz} * stack->info().zone_size_lbas;
  }

  sim::Simulator sim;
  std::vector<std::unique_ptr<zns::ZnsDevice>> devs;
  std::unique_ptr<StripedStack> stack;
};

TEST(StripedStack, MergedInfoSumsGeometryAcrossLanes) {
  Rig r(4);
  const nvme::NamespaceInfo& one = r.devs[0]->info();
  const nvme::NamespaceInfo& all = r.stack->info();
  EXPECT_TRUE(all.zoned);
  EXPECT_EQ(all.zone_size_lbas, one.zone_size_lbas);
  EXPECT_EQ(all.zone_cap_lbas, one.zone_cap_lbas);
  EXPECT_EQ(all.num_zones, 4 * one.num_zones);
  EXPECT_EQ(all.capacity_lbas, 4 * one.capacity_lbas);
  EXPECT_EQ(all.max_open_zones, 4 * one.max_open_zones);
  EXPECT_EQ(all.max_active_zones, 4 * one.max_active_zones);
}

TEST(StripedStack, AddressMapIsAnExhaustiveBijection) {
  for (std::size_t n : {1u, 2u, 3u, 4u}) {
    Rig r(n);
    const std::uint64_t zsz = r.stack->info().zone_size_lbas;
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    for (std::uint32_t lz = 0; lz < r.stack->info().num_zones; ++lz) {
      const std::uint32_t d = r.stack->DeviceOf(lz);
      const std::uint32_t dz = r.stack->DeviceZoneOf(lz);
      ASSERT_LT(d, n);
      ASSERT_LT(dz, r.devs[d]->info().num_zones);
      EXPECT_TRUE(seen.insert({d, dz}).second)
          << "n=" << n << " lz=" << lz << " double-maps device slot";
      // Forward and inverse translation round-trip at the zone start,
      // mid-zone, and the last LBA of the zone.
      for (std::uint64_t off : {std::uint64_t{0}, zsz / 2, zsz - 1}) {
        const nvme::Lba logical = nvme::Lba{lz} * zsz + off;
        const nvme::Lba device_lba = r.stack->ToDeviceLba(logical);
        EXPECT_EQ(device_lba, nvme::Lba{dz} * zsz + off);
        EXPECT_EQ(r.stack->ToLogicalLba(d, device_lba), logical);
        EXPECT_EQ(r.stack->LogicalZoneOf(logical), lz);
      }
    }
    // Every (device, device-zone) slot is hit exactly once.
    EXPECT_EQ(seen.size(), r.stack->info().num_zones);
  }
}

TEST(StripedStack, RoutesEachZoneToItsMappedDevice) {
  Rig r(4);
  // One write into each of logical zones 0..7: zone z must land on
  // device z % 4, in device zone z / 4.
  for (std::uint32_t lz = 0; lz < 8; ++lz) {
    auto tc = r.Run({.opcode = nvme::Opcode::kWrite,
                     .slba = r.ZoneStart(lz),
                     .nlb = 1});
    ASSERT_TRUE(tc.completion.ok()) << "lz=" << lz;
  }
  for (std::uint32_t d = 0; d < 4; ++d) {
    EXPECT_EQ(r.devs[d]->counters().writes, 2u) << "d=" << d;
    EXPECT_EQ(r.devs[d]->ZoneWrittenBytes(0), 4096u);
    EXPECT_EQ(r.devs[d]->ZoneWrittenBytes(1), 4096u);
    EXPECT_EQ(r.stack->stats().lanes[d].issued, 2u);
    EXPECT_EQ(r.stack->stats().lanes[d].completed, 2u);
    EXPECT_EQ(r.stack->stats().lanes[d].in_flight, 0u);
  }
}

TEST(StripedStack, RejectsBoundaryCrossingIoHostSide) {
  Rig r(2);
  const std::uint64_t zsz = r.stack->info().zone_size_lbas;
  auto tc = r.Run({.opcode = nvme::Opcode::kWrite,
                   .slba = nvme::Lba{zsz} - 1,
                   .nlb = 2});  // tail would land on the other device
  EXPECT_EQ(tc.completion.status, nvme::Status::kZoneBoundaryError);
  EXPECT_EQ(r.stack->stats().boundary_rejects, 1u);
  // No lane ever saw the command.
  for (std::uint32_t d = 0; d < 2; ++d) {
    EXPECT_EQ(r.devs[d]->counters().writes, 0u);
    EXPECT_EQ(r.stack->stats().lanes[d].issued, 0u);
  }
}

TEST(StripedStack, AppendResultLbaIsTranslatedToLogicalSpace) {
  Rig r(4);
  // Logical zone 5 -> device 1, device zone 1. The device reports its
  // local append LBA; the stripe must hand back the logical one.
  const std::uint32_t lz = 5;
  auto a1 = r.Run({.opcode = nvme::Opcode::kAppend,
                   .slba = r.ZoneStart(lz),
                   .nlb = 2});
  ASSERT_TRUE(a1.completion.ok());
  EXPECT_EQ(a1.completion.result_lba, r.ZoneStart(lz));
  auto a2 = r.Run({.opcode = nvme::Opcode::kAppend,
                   .slba = r.ZoneStart(lz),
                   .nlb = 1});
  ASSERT_TRUE(a2.completion.ok());
  EXPECT_EQ(a2.completion.result_lba, r.ZoneStart(lz) + 2);
  EXPECT_EQ(r.devs[1]->counters().appends, 2u);
  EXPECT_EQ(r.devs[0]->counters().appends, 0u);
}

TEST(StripedStack, QueuePairBoundsArePerDevice) {
  // With qp_depth = 1 per lane, two concurrent reads serialize when they
  // map to the same device and overlap when they map to different ones.
  StackOptions opts;
  opts.qp_depth = 1;
  auto makespan = [&](std::uint32_t lz_a, std::uint32_t lz_b) {
    Rig r(2, opts);
    for (auto& dev : r.devs) {
      dev->DebugFillZone(0, dev->profile().zone_cap_bytes);
      dev->DebugFillZone(1, dev->profile().zone_cap_bytes);
    }
    auto read = [&](std::uint32_t lz) -> sim::Task<> {
      auto tc = co_await r.stack->Submit(
          {.opcode = nvme::Opcode::kRead, .slba = r.ZoneStart(lz), .nlb = 1});
      ZSTOR_CHECK(tc.completion.ok());
    };
    sim::Spawn(read(lz_a));
    sim::Spawn(read(lz_b));
    r.sim.Run();
    return r.sim.now();
  };
  const Time same_device = makespan(0, 2);   // both on device 0
  const Time two_devices = makespan(0, 1);   // one per device
  EXPECT_GT(same_device, two_devices + two_devices / 2);
}

TEST(StripedStack, FlushBroadcastsToEveryLane) {
  Rig r(3);
  auto tc = r.Run({.opcode = nvme::Opcode::kFlush});
  EXPECT_TRUE(tc.completion.ok());
  for (std::uint32_t d = 0; d < 3; ++d) {
    EXPECT_EQ(r.devs[d]->counters().flushes, 1u);
    EXPECT_EQ(r.stack->stats().lanes[d].issued, 1u);
    EXPECT_EQ(r.stack->stats().lanes[d].completed, 1u);
    EXPECT_EQ(r.stack->stats().lanes[d].in_flight, 0u);
  }
}

TEST(StripedStack, SelectAllZoneMgmtBroadcasts) {
  Rig r(2);
  // Dirty one zone per device, then reset-all: both devices must act.
  for (std::uint32_t lz = 0; lz < 2; ++lz) {
    ASSERT_TRUE(r.Run({.opcode = nvme::Opcode::kWrite,
                       .slba = r.ZoneStart(lz),
                       .nlb = 1})
                    .completion.ok());
  }
  auto tc = r.Run({.opcode = nvme::Opcode::kZoneMgmtSend,
                   .zone_action = nvme::ZoneAction::kReset,
                   .select_all = true});
  EXPECT_TRUE(tc.completion.ok());
  for (std::uint32_t d = 0; d < 2; ++d) {
    EXPECT_GE(r.devs[d]->counters().resets, 1u);
    EXPECT_EQ(r.devs[d]->ZoneWrittenBytes(0), 0u);
  }
}

TEST(StripedStack, GatherReportInterleavesAndTranslates) {
  Rig r(2);
  const std::uint64_t zsz = r.stack->info().zone_size_lbas;
  const std::uint64_t cap_bytes = r.devs[0]->profile().zone_cap_bytes;
  // Logical zone 0 (device 0, zone 0) full; logical zone 1 (device 1,
  // zone 0) half full; everything else empty.
  r.devs[0]->DebugFillZone(0, cap_bytes);
  r.devs[1]->DebugFillZone(0, cap_bytes / 2);

  auto tc = r.Run({.opcode = nvme::Opcode::kZoneMgmtRecv});
  ASSERT_TRUE(tc.completion.ok());
  const auto& report = tc.completion.report;
  ASSERT_EQ(report.size(), r.stack->info().num_zones);
  for (std::uint32_t lz = 0; lz < report.size(); ++lz) {
    EXPECT_EQ(report[lz].zslba, nvme::Lba{lz} * zsz) << "lz=" << lz;
  }
  // Write pointers come back in logical coordinates.
  EXPECT_EQ(report[0].write_pointer, report[0].zslba + cap_bytes / 4096);
  EXPECT_EQ(report[1].write_pointer, report[1].zslba + cap_bytes / 4096 / 2);
  EXPECT_EQ(report[2].write_pointer, report[2].zslba);

  // Start zone and report_max apply to the logical view.
  auto tail = r.Run({.opcode = nvme::Opcode::kZoneMgmtRecv,
                     .slba = nvme::Lba{3} * zsz,
                     .report_max = 5});
  ASSERT_TRUE(tail.completion.ok());
  ASSERT_EQ(tail.completion.report.size(), 5u);
  EXPECT_EQ(tail.completion.report.front().zslba, nvme::Lba{3} * zsz);
}

TEST(StripedStack, LaneAccountingMatchesDeviceCounters) {
  Rig r(2);
  // A lopsided append mix: 6 to logical zone 0 (device 0), 3 to logical
  // zone 1 (device 1), issued concurrently.
  auto append = [&](std::uint32_t lz) -> sim::Task<> {
    auto tc = co_await r.stack->Submit(
        {.opcode = nvme::Opcode::kAppend, .slba = r.ZoneStart(lz), .nlb = 1});
    ZSTOR_CHECK(tc.completion.ok());
  };
  for (int i = 0; i < 6; ++i) sim::Spawn(append(0));
  for (int i = 0; i < 3; ++i) sim::Spawn(append(1));
  r.sim.Run();
  const StripeStats& st = r.stack->stats();
  EXPECT_EQ(st.lanes[0].issued, 6u);
  EXPECT_EQ(st.lanes[1].issued, 3u);
  for (std::uint32_t d = 0; d < 2; ++d) {
    EXPECT_EQ(st.lanes[d].issued, st.lanes[d].completed);
    EXPECT_EQ(st.lanes[d].issued, r.devs[d]->counters().appends);
    EXPECT_EQ(st.lanes[d].errors, 0u);
    EXPECT_EQ(st.lanes[d].in_flight, 0u);
    EXPECT_GE(st.lanes[d].max_in_flight, 1u);
  }
  EXPECT_GE(st.lanes[0].max_in_flight, st.lanes[1].max_in_flight);
}

}  // namespace
}  // namespace zstor::hostif
