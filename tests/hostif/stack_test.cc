// Host stack tests: overhead calibration (Obs. 2) and mq-deadline zoned
// write staging/merging (the mechanism behind Obs. 7).
#include <gtest/gtest.h>

#include <vector>

#include "hostif/kernel_stack.h"
#include "hostif/spdk_stack.h"
#include "sim/task.h"
#include "zns/zns_device.h"

namespace zstor::hostif {
namespace {

using sim::Time;
using sim::ToMicroseconds;
using zns::ZnsProfile;

ZnsProfile Quiet() {
  ZnsProfile p = zns::TinyProfile();
  p.io_sigma = 0;
  p.reset.sigma = 0;
  p.finish.sigma = 0;
  return p;
}

ZnsProfile QuietZn540() {
  ZnsProfile p = zns::Zn540Profile();
  p.io_sigma = 0;
  p.reset.sigma = 0;
  p.finish.sigma = 0;
  p.nand_timing.read_sigma = 0;
  p.nand_timing.program_sigma = 0;
  return p;
}

template <typename StackT>
Time MeasureSecondWrite(sim::Simulator& s, StackT& stack) {
  Time lat = 0;
  auto body = [&]() -> sim::Task<> {
    (void)co_await stack.Submit(
        {.opcode = nvme::Opcode::kWrite, .slba = 0, .nlb = 1});
    auto tc = co_await stack.Submit(
        {.opcode = nvme::Opcode::kWrite, .slba = 1, .nlb = 1});
    lat = tc.latency();
  };
  auto t = body();
  s.Run();
  return lat;
}

TEST(SpdkStack, Write4kLatencyMatchesPaper) {
  sim::Simulator s;
  zns::ZnsDevice dev(s, QuietZn540());
  SpdkStack stack(s, dev);
  Time lat = MeasureSecondWrite(s, stack);
  // Obs. 2/4: SPDK 4 KiB write = 11.36 us.
  EXPECT_NEAR(ToMicroseconds(lat), 11.36, 0.15);
}

TEST(KernelStack, NoSchedulerWrite4kLatencyMatchesPaper) {
  sim::Simulator s;
  zns::ZnsDevice dev(s, QuietZn540());
  KernelStack stack(s, dev, Scheduler::kNone);
  Time lat = MeasureSecondWrite(s, stack);
  // Obs. 2: kernel without a scheduler = 12.62 us.
  EXPECT_NEAR(ToMicroseconds(lat), 12.62, 0.15);
}

TEST(KernelStack, MqDeadlineAddsSchedulerOverhead) {
  sim::Simulator s;
  zns::ZnsDevice dev(s, QuietZn540());
  KernelStack stack(s, dev, Scheduler::kMqDeadline);
  Time lat = MeasureSecondWrite(s, stack);
  // Obs. 2: mq-deadline = 14.47 us (+1.85 us over no scheduler).
  EXPECT_NEAR(ToMicroseconds(lat), 14.47, 0.15);
}

TEST(KernelStack, SpdkIsTheFastestStack) {
  // The Obs.-2 ordering: SPDK < kernel-none < kernel-mq-deadline.
  auto measure = [](auto make_stack) {
    sim::Simulator s;
    zns::ZnsDevice dev(s, QuietZn540());
    auto stack = make_stack(s, dev);
    return MeasureSecondWrite(s, *stack);
  };
  Time spdk = measure([](auto& s, auto& d) {
    return std::make_unique<SpdkStack>(s, d);
  });
  Time knone = measure([](auto& s, auto& d) {
    return std::make_unique<KernelStack>(s, d, Scheduler::kNone);
  });
  Time kmq = measure([](auto& s, auto& d) {
    return std::make_unique<KernelStack>(s, d, Scheduler::kMqDeadline);
  });
  EXPECT_LT(spdk, knone);
  EXPECT_LT(knone, kmq);
}

TEST(KernelStack, MqDeadlineMergesContiguousZoneWrites) {
  sim::Simulator s;
  zns::ZnsDevice dev(s, Quiet());
  KernelStack stack(s, dev, Scheduler::kMqDeadline);
  // 16 concurrent sequential 4 KiB writes to one zone.
  auto w = [&](nvme::Lba slba) -> sim::Task<> {
    auto tc = co_await stack.Submit(
        {.opcode = nvme::Opcode::kWrite, .slba = slba, .nlb = 1});
    ZSTOR_CHECK(tc.completion.ok());
  };
  for (nvme::Lba i = 0; i < 16; ++i) sim::Spawn(w(i));
  s.Run();
  const SchedulerStats& st = stack.scheduler_stats();
  EXPECT_EQ(st.staged_writes, 16u);
  // First write dispatches alone; the rest coalesce into few requests.
  EXPECT_LT(st.dispatched_writes, 6u);
  EXPECT_GT(st.MergedFraction(), 0.6);
  // The device saw merged writes, not 16 commands.
  EXPECT_EQ(dev.counters().writes, st.dispatched_writes);
  EXPECT_EQ(dev.ZoneWrittenBytes(0), 16u * 4096);
}

TEST(KernelStack, MergeRespectsMaxRequestSize) {
  sim::Simulator s;
  zns::ZnsDevice dev(s, Quiet());
  KernelStack stack(s, dev, Scheduler::kMqDeadline, 4096,
                    HostCosts{.submit = sim::Microseconds(1.2),
                              .complete = sim::Microseconds(1.07)},
                    sim::Microseconds(1.85),
                    /*max_merge_bytes=*/16 * 1024);
  // Block the zone with a first in-flight write, then stage 16 more.
  auto w = [&](nvme::Lba slba) -> sim::Task<> {
    (void)co_await stack.Submit(
        {.opcode = nvme::Opcode::kWrite, .slba = slba, .nlb = 1});
  };
  for (nvme::Lba i = 0; i < 17; ++i) sim::Spawn(w(i));
  s.Run();
  // 1 + ceil(16 / 4): batches capped at 16 KiB = 4 LBAs.
  EXPECT_GE(stack.scheduler_stats().dispatched_writes, 5u);
}

TEST(KernelStack, NonContiguousWritesDoNotMerge) {
  sim::Simulator s;
  zns::ZnsDevice dev(s, Quiet());
  KernelStack stack(s, dev, Scheduler::kMqDeadline);
  std::vector<nvme::Status> results;
  // Two writes to DIFFERENT zones: separate queues, no merging.
  auto w = [&](nvme::Lba slba) -> sim::Task<> {
    auto tc = co_await stack.Submit(
        {.opcode = nvme::Opcode::kWrite, .slba = slba, .nlb = 1});
    results.push_back(tc.completion.status);
  };
  std::uint64_t zsz = dev.info().zone_size_lbas;
  sim::Spawn(w(0));
  sim::Spawn(w(zsz));
  s.Run();
  EXPECT_EQ(stack.scheduler_stats().dispatched_writes, 2u);
  EXPECT_EQ(stack.scheduler_stats().merged_writes, 0u);
  for (auto st : results) EXPECT_EQ(st, nvme::Status::kSuccess);
}

TEST(KernelStack, MqDeadlineAllowsDeepQueueOnOneZone) {
  // The paper: "Applications can, hence, issue multiple write operations
  // to a single zone" with mq-deadline. QD32 sequential writes all land.
  sim::Simulator s;
  zns::ZnsDevice dev(s, Quiet());
  KernelStack stack(s, dev, Scheduler::kMqDeadline);
  int ok = 0;
  auto w = [&](nvme::Lba slba) -> sim::Task<> {
    auto tc = co_await stack.Submit(
        {.opcode = nvme::Opcode::kWrite, .slba = slba, .nlb = 1});
    if (tc.completion.ok()) ++ok;
  };
  for (nvme::Lba i = 0; i < 32; ++i) sim::Spawn(w(i));
  s.Run();
  EXPECT_EQ(ok, 32);
}

TEST(SpdkStack, PassesThroughAppendsAndMgmt) {
  sim::Simulator s;
  zns::ZnsDevice dev(s, Quiet());
  SpdkStack stack(s, dev);
  auto body = [&]() -> sim::Task<> {
    auto a = co_await stack.Submit(
        {.opcode = nvme::Opcode::kAppend, .slba = 0, .nlb = 2});
    ZSTOR_CHECK(a.completion.ok());
    ZSTOR_CHECK(a.completion.result_lba == 0);
    auto r = co_await stack.Submit(
        {.opcode = nvme::Opcode::kZoneMgmtSend,
         .slba = 0,
         .zone_action = nvme::ZoneAction::kReset});
    ZSTOR_CHECK(r.completion.ok());
  };
  auto t = body();
  s.Run();
  EXPECT_EQ(dev.counters().appends, 1u);
  EXPECT_EQ(dev.counters().resets, 1u);
}

}  // namespace
}  // namespace zstor::hostif
