// End-to-end fault injection: the full degradation lifecycle driven
// through the public NVMe command path (Testbed -> host stack -> device),
// host-side retries recovering transient read errors, the object store
// rerouting writes around degraded zones, and the log pages reflecting
// all of it.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/fault_plan.h"
#include "harness/testbed.h"
#include "hostif/resilient_stack.h"
#include "nvme/log_page.h"
#include "zobj/zone_object_store.h"

namespace zstor {
namespace {

using nvme::Status;
using zns::ZoneState;

zns::ZnsProfile QuietTiny() {
  zns::ZnsProfile p = zns::TinyProfile();
  p.io_sigma = 0;
  p.reset.sigma = 0;
  p.finish.sigma = 0;
  return p;
}

/// Runs one command through the testbed's (resilient) stack and drains the
/// simulator to idle, so background NAND programs — and any degradation
/// they cause — have fully settled before the next assertion.
nvme::Completion RunCmd(Testbed& tb, nvme::Command cmd) {
  nvme::Completion out;
  auto body = [&]() -> sim::Task<> {
    nvme::TimedCompletion tc = co_await tb.stack().Submit(cmd);
    out = tc.completion;
  };
  auto t = body();
  tb.sim().Run();
  return out;
}

nvme::Completion WriteAtWp(Testbed& tb, std::uint32_t zone,
                           std::uint32_t nlb) {
  return RunCmd(tb, {.opcode = nvme::Opcode::kWrite,
                  .slba = tb.zns()->ZoneWritePointerLba(zone),
                  .nlb = nlb});
}

nvme::Completion Read(Testbed& tb, std::uint32_t zone, std::uint64_t off,
                      std::uint32_t nlb) {
  return RunCmd(tb, {.opcode = nvme::Opcode::kRead,
                  .slba = tb.zns()->ZoneStartLba(zone) + off,
                  .nlb = nlb});
}

TEST(FaultInjection, DegradationLifecycleThroughThePublicCommandPath) {
  // One spare block: the first program failure degrades its zone to
  // ReadOnly (spare consumed), the second exhausts the spares and sends
  // that zone Offline. Every program fails under this plan.
  zns::ZnsProfile p = QuietTiny();
  p.spare_blocks = 1;
  fault::FaultSpec spec;
  spec.enabled = true;
  spec.program_fail_rate = 1.0;
  spec.seed = 7;
  Testbed tb = TestbedBuilder()
                   .WithZnsProfile(p)
                   .WithFaults(spec)
                   .Build();
  ASSERT_NE(tb.resilient(), nullptr);  // faults imply the retry layer
  zns::ZnsDevice& dev = *tb.zns();
  ASSERT_EQ(dev.GetZoneState(0), ZoneState::kEmpty);

  // --- Empty -> (program failure) -> ReadOnly -------------------------
  // One full 16 KiB stripe page: the write buffers fine (and completes
  // Success), then the NAND program fails in the background.
  EXPECT_TRUE(WriteAtWp(tb, 0, 4).ok());
  EXPECT_EQ(dev.GetZoneState(0), ZoneState::kReadOnly);
  EXPECT_EQ(dev.counters().retired_blocks, 1u);
  EXPECT_EQ(dev.counters().spare_blocks_used, 1u);
  EXPECT_EQ(dev.counters().zones_degraded_readonly, 1u);

  // The lost buffered data is reported exactly once (kWriteFault), after
  // which the zone's degraded state speaks for itself. kWriteFault is
  // terminal for the host retry layer: re-issuing cannot recover data.
  EXPECT_EQ(WriteAtWp(tb, 0, 4).status, Status::kWriteFault);
  EXPECT_GE(tb.resilient()->stats().terminal_errors, 1u);
  EXPECT_EQ(WriteAtWp(tb, 0, 4).status, Status::kZoneIsReadOnly);

  // ReadOnly zones still serve reads of the data they hold.
  EXPECT_TRUE(Read(tb, 0, 0, 4).ok());

  // --- spare exhaustion -> Offline ------------------------------------
  EXPECT_TRUE(WriteAtWp(tb, 1, 4).ok());
  EXPECT_EQ(dev.GetZoneState(1), ZoneState::kOffline);
  EXPECT_EQ(dev.counters().zones_failed_offline, 1u);
  EXPECT_EQ(dev.counters().retired_blocks, 2u);
  EXPECT_EQ(dev.counters().spare_blocks_used, 1u);  // budget was spent
  EXPECT_EQ(Read(tb, 1, 0, 1).status, Status::kZoneIsOffline);

  // A flush cannot honor the durability barrier for data that never
  // reached NAND; the second flush is clean.
  EXPECT_EQ(RunCmd(tb, {.opcode = nvme::Opcode::kFlush}).status,
            Status::kWriteFault);
  EXPECT_TRUE(RunCmd(tb, {.opcode = nvme::Opcode::kFlush}).ok());

  // --- log pages reflect the damage -----------------------------------
  nvme::SmartLog smart = tb.Smart();
  EXPECT_EQ(smart.write_faults, 2u);
  EXPECT_EQ(smart.retired_blocks, 2u);
  EXPECT_EQ(smart.spare_blocks_used, 1u);
  EXPECT_EQ(smart.spare_blocks_total, 1u);
  EXPECT_GE(smart.media_errors, 2u);  // kWriteFault completions
  EXPECT_EQ(smart.zones_degraded_readonly, 1u);
  EXPECT_EQ(smart.zones_failed_offline, 1u);

  nvme::ZoneReportLog report = tb.ZoneReport();
  EXPECT_EQ(report.read_only_zones, 1u);
  EXPECT_EQ(report.offline_zones, 1u);
  std::uint32_t retired = 0;
  for (const nvme::ZoneReportEntry& e : report.zones) {
    retired += e.retired_blocks;
  }
  EXPECT_EQ(retired, 2u);

  // The fault plan's own accounting agrees.
  EXPECT_EQ(tb.faults()->counters().program_failures, 2u);
}

TEST(FaultInjection, HostRetriesRecoverATransientReadError) {
  // One scheduled uncorrectable read error: the first NAND read after t=0
  // fails, the host retries, and the retry succeeds — the caller never
  // sees the fault.
  fault::FaultSpec spec;
  spec.enabled = true;
  spec.scheduled.push_back({.at = 0,
                            .kind = fault::FaultKind::kReadUncorrectable,
                            .die = fault::kAnySite,
                            .block = fault::kAnySite});
  Testbed tb = TestbedBuilder()
                   .WithZnsProfile(QuietTiny())
                   .WithFaults(spec)
                   .WithRetryPolicy({.max_attempts = 4,
                                     .backoff = sim::Microseconds(50)})
                   .Build();
  zns::ZnsDevice& dev = *tb.zns();

  EXPECT_TRUE(WriteAtWp(tb, 0, 4).ok());
  EXPECT_TRUE(RunCmd(tb, {.opcode = nvme::Opcode::kFlush}).ok());

  nvme::Completion c = Read(tb, 0, 0, 4);
  EXPECT_TRUE(c.ok()) << ToString(c.status);
  const hostif::ResilienceStats& rs = tb.resilient()->stats();
  EXPECT_EQ(rs.retries, 1u);
  EXPECT_EQ(rs.recovered, 1u);
  // The device saw (and counted) the failed attempt even though the
  // caller did not.
  EXPECT_EQ(dev.counters().read_faults, 1u);
  EXPECT_EQ(dev.counters().media_errors, 1u);
  nvme::SmartLog smart = tb.Smart();
  EXPECT_EQ(smart.read_faults, 1u);
  EXPECT_EQ(tb.faults()->counters().uncorrectable_read_errors, 1u);
  EXPECT_EQ(tb.faults()->counters().scheduled_fired, 1u);
}

TEST(FaultInjection, ObjectStoreReroutesWritesAroundDegradedZones) {
  // Plenty of spares, one scheduled program failure: the store's active
  // zone degrades to ReadOnly mid-stream and the store must reroute the
  // affected append to a fresh zone without surfacing an error — and the
  // degraded zone's extents must stay readable.
  zns::ZnsProfile p = QuietTiny();
  p.spare_blocks = 8;
  fault::FaultSpec spec;
  spec.enabled = true;
  spec.scheduled.push_back({.at = 0,
                            .kind = fault::FaultKind::kProgramFail,
                            .die = fault::kAnySite,
                            .block = fault::kAnySite});
  Testbed tb = TestbedBuilder()
                   .WithZnsProfile(p)
                   .WithFaults(spec)
                   .Build();

  zobj::ZoneObjectStore store(
      tb.sim(), tb.stack(),
      {.first_zone = 0, .zone_count = 8, .compact_free_low = 2});

  // 48 x 64 KiB objects (~3 MiB): enough traffic that the failed program
  // surfaces (as a write fault on a later append) while writes continue.
  constexpr std::uint64_t kObjects = 48;
  std::vector<Status> results(kObjects, Status::kInvalidOpcode);
  auto driver = [&]() -> sim::Task<> {
    for (std::uint64_t k = 0; k < kObjects; ++k) {
      results[k] = co_await store.Put(k, 64 * 1024);
    }
  };
  auto t = driver();
  tb.sim().Run();

  // Every Put succeeded despite the media fault...
  for (std::uint64_t k = 0; k < kObjects; ++k) {
    EXPECT_EQ(results[k], Status::kSuccess) << "object " << k;
  }
  // ...because the store reacted to the degradation, not the caller.
  EXPECT_GE(store.stats().zones_degraded, 1u);
  EXPECT_GE(store.stats().write_reroutes, 1u);
  EXPECT_GE(tb.zns()->counters().zones_degraded_readonly, 1u);

  // Everything written is still readable (ReadOnly zones serve reads).
  std::vector<Status> reads(kObjects, Status::kInvalidOpcode);
  auto reader = [&]() -> sim::Task<> {
    for (std::uint64_t k = 0; k < kObjects; ++k) {
      reads[k] = co_await store.Get(k);
    }
  };
  auto rt = reader();
  tb.sim().Run();
  for (std::uint64_t k = 0; k < kObjects; ++k) {
    EXPECT_EQ(reads[k], Status::kSuccess) << "object " << k;
  }
}

TEST(FaultInjection, DisabledFaultsLeaveTheTestbedUnwrapped) {
  // No faults, no retry policy: Build() must not insert the resilient
  // layer (fault-free benchmark timing stays byte-identical).
  Testbed tb = TestbedBuilder().WithZnsProfile(QuietTiny()).Build();
  EXPECT_EQ(tb.resilient(), nullptr);
  EXPECT_EQ(tb.faults(), nullptr);
  EXPECT_TRUE(WriteAtWp(tb, 0, 4).ok());
  nvme::SmartLog smart = tb.Smart();
  EXPECT_EQ(smart.media_errors, 0u);
  EXPECT_EQ(smart.write_faults, 0u);
  EXPECT_EQ(smart.retired_blocks, 0u);
}

}  // namespace
}  // namespace zstor
