// Full-stack integration smoke tests, parameterized over every host
// stack x device combination: a small mixed workload must complete
// error-free with sane latencies, and stack overheads must preserve the
// paper's ordering (SPDK < io_uring < io_uring+mq-deadline < psync).
#include <gtest/gtest.h>

#include <memory>

#include "ftl/conv_device.h"
#include "hostif/stack_factory.h"
#include "workload/runner.h"
#include "zns/zns_device.h"

namespace zstor {
namespace {

using StackId = hostif::StackChoice;
enum class DeviceId { kZns, kConv };

struct Param {
  StackId stack;
  DeviceId device;
};

std::string Name(const ::testing::TestParamInfo<Param>& info) {
  std::string s;
  switch (info.param.stack) {
    case StackId::kSpdk: s = "spdk"; break;
    case StackId::kKernelNone: s = "kernel"; break;
    case StackId::kKernelMq: s = "mq"; break;
    case StackId::kPsync: s = "psync"; break;
  }
  s += info.param.device == DeviceId::kZns ? "_zns" : "_conv";
  return s;
}

class FullStackTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    if (GetParam().device == DeviceId::kZns) {
      zns::ZnsProfile p = zns::TinyProfile();
      p.io_sigma = 0;
      auto d = std::make_unique<zns::ZnsDevice>(sim_, p);
      zns_dev_ = d.get();
      dev_ = std::move(d);
    } else {
      auto d = std::make_unique<ftl::ConvDevice>(sim_,
                                                 ftl::TinyConvProfile());
      d->DebugPrefill();
      dev_ = std::move(d);
    }
    stack_ = hostif::MakeStack(GetParam().stack, sim_, *dev_).stack;
  }

  sim::Simulator sim_;
  std::unique_ptr<nvme::Controller> dev_;
  zns::ZnsDevice* zns_dev_ = nullptr;
  std::unique_ptr<hostif::Stack> stack_;
};

TEST_P(FullStackTest, WriteWorkloadRunsClean) {
  workload::JobSpec spec;
  spec.op = nvme::Opcode::kWrite;
  spec.random = GetParam().device == DeviceId::kConv;
  spec.zones = {0, 1};
  spec.queue_depth = GetParam().stack == StackId::kKernelMq ? 8 : 1;
  spec.request_bytes = 16 * 1024;
  spec.duration = sim::Milliseconds(30);
  auto r = workload::RunJob(sim_, *stack_, spec);
  EXPECT_GT(r.ops, 100u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(r.latency.mean_ns(), 10'000.0);   // > 10 us: device is real
  EXPECT_LT(r.latency.mean_ns(), 5e6);  // < 5 ms even with GC stalls
}

TEST_P(FullStackTest, ReadWorkloadRunsClean) {
  if (zns_dev_ != nullptr) {
    zns_dev_->DebugFillZone(3, zns_dev_->profile().zone_cap_bytes);
  }
  workload::JobSpec spec;
  spec.op = nvme::Opcode::kRead;
  spec.random = true;
  spec.zones = {3};
  spec.queue_depth = 4;
  spec.duration = sim::Milliseconds(30);
  auto r = workload::RunJob(sim_, *stack_, spec);
  EXPECT_GT(r.ops, 100u);
  EXPECT_EQ(r.errors, 0u);
  // Reads pay tR ~68 us on both devices.
  EXPECT_GT(r.latency.mean_ns(), 60'000.0);
}

TEST_P(FullStackTest, MixedWorkloadSplitsDirections) {
  if (GetParam().device == DeviceId::kZns) {
    workload::JobSpec spec;
    spec.op = nvme::Opcode::kAppend;
    spec.random = true;
    spec.read_fraction = 0.3;
    spec.zones = {0, 1};
    spec.duration = sim::Milliseconds(30);
    auto r = workload::RunJob(sim_, *stack_, spec);
    EXPECT_EQ(r.errors, 0u);
    EXPECT_GT(r.write_latency.count(), 0u);
  } else {
    workload::JobSpec spec;
    spec.op = nvme::Opcode::kWrite;
    spec.random = true;
    spec.read_fraction = 0.3;
    spec.duration = sim::Milliseconds(30);
    auto r = workload::RunJob(sim_, *stack_, spec);
    EXPECT_EQ(r.errors, 0u);
    EXPECT_GT(r.read_latency.count(), 0u);
    EXPECT_GT(r.write_latency.count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, FullStackTest,
    ::testing::Values(Param{StackId::kSpdk, DeviceId::kZns},
                      Param{StackId::kKernelNone, DeviceId::kZns},
                      Param{StackId::kKernelMq, DeviceId::kZns},
                      Param{StackId::kPsync, DeviceId::kZns},
                      Param{StackId::kSpdk, DeviceId::kConv},
                      Param{StackId::kKernelNone, DeviceId::kConv},
                      Param{StackId::kKernelMq, DeviceId::kConv},
                      Param{StackId::kPsync, DeviceId::kConv}),
    Name);

TEST(StackOrdering, OverheadsFollowThePaper) {
  // SPDK < io_uring < io_uring+mq-deadline < psync (Obs. 2 + [14]/[82]).
  auto write_us = [](StackId id) {
    sim::Simulator s;
    zns::ZnsProfile p = zns::TinyProfile();
    p.io_sigma = 0;
    zns::ZnsDevice dev(s, p);
    std::unique_ptr<hostif::Stack> st = hostif::MakeStack(id, s, dev).stack;
    sim::Time lat = 0;
    auto body = [&]() -> sim::Task<> {
      (void)co_await st->Submit(
          {.opcode = nvme::Opcode::kWrite, .slba = 0, .nlb = 1});
      auto tc = co_await st->Submit(
          {.opcode = nvme::Opcode::kWrite, .slba = 1, .nlb = 1});
      lat = tc.latency();
    };
    auto t = body();
    s.Run();
    return sim::ToMicroseconds(lat);
  };
  double spdk = write_us(StackId::kSpdk);
  double kernel = write_us(StackId::kKernelNone);
  double mq = write_us(StackId::kKernelMq);
  double psync = write_us(StackId::kPsync);
  EXPECT_LT(spdk, kernel);
  EXPECT_LT(kernel, mq);
  EXPECT_LT(mq, psync);
}

}  // namespace
}  // namespace zstor
