// End-to-end crash integrity (DESIGN.md §11): a scheduled power loss
// lands mid-workload on a full Testbed (device + retry-wrapped host
// stack), the device recovers, and the IntegrityVerifier re-reads its
// whole ledger. Acceptance: zero silent corruption and zero read errors
// on BOTH device types, and bit-identical reports for a fixed seed.
#include <gtest/gtest.h>

#include <cstdint>

#include "fault/fault_plan.h"
#include "harness/testbed.h"
#include "sim/check.h"
#include "sim/task.h"
#include "workload/verifier.h"

namespace zstor {
namespace {

using workload::IntegrityVerifier;

constexpr sim::Time kCrashAt = sim::Milliseconds(6);
constexpr sim::Time kSettle = kCrashAt + sim::Milliseconds(25);

hostif::RetryPolicy OutageRetryPolicy() {
  // Exponential backoff from 250 us across 12 attempts spans ~8 ms of
  // virtual time: enough to ride out the ~2 ms boot + recovery scan.
  return {.max_attempts = 12,
          .backoff = sim::Microseconds(250),
          .backoff_multiplier = 2.0};
}

fault::FaultSpec OneCrash() {
  fault::FaultSpec spec;
  spec.enabled = true;
  spec.crashes = {kCrashAt};
  return spec;
}

struct RunResult {
  IntegrityVerifier::Report rep;
  IntegrityVerifier::WriteStats ws;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t device_resets = 0;
  std::size_t ledger = 0;
};

sim::Task<> ZnsFlow(Testbed* tb, IntegrityVerifier* v, bool* done,
                    IntegrityVerifier::Report* rep) {
  co_await v->FillZones(0, 4, 0.25);
  co_await v->Flush();  // certify phase 1 as durable
  co_await v->FillZones(0, 4, 0.25);
  if (tb->sim().now() < kSettle) {
    co_await tb->sim().Delay(kSettle - tb->sim().now());
  }
  co_await v->Flush();
  *rep = co_await v->VerifyAll();
  *done = true;
}

RunResult RunZnsScenario() {
  TestbedBuilder b;
  b.WithZnsProfile(zns::TinyProfile())
      .WithRetryPolicy(OutageRetryPolicy())
      .WithFaults(OneCrash())
      .WithLabel("crash-integrity-zns");
  Testbed tb = b.Build();
  zns::ZnsDevice* dev = tb.zns();

  IntegrityVerifier::Options vopt;
  vopt.lbas_per_io = dev->profile().nand_geometry.page_bytes /
                     tb.stack().info().format.lba_bytes;
  vopt.crash_epoch = [dev] { return dev->power_epoch(); };
  IntegrityVerifier v(tb.sim(), tb.stack(), vopt);

  bool done = false;
  RunResult r;
  sim::Spawn(ZnsFlow(&tb, &v, &done, &r.rep));
  tb.sim().Run();
  ZSTOR_CHECK(done);
  r.ws = v.write_stats();
  r.crashes = dev->counters().crashes;
  r.recoveries = dev->counters().recoveries;
  r.device_resets = tb.resilient()->stats().device_resets_seen;
  r.ledger = v.ledger_size();
  tb.Finish();
  return r;
}

sim::Task<> ConvFlow(Testbed* tb, IntegrityVerifier* v, std::uint64_t span,
                     std::uint64_t ios, bool* done,
                     IntegrityVerifier::Report* rep) {
  co_await v->WriteRegion(0, span, ios);
  if (tb->sim().now() < kSettle) {
    co_await tb->sim().Delay(kSettle - tb->sim().now());
  }
  co_await v->Flush();
  *rep = co_await v->VerifyAll();
  *done = true;
}

RunResult RunConvScenario() {
  TestbedBuilder b;
  b.WithConvProfile(ftl::TinyConvProfile())
      .WithRetryPolicy(OutageRetryPolicy())
      .WithFaults(OneCrash())
      .WithLabel("crash-integrity-conv");
  Testbed tb = b.Build();
  ftl::ConvDevice* dev = tb.conv();

  IntegrityVerifier::Options vopt;
  vopt.crash_epoch = [dev] { return dev->power_epoch(); };
  IntegrityVerifier v(tb.sim(), tb.stack(), vopt);

  const std::uint64_t span =
      tb.stack().info().capacity_lbas -
      tb.stack().info().capacity_lbas % (vopt.lbas_per_io * vopt.concurrency);
  bool done = false;
  RunResult r;
  sim::Spawn(ConvFlow(&tb, &v, span, span / vopt.lbas_per_io, &done, &r.rep));
  tb.sim().Run();
  ZSTOR_CHECK(done);
  r.ws = v.write_stats();
  r.crashes = dev->counters().crashes;
  r.recoveries = dev->counters().recoveries;
  r.device_resets = tb.resilient()->stats().device_resets_seen;
  r.ledger = v.ledger_size();
  tb.Finish();
  return r;
}

void ExpectIntact(const RunResult& r) {
  // The crash fired mid-workload and the device came back.
  EXPECT_EQ(r.crashes, 1u);
  EXPECT_EQ(r.recoveries, 1u);
  // The whole ledger was re-read, and every flushed byte survived: no
  // silent corruption, no unreadable LBAs. Lost/stale unflushed entries
  // are within the durability contract.
  EXPECT_GT(r.ledger, 0u);
  EXPECT_GT(r.rep.exact, 0u);
  EXPECT_EQ(r.rep.silent_corruptions, 0u);
  EXPECT_EQ(r.rep.read_errors, 0u);
  EXPECT_TRUE(r.rep.ok());
  EXPECT_EQ(r.rep.lbas_checked, r.ledger);
}

void ExpectIdentical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.rep.lbas_checked, b.rep.lbas_checked);
  EXPECT_EQ(a.rep.bytes_verified, b.rep.bytes_verified);
  EXPECT_EQ(a.rep.exact, b.rep.exact);
  EXPECT_EQ(a.rep.lost_unflushed, b.rep.lost_unflushed);
  EXPECT_EQ(a.rep.stale_unflushed, b.rep.stale_unflushed);
  EXPECT_EQ(a.ws.writes_acked, b.ws.writes_acked);
  EXPECT_EQ(a.ws.write_failures, b.ws.write_failures);
  EXPECT_EQ(a.device_resets, b.device_resets);
  EXPECT_EQ(a.ledger, b.ledger);
}

TEST(CrashIntegrity, ZnsSurvivesAPowerLossMidFill) {
  RunResult r = RunZnsScenario();
  ExpectIntact(r);
  // The retry layer absorbed the outage: commands in flight at the cut
  // saw kDeviceReset and were re-driven, not surfaced.
  EXPECT_GT(r.device_resets, 0u);
}

TEST(CrashIntegrity, ConvSurvivesAPowerLossMidWrites) {
  RunResult r = RunConvScenario();
  ExpectIntact(r);
  EXPECT_GT(r.device_resets, 0u);
}

TEST(CrashIntegrity, ZnsRunIsDeterministicForAFixedSeed) {
  RunResult a = RunZnsScenario();
  RunResult b = RunZnsScenario();
  ExpectIdentical(a, b);
}

TEST(CrashIntegrity, ConvRunIsDeterministicForAFixedSeed) {
  RunResult a = RunConvScenario();
  RunResult b = RunConvScenario();
  ExpectIdentical(a, b);
}

}  // namespace
}  // namespace zstor
