// zmon: timeline-analysis CLI for the simulator's JSONL telemetry
// timelines (schema: DESIGN.md section 10).
//
//   zmon run.jsonl                    # per-interval activity + dip report
//   zmon run.jsonl --tb=gc-conv      # one testbed only
//   zmon run.jsonl --chrome=out.json  # Perfetto counter-track export
//   zmon run.jsonl --require-dip      # exit 1 unless a dip is attributed
//                                     # to a background window (CI gate)
//   zmon run.jsonl --require-window=recovery
//                                     # exit 1 unless a window of that
//                                     # kind-prefix exists (crash CI gate)
//
// Produce a timeline with any bench binary:
//   ./bench/bench_fig6_gc_interference --timeline=run.jsonl
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "zmon/timeline_analysis.h"

namespace {

using zstor::zmon::BuildIntervals;
using zstor::zmon::Dip;
using zstor::zmon::FindDips;
using zstor::zmon::IntervalRow;
using zstor::zmon::LoadResult;
using zstor::zmon::LoadTimelineFile;
using zstor::zmon::TbTimeline;
using zstor::zmon::ToChromeTrace;

const char* MatchFlag(const char* arg, const char* name) {
  std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: zmon TIMELINE.jsonl [--tb=LABEL] [--threshold=FRAC]\n"
      "            [--chrome=FILE] [--require-dip] [--require-window=PFX]\n"
      "\n"
      "Analyzes a JSONL telemetry timeline produced with --timeline=FILE\n"
      "on any bench binary (schema: DESIGN.md section 10).\n"
      "\n"
      "  --tb=LABEL       analyze only this testbed's records\n"
      "  --threshold=FRAC call intervals below FRAC x median throughput\n"
      "                   a dip (default 0.7)\n"
      "  --chrome=FILE    write a Chrome trace-event export (counter\n"
      "                   tracks + background-window spans)\n"
      "  --require-dip    exit 1 unless at least one dip is attributed\n"
      "                   to an overlapping background window\n"
      "  --require-window=PFX\n"
      "                   exit 1 unless a background window whose kind\n"
      "                   starts with PFX (e.g. 'recovery') was recorded\n");
}

double Ms(double ns) { return ns / 1e6; }

void PrintIntervals(const TbTimeline& tl,
                    const std::vector<IntervalRow>& rows) {
  std::printf("Testbed %s: %zu sample(s), %zu zone event(s), %zu die "
              "window(s), %zu background window(s)\n",
              tl.tb.c_str(), tl.samples.size(), tl.zone_events.size(),
              tl.die_busy.size(), tl.windows.size());
  std::printf("  %-18s %10s %10s %10s %6s %6s %6s %10s %10s %10s\n",
              "interval_ms", "W_MiBps", "R_MiBps", "IOPS", "QD", "util%",
              "zones", "gc_ms", "reset_ms", "recov_ms");
  for (const IntervalRow& r : rows) {
    double gc_ms =
        Ms(static_cast<double>(r.overlap("gc.migrate") +
                               r.overlap("gc.erase")));
    double reset_ms = Ms(static_cast<double>(r.overlap("zone.reset")));
    // Power-loss recovery outages: zone scan (ZNS) + journal replay
    // (conv). The crash instant itself is a zero-duration marker.
    double recov_ms =
        Ms(static_cast<double>(r.overlap("recovery.scan") +
                               r.overlap("recovery.replay")));
    char span[32];
    std::snprintf(span, sizeof span, "[%.0f,%.0f)",
                  Ms(static_cast<double>(r.begin)),
                  Ms(static_cast<double>(r.end)));
    std::printf("  %-18s %10.1f %10.1f %10.0f %6.0f %5.1f%% %6u %10.2f "
                "%10.2f %10.2f\n",
                span, r.write_mibps, r.read_mibps, r.iops, r.qd,
                100.0 * r.die_util, r.zone_transitions, gc_ms, reset_ms,
                recov_ms);
  }
}

/// Prints the dip report; returns how many dips have an attributed cause.
std::size_t PrintDips(const std::vector<Dip>& dips) {
  std::size_t attributed = 0;
  if (dips.empty()) {
    std::printf("  no throughput dips below threshold\n");
    return attributed;
  }
  std::printf("  throughput dips (median %.1f MiB/s):\n",
              dips.front().median_mibps);
  for (const Dip& d : dips) {
    std::printf("    [%.0f,%.0f) ms: %.1f MiB/s",
                Ms(static_cast<double>(d.row.begin)),
                Ms(static_cast<double>(d.row.end)), d.throughput_mibps);
    if (d.causes.empty()) {
      std::printf(" — unexplained (no overlapping window)\n");
      continue;
    }
    ++attributed;
    std::printf(" — overlapping:");
    for (const auto& [kind, ns] : d.causes) {
      std::printf(" %s %.2fms", kind.c_str(),
                  Ms(static_cast<double>(ns)));
    }
    std::printf("\n");
  }
  return attributed;
}

}  // namespace

int main(int argc, char** argv) {
  std::string timeline_path;
  std::string tb_filter;
  std::string chrome_path;
  std::string require_window;
  double threshold = 0.7;
  bool require_dip = false;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = MatchFlag(argv[i], "--tb")) {
      tb_filter = v;
    } else if (const char* c = MatchFlag(argv[i], "--chrome")) {
      chrome_path = c;
    } else if (const char* w = MatchFlag(argv[i], "--require-window")) {
      require_window = w;
    } else if (const char* t = MatchFlag(argv[i], "--threshold")) {
      threshold = std::atof(t);
      if (threshold <= 0 || threshold >= 1) {
        std::fprintf(stderr, "zmon: --threshold must be in (0, 1)\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--require-dip") == 0) {
      require_dip = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      PrintUsage();
      return 0;
    } else if (timeline_path.empty() && argv[i][0] != '-') {
      timeline_path = argv[i];
    } else {
      std::fprintf(stderr, "zmon: unrecognized argument '%s'\n", argv[i]);
      PrintUsage();
      return 2;
    }
  }
  if (timeline_path.empty()) {
    PrintUsage();
    return 2;
  }

  LoadResult loaded = LoadTimelineFile(timeline_path);
  if (loaded.tbs.empty()) {
    std::fprintf(stderr, "zmon: no timeline records in %s\n",
                 timeline_path.c_str());
    return 1;
  }
  if (loaded.bad_lines > 0) {
    std::fprintf(stderr, "zmon: skipped %zu unparsable line(s)\n",
                 loaded.bad_lines);
  }
  if (loaded.skipped_records > 0) {
    std::fprintf(stderr,
                 "zmon: skipped %zu non-timeline record(s) (trace "
                 "stream? analyze those with ztrace)\n",
                 loaded.skipped_records);
  }

  std::size_t attributed = 0;
  std::size_t matched_windows = 0;
  bool tb_seen = false;
  bool first = true;
  for (const TbTimeline& tl : loaded.tbs) {
    if (!tb_filter.empty() && tl.tb != tb_filter) continue;
    tb_seen = true;
    if (!require_window.empty()) {
      for (const auto& w : tl.windows) {
        if (w.kind.compare(0, require_window.size(), require_window) == 0) {
          ++matched_windows;
        }
      }
    }
    if (!first) std::printf("\n");
    first = false;
    std::vector<IntervalRow> rows = BuildIntervals(tl);
    PrintIntervals(tl, rows);
    attributed += PrintDips(FindDips(rows, threshold));
    if (!chrome_path.empty()) {
      // With several testbeds, suffix the file per label so exports
      // don't clobber each other.
      std::string path = chrome_path;
      if (loaded.tbs.size() > 1 && tb_filter.empty()) {
        std::size_t dot = path.rfind('.');
        std::string suffix = "-" + tl.tb;
        if (dot == std::string::npos) {
          path += suffix;
        } else {
          path.insert(dot, suffix);
        }
      }
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "zmon: cannot open %s\n", path.c_str());
      } else {
        std::string json = ToChromeTrace(tl, rows);
        std::fwrite(json.data(), 1, json.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("  wrote Chrome trace export: %s\n", path.c_str());
      }
    }
  }
  if (!tb_seen) {
    std::fprintf(stderr, "zmon: no testbed labeled '%s' in %s\n",
                 tb_filter.c_str(), timeline_path.c_str());
    return 1;
  }
  if (!require_window.empty()) {
    if (matched_windows == 0) {
      std::fprintf(stderr,
                   "zmon: --require-window: no '%s*' window recorded\n",
                   require_window.c_str());
      return 1;
    }
    std::printf("%zu window(s) matching '%s*'\n", matched_windows,
                require_window.c_str());
  }
  if (require_dip && attributed == 0) {
    std::fprintf(stderr,
                 "zmon: --require-dip: no throughput dip attributed to a "
                 "background window\n");
    return 1;
  }
  return 0;
}
