// Timeline analysis behind the zmon CLI: loads the JSONL timeline
// streams benches emit under --timeline (telemetry::TimelineWriter;
// schema in DESIGN.md §10) and answers "what was the device doing at
// t=X" —
//
//   * per-interval activity rows: write/read throughput, IOPS, queue
//     depth, die utilization and zone-transition counts per sample
//     interval;
//   * throughput-dip attribution: intervals whose throughput falls below
//     a fraction of the run's median, annotated with the GC / zone-reset
//     / media-error windows that overlap them;
//   * Chrome trace-event export: throughput counter tracks plus one
//     span track per window kind, loadable in Perfetto.
//
// Everything here is plain post-processing over parsed record vectors,
// so tests drive it directly against in-memory timelines.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <string>
#include <vector>

namespace zstor::zmon {

// ---- parsed timeline records -------------------------------------------

/// One "sample" record: counter deltas, gauge levels and interval
/// histogram stats for the sample interval ending at `t`.
struct Sample {
  std::uint64_t t = 0;
  std::uint64_t interval_ns = 0;
  std::map<std::string, double> counters;  // deltas over the interval
  std::map<std::string, double> gauges;
  struct Hist {
    std::uint64_t count = 0;
    double mean_ns = 0, p50_ns = 0, p95_ns = 0, p99_ns = 0, max_ns = 0;
  };
  std::map<std::string, Hist> hists;

  std::uint64_t begin() const { return t - interval_ns; }
};

/// One "zone_state" record: a zone's lifecycle transition.
struct ZoneEvent {
  std::uint64_t t = 0;
  std::uint32_t lane = 0;
  std::uint32_t zone = 0;
  std::string from;
  std::string to;
};

/// One "die_busy" record: a coalesced window in which a die serviced
/// back-to-back media ops. busy_ns is the exact sum of service time (the
/// window itself may span short idle gaps the writer merged).
struct DieBusy {
  std::uint64_t t = 0;
  std::uint64_t dur = 0;
  std::uint32_t lane = 0;
  std::uint32_t die = 0;
  std::uint64_t ops = 0;
  std::uint64_t busy_ns = 0;

  std::uint64_t end() const { return t + dur; }
};

/// One "window" record: a named background activity (gc.migrate,
/// gc.erase, zone.reset, media.error).
struct Window {
  std::uint64_t t = 0;
  std::uint64_t dur = 0;
  std::uint32_t lane = 0;
  std::string kind;
  std::int64_t a = 0;
  std::int64_t b = 0;

  std::uint64_t end() const { return t + dur; }
};

/// All records of one testbed (one "tb" label), in file order.
struct TbTimeline {
  std::string tb;
  std::vector<Sample> samples;
  std::vector<ZoneEvent> zone_events;
  std::vector<DieBusy> die_busy;
  std::vector<Window> windows;
};

struct LoadResult {
  /// Per-testbed timelines, ordered by first appearance in the file.
  std::vector<TbTimeline> tbs;
  std::size_t bad_lines = 0;        // unparsable lines (skipped)
  std::size_t skipped_records = 0;  // JSON objects that aren't timeline
                                    // records (e.g. mixed-in trace spans)
};

/// Parses timeline JSONL from a stream; blank lines are ignored, foreign
/// records (trace spans and unknown "type"s) are counted and skipped.
LoadResult LoadTimeline(std::istream& in);
/// Opens `path` and LoadTimeline()s it. Empty result if unopenable.
LoadResult LoadTimelineFile(const std::string& path);

// ---- per-interval activity ---------------------------------------------

/// One sample interval's activity, derived from a Sample plus the
/// windows/events overlapping [begin, end).
struct IntervalRow {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  double write_mibps = 0;  // zns.bytes_written + conv.bytes_written
  double read_mibps = 0;   // zns.bytes_read + conv.bytes_read
  double iops = 0;         // qp.completions delta / interval
  double qd = 0;           // qp.inflight gauge at sample time
  double die_util = 0;     // mean busy fraction across dies (0..1)
  std::uint32_t zone_transitions = 0;
  /// Overlap of background windows with this interval, ns per kind.
  std::map<std::string, std::uint64_t> window_ns;

  double interval_ns() const { return static_cast<double>(end - begin); }
  std::uint64_t overlap(const std::string& kind) const {
    auto it = window_ns.find(kind);
    return it == window_ns.end() ? 0 : it->second;
  }
};

/// Builds per-interval rows from one testbed's timeline. `num_dies` for
/// the utilization denominator is inferred (max die index + 1) when 0.
std::vector<IntervalRow> BuildIntervals(const TbTimeline& tl,
                                        std::uint32_t num_dies = 0);

// ---- throughput-dip attribution ----------------------------------------

/// One below-threshold throughput interval and what overlapped it.
struct Dip {
  IntervalRow row;
  double throughput_mibps = 0;  // write + read
  double median_mibps = 0;      // run median the threshold derives from
  /// Background-window overlap inside the dip, largest first.
  std::vector<std::pair<std::string, std::uint64_t>> causes;

  /// The dominant overlapping window kind ("" when nothing overlapped —
  /// an unexplained dip).
  std::string dominant() const {
    return causes.empty() ? std::string() : causes.front().first;
  }
};

/// Finds intervals whose total throughput is below `threshold_frac` of
/// the run's median (computed over intervals with any throughput) and
/// attributes each to the background windows overlapping it. Warm-up and
/// idle intervals (zero throughput and no window overlap) are ignored.
std::vector<Dip> FindDips(const std::vector<IntervalRow>& rows,
                          double threshold_frac = 0.7);

// ---- Chrome trace-event export -----------------------------------------

/// Renders one testbed's timeline as a Chrome trace-event JSON document:
/// counter tracks for write/read throughput, QD and die utilization,
/// plus complete events per background window on one track per kind.
std::string ToChromeTrace(const TbTimeline& tl,
                          const std::vector<IntervalRow>& rows);

}  // namespace zstor::zmon
