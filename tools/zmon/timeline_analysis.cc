#include "zmon/timeline_analysis.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

#include "ztrace/json_value.h"

namespace zstor::zmon {

namespace {

using ztrace::JsonValue;

/// Overlap in ns of [a0, a1) with [b0, b1).
std::uint64_t OverlapNs(std::uint64_t a0, std::uint64_t a1, std::uint64_t b0,
                        std::uint64_t b1) {
  std::uint64_t lo = std::max(a0, b0);
  std::uint64_t hi = std::min(a1, b1);
  return hi > lo ? hi - lo : 0;
}

TbTimeline& TbFor(LoadResult& out, const std::string& tb) {
  for (auto& t : out.tbs) {
    if (t.tb == tb) return t;
  }
  out.tbs.push_back(TbTimeline{});
  out.tbs.back().tb = tb;
  return out.tbs.back();
}

void ParseNumberMap(const JsonValue* obj, std::map<std::string, double>* out) {
  if (obj == nullptr || !obj->is_object()) return;
  for (const auto& [k, v] : obj->object()) {
    if (v.is_number()) (*out)[k] = v.number();
  }
}

double MiBps(double bytes, double interval_ns) {
  if (interval_ns <= 0) return 0.0;
  return bytes / (1024.0 * 1024.0) / (interval_ns / 1e9);
}

double CounterOr(const Sample& s, const std::string& name) {
  auto it = s.counters.find(name);
  return it == s.counters.end() ? 0.0 : it->second;
}

}  // namespace

LoadResult LoadTimeline(std::istream& in) {
  LoadResult out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::optional<JsonValue> v = JsonValue::Parse(line);
    if (!v.has_value() || !v->is_object()) {
      ++out.bad_lines;
      continue;
    }
    const std::string type = v->StringOr("type", "");
    if (type != "sample" && type != "zone_state" && type != "die_busy" &&
        type != "window") {
      // A trace span (untyped), or a future record type from a newer
      // writer: skip, don't fail (mirrors ztrace's policy).
      ++out.skipped_records;
      continue;
    }
    TbTimeline& tb = TbFor(out, v->StringOr("tb", ""));
    if (type == "sample") {
      Sample s;
      s.t = static_cast<std::uint64_t>(v->NumberOr("t", 0));
      s.interval_ns =
          static_cast<std::uint64_t>(v->NumberOr("interval_ns", 0));
      ParseNumberMap(v->Find("counters"), &s.counters);
      ParseNumberMap(v->Find("gauges"), &s.gauges);
      if (const JsonValue* h = v->Find("hist");
          h != nullptr && h->is_object()) {
        for (const auto& [name, hv] : h->object()) {
          if (!hv.is_object()) continue;
          Sample::Hist hs;
          hs.count = static_cast<std::uint64_t>(hv.NumberOr("count", 0));
          hs.mean_ns = hv.NumberOr("mean_ns", 0);
          hs.p50_ns = hv.NumberOr("p50_ns", 0);
          hs.p95_ns = hv.NumberOr("p95_ns", 0);
          hs.p99_ns = hv.NumberOr("p99_ns", 0);
          hs.max_ns = hv.NumberOr("max_ns", 0);
          s.hists[name] = hs;
        }
      }
      tb.samples.push_back(std::move(s));
    } else if (type == "zone_state") {
      ZoneEvent e;
      e.t = static_cast<std::uint64_t>(v->NumberOr("t", 0));
      e.lane = static_cast<std::uint32_t>(v->NumberOr("lane", 0));
      e.zone = static_cast<std::uint32_t>(v->NumberOr("zone", 0));
      e.from = v->StringOr("from", "");
      e.to = v->StringOr("to", "");
      tb.zone_events.push_back(std::move(e));
    } else if (type == "die_busy") {
      DieBusy d;
      d.t = static_cast<std::uint64_t>(v->NumberOr("t", 0));
      d.dur = static_cast<std::uint64_t>(v->NumberOr("dur", 0));
      d.lane = static_cast<std::uint32_t>(v->NumberOr("lane", 0));
      d.die = static_cast<std::uint32_t>(v->NumberOr("die", 0));
      d.ops = static_cast<std::uint64_t>(v->NumberOr("ops", 0));
      d.busy_ns = static_cast<std::uint64_t>(v->NumberOr("busy_ns", 0));
      tb.die_busy.push_back(d);
    } else if (type == "window") {
      Window w;
      w.t = static_cast<std::uint64_t>(v->NumberOr("t", 0));
      w.dur = static_cast<std::uint64_t>(v->NumberOr("dur", 0));
      w.lane = static_cast<std::uint32_t>(v->NumberOr("lane", 0));
      w.kind = v->StringOr("kind", "");
      w.a = static_cast<std::int64_t>(v->NumberOr("a", 0));
      w.b = static_cast<std::int64_t>(v->NumberOr("b", 0));
      tb.windows.push_back(std::move(w));
    }
  }
  return out;
}

LoadResult LoadTimelineFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "zmon: cannot open %s\n", path.c_str());
    return {};
  }
  return LoadTimeline(in);
}

std::vector<IntervalRow> BuildIntervals(const TbTimeline& tl,
                                        std::uint32_t num_dies) {
  if (num_dies == 0) {
    // Distinct (lane, die) pairs: a striped testbed repeats die indices
    // across lanes, and lumping them would overstate utilization.
    std::vector<std::uint64_t> seen;
    for (const DieBusy& d : tl.die_busy) {
      std::uint64_t key =
          (static_cast<std::uint64_t>(d.lane) << 32) | d.die;
      if (std::find(seen.begin(), seen.end(), key) == seen.end()) {
        seen.push_back(key);
      }
    }
    num_dies = static_cast<std::uint32_t>(seen.size());
  }
  std::vector<IntervalRow> rows;
  rows.reserve(tl.samples.size());
  for (const Sample& s : tl.samples) {
    if (s.interval_ns == 0) continue;  // degenerate final sample
    IntervalRow r;
    r.begin = s.begin();
    r.end = s.t;
    // Host-visible data rate: device-level byte counters only. nand.*
    // would double-count GC-amplified media traffic and laneN.* the
    // per-lane split of the same bytes.
    r.write_mibps = MiBps(CounterOr(s, "zns.bytes_written") +
                              CounterOr(s, "conv.bytes_written"),
                          r.interval_ns());
    r.read_mibps = MiBps(
        CounterOr(s, "zns.bytes_read") + CounterOr(s, "conv.bytes_read"),
        r.interval_ns());
    r.iops = CounterOr(s, "qp.completions") / (r.interval_ns() / 1e9);
    if (auto it = s.gauges.find("qp.inflight"); it != s.gauges.end()) {
      r.qd = it->second;
    }
    if (num_dies > 0) {
      // busy_ns is exact per window; clip each window to the interval
      // proportionally to its overlap.
      double busy = 0;
      for (const DieBusy& d : tl.die_busy) {
        std::uint64_t ov = OverlapNs(r.begin, r.end, d.t, d.end());
        if (ov == 0) continue;
        busy += d.dur == 0 ? static_cast<double>(d.busy_ns)
                           : static_cast<double>(d.busy_ns) *
                                 (static_cast<double>(ov) /
                                  static_cast<double>(d.dur));
      }
      r.die_util = busy / (static_cast<double>(num_dies) * r.interval_ns());
    }
    for (const ZoneEvent& e : tl.zone_events) {
      if (e.t >= r.begin && e.t < r.end) ++r.zone_transitions;
    }
    for (const Window& w : tl.windows) {
      // Zero-duration windows (media.error) count as point events inside
      // the interval; give them 1 ns so they register as a cause.
      std::uint64_t ov =
          w.dur == 0 ? ((w.t >= r.begin && w.t < r.end) ? 1 : 0)
                     : OverlapNs(r.begin, r.end, w.t, w.end());
      if (ov > 0) r.window_ns[w.kind] += ov;
    }
    rows.push_back(std::move(r));
  }
  return rows;
}

std::vector<Dip> FindDips(const std::vector<IntervalRow>& rows,
                          double threshold_frac) {
  std::vector<double> rates;
  for (const IntervalRow& r : rows) {
    double tp = r.write_mibps + r.read_mibps;
    if (tp > 0) rates.push_back(tp);
  }
  std::vector<Dip> dips;
  if (rates.size() < 3) return dips;  // too short a run to call a dip
  std::sort(rates.begin(), rates.end());
  double median = rates[rates.size() / 2];
  double threshold = threshold_frac * median;
  for (const IntervalRow& r : rows) {
    double tp = r.write_mibps + r.read_mibps;
    if (tp >= threshold) continue;
    if (tp == 0 && r.window_ns.empty()) continue;  // idle, not a dip
    Dip d;
    d.row = r;
    d.throughput_mibps = tp;
    d.median_mibps = median;
    d.causes.assign(r.window_ns.begin(), r.window_ns.end());
    std::sort(d.causes.begin(), d.causes.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second > b.second
                                            : a.first < b.first;
              });
    dips.push_back(std::move(d));
  }
  return dips;
}

std::string ToChromeTrace(const TbTimeline& tl,
                          const std::vector<IntervalRow>& rows) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&out, &first](const std::string& ev) {
    if (!first) out += ",";
    first = false;
    out += ev;
  };
  char buf[256];
  for (const IntervalRow& r : rows) {
    // One counter event per track at the interval's start; Chrome's ts is
    // microseconds.
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"throughput_MiBps\",\"ph\":\"C\",\"pid\":1,"
                  "\"ts\":%.3f,\"args\":{\"write\":%.3f,\"read\":%.3f}}",
                  static_cast<double>(r.begin) / 1e3, r.write_mibps,
                  r.read_mibps);
    emit(buf);
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"queue_depth\",\"ph\":\"C\",\"pid\":1,"
                  "\"ts\":%.3f,\"args\":{\"qd\":%.1f}}",
                  static_cast<double>(r.begin) / 1e3, r.qd);
    emit(buf);
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"die_util\",\"ph\":\"C\",\"pid\":1,"
                  "\"ts\":%.3f,\"args\":{\"util\":%.4f}}",
                  static_cast<double>(r.begin) / 1e3, r.die_util);
    emit(buf);
  }
  for (const Window& w : tl.windows) {
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":\"%s\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"a\":%lld,"
                  "\"b\":%lld}}",
                  w.kind.c_str(), w.kind.c_str(),
                  static_cast<double>(w.t) / 1e3,
                  static_cast<double>(w.dur) / 1e3,
                  static_cast<long long>(w.a), static_cast<long long>(w.b));
    emit(buf);
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace zstor::zmon
