#!/usr/bin/env python3
"""Validates a bench --json results document against the DESIGN.md §7
schema. Stdlib only; used by CI and by hand:

    ./tools/validate_results.py BENCH_fig2.json [more.json ...]

Exit status 0 when every document conforms, 1 otherwise (violations on
stderr)."""
import json
import math
import sys

POINT_NUMBER_FIELDS = ("x", "value")
POINT_NULLABLE_FIELDS = ("mean_ns", "p50_ns", "p95_ns", "p99_ns")


def fail(path, msg, errors):
    errors.append(f"{path}: {msg}")


def validate_point(path, i, j, point, errors):
    where = f"{path}: series[{i}].points[{j}]"
    if not isinstance(point, dict):
        return fail(where, "not an object", errors)
    for key in POINT_NUMBER_FIELDS:
        v = point.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            fail(where, f"'{key}' must be a number, got {v!r}", errors)
    samples = point.get("samples")
    if not isinstance(samples, int) or isinstance(samples, bool) or samples < 0:
        fail(where, f"'samples' must be a non-negative int, got {samples!r}",
             errors)
    if "label" in point and not isinstance(point["label"], str):
        fail(where, "'label' must be a string", errors)
    for key in POINT_NULLABLE_FIELDS:
        if key not in point:
            fail(where, f"missing '{key}' (null when absent, never omitted)",
                 errors)
            continue
        v = point[key]
        if v is None:
            continue
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            fail(where, f"'{key}' must be a number or null, got {v!r}", errors)
        elif not math.isfinite(v):
            fail(where, f"'{key}' must be finite, got {v!r}", errors)


def validate_document(path, doc, errors):
    if not isinstance(doc, dict):
        return fail(path, "top level is not an object", errors)
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        fail(path, "'bench' must be a non-empty string", errors)
    if doc.get("schema_version") != 1:
        fail(path, f"'schema_version' must be 1, got "
                   f"{doc.get('schema_version')!r}", errors)
    config = doc.get("config")
    if not isinstance(config, dict):
        fail(path, "'config' must be an object", errors)
    else:
        for k, v in config.items():
            if not isinstance(v, (str, int, float)) or isinstance(v, bool):
                fail(path, f"config['{k}'] must be a string or number", errors)
    series = doc.get("series")
    if not isinstance(series, list):
        return fail(path, "'series' must be an array", errors)
    seen = set()
    for i, s in enumerate(series):
        if not isinstance(s, dict):
            fail(path, f"series[{i}] is not an object", errors)
            continue
        name = s.get("name")
        if not isinstance(name, str) or not name:
            fail(path, f"series[{i}].name must be a non-empty string", errors)
        elif name in seen:
            fail(path, f"duplicate series name '{name}'", errors)
        else:
            seen.add(name)
        if not isinstance(s.get("unit"), str):
            fail(path, f"series[{i}].unit must be a string", errors)
        points = s.get("points")
        if not isinstance(points, list):
            fail(path, f"series[{i}].points must be an array", errors)
            continue
        for j, p in enumerate(points):
            validate_point(path, i, j, p, errors)


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    errors = []
    for path in argv[1:]:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            errors.append(f"{path}: {e}")
            continue
        validate_document(path, doc, errors)
        if not errors:
            n_series = len(doc.get("series", []))
            n_points = sum(len(s.get("points", []))
                           for s in doc.get("series", [])
                           if isinstance(s, dict))
            print(f"{path}: ok ({doc.get('bench')}, {n_series} series, "
                  f"{n_points} points)")
    for e in errors:
        print(e, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
