#!/usr/bin/env python3
"""Validates bench machine-readable output against the DESIGN.md §7/§10
schemas. Stdlib only; used by CI and by hand:

    ./tools/validate_results.py BENCH_fig2.json run.jsonl [more ...]

Three document kinds are auto-detected by shape:

  * --json results documents (top-level object with "bench"/"series")
  * --logpages documents (top-level array of {label, logpages} entries;
    each SMART page must carry the split host_rejects/media_errors
    counters and the fault/health fields — the pre-split 'io_errors'
    field is rejected)
  * --timeline JSONL streams (first line is an object with a "type"
    member; every line must be a timeline record — sample / zone_state /
    die_busy / window — conforming to DESIGN.md §10)

Exit status 0 when every document conforms, 1 otherwise (violations on
stderr)."""
import json
import math
import sys

POINT_NUMBER_FIELDS = ("x", "value")
POINT_NULLABLE_FIELDS = ("mean_ns", "p50_ns", "p95_ns", "p99_ns")

# bench_simcore's --json doubles as the engine's perf-regression
# baseline (EXPERIMENTS.md): these series/labels and config keys must be
# present, with strictly positive events/sec.
SIMCORE_REQUIRED_SERIES = {
    "simcore_events_per_sec":
        ("event_scheduling", "coroutine_pingpong", "lane_handoff"),
    "simcore_allocs_per_event":
        ("event_scheduling", "coroutine_pingpong", "lane_handoff"),
}
SIMCORE_REQUIRED_CONFIG = (
    "counter_min_time_s",
    "seed_event_scheduling_meps",
    "seed_coroutine_pingpong_meps",
    "seed_lane_handoff_meps",
)

# bench_multidev's --json carries the multi-device scaling acceptance
# numbers: the striped stack must scale appends near-linearly with the
# device count at fixed per-device queue depth, and each throughput point
# must break down into one `parts` entry per device (schema v2).
MULTIDEV_REQUIRED_SERIES = (
    "multidev_append_kiops",
    "multidev_read_kiops",
    "multidev_append_scaling",
    "multidev_read_scaling",
    "multidev_qd_append_kiops",
)
MULTIDEV_REQUIRED_CONFIG = ("profile", "stack", "request_bytes",
                            "append_per_device_qd", "read_per_device_qd")
# device count -> minimum append scaling ratio vs one device.
MULTIDEV_MIN_APPEND_SCALING = {2: 1.8, 4: 3.2}

# bench_crash's --json is the crash/recovery acceptance document
# (DESIGN.md §11): every sweep must be present, no point may report a
# silent corruption, and recovery time must be real (strictly positive)
# exactly when crashes were injected.
CRASH_REQUIRED_SERIES = (
    "zns_recovery_ms_vs_crashes",
    "zns_torn_pages_vs_crashes",
    "zns_crash_lost_mib_vs_crashes",
    "zns_verified_mib_vs_crashes",
    "zns_silent_corruptions_vs_crashes",
    "zns_replayed_dupes_vs_crashes",
    "zns_verified_mib_vs_util",
    "zns_crash_lost_mib_vs_util",
    "zns_torn_pages_vs_util",
    "zns_silent_corruptions_vs_util",
    "conv_recovery_ms_vs_journal_interval",
    "conv_replay_entries_vs_journal_interval",
    "conv_wa_vs_journal_interval",
    "conv_crash_lost_units_vs_journal_interval",
    "conv_silent_corruptions_vs_journal_interval",
)
CRASH_REQUIRED_CONFIG = ("retry_policy", "zns_zones_filled")

# bench_kv's --json is the zkv acceptance document (DESIGN.md §13): the
# YCSB mixes, the placement A/B and its ratio, the compaction-
# interference point, and the mid-compaction crash must all be present;
# no point may report a silent corruption, and lifetime placement must
# not make write amplification worse than placement-off.
KV_REQUIRED_SERIES = (
    "kv_ycsb_kiops",
    "kv_value_size_kiops",
    "kv_skew_kiops",
    "kv_wa_placement",
    "kv_wa_placement_ratio",
    "kv_interference_read_p99_us",
    "kv_crash_silent_corruptions",
    "kv_crash_recovery_ms",
    "kv_crash_wal_replayed",
)
KV_REQUIRED_CONFIG = ("profile", "records", "value_bytes", "theta")
# wa_off / wa_on: >= 1 means hot/cold placement reduced (or matched)
# write amplification; below this floor the tentpole claim is broken.
KV_MIN_PLACEMENT_RATIO = 1.0

# Required SMART counters (nvme::SmartLog): activity, the host_rejects /
# media_errors split, and the fault-model health fields.
SMART_REQUIRED_FIELDS = (
    "host_reads", "host_writes", "bytes_read", "bytes_written",
    "host_rejects", "media_errors", "read_faults", "write_faults",
    "retired_blocks", "spare_blocks_used", "spare_blocks_total",
    "media_read_retries", "zones_degraded_readonly", "zones_failed_offline",
)
SMART_RETIRED_FIELDS = ("io_errors",)  # split into the two fields above
ZONE_ENTRY_REQUIRED_FIELDS = (
    "zone", "state", "write_pointer", "cap_bytes", "retired_blocks",
)


def fail(path, msg, errors):
    errors.append(f"{path}: {msg}")


def validate_point(path, i, j, point, errors, schema_version=1):
    where = f"{path}: series[{i}].points[{j}]"
    if not isinstance(point, dict):
        return fail(where, "not an object", errors)
    if "wa" in point:
        if schema_version < 3:
            fail(where, "'wa' requires schema_version >= 3", errors)
        wa = point["wa"]
        if not isinstance(wa, (int, float)) or isinstance(wa, bool) \
                or not math.isfinite(wa) or wa < 1.0:
            fail(where, f"'wa' must be a finite number >= 1.0, got {wa!r}",
                 errors)
    if "parts" in point:
        if schema_version < 2:
            fail(where, "'parts' requires schema_version >= 2", errors)
        parts = point["parts"]
        if not isinstance(parts, list) or not parts:
            fail(where, f"'parts' must be a non-empty array, got {parts!r}",
                 errors)
        else:
            for k, v in enumerate(parts):
                if not isinstance(v, (int, float)) or isinstance(v, bool) \
                        or not math.isfinite(v):
                    fail(where, f"parts[{k}] must be a finite number, "
                                f"got {v!r}", errors)
    for key in POINT_NUMBER_FIELDS:
        v = point.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            fail(where, f"'{key}' must be a number, got {v!r}", errors)
    samples = point.get("samples")
    if not isinstance(samples, int) or isinstance(samples, bool) or samples < 0:
        fail(where, f"'samples' must be a non-negative int, got {samples!r}",
             errors)
    if "label" in point and not isinstance(point["label"], str):
        fail(where, "'label' must be a string", errors)
    for key in POINT_NULLABLE_FIELDS:
        if key not in point:
            fail(where, f"missing '{key}' (null when absent, never omitted)",
                 errors)
            continue
        v = point[key]
        if v is None:
            continue
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            fail(where, f"'{key}' must be a number or null, got {v!r}", errors)
        elif not math.isfinite(v):
            fail(where, f"'{key}' must be finite, got {v!r}", errors)


def validate_document(path, doc, errors):
    if not isinstance(doc, dict):
        return fail(path, "top level is not an object", errors)
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        fail(path, "'bench' must be a non-empty string", errors)
    schema_version = doc.get("schema_version")
    if schema_version not in (1, 2, 3):
        fail(path, f"'schema_version' must be 1, 2 or 3, got "
                   f"{schema_version!r}", errors)
        schema_version = 1
    config = doc.get("config")
    if not isinstance(config, dict):
        fail(path, "'config' must be an object", errors)
    else:
        for k, v in config.items():
            if not isinstance(v, (str, int, float)) or isinstance(v, bool):
                fail(path, f"config['{k}'] must be a string or number", errors)
    meta = doc.get("meta")
    if meta is not None:
        # Environment facts (wall_ms etc.), never experiment data: numbers
        # and strings only. compare_results.py indexes these as
        # "meta.<key>" points.
        if not isinstance(meta, dict):
            fail(path, "'meta' must be an object", errors)
        else:
            for k, v in meta.items():
                if not isinstance(v, (str, int, float)) or isinstance(v, bool):
                    fail(path, f"meta['{k}'] must be a string or number",
                         errors)
    series = doc.get("series")
    if not isinstance(series, list):
        return fail(path, "'series' must be an array", errors)
    seen = set()
    for i, s in enumerate(series):
        if not isinstance(s, dict):
            fail(path, f"series[{i}] is not an object", errors)
            continue
        name = s.get("name")
        if not isinstance(name, str) or not name:
            fail(path, f"series[{i}].name must be a non-empty string", errors)
        elif name in seen:
            fail(path, f"duplicate series name '{name}'", errors)
        else:
            seen.add(name)
        if not isinstance(s.get("unit"), str):
            fail(path, f"series[{i}].unit must be a string", errors)
        points = s.get("points")
        if not isinstance(points, list):
            fail(path, f"series[{i}].points must be an array", errors)
            continue
        for j, p in enumerate(points):
            validate_point(path, i, j, p, errors, schema_version)
    if doc.get("bench") == "bench_simcore":
        validate_simcore(path, doc, errors)
    if doc.get("bench") == "bench_multidev":
        validate_multidev(path, doc, errors)
    if doc.get("bench") == "bench_crash":
        validate_crash(path, doc, errors)
    if doc.get("bench") == "bench_kv":
        validate_kv(path, doc, errors)


def validate_simcore(path, doc, errors):
    """bench_simcore documents carry the engine perf baseline."""
    config = doc.get("config")
    if isinstance(config, dict):
        for key in SIMCORE_REQUIRED_CONFIG:
            if key not in config:
                fail(path, f"simcore: missing config['{key}']", errors)
    by_name = {s.get("name"): s for s in doc.get("series", [])
               if isinstance(s, dict)}
    for name, labels in SIMCORE_REQUIRED_SERIES.items():
        s = by_name.get(name)
        if s is None:
            fail(path, f"simcore: missing series '{name}'", errors)
            continue
        points = {p.get("label"): p for p in s.get("points", [])
                  if isinstance(p, dict)}
        for label in labels:
            p = points.get(label)
            if p is None:
                fail(path, f"simcore: series '{name}' missing point "
                           f"'{label}'", errors)
                continue
            v = p.get("value")
            if name == "simcore_events_per_sec" and \
                    isinstance(v, (int, float)) and v <= 0:
                fail(path, f"simcore: {name}/{label} must be > 0, got {v!r}",
                     errors)


def validate_multidev(path, doc, errors):
    """bench_multidev documents carry the striping acceptance numbers."""
    config = doc.get("config")
    if isinstance(config, dict):
        for key in MULTIDEV_REQUIRED_CONFIG:
            if key not in config:
                fail(path, f"multidev: missing config['{key}']", errors)
    by_name = {s.get("name"): s for s in doc.get("series", [])
               if isinstance(s, dict)}
    for name in MULTIDEV_REQUIRED_SERIES:
        if name not in by_name:
            fail(path, f"multidev: missing series '{name}'", errors)
    # Throughput points break down per device: len(parts) == device count.
    for name in ("multidev_append_kiops", "multidev_read_kiops"):
        s = by_name.get(name)
        if s is None:
            continue
        for p in s.get("points", []):
            if not isinstance(p, dict):
                continue
            x, parts = p.get("x"), p.get("parts")
            if not isinstance(parts, list):
                fail(path, f"multidev: {name} x={x!r} missing 'parts'",
                     errors)
            elif isinstance(x, (int, float)) and len(parts) != int(x):
                fail(path, f"multidev: {name} x={x!r} has {len(parts)} "
                           "parts (expected one per device)", errors)
    # The point of the exercise: near-linear append scaling.
    s = by_name.get("multidev_append_scaling")
    if s is not None:
        ratios = {p.get("x"): p.get("value") for p in s.get("points", [])
                  if isinstance(p, dict)}
        for ndev, minimum in MULTIDEV_MIN_APPEND_SCALING.items():
            v = ratios.get(ndev)
            if v is None:
                fail(path, f"multidev: no scaling point for {ndev} devices",
                     errors)
            elif isinstance(v, (int, float)) and v < minimum:
                fail(path, f"multidev: append scaling at {ndev} devices is "
                           f"{v} (< {minimum})", errors)


def validate_crash(path, doc, errors):
    """bench_crash documents carry the crash/recovery acceptance numbers."""
    config = doc.get("config")
    if isinstance(config, dict):
        for key in CRASH_REQUIRED_CONFIG:
            if key not in config:
                fail(path, f"crash: missing config['{key}']", errors)
    by_name = {s.get("name"): s for s in doc.get("series", [])
               if isinstance(s, dict)}
    for name in CRASH_REQUIRED_SERIES:
        if name not in by_name:
            fail(path, f"crash: missing series '{name}'", errors)

    def points(name):
        s = by_name.get(name)
        if s is None:
            return []
        return [p for p in s.get("points", []) if isinstance(p, dict)]

    # The whole point of the bench: flushed data survives byte-exact.
    for name in CRASH_REQUIRED_SERIES:
        if "silent_corruptions" not in name:
            continue
        for p in points(name):
            v = p.get("value")
            if isinstance(v, (int, float)) and v != 0:
                fail(path, f"crash: {name} x={p.get('x')!r} reports "
                           f"{v!r} silent corruption(s)", errors)
    # Recovery time is real exactly when crashes were injected: zero at
    # the crash-free baseline, strictly positive everywhere else.
    for p in points("zns_recovery_ms_vs_crashes"):
        x, v = p.get("x"), p.get("value")
        if not isinstance(x, (int, float)) or \
                not isinstance(v, (int, float)):
            continue
        if x == 0 and v != 0:
            fail(path, f"crash: recovery time {v!r} ms without a crash",
                 errors)
        elif x > 0 and v <= 0:
            fail(path, f"crash: {x:.0f} crash(es) but non-positive "
                       f"recovery time {v!r} ms", errors)
    for p in points("conv_recovery_ms_vs_journal_interval"):
        v = p.get("value")
        if isinstance(v, (int, float)) and v <= 0:
            fail(path, f"crash: conv recovery time must be > 0, got {v!r}",
                 errors)
    # Journal/checkpoint programs only ever add write amplification.
    for p in points("conv_wa_vs_journal_interval"):
        v = p.get("value")
        if isinstance(v, (int, float)) and v < 1.0:
            fail(path, f"crash: conv write amplification {v!r} < 1", errors)


def validate_kv(path, doc, errors):
    """bench_kv documents carry the zkv LSM acceptance numbers."""
    config = doc.get("config")
    if isinstance(config, dict):
        for key in KV_REQUIRED_CONFIG:
            if key not in config:
                fail(path, f"kv: missing config['{key}']", errors)
    by_name = {s.get("name"): s for s in doc.get("series", [])
               if isinstance(s, dict)}
    for name in KV_REQUIRED_SERIES:
        if name not in by_name:
            fail(path, f"kv: missing series '{name}'", errors)

    def points(name):
        s = by_name.get(name)
        if s is None:
            return []
        return [p for p in s.get("points", []) if isinstance(p, dict)]

    # WAL replay must reconstruct the store byte-exact: any silent
    # corruption classification is a hard failure.
    for p in points("kv_crash_silent_corruptions"):
        v = p.get("value")
        if isinstance(v, (int, float)) and v != 0:
            fail(path, f"kv: crash point '{p.get('label')}' reports "
                       f"{v!r} silent corruption(s)", errors)
    for p in points("kv_crash_recovery_ms"):
        v = p.get("value")
        if isinstance(v, (int, float)) and v <= 0:
            fail(path, f"kv: crash recovery time must be > 0, got {v!r}",
                 errors)
    # Placement A/B: both arms must attach a per-point wa, and the ratio
    # (wa_off / wa_on) must clear the floor — the tentpole claim.
    placement = {p.get("label"): p for p in points("kv_wa_placement")}
    for label in ("on", "off"):
        p = placement.get(label)
        if p is None:
            fail(path, f"kv: kv_wa_placement missing point '{label}'",
                 errors)
        elif "wa" not in p:
            fail(path, f"kv: kv_wa_placement '{label}' missing 'wa'", errors)
    for p in points("kv_wa_placement_ratio"):
        v = p.get("value")
        if isinstance(v, (int, float)) and v < KV_MIN_PLACEMENT_RATIO:
            fail(path, f"kv: placement WA ratio {v!r} is below the "
                       f"{KV_MIN_PLACEMENT_RATIO} floor (placement made "
                       "write amplification worse)", errors)
    # Every throughput point carries its cost: wa attached throughout.
    for name in ("kv_ycsb_kiops", "kv_value_size_kiops", "kv_skew_kiops"):
        for p in points(name):
            if "wa" not in p:
                fail(path, f"kv: {name} '{p.get('label') or p.get('x')}' "
                           "missing 'wa'", errors)


def _counter(where, obj, key, errors):
    """Fetches a required non-negative numeric counter; None on violation."""
    v = obj.get(key)
    if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
        fail(where, f"'{key}' must be a non-negative number, got {v!r}",
             errors)
        return None
    return v


def validate_smart(where, smart, errors):
    if not isinstance(smart, dict):
        return fail(where, "'smart' must be an object", errors)
    for key in SMART_REQUIRED_FIELDS:
        _counter(where, smart, key, errors)
    for key in SMART_RETIRED_FIELDS:
        if key in smart:
            fail(where, f"retired field '{key}' present (split into "
                        "host_rejects/media_errors)", errors)
    used = smart.get("spare_blocks_used")
    total = smart.get("spare_blocks_total")
    if isinstance(used, (int, float)) and isinstance(total, (int, float)) \
            and used > total:
        fail(where, f"spare_blocks_used ({used}) exceeds spare_blocks_total "
                    f"({total})", errors)


def validate_zone_report(where, report, errors):
    if not isinstance(report, dict):
        return fail(where, "'zone_report' must be an object", errors)
    zones = report.get("zones")
    if not isinstance(zones, list):
        return fail(where, "'zone_report.zones' must be an array", errors)
    ro = 0
    off = 0
    for j, z in enumerate(zones):
        zwhere = f"{where}.zones[{j}]"
        if not isinstance(z, dict):
            fail(zwhere, "not an object", errors)
            continue
        for key in ZONE_ENTRY_REQUIRED_FIELDS:
            if key not in z:
                fail(zwhere, f"missing '{key}'", errors)
        state = z.get("state")
        if state == "ReadOnly":
            ro += 1
        elif state == "Offline":
            off += 1
    for key, derived in (("read_only_zones", ro), ("offline_zones", off)):
        v = _counter(where, report, key, errors)
        if v is not None and v != derived:
            fail(where, f"'{key}' is {v} but {derived} zone(s) carry that "
                        "state", errors)


def validate_logpages_document(path, doc, errors):
    """--logpages output: [{label, logpages: {smart, zone_report?, ...}}]."""
    for i, entry in enumerate(doc):
        where = f"{path}: [{i}]"
        if not isinstance(entry, dict):
            fail(where, "not an object", errors)
            continue
        if not isinstance(entry.get("label"), str) or not entry["label"]:
            fail(where, "'label' must be a non-empty string", errors)
        pages = entry.get("logpages")
        if not isinstance(pages, dict):
            fail(where, "'logpages' must be an object", errors)
            continue
        if "smart" not in pages:
            fail(where, "missing 'smart' log page", errors)
        else:
            validate_smart(f"{where}.smart", pages["smart"], errors)
        if "zone_report" in pages:
            validate_zone_report(f"{where}.zone_report",
                                 pages["zone_report"], errors)


# Timeline records (DESIGN.md §10): type -> required numeric fields.
# Every record additionally carries "t" (virtual ns) and "tb" (testbed
# label, string).
TIMELINE_REQUIRED_NUMBERS = {
    "sample": ("interval_ns",),
    "zone_state": ("lane", "zone"),
    "die_busy": ("dur", "lane", "die", "ops", "busy_ns"),
    "window": ("dur", "lane"),
}
TIMELINE_HIST_FIELDS = ("count", "mean_ns", "p50_ns", "p95_ns", "p99_ns",
                        "max_ns")
ZONE_STATES = ("Empty", "ImplicitlyOpened", "ExplicitlyOpened", "Closed",
               "Full", "ReadOnly", "Offline")


def validate_timeline_record(where, rec, errors):
    rtype = rec.get("type")
    if rtype not in TIMELINE_REQUIRED_NUMBERS:
        return fail(where, f"unknown timeline record type {rtype!r}", errors)
    _counter(where, rec, "t", errors)
    if not isinstance(rec.get("tb"), str):
        fail(where, f"'tb' must be a string, got {rec.get('tb')!r}", errors)
    for key in TIMELINE_REQUIRED_NUMBERS[rtype]:
        _counter(where, rec, key, errors)
    if rtype == "sample":
        for key in ("counters", "gauges"):
            m = rec.get(key)
            if not isinstance(m, dict):
                fail(where, f"'{key}' must be an object", errors)
                continue
            for k, v in m.items():
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    fail(where, f"{key}['{k}'] must be a number", errors)
        hists = rec.get("hist")
        if not isinstance(hists, dict):
            fail(where, "'hist' must be an object", errors)
        else:
            for name, h in hists.items():
                hwhere = f"{where}: hist['{name}']"
                if not isinstance(h, dict):
                    fail(hwhere, "not an object", errors)
                    continue
                for key in TIMELINE_HIST_FIELDS:
                    _counter(hwhere, h, key, errors)
    elif rtype == "zone_state":
        for key in ("from", "to"):
            if rec.get(key) not in ZONE_STATES:
                fail(where, f"'{key}' must be a zone state name, got "
                            f"{rec.get(key)!r}", errors)
    elif rtype == "window":
        if not isinstance(rec.get("kind"), str) or not rec["kind"]:
            fail(where, "'kind' must be a non-empty string", errors)


def validate_timeline_file(path, lines, errors):
    """--timeline output: one §10 record per line."""
    records = 0
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        where = f"{path}:{lineno}"
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(where, str(e), errors)
            continue
        if not isinstance(rec, dict):
            fail(where, "not an object", errors)
            continue
        records += 1
        validate_timeline_record(where, rec, errors)
    if records == 0:
        fail(path, "no timeline records", errors)
    return records


def looks_like_timeline(text):
    """JSONL whose first non-blank line is an object with a "type" key."""
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            first = json.loads(line)
        except json.JSONDecodeError:
            return False
        return isinstance(first, dict) and "type" in first
    return False


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    errors = []
    for path in argv[1:]:
        try:
            with open(path) as f:
                text = f.read()
        except OSError as e:
            errors.append(f"{path}: {e}")
            continue
        if looks_like_timeline(text):
            before = len(errors)
            n = validate_timeline_file(path, text.splitlines(), errors)
            if len(errors) == before:
                print(f"{path}: ok (timeline, {n} record(s))")
            continue
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as e:
            errors.append(f"{path}: {e}")
            continue
        before = len(errors)
        if isinstance(doc, list):
            validate_logpages_document(path, doc, errors)
            if len(errors) == before:
                print(f"{path}: ok (log pages, {len(doc)} testbed(s))")
            continue
        validate_document(path, doc, errors)
        if len(errors) == before:
            n_series = len(doc.get("series", []))
            n_points = sum(len(s.get("points", []))
                           for s in doc.get("series", [])
                           if isinstance(s, dict))
            print(f"{path}: ok ({doc.get('bench')}, {n_series} series, "
                  f"{n_points} points)")
    for e in errors:
        print(e, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
