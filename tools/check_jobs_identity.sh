#!/bin/sh
# Verifies the two engine determinism contracts:
#
#  1. ParallelSweep (harness/parallel.h): a figure bench must produce
#     byte-identical stdout and --json output for any --jobs value.
#  2. The parallel discrete-event engine (sim/parallel_sim.h): a bench
#     must produce byte-identical --json, --trace and --timeline output
#     for every --sim-threads value >= 1 (N=1 runs the same bounded
#     window schedule serially). Single-device benches pass trivially —
#     they use the classic engine regardless of the flag.
#
# Usage:
#
#     check_jobs_identity.sh <bench-binary> [jobs_a] [jobs_b]
#
# Extra bench arguments (e.g. --devices=4 for bench_multidev) can be
# passed via the ZID_BENCH_ARGS environment variable.
#
# The JSON results carry a "wall_ms" self-timing meta field that is real
# elapsed time, not simulation output — it is normalized away before
# comparison everywhere.
#
# Exit 0 when all outputs match byte-for-byte, 1 otherwise.
set -eu

bench="$1"
jobs_a="${2:-1}"
jobs_b="${3:-4}"
extra="${ZID_BENCH_ARGS:-}"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# Strips self-timed wall-clock meta (varies run to run by construction).
normalize_json() {
  sed -e 's/"wall_ms":[0-9.eE+-]*/"wall_ms":0/g' "$1" > "$2"
}

fail=0

# ---- contract 1: --jobs identity ------------------------------------
# shellcheck disable=SC2086  # extra args are intentionally word-split
"$bench" $extra --jobs="$jobs_a" --json="$tmpdir/a.json" > "$tmpdir/a.txt"
# shellcheck disable=SC2086
"$bench" $extra --jobs="$jobs_b" --json="$tmpdir/b.json" > "$tmpdir/b.txt"
normalize_json "$tmpdir/a.json" "$tmpdir/a.json.norm"
normalize_json "$tmpdir/b.json" "$tmpdir/b.json.norm"

if ! cmp -s "$tmpdir/a.json.norm" "$tmpdir/b.json.norm"; then
  echo "FAIL: --json differs between --jobs=$jobs_a and --jobs=$jobs_b" >&2
  fail=1
fi
if ! cmp -s "$tmpdir/a.txt" "$tmpdir/b.txt"; then
  echo "FAIL: stdout differs between --jobs=$jobs_a and --jobs=$jobs_b" >&2
  fail=1
fi

# ---- contract 2: --sim-threads identity -----------------------------
first=""
for n in 1 2 4; do
  # shellcheck disable=SC2086
  "$bench" $extra --sim-threads="$n" \
    --json="$tmpdir/st$n.json" --trace="$tmpdir/st$n.trace" \
    --timeline="$tmpdir/st$n.timeline" > "$tmpdir/st$n.txt"
  normalize_json "$tmpdir/st$n.json" "$tmpdir/st$n.json.norm"
  if [ -z "$first" ]; then
    first="$n"
    continue
  fi
  for out in json.norm trace timeline txt; do
    if ! cmp -s "$tmpdir/st$first.$out" "$tmpdir/st$n.$out"; then
      echo "FAIL: $out differs between --sim-threads=$first and --sim-threads=$n" >&2
      fail=1
    fi
  done
done

if [ "$fail" -eq 0 ]; then
  echo "ok: $(basename "$bench") byte-identical at --jobs=$jobs_a/$jobs_b and --sim-threads=1/2/4"
fi
exit "$fail"
