#!/bin/sh
# Verifies the ParallelSweep determinism contract (harness/parallel.h):
# a figure bench must produce byte-identical stdout and --json output
# for any --jobs value. Usage:
#
#     check_jobs_identity.sh <bench-binary> [jobs_a] [jobs_b]
#
# Exit 0 when stdout and JSON match byte-for-byte, 1 otherwise.
set -eu

bench="$1"
jobs_a="${2:-1}"
jobs_b="${3:-4}"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

"$bench" --jobs="$jobs_a" --json="$tmpdir/a.json" > "$tmpdir/a.txt"
"$bench" --jobs="$jobs_b" --json="$tmpdir/b.json" > "$tmpdir/b.txt"

fail=0
if ! cmp -s "$tmpdir/a.json" "$tmpdir/b.json"; then
  echo "FAIL: --json differs between --jobs=$jobs_a and --jobs=$jobs_b" >&2
  fail=1
fi
if ! cmp -s "$tmpdir/a.txt" "$tmpdir/b.txt"; then
  echo "FAIL: stdout differs between --jobs=$jobs_a and --jobs=$jobs_b" >&2
  fail=1
fi
if [ "$fail" -eq 0 ]; then
  echo "ok: $(basename "$bench") byte-identical at --jobs=$jobs_a/$jobs_b"
fi
exit "$fail"
