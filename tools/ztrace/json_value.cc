#include "ztrace/json_value.h"

#include <cstdlib>

namespace zstor::ztrace {

namespace {

/// Appends a Unicode code point as UTF-8.
void AppendUtf8(std::string& out, unsigned int cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

/// Validates the RFC 8259 number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?
/// ([eE][+-]?[0-9]+)? — strtod alone is laxer (leading zeros, hex, "+1").
bool MatchesJsonNumberGrammar(std::string_view s) {
  std::size_t i = 0;
  auto digits = [&s, &i]() {
    std::size_t n = 0;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i, ++n;
    return n;
  };
  if (i < s.size() && s[i] == '-') ++i;
  if (i >= s.size()) return false;
  if (s[i] == '0') {
    ++i;
  } else if (s[i] >= '1' && s[i] <= '9') {
    digits();
  } else {
    return false;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    if (digits() == 0) return false;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    if (digits() == 0) return false;
  }
  return i == s.size();
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> ParseDocument() {
    SkipWs();
    JsonValue v;
    if (!ParseValue(v)) return std::nullopt;
    SkipWs();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool ParseValue(JsonValue& out) {
    if (AtEnd()) return false;
    switch (Peek()) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': {
        out.type_ = JsonValue::Type::kString;
        return ParseString(out.string_);
      }
      case 't':
        out.type_ = JsonValue::Type::kBool;
        out.bool_ = true;
        return Literal("true");
      case 'f':
        out.type_ = JsonValue::Type::kBool;
        out.bool_ = false;
        return Literal("false");
      case 'n':
        out.type_ = JsonValue::Type::kNull;
        return Literal("null");
      default: return ParseNumber(out);
    }
  }

  bool ParseNumber(JsonValue& out) {
    std::size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    while (!AtEnd()) {
      char c = Peek();
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return false;
    std::string num(text_.substr(start, pos_ - start));
    if (!MatchesJsonNumberGrammar(num)) return false;
    char* end = nullptr;
    double v = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    out.type_ = JsonValue::Type::kNumber;
    out.number_ = v;
    return true;
  }

  bool ParseHex4(unsigned int& out) {
    if (pos_ + 4 > text_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned int>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned int>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned int>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    return true;
  }

  bool ParseString(std::string& out) {
    if (AtEnd() || Peek() != '"') return false;
    ++pos_;
    out.clear();
    while (true) {
      if (AtEnd()) return false;
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (AtEnd()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned int cp = 0;
            if (!ParseHex4(cp)) return false;
            // Surrogate pair: combine when a low surrogate follows.
            if (cp >= 0xD800 && cp <= 0xDBFF &&
                text_.substr(pos_, 2) == "\\u") {
              std::size_t save = pos_;
              pos_ += 2;
              unsigned int lo = 0;
              if (ParseHex4(lo) && lo >= 0xDC00 && lo <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              } else {
                pos_ = save;  // lone high surrogate: emit as-is
              }
            }
            AppendUtf8(out, cp);
            break;
          }
          default: return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control characters are invalid JSON
      } else {
        out.push_back(c);
      }
    }
  }

  bool ParseArray(JsonValue& out) {
    ++pos_;  // '['
    out.type_ = JsonValue::Type::kArray;
    SkipWs();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue elem;
      SkipWs();
      if (!ParseValue(elem)) return false;
      out.array_.push_back(std::move(elem));
      SkipWs();
      if (AtEnd()) return false;
      char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') return false;
    }
  }

  bool ParseObject(JsonValue& out) {
    ++pos_;  // '{'
    out.type_ = JsonValue::Type::kObject;
    SkipWs();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(key)) return false;
      SkipWs();
      if (AtEnd() || text_[pos_++] != ':') return false;
      SkipWs();
      JsonValue val;
      if (!ParseValue(val)) return false;
      out.object_.emplace_back(std::move(key), std::move(val));
      SkipWs();
      if (AtEnd()) return false;
      char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::optional<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number() : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string() : fallback;
}

}  // namespace zstor::ztrace
