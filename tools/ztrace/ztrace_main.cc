// ztrace: trace-analysis CLI for the simulator's JSONL span traces.
//
//   ztrace run.jsonl                  # breakdown + tails + queue depth
//   ztrace run.jsonl --chrome=out.json   # + Perfetto/chrome://tracing export
//   ztrace run.jsonl --qd             # + queue-depth change points
//
// Produce a trace with any bench or example binary:
//   ./bench/bench_fig2_latency --trace=run.jsonl
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "ztrace/analysis.h"

namespace {

using zstor::ztrace::AttributeTails;
using zstor::ztrace::CommandTrace;
using zstor::ztrace::CrashSummary;
using zstor::ztrace::ComputeQueueDepth;
using zstor::ztrace::GroupByCommand;
using zstor::ztrace::LoadJsonlFile;
using zstor::ztrace::LoadResult;
using zstor::ztrace::QdTimeline;
using zstor::ztrace::StageBreakdown;
using zstor::ztrace::StageStat;
using zstor::ztrace::TailAttribution;
using zstor::ztrace::WriteChromeTrace;

const char* MatchFlag(const char* arg, const char* name) {
  std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: ztrace TRACE.jsonl [--chrome=FILE] [--qd]\n"
               "\n"
               "Analyzes a JSONL span trace produced with --trace=FILE on\n"
               "any bench binary (schema: DESIGN.md section 7).\n"
               "\n"
               "  --chrome=FILE  write a Chrome trace-event JSON export\n"
               "                 (open in Perfetto or chrome://tracing)\n"
               "  --qd           also print queue-depth change points\n");
}

double Us(double ns) { return ns / 1000.0; }

void PrintBreakdown(const std::vector<StageStat>& stages) {
  std::uint64_t grand_total = 0;
  for (const StageStat& s : stages) grand_total += s.total_ns;
  std::printf("Per-stage breakdown (all spans):\n");
  std::printf("  %-9s %-16s %10s %14s %12s %7s\n", "layer", "stage", "count",
              "total_us", "mean_us", "share");
  for (const StageStat& s : stages) {
    double share = grand_total == 0
                       ? 0.0
                       : 100.0 * static_cast<double>(s.total_ns) /
                             static_cast<double>(grand_total);
    std::printf("  %-9s %-16s %10llu %14.1f %12.3f %6.1f%%\n",
                s.layer.c_str(), s.name.c_str(),
                static_cast<unsigned long long>(s.count),
                Us(static_cast<double>(s.total_ns)),
                Us(s.mean_ns()), share);
  }
}

void PrintTails(const std::vector<TailAttribution>& tails) {
  std::printf("\nPer-op-class latency and tail attribution:\n");
  std::printf("  %-14s %8s %10s %10s %10s %10s %8s %7s  %s\n", "op",
              "cmds", "mean_us", "p50_us", "p95_us", "p99_us", "retries",
              "err%", "tail dominated by");
  for (const TailAttribution& t : tails) {
    double p95_share = 0.0;
    if (auto it = t.p95_stage_ns.find(t.p95_dominant);
        it != t.p95_stage_ns.end() && t.p95_ns > 0) {
      double tail_total = 0.0;
      for (const auto& [stage, ns] : t.p95_stage_ns) tail_total += ns;
      if (tail_total > 0) p95_share = 100.0 * it->second / tail_total;
    }
    std::printf("  %-14s %8zu %10.2f %10.2f %10.2f %10.2f %8llu %6.2f%%  "
                "p95: %s (%.0f%%), p99: %s\n",
                t.op.c_str(), t.commands, Us(t.mean_ns), Us(t.p50_ns),
                Us(t.p95_ns), Us(t.p99_ns),
                static_cast<unsigned long long>(t.retries),
                100.0 * t.error_rate(), t.p95_dominant.c_str(), p95_share,
                t.p99_dominant.c_str());
  }
  // Resilience rollup line: only when the trace has any retry activity.
  std::uint64_t retries = 0, timeouts = 0;
  std::size_t errored = 0;
  for (const TailAttribution& t : tails) {
    retries += t.retries;
    timeouts += t.timeouts;
    errored += t.errored_commands;
  }
  if (retries + timeouts + errored > 0) {
    std::printf("  host resilience: %llu retried attempt(s), %llu "
                "timeout(s), %zu command(s) surfaced an error\n",
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(timeouts), errored);
  }
  // Crash rollup line: only when the run saw a device reset.
  std::uint64_t resets = 0, dupes = 0;
  for (const TailAttribution& t : tails) {
    resets += t.device_resets;
    dupes += t.replay_dupes;
  }
  if (resets + dupes > 0) {
    std::printf("  crash resilience: %llu attempt(s) absorbed a device "
                "reset, %llu append(s) settled by wp-replay dedupe\n",
                static_cast<unsigned long long>(resets),
                static_cast<unsigned long long>(dupes));
  }
}

void PrintQdSummary(const QdTimeline& qd, bool dump_points) {
  std::printf("\nQueue depth: max=%lld, time-weighted mean=%.2f\n",
              static_cast<long long>(qd.max_qd), qd.mean_qd);
  if (dump_points) {
    std::printf("  %-16s %s\n", "ts_ns", "qd");
    for (const auto& p : qd.points) {
      std::printf("  %-16llu %lld\n",
                  static_cast<unsigned long long>(p.ts),
                  static_cast<long long>(p.qd));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string chrome_path;
  bool dump_qd = false;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = MatchFlag(argv[i], "--chrome")) {
      chrome_path = v;
    } else if (std::strcmp(argv[i], "--qd") == 0) {
      dump_qd = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      PrintUsage();
      return 0;
    } else if (trace_path.empty() && argv[i][0] != '-') {
      trace_path = argv[i];
    } else {
      std::fprintf(stderr, "ztrace: unrecognized argument '%s'\n", argv[i]);
      PrintUsage();
      return 2;
    }
  }
  if (trace_path.empty()) {
    PrintUsage();
    return 2;
  }

  LoadResult loaded = LoadJsonlFile(trace_path);
  if (loaded.records.empty()) {
    std::fprintf(stderr, "ztrace: no parsable trace events in %s\n",
                 trace_path.c_str());
    return 1;
  }
  if (loaded.bad_lines > 0) {
    std::fprintf(stderr, "ztrace: skipped %zu unparsable line(s)\n",
                 loaded.bad_lines);
  }
  if (loaded.skipped_records > 0) {
    std::fprintf(stderr,
                 "ztrace: skipped %zu non-trace record(s) (timeline "
                 "stream? analyze those with zmon)\n",
                 loaded.skipped_records);
  }

  std::vector<CommandTrace> cmds = GroupByCommand(loaded.records);
  std::uint64_t t_min = loaded.records.front().ts, t_max = 0;
  for (const auto& r : loaded.records) {
    t_min = std::min(t_min, r.ts);
    t_max = std::max(t_max, r.end());
  }
  std::printf("%zu spans, %zu commands, %.3f ms of virtual time (%s)\n\n",
              loaded.records.size(), cmds.size(),
              static_cast<double>(t_max - t_min) / 1e6, trace_path.c_str());

  PrintBreakdown(StageBreakdown(loaded.records));

  CrashSummary crashes = zstor::ztrace::SummarizeCrashes(loaded.records);
  if (crashes.any()) {
    std::printf("\nPower-loss events: %llu crash(es), %llu recovery(ies)\n",
                static_cast<unsigned long long>(crashes.power_losses),
                static_cast<unsigned long long>(crashes.recoveries));
  }

  QdTimeline qd;
  if (!cmds.empty()) {
    PrintTails(AttributeTails(cmds));
    qd = ComputeQueueDepth(cmds);
    PrintQdSummary(qd, dump_qd);
  }

  if (!chrome_path.empty()) {
    if (!WriteChromeTrace(chrome_path, loaded.records,
                          cmds.empty() ? nullptr : &qd)) {
      return 1;
    }
    std::printf("\nwrote Chrome trace export to %s\n", chrome_path.c_str());
  }
  return 0;
}
