// A small recursive-descent JSON reader for ztrace: parses the JSONL
// trace schema (telemetry::JsonlFileSink), the metrics/logpages/results
// documents, and the tool's own Chrome export (round-trip validation in
// tests). Full JSON: objects, arrays, strings with escapes, numbers,
// booleans, null. No external dependencies.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace zstor::ztrace {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one complete JSON value (surrounding whitespace allowed);
  /// nullopt on any syntax error or trailing garbage.
  static std::optional<JsonValue> Parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object() const {
    return object_;
  }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Convenience: Find(key)->number() with a default for absent/non-number.
  double NumberOr(std::string_view key, double fallback) const;
  /// Convenience: Find(key)->string() with a default.
  std::string StringOr(std::string_view key, std::string fallback) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace zstor::ztrace
