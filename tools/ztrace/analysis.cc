#include "ztrace/analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "nvme/types.h"
#include "telemetry/json.h"
#include "ztrace/json_value.h"

namespace zstor::ztrace {

namespace {

/// Decodes the opcode payload of a host.submit / qp.doorbell span.
std::string OpcodeName(std::int64_t a) {
  if (a < 0 || a > static_cast<std::int64_t>(nvme::Opcode::kDeallocate)) {
    return "unknown";
  }
  return std::string(nvme::ToString(static_cast<nvme::Opcode>(a)));
}

/// Nearest-rank quantile of a sorted sample; 0 for an empty one (callers
/// only query classes that have commands).
double SortedQuantile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return static_cast<double>(sorted[rank - 1]);
}

}  // namespace

LoadResult LoadJsonl(std::istream& in) {
  LoadResult out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::optional<JsonValue> v = JsonValue::Parse(line);
    if (!v.has_value() || !v->is_object()) {
      ++out.bad_lines;
      continue;
    }
    if (v->Find("type") != nullptr) {
      // A typed record from another stream (timeline samples, zone/die
      // state changes) — not a trace span; skip, don't fail.
      ++out.skipped_records;
      continue;
    }
    TraceRecord r;
    r.ts = static_cast<std::uint64_t>(v->NumberOr("ts", 0));
    r.dur = static_cast<std::uint64_t>(v->NumberOr("dur", 0));
    r.cmd = static_cast<std::uint64_t>(v->NumberOr("cmd", 0));
    r.layer = v->StringOr("layer", "");
    r.name = v->StringOr("name", "");
    r.a = static_cast<std::int64_t>(v->NumberOr("a", 0));
    r.b = static_cast<std::int64_t>(v->NumberOr("b", 0));
    out.records.push_back(std::move(r));
  }
  return out;
}

LoadResult LoadJsonlFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "ztrace: cannot open %s\n", path.c_str());
    return {};
  }
  return LoadJsonl(in);
}

std::vector<StageStat> StageBreakdown(const std::vector<TraceRecord>& recs) {
  std::map<std::pair<std::string, std::string>, StageStat> by_stage;
  for (const TraceRecord& r : recs) {
    StageStat& s = by_stage[{r.layer, r.name}];
    if (s.count == 0) {
      s.layer = r.layer;
      s.name = r.name;
    }
    s.count++;
    s.total_ns += r.dur;
  }
  std::vector<StageStat> out;
  out.reserve(by_stage.size());
  for (auto& [key, s] : by_stage) out.push_back(std::move(s));
  std::sort(out.begin(), out.end(), [](const StageStat& x, const StageStat& y) {
    return x.total_ns > y.total_ns;
  });
  return out;
}

std::vector<CommandTrace> GroupByCommand(
    const std::vector<TraceRecord>& recs) {
  std::vector<CommandTrace> out;
  std::unordered_map<std::uint64_t, std::size_t> index;
  for (const TraceRecord& r : recs) {
    if (r.cmd == 0) continue;
    auto [it, inserted] = index.try_emplace(r.cmd, out.size());
    if (inserted) {
      CommandTrace ct;
      ct.cmd = r.cmd;
      ct.begin = r.ts;
      ct.end = r.end();
      out.push_back(std::move(ct));
    }
    CommandTrace& ct = out[it->second];
    ct.begin = std::min(ct.begin, r.ts);
    ct.end = std::max(ct.end, r.end());
    // Resilience events are counted, not timed: a "host.retry" span
    // overlays the failed attempt's own device spans, so adding its
    // duration would double-count that attempt.
    if (r.name == "host.retry") {
      ct.retries++;
      continue;
    }
    if (r.name == "host.timeout") {
      ct.timeouts++;
      continue;
    }
    if (r.name == "host.error") {
      ct.errored = true;
      continue;
    }
    // Crash instants: counted, never timed (zero-duration markers).
    if (r.name == "host.reset") {
      ct.device_resets++;
      continue;
    }
    if (r.name == "host.replay_dupe") {
      ct.replay_dupes++;
      continue;
    }
    ct.total_ns += r.dur;
    ct.stage_ns[r.name] += r.dur;
    if (r.name == "host.submit" ||
        (r.name == "qp.doorbell" && ct.op == "unknown")) {
      ct.op = OpcodeName(r.a);
    }
  }
  return out;
}

std::vector<TailAttribution> AttributeTails(
    const std::vector<CommandTrace>& cmds) {
  std::map<std::string, std::vector<const CommandTrace*>> by_op;
  for (const CommandTrace& c : cmds) by_op[c.op].push_back(&c);

  std::vector<TailAttribution> out;
  for (auto& [op, members] : by_op) {
    TailAttribution t;
    t.op = op;
    t.commands = members.size();

    std::vector<std::uint64_t> totals;
    totals.reserve(members.size());
    double sum = 0.0;
    for (const CommandTrace* c : members) {
      totals.push_back(c->total_ns);
      sum += static_cast<double>(c->total_ns);
      t.retries += c->retries;
      t.timeouts += c->timeouts;
      t.device_resets += c->device_resets;
      t.replay_dupes += c->replay_dupes;
      if (c->retries > 0) t.retried_commands++;
      if (c->errored) t.errored_commands++;
    }
    std::sort(totals.begin(), totals.end());
    t.mean_ns = sum / static_cast<double>(totals.size());
    t.p50_ns = SortedQuantile(totals, 0.50);
    t.p95_ns = SortedQuantile(totals, 0.95);
    t.p99_ns = SortedQuantile(totals, 0.99);

    // Mean per-stage time among the commands at or beyond each quantile.
    auto attribute = [&members](double threshold_ns,
                                std::map<std::string, double>& stage_mean,
                                std::string& dominant) {
      std::size_t n = 0;
      for (const CommandTrace* c : members) {
        if (static_cast<double>(c->total_ns) < threshold_ns) continue;
        ++n;
        for (const auto& [stage, ns] : c->stage_ns) {
          stage_mean[stage] += static_cast<double>(ns);
        }
      }
      double best = -1.0;
      for (auto& [stage, ns] : stage_mean) {
        ns /= static_cast<double>(n);  // n >= 1: the max is always >= q
        if (ns > best) {
          best = ns;
          dominant = stage;
        }
      }
    };
    attribute(t.p95_ns, t.p95_stage_ns, t.p95_dominant);
    attribute(t.p99_ns, t.p99_stage_ns, t.p99_dominant);
    out.push_back(std::move(t));
  }
  std::sort(out.begin(), out.end(),
            [](const TailAttribution& x, const TailAttribution& y) {
              return x.commands > y.commands;
            });
  return out;
}

CrashSummary SummarizeCrashes(const std::vector<TraceRecord>& recs) {
  CrashSummary s;
  for (const TraceRecord& r : recs) {
    if (r.name == "crash.power_loss") s.power_losses++;
    if (r.name == "recovery.done") s.recoveries++;
  }
  return s;
}

QdTimeline ComputeQueueDepth(const std::vector<CommandTrace>& cmds) {
  QdTimeline out;
  if (cmds.empty()) return out;
  // +1 at each command's begin, -1 at its end; at equal timestamps ends
  // sort first so a back-to-back handoff doesn't momentarily double-count.
  std::vector<std::pair<std::uint64_t, std::int64_t>> deltas;
  deltas.reserve(cmds.size() * 2);
  for (const CommandTrace& c : cmds) {
    deltas.emplace_back(c.begin, +1);
    deltas.emplace_back(c.end, -1);
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const auto& x, const auto& y) {
              if (x.first != y.first) return x.first < y.first;
              return x.second < y.second;
            });

  std::int64_t qd = 0;
  std::uint64_t prev_ts = deltas.front().first;
  double weighted = 0.0;
  for (std::size_t i = 0; i < deltas.size();) {
    std::uint64_t ts = deltas[i].first;
    weighted += static_cast<double>(qd) * static_cast<double>(ts - prev_ts);
    prev_ts = ts;
    while (i < deltas.size() && deltas[i].first == ts) {
      qd += deltas[i].second;
      ++i;
    }
    out.points.push_back(QdPoint{ts, qd});
    out.max_qd = std::max(out.max_qd, qd);
  }
  std::uint64_t span = out.points.back().ts - out.points.front().ts;
  out.mean_qd = span == 0 ? 0.0 : weighted / static_cast<double>(span);
  return out;
}

std::string ToChromeTrace(const std::vector<TraceRecord>& recs,
                          const QdTimeline* qd) {
  using telemetry::AppendJsonNumber;
  using telemetry::AppendJsonString;
  // One track (tid) per layer, in pipeline order, so Perfetto lays the
  // stack out top-to-bottom the way a command traverses it.
  static constexpr const char* kLayerOrder[] = {
      "workload", "host", "queue", "fcp", "post",
      "buffer",   "zone", "nand",  "ftl"};
  auto tid_of = [](const std::string& layer) -> int {
    for (std::size_t i = 0; i < std::size(kLayerOrder); ++i) {
      if (layer == kLayerOrder[i]) return static_cast<int>(i) + 1;
    }
    return static_cast<int>(std::size(kLayerOrder)) + 1;
  };

  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const TraceRecord& r : recs) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    AppendJsonString(out, r.name);
    out += ",\"cat\":";
    AppendJsonString(out, r.layer);
    // Durations below: trace-event ts/dur are microseconds (double).
    if (r.dur > 0) {
      out += ",\"ph\":\"X\"";
    } else {
      out += ",\"ph\":\"i\",\"s\":\"t\"";
    }
    std::snprintf(buf, sizeof buf, ",\"ts\":%.3f",
                  static_cast<double>(r.ts) / 1000.0);
    out += buf;
    if (r.dur > 0) {
      std::snprintf(buf, sizeof buf, ",\"dur\":%.3f",
                    static_cast<double>(r.dur) / 1000.0);
      out += buf;
    }
    std::snprintf(buf, sizeof buf, ",\"pid\":1,\"tid\":%d",
                  tid_of(r.layer));
    out += buf;
    out += ",\"args\":{\"cmd\":";
    AppendJsonNumber(out, static_cast<double>(r.cmd));
    out += ",\"a\":";
    AppendJsonNumber(out, static_cast<double>(r.a));
    out += ",\"b\":";
    AppendJsonNumber(out, static_cast<double>(r.b));
    out += "}}";
  }
  if (qd != nullptr) {
    for (const QdPoint& p : qd->points) {
      if (!first) out += ",";
      first = false;
      std::snprintf(buf, sizeof buf, "%.3f",
                    static_cast<double>(p.ts) / 1000.0);
      out += "{\"name\":\"queue depth\",\"ph\":\"C\",\"ts\":";
      out += buf;
      out += ",\"pid\":1,\"args\":{\"qd\":";
      AppendJsonNumber(out, static_cast<double>(p.qd));
      out += "}}";
    }
  }
  // Track names, so the per-layer tids read as layer names in the UI.
  for (std::size_t i = 0; i < std::size(kLayerOrder); ++i) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof buf, "%d", static_cast<int>(i) + 1);
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += buf;
    out += ",\"args\":{\"name\":";
    AppendJsonString(out, kLayerOrder[i]);
    out += "}}";
  }
  out += "]}";
  return out;
}

bool WriteChromeTrace(const std::string& path,
                      const std::vector<TraceRecord>& recs,
                      const QdTimeline* qd) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "ztrace: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  std::string json = ToChromeTrace(recs, qd);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace zstor::ztrace
