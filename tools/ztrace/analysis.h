// Trace analysis behind the ztrace CLI: loads the JSONL span traces the
// simulator emits (telemetry::JsonlFileSink; schema in DESIGN.md §7) and
// answers the questions the paper's figures keep asking —
//
//   * per-stage latency breakdown: where does command time go between
//     submit, queueing, FCP, post/DMA, write buffer, NAND, GC?
//   * tail attribution: for each op class, which stage dominates the
//     commands at and beyond p95/p99?
//   * queue-depth timeline: how many commands were in flight over time?
//   * Chrome trace-event export: load the whole run into Perfetto /
//     chrome://tracing for visual inspection.
//
// Everything here is plain post-processing over TraceRecord vectors, so
// tests drive it directly against in-memory traces.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <string>
#include <vector>

namespace zstor::ztrace {

/// One JSONL trace line. Mirrors telemetry::TraceEvent after export:
/// ts/dur are virtual nanoseconds; cmd correlates a command's spans
/// across layers (0 = not command-scoped, e.g. die service, GC).
struct TraceRecord {
  std::uint64_t ts = 0;
  std::uint64_t dur = 0;
  std::uint64_t cmd = 0;
  std::string layer;
  std::string name;
  std::int64_t a = 0;
  std::int64_t b = 0;

  std::uint64_t end() const { return ts + dur; }
};

struct LoadResult {
  std::vector<TraceRecord> records;
  std::size_t bad_lines = 0;  // lines that failed to parse (skipped)
  /// Well-formed JSON objects that are not trace records — they carry a
  /// "type" member, the timeline-record discriminator (DESIGN.md §10).
  /// Skipped so a file mixing --trace and --timeline streams still loads;
  /// point tools/zmon at it for the timeline half.
  std::size_t skipped_records = 0;
};

/// Parses JSONL trace lines from a stream; blank lines are ignored.
LoadResult LoadJsonl(std::istream& in);
/// Opens `path` and LoadJsonl()s it. Empty result if unopenable.
LoadResult LoadJsonlFile(const std::string& path);

// ---- per-stage breakdown -----------------------------------------------

/// Aggregate service time of one stage (a distinct layer+name pair).
struct StageStat {
  std::string layer;
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;

  double mean_ns() const {
    return count == 0 ? 0.0
                      : static_cast<double>(total_ns) /
                            static_cast<double>(count);
  }
};

/// All stages seen in the trace, sorted by total_ns descending.
std::vector<StageStat> StageBreakdown(const std::vector<TraceRecord>& recs);

// ---- per-command grouping ----------------------------------------------

/// Everything the trace says about one command (one `cmd` id).
struct CommandTrace {
  std::uint64_t cmd = 0;
  /// Op-class name decoded from the host.submit / qp.doorbell payload
  /// ("read", "write", "append", ...); "unknown" when neither span
  /// appeared for this command.
  std::string op = "unknown";
  std::uint64_t begin = 0;  // earliest span start
  std::uint64_t end = 0;    // latest span end
  /// Sum of span durations. By the span-tiling invariant this equals
  /// end - begin (the measured latency) for QD=1 commands. "host.retry"
  /// spans are excluded: they overlay the failed attempt's own device
  /// spans and would double-count its time.
  std::uint64_t total_ns = 0;
  /// Per-stage service time, keyed by span name (same exclusion).
  std::map<std::string, std::uint64_t> stage_ns;
  /// Resilience events (hostif::ResilientStack): failed-then-reissued
  /// attempts, per-attempt timeouts, and whether an error ultimately
  /// surfaced to the caller.
  std::uint32_t retries = 0;   // "host.retry" spans
  std::uint32_t timeouts = 0;  // "host.timeout" instants
  bool errored = false;        // "host.error" instant present
  /// Power-loss crash events (DESIGN.md §11): attempts that completed
  /// kDeviceReset and appends settled by write-pointer replay dedupe.
  std::uint32_t device_resets = 0;  // "host.reset" instants
  std::uint32_t replay_dupes = 0;   // "host.replay_dupe" instants
};

/// Groups command-scoped records (cmd != 0) into per-command traces,
/// ordered by first appearance.
std::vector<CommandTrace> GroupByCommand(const std::vector<TraceRecord>& recs);

// ---- tail attribution --------------------------------------------------

/// Which stage dominates the slow commands of one op class.
struct TailAttribution {
  std::string op;
  std::size_t commands = 0;
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  /// Mean per-stage time among commands with total_ns >= the quantile.
  std::map<std::string, double> p95_stage_ns;
  std::map<std::string, double> p99_stage_ns;
  /// argmax of the above: the stage the tail spends most time in.
  std::string p95_dominant;
  std::string p99_dominant;
  /// Resilience rollup: host-layer retry/timeout totals and how many
  /// commands surfaced an error despite them.
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::size_t retried_commands = 0;
  std::size_t errored_commands = 0;
  std::uint64_t device_resets = 0;  // kDeviceReset completions absorbed
  std::uint64_t replay_dupes = 0;   // appends settled by wp-replay dedupe

  /// Caller-visible error fraction of this op class (0 when clean).
  double error_rate() const {
    return commands == 0 ? 0.0
                         : static_cast<double>(errored_commands) /
                               static_cast<double>(commands);
  }
};

/// Per-op-class latency distribution and tail attribution, sorted by
/// command count descending.
std::vector<TailAttribution> AttributeTails(
    const std::vector<CommandTrace>& cmds);

// ---- crash/recovery summary --------------------------------------------

/// Device power-loss activity in the trace (DESIGN.md §11). The
/// "crash.power_loss" / "recovery.done" instants the devices emit are
/// not command-scoped (cmd = 0), so GroupByCommand never sees them;
/// they are summarized here instead.
struct CrashSummary {
  std::uint64_t power_losses = 0;  // "crash.power_loss" instants
  std::uint64_t recoveries = 0;    // "recovery.done" instants

  bool any() const { return power_losses + recoveries > 0; }
};

CrashSummary SummarizeCrashes(const std::vector<TraceRecord>& recs);

// ---- queue-depth timeline ----------------------------------------------

struct QdPoint {
  std::uint64_t ts = 0;
  std::int64_t qd = 0;  // commands in flight from this instant
};

struct QdTimeline {
  /// Change points (one per command start/end instant), ts ascending.
  std::vector<QdPoint> points;
  std::int64_t max_qd = 0;
  double mean_qd = 0.0;  // time-weighted over [first, last]
};

/// Commands in flight over time, from each command's [begin, end) window.
QdTimeline ComputeQueueDepth(const std::vector<CommandTrace>& cmds);

// ---- Chrome trace-event export -----------------------------------------

/// Renders records as a Chrome trace-event JSON document (loadable in
/// Perfetto / chrome://tracing): complete events per span on one track
/// per layer, plus a queue-depth counter track when `qd` is non-null.
std::string ToChromeTrace(const std::vector<TraceRecord>& recs,
                          const QdTimeline* qd = nullptr);

/// Writes ToChromeTrace() to `path`; false (warning on stderr) if
/// unopenable.
bool WriteChromeTrace(const std::string& path,
                      const std::vector<TraceRecord>& recs,
                      const QdTimeline* qd = nullptr);

}  // namespace zstor::ztrace
