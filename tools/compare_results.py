#!/usr/bin/env python3
"""Diffs two bench --json results documents (harness::ResultWriter,
schema in DESIGN.md §7) and fails on regressions beyond tolerance.
Stdlib only; backs the CI perf-regression gate and works by hand:

    ./tools/compare_results.py BASELINE.json CURRENT.json \\
        --tol 'simcore_events_per_sec=0.5:down' \\
        --tol 'simcore_allocs_per_event=0.25:up'

Points are matched across documents by (series name, point label) —
falling back to the x value for unlabeled points. Numeric `meta` values
(environment facts such as wall_ms) are indexed as pseudo-series
"meta.<key>", so tolerance globs can gate them too. Each --tol rule is

    PATTERN=FRAC:DIRECTION

where PATTERN is a glob (fnmatch) over series names, FRAC the allowed
relative change, and DIRECTION which way counts as a regression:

    down  value dropping below baseline*(1-FRAC) fails (throughput)
    up    value rising above baseline*(1+FRAC) fails (latency, allocs)
    both  either direction beyond FRAC fails

A negative FRAC turns the rule into a required improvement: with `up`,
the current value must come in at least |FRAC| BELOW baseline (e.g.
'meta.wall_ms=-0.6:up' demands a >= 60% wall-clock drop — the parallel
speedup gate); with `down`, it must come in at least |FRAC| above.
`both` rejects negative FRAC.

Series not matched by any rule are reported but never gate. A baseline
point missing from the current document always fails (a silently dropped
series is itself a regression). Exit 0 = within tolerance, 1 = regression
or malformed input, 2 = usage error.

--preset NAME prepends a named built-in rule set (combinable with
explicit --tol rules, which take precedence by order):

    crash   bench_crash gates: silent corruption stays zero, recovery
            latency and journal replay/WA stay within drift bounds.
    kv      bench_kv gates: the placement WA ratio keeps its floor,
            crash recovery stays corruption-free, throughput and read
            tails stay within drift bounds.
    multidev-speedup
            compares a --sim-threads=N run against a --sim-threads=1
            baseline of the same bench: wall time must drop >= 60%
            (the >= 2.5x acceptance speedup, DESIGN.md §12)."""
import fnmatch
import json
import sys

# Built-in tolerance rule sets (--preset). Order matters: earlier rules
# win, and explicit --tol rules are prepended ahead of any preset.
PRESETS = {
    "crash": (
        # Any silent corruption is a hard failure (baseline is zero, so
        # any positive current value is an infinite relative increase).
        "*silent_corruptions*=0.01:up",
        # Recovery outages are latency promises in both directions: a
        # longer outage regresses the host, a shorter one means the
        # recovery model stopped charging its work.
        "*recovery_ms*=0.25:both",
        # The journal-interval tradeoff must keep its shape.
        "conv_wa_vs_journal_interval=0.15:up",
        "conv_replay_entries_vs_journal_interval=0.5:both",
        "zns_verified_mib_*=0.25:down",
    ),
    # zkv acceptance (DESIGN.md §13): placement keeps reducing write
    # amplification, crash recovery stays corruption-free, and the
    # deterministic virtual-time throughput/latency numbers hold shape.
    "kv": (
        "kv_crash_silent_corruptions=0.01:up",
        "kv_wa_placement_ratio=0.10:down",
        "kv_wa_placement=0.15:up",
        "kv_ycsb_kiops=0.25:down",
        "kv_value_size_kiops=0.25:down",
        "kv_skew_kiops=0.25:down",
        "kv_interference_read_p99_us=0.5:up",
        "kv_crash_recovery_ms=0.5:both",
    ),
    # Parallel-engine acceptance (DESIGN.md §12): the same bench run with
    # --sim-threads=N on >= 4 cores must finish in at most 40% of the
    # --sim-threads=1 wall time. Virtual-time series are byte-identical
    # across thread counts (check_jobs_identity.sh), so only the
    # wall-clock meta fact is gated here.
    "multidev-speedup": (
        "meta.wall_ms=-0.6:up",
    ),
}


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not isinstance(doc.get("series"), list):
        raise ValueError(f"{path}: not a results document")
    return doc


def index_points(doc):
    """(series, point-key) -> value. Key is the label when present, else x.

    Numeric meta values join the index as ("meta.<key>", "meta") so
    tolerance rules can gate environment facts like wall_ms."""
    out = {}
    meta = doc.get("meta")
    if isinstance(meta, dict):
        for k, v in meta.items():
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                out[(f"meta.{k}", "meta")] = v
    for s in doc["series"]:
        if not isinstance(s, dict):
            continue
        name = s.get("name")
        for p in s.get("points", []):
            if not isinstance(p, dict):
                continue
            key = p.get("label") if p.get("label") else p.get("x")
            v = p.get("value")
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                out[(name, key)] = v
    return out


def parse_tol(spec):
    try:
        pattern, rule = spec.split("=", 1)
        frac, direction = rule.split(":", 1)
        frac = float(frac)
    except ValueError:
        raise ValueError(f"bad --tol spec '{spec}' "
                         "(want PATTERN=FRAC:down|up|both)")
    if frac == 0 or direction not in ("down", "up", "both"):
        raise ValueError(f"bad --tol spec '{spec}' "
                         "(want PATTERN=FRAC:down|up|both)")
    if frac < 0 and direction == "both":
        raise ValueError(f"bad --tol spec '{spec}' "
                         "(negative FRAC needs a single direction)")
    return pattern, frac, direction


def rule_for(name, rules):
    for pattern, frac, direction in rules:
        if fnmatch.fnmatch(name or "", pattern):
            return frac, direction
    return None


def main(argv):
    paths = []
    rules = []
    preset_rules = []
    it = iter(argv[1:])
    for arg in it:
        if arg == "--tol":
            try:
                rules.append(parse_tol(next(it)))
            except StopIteration:
                print("--tol needs an argument", file=sys.stderr)
                return 2
            except ValueError as e:
                print(e, file=sys.stderr)
                return 2
        elif arg.startswith("--tol="):
            try:
                rules.append(parse_tol(arg[len("--tol="):]))
            except ValueError as e:
                print(e, file=sys.stderr)
                return 2
        elif arg == "--preset" or arg.startswith("--preset="):
            if arg == "--preset":
                try:
                    name = next(it)
                except StopIteration:
                    print("--preset needs an argument", file=sys.stderr)
                    return 2
            else:
                name = arg[len("--preset="):]
            if name not in PRESETS:
                print(f"unknown preset '{name}' "
                      f"(have: {', '.join(sorted(PRESETS))})",
                      file=sys.stderr)
                return 2
            preset_rules.extend(parse_tol(spec) for spec in PRESETS[name])
        elif arg.startswith("-"):
            print(f"unrecognized flag {arg}", file=sys.stderr)
            print(__doc__, file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    rules.extend(preset_rules)  # explicit --tol rules take precedence
    try:
        base_doc, cur_doc = load(paths[0]), load(paths[1])
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(e, file=sys.stderr)
        return 1

    base = index_points(base_doc)
    cur = index_points(cur_doc)
    failures = []
    print(f"{'series':<28} {'point':<22} {'baseline':>12} {'current':>12} "
          f"{'delta':>8}  verdict")
    for (name, key), b in sorted(base.items(), key=lambda kv: str(kv[0])):
        rule = rule_for(name, rules)
        c = cur.get((name, key))
        if c is None:
            verdict = "MISSING" if rule else "missing (ungated)"
            if rule:
                failures.append(f"{name}/{key}: missing from {paths[1]}")
            print(f"{name:<28} {str(key):<22} {b:>12.4g} {'-':>12} "
                  f"{'-':>8}  {verdict}")
            continue
        delta = (c - b) / b if b != 0 else (0.0 if c == 0 else float("inf"))
        if rule is None:
            verdict = "ungated"
        else:
            frac, direction = rule
            bad_down = direction in ("down", "both") and delta < -frac
            bad_up = direction in ("up", "both") and delta > frac
            if bad_down or bad_up:
                verdict = f"FAIL (tol {frac:.0%} {direction})"
                failures.append(
                    f"{name}/{key}: {b:.6g} -> {c:.6g} "
                    f"({delta:+.1%}, tolerance {frac:.0%} {direction})")
            else:
                verdict = "ok"
        print(f"{name:<28} {str(key):<22} {b:>12.4g} {c:>12.4g} "
              f"{delta:>+7.1%}  {verdict}")
    for (name, key) in sorted(set(cur) - set(base), key=lambda kv: str(kv)):
        print(f"{name:<28} {str(key):<22} {'-':>12} "
              f"{cur[(name, key)]:>12.4g} {'-':>8}  new (ungated)")
    if failures:
        print(f"\n{len(failures)} regression(s) vs {paths[0]}:",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nno regressions vs {paths[0]} "
          f"({len(rules)} tolerance rule(s), "
          f"{sum(1 for k in base if rule_for(k[0], rules))} gated point(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
