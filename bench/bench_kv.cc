// zkv under YCSB: the application-level rendition of the paper's
// recommendations (DESIGN.md §13).
//
//  1. YCSB core mixes A/B/C/F    -> throughput + read tails per mix
//  2. Value-size sweep           -> request-size economics (Obs. 4 at
//                                   the KV layer)
//  3. Zipf-skew sweep            -> how hot-spots shape compaction WA
//  4. Lifetime placement A/B     -> R4: hot/cold zone routing must cut
//                                   write amplification vs one shared
//                                   open zone (ratio gates CI)
//  5. Compaction interference    -> Obs. 11 at the app layer: a
//                                   throttled compaction window craters
//                                   foreground throughput; with
//                                   --timeline, zmon attributes the dip
//                                   to the open `kv.compact` window
//  6. Mid-compaction power loss  -> WAL replay + tag re-verification:
//                                   zero silent corruption or the bench
//                                   exits nonzero (the CI gate)
//
// The crash instant is self-calibrated like bench_crash: the sweep-5
// throttled point doubles as the crash-free baseline measuring the run
// phase's virtual-time span, and the power loss lands at a fixed
// fraction of it — inside the churn, where compactions are open.
#include <cstdio>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "harness/bench_flags.h"
#include "harness/parallel.h"
#include "harness/table.h"
#include "harness/testbed.h"
#include "workload/ycsb.h"
#include "zkv/kv_store.h"
#include "zns/zns_device.h"

using namespace zstor;

namespace {

constexpr sim::Time kSettleMargin = sim::Milliseconds(20);

/// TinyProfile stretched to a KV-sized zone budget: 32 zones (2 WAL +
/// 30 data) with headroom for the store's open set (2 WAL segments +
/// hot + cold + relocation = 5 active zones).
zns::ZnsProfile KvProfile() {
  zns::ZnsProfile p = zns::TinyProfile();
  p.num_zones = 32;
  p.max_open_zones = 8;
  p.max_active_zones = 10;
  p.nand_geometry.blocks_per_die = 96;  // 32 zones x 3 blocks/zone/die
  return p;
}

/// Rides out a full power-loss outage (boot ~2 ms): exponential backoff
/// from 250 us spans ~8 ms of virtual time across the budget.
hostif::RetryPolicy CrashRetryPolicy() {
  return {.max_attempts = 12,
          .backoff = sim::Microseconds(250),
          .backoff_multiplier = 2.0};
}

fault::FaultSpec CrashSpec(const std::vector<sim::Time>& crashes) {
  fault::FaultSpec spec;
  spec.enabled = true;
  spec.crashes = crashes;
  return spec;
}

struct KvConfig {
  workload::YcsbSpec spec;
  zkv::KvStore::Options opt;
  std::vector<sim::Time> crashes;  // fault-plan power losses
  bool recover = false;            // run RecoverAfterCrash() at the end
};

struct KvPoint {
  workload::YcsbResult res;
  zkv::KvStats stats;
  std::vector<zkv::LevelStats> levels;
  sim::Time load_end = 0, run_end = 0;
  double recovery_ms = 0.0;
  workload::IntegrityVerifier::Report rep;
  bool recovered = false;
};

struct FlowOut {
  bool done = false;
  KvPoint p;
};

sim::Task<> KvFlow(Testbed* tb, zkv::KvStore* kv,
                   const workload::YcsbSpec& spec, sim::Time settle_until,
                   bool recover, FlowOut* out) {
  workload::YcsbRunner runner(tb->sim(), *kv, spec);
  co_await runner.Load();
  out->p.load_end = tb->sim().now();
  out->p.res = co_await runner.Run();
  out->p.run_end = tb->sim().now();
  if (tb->sim().now() < settle_until) {
    co_await tb->sim().Delay(settle_until - tb->sim().now());
  }
  co_await kv->Drain();
  if (recover) {
    const sim::Time t0 = tb->sim().now();
    out->p.rep = co_await kv->RecoverAfterCrash();
    out->p.recovery_ms = static_cast<double>(tb->sim().now() - t0) / 1e6;
    out->p.recovered = true;
  }
  out->done = true;
}

KvPoint RunKv(const KvConfig& cfg, const std::string& label) {
  TestbedBuilder b;
  b.WithZnsProfile(KvProfile()).WithLabel(label);
  if (!cfg.crashes.empty()) {
    b.WithRetryPolicy(CrashRetryPolicy()).WithFaults(CrashSpec(cfg.crashes));
  }
  Testbed tb = b.Build();

  zkv::KvStore::Options o = cfg.opt;
  if (!cfg.crashes.empty()) {
    zns::ZnsDevice* dev = tb.zns();
    o.crash_epoch = [dev] { return dev->power_epoch(); };
  }
  zkv::KvStore kv(tb.sim(), tb.stack(), o);
  kv.AttachTelemetry(tb.telemetry());

  const sim::Time settle =
      cfg.crashes.empty() ? 0 : cfg.crashes.back() + kSettleMargin;
  FlowOut out;
  tb.EnsureSamplersRunning();  // we drive sim().Run() ourselves
  sim::Spawn(KvFlow(&tb, &kv, cfg.spec, settle, cfg.recover, &out));
  tb.sim().Run();
  ZSTOR_CHECK(out.done);

  out.p.stats = kv.stats();
  out.p.levels = kv.level_stats();
  tb.Finish();
  return out.p;
}

workload::YcsbSpec BaseSpec() {
  workload::YcsbSpec s;
  s.mix = workload::YcsbMix::kA;
  s.record_count = 2048;
  s.operations = 6000;
  s.value_bytes = 4096;
  s.zipf_theta = 0.99;
  s.workers = 4;
  s.seed = 1;
  return s;
}

zkv::KvStore::Options BaseOpts() {
  zkv::KvStore::Options o;
  o.zone_count = 32;  // whole device: 2 WAL + 30 data zones (~90 MiB)
  return o;
}

/// Churn-heavy shape for the placement A/B and the interference/crash
/// points: a tight zone budget and a small memtable keep compaction and
/// reclamation continuously busy.
zkv::KvStore::Options ChurnOpts() {
  zkv::KvStore::Options o;
  o.zone_count = 14;  // 2 WAL + 12 data zones (~36 MiB)
  o.memtable_bytes = 64 * 1024;
  o.l0_compact_trigger = 2;
  o.l0_stall_limit = 4;
  return o;
}

std::string P99Us(const sim::LatencyHistogram& h) {
  return h.count() == 0 ? "-" : harness::Fmt(h.p99_ns() / 1e3, 1) + " us";
}

}  // namespace

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  auto& results = harness::Results();
  bool integrity_ok = true;

  const workload::YcsbSpec base = BaseSpec();
  results.Config("profile", "tiny-32z");
  results.Config("records", static_cast<double>(base.record_count));
  results.Config("value_bytes", static_cast<double>(base.value_bytes));
  results.Config("theta", base.zipf_theta);
  results.Config("retry_policy", "max_attempts=12,backoff_us=250,mult=2");

  harness::Banner("KV sweep 1 — YCSB core mixes (zipf 0.99, 4 KiB values)");
  {
    const std::vector<workload::YcsbMix> mixes = {
        workload::YcsbMix::kA, workload::YcsbMix::kB, workload::YcsbMix::kC,
        workload::YcsbMix::kF};
    std::vector<KvPoint> sweep =
        harness::ParallelSweep(mixes.size(), [&](std::size_t i) {
          KvConfig cfg;
          cfg.spec = base;
          cfg.spec.mix = mixes[i];
          cfg.opt = BaseOpts();
          return RunKv(cfg, std::string("kv-mix-") +
                                std::string(ToString(mixes[i])));
        });
    harness::Table t({"mix", "kiops", "read p99", "update p99", "WA",
                      "compactions", "stall ms"});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const KvPoint& p = sweep[i];
      const std::string label(ToString(mixes[i]));
      const double wa = p.stats.WriteAmplification();
      results.Series("kv_ycsb_kiops", "kiops")
          .AddLabeled(label, static_cast<double>(i), p.res.Kiops(),
                      p.res.read_latency)
          .WithWa(wa);
      t.AddRow({label, harness::Fmt(p.res.Kiops(), 1),
                P99Us(p.res.read_latency), P99Us(p.res.update_latency),
                harness::Fmt(wa, 2), std::to_string(p.stats.compactions),
                harness::Fmt(static_cast<double>(p.stats.write_stall_ns) /
                                 1e6, 1)});
    }
    t.Print();
    std::printf(
        "  the read/update ratio sets how much LSM machinery each op\n"
        "  touches: C never compacts after load; A and F churn L0\n");
  }

  harness::Banner("KV sweep 2 — value size (mix A)");
  {
    const std::vector<std::uint64_t> sizes = {1024, 4096, 16384};
    std::vector<KvPoint> sweep =
        harness::ParallelSweep(sizes.size(), [&](std::size_t i) {
          KvConfig cfg;
          cfg.spec = base;
          cfg.spec.value_bytes = sizes[i];
          cfg.spec.operations = 4000;
          cfg.opt = BaseOpts();
          return RunKv(cfg, "kv-val-" + std::to_string(sizes[i]));
        });
    harness::Table t({"value", "kiops", "MiB/s user", "read p99", "WA"});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const KvPoint& p = sweep[i];
      const std::string label =
          std::to_string(sizes[i] / 1024) + "KiB";
      const double wa = p.stats.WriteAmplification();
      const double span_s =
          static_cast<double>(p.res.span) / 1e9;
      const double user_mibps =
          span_s == 0 ? 0.0
                      : static_cast<double>(p.stats.user_bytes) /
                            (1 << 20) / span_s;
      results.Series("kv_value_size_kiops", "kiops")
          .AddLabeled(label, static_cast<double>(sizes[i]), p.res.Kiops(),
                      p.res.read_latency)
          .WithWa(wa);
      t.AddRow({label, harness::Fmt(p.res.Kiops(), 1),
                harness::Fmt(user_mibps, 1), P99Us(p.res.read_latency),
                harness::Fmt(wa, 2)});
    }
    t.Print();
    std::printf(
        "  larger values amortize per-op WAL/index cost into bandwidth —\n"
        "  the KV-layer echo of the device's request-size curve (Obs. 4)\n");
  }

  harness::Banner("KV sweep 3 — request skew (mix A, 4 KiB values)");
  {
    const std::vector<double> thetas = {0.2, 0.6, 0.99};
    std::vector<KvPoint> sweep =
        harness::ParallelSweep(thetas.size(), [&](std::size_t i) {
          KvConfig cfg;
          cfg.spec = base;
          cfg.spec.zipf_theta = thetas[i];
          cfg.opt = BaseOpts();
          return RunKv(cfg, "kv-skew-" + harness::Fmt(thetas[i], 2));
        });
    harness::Table t({"theta", "kiops", "read p99", "WA", "compactions"});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const KvPoint& p = sweep[i];
      const std::string label = harness::Fmt(thetas[i], 2);
      const double wa = p.stats.WriteAmplification();
      results.Series("kv_skew_kiops", "kiops")
          .AddLabeled(label, thetas[i], p.res.Kiops(), p.res.read_latency)
          .WithWa(wa);
      t.AddRow({label, harness::Fmt(p.res.Kiops(), 1),
                P99Us(p.res.read_latency), harness::Fmt(wa, 2),
                std::to_string(p.stats.compactions)});
    }
    t.Print();
    std::printf(
        "  skewed updates concentrate garbage into few hot tables, so\n"
        "  compaction reclaims more per byte moved — WA falls with theta\n");
  }

  harness::Banner("KV sweep 4 — lifetime placement A/B (R4, tight zones)");
  double placement_ratio = 0.0;
  {
    std::vector<KvPoint> sweep =
        harness::ParallelSweep(2, [&](std::size_t i) {
          // Large values over a tight zone budget with a proactive
          // reclaim watermark: the zipf tail settles into long-lived
          // deep levels while the head churns, and GC has to keep four
          // zones free. Level-segregated zones die wholesale (phase-1
          // resets, zero relocation); one shared open zone interleaves
          // lifetimes, so reclamation must relocate live remnants.
          KvConfig cfg;
          cfg.spec = base;
          cfg.spec.record_count = 512;
          cfg.spec.operations = 6000;
          cfg.spec.value_bytes = 16384;
          cfg.spec.zipf_theta = 0.9;
          cfg.opt = BaseOpts();
          cfg.opt.zone_count = 14;  // 2 WAL + 12 data zones (~36 MiB)
          cfg.opt.free_zone_low = 4;
          cfg.opt.lifetime_placement = (i == 0);
          return RunKv(cfg, i == 0 ? "kv-place-on" : "kv-place-off");
        });
    harness::Table t({"placement", "WA", "gc relocated", "zone resets",
                      "kiops", "read p99"});
    const char* labels[2] = {"on", "off"};
    double wa[2];
    for (std::size_t i = 0; i < 2; ++i) {
      const KvPoint& p = sweep[i];
      wa[i] = p.stats.WriteAmplification();
      results.Series("kv_wa_placement", "x")
          .AddLabeled(labels[i], static_cast<double>(i), wa[i])
          .WithWa(wa[i]);
      t.AddRow({labels[i], harness::Fmt(wa[i], 3),
                harness::Fmt(static_cast<double>(
                                 p.stats.gc_relocated_bytes) / (1 << 20), 2) +
                    " MiB",
                std::to_string(p.stats.zone_resets),
                harness::Fmt(p.res.Kiops(), 1), P99Us(p.res.read_latency)});
    }
    placement_ratio = wa[0] == 0 ? 0.0 : wa[1] / wa[0];
    results.Series("kv_wa_placement_ratio", "x")
        .AddLabeled("off/on", 0, placement_ratio);
    t.Print();
    std::printf(
        "  placement ratio (off/on): %.3f — routing short-lived L0/L1\n"
        "  output away from long-lived levels lets zones die wholesale,\n"
        "  so reclamation relocates less (>= 1.0 gates CI, as does\n"
        "  relocated[on] <= relocated[off])\n",
        placement_ratio);
    integrity_ok = integrity_ok && placement_ratio >= 1.0;
    integrity_ok = integrity_ok && sweep[0].stats.gc_relocated_bytes <=
                                       sweep[1].stats.gc_relocated_bytes;
  }

  harness::Banner(
      "KV sweep 5 — compaction interference (Obs. 11 at the app layer)");
  KvPoint throttled;  // doubles as the crash-free baseline for sweep 6
  KvConfig interf;
  {
    interf.spec = base;
    interf.spec.record_count = 512;
    interf.spec.operations = 6000;
    interf.spec.zipf_theta = 0.9;
    interf.opt = ChurnOpts();
    interf.opt.zone_count = 16;

    KvConfig smooth = interf;
    std::vector<KvConfig> cfgs = {smooth, interf};
    cfgs[1].opt.compact_rate_mibps = 20.0;  // stretch the compact windows
    std::vector<KvPoint> sweep =
        harness::ParallelSweep(2, [&](std::size_t i) {
          return RunKv(cfgs[i],
                       i == 0 ? "kv-interf-base" : "kv-interf-throttled");
        });
    throttled = sweep[1];
    interf.opt.compact_rate_mibps = 20.0;

    harness::Table t({"compaction", "kiops", "read p99", "stall ms",
                      "compactions"});
    const char* labels[2] = {"unthrottled", "throttled"};
    for (std::size_t i = 0; i < 2; ++i) {
      const KvPoint& p = sweep[i];
      results.Series("kv_interference_read_p99_us", "us")
          .AddLabeled(labels[i], static_cast<double>(i),
                      p.res.read_latency.count() == 0
                          ? 0.0
                          : p.res.read_latency.p99_ns() / 1e3,
                      p.res.read_latency);
      t.AddRow({labels[i], harness::Fmt(p.res.Kiops(), 1),
                P99Us(p.res.read_latency),
                harness::Fmt(static_cast<double>(p.stats.write_stall_ns) /
                                 1e6, 1),
                std::to_string(p.stats.compactions)});
    }
    t.Print();
    std::printf(
        "  a rate-limited compactor holds L0 at the stall limit, so the\n"
        "  foreground parks inside every `kv.compact` window — with\n"
        "  --timeline, zmon --require-dip attributes the throughput dip\n");
  }

  harness::Banner("KV sweep 6 — power loss mid-compaction, WAL replay");
  {
    // Self-calibrated: the throttled point above measured the run
    // phase's span crash-free; 55% through it the churn is peaking and
    // compaction windows are open.
    KvConfig cfg = interf;
    cfg.crashes = {throttled.load_end +
                   (throttled.run_end - throttled.load_end) * 55 / 100};
    cfg.recover = true;
    KvPoint p = RunKv(cfg, "kv-crash");
    ZSTOR_CHECK(p.recovered);

    const bool point_ok =
        p.rep.silent_corruptions == 0 && p.rep.read_errors == 0 &&
        p.stats.compactions > 0 && p.recovery_ms > 0;
    results.Series("kv_crash_silent_corruptions", "lbas")
        .AddLabeled("mid-compaction", 1,
                    static_cast<double>(p.rep.silent_corruptions));
    results.Series("kv_crash_recovery_ms", "ms")
        .AddLabeled("mid-compaction", 1, p.recovery_ms);
    results.Series("kv_crash_wal_replayed", "records")
        .AddLabeled("mid-compaction", 1,
                    static_cast<double>(p.stats.wal_replayed));

    harness::Table t({"crashes", "recovery", "wal replayed", "wal lost",
                      "tables dropped", "exact", "lost w", "silent",
                      "verdict"});
    t.AddRow({"1", harness::Fmt(p.recovery_ms, 3) + " ms",
              std::to_string(p.stats.wal_replayed),
              std::to_string(p.stats.wal_lost),
              std::to_string(p.stats.tables_dropped),
              std::to_string(p.rep.exact),
              std::to_string(p.rep.lost_unflushed),
              std::to_string(p.rep.silent_corruptions),
              point_ok ? "ok" : "CORRUPT"});
    t.Print();
    std::printf(
        "  the crash tears the open compaction output and the WAL tail;\n"
        "  recovery drops non-durable tables, replays the WAL, and\n"
        "  re-verifies every surviving tag — 'silent' != 0 fails CI\n");
    integrity_ok = integrity_ok && point_ok;
  }

  std::printf("\nintegrity: %s\n",
              integrity_ok
                  ? "PASS (placement ratio >= 1, no silent corruption)"
                  : "FAIL — placement regressed or corruption detected");
  return integrity_ok ? 0 : 1;
}
