// Power-loss crash injection, device recovery, and end-to-end data
// integrity (DESIGN.md §11).
//
//  1. ZNS crash-count sweep      -> recovery latency, torn appends,
//                                   host append-replay dedupe
//  2. ZNS utilization sweep      -> loss window vs zone fill, fixed crashes
//  3. Conv journal-sync sweep    -> recovery replay tail vs journal WA
//                                   (the firmware's durability knob)
//
// Crash instants are self-calibrated: each sweep first runs a crash-free
// baseline to measure the workload's virtual-time span, then places the
// power losses at fixed fractions of it, so they land inside the write
// phase regardless of profile or host-stack timing. Every point re-reads
// every acknowledged LBA through the IntegrityVerifier ledger and the
// bench exits nonzero on any silent corruption — this is the CI gate the
// crash subsystem answers to.
#include <cstdio>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "ftl/conv_device.h"
#include "harness/bench_flags.h"
#include "harness/parallel.h"
#include "harness/table.h"
#include "harness/testbed.h"
#include "workload/verifier.h"
#include "zns/zns_device.h"

using namespace zstor;

namespace {

// Zones the ZNS sweeps fill. Partially-filled zones stay *active* for
// the whole run, so this must not exceed TinyProfile's max_active_zones
// (5) or the device terminally rejects the overflow zones' first append.
constexpr std::uint32_t kZones = 5;
constexpr double kBaseUtil = 0.55;          // fill level for sweep 1
constexpr sim::Time kSettleMargin = sim::Milliseconds(20);

// Retry budget generous enough to ride out a full power-loss outage
// (boot cost ~2 ms): exponential backoff from 250 us spans ~8 ms of
// virtual time across the budget.
hostif::RetryPolicy CrashRetryPolicy() {
  return {.max_attempts = 12,
          .backoff = sim::Microseconds(250),
          .backoff_multiplier = 2.0};
}

fault::FaultSpec CrashSpec(const std::vector<sim::Time>& crashes) {
  fault::FaultSpec spec;
  spec.enabled = true;
  spec.crashes = crashes;
  return spec;
}

/// Places `n` crashes at evenly spaced fractions of `span` (never at the
/// very start or end, so each lands inside the write phase).
std::vector<sim::Time> CrashTimes(std::uint32_t n, sim::Time span) {
  std::vector<sim::Time> out;
  for (std::uint32_t i = 1; i <= n; ++i) {
    out.push_back(span * i / (n + 1));
  }
  return out;
}

struct FlowOut {
  sim::Time fill_end = 0;   // virtual time when the write phases finished
  bool done = false;
  workload::IntegrityVerifier::Report report;
};

// Two write phases with a durability point between them (the flush
// certifies phase 1, so any post-crash mismatch there is silent
// corruption; phase 2 stays in the legal-loss window). After the last
// scheduled crash settles, everything is flushed and re-read.
sim::Task<> ZnsFlow(Testbed* tb, workload::IntegrityVerifier* v,
                    double util, sim::Time settle_until, FlowOut* out) {
  co_await v->FillZones(0, kZones, util * 0.5);
  co_await v->Flush();
  co_await v->FillZones(0, kZones, util * 0.5);
  out->fill_end = tb->sim().now();
  if (tb->sim().now() < settle_until) {
    co_await tb->sim().Delay(settle_until - tb->sim().now());
  }
  co_await v->Flush();
  out->report = co_await v->VerifyAll();
  out->done = true;
}

sim::Task<> ConvFlow(Testbed* tb, workload::IntegrityVerifier* v,
                     nvme::Lba span, std::uint64_t ios_per_phase,
                     sim::Time settle_until, FlowOut* out) {
  co_await v->WriteRegion(0, span, ios_per_phase);
  co_await v->Flush();
  co_await v->WriteRegion(0, span, ios_per_phase);
  out->fill_end = tb->sim().now();
  if (tb->sim().now() < settle_until) {
    co_await tb->sim().Delay(settle_until - tb->sim().now());
  }
  co_await v->Flush();
  out->report = co_await v->VerifyAll();
  out->done = true;
}

struct ZnsPoint {
  sim::Time fill_end;
  workload::IntegrityVerifier::Report rep;
  workload::IntegrityVerifier::WriteStats ws;
  double recovery_ms_avg;
  std::uint64_t crashes, recoveries, torn_pages;
  double crash_lost_mib;
  std::uint64_t device_resets, replayed_dupes, reset_drops;
};

ZnsPoint RunZns(double util, const std::vector<sim::Time>& crashes,
                const std::string& label) {
  TestbedBuilder b;
  b.WithZnsProfile(zns::TinyProfile())
      .WithRetryPolicy(CrashRetryPolicy())
      .WithLabel(label);
  if (!crashes.empty()) b.WithFaults(CrashSpec(crashes));
  Testbed tb = b.Build();
  zns::ZnsDevice* dev = tb.zns();

  workload::IntegrityVerifier::Options vopt;
  vopt.lbas_per_io = dev->profile().nand_geometry.page_bytes /
                     tb.stack().info().format.lba_bytes;
  vopt.crash_epoch = [dev] { return dev->power_epoch(); };
  workload::IntegrityVerifier v(tb.sim(), tb.stack(), vopt);

  const sim::Time settle =
      crashes.empty() ? 0 : crashes.back() + kSettleMargin;
  FlowOut out;
  sim::Spawn(ZnsFlow(&tb, &v, util, settle, &out));
  tb.sim().Run();
  ZSTOR_CHECK(out.done);

  const zns::ZnsCounters& c = dev->counters();
  ZnsPoint p;
  p.fill_end = out.fill_end;
  p.rep = out.report;
  p.ws = v.write_stats();
  p.recovery_ms_avg =
      c.recoveries == 0 ? 0.0
                        : static_cast<double>(c.recovery_ns_total) /
                              static_cast<double>(c.recoveries) / 1e6;
  p.crashes = c.crashes;
  p.recoveries = c.recoveries;
  p.torn_pages = c.torn_pages;
  p.crash_lost_mib = static_cast<double>(c.crash_lost_bytes) / (1 << 20);
  p.reset_drops = c.reset_drops;
  p.device_resets = tb.resilient()->stats().device_resets_seen;
  p.replayed_dupes = tb.resilient()->stats().replayed_dupes;
  tb.Finish();
  return p;
}

struct ConvPoint {
  sim::Time fill_end;
  workload::IntegrityVerifier::Report rep;
  workload::IntegrityVerifier::WriteStats ws;
  double recovery_ms;  // the (single) crash's outage span
  std::uint64_t crashes, replay_entries, reverted_entries, lost_units;
  std::uint64_t journal_units, journal_syncs, checkpoints;
  double write_amp;
};

ConvPoint RunConv(std::uint32_t journal_interval,
                  const std::vector<sim::Time>& crashes,
                  const std::string& label) {
  ftl::ConvProfile prof = ftl::TinyConvProfile();
  prof.journal_sync_interval = journal_interval;
  TestbedBuilder b;
  b.WithConvProfile(prof).WithRetryPolicy(CrashRetryPolicy()).WithLabel(label);
  if (!crashes.empty()) b.WithFaults(CrashSpec(crashes));
  Testbed tb = b.Build();
  ftl::ConvDevice* dev = tb.conv();

  workload::IntegrityVerifier::Options vopt;
  vopt.crash_epoch = [dev] { return dev->power_epoch(); };
  workload::IntegrityVerifier v(tb.sim(), tb.stack(), vopt);

  const std::uint64_t span_lbas =
      tb.stack().info().capacity_lbas -
      tb.stack().info().capacity_lbas %
          (vopt.lbas_per_io * vopt.concurrency);
  const std::uint64_t ios_per_phase = span_lbas / vopt.lbas_per_io;

  const sim::Time settle =
      crashes.empty() ? 0 : crashes.back() + kSettleMargin;
  FlowOut out;
  sim::Spawn(ConvFlow(&tb, &v, 0 + span_lbas, ios_per_phase, settle, &out));
  tb.sim().Run();
  ZSTOR_CHECK(out.done);

  const ftl::ConvCounters& c = dev->counters();
  ConvPoint p;
  p.fill_end = out.fill_end;
  p.rep = out.report;
  p.ws = v.write_stats();
  p.recovery_ms = static_cast<double>(dev->last_recovery_ns()) / 1e6;
  p.crashes = c.crashes;
  p.replay_entries = c.recovery_replay_entries;
  p.reverted_entries = c.journal_reverted_entries;
  p.lost_units = c.crash_lost_units;
  p.journal_units = c.journal_units_written;
  p.journal_syncs = c.journal_syncs;
  p.checkpoints = c.checkpoints;
  p.write_amp = c.WriteAmplification();
  tb.Finish();
  return p;
}

std::string VerdictCell(const workload::IntegrityVerifier::Report& r) {
  return r.ok() ? "ok" : "CORRUPT";
}

}  // namespace

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  auto& results = harness::Results();
  bool integrity_ok = true;

  results.Config("retry_policy", "max_attempts=12,backoff_us=250,mult=2");
  results.Config("zns_zones_filled", std::to_string(kZones));

  harness::Banner(
      "Crash sweep 1 — ZNS: recovery & integrity vs crash count");
  {
    // The crash-free baseline is also the crashes=0 row; its span places
    // the power losses for every other point.
    ZnsPoint base = RunZns(kBaseUtil, {}, "crash-zns-n0");
    const std::vector<std::uint32_t> counts = {1, 2, 4};
    std::vector<ZnsPoint> sweep =
        harness::ParallelSweep(counts.size(), [&](std::size_t i) {
          return RunZns(kBaseUtil, CrashTimes(counts[i], base.fill_end),
                        "crash-zns-n" + std::to_string(counts[i]));
        });
    sweep.insert(sweep.begin(), base);

    harness::Table t({"crashes", "recov avg", "torn pages", "lost",
                      "verified", "exact", "lost w", "stale w", "silent",
                      "dupes replayed", "verdict"});
    std::vector<std::uint32_t> all_counts = {0};
    all_counts.insert(all_counts.end(), counts.begin(), counts.end());
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const ZnsPoint& p = sweep[i];
      const double x = all_counts[i];
      const std::string label = std::to_string(all_counts[i]);
      const double verified_mib =
          static_cast<double>(p.rep.bytes_verified) / (1 << 20);
      results.Series("zns_recovery_ms_vs_crashes", "ms")
          .AddLabeled(label, x, p.recovery_ms_avg);
      results.Series("zns_torn_pages_vs_crashes", "pages")
          .AddLabeled(label, x, static_cast<double>(p.torn_pages));
      results.Series("zns_crash_lost_mib_vs_crashes", "MiB")
          .AddLabeled(label, x, p.crash_lost_mib);
      results.Series("zns_verified_mib_vs_crashes", "MiB")
          .AddLabeled(label, x, verified_mib);
      results.Series("zns_silent_corruptions_vs_crashes", "lbas")
          .AddLabeled(label, x,
                      static_cast<double>(p.rep.silent_corruptions));
      results.Series("zns_replayed_dupes_vs_crashes", "appends")
          .AddLabeled(label, x, static_cast<double>(p.replayed_dupes));
      integrity_ok = integrity_ok && p.rep.ok();
      t.AddRow({label, harness::Fmt(p.recovery_ms_avg, 3) + " ms",
                std::to_string(p.torn_pages),
                harness::Fmt(p.crash_lost_mib, 2) + " MiB",
                harness::Fmt(verified_mib, 1) + " MiB",
                std::to_string(p.rep.exact),
                std::to_string(p.rep.lost_unflushed),
                std::to_string(p.rep.stale_unflushed),
                std::to_string(p.rep.silent_corruptions),
                std::to_string(p.replayed_dupes), VerdictCell(p.rep)});
    }
    t.Print();
    std::printf(
        "  every crash drops the unflushed tail (torn multi-plane pages +\n"
        "  volatile write pointers) and costs one boot+zone-scan outage;\n"
        "  flushed data must survive byte-exact — 'silent' != 0 fails CI\n");
  }

  harness::Banner(
      "Crash sweep 2 — ZNS: loss window vs zone utilization (2 crashes)");
  {
    const std::vector<double> utils = {0.3, 0.55, 0.8};
    std::vector<ZnsPoint> bases =
        harness::ParallelSweep(utils.size(), [&](std::size_t i) {
          return RunZns(utils[i], {},
                        "crash-zns-u" + harness::Fmt(utils[i], 2) + "-base");
        });
    std::vector<ZnsPoint> sweep =
        harness::ParallelSweep(utils.size(), [&](std::size_t i) {
          return RunZns(utils[i], CrashTimes(2, bases[i].fill_end),
                        "crash-zns-u" + harness::Fmt(utils[i], 2));
        });
    harness::Table t({"utilization", "verified", "lost", "torn pages",
                      "silent", "write fails", "verdict"});
    for (std::size_t i = 0; i < utils.size(); ++i) {
      const ZnsPoint& p = sweep[i];
      const std::string label = harness::Fmt(utils[i], 2);
      const double verified_mib =
          static_cast<double>(p.rep.bytes_verified) / (1 << 20);
      results.Series("zns_verified_mib_vs_util", "MiB")
          .AddLabeled(label, utils[i], verified_mib);
      results.Series("zns_crash_lost_mib_vs_util", "MiB")
          .AddLabeled(label, utils[i], p.crash_lost_mib);
      results.Series("zns_torn_pages_vs_util", "pages")
          .AddLabeled(label, utils[i], static_cast<double>(p.torn_pages));
      results.Series("zns_silent_corruptions_vs_util", "lbas")
          .AddLabeled(label, utils[i],
                      static_cast<double>(p.rep.silent_corruptions));
      integrity_ok = integrity_ok && p.rep.ok();
      t.AddRow({label, harness::Fmt(verified_mib, 1) + " MiB",
                harness::Fmt(p.crash_lost_mib, 2) + " MiB",
                std::to_string(p.torn_pages),
                std::to_string(p.rep.silent_corruptions),
                std::to_string(p.ws.write_failures), VerdictCell(p.rep)});
    }
    t.Print();
    std::printf(
        "  the loss window is the in-flight+buffered tail, not the zone\n"
        "  fill: utilization grows verified bytes, not lost bytes\n");
  }

  harness::Banner(
      "Crash sweep 3 — Conv: journal sync interval (recovery vs WA)");
  {
    ConvPoint base = RunConv(1024, {}, "crash-conv-base");
    const std::vector<std::uint32_t> intervals = {64, 512, 4096};
    std::vector<ConvPoint> sweep =
        harness::ParallelSweep(intervals.size(), [&](std::size_t i) {
          // 3/4 through the write phases: mid second region pass, away
          // from the inter-pass flush (a crash during the flush would
          // always find an empty journal tail, hiding the interval knob).
          return RunConv(intervals[i], {base.fill_end / 4 * 3},
                         "crash-conv-j" + std::to_string(intervals[i]));
        });
    harness::Table t({"sync interval", "recovery", "replay entries",
                      "reverted", "lost units", "journal units",
                      "write amp", "silent", "verdict"});
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      const ConvPoint& p = sweep[i];
      const double x = intervals[i];
      const std::string label = std::to_string(intervals[i]);
      results.Series("conv_recovery_ms_vs_journal_interval", "ms")
          .AddLabeled(label, x, p.recovery_ms);
      results.Series("conv_replay_entries_vs_journal_interval", "entries")
          .AddLabeled(label, x, static_cast<double>(p.replay_entries));
      results.Series("conv_wa_vs_journal_interval", "x")
          .AddLabeled(label, x, p.write_amp);
      results.Series("conv_crash_lost_units_vs_journal_interval", "units")
          .AddLabeled(label, x, static_cast<double>(p.lost_units));
      results.Series("conv_silent_corruptions_vs_journal_interval", "lbas")
          .AddLabeled(label, x,
                      static_cast<double>(p.rep.silent_corruptions));
      integrity_ok = integrity_ok && p.rep.ok();
      t.AddRow({label, harness::Fmt(p.recovery_ms, 3) + " ms",
                std::to_string(p.replay_entries),
                std::to_string(p.reverted_entries),
                std::to_string(p.lost_units),
                std::to_string(p.journal_units),
                harness::Fmt(p.write_amp, 3),
                std::to_string(p.rep.silent_corruptions),
                VerdictCell(p.rep)});
    }
    t.Print();
    std::printf(
        "  a short sync interval keeps the unsynced-delta window (and the\n"
        "  replay tail) small at the price of journal write amplification;\n"
        "  a long one does the opposite — the firmware durability knob\n");
  }

  std::printf("\nintegrity: %s\n",
              integrity_ok ? "PASS (no silent corruption, no read errors)"
                           : "FAIL — silent corruption detected");
  return integrity_ok ? 0 : 1;
}
