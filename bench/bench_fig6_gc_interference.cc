// Figure 6 — garbage-collection interference, conventional NVMe vs ZNS.
//
// Random writes (4 workers x 128 KiB x QD 8) rate-limited to 0/250/750/
// ~1155 MiB/s with concurrent random 4 KiB reads (QD 32). On the
// conventional drive the device-side GC causes write-throughput sawtooth
// and read collapse; on ZNS (host-side resets) both stay stable.
//
// Paper reference: conventional write throughput fluctuates between a few
// MiB/s and ~1200 MiB/s (6a); its reads collapse to <= 3 MiB/s (6b); ZNS
// is stable at every rate limit. Read p95 under full-rate writes:
// 299.89 ms conventional vs 98.04 ms ZNS; read-only p95 is 81.41 us.
#include <algorithm>
#include <cstdio>
#include <utility>

#include "harness/bench_flags.h"
#include "harness/gc_experiment.h"
#include "harness/parallel.h"
#include "harness/table.h"

using namespace zstor;

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  const sim::Time kDuration = sim::Seconds(10);

  harness::Banner("Figure 6 — throughput over time (1 s bins, MiB/s)");
  // All six experiments are independent; run them concurrently under
  // --jobs and record serially below (see harness/parallel.h).
  harness::GcExperimentResult conv, zns, rate250, rate750;
  double zns_p95 = 0, conv_p95 = 0;
  harness::ParallelTasks({
      [&] { conv = harness::RunConvGcExperiment(0, kDuration, 2); },
      [&] { zns = harness::RunZnsGcExperiment(0, kDuration, 2); },
      [&] { rate250 = harness::RunZnsGcExperiment(250.0, sim::Seconds(6), 2); },
      [&] { rate750 = harness::RunZnsGcExperiment(750.0, sim::Seconds(6), 2); },
      [&] { zns_p95 = harness::ReadOnlyP95Us(true); },
      [&] { conv_p95 = harness::ReadOnlyP95Us(false); },
  });
  auto& results = harness::Results();
  results.Config("duration_s", 10.0);
  results.Config("read_qd", 32.0);
  {
    harness::Table t({"t(s)", "conv write", "conv read", "zns write",
                      "zns read"});
    std::size_t bins =
        std::min(conv.write_series.num_bins(), zns.write_series.num_bins());
    const double kMiB = 1 << 20;
    for (std::size_t i = 0; i + 1 < bins; ++i) {
      double sec = static_cast<double>(i);
      results.Series("fig6a_conv_write_mibps", "MiB/s")
          .Add(sec, conv.write_series.BinRate(i) / kMiB);
      results.Series("fig6b_conv_read_mibps", "MiB/s")
          .Add(sec, conv.read_series.BinRate(i) / kMiB);
      results.Series("fig6a_zns_write_mibps", "MiB/s")
          .Add(sec, zns.write_series.BinRate(i) / kMiB);
      results.Series("fig6b_zns_read_mibps", "MiB/s")
          .Add(sec, zns.read_series.BinRate(i) / kMiB);
      t.AddRow({std::to_string(i),
                harness::Fmt(conv.write_series.BinRate(i) / kMiB, 1),
                harness::Fmt(conv.read_series.BinRate(i) / kMiB, 2),
                harness::Fmt(zns.write_series.BinRate(i) / kMiB, 1),
                harness::Fmt(zns.read_series.BinRate(i) / kMiB, 2)});
    }
    t.Print();
  }

  harness::Banner("Summary (steady-state bins)");
  {
    harness::Table t({"metric", "conventional", "zns", "paper"});
    t.AddRow({"write MiB/s (mean)", harness::Fmt(conv.write_mibps_mean, 1),
              harness::Fmt(zns.write_mibps_mean, 1),
              "conv fluctuates; zns ~device limit"});
    t.AddRow({"write CV", harness::Fmt(conv.write_cv, 3),
              harness::Fmt(zns.write_cv, 3), "conv >> zns"});
    t.AddRow({"read MiB/s (mean)", harness::Fmt(conv.read_mibps_mean, 2),
              harness::Fmt(zns.read_mibps_mean, 2), "conv <= ~3 MiB/s"});
    t.AddRow({"read p95", harness::FmtMs(conv.read_p95_us / 1000.0),
              harness::FmtMs(zns.read_p95_us / 1000.0),
              "299.89ms / 98.04ms"});
    t.AddRow({"write amplification",
              harness::Fmt(conv.write_amplification, 2), "1.00",
              "zns GC is host-side"});
    t.Print();
    results.Series("fig6_summary", "")
        .AddLabeled("conv_write_mibps_mean", 0, conv.write_mibps_mean)
        .AddLabeled("zns_write_mibps_mean", 1, zns.write_mibps_mean)
        .AddLabeled("conv_write_cv", 2, conv.write_cv)
        .AddLabeled("zns_write_cv", 3, zns.write_cv)
        .AddLabeled("conv_read_mibps_mean", 4, conv.read_mibps_mean)
        .AddLabeled("zns_read_mibps_mean", 5, zns.read_mibps_mean)
        .AddLabeled("conv_read_p95_us", 6, conv.read_p95_us)
        .AddLabeled("zns_read_p95_us", 7, zns.read_p95_us)
        .AddLabeled("conv_write_amplification", 8, conv.write_amplification);
  }

  harness::Banner("Rate-limited ZNS stability (paper: stable at all rates)");
  {
    harness::Table t({"rate limit", "achieved MiB/s", "write CV"});
    const std::pair<double, const harness::GcExperimentResult*> rates[] = {
        {250.0, &rate250}, {750.0, &rate750}};
    for (const auto& [rate, r] : rates) {
      results.Series("fig6_zns_rate_limited_mibps", "MiB/s")
          .Add(rate, r->write_mibps_mean);
      results.Series("fig6_zns_rate_limited_cv", "")
          .Add(rate, r->write_cv);
      t.AddRow({harness::FmtMibps(rate),
                harness::Fmt(r->write_mibps_mean, 1),
                harness::Fmt(r->write_cv, 3)});
    }
    t.Print();
  }

  harness::Banner("Read-only baseline p95 (paper: 81.41 us both devices)");
  {
    harness::Table t({"device", "read-only p95"});
    results.Series("fig6_readonly_p95", "us")
        .AddLabeled("zns", 0, zns_p95)
        .AddLabeled("conv", 1, conv_p95);
    t.AddRow({"zns", harness::FmtUs(zns_p95)});
    t.AddRow({"conventional", harness::FmtUs(conv_p95)});
    t.Print();
  }
  return 0;
}
