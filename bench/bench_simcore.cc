// Simulator-engine micro-benchmarks (google-benchmark): the cost of the
// event loop, coroutine machinery, resources and statistics. These bound
// how much virtual time per wall second the experiment harness can cover.
//
// Besides the google-benchmark reporters, a self-timed counter section
// measures events/sec and heap allocations/event for the hot loops
// (event scheduling, coroutine ping-pong, cross-lane handoff) and
// records them into the
// shared --json output, so `--json=BENCH_simcore.json` yields a
// machine-readable regression baseline (see tools/validate_results.py).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>

#include "harness/bench_flags.h"
#include "harness/table.h"
#include "nand/flash_array.h"
#include "sim/parallel_sim.h"
#include "sim/resource.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "zns/zns_device.h"

// Counting allocator: every global heap allocation in this binary bumps
// one counter, so the section below can report allocations per event.
// Deltas are read only around our own measured loops. GCC's
// mismatched-new-delete analysis peers through these replacements into
// their malloc/free innards and misfires; it has nothing to check here.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace zstor;

void BM_EventScheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 1000; ++i) {
      s.ScheduleIn(static_cast<sim::Time>(i), [] {});
    }
    benchmark::DoNotOptimize(s.Run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventScheduling);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    auto body = [&]() -> sim::Task<> {
      for (int i = 0; i < 1000; ++i) co_await s.Delay(1);
    };
    auto t = body();
    s.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutinePingPong);

void BM_FifoResourceContention(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    sim::FifoResource r(s, 2);
    auto user = [&]() -> sim::Task<> {
      for (int i = 0; i < 50; ++i) {
        auto g = co_await r.Acquire();
        co_await s.Delay(10);
      }
    };
    for (int u = 0; u < 8; ++u) sim::Spawn(user());
    s.Run();
  }
  state.SetItemsProcessed(state.iterations() * 400);
}
BENCHMARK(BM_FifoResourceContention);

// A request/reply ping-pong between two lanes of the parallel engine:
// every round trip crosses the mailbox twice and closes two
// conservative-sync windows, so items/sec here is the ceiling on
// cross-lane command throughput (DESIGN.md §12). Arg = worker threads;
// Arg(1) isolates the window machinery, Arg(2) adds the barrier cost.
void BM_LaneHandoff(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    sim::ParallelSimulator ps(2, 250);
    ps.SetSpontaneous(0, true);
    struct PingPong {
      sim::ParallelSimulator* ps;
      int remaining;
      void Send() {
        if (remaining-- == 0) return;
        ps->Post(0, 1, ps->lane(0).now() + 250, sim::MsgKind::kRequest,
                 sim::EventFn([this] {
                   ps->Post(1, 0, ps->lane(1).now() + 250,
                            sim::MsgKind::kReply,
                            sim::EventFn([this] { Send(); }));
                 }));
      }
    } pp{&ps, 256};
    ps.lane(0).ScheduleIn(1, [&pp] { pp.Send(); });
    ps.Run(threads);
  }
  state.SetItemsProcessed(state.iterations() * 512);  // messages
}
BENCHMARK(BM_LaneHandoff)->Arg(1)->Arg(2);

void BM_LatencyHistogramRecord(benchmark::State& state) {
  sim::LatencyHistogram h;
  sim::Rng rng(1);
  for (auto _ : state) {
    h.Record(1000 + rng.UniformU64(1'000'000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatencyHistogramRecord);

void BM_RngNext(benchmark::State& state) {
  sim::Rng rng(7);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += rng.NextU64();
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

void BM_ZnsWritePath(benchmark::State& state) {
  // End-to-end device model throughput: simulated 4 KiB writes/sec of
  // wall time (the figure that sizes every experiment above).
  for (auto _ : state) {
    sim::Simulator s;
    zns::ZnsProfile p = zns::TinyProfile();
    p.io_sigma = 0;
    zns::ZnsDevice dev(s, p);
    auto body = [&]() -> sim::Task<> {
      nvme::Lba wp = 0;
      for (int i = 0; i < 256; ++i) {
        auto c = co_await dev.Execute(
            {.opcode = nvme::Opcode::kWrite, .slba = wp, .nlb = 1});
        ZSTOR_CHECK(c.ok());
        ++wp;
      }
    };
    auto t = body();
    s.Run();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ZnsWritePath);

// ---- self-timed counter section ------------------------------------
//
// Complements the google-benchmark numbers above with the figures the
// engine's performance model cares about (DESIGN.md §1, §12): events
// per wall second and heap allocations per event, on the
// pure-scheduling loop, the coroutine resume loop and the cross-lane
// handoff loop. Recorded into the shared --json
// results document as `simcore_events_per_sec` /
// `simcore_allocs_per_event`.

struct CounterResult {
  double events_per_sec = 0;
  double allocs_per_event = 0;
  std::uint64_t events = 0;
};

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

CounterResult MeasureEventScheduling(double min_seconds) {
  CounterResult out;
  std::uint64_t allocs0 = g_alloc_count.load(std::memory_order_relaxed);
  auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    sim::Simulator s;
    for (int i = 0; i < 1000; ++i) {
      s.ScheduleIn(static_cast<sim::Time>(i), [] {});
    }
    s.Run();
    out.events += 1000;
    elapsed = SecondsSince(t0);
  } while (elapsed < min_seconds);
  std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs0;
  out.events_per_sec = static_cast<double>(out.events) / elapsed;
  out.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(out.events);
  return out;
}

CounterResult MeasureCoroutinePingPong(double min_seconds) {
  CounterResult out;
  std::uint64_t allocs0 = g_alloc_count.load(std::memory_order_relaxed);
  auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    sim::Simulator s;
    auto body = [&]() -> sim::Task<> {
      for (int i = 0; i < 1000; ++i) co_await s.Delay(1);
    };
    auto t = body();
    s.Run();
    out.events += 1000;
    elapsed = SecondsSince(t0);
  } while (elapsed < min_seconds);
  std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs0;
  out.events_per_sec = static_cast<double>(out.events) / elapsed;
  out.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(out.events);
  return out;
}

// Serial-windowed lane handoff: cross-lane messages per wall second
// through the parallel engine's mailbox + window machinery (threads=1,
// so no barrier noise — this is the engine overhead itself).
CounterResult MeasureLaneHandoff(double min_seconds) {
  CounterResult out;
  std::uint64_t allocs0 = g_alloc_count.load(std::memory_order_relaxed);
  auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    sim::ParallelSimulator ps(2, 250);
    ps.SetSpontaneous(0, true);
    struct PingPong {
      sim::ParallelSimulator* ps;
      int remaining;
      void Send() {
        if (remaining-- == 0) return;
        ps->Post(0, 1, ps->lane(0).now() + 250, sim::MsgKind::kRequest,
                 sim::EventFn([this] {
                   ps->Post(1, 0, ps->lane(1).now() + 250,
                            sim::MsgKind::kReply,
                            sim::EventFn([this] { Send(); }));
                 }));
      }
    } pp{&ps, 500};
    ps.lane(0).ScheduleIn(1, [&pp] { pp.Send(); });
    ps.Run(1);
    out.events += 1000;  // two messages per round trip
    elapsed = SecondsSince(t0);
  } while (elapsed < min_seconds);
  std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs0;
  out.events_per_sec = static_cast<double>(out.events) / elapsed;
  out.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(out.events);
  return out;
}

void RunCounterSection(double min_seconds) {
  CounterResult sched = MeasureEventScheduling(min_seconds);
  CounterResult ping = MeasureCoroutinePingPong(min_seconds);
  CounterResult handoff = MeasureLaneHandoff(min_seconds);

  auto& results = zstor::harness::Results();
  results.Config("counter_min_time_s", min_seconds);
  // The seed revision's numbers on the reference container, for
  // regression context (events/sec in millions).
  results.Config("seed_event_scheduling_meps", 12.2);
  results.Config("seed_coroutine_pingpong_meps", 36.7);
  results.Config("seed_lane_handoff_meps", 19.4);
  results.Series("simcore_events_per_sec", "events/s")
      .AddLabeled("event_scheduling", 0, sched.events_per_sec)
      .AddLabeled("coroutine_pingpong", 1, ping.events_per_sec)
      .AddLabeled("lane_handoff", 2, handoff.events_per_sec);
  results.Series("simcore_allocs_per_event", "allocs/event")
      .AddLabeled("event_scheduling", 0, sched.allocs_per_event)
      .AddLabeled("coroutine_pingpong", 1, ping.allocs_per_event)
      .AddLabeled("lane_handoff", 2, handoff.allocs_per_event);

  zstor::harness::Banner("Simulator counters (self-timed)");
  zstor::harness::Table t(
      {"loop", "events/sec", "allocs/event", "events"});
  t.AddRow({"event scheduling",
            zstor::harness::Fmt(sched.events_per_sec / 1e6, 2) + "M",
            zstor::harness::Fmt(sched.allocs_per_event, 4),
            std::to_string(sched.events)});
  t.AddRow({"coroutine ping-pong",
            zstor::harness::Fmt(ping.events_per_sec / 1e6, 2) + "M",
            zstor::harness::Fmt(ping.allocs_per_event, 4),
            std::to_string(ping.events)});
  t.AddRow({"lane handoff",
            zstor::harness::Fmt(handoff.events_per_sec / 1e6, 2) + "M",
            zstor::harness::Fmt(handoff.allocs_per_event, 4),
            std::to_string(handoff.events)});
  t.Print();
}

}  // namespace

// Strip the shared --trace=/--metrics=/--json=/--logpages= bench flags
// (kept for a uniform CLI; no testbeds are built here) before
// google-benchmark rejects them as unrecognized. Wall-clock numbers live
// in google-benchmark's own reporters; the shared --json output carries
// the self-timed counter section, so its schema stays uniform across
// benches while BENCH_simcore.json doubles as a regression baseline.
int main(int argc, char** argv) {
  zstor::harness::InitBench(argc, argv);
  // `--counter_min_time=SECONDS` sizes the self-timed section (default
  // 0.3 s per loop); strip it before google-benchmark sees it.
  double counter_min_time = 0.3;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* kFlag = "--counter_min_time=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      counter_min_time = std::strtod(argv[i] + std::strlen(kFlag), nullptr);
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  zstor::harness::Results().Config(
      "note", "wall-clock micro-benchmarks; use --benchmark_format=json "
              "for per-benchmark numbers");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  RunCounterSection(counter_min_time);
  return 0;
}
