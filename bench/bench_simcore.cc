// Simulator-engine micro-benchmarks (google-benchmark): the cost of the
// event loop, coroutine machinery, resources and statistics. These bound
// how much virtual time per wall second the experiment harness can cover.
#include <benchmark/benchmark.h>

#include "harness/bench_flags.h"
#include "nand/flash_array.h"
#include "sim/resource.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "zns/zns_device.h"

namespace {

using namespace zstor;

void BM_EventScheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 1000; ++i) {
      s.ScheduleIn(static_cast<sim::Time>(i), [] {});
    }
    benchmark::DoNotOptimize(s.Run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventScheduling);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    auto body = [&]() -> sim::Task<> {
      for (int i = 0; i < 1000; ++i) co_await s.Delay(1);
    };
    auto t = body();
    s.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutinePingPong);

void BM_FifoResourceContention(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    sim::FifoResource r(s, 2);
    auto user = [&]() -> sim::Task<> {
      for (int i = 0; i < 50; ++i) {
        auto g = co_await r.Acquire();
        co_await s.Delay(10);
      }
    };
    for (int u = 0; u < 8; ++u) sim::Spawn(user());
    s.Run();
  }
  state.SetItemsProcessed(state.iterations() * 400);
}
BENCHMARK(BM_FifoResourceContention);

void BM_LatencyHistogramRecord(benchmark::State& state) {
  sim::LatencyHistogram h;
  sim::Rng rng(1);
  for (auto _ : state) {
    h.Record(1000 + rng.UniformU64(1'000'000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LatencyHistogramRecord);

void BM_RngNext(benchmark::State& state) {
  sim::Rng rng(7);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += rng.NextU64();
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

void BM_ZnsWritePath(benchmark::State& state) {
  // End-to-end device model throughput: simulated 4 KiB writes/sec of
  // wall time (the figure that sizes every experiment above).
  for (auto _ : state) {
    sim::Simulator s;
    zns::ZnsProfile p = zns::TinyProfile();
    p.io_sigma = 0;
    zns::ZnsDevice dev(s, p);
    auto body = [&]() -> sim::Task<> {
      nvme::Lba wp = 0;
      for (int i = 0; i < 256; ++i) {
        auto c = co_await dev.Execute(
            {.opcode = nvme::Opcode::kWrite, .slba = wp, .nlb = 1});
        ZSTOR_CHECK(c.ok());
        ++wp;
      }
    };
    auto t = body();
    s.Run();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ZnsWritePath);

}  // namespace

// Strip the shared --trace=/--metrics=/--json=/--logpages= bench flags
// (kept for a uniform CLI; no testbeds are built here) before
// google-benchmark rejects them as unrecognized. Wall-clock numbers live
// in google-benchmark's own reporters; the shared --json output carries
// only a pointer to that, so its schema stays uniform across benches.
int main(int argc, char** argv) {
  zstor::harness::InitBench(argc, argv);
  zstor::harness::Results().Config(
      "note", "wall-clock micro-benchmarks; use --benchmark_format=json "
              "for per-benchmark numbers");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
