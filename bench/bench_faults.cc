// Fault injection under load (DESIGN.md §8): what media faults cost at
// the host, and what the resilience layers buy back.
//
//  1. Read-error rate sweep  -> read tail latency + throughput degradation
//  2. Host retry budget      -> caller-visible error rate vs added tail
//  3. Wear-out               -> error rates climbing with P/E cycles
//
// Every sweep point builds a Testbed with an explicit FaultSpec (seeded)
// and an explicit RetryPolicy, so a fixed seed reproduces byte-identical
// results; `--faults=SPEC` replaces the built-in base spec for sweep 1.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "harness/bench_flags.h"
#include "harness/parallel.h"
#include "harness/table.h"
#include "harness/testbed.h"
#include "workload/runner.h"
#include "zns/zns_device.h"

using namespace zstor;
using nvme::Opcode;

namespace {

// The built-in base spec for the rate sweep (a `--faults=` flag replaces
// it): mostly-correctable read errors, the paper's dominant fault class.
fault::FaultSpec BaseReadFaults() {
  fault::FaultSpec spec;
  spec.enabled = true;
  spec.read_correctable_rate = 5e-3;
  spec.read_uncorrectable_rate = 5e-4;
  spec.seed = 0xBE9CFA17ull;
  return spec;
}

fault::FaultSpec ScaleRates(fault::FaultSpec spec, double mult) {
  spec.read_correctable_rate =
      std::min(1.0, spec.read_correctable_rate * mult);
  spec.read_uncorrectable_rate =
      std::min(1.0, spec.read_uncorrectable_rate * mult);
  spec.program_fail_rate = std::min(1.0, spec.program_fail_rate * mult);
  return spec;
}

// Pre-fills 8 zones and runs 1s of random 4 KiB reads at qd16 against
// them; the tail then reflects the media, not queueing behind writes.
workload::JobResult RandomReads(Testbed& tb) {
  zns::ZnsDevice& dev = *tb.zns();
  const zns::ZnsProfile& p = dev.profile();
  workload::JobSpec reader;
  reader.op = Opcode::kRead;
  reader.random = true;
  reader.queue_depth = 16;
  reader.duration = sim::Seconds(1);
  std::uint32_t base = p.num_zones / 2;
  for (std::uint32_t z = base; z < base + 8; ++z) {
    dev.DebugFillZone(z, p.zone_cap_bytes);
    reader.zones.push_back(z);
  }
  return workload::RunJob(tb.sim(), tb.stack(), reader);
}

struct SweepResult {
  double read_p50_us;
  double read_p95_us;
  double read_p99_us;
  double read_mibps;
  workload::JobResult read_job;
  std::uint64_t caller_errors;
  std::uint64_t media_read_retries;
  std::uint64_t read_faults;
  std::uint64_t recovered;
};

// Random reads against a fault-injected ZN540: correctable errors tax the
// tail with stepped-voltage re-reads, the resilient layer absorbs the
// uncorrectable remainder.
SweepResult ReadTailUnderFaults(const fault::FaultSpec& spec,
                                const std::string& label) {
  Testbed tb = TestbedBuilder()
                   .WithZnsProfile(zns::Zn540Profile())
                   .WithFaults(spec)
                   .WithRetryPolicy({.max_attempts = 4,
                                     .backoff = sim::Microseconds(100)})
                   .WithLabel(label)
                   .Build();
  workload::JobResult r = RandomReads(tb);
  SweepResult out;
  out.read_p50_us = r.latency.p50_ns() / 1e3;
  out.read_p95_us = r.latency.p95_ns() / 1e3;
  out.read_p99_us = r.latency.p99_ns() / 1e3;
  out.read_mibps = r.MibPerSec();
  out.read_job = r;
  out.caller_errors = r.errors;
  out.media_read_retries = tb.faults()->counters().read_retry_steps;
  out.read_faults = tb.zns()->counters().read_faults;
  out.recovered = tb.resilient()->stats().recovered;
  tb.Finish();
  return out;
}

struct RetryResult {
  double errors_per_100k;
  double read_p99_us;
  std::uint64_t retries;
  std::uint64_t recovered;
  std::uint64_t exhausted;
};

// Pure random reads against a fixed uncorrectable-error rate; only the
// host retry budget varies. Shows the recovery/latency tradeoff.
RetryResult RetryBudgetSweep(std::uint32_t max_attempts) {
  fault::FaultSpec spec;
  spec.enabled = true;
  spec.read_uncorrectable_rate = 0.02;
  spec.seed = 0x5EED'0B07ull;
  Testbed tb = TestbedBuilder()
                   .WithZnsProfile(zns::Zn540Profile())
                   .WithFaults(spec)
                   .WithRetryPolicy({.max_attempts = max_attempts,
                                     .backoff = sim::Microseconds(50)})
                   .WithLabel("retries=" + std::to_string(max_attempts))
                   .Build();
  workload::JobResult r = RandomReads(tb);

  RetryResult out;
  std::uint64_t issued = r.ops + r.errors;
  out.errors_per_100k =
      issued > 0 ? 1e5 * static_cast<double>(r.errors) /
                       static_cast<double>(issued)
                 : 0.0;
  out.read_p99_us = r.latency.p99_ns() / 1e3;
  out.retries = tb.resilient()->stats().retries;
  out.recovered = tb.resilient()->stats().recovered;
  out.exhausted = tb.resilient()->stats().retries_exhausted;
  tb.Finish();
  return out;
}

struct WearResult {
  std::uint64_t caller_errors;
  std::uint64_t wear_boosted_ops;
  std::uint64_t read_retry_steps;
  std::uint64_t program_failures;
  std::uint64_t retired_blocks;
  std::uint64_t zones_degraded;
};

// Mixed append/read churn on the tiny geometry: small zones cycle through
// resets fast, so P/E wear crosses the threshold within the run and the
// late-run error rates climb (paper §IV: emulators omit exactly this).
WearResult WearOutSweep(double wear_slope) {
  zns::ZnsProfile p = zns::TinyProfile();
  p.spare_blocks = 8;
  fault::FaultSpec spec;
  spec.enabled = true;
  spec.wear_threshold_pe = 20;
  spec.wear_rber_slope = wear_slope;
  spec.seed = 0x3EA2'0077ull;
  Testbed tb = TestbedBuilder()
                   .WithZnsProfile(p)
                   .WithFaults(spec)
                   .WithRetryPolicy({.max_attempts = 4,
                                     .backoff = sim::Microseconds(50)})
                   .WithLabel("wear_slope=" + std::to_string(wear_slope))
                   .Build();
  zns::ZnsDevice& dev = *tb.zns();

  workload::JobSpec churn;
  churn.op = Opcode::kAppend;
  churn.read_fraction = 0.5;
  churn.request_bytes = 64 * 1024;
  churn.queue_depth = 4;
  churn.workers = 2;
  churn.partition_zones = true;
  churn.zones = {0, 1, 2, 3};
  churn.on_full = workload::JobSpec::OnFull::kReset;
  churn.duration = sim::Seconds(1.5);
  workload::JobResult r = workload::RunJob(tb.sim(), tb.stack(), churn);

  const fault::FaultCounters& fc = tb.faults()->counters();
  WearResult out;
  out.caller_errors = r.errors;
  out.wear_boosted_ops = fc.wear_boosted_ops;
  out.read_retry_steps = fc.read_retry_steps;
  out.program_failures = fc.program_failures;
  out.retired_blocks = dev.counters().retired_blocks;
  out.zones_degraded = dev.counters().zones_degraded_readonly +
                       dev.counters().zones_failed_offline;
  tb.Finish();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  auto& results = harness::Results();

  fault::FaultSpec base = harness::BenchEnv::Get().faults_requested()
                              ? harness::BenchEnv::Get().fault_spec()
                              : BaseReadFaults();
  results.Config("base_faults", fault::FormatFaultSpec(base));
  results.Config("retry_policy", "max_attempts=4,backoff_us=100");

  // Each sweep's points are computed up front (possibly on --jobs
  // threads; every point builds its own seeded Testbed) and recorded
  // serially in index order (see harness/parallel.h).

  harness::Banner(
      "Fault sweep 1 — read tail latency vs media error rate (ZN540)");
  {
    harness::Table t({"fault rate", "read p50", "read p95", "read p99",
                      "read bw", "nand retries", "uncorrectable",
                      "recovered", "caller errors"});
    const std::vector<double> mults = {0.0, 1.0, 4.0, 16.0};
    std::vector<SweepResult> sweep =
        harness::ParallelSweep(mults.size(), [&](std::size_t i) {
          return ReadTailUnderFaults(
              ScaleRates(base, mults[i]),
              "rates-" + harness::Fmt(mults[i], 0) + "x");
        });
    for (std::size_t i = 0; i < mults.size(); ++i) {
      double mult = mults[i];
      std::string label = harness::Fmt(mult, 0) + "x";
      const SweepResult& r = sweep[i];
      results.Series("read_p99_vs_fault_rate", "us")
          .AddLabeled(label, mult, r.read_p99_us, r.read_job.latency);
      results.Series("read_mibps_vs_fault_rate", "MiB/s")
          .AddLabeled(label, mult, r.read_mibps);
      results.Series("recovered_vs_fault_rate", "ops")
          .AddLabeled(label, mult, static_cast<double>(r.recovered));
      results.Series("caller_errors_vs_fault_rate", "ops")
          .AddLabeled(label, mult, static_cast<double>(r.caller_errors));
      t.AddRow({label, harness::FmtUs(r.read_p50_us),
                harness::FmtUs(r.read_p95_us),
                harness::FmtUs(r.read_p99_us),
                harness::FmtMibps(r.read_mibps),
                std::to_string(r.media_read_retries),
                std::to_string(r.read_faults),
                std::to_string(r.recovered),
                std::to_string(r.caller_errors)});
    }
    t.Print();
    std::printf(
        "  correctable errors surface as stepped-voltage re-reads: a pure\n"
        "  die-time tax that lands straight on the read tail while the\n"
        "  host retry layer absorbs the uncorrectable remainder\n");
  }

  harness::Banner(
      "Fault sweep 2 — host retry budget vs caller-visible error rate");
  {
    harness::Table t({"max attempts", "errors / 100k ops", "read p99",
                      "retries", "recovered", "exhausted"});
    const std::vector<std::uint32_t> budgets = {1, 2, 4};
    std::vector<RetryResult> sweep =
        harness::ParallelSweep(budgets.size(), [&](std::size_t i) {
          return RetryBudgetSweep(budgets[i]);
        });
    for (std::size_t i = 0; i < budgets.size(); ++i) {
      std::uint32_t attempts = budgets[i];
      const RetryResult& r = sweep[i];
      double x = attempts;
      results.Series("caller_error_rate_vs_retry_budget", "per 100k ops")
          .Add(x, r.errors_per_100k);
      results.Series("read_p99_vs_retry_budget", "us").Add(x, r.read_p99_us);
      t.AddRow({std::to_string(attempts), harness::Fmt(r.errors_per_100k),
                harness::FmtUs(r.read_p99_us), std::to_string(r.retries),
                std::to_string(r.recovered), std::to_string(r.exhausted)});
    }
    t.Print();
    std::printf(
        "  each added attempt multiplies the surviving error rate by the\n"
        "  per-read fault probability; the p99 pays for the re-issues\n");
  }

  harness::Banner(
      "Fault sweep 3 — wear-out: error rates climb past the P/E threshold");
  {
    harness::Table t({"wear slope", "wear-boosted ops", "retry steps",
                      "program fails", "retired blocks", "zones degraded",
                      "caller errors"});
    const std::vector<double> slopes = {0.0, 1e-4, 4e-4};
    std::vector<WearResult> sweep = harness::ParallelSweep(
        slopes.size(), [&](std::size_t i) { return WearOutSweep(slopes[i]); });
    for (std::size_t i = 0; i < slopes.size(); ++i) {
      double slope = slopes[i];
      const WearResult& r = sweep[i];
      results.Series("wear_retry_steps_vs_slope", "steps")
          .Add(slope, static_cast<double>(r.read_retry_steps));
      results.Series("wear_program_failures_vs_slope", "fails")
          .Add(slope, static_cast<double>(r.program_failures));
      results.Series("wear_retired_blocks_vs_slope", "blocks")
          .Add(slope, static_cast<double>(r.retired_blocks));
      t.AddRow({harness::Fmt(slope, 6),
                std::to_string(r.wear_boosted_ops),
                std::to_string(r.read_retry_steps),
                std::to_string(r.program_failures),
                std::to_string(r.retired_blocks),
                std::to_string(r.zones_degraded),
                std::to_string(r.caller_errors)});
    }
    t.Print();
    std::printf(
        "  zone reset/reuse churn ages blocks within the run: past the\n"
        "  threshold every P/E cycle raises the raw bit error rate, so\n"
        "  blocks retire and zones degrade — device-internal behavior the\n"
        "  paper notes ZNS emulators omit (§IV)\n");
  }

  return 0;
}
