// Figure 4 — intra-zone vs inter-zone scalability.
//
//  (a) intra-zone: 4 KiB random read / sequential write / append IOPS in
//      ONE zone as the queue depth grows. Reads and appends via SPDK;
//      writes via the kernel stack with mq-deadline (the only way to keep
//      multiple writes in flight on one zone).
//  (b) inter-zone: one worker per zone at QD 1 via SPDK, up to the
//      max-open-zone limit of 14.
//  (c) bandwidth: intra-zone append (QD = concurrency) vs inter-zone
//      write (zones = concurrency) at 4/8/16 KiB.
//
// Paper reference: append saturates ~132 KIOPS at concurrency 4, in both
// modes (Obs. 6); merged intra-zone writes reach 293 KIOPS at QD 32 and
// 92.35% of writes merge at QD 16 (Obs. 7); inter-zone writes saturate at
// ~186 KIOPS = ~727 MiB/s at 4 KiB (Obs. 7/8); reads reach 424 KIOPS at
// QD 128 (Obs. 7); >= 8 KiB requests reach the ~1155 MiB/s device limit
// with 2-4 zones (Obs. 8).
#include <cstdio>
#include <vector>

#include "harness/bench_flags.h"
#include "harness/experiments.h"
#include "harness/parallel.h"
#include "harness/table.h"
#include "zns/profile.h"

using namespace zstor;
using nvme::Opcode;

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  zns::ZnsProfile profile = zns::Zn540Profile();
  auto& results = harness::Results();
  results.Config("profile", "ZN540");

  // Each section's sweep points are computed up front (possibly on
  // --jobs threads) and recorded serially in index order, so output is
  // byte-identical for any job count (see harness/parallel.h).
  harness::Banner("Figure 4a — intra-zone scalability, 4 KiB (KIOPS)");
  {
    const std::vector<std::uint32_t> qds = {1, 2, 4, 8, 16, 32, 64, 128};
    struct Point {
      workload::JobResult read, write, append;
      double merged = 0;
    };
    std::vector<Point> sweep =
        harness::ParallelSweep(qds.size(), [&](std::size_t i) {
          std::uint32_t qd = qds[i];
          Point p;
          p.read = harness::IntraZone(profile, Opcode::kRead, 4096, qd);
          p.write =
              harness::IntraZone(profile, Opcode::kWrite, 4096, qd, &p.merged);
          p.append = harness::IntraZone(profile, Opcode::kAppend, 4096, qd);
          return p;
        });
    harness::Table t({"QD", "read(spdk)", "write(kernel-mq)",
                      "append(spdk)", "merged%"});
    for (std::size_t i = 0; i < qds.size(); ++i) {
      std::uint32_t qd = qds[i];
      const Point& p = sweep[i];
      results.Series("fig4a_read_kiops", "KIOPS").Add(qd, p.read.Kiops());
      results.Series("fig4a_write_kiops", "KIOPS").Add(qd, p.write.Kiops());
      results.Series("fig4a_append_kiops", "KIOPS").Add(qd, p.append.Kiops());
      results.Series("fig4a_write_merged", "%").Add(qd, 100 * p.merged);
      t.AddRow({std::to_string(qd), harness::FmtKiops(p.read.Kiops()),
                harness::FmtKiops(p.write.Kiops()),
                harness::FmtKiops(p.append.Kiops()),
                harness::Fmt(100 * p.merged, 1)});
    }
    t.Print();
    std::printf(
        "  paper: read 424K @QD128; write 293K @QD32 (92.35%% merged\n"
        "         @QD16); append ~132K @QD4, flat beyond\n");
  }

  harness::Banner("Figure 4b — inter-zone scalability, 4 KiB QD1 (KIOPS)");
  {
    const std::vector<std::uint32_t> zones = {1, 2, 4, 8, 14};
    struct Point {
      workload::JobResult read, write, append;
    };
    std::vector<Point> sweep =
        harness::ParallelSweep(zones.size(), [&](std::size_t i) {
          std::uint32_t z = zones[i];
          Point p;
          p.read = harness::InterZone(profile, Opcode::kRead, 4096, z);
          p.write = harness::InterZone(profile, Opcode::kWrite, 4096, z);
          p.append = harness::InterZone(profile, Opcode::kAppend, 4096, z);
          return p;
        });
    harness::Table t({"zones", "read", "write", "append"});
    for (std::size_t i = 0; i < zones.size(); ++i) {
      std::uint32_t z = zones[i];
      const Point& p = sweep[i];
      results.Series("fig4b_read_kiops", "KIOPS").Add(z, p.read.Kiops());
      results.Series("fig4b_write_kiops", "KIOPS").Add(z, p.write.Kiops());
      results.Series("fig4b_append_kiops", "KIOPS").Add(z, p.append.Kiops());
      t.AddRow({std::to_string(z), harness::FmtKiops(p.read.Kiops()),
                harness::FmtKiops(p.write.Kiops()),
                harness::FmtKiops(p.append.Kiops())});
    }
    t.Print();
    std::printf(
        "  paper: write saturates ~186K; append ~132K (same as intra —\n"
        "         Obs.6); capped at 14 zones by the open-zone limit\n");
  }

  harness::Banner(
      "Figure 4c — bandwidth: intra-zone append vs inter-zone write");
  {
    const std::vector<std::uint32_t> concs = {1, 2, 4, 8};
    const std::vector<std::uint64_t> reqs = {4096, 8192, 16384};
    struct Point {
      workload::JobResult append, write;
    };
    std::vector<Point> sweep = harness::ParallelSweep(
        concs.size() * reqs.size(), [&](std::size_t i) {
          std::uint32_t c = concs[i / reqs.size()];
          std::uint64_t req = reqs[i % reqs.size()];
          Point p;
          p.append = harness::IntraZone(profile, Opcode::kAppend, req, c);
          p.write = harness::InterZone(profile, Opcode::kWrite, req, c);
          return p;
        });
    harness::Table t({"concurrency", "op", "4KiB", "8KiB", "16KiB"});
    for (std::size_t ci = 0; ci < concs.size(); ++ci) {
      std::uint32_t c = concs[ci];
      std::vector<std::string> arow = {std::to_string(c), "append(intra)"};
      std::vector<std::string> wrow = {std::to_string(c), "write(inter)"};
      for (std::size_t ri = 0; ri < reqs.size(); ++ri) {
        const Point& p = sweep[ci * reqs.size() + ri];
        std::string kib = std::to_string(reqs[ri] / 1024) + "KiB";
        results.Series("fig4c_append_intra_mibps", "MiB/s")
            .AddLabeled(kib + "/c" + std::to_string(c), c,
                        p.append.MibPerSec());
        results.Series("fig4c_write_inter_mibps", "MiB/s")
            .AddLabeled(kib + "/c" + std::to_string(c), c,
                        p.write.MibPerSec());
        arow.push_back(harness::FmtMibps(p.append.MibPerSec()));
        wrow.push_back(harness::FmtMibps(p.write.MibPerSec()));
      }
      t.AddRow(arow);
      t.AddRow(wrow);
    }
    t.Print();
    std::printf(
        "  paper: 4 KiB writes cap at 726.74 MiB/s; >= 8 KiB requests\n"
        "         reach the ~1155 MiB/s device limit at 2-4 zones;\n"
        "         appends need more concurrency to approach the limit\n");
  }
  return 0;
}
