// Figure 4 — intra-zone vs inter-zone scalability.
//
//  (a) intra-zone: 4 KiB random read / sequential write / append IOPS in
//      ONE zone as the queue depth grows. Reads and appends via SPDK;
//      writes via the kernel stack with mq-deadline (the only way to keep
//      multiple writes in flight on one zone).
//  (b) inter-zone: one worker per zone at QD 1 via SPDK, up to the
//      max-open-zone limit of 14.
//  (c) bandwidth: intra-zone append (QD = concurrency) vs inter-zone
//      write (zones = concurrency) at 4/8/16 KiB.
//
// Paper reference: append saturates ~132 KIOPS at concurrency 4, in both
// modes (Obs. 6); merged intra-zone writes reach 293 KIOPS at QD 32 and
// 92.35% of writes merge at QD 16 (Obs. 7); inter-zone writes saturate at
// ~186 KIOPS = ~727 MiB/s at 4 KiB (Obs. 7/8); reads reach 424 KIOPS at
// QD 128 (Obs. 7); >= 8 KiB requests reach the ~1155 MiB/s device limit
// with 2-4 zones (Obs. 8).
#include <cstdio>

#include "harness/bench_flags.h"
#include "harness/experiments.h"
#include "harness/table.h"
#include "zns/profile.h"

using namespace zstor;
using nvme::Opcode;

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  zns::ZnsProfile profile = zns::Zn540Profile();
  auto& results = harness::Results();
  results.Config("profile", "ZN540");

  harness::Banner("Figure 4a — intra-zone scalability, 4 KiB (KIOPS)");
  {
    harness::Table t({"QD", "read(spdk)", "write(kernel-mq)",
                      "append(spdk)", "merged%"});
    for (std::uint32_t qd : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
      auto r = harness::IntraZone(profile, Opcode::kRead, 4096, qd);
      double merged = 0;
      auto w = harness::IntraZone(profile, Opcode::kWrite, 4096, qd, &merged);
      auto a = harness::IntraZone(profile, Opcode::kAppend, 4096, qd);
      results.Series("fig4a_read_kiops", "KIOPS").Add(qd, r.Kiops());
      results.Series("fig4a_write_kiops", "KIOPS").Add(qd, w.Kiops());
      results.Series("fig4a_append_kiops", "KIOPS").Add(qd, a.Kiops());
      results.Series("fig4a_write_merged", "%").Add(qd, 100 * merged);
      t.AddRow({std::to_string(qd), harness::FmtKiops(r.Kiops()),
                harness::FmtKiops(w.Kiops()), harness::FmtKiops(a.Kiops()),
                harness::Fmt(100 * merged, 1)});
    }
    t.Print();
    std::printf(
        "  paper: read 424K @QD128; write 293K @QD32 (92.35%% merged\n"
        "         @QD16); append ~132K @QD4, flat beyond\n");
  }

  harness::Banner("Figure 4b — inter-zone scalability, 4 KiB QD1 (KIOPS)");
  {
    harness::Table t({"zones", "read", "write", "append"});
    for (std::uint32_t z : {1u, 2u, 4u, 8u, 14u}) {
      auto r = harness::InterZone(profile, Opcode::kRead, 4096, z);
      auto w = harness::InterZone(profile, Opcode::kWrite, 4096, z);
      auto a = harness::InterZone(profile, Opcode::kAppend, 4096, z);
      results.Series("fig4b_read_kiops", "KIOPS").Add(z, r.Kiops());
      results.Series("fig4b_write_kiops", "KIOPS").Add(z, w.Kiops());
      results.Series("fig4b_append_kiops", "KIOPS").Add(z, a.Kiops());
      t.AddRow({std::to_string(z), harness::FmtKiops(r.Kiops()),
                harness::FmtKiops(w.Kiops()), harness::FmtKiops(a.Kiops())});
    }
    t.Print();
    std::printf(
        "  paper: write saturates ~186K; append ~132K (same as intra —\n"
        "         Obs.6); capped at 14 zones by the open-zone limit\n");
  }

  harness::Banner(
      "Figure 4c — bandwidth: intra-zone append vs inter-zone write");
  {
    harness::Table t({"concurrency", "op", "4KiB", "8KiB", "16KiB"});
    for (std::uint32_t c : {1u, 2u, 4u, 8u}) {
      std::vector<std::string> arow = {std::to_string(c), "append(intra)"};
      std::vector<std::string> wrow = {std::to_string(c), "write(inter)"};
      for (std::uint64_t req : {4096ull, 8192ull, 16384ull}) {
        auto a = harness::IntraZone(profile, Opcode::kAppend, req, c);
        auto w = harness::InterZone(profile, Opcode::kWrite, req, c);
        std::string kib = std::to_string(req / 1024) + "KiB";
        results.Series("fig4c_append_intra_mibps", "MiB/s")
            .AddLabeled(kib + "/c" + std::to_string(c), c, a.MibPerSec());
        results.Series("fig4c_write_inter_mibps", "MiB/s")
            .AddLabeled(kib + "/c" + std::to_string(c), c, w.MibPerSec());
        arow.push_back(harness::FmtMibps(a.MibPerSec()));
        wrow.push_back(harness::FmtMibps(w.MibPerSec()));
      }
      t.AddRow(arow);
      t.AddRow(wrow);
    }
    t.Print();
    std::printf(
        "  paper: 4 KiB writes cap at 726.74 MiB/s; >= 8 KiB requests\n"
        "         reach the ~1155 MiB/s device limit at 2-4 zones;\n"
        "         appends need more concurrency to approach the limit\n");
  }
  return 0;
}
