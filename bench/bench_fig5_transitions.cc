// Figure 5 — zone state transition costs vs occupancy.
//
//  (a) reset latency of partially-occupied zones, plain and after finish.
//  (b) finish latency of partially-occupied zones.
//
// Paper reference: reset 11.60 ms at 50%, 16.19 ms at 100%; a finished
// half-full zone resets ~3.08 ms slower than a plain one; finish falls
// linearly from 907.51 ms (<0.1% occupancy) to 3.07 ms (~100%), a ~295x
// span (Observation #10).
#include <cstdio>
#include <vector>

#include "harness/bench_flags.h"
#include "harness/experiments.h"
#include "harness/parallel.h"
#include "harness/table.h"
#include "zns/profile.h"

using namespace zstor;

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  zns::ZnsProfile profile = zns::Zn540Profile();
  auto& results = harness::Results();
  results.Config("profile", "ZN540");

  // Sweep points computed up front (possibly on --jobs threads), then
  // recorded serially in index order (see harness/parallel.h).
  harness::Banner("Figure 5a — reset latency vs zone occupancy");
  {
    const std::vector<double> occs = {0.0, 0.0625, 0.125, 0.25, 0.5, 1.0};
    struct Point {
      double plain = 0, fin = 0;
    };
    std::vector<Point> sweep =
        harness::ParallelSweep(occs.size(), [&](std::size_t i) {
          double occ = occs[i];
          Point p;
          p.plain = harness::ResetLatencyMs(profile, occ, false);
          p.fin = occ > 0 ? harness::ResetLatencyMs(profile, occ, true)
                          : p.plain;
          return p;
        });
    harness::Table t({"occupancy", "reset", "finish-then-reset"});
    for (std::size_t i = 0; i < occs.size(); ++i) {
      double occ = occs[i];
      const Point& p = sweep[i];
      results.Series("fig5a_reset_latency", "ms").Add(occ, p.plain);
      if (occ > 0) {
        results.Series("fig5a_finish_then_reset_latency", "ms")
            .Add(occ, p.fin);
      }
      char label[16];
      std::snprintf(label, sizeof label, "%.2f%%", occ * 100);
      t.AddRow({occ == 0 ? "empty" : label, harness::FmtMs(p.plain),
                occ == 0 ? "-" : harness::FmtMs(p.fin)});
    }
    t.Print();
    std::printf(
        "  paper: 11.60ms at 50%%, 16.19ms full; finished zones reset\n"
        "         ~3.08ms slower at 50%% occupancy\n");
  }

  harness::Banner("Figure 5b — finish latency vs zone occupancy");
  {
    const std::vector<double> occs = {0.0, 0.0625, 0.125, 0.25,
                                      0.5, 0.75,   1.0};
    std::vector<double> sweep =
        harness::ParallelSweep(occs.size(), [&](std::size_t i) {
          return harness::FinishLatencyMs(profile, occs[i], 4);
        });
    harness::Table t({"occupancy", "finish"});
    for (std::size_t i = 0; i < occs.size(); ++i) {
      double occ = occs[i];
      results.Series("fig5b_finish_latency", "ms").Add(occ, sweep[i]);
      char label[16];
      std::snprintf(label, sizeof label, "%.2f%%", occ * 100);
      t.AddRow({occ == 0 ? "<0.1%" : (occ == 1.0 ? "~100%" : label),
                harness::FmtMs(sweep[i])});
    }
    t.Print();
    std::printf(
        "  paper: 907.51ms at <0.1%% falling linearly to 3.07ms at\n"
        "         ~100%% — a ~295x span; avoid finish on partial zones\n");
  }
  return 0;
}
