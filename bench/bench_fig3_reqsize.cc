// Figure 3 — SPDK QD=1 throughput (KIOPS) as a function of request size,
// for write (3a) and append (3b) operations, 4 KiB LBA format.
//
// Paper reference: writes peak at ~85 KIOPS for 4 and 8 KiB; appends
// improve from 66 to 69 KIOPS when doubling 4 KiB to 8 KiB; bytes
// throughput is highest for requests >= 32 KiB (Observation #3).
#include <cstdio>
#include <vector>

#include "harness/bench_flags.h"
#include "harness/experiments.h"
#include "harness/parallel.h"
#include "harness/table.h"
#include "zns/profile.h"

using namespace zstor;
using nvme::Opcode;

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  zns::ZnsProfile profile = zns::Zn540Profile();
  auto& results = harness::Results();
  results.Config("profile", "ZN540");
  results.Config("stack", "spdk");
  results.Config("qd", 1.0);

  // One sweep point per (op, request size); computed possibly in
  // parallel, recorded serially in index order (see harness/parallel.h).
  const std::vector<std::uint64_t> reqs = {4096,  8192,  16384,
                                           32768, 65536, 131072};
  const std::vector<Opcode> ops = {Opcode::kWrite, Opcode::kAppend};
  std::vector<double> kiops =
      harness::ParallelSweep(ops.size() * reqs.size(), [&](std::size_t i) {
        return harness::Qd1Kiops(profile, ops[i / reqs.size()],
                                 reqs[i % reqs.size()]);
      });

  harness::Banner("Figure 3a — write KIOPS vs request size (SPDK, QD1)");
  harness::Table tw({"request", "KIOPS", "MiB/s"});
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    std::uint64_t req = reqs[i];
    double k = kiops[i];
    double mibps = k * 1000.0 * static_cast<double>(req) / (1 << 20);
    results.Series("fig3a_write_kiops", "KIOPS")
        .Add(static_cast<double>(req), k);
    results.Series("fig3a_write_mibps", "MiB/s")
        .Add(static_cast<double>(req), mibps);
    tw.AddRow({std::to_string(req / 1024) + "KiB", harness::FmtKiops(k),
               harness::FmtMibps(mibps)});
  }
  tw.Print();
  std::printf("  paper: ~85 KIOPS at 4 and 8 KiB; IOPS fall beyond 8 KiB\n");

  harness::Banner("Figure 3b — append KIOPS vs request size (SPDK, QD1)");
  harness::Table ta({"request", "KIOPS", "MiB/s"});
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    std::uint64_t req = reqs[i];
    double k = kiops[reqs.size() + i];
    double mibps = k * 1000.0 * static_cast<double>(req) / (1 << 20);
    results.Series("fig3b_append_kiops", "KIOPS")
        .Add(static_cast<double>(req), k);
    results.Series("fig3b_append_mibps", "MiB/s")
        .Add(static_cast<double>(req), mibps);
    ta.AddRow({std::to_string(req / 1024) + "KiB", harness::FmtKiops(k),
               harness::FmtMibps(mibps)});
  }
  ta.Print();
  std::printf(
      "  paper: 66 KIOPS at 4 KiB improving to 69 KIOPS at 8 KiB;\n"
      "         bytes throughput highest for >= 32 KiB requests\n");
  return 0;
}
