// Observation #9 — zone open/close costs and the implicit-open penalty.
//
// Paper reference: explicit open 9.56 us, close 11.01 us; the first write
// to an implicitly-opened zone pays +2.02 us, the first append +2.83 us
// (17.38% / 19.32% of a 4 KiB operation); explicit and implicit opens
// otherwise perform identically.
#include <cstdio>

#include "harness/bench_flags.h"
#include "harness/experiments.h"
#include "harness/table.h"
#include "zns/profile.h"

using namespace zstor;

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  harness::Banner("Observation #9 — zone open/close costs (SPDK)");
  harness::OpenCloseCosts c =
      harness::MeasureOpenClose(zns::Zn540Profile());
  auto& results = harness::Results();
  results.Config("profile", "ZN540");
  results.Series("obs9_zone_mgmt_cost", "us")
      .AddLabeled("explicit_open", 0, c.explicit_open_us)
      .AddLabeled("close", 1, c.close_us)
      .AddLabeled("implicit_write_extra", 2, c.implicit_write_extra_us)
      .AddLabeled("implicit_append_extra", 3, c.implicit_append_extra_us);
  harness::Table t({"operation", "measured", "paper"});
  t.AddRow({"explicit open", harness::FmtUs(c.explicit_open_us), "9.56us"});
  t.AddRow({"close", harness::FmtUs(c.close_us), "11.01us"});
  t.AddRow({"first write extra (implicit open)",
            harness::FmtUs(c.implicit_write_extra_us), "2.02us"});
  t.AddRow({"first append extra (implicit open)",
            harness::FmtUs(c.implicit_append_extra_us), "2.83us"});
  t.Print();
  std::printf(
      "  paper: open/close costs are marginal; implicit and explicit\n"
      "         opens otherwise perform identically\n");
  return 0;
}
