// Figure 7 — interference between reset and concurrent I/O (Obs. 12/13).
//
// One thread resets 100%-occupied zones in the first half of the device
// while another issues read/write/append traffic to the second half.
//
// Paper reference: p95 reset latency rises from 17.94 ms (isolated) to
// 28.00 ms (+56%, reads), 32.00 ms (+78%, writes), 31.48 ms (+75.5%,
// appends) — while the I/O itself is unaffected by the resets (Obs. 12).
#include <cstdio>

#include "harness/bench_flags.h"
#include "harness/experiments.h"
#include "harness/parallel.h"
#include "harness/table.h"
#include "zns/profile.h"

using namespace zstor;
using nvme::Opcode;

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  zns::ZnsProfile profile = zns::Zn540Profile();

  harness::Banner("Figure 7 — p95 reset latency under concurrent I/O");
  // All five measurements are independent; compute them concurrently
  // under --jobs and record serially below (see harness/parallel.h).
  harness::ResetInterferenceResult none, read, write, append;
  double write_alone = 0;
  harness::ParallelTasks({
      [&] { none = harness::ResetInterference(profile, Opcode::kFlush); },
      [&] { read = harness::ResetInterference(profile, Opcode::kRead); },
      [&] { write = harness::ResetInterference(profile, Opcode::kWrite); },
      [&] { append = harness::ResetInterference(profile, Opcode::kAppend); },
      [&] {
        write_alone = harness::Qd1LatencyUs(
            profile, harness::StackKind::kSpdk, Opcode::kWrite, 4096, 4096);
      },
  });

  auto& results = harness::Results();
  results.Config("profile", "ZN540");
  results.Series("fig7_reset_p95", "ms")
      .AddLabeled("none", 0, none.reset_p95_ms)
      .AddLabeled("read", 1, read.reset_p95_ms)
      .AddLabeled("write", 2, write.reset_p95_ms)
      .AddLabeled("append", 3, append.reset_p95_ms);

  harness::Table t({"concurrent op", "reset p95", "increase", "paper"});
  auto inc = [&](const harness::ResetInterferenceResult& r) {
    return harness::Fmt(100.0 * (r.reset_p95_ms / none.reset_p95_ms - 1.0),
                        1) +
           "%";
  };
  t.AddRow({"none", harness::FmtMs(none.reset_p95_ms), "-", "17.94ms"});
  t.AddRow({"read (QD12)", harness::FmtMs(read.reset_p95_ms), inc(read),
            "28.00ms (+56.1%)"});
  t.AddRow({"write (QD1)", harness::FmtMs(write.reset_p95_ms), inc(write),
            "32.00ms (+78.4%)"});
  t.AddRow({"append (QD1)", harness::FmtMs(append.reset_p95_ms),
            inc(append), "31.48ms (+75.5%)"});
  t.Print();

  harness::Banner("Observation #12 — I/O latency is reset-agnostic");
  results.Series("fig7_write_mean", "us")
      .AddLabeled("with_resets", 0, write.io_mean_us)
      .AddLabeled("no_resets", 1, write_alone);
  harness::Table t2({"metric", "value"});
  t2.AddRow({"4KiB write mean, concurrent resets",
             harness::FmtUs(write.io_mean_us)});
  t2.AddRow({"4KiB write mean, no resets", harness::FmtUs(write_alone)});
  t2.Print();
  std::printf(
      "  paper: resets do not measurably affect read/write/append\n"
      "         latency; the reverse interference is large\n");
  return 0;
}
