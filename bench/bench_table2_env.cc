// Table II — the benchmarking environment. The paper's table describes a
// physical testbed; ours describes the simulated equivalents and their
// calibrated parameters (the substitutions of DESIGN.md §1).
#include <cstdio>

#include "ftl/conv_profile.h"
#include "harness/bench_flags.h"
#include "harness/table.h"
#include "nand/flash_array.h"
#include "sim/simulator.h"
#include "zns/profile.h"

using namespace zstor;

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  harness::Banner("Table II — benchmarking environment (simulated)");
  zns::ZnsProfile z = zns::Zn540Profile();
  ftl::ConvProfile c = ftl::Sn640Profile();

  sim::Simulator s;
  nand::FlashArray arr(s, z.nand_geometry, z.nand_timing);

  auto& results = harness::Results();
  results.Config("zns_profile", "ZN540");
  results.Config("conv_profile", "SN640");
  results.Config("zone_size_mib",
                 static_cast<double>(z.zone_size_bytes >> 20));
  results.Config("zone_cap_mib", static_cast<double>(z.zone_cap_bytes >> 20));
  results.Config("num_zones", static_cast<double>(z.num_zones));
  results.Config("max_open_zones", static_cast<double>(z.max_open_zones));
  results.Config("max_active_zones",
                 static_cast<double>(z.max_active_zones));
  results.Config("nand_channels",
                 static_cast<double>(z.nand_geometry.channels));
  results.Config("nand_dies_per_channel",
                 static_cast<double>(z.nand_geometry.dies_per_channel));
  results.Config("peak_program_mibps",
                 arr.PeakProgramBandwidth() / (1 << 20));
  results.Config("conv_op_fraction", c.op_fraction);
  results.Config("conv_gc_workers", static_cast<double>(c.gc_workers));

  harness::Table t({"component", "configuration"});
  t.AddRow({"ZNS (ZN540 model)",
            "zone size " + std::to_string(z.zone_size_bytes >> 20) +
                " MiB; zone capacity " +
                std::to_string(z.zone_cap_bytes >> 20) + " MiB; " +
                std::to_string(z.num_zones) + " zones; max active " +
                std::to_string(z.max_active_zones) + "; max open " +
                std::to_string(z.max_open_zones)});
  t.AddRow({"ZNS NAND",
            std::to_string(z.nand_geometry.channels) + " channels x " +
                std::to_string(z.nand_geometry.dies_per_channel) +
                " dies; " +
                std::to_string(z.nand_geometry.page_bytes / 1024) +
                " KiB pages; tR 68us, tPROG 433us, tBERS 3.5ms; peak "
                "program bandwidth " +
                harness::Fmt(arr.PeakProgramBandwidth() / (1 << 20), 0) +
                " MiB/s"});
  t.AddRow({"ZNS firmware model",
            "FCP costs read/write/append 2.36/5.37/7.58us; write-back "
            "buffer " +
                std::to_string(z.write_buffer_bytes >> 20) + " MiB"});
  t.AddRow({"NVMe (SN640 model)",
            "page-mapped FTL, " +
                std::to_string(c.physical_bytes() >> 30) +
                " GiB physical (scaled), " +
                harness::Fmt(100 * c.op_fraction, 1) +
                "% OP, greedy GC, " + std::to_string(c.gc_workers) +
                " GC workers"});
  t.AddRow({"LBA formats", "512 B and 4 KiB"});
  t.AddRow({"host stacks",
            "spdk-like (1.01us/op), kernel-like io_uring (2.27us/op), "
            "mq-deadline (+1.85us, zoned write merging to 128 KiB)"});
  t.AddRow({"software",
            "zns-characterize discrete-event simulator, virtual time; "
            "deterministic seeds"});
  t.Print();
  std::printf(
      "  paper testbed: dual Xeon Silver 4210, 256 GiB DDR4, WD ZN540\n"
      "  1TB (904 zones), WD SN640 960GB, Ubuntu 22.04 + kernel 5.19,\n"
      "  fio 3.32, SPDK 22.09\n");
  return 0;
}
