// Appendix Figure 8 — latency/throughput at queue depths 1..64 for append
// (SPDK, one zone) and write (kernel mq-deadline, one zone), at 4, 16 and
// 32 KiB request sizes.
//
// Paper reference: write latency rises much faster than append latency up
// to a threshold (QD ~4), past which the trends match; appends should be
// issued at low QD for latency, and intra-zone appends beat writes on
// latency.
#include <cstdio>
#include <vector>

#include "harness/bench_flags.h"
#include "harness/experiments.h"
#include "harness/parallel.h"
#include "harness/table.h"
#include "zns/profile.h"

using namespace zstor;

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  zns::ZnsProfile profile = zns::Zn540Profile();
  auto& results = harness::Results();
  results.Config("profile", "ZN540");
  const char* sizes[] = {"4KiB", "16KiB", "32KiB"};
  const std::uint64_t reqs[] = {4096, 16384, 32768};
  const std::vector<std::uint32_t> qds = {1, 2, 4, 8, 16, 32, 64};

  // 3 sizes x 7 queue depths, computed up front (possibly on --jobs
  // threads) and recorded serially in index order (harness/parallel.h).
  struct Point {
    harness::QdPoint append, write;
  };
  std::vector<Point> sweep =
      harness::ParallelSweep(3 * qds.size(), [&](std::size_t i) {
        Point p;
        p.append =
            harness::AppendQdPoint(profile, reqs[i / qds.size()],
                                   qds[i % qds.size()]);
        p.write = harness::WriteQdPoint(profile, reqs[i / qds.size()],
                                        qds[i % qds.size()]);
        return p;
      });

  for (int s = 0; s < 3; ++s) {
    harness::Banner(std::string("Figure 8 — ") + sizes[s] +
                    " requests: throughput vs latency by QD");
    harness::Table t({"QD", "append KIOPS", "append mean", "append p95",
                      "write KIOPS", "write mean", "write p95"});
    std::string sz = sizes[s];
    for (std::size_t qi = 0; qi < qds.size(); ++qi) {
      std::uint32_t qd = qds[qi];
      const harness::QdPoint& a = sweep[s * qds.size() + qi].append;
      const harness::QdPoint& w = sweep[s * qds.size() + qi].write;
      results.Series("fig8_append_kiops_" + sz, "KIOPS").Add(qd, a.kiops);
      results.Series("fig8_append_mean_" + sz, "us")
          .Add(qd, a.mean_latency_us);
      results.Series("fig8_append_p95_" + sz, "us").Add(qd, a.p95_latency_us);
      results.Series("fig8_write_kiops_" + sz, "KIOPS").Add(qd, w.kiops);
      results.Series("fig8_write_mean_" + sz, "us")
          .Add(qd, w.mean_latency_us);
      results.Series("fig8_write_p95_" + sz, "us").Add(qd, w.p95_latency_us);
      t.AddRow({std::to_string(qd), harness::FmtKiops(a.kiops),
                harness::FmtUs(a.mean_latency_us),
                harness::FmtUs(a.p95_latency_us),
                harness::FmtKiops(w.kiops),
                harness::FmtUs(w.mean_latency_us),
                harness::FmtUs(w.p95_latency_us)});
    }
    t.Print();
  }
  std::printf(
      "  paper: write latency grows faster with QD than append latency\n"
      "  until a threshold (~4); send appends at low QD for latency\n");
  return 0;
}
