// §IV — open challenges with ZNS emulation: which of the paper's
// observations each emulator's latency model can reproduce.
//
// We run the same probes against three device profiles: the calibrated
// ZN540 model, a FEMU-like profile (no latency model at all) and an
// NVMeVirt-like profile (NAND timing model, but append priced as write,
// static reset cost, no open/close/finish costs), and report which
// observations hold under each.
//
// Paper reference (§IV): FEMU reproduces none of #3-#10/#12-#13;
// NVMeVirt reproduces read/write behavior but fails #4-#6, #9, #10,
// #12, #13.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_flags.h"
#include "harness/experiments.h"
#include "harness/parallel.h"
#include "harness/table.h"
#include "zns/profile.h"

using namespace zstor;
using harness::StackKind;
using nvme::Opcode;

namespace {

struct Probe {
  bool obs3_reqsize;   // write IOPS depend on request size
  bool obs4_append_slower;
  bool obs7_read_scales;
  bool obs9_open_cost;
  bool obs10_reset_occupancy;
  bool obs10_finish_expensive;
  bool obs13_reset_interference;
};

Probe RunProbes(const zns::ZnsProfile& p) {
  Probe out{};
  double w4 = harness::Qd1Kiops(p, Opcode::kWrite, 4096);
  double w64 = harness::Qd1Kiops(p, Opcode::kWrite, 65536);
  out.obs3_reqsize = w4 > 1.25 * w64;

  double wl = harness::Qd1LatencyUs(p, StackKind::kSpdk, Opcode::kWrite,
                                    4096, 4096);
  double al = harness::Qd1LatencyUs(p, StackKind::kSpdk, Opcode::kAppend,
                                    4096, 4096);
  out.obs4_append_slower = al > 1.10 * wl;

  // Obs. 5-7 need per-op saturation points that actually differ (read >
  // write > append); a model with uniform costs shows none.
  auto rsat = harness::IntraZone(p, Opcode::kRead, 4096, 64);
  auto asat = harness::IntraZone(p, Opcode::kAppend, 4096, 8);
  auto wsat = harness::InterZone(p, Opcode::kWrite, 4096, 14);
  out.obs7_read_scales =
      rsat.Kiops() > 1.5 * wsat.Kiops() && wsat.Kiops() > 1.2 * asat.Kiops();

  auto oc = harness::MeasureOpenClose(p);
  out.obs9_open_cost = oc.explicit_open_us > 2.0 &&
                       oc.implicit_write_extra_us > 0.5;

  double reset_half = harness::ResetLatencyMs(p, 0.5, false, 4);
  double reset_full = harness::ResetLatencyMs(p, 1.0, false, 4);
  out.obs10_reset_occupancy = reset_full > 1.2 * reset_half;

  double fin = harness::FinishLatencyMs(p, 0.0, 2);
  out.obs10_finish_expensive = fin > 100.0;

  auto alone = harness::ResetInterference(p, Opcode::kFlush, 12);
  auto busy = harness::ResetInterference(p, Opcode::kWrite, 12);
  out.obs13_reset_interference =
      busy.reset_p95_ms > 1.3 * alone.reset_p95_ms;
  return out;
}

const char* Mark(bool ok) { return ok ? "yes" : "NO"; }

}  // namespace

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  harness::Banner(
      "Section IV — which observations each emulator model reproduces");
  // One probe battery per device model, computed possibly in parallel
  // and recorded serially in index order (see harness/parallel.h).
  const std::vector<zns::ZnsProfile> profiles = {
      zns::Zn540Profile(), zns::FemuLikeProfile(),
      zns::NvmeVirtLikeProfile()};
  std::vector<Probe> probes = harness::ParallelSweep(
      profiles.size(), [&](std::size_t i) { return RunProbes(profiles[i]); });
  const Probe& zn = probes[0];
  const Probe& femu = probes[1];
  const Probe& nvv = probes[2];

  auto& results = harness::Results();
  auto record = [&results](const char* model, const Probe& p) {
    results.Series(std::string("sec4_") + model, "bool")
        .AddLabeled("obs3_reqsize", 0, p.obs3_reqsize ? 1 : 0)
        .AddLabeled("obs4_append_slower", 1, p.obs4_append_slower ? 1 : 0)
        .AddLabeled("obs7_read_scales", 2, p.obs7_read_scales ? 1 : 0)
        .AddLabeled("obs9_open_cost", 3, p.obs9_open_cost ? 1 : 0)
        .AddLabeled("obs10_reset_occupancy", 4,
                    p.obs10_reset_occupancy ? 1 : 0)
        .AddLabeled("obs10_finish_expensive", 5,
                    p.obs10_finish_expensive ? 1 : 0)
        .AddLabeled("obs13_reset_interference", 6,
                    p.obs13_reset_interference ? 1 : 0);
  };
  record("calibrated", zn);
  record("femu_like", femu);
  record("nvmevirt_like", nvv);

  harness::Table t({"observation", "calibrated", "femu-like",
                    "nvmevirt-like", "paper verdict"});
  t.AddRow({"#3 req-size dependence", Mark(zn.obs3_reqsize),
            Mark(femu.obs3_reqsize), Mark(nvv.obs3_reqsize),
            "femu: no"});
  t.AddRow({"#4 append slower than write", Mark(zn.obs4_append_slower),
            Mark(femu.obs4_append_slower), Mark(nvv.obs4_append_slower),
            "femu: no; nvmevirt: no"});
  t.AddRow({"#5-7 per-op saturation order", Mark(zn.obs7_read_scales),
            Mark(femu.obs7_read_scales), Mark(nvv.obs7_read_scales),
            "femu: no; nvmevirt: partial"});
  t.AddRow({"#9 open/close costs", Mark(zn.obs9_open_cost),
            Mark(femu.obs9_open_cost), Mark(nvv.obs9_open_cost),
            "both: no"});
  t.AddRow({"#10 reset ~ occupancy", Mark(zn.obs10_reset_occupancy),
            Mark(femu.obs10_reset_occupancy),
            Mark(nvv.obs10_reset_occupancy), "both: no (static/zero)"});
  t.AddRow({"#10 finish is expensive", Mark(zn.obs10_finish_expensive),
            Mark(femu.obs10_finish_expensive),
            Mark(nvv.obs10_finish_expensive), "both: no"});
  t.AddRow({"#13 I/O inflates reset", Mark(zn.obs13_reset_interference),
            Mark(femu.obs13_reset_interference),
            Mark(nvv.obs13_reset_interference), "both: no"});
  t.Print();
  std::printf(
      "  paper: no current emulator has an accurate model for append or\n"
      "  zone transitions; both should adopt occupancy-based models\n");
  return 0;
}
