// Figure 2 — I/O latencies of append and write operations at QD=1.
//
//  (a) write/append latency across {SPDK, kernel-none, kernel-mq-deadline}
//      x LBA format {512 B, 4 KiB}, request size == LBA size.
//  (b) the best request sizes (4 KiB write / 8 KiB append) per format.
//
// Paper reference values: SPDK 4 KiB write 11.36 us, kernel-none 12.62 us,
// kernel-mq 14.47 us, SPDK 8 KiB append 14.02 us; 512 B format up to ~2x
// slower (Observations #1, #2, #4).
#include <cstdio>
#include <string>

#include "harness/bench_flags.h"
#include "harness/experiments.h"
#include "harness/table.h"
#include "zns/profile.h"

using namespace zstor;
using harness::StackKind;
using nvme::Opcode;

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  zns::ZnsProfile profile = zns::Zn540Profile();
  auto& results = harness::Results();
  results.Config("profile", "ZN540");
  results.Config("qd", 1.0);

  harness::Banner(
      "Figure 2a — QD1 latency, request size == LBA size (us)");
  {
    harness::Table t({"stack", "format", "write", "append"});
    for (StackKind kind : {StackKind::kSpdk, StackKind::kKernelNone,
                           StackKind::kKernelMq}) {
      for (std::uint32_t lba : {512u, 4096u}) {
        double w = harness::Qd1LatencyUs(profile, kind, Opcode::kWrite,
                                         lba, lba);
        double a = harness::Qd1LatencyUs(profile, kind, Opcode::kAppend,
                                         lba, lba);
        std::string label = std::string(harness::ToString(kind)) + "/" +
                            (lba == 512 ? "512B" : "4KiB");
        results.Series("fig2a_write_latency", "us").AddLabeled(label, lba, w);
        results.Series("fig2a_append_latency", "us").AddLabeled(label, lba, a);
        t.AddRow({harness::ToString(kind),
                  lba == 512 ? "512B" : "4KiB", harness::FmtUs(w),
                  harness::FmtUs(a)});
      }
    }
    t.Print();
    std::printf(
        "  paper: spdk/4KiB write=11.36us, kernel-none 12.62us,\n"
        "         kernel-mq 14.47us; 512B format up to ~2x slower (Obs.1)\n");
  }

  harness::Banner(
      "Figure 2b — QD1 latency at the best request sizes (us)");
  {
    harness::Table t(
        {"stack", "format", "write(4KiB)", "append(8KiB)"});
    for (StackKind kind : {StackKind::kSpdk, StackKind::kKernelNone,
                           StackKind::kKernelMq}) {
      for (std::uint32_t lba : {512u, 4096u}) {
        double w = harness::Qd1LatencyUs(profile, kind, Opcode::kWrite,
                                         4096, lba);
        double a = harness::Qd1LatencyUs(profile, kind, Opcode::kAppend,
                                         8192, lba);
        std::string label = std::string(harness::ToString(kind)) + "/" +
                            (lba == 512 ? "512B" : "4KiB");
        results.Series("fig2b_write4k_latency", "us").AddLabeled(label, lba, w);
        results.Series("fig2b_append8k_latency", "us")
            .AddLabeled(label, lba, a);
        t.AddRow({harness::ToString(kind),
                  lba == 512 ? "512B" : "4KiB", harness::FmtUs(w),
                  harness::FmtUs(a)});
      }
    }
    t.Print();
    std::printf(
        "  paper: best write 11.36us (spdk, 4KiB), best append 14.02us\n"
        "         (spdk, 8KiB); write beats append by up to 23%% (Obs.4)\n");
  }
  return 0;
}
