// Figure 2 — I/O latencies of append and write operations at QD=1.
//
//  (a) write/append latency across {SPDK, kernel-none, kernel-mq-deadline}
//      x LBA format {512 B, 4 KiB}, request size == LBA size.
//  (b) the best request sizes (4 KiB write / 8 KiB append) per format.
//
// Paper reference values: SPDK 4 KiB write 11.36 us, kernel-none 12.62 us,
// kernel-mq 14.47 us, SPDK 8 KiB append 14.02 us; 512 B format up to ~2x
// slower (Observations #1, #2, #4).
#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_flags.h"
#include "harness/experiments.h"
#include "harness/parallel.h"
#include "harness/table.h"
#include "zns/profile.h"

using namespace zstor;
using harness::StackKind;
using nvme::Opcode;

namespace {

struct Param {
  StackKind kind;
  std::uint32_t lba;
};

struct Measured {  // all QD1 latencies for one (stack, format) point
  double write_lba = 0, append_lba = 0, write_4k = 0, append_8k = 0;
};

}  // namespace

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  zns::ZnsProfile profile = zns::Zn540Profile();
  auto& results = harness::Results();
  results.Config("profile", "ZN540");
  results.Config("qd", 1.0);

  // Compute every sweep point (possibly on --jobs threads; each point
  // builds its own testbed), then record serially in index order so the
  // output is identical for any job count.
  std::vector<Param> params;
  for (StackKind kind : {StackKind::kSpdk, StackKind::kKernelNone,
                         StackKind::kKernelMq}) {
    for (std::uint32_t lba : {512u, 4096u}) params.push_back({kind, lba});
  }
  std::vector<Measured> sweep =
      harness::ParallelSweep(params.size(), [&](std::size_t i) {
        const Param& p = params[i];
        Measured m;
        m.write_lba = harness::Qd1LatencyUs(profile, p.kind, Opcode::kWrite,
                                            p.lba, p.lba);
        m.append_lba = harness::Qd1LatencyUs(profile, p.kind, Opcode::kAppend,
                                             p.lba, p.lba);
        m.write_4k = harness::Qd1LatencyUs(profile, p.kind, Opcode::kWrite,
                                           4096, p.lba);
        m.append_8k = harness::Qd1LatencyUs(profile, p.kind, Opcode::kAppend,
                                            8192, p.lba);
        return m;
      });

  harness::Banner(
      "Figure 2a — QD1 latency, request size == LBA size (us)");
  {
    harness::Table t({"stack", "format", "write", "append"});
    for (std::size_t i = 0; i < params.size(); ++i) {
      const Param& p = params[i];
      const Measured& m = sweep[i];
      std::string label = std::string(harness::ToString(p.kind)) + "/" +
                          (p.lba == 512 ? "512B" : "4KiB");
      results.Series("fig2a_write_latency", "us")
          .AddLabeled(label, p.lba, m.write_lba);
      results.Series("fig2a_append_latency", "us")
          .AddLabeled(label, p.lba, m.append_lba);
      t.AddRow({harness::ToString(p.kind), p.lba == 512 ? "512B" : "4KiB",
                harness::FmtUs(m.write_lba), harness::FmtUs(m.append_lba)});
    }
    t.Print();
    std::printf(
        "  paper: spdk/4KiB write=11.36us, kernel-none 12.62us,\n"
        "         kernel-mq 14.47us; 512B format up to ~2x slower (Obs.1)\n");
  }

  harness::Banner(
      "Figure 2b — QD1 latency at the best request sizes (us)");
  {
    harness::Table t(
        {"stack", "format", "write(4KiB)", "append(8KiB)"});
    for (std::size_t i = 0; i < params.size(); ++i) {
      const Param& p = params[i];
      const Measured& m = sweep[i];
      std::string label = std::string(harness::ToString(p.kind)) + "/" +
                          (p.lba == 512 ? "512B" : "4KiB");
      results.Series("fig2b_write4k_latency", "us")
          .AddLabeled(label, p.lba, m.write_4k);
      results.Series("fig2b_append8k_latency", "us")
          .AddLabeled(label, p.lba, m.append_8k);
      t.AddRow({harness::ToString(p.kind), p.lba == 512 ? "512B" : "4KiB",
                harness::FmtUs(m.write_4k), harness::FmtUs(m.append_8k)});
    }
    t.Print();
    std::printf(
        "  paper: best write 11.36us (spdk, 4KiB), best append 14.02us\n"
        "         (spdk, 8KiB); write beats append by up to 23%% (Obs.4)\n");
  }
  return 0;
}
