// Ablations of the model's design choices (DESIGN.md §3): each knob is
// varied in isolation to show which measured phenomenon it controls —
// and that the phenomena are mechanisms, not hard-coded numbers.
//
//  1. Write-back buffer size  -> read tail latency under write load
//  2. FCP append cost         -> the append saturation plateau (Obs. 6/7)
//  3. GC watermark hysteresis -> conventional write-throughput CV (Fig. 6a)
//  4. Reset slice length      -> the Obs. 12 / Obs. 13 tradeoff
#include <cstdio>
#include <vector>

#include "ftl/conv_device.h"
#include "harness/bench_flags.h"
#include "harness/experiments.h"
#include "harness/gc_experiment.h"
#include "harness/parallel.h"
#include "harness/table.h"
#include "hostif/spdk_stack.h"
#include "workload/runner.h"
#include "zns/zns_device.h"

using namespace zstor;
using nvme::Opcode;

namespace {

// Read p95 while appends run at full rate, for a given ZNS buffer size.
double ReadP95UnderLoadMs(std::uint64_t buffer_bytes) {
  sim::Simulator s;
  zns::ZnsProfile p = zns::Zn540Profile();
  p.write_buffer_bytes = buffer_bytes;
  zns::ZnsDevice dev(s, p);
  hostif::SpdkStack stack(s, dev);
  workload::JobSpec writer;
  writer.op = Opcode::kAppend;
  writer.request_bytes = 128 * 1024;
  writer.queue_depth = 8;
  writer.workers = 4;
  writer.partition_zones = true;
  writer.zones = {0, 1, 2, 3, 4, 5, 6, 7};
  writer.on_full = workload::JobSpec::OnFull::kReset;
  writer.duration = sim::Seconds(3);
  workload::JobSpec reader;
  reader.op = Opcode::kRead;
  reader.random = true;
  reader.queue_depth = 32;
  reader.duration = sim::Seconds(3);
  reader.warmup = sim::Seconds(1);
  std::uint32_t base = p.num_zones / 2;
  for (std::uint32_t z = base; z < base + 8; ++z) {
    dev.DebugFillZone(z, p.zone_cap_bytes);
    reader.zones.push_back(z);
  }
  auto res = workload::RunJobs(s, {{&stack, writer}, {&stack, reader}});
  return res[1].latency.p95_ns() / 1e6;
}

double AppendSaturationKiops(sim::Time fcp_append) {
  zns::ZnsProfile p = zns::Zn540Profile();
  p.fcp.append = fcp_append;
  return harness::IntraZone(p, Opcode::kAppend, 4096, 8).Kiops();
}

struct OpResult {
  double wa;
  double write_mibps;
};

OpResult ConvOpSweep(double op_fraction) {
  sim::Simulator s;
  ftl::ConvProfile p = ftl::Sn640Profile();
  p.op_fraction = op_fraction;
  // Scale the GC watermarks with the spare area so every OP point leaves
  // room for them.
  auto spare = static_cast<std::uint32_t>(
      static_cast<double>(p.nand_geometry.total_blocks()) * op_fraction);
  p.gc_low_blocks = std::max(16u, spare / 4);
  p.gc_high_blocks = std::max(32u, spare / 2);
  ftl::ConvDevice dev(s, p);
  dev.DebugPrefill();
  hostif::SpdkStack stack(s, dev);
  workload::JobSpec writer;
  writer.op = Opcode::kWrite;
  writer.random = true;
  writer.request_bytes = 128 * 1024;
  writer.queue_depth = 8;
  writer.workers = 4;
  writer.duration = sim::Seconds(8);
  writer.warmup = sim::Seconds(4);
  auto r = workload::RunJob(s, stack, writer);
  return {dev.counters().WriteAmplification(), r.MibPerSec()};
}

struct SliceResult {
  double io_mean_us;
  double reset_p95_ms;
};

SliceResult ResetSliceTradeoff(sim::Time slice) {
  zns::ZnsProfile p = zns::Zn540Profile();
  p.reset.slice = slice;
  auto r = harness::ResetInterference(p, Opcode::kWrite, 16);
  return {r.io_mean_us, r.reset_p95_ms};
}

}  // namespace

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  auto& results = harness::Results();
  // Each ablation's sweep points are computed up front (possibly on
  // --jobs threads) and recorded serially (see harness/parallel.h).
  harness::Banner(
      "Ablation 1 — ZNS write-back buffer size vs read tail under load");
  {
    harness::Table t({"buffer", "read p95 under full-rate appends"});
    const std::vector<std::uint64_t> mibs = {16, 48, 96, 192};
    std::vector<double> sweep =
        harness::ParallelSweep(mibs.size(), [&](std::size_t i) {
          return ReadP95UnderLoadMs(mibs[i] << 20);
        });
    for (std::size_t i = 0; i < mibs.size(); ++i) {
      results.Series("ablation1_read_p95_vs_buffer", "ms")
          .Add(static_cast<double>(mibs[i]), sweep[i]);
      t.AddRow({std::to_string(mibs[i]) + "MiB", harness::FmtMs(sweep[i])});
    }
    t.Print();
    std::printf(
        "  the buffer depth sets the die-queue depth reads wait behind;\n"
        "  96 MiB reproduces the paper's ~98 ms p95 (§III-F)\n");
  }

  harness::Banner(
      "Ablation 2 — FCP append cost vs the append saturation plateau");
  {
    harness::Table t({"fcp.append", "intra-zone append saturation"});
    const std::vector<double> costs = {3.79, 7.58, 15.16};
    std::vector<double> sweep =
        harness::ParallelSweep(costs.size(), [&](std::size_t i) {
          return AppendSaturationKiops(sim::Microseconds(costs[i]));
        });
    for (std::size_t i = 0; i < costs.size(); ++i) {
      results.Series("ablation2_append_saturation", "KIOPS")
          .Add(costs[i], sweep[i]);
      t.AddRow({harness::FmtUs(costs[i]), harness::FmtKiops(sweep[i])});
    }
    t.Print();
    std::printf(
        "  saturation == 1/fcp.append: the 132 KIOPS plateau (Obs. 6/7)\n"
        "  is the firmware's serialized per-append cost, nothing else\n");
  }

  harness::Banner(
      "Ablation 3 — overprovisioning vs write amplification (conv SSD)");
  {
    harness::Table t(
        {"OP fraction", "write amplification", "sustained writes"});
    const std::vector<double> ops = {0.07, 0.125, 0.25};
    std::vector<OpResult> sweep = harness::ParallelSweep(
        ops.size(), [&](std::size_t i) { return ConvOpSweep(ops[i]); });
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const OpResult& r = sweep[i];
      results.Series("ablation3_write_amplification", "").Add(ops[i], r.wa);
      results.Series("ablation3_sustained_write", "MiB/s")
          .Add(ops[i], r.write_mibps);
      t.AddRow({harness::Fmt(100 * ops[i], 1) + "%", harness::Fmt(r.wa, 2),
                harness::FmtMibps(r.write_mibps)});
    }
    t.Print();
    std::printf(
        "  less spare area -> fuller GC victims -> more migration per\n"
        "  reclaimed block: the WA curve every FTL study reports, and\n"
        "  the reason the paper's conventional drive buckles in Fig. 6\n"
        "  while ZNS (WA == 1 by construction) does not\n");
  }

  harness::Banner(
      "Ablation 4 — reset slice length: Obs. 12 vs Obs. 13 coupling");
  {
    harness::Table t(
        {"slice", "concurrent 4KiB write mean", "reset p95"});
    const std::vector<double> slices = {1.0, 16.0, 256.0};
    std::vector<SliceResult> sweep =
        harness::ParallelSweep(slices.size(), [&](std::size_t i) {
          return ResetSliceTradeoff(sim::Microseconds(slices[i]));
        });
    for (std::size_t i = 0; i < slices.size(); ++i) {
      const SliceResult& r = sweep[i];
      results.Series("ablation4_io_mean_vs_slice", "us")
          .Add(slices[i], r.io_mean_us);
      results.Series("ablation4_reset_p95_vs_slice", "ms")
          .Add(slices[i], r.reset_p95_ms);
      t.AddRow({harness::FmtUs(slices[i]), harness::FmtUs(r.io_mean_us),
                harness::FmtMs(r.reset_p95_ms)});
    }
    t.Print();
    std::printf(
        "  fine slices keep I/O latency reset-agnostic (Obs. 12) while\n"
        "  still letting I/O stretch resets (Obs. 13); coarse slices\n"
        "  would make resets visibly delay writes\n");
  }
  return 0;
}
