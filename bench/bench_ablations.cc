// Ablations of the model's design choices (DESIGN.md §3): each knob is
// varied in isolation to show which measured phenomenon it controls —
// and that the phenomena are mechanisms, not hard-coded numbers.
//
//  1. Write-back buffer size  -> read tail latency under write load
//  2. FCP append cost         -> the append saturation plateau (Obs. 6/7)
//  3. GC watermark hysteresis -> conventional write-throughput CV (Fig. 6a)
//  4. Reset slice length      -> the Obs. 12 / Obs. 13 tradeoff
#include <cstdio>

#include "ftl/conv_device.h"
#include "harness/bench_flags.h"
#include "harness/experiments.h"
#include "harness/gc_experiment.h"
#include "harness/table.h"
#include "hostif/spdk_stack.h"
#include "workload/runner.h"
#include "zns/zns_device.h"

using namespace zstor;
using nvme::Opcode;

namespace {

// Read p95 while appends run at full rate, for a given ZNS buffer size.
double ReadP95UnderLoadMs(std::uint64_t buffer_bytes) {
  sim::Simulator s;
  zns::ZnsProfile p = zns::Zn540Profile();
  p.write_buffer_bytes = buffer_bytes;
  zns::ZnsDevice dev(s, p);
  hostif::SpdkStack stack(s, dev);
  workload::JobSpec writer;
  writer.op = Opcode::kAppend;
  writer.request_bytes = 128 * 1024;
  writer.queue_depth = 8;
  writer.workers = 4;
  writer.partition_zones = true;
  writer.zones = {0, 1, 2, 3, 4, 5, 6, 7};
  writer.on_full = workload::JobSpec::OnFull::kReset;
  writer.duration = sim::Seconds(3);
  workload::JobSpec reader;
  reader.op = Opcode::kRead;
  reader.random = true;
  reader.queue_depth = 32;
  reader.duration = sim::Seconds(3);
  reader.warmup = sim::Seconds(1);
  std::uint32_t base = p.num_zones / 2;
  for (std::uint32_t z = base; z < base + 8; ++z) {
    dev.DebugFillZone(z, p.zone_cap_bytes);
    reader.zones.push_back(z);
  }
  auto res = workload::RunJobs(s, {{&stack, writer}, {&stack, reader}});
  return res[1].latency.p95_ns() / 1e6;
}

double AppendSaturationKiops(sim::Time fcp_append) {
  zns::ZnsProfile p = zns::Zn540Profile();
  p.fcp.append = fcp_append;
  return harness::IntraZone(p, Opcode::kAppend, 4096, 8).Kiops();
}

struct OpResult {
  double wa;
  double write_mibps;
};

OpResult ConvOpSweep(double op_fraction) {
  sim::Simulator s;
  ftl::ConvProfile p = ftl::Sn640Profile();
  p.op_fraction = op_fraction;
  // Scale the GC watermarks with the spare area so every OP point leaves
  // room for them.
  auto spare = static_cast<std::uint32_t>(
      static_cast<double>(p.nand_geometry.total_blocks()) * op_fraction);
  p.gc_low_blocks = std::max(16u, spare / 4);
  p.gc_high_blocks = std::max(32u, spare / 2);
  ftl::ConvDevice dev(s, p);
  dev.DebugPrefill();
  hostif::SpdkStack stack(s, dev);
  workload::JobSpec writer;
  writer.op = Opcode::kWrite;
  writer.random = true;
  writer.request_bytes = 128 * 1024;
  writer.queue_depth = 8;
  writer.workers = 4;
  writer.duration = sim::Seconds(8);
  writer.warmup = sim::Seconds(4);
  auto r = workload::RunJob(s, stack, writer);
  return {dev.counters().WriteAmplification(), r.MibPerSec()};
}

struct SliceResult {
  double io_mean_us;
  double reset_p95_ms;
};

SliceResult ResetSliceTradeoff(sim::Time slice) {
  zns::ZnsProfile p = zns::Zn540Profile();
  p.reset.slice = slice;
  auto r = harness::ResetInterference(p, Opcode::kWrite, 16);
  return {r.io_mean_us, r.reset_p95_ms};
}

}  // namespace

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  auto& results = harness::Results();
  harness::Banner(
      "Ablation 1 — ZNS write-back buffer size vs read tail under load");
  {
    harness::Table t({"buffer", "read p95 under full-rate appends"});
    for (std::uint64_t mib : {16ull, 48ull, 96ull, 192ull}) {
      double p95 = ReadP95UnderLoadMs(mib << 20);
      results.Series("ablation1_read_p95_vs_buffer", "ms")
          .Add(static_cast<double>(mib), p95);
      t.AddRow({std::to_string(mib) + "MiB", harness::FmtMs(p95)});
    }
    t.Print();
    std::printf(
        "  the buffer depth sets the die-queue depth reads wait behind;\n"
        "  96 MiB reproduces the paper's ~98 ms p95 (§III-F)\n");
  }

  harness::Banner(
      "Ablation 2 — FCP append cost vs the append saturation plateau");
  {
    harness::Table t({"fcp.append", "intra-zone append saturation"});
    for (double us : {3.79, 7.58, 15.16}) {
      double kiops = AppendSaturationKiops(sim::Microseconds(us));
      results.Series("ablation2_append_saturation", "KIOPS").Add(us, kiops);
      t.AddRow({harness::FmtUs(us), harness::FmtKiops(kiops)});
    }
    t.Print();
    std::printf(
        "  saturation == 1/fcp.append: the 132 KIOPS plateau (Obs. 6/7)\n"
        "  is the firmware's serialized per-append cost, nothing else\n");
  }

  harness::Banner(
      "Ablation 3 — overprovisioning vs write amplification (conv SSD)");
  {
    harness::Table t(
        {"OP fraction", "write amplification", "sustained writes"});
    for (double op : {0.07, 0.125, 0.25}) {
      OpResult r = ConvOpSweep(op);
      results.Series("ablation3_write_amplification", "").Add(op, r.wa);
      results.Series("ablation3_sustained_write", "MiB/s")
          .Add(op, r.write_mibps);
      t.AddRow({harness::Fmt(100 * op, 1) + "%", harness::Fmt(r.wa, 2),
                harness::FmtMibps(r.write_mibps)});
    }
    t.Print();
    std::printf(
        "  less spare area -> fuller GC victims -> more migration per\n"
        "  reclaimed block: the WA curve every FTL study reports, and\n"
        "  the reason the paper's conventional drive buckles in Fig. 6\n"
        "  while ZNS (WA == 1 by construction) does not\n");
  }

  harness::Banner(
      "Ablation 4 — reset slice length: Obs. 12 vs Obs. 13 coupling");
  {
    harness::Table t(
        {"slice", "concurrent 4KiB write mean", "reset p95"});
    for (double us : {1.0, 16.0, 256.0}) {
      SliceResult r = ResetSliceTradeoff(sim::Microseconds(us));
      results.Series("ablation4_io_mean_vs_slice", "us")
          .Add(us, r.io_mean_us);
      results.Series("ablation4_reset_p95_vs_slice", "ms")
          .Add(us, r.reset_p95_ms);
      t.AddRow({harness::FmtUs(us), harness::FmtUs(r.io_mean_us),
                harness::FmtMs(r.reset_p95_ms)});
    }
    t.Print();
    std::printf(
        "  fine slices keep I/O latency reset-agnostic (Obs. 12) while\n"
        "  still letting I/O stretch resets (Obs. 13); coarse slices\n"
        "  would make resets visibly delay writes\n");
  }
  return 0;
}
