// Multi-device scale-out: zone-striped throughput across N simulated
// devices (hostif::StripedStack behind TestbedBuilder::WithDevices).
//
// Each device keeps its own host-stack lane, queue pair and firmware
// command processor, so per-op IOPS ceilings are per-device (§IV: append
// ~132 KIOPS, read ~424 KIOPS on one ZN540) and striping N devices
// multiplies the aggregate until the workload stops supplying enough
// concurrency:
//
//  (a) scaling: 4 KiB append and random read throughput at 1/2/4 devices
//      with fixed per-device load (one worker per device), plus the
//      scaling ratio vs one device. Each point's per-device breakdown
//      goes into the result JSON as `parts` (schema v2).
//  (b) device count x per-device queue depth: the append throughput
//      matrix, showing the ceiling move with N while the QD knee stays
//      per-device.
//
// There is no paper figure for this — the paper measures one device —
// but Obs. 6/7 fix each device's ceilings, which makes near-linear
// scaling the predicted (and asserted) outcome. See DESIGN.md §9.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/bench_flags.h"
#include "harness/parallel.h"
#include "harness/table.h"
#include "harness/testbed.h"
#include "sim/time.h"
#include "workload/job.h"
#include "zns/profile.h"

using namespace zstor;
using nvme::Opcode;

namespace {

constexpr std::uint64_t kRequestBytes = 4096;
// The default sweep; --devices=N restricts it to one point (the speedup
// gate and identity checks time a single device count at several
// --sim-threads values; a restricted run's JSON is not a full result
// set, so don't feed it to tools/validate_results.py).
std::vector<std::uint32_t> kDevices = {1, 2, 4};

Testbed MakeBed(std::uint32_t ndev, const std::string& label) {
  return TestbedBuilder()
      .WithZnsProfile(zns::Zn540Profile())
      .WithDevices(ndev)
      .WithStack(StackChoice::kSpdk)
      .WithLabel(label)
      .Build();
}

/// One worker per device: logical zones 0..ndev-1 map to devices
/// 0..ndev-1 (zone z -> device z % ndev), so partitioning the zone list
/// across workers gives every device exactly one zone's worth of load.
workload::JobSpec PerDeviceSpec(Testbed& tb, std::uint32_t ndev,
                                Opcode op, std::uint32_t per_device_qd,
                                std::uint64_t seed) {
  workload::JobSpec spec;
  spec.op = op;
  spec.random = (op == Opcode::kRead);
  spec.request_bytes = kRequestBytes;
  spec.queue_depth = per_device_qd;
  spec.workers = ndev;
  spec.zones = tb.ZoneList(0, ndev);
  spec.partition_zones = true;
  spec.duration = sim::Milliseconds(500);
  spec.seed = seed;
  return spec;
}

/// Per-device share of the point's throughput, from each device's own
/// command counters (the stripe's ground truth), in KIOPS.
std::vector<double> DeviceParts(Testbed& tb, std::uint32_t ndev, Opcode op,
                                sim::Time span) {
  std::vector<double> parts;
  parts.reserve(ndev);
  const double secs = sim::ToSeconds(span);
  for (std::uint32_t d = 0; d < ndev; ++d) {
    const zns::ZnsCounters& c = tb.zns(d)->counters();
    const std::uint64_t ops = (op == Opcode::kRead) ? c.reads : c.appends;
    parts.push_back(secs > 0 ? static_cast<double>(ops) / secs / 1000.0
                             : 0.0);
  }
  return parts;
}

struct ScalePoint {
  workload::JobResult append, read;
  std::vector<double> append_parts, read_parts;
};

ScalePoint RunScalePoint(std::uint32_t ndev, std::uint32_t per_device_qd) {
  ScalePoint p;
  {
    Testbed tb = MakeBed(ndev, "multidev/append/n" + std::to_string(ndev));
    p.append = tb.RunJob(
        PerDeviceSpec(tb, ndev, Opcode::kAppend, per_device_qd, ndev));
    p.append_parts =
        DeviceParts(tb, ndev, Opcode::kAppend, p.append.measured_span);
  }
  {
    Testbed tb = MakeBed(ndev, "multidev/read/n" + std::to_string(ndev));
    tb.FillZones(0, ndev);
    p.read = tb.RunJob(
        PerDeviceSpec(tb, ndev, Opcode::kRead, 16, 100 + ndev));
    p.read_parts =
        DeviceParts(tb, ndev, Opcode::kRead, p.read.measured_span);
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--devices=", 10) == 0) {
      char* end = nullptr;
      long n = std::strtol(argv[i] + 10, &end, 10);
      if (end == argv[i] + 10 || *end != '\0' || n < 1) {
        std::fprintf(stderr, "error: bad --devices value: %s\n",
                     argv[i] + 10);
        return 2;
      }
      kDevices = {static_cast<std::uint32_t>(n)};
    }
  }
  auto& results = harness::Results();
  results.Config("profile", "ZN540");
  results.Config("stack", ToString(StackChoice::kSpdk));
  results.Config("request_bytes", static_cast<double>(kRequestBytes));
  results.Config("append_per_device_qd", 4.0);
  results.Config("read_per_device_qd", 16.0);

  harness::Banner(
      "Multi-device scaling — 4 KiB, fixed per-device load (KIOPS)");
  {
    std::vector<ScalePoint> sweep =
        harness::ParallelSweep(kDevices.size(), [&](std::size_t i) {
          return RunScalePoint(kDevices[i], 4);
        });
    harness::Table t({"devices", "append", "append x", "read", "read x"});
    const double append1 = sweep[0].append.Kiops();
    const double read1 = sweep[0].read.Kiops();
    for (std::size_t i = 0; i < kDevices.size(); ++i) {
      const std::uint32_t n = kDevices[i];
      const ScalePoint& p = sweep[i];
      const double ax = append1 > 0 ? p.append.Kiops() / append1 : 0;
      const double rx = read1 > 0 ? p.read.Kiops() / read1 : 0;
      results.Series("multidev_append_kiops", "KIOPS")
          .Add(n, p.append.Kiops(), p.append.latency)
          .WithParts(p.append_parts);
      results.Series("multidev_read_kiops", "KIOPS")
          .Add(n, p.read.Kiops(), p.read.latency)
          .WithParts(p.read_parts);
      results.Series("multidev_append_scaling", "x").Add(n, ax);
      results.Series("multidev_read_scaling", "x").Add(n, rx);
      t.AddRow({std::to_string(n), harness::FmtKiops(p.append.Kiops()),
                harness::Fmt(ax, 2), harness::FmtKiops(p.read.Kiops()),
                harness::Fmt(rx, 2)});
    }
    t.Print();
    std::printf(
        "  expected: per-device ceilings (append ~132K, Obs. 6) make the\n"
        "            stripe scale near-linearly: >= 1.8x at 2, >= 3.2x at 4\n");
  }

  harness::Banner(
      "Append throughput — devices x per-device queue depth (KIOPS)");
  {
    const std::vector<std::uint32_t> qds = {1, 2, 4, 8};
    std::vector<workload::JobResult> sweep = harness::ParallelSweep(
        kDevices.size() * qds.size(), [&](std::size_t i) {
          const std::uint32_t n = kDevices[i / qds.size()];
          const std::uint32_t qd = qds[i % qds.size()];
          Testbed tb =
              MakeBed(n, "multidev/matrix/n" + std::to_string(n) + "/qd" +
                             std::to_string(qd));
          return tb.RunJob(
              PerDeviceSpec(tb, n, Opcode::kAppend, qd, 1000 + i));
        });
    harness::Table t({"devices", "qd=1", "qd=2", "qd=4", "qd=8"});
    for (std::size_t di = 0; di < kDevices.size(); ++di) {
      const std::uint32_t n = kDevices[di];
      std::vector<std::string> row = {std::to_string(n)};
      for (std::size_t qi = 0; qi < qds.size(); ++qi) {
        const workload::JobResult& r = sweep[di * qds.size() + qi];
        results.Series("multidev_qd_append_kiops", "KIOPS")
            .AddLabeled("n" + std::to_string(n) + "/qd" +
                            std::to_string(qds[qi]),
                        qds[qi], r.Kiops());
        row.push_back(harness::FmtKiops(r.Kiops()));
      }
      t.AddRow(row);
    }
    t.Print();
    std::printf(
        "  expected: the QD knee (~4 for appends) stays per-device while\n"
        "            the plateau rises with the device count\n");
  }
  return 0;
}
