// Table I — the paper's key-insight summary, regenerated: one measured
// headline number per insight category.
#include <cstdio>

#include "harness/bench_flags.h"
#include "harness/experiments.h"
#include "harness/gc_experiment.h"
#include "harness/parallel.h"
#include "harness/table.h"
#include "zns/profile.h"

using namespace zstor;
using harness::StackKind;
using nvme::Opcode;

int main(int argc, char** argv) {
  harness::InitBench(argc, argv);
  zns::ZnsProfile profile = zns::Zn540Profile();

  harness::Banner("Table I — overview of the key insights (measured)");

  // Every headline is an independent experiment; compute them all
  // concurrently under --jobs and record serially (harness/parallel.h).
  double w = 0, a = 0, finish_empty = 0, merged = 0;
  workload::JobResult intra_read, intra_write, inter_write;
  harness::ResetInterferenceResult reset_alone, reset_write;
  harness::GcExperimentResult conv, zns;
  harness::ParallelTasks({
      [&] {
        w = harness::Qd1LatencyUs(profile, StackKind::kSpdk, Opcode::kWrite,
                                  4096, 4096);
      },
      [&] {
        a = harness::Qd1LatencyUs(profile, StackKind::kSpdk, Opcode::kAppend,
                                  8192, 4096);
      },
      [&] {
        intra_read = harness::IntraZone(profile, Opcode::kRead, 4096, 128);
      },
      [&] {
        intra_write =
            harness::IntraZone(profile, Opcode::kWrite, 4096, 32, &merged);
      },
      [&] {
        inter_write = harness::InterZone(profile, Opcode::kWrite, 4096, 14);
      },
      [&] { finish_empty = harness::FinishLatencyMs(profile, 0.0, 3); },
      [&] {
        reset_alone = harness::ResetInterference(profile, Opcode::kFlush);
      },
      [&] {
        reset_write = harness::ResetInterference(profile, Opcode::kWrite);
      },
      [&] { conv = harness::RunConvGcExperiment(0, sim::Seconds(6), 2); },
      [&] { zns = harness::RunZnsGcExperiment(0, sim::Seconds(6), 2); },
  });
  double gap_pct = 100.0 * (a - w) / a;
  double reset_inc = 100.0 * (reset_write.reset_p95_ms /
                                  reset_alone.reset_p95_ms -
                              1.0);

  auto& results = harness::Results();
  results.Config("profile", "ZN540 + SN640");
  results.Series("table1_headlines", "")
      .AddLabeled("write_qd1_us", 0, w)
      .AddLabeled("append_qd1_us", 1, a)
      .AddLabeled("append_gap_pct", 2, gap_pct)
      .AddLabeled("intra_read_kiops", 3, intra_read.Kiops())
      .AddLabeled("intra_write_kiops", 4, intra_write.Kiops())
      .AddLabeled("inter_write_kiops", 5, inter_write.Kiops())
      .AddLabeled("finish_empty_ms", 6, finish_empty)
      .AddLabeled("reset_p95_increase_pct", 7, reset_inc)
      .AddLabeled("conv_read_mibps", 8, conv.read_mibps_mean)
      .AddLabeled("zns_read_mibps", 9, zns.read_mibps_mean);

  harness::Table t({"category", "measured", "paper"});
  t.AddRow({"append vs. write",
            "write " + harness::FmtUs(w) + " vs append " +
                harness::FmtUs(a) + " (" + harness::Fmt(gap_pct, 1) +
                "% lower)",
            "writes up to 23% lower latency"});
  t.AddRow({"scalability",
            "intra: read " + harness::FmtKiops(intra_read.Kiops()) +
                ", merged write " + harness::FmtKiops(intra_write.Kiops()) +
                " > inter write " + harness::FmtKiops(inter_write.Kiops()),
            "prefer intra-zone scalability"});
  t.AddRow({"zone transitions",
            "finish of near-empty zone " + harness::FmtMs(finish_empty),
            "finish costs up to hundreds of ms"});
  t.AddRow({"I/O interference",
            "read MiB/s under writes: zns " +
                harness::Fmt(zns.read_mibps_mean, 2) + " vs conv " +
                harness::Fmt(conv.read_mibps_mean, 2) + " (fluctuating)",
            "ZNS ~3x higher read throughput under load"});
  t.AddRow({"I/O & GC interference",
            "reset p95 +" + harness::Fmt(reset_inc, 1) +
                "% under writes; I/O unaffected by resets",
            "reset +78% under writes; no reverse effect"});
  t.Print();
  return 0;
}
