// GC showdown: the paper's headline claim (Obs. 11) as a two-minute demo.
// The same write+read workload runs against a conventional SSD (device
// decides when to garbage-collect) and a ZNS SSD (this program IS the
// garbage collector, resetting zones it has consumed). Watch the
// conventional drive's throughput sawtooth while ZNS holds a flat line.
//
//   $ ./gc_showdown
#include <cstdio>

#include "harness/gc_experiment.h"
#include "sim/time.h"

using namespace zstor;

namespace {

void PrintSeries(const char* name, const sim::TimeSeries& ts) {
  // A terminal "plot": one bar per second of simulated time.
  std::printf("%s\n", name);
  double peak = 1;
  for (std::size_t i = 0; i + 1 < ts.num_bins(); ++i) {
    peak = std::max(peak, ts.BinRate(i));
  }
  for (std::size_t i = 0; i + 1 < ts.num_bins(); ++i) {
    double mibps = ts.BinRate(i) / (1 << 20);
    int bar = static_cast<int>(50.0 * ts.BinRate(i) / peak);
    std::printf("  t=%2zus %7.1f MiB/s |%.*s\n", i, mibps, bar,
                "##################################################");
  }
}

}  // namespace

int main() {
  const sim::Time kDuration = sim::Seconds(10);
  std::printf("running the Fig. 6 workload (4 writers x 128 KiB x QD8 + "
              "random 4 KiB reads) on both devices...\n\n");

  harness::GcExperimentResult conv =
      harness::RunConvGcExperiment(/*rate=*/0, kDuration);
  harness::GcExperimentResult zns =
      harness::RunZnsGcExperiment(/*rate=*/0, kDuration);

  PrintSeries("conventional SSD — write throughput (device-side GC):",
              conv.write_series);
  std::printf("\n");
  PrintSeries("ZNS SSD — write throughput (host-side resets):",
              zns.write_series);

  std::printf("\nsummary\n");
  std::printf("  write MiB/s   conv %7.1f (CV %.2f)   zns %7.1f (CV %.2f)\n",
              conv.write_mibps_mean, conv.write_cv, zns.write_mibps_mean,
              zns.write_cv);
  std::printf("  read  MiB/s   conv %7.2f              zns %7.2f\n",
              conv.read_mibps_mean, zns.read_mibps_mean);
  std::printf("  read  p95     conv %7.1f ms           zns %7.1f ms\n",
              conv.read_p95_us / 1000.0, zns.read_p95_us / 1000.0);
  std::printf("  conv write amplification: %.2fx (ZNS: none — the host "
              "resets whole zones)\n",
              conv.write_amplification);
  std::printf("\npaper: conventional throughput fluctuates between a few\n"
              "MiB/s and ~1200 MiB/s under GC; ZNS stays stable "
              "(Obs. 11).\n");
  return 0;
}
