// Quickstart: bring up a simulated ZNS device through the Testbed facade,
// explore the zone state machine, measure the basic operations, and peek
// at the telemetry a run leaves behind — a short tour of the public API.
//
//   $ ./quickstart
//
// Everything runs in virtual time: the device below executes hundreds of
// commands and reports microsecond-accurate latencies, instantly.
#include <cstdio>

#include "harness/testbed.h"
#include "sim/task.h"

using namespace zstor;

int main() {
  // 1. A Testbed bundles the simulator (clock + event loop), a device
  //    calibrated to the WD Ultrastar DC ZN540 the paper characterizes
  //    (904 zones of 1077 MiB capacity, max 14 open/active), and a host
  //    stack — SpdkStack here, the low-latency polled path; see
  //    hostif/kernel_stack.h for the io_uring + mq-deadline model.
  //    Telemetry keeps the last 512 trace events in memory.
  Testbed tb = TestbedBuilder()
                   .WithZnsProfile(zns::Zn540Profile())
                   .WithStack(StackChoice::kSpdk)
                   .WithTelemetry({.ring_capacity = 512})
                   .Build();
  zns::ZnsDevice& device = *tb.zns();
  const auto& info = device.info();
  std::printf("namespace: %u zones, %llu LBAs/zone (%llu writable), "
              "max open %u, max active %u\n",
              info.num_zones,
              static_cast<unsigned long long>(info.zone_size_lbas),
              static_cast<unsigned long long>(info.zone_cap_lbas),
              info.max_open_zones, info.max_active_zones);

  // 2. Applications are coroutines. Issue a few commands and look at
  //    zone state as it changes.
  auto app = [&]() -> sim::Task<> {
    // A write implicitly opens zone 0 (one full 16 KiB NAND page).
    auto w = co_await tb.stack().Submit(
        {.opcode = nvme::Opcode::kWrite, .slba = 0, .nlb = 4});
    std::printf("write:  %s, %.2f us  (zone 0 is now %s)\n",
                nvme::ToString(w.completion.status).data(),
                sim::ToMicroseconds(w.latency()),
                zns::ToString(device.GetZoneState(0)).data());

    // Appends pick their own LBA — the device tells us where data went.
    auto a = co_await tb.stack().Submit(
        {.opcode = nvme::Opcode::kAppend,
         .slba = device.ZoneStartLba(1),
         .nlb = 2});
    std::printf("append: %s, %.2f us  (data landed at LBA %llu)\n",
                nvme::ToString(a.completion.status).data(),
                sim::ToMicroseconds(a.latency()),
                static_cast<unsigned long long>(a.completion.result_lba));

    // Writes must hit the write pointer exactly; this one does not.
    auto bad = co_await tb.stack().Submit(
        {.opcode = nvme::Opcode::kWrite, .slba = 100, .nlb = 1});
    std::printf("write at wrong LBA: %s\n",
                nvme::ToString(bad.completion.status).data());

    // Reads pay the NAND tR (~70 us) once data has drained out of the
    // device's write-back buffer; buffered data reads back in ~4 us.
    co_await tb.sim().Delay(sim::Milliseconds(5));
    auto r = co_await tb.stack().Submit(
        {.opcode = nvme::Opcode::kRead, .slba = 0, .nlb = 1});
    std::printf("read:   %s, %.2f us (NAND tR-bound)\n",
                nvme::ToString(r.completion.status).data(),
                sim::ToMicroseconds(r.latency()));

    // Zone management: finish pads the rest of the zone — the paper's
    // most expensive operation (up to ~900 ms!).
    auto f = co_await tb.stack().Submit(
        {.opcode = nvme::Opcode::kZoneMgmtSend,
         .slba = 0,
         .zone_action = nvme::ZoneAction::kFinish});
    std::printf("finish: %s, %.2f ms (zone 0 is now %s)\n",
                nvme::ToString(f.completion.status).data(),
                sim::ToMilliseconds(f.latency()),
                zns::ToString(device.GetZoneState(0)).data());

    // Reset returns it to Empty; cost depends on how much was mapped.
    auto rst = co_await tb.stack().Submit(
        {.opcode = nvme::Opcode::kZoneMgmtSend,
         .slba = 0,
         .zone_action = nvme::ZoneAction::kReset});
    std::printf("reset:  %s, %.2f ms (zone 0 is now %s)\n",
                nvme::ToString(rst.completion.status).data(),
                sim::ToMilliseconds(rst.latency()),
                zns::ToString(device.GetZoneState(0)).data());
  };
  auto task = app();
  tb.sim().Run();

  std::printf("\nsimulated %.3f ms of device time; counters: %llu writes, "
              "%llu appends, %llu reads, %llu resets\n",
              sim::ToMilliseconds(tb.sim().now()),
              static_cast<unsigned long long>(device.counters().writes),
              static_cast<unsigned long long>(device.counters().appends),
              static_cast<unsigned long long>(device.counters().reads),
              static_cast<unsigned long long>(device.counters().resets));

  // 3. Telemetry: every layer emitted spans into the ring sink — the
  //    per-command breakdown of where virtual time went. Show the first
  //    write's phases (host submit -> queue pair -> FCP -> NAND buffer).
  std::printf("\ntrace of command 1 (%llu events buffered):\n",
              static_cast<unsigned long long>(tb.ring()->total_events()));
  for (const auto& e : tb.ring()->Events()) {
    if (e.cmd != 1) continue;
    std::printf("  %8llu ns  +%-6llu %-8s %s\n",
                static_cast<unsigned long long>(e.begin),
                static_cast<unsigned long long>(e.duration()),
                telemetry::ToString(e.layer), e.name);
  }
  return 0;
}
