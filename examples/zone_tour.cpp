// Zone state-machine tour: drives every transition of the paper's Fig. 1
// on a real (simulated) device and prints the costs along the way —
// explicit/implicit opens, the open/active limits with LRU eviction,
// close, finish, and occupancy-dependent reset.
//
//   $ ./zone_tour
#include <cstdio>

#include "harness/testbed.h"
#include "sim/task.h"
#include "zns/zns_device.h"

using namespace zstor;

namespace {

const char* St(zns::ZnsDevice& d, std::uint32_t z) {
  return zns::ToString(d.GetZoneState(z)).data();
}

}  // namespace

int main() {
  Testbed tb = TestbedBuilder()
                   .WithZnsProfile(zns::Zn540Profile())
                   .WithStack(StackChoice::kSpdk)
                   .Build();
  sim::Simulator& simulator = tb.sim();
  zns::ZnsDevice& dev = *tb.zns();
  hostif::Stack& stack = tb.stack();

  auto mgmt = [&](std::uint32_t zone,
                  nvme::ZoneAction action) -> sim::Task<nvme::TimedCompletion> {
    co_return co_await stack.Submit({.opcode = nvme::Opcode::kZoneMgmtSend,
                                     .slba = dev.ZoneStartLba(zone),
                                     .zone_action = action});
  };

  auto tour = [&]() -> sim::Task<> {
    std::printf("-- explicit transitions --\n");
    auto o = co_await mgmt(0, nvme::ZoneAction::kOpen);
    std::printf("open zone 0 (%.2f us): %s; open=%u active=%u\n",
                sim::ToMicroseconds(o.latency()), St(dev, 0),
                dev.open_zone_count(), dev.active_zone_count());
    (void)co_await stack.Submit(
        {.opcode = nvme::Opcode::kWrite, .slba = 0, .nlb = 8});
    auto c = co_await mgmt(0, nvme::ZoneAction::kClose);
    std::printf("close zone 0 (%.2f us): %s; open=%u active=%u\n",
                sim::ToMicroseconds(c.latency()), St(dev, 0),
                dev.open_zone_count(), dev.active_zone_count());

    std::printf("\n-- implicit opens up to the resource limits --\n");
    // On the ZN540 max-open == max-active == 14, so the active limit
    // always binds first and the device never needs to auto-close an
    // implicitly-opened zone. (With unequal limits the device evicts the
    // LRU implicitly-opened zone; tests exercise that configuration.)
    for (std::uint32_t z = 1; z <= 15; ++z) {
      auto w = co_await stack.Submit({.opcode = nvme::Opcode::kWrite,
                                      .slba = dev.ZoneStartLba(z),
                                      .nlb = 1});
      if (z == 1 || z >= 13) {
        std::printf("write zone %-2u -> %s (%s); open=%u active=%u\n", z,
                    St(dev, z),
                    nvme::ToString(w.completion.status).data(),
                    dev.open_zone_count(), dev.active_zone_count());
      }
    }
    std::printf("\n-- freeing an active slot reopens the door --\n");
    auto rst0 = co_await mgmt(0, nvme::ZoneAction::kReset);
    std::printf("reset zone 0 (%.2f ms): active=%u\n",
                sim::ToMilliseconds(rst0.latency()),
                dev.active_zone_count());
    auto retry = co_await stack.Submit(
        {.opcode = nvme::Opcode::kWrite, .slba = dev.ZoneStartLba(14),
         .nlb = 1});
    std::printf("write zone 14 now: %s; open=%u active=%u\n",
                nvme::ToString(retry.completion.status).data(),
                dev.open_zone_count(), dev.active_zone_count());

    std::printf("\n-- finish: cheap when nearly full, ~1 s when empty --\n");
    auto f1 = co_await mgmt(1, nvme::ZoneAction::kFinish);  // ~1 page written
    std::printf("finish of nearly-empty zone 1: %.1f ms -> %s\n",
                sim::ToMilliseconds(f1.latency()), St(dev, 1));

    std::printf("\n-- reset: cost follows occupancy --\n");
    auto r_small = co_await mgmt(2, nvme::ZoneAction::kReset);  // 1 page
    dev.DebugFillZone(200, dev.profile().zone_cap_bytes / 2);
    auto r_half = co_await mgmt(200, nvme::ZoneAction::kReset);
    dev.DebugFillZone(201, dev.profile().zone_cap_bytes);
    auto r_full = co_await mgmt(201, nvme::ZoneAction::kReset);
    auto r_finished = co_await mgmt(1, nvme::ZoneAction::kReset);
    std::printf("reset 1-page zone:       %8.2f ms\n",
                sim::ToMilliseconds(r_small.latency()));
    std::printf("reset half-full zone:    %8.2f ms (paper: 11.60)\n",
                sim::ToMilliseconds(r_half.latency()));
    std::printf("reset full zone:         %8.2f ms (paper: 16.19)\n",
                sim::ToMilliseconds(r_full.latency()));
    std::printf("reset finished zone:     %8.2f ms (finish-padding must be "
                "unmapped too)\n",
                sim::ToMilliseconds(r_finished.latency()));

    std::printf("\nfinal: %u open / %u active zones still held by the "
                "tour's writers\n",
                dev.open_zone_count(), dev.active_zone_count());
  };
  auto t = tour();
  simulator.Run();
  return 0;
}
