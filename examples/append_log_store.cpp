// A log-structured record store on ZNS — the class of application the
// paper's recommendations target (LSM key-value stores, log-based file
// systems; §II-C, [47]).
//
// Design choices straight from the paper's five recommendations:
//   R2: intra-zone parallelism — all writers append to ONE active zone at
//       QD 4 (appends saturate at concurrency ~4, Obs. 6/7), with >= 8 KiB
//       records for bandwidth.
//   R3: never finish partially-written zones — seal by appending to
//       capacity, not with the (expensive) finish command.
//   R5: run reclaim (reset of expired zones) concurrently with foreground
//       I/O — resets do not disturb reads/appends (Obs. 12).
//
//   $ ./append_log_store
#include <cstdio>
#include <deque>

#include "harness/testbed.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "zns/zns_device.h"

using namespace zstor;

namespace {

// A tiny zone-append log: records go to the active zone; full zones rotate
// into a FIFO of sealed segments; the oldest segments expire and their
// zones are reset for reuse.
class AppendLog {
 public:
  AppendLog(sim::Simulator& s, hostif::Stack& stack,
            zns::ZnsDevice& dev)
      : sim_(s), stack_(stack), dev_(dev) {
    for (std::uint32_t z = 0; z < 8; ++z) free_zones_.push_back(z);
    active_ = TakeZone();
  }

  /// Appends one record; returns the LBA it landed on.
  sim::Task<nvme::Lba> Append(std::uint32_t record_lbas) {
    for (;;) {
      std::uint32_t zone = active_;
      auto tc = co_await stack_.Submit(
          {.opcode = nvme::Opcode::kAppend,
           .slba = dev_.ZoneStartLba(zone),
           .nlb = record_lbas});
      if (tc.completion.ok()) {
        lat_.Record(tc.latency());
        co_return tc.completion.result_lba;
      }
      // Zone full (or about to be): rotate. Concurrent appenders may race
      // here; only the first rotates.
      if (zone == active_) {
        sealed_.push_back(active_);
        if (sealed_.size() > 4) ExpireOldest();
        active_ = TakeZone();
      }
    }
  }

  sim::Task<> Read(nvme::Lba lba, std::uint32_t nlb) {
    auto tc = co_await stack_.Submit(
        {.opcode = nvme::Opcode::kRead, .slba = lba, .nlb = nlb});
    ZSTOR_CHECK(tc.completion.ok());
    read_lat_.Record(tc.latency());
  }

  const sim::LatencyHistogram& append_latency() const { return lat_; }
  const sim::LatencyHistogram& read_latency() const { return read_lat_; }
  std::uint64_t resets() const { return resets_; }

 private:
  std::uint32_t TakeZone() {
    ZSTOR_CHECK_MSG(!free_zones_.empty(), "log ran out of zones");
    std::uint32_t z = free_zones_.front();
    free_zones_.pop_front();
    return z;
  }

  void ExpireOldest() {
    std::uint32_t victim = sealed_.front();
    sealed_.pop_front();
    // R5: reclaim runs concurrently with foreground traffic.
    auto reclaim = [](AppendLog* self, std::uint32_t z) -> sim::Task<> {
      auto tc = co_await self->stack_.Submit(
          {.opcode = nvme::Opcode::kZoneMgmtSend,
           .slba = self->dev_.ZoneStartLba(z),
           .zone_action = nvme::ZoneAction::kReset});
      ZSTOR_CHECK(tc.completion.ok());
      self->free_zones_.push_back(z);
      self->resets_++;
    };
    sim::Spawn(reclaim(this, victim));
  }

  sim::Simulator& sim_;
  hostif::Stack& stack_;
  zns::ZnsDevice& dev_;
  std::uint32_t active_;
  std::deque<std::uint32_t> free_zones_;
  std::deque<std::uint32_t> sealed_;
  sim::LatencyHistogram lat_;
  sim::LatencyHistogram read_lat_;
  std::uint64_t resets_ = 0;
};

}  // namespace

int main() {
  Testbed tb = TestbedBuilder()
                   .WithZnsProfile(zns::Zn540Profile())
                   .WithStack(StackChoice::kSpdk)
                   .Build();
  sim::Simulator& simulator = tb.sim();
  zns::ZnsDevice& dev = *tb.zns();
  AppendLog log(simulator, tb.stack(), dev);

  const std::uint32_t kRecordLbas = 4;  // 16 KiB records (R2: >= 8 KiB)
  const int kWriters = 4;               // QD 4 appends (R2)
  const int kRecordsPerWriter = 100000;

  sim::WaitGroup wg(simulator);
  std::vector<nvme::Lba> recent;
  auto writer = [&](std::uint64_t seed) -> sim::Task<> {
    sim::Rng rng(seed);
    for (int i = 0; i < kRecordsPerWriter; ++i) {
      nvme::Lba lba = co_await log.Append(kRecordLbas);
      if (recent.size() < 4096) recent.push_back(lba);
      // Occasionally read back an earlier record (point lookup).
      if (i % 50 == 7 && !recent.empty()) {
        co_await log.Read(recent[rng.UniformU64(recent.size())],
                          kRecordLbas);
      }
    }
    wg.Done();
  };
  for (int w = 0; w < kWriters; ++w) {
    wg.Add();
    sim::Spawn(writer(1000 + static_cast<std::uint64_t>(w)));
  }
  auto join = [&]() -> sim::Task<> { co_await wg.Wait(); };
  auto j = join();
  simulator.Run();

  double secs = sim::ToSeconds(simulator.now());
  double bytes = static_cast<double>(kWriters) * kRecordsPerWriter *
                 kRecordLbas * 4096.0;
  std::printf("append-log store: %d writers x %d records of %u KiB\n",
              kWriters, kRecordsPerWriter, kRecordLbas * 4);
  std::printf("  ingest:  %.1f MiB/s over %.2f s of device time\n",
              bytes / secs / (1 << 20), secs);
  std::printf("  append:  %s\n", log.append_latency().Summary().c_str());
  std::printf("  read:    %s\n", log.read_latency().Summary().c_str());
  std::printf("  reclaim: %llu zone resets, all overlapped with I/O\n",
              static_cast<unsigned long long>(log.resets()));
  std::printf("  device:  %llu boundary errors absorbed by zone "
              "rotation\n",
              static_cast<unsigned long long>(dev.counters().host_rejects));
  return 0;
}
