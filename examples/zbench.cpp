// zbench: a tiny fio — run any job specification string against the
// simulated ZN540 (or the conventional SN640 model) and print the
// results. The closest thing in this repository to the paper's actual
// NVMeBenchmarks artifact.
//
//   $ ./zbench 'op=append bs=8k qd=4 zones=0 duration=500ms'
//   $ ./zbench --conv 'op=write random=1 bs=128k qd=8 workers=4 duration=2s'
//   $ ./zbench 'op=reset zones=0-49'        # mgmt jobs work too
//
// With no arguments it runs a demonstration job.
#include <cstdio>
#include <cstring>
#include <string>

#include "ftl/conv_device.h"
#include "harness/testbed.h"
#include "workload/spec_parser.h"
#include "zns/zns_device.h"

using namespace zstor;

int main(int argc, char** argv) {
  bool conventional = false;
  std::string spec_text = "op=append bs=8k qd=4 zones=0 duration=500ms";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--conv") == 0) {
      conventional = true;
    } else {
      spec_text = argv[i];
    }
  }

  workload::ParseResult parsed = workload::ParseJobSpec(spec_text);
  if (!parsed.ok) {
    std::fprintf(stderr, "zbench: %s\n", parsed.error.c_str());
    std::fprintf(stderr,
                 "usage: zbench [--conv] 'op=... bs=... qd=... ...'\n");
    return 1;
  }

  TestbedBuilder builder;
  builder.WithStack(StackChoice::kSpdk);
  if (conventional) {
    builder.WithConvProfile(ftl::Sn640Profile());
  } else {
    builder.WithZnsProfile(zns::Zn540Profile());
  }
  Testbed tb = builder.Build();
  if (conventional) {
    tb.conv()->DebugPrefill();  // aged drive, like the paper's
  } else {
    if (parsed.spec.op == nvme::Opcode::kRead) {
      // Random reads need data underneath them.
      if (parsed.spec.zones.empty()) {
        for (std::uint32_t i = 0; i < 4; ++i) parsed.spec.zones.push_back(i);
      }
    }
    if (parsed.spec.op == nvme::Opcode::kRead ||
        (parsed.spec.op == nvme::Opcode::kZoneMgmtSend &&
         parsed.spec.zone_action == nvme::ZoneAction::kReset)) {
      for (std::uint32_t zone : parsed.spec.zones) tb.FillZones(zone, 1);
    }
  }

  std::printf("zbench: %s device, job: %s\n",
              conventional ? "conventional (SN640 model)"
                           : "ZNS (ZN540 model)",
              spec_text.c_str());
  workload::JobResult r = tb.RunJob(parsed.spec);

  std::printf("\nresults over %.3f s measured (of %.3f s simulated):\n",
              sim::ToSeconds(r.measured_span),
              sim::ToSeconds(tb.sim().now()));
  std::printf("  ops      %llu (%.1f KIOPS), errors %llu\n",
              static_cast<unsigned long long>(r.ops), r.Kiops(),
              static_cast<unsigned long long>(r.errors));
  std::printf("  bytes    %.1f MiB (%.1f MiB/s)\n",
              static_cast<double>(r.bytes) / (1 << 20), r.MibPerSec());
  std::printf("  latency  %s\n", r.latency.Summary().c_str());
  if (r.read_latency.count() > 0 && r.write_latency.count() > 0) {
    std::printf("    reads  %s\n", r.read_latency.Summary().c_str());
    std::printf("    writes %s\n", r.write_latency.Summary().c_str());
  }
  if (r.reset_latency.count() > 0) {
    std::printf("  resets   %s\n", r.reset_latency.Summary().c_str());
  }
  return 0;
}
