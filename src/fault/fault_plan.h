// Deterministic fault injection for the NAND layer.
//
// A FaultPlan decides — from a seed and a virtual-time schedule, never from
// wall-clock state — whether a given page read or program suffers a media
// fault. The flash array consults the plan at each cell operation; the plan
// never touches device state itself, it only renders verdicts. Fault sites:
//
//   * correctable read errors: the device re-reads with stepped sensing
//     voltages (a latency penalty per retry step) and the command succeeds,
//   * uncorrectable read errors: ECC is exhausted after the full retry
//     budget and the command completes kMediaReadError,
//   * program failures: the page program fails, the block is retired, and
//     the owning zone degrades (ReadOnly, then Offline once spares run out),
//   * wear-out: P/E cycles beyond a threshold raise the raw bit error rate,
//     so aged blocks fail more often (paper §IV: emulators omit exactly
//     this class of device-internal behavior).
//
// Determinism: the plan owns a private sim::Rng seeded from FaultSpec::seed,
// so enabling faults never perturbs the timing-noise or workload RNG
// streams, and a fixed (seed, schedule, workload) triple reproduces the
// exact same fault sequence. A disabled plan consumes no randomness at all.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"
#include "telemetry/metrics.h"

namespace zstor::fault {

enum class FaultKind : std::uint8_t {
  kReadCorrectable,
  kReadUncorrectable,
  kProgramFail,
};

constexpr std::string_view ToString(FaultKind k) {
  switch (k) {
    case FaultKind::kReadCorrectable: return "read_c";
    case FaultKind::kReadUncorrectable: return "read_uc";
    case FaultKind::kProgramFail: return "prog";
  }
  return "unknown";
}

/// Wildcard die/block for scheduled faults: matches any site.
inline constexpr std::uint32_t kAnySite = 0xFFFF'FFFFu;

/// A one-shot fault armed at a virtual-time instant. It fires on the first
/// matching cell operation at or after `at`, then disarms.
struct ScheduledFault {
  sim::Time at = 0;
  FaultKind kind = FaultKind::kReadUncorrectable;
  std::uint32_t die = kAnySite;
  std::uint32_t block = kAnySite;
};

/// The full fault configuration. Probabilities are per cell operation.
struct FaultSpec {
  bool enabled = false;

  double read_correctable_rate = 0.0;    // P(read needs retry steps)
  double read_uncorrectable_rate = 0.0;  // P(read exhausts ECC)
  double program_fail_rate = 0.0;        // P(program fails, block retired)

  /// Read-retry budget: a correctable error costs 1..max steps of
  /// `read_retry_penalty` die time; an uncorrectable error charges the
  /// full budget before giving up (the drive tried every voltage).
  std::uint32_t max_read_retries = 8;
  sim::Time read_retry_penalty = sim::Microseconds(25);

  /// Wear model: each P/E cycle beyond the threshold adds
  /// `wear_rber_slope` to the correctable-read and program-fail
  /// probabilities (and slope/16 to the uncorrectable probability — ECC
  /// still corrects most wear-induced raw bit errors). 0 disables.
  std::uint32_t wear_threshold_pe = 0;
  double wear_rber_slope = 0.0;

  std::uint64_t seed = 0xFA17'5EED'0000'0003ull;

  std::vector<ScheduledFault> scheduled;

  /// Scheduled power-loss instants (virtual time, sorted by the parser).
  /// At each instant every attached device freezes, applies its loss
  /// semantics (torn in-flight programs, volatile mapping/write-pointer
  /// state dropped) and runs its latency-modeled recovery procedure. The
  /// devices arm these themselves in AttachFaultPlan — unlike the cell-op
  /// faults above, a crash fires at its instant even on an idle device.
  std::vector<sim::Time> crashes;
};

/// Parses a `--faults=` spec string into *out. Grammar: comma-separated
/// key=value pairs (all optional; parsing any spec sets enabled=true):
///
///   seed=N            RNG seed for the fault stream
///   read_c=RATE       correctable read error probability   [0,1]
///   read_uc=RATE      uncorrectable read error probability [0,1]
///   prog=RATE         program failure probability          [0,1]
///   retries=N         read-retry budget (steps)
///   retry_us=F        per-retry-step latency penalty (microseconds)
///   wear_pe=N         P/E-cycle wear threshold (0 = off)
///   wear_slope=RATE   added error probability per cycle over threshold
///   sched=US:KIND:DIE:BLOCK
///                     one-shot fault at virtual time US microseconds;
///                     KIND in {read_c, read_uc, prog}; DIE/BLOCK numeric
///                     or '*' for any site; repeatable
///   crash=US          power loss at virtual time US microseconds; every
///                     attached device freezes, loses volatile state and
///                     recovers; repeatable
///
/// Example: --faults=seed=7,read_uc=0.001,prog=0.0005,sched=1000:prog:0:*
///
/// Returns false (and fills *error) on malformed input; *out is then
/// unspecified.
bool ParseFaultSpec(std::string_view text, FaultSpec* out, std::string* error);

/// Renders a spec back into the canonical grammar (round-trips through
/// ParseFaultSpec); used to label bench results with the active plan.
std::string FormatFaultSpec(const FaultSpec& spec);

struct FaultCounters {
  std::uint64_t correctable_read_errors = 0;
  std::uint64_t uncorrectable_read_errors = 0;
  std::uint64_t program_failures = 0;
  std::uint64_t read_retry_steps = 0;  // total voltage steps charged
  std::uint64_t scheduled_fired = 0;
  std::uint64_t wear_boosted_ops = 0;  // ops whose rates were wear-raised

  /// Exports under the "fault." prefix (shared Describe protocol).
  void Describe(telemetry::MetricsRegistry& m) const;
};

/// Verdict for one page read.
struct ReadVerdict {
  /// Retry voltage steps the die must charge (0 = clean read). Set for
  /// both correctable errors (1..budget) and uncorrectable ones (full
  /// budget — the drive stepped through every voltage before giving up).
  std::uint32_t retry_steps = 0;
  bool uncorrectable = false;
};

/// Verdict for one page program.
struct ProgramVerdict {
  bool fail = false;
};

class FaultPlan {
 public:
  explicit FaultPlan(FaultSpec spec);

  const FaultSpec& spec() const { return spec_; }
  const FaultCounters& counters() const { return counters_; }
  bool enabled() const { return spec_.enabled; }

  /// Consulted by FlashArray before servicing a page read / program.
  /// `pe_cycles` is the block's wear so far (feeds the wear model).
  ReadVerdict OnRead(sim::Time now, std::uint32_t die, std::uint32_t block,
                     std::uint32_t pe_cycles);
  ProgramVerdict OnProgram(sim::Time now, std::uint32_t die,
                           std::uint32_t block, std::uint32_t pe_cycles);

 private:
  /// Added error probability from wear (0 when under threshold/disabled).
  double WearBoost(std::uint32_t pe_cycles);
  /// Fires (and disarms) the first armed schedule entry matching the site
  /// and one of the given kinds; returns its kind or nullopt-like flag.
  bool TakeScheduled(sim::Time now, std::uint32_t die, std::uint32_t block,
                     FaultKind a, FaultKind b, FaultKind* fired);

  FaultSpec spec_;
  std::vector<char> armed_;  // parallel to spec_.scheduled
  sim::Rng rng_;
  FaultCounters counters_;
};

}  // namespace zstor::fault
