#include "fault/fault_plan.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

namespace zstor::fault {
namespace {

// Splits `text` on `sep`, invoking fn(piece) for each (empty pieces
// included so errors point at the right token).
template <typename Fn>
void Split(std::string_view text, char sep, Fn&& fn) {
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(sep, start);
    if (end == std::string_view::npos) end = text.size();
    fn(text.substr(start, end - start));
    start = end + 1;
  }
}

bool ParseU64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  // Accept 0x-prefixed hex for seeds.
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s.remove_prefix(2);
    base = 16;
  }
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out, base);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseRate(std::string_view s, double* out) {
  return ParseDouble(s, out) && *out >= 0.0 && *out <= 1.0;
}

bool ParseKind(std::string_view s, FaultKind* out) {
  if (s == "read_c") *out = FaultKind::kReadCorrectable;
  else if (s == "read_uc") *out = FaultKind::kReadUncorrectable;
  else if (s == "prog") *out = FaultKind::kProgramFail;
  else return false;
  return true;
}

bool ParseSite(std::string_view s, std::uint32_t* out) {
  if (s == "*") {
    *out = kAnySite;
    return true;
  }
  std::uint64_t v = 0;
  if (!ParseU64(s, &v) || v >= kAnySite) return false;
  *out = static_cast<std::uint32_t>(v);
  return true;
}

// sched=US:KIND:DIE:BLOCK
bool ParseScheduled(std::string_view s, ScheduledFault* out) {
  std::vector<std::string_view> parts;
  Split(s, ':', [&](std::string_view p) { parts.push_back(p); });
  if (parts.size() != 4) return false;
  double us = 0.0;
  if (!ParseDouble(parts[0], &us) || us < 0.0) return false;
  out->at = sim::Microseconds(us);
  return ParseKind(parts[1], &out->kind) && ParseSite(parts[2], &out->die) &&
         ParseSite(parts[3], &out->block);
}

}  // namespace

bool ParseFaultSpec(std::string_view text, FaultSpec* out,
                    std::string* error) {
  FaultSpec spec;
  spec.enabled = true;
  bool ok = true;
  auto fail = [&](std::string_view token, const char* why) {
    if (ok && error != nullptr) {
      *error = "bad --faults token '" + std::string(token) + "': " + why;
    }
    ok = false;
  };
  Split(text, ',', [&](std::string_view kv) {
    if (kv.empty()) return;  // tolerate trailing/duplicate commas
    std::size_t eq = kv.find('=');
    if (eq == std::string_view::npos) {
      fail(kv, "expected key=value");
      return;
    }
    std::string_view key = kv.substr(0, eq);
    std::string_view val = kv.substr(eq + 1);
    std::uint64_t u = 0;
    double d = 0.0;
    if (key == "seed") {
      if (!ParseU64(val, &spec.seed)) fail(kv, "seed must be an integer");
    } else if (key == "read_c") {
      if (!ParseRate(val, &spec.read_correctable_rate)) {
        fail(kv, "rate must be in [0,1]");
      }
    } else if (key == "read_uc") {
      if (!ParseRate(val, &spec.read_uncorrectable_rate)) {
        fail(kv, "rate must be in [0,1]");
      }
    } else if (key == "prog") {
      if (!ParseRate(val, &spec.program_fail_rate)) {
        fail(kv, "rate must be in [0,1]");
      }
    } else if (key == "retries") {
      if (!ParseU64(val, &u) || u == 0 || u > 64) {
        fail(kv, "retries must be in [1,64]");
      } else {
        spec.max_read_retries = static_cast<std::uint32_t>(u);
      }
    } else if (key == "retry_us") {
      if (!ParseDouble(val, &d) || d < 0.0) {
        fail(kv, "retry_us must be a non-negative number");
      } else {
        spec.read_retry_penalty = sim::Microseconds(d);
      }
    } else if (key == "wear_pe") {
      if (!ParseU64(val, &u) || u > 0xFFFF'FFFFull) {
        fail(kv, "wear_pe must be a 32-bit integer");
      } else {
        spec.wear_threshold_pe = static_cast<std::uint32_t>(u);
      }
    } else if (key == "wear_slope") {
      if (!ParseRate(val, &spec.wear_rber_slope)) {
        fail(kv, "rate must be in [0,1]");
      }
    } else if (key == "sched") {
      ScheduledFault sf;
      if (!ParseScheduled(val, &sf)) {
        fail(kv, "expected US:KIND:DIE:BLOCK with KIND in "
                 "{read_c,read_uc,prog} and DIE/BLOCK numeric or '*'");
      } else {
        spec.scheduled.push_back(sf);
      }
    } else if (key == "crash") {
      if (!ParseDouble(val, &d) || d < 0.0) {
        fail(kv, "crash must be a non-negative virtual time (microseconds)");
      } else {
        spec.crashes.push_back(sim::Microseconds(d));
      }
    } else {
      fail(kv, "unknown key");
    }
  });
  // Devices arm crashes in order; keep the canonical form sorted so the
  // spec string round-trips regardless of how the user ordered the keys.
  std::sort(spec.crashes.begin(), spec.crashes.end());
  if (ok) *out = spec;
  return ok;
}

std::string FormatFaultSpec(const FaultSpec& spec) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "seed=%llu,read_c=%g,read_uc=%g,prog=%g,retries=%u,"
                "retry_us=%g,wear_pe=%u,wear_slope=%g",
                static_cast<unsigned long long>(spec.seed),
                spec.read_correctable_rate, spec.read_uncorrectable_rate,
                spec.program_fail_rate, spec.max_read_retries,
                sim::ToMicroseconds(spec.read_retry_penalty),
                spec.wear_threshold_pe, spec.wear_rber_slope);
  std::string out = buf;
  for (const ScheduledFault& sf : spec.scheduled) {
    out += ",sched=";
    std::snprintf(buf, sizeof(buf), "%g:", sim::ToMicroseconds(sf.at));
    out += buf;
    out += ToString(sf.kind);
    auto site = [&](std::uint32_t v) {
      if (v == kAnySite) {
        out += ":*";
      } else {
        std::snprintf(buf, sizeof(buf), ":%u", v);
        out += buf;
      }
    };
    site(sf.die);
    site(sf.block);
  }
  for (sim::Time t : spec.crashes) {
    std::snprintf(buf, sizeof(buf), ",crash=%g", sim::ToMicroseconds(t));
    out += buf;
  }
  return out;
}

void FaultCounters::Describe(telemetry::MetricsRegistry& m) const {
  m.GetCounter("fault.correctable_read_errors").Set(correctable_read_errors);
  m.GetCounter("fault.uncorrectable_read_errors")
      .Set(uncorrectable_read_errors);
  m.GetCounter("fault.program_failures").Set(program_failures);
  m.GetCounter("fault.read_retry_steps").Set(read_retry_steps);
  m.GetCounter("fault.scheduled_fired").Set(scheduled_fired);
  m.GetCounter("fault.wear_boosted_ops").Set(wear_boosted_ops);
}

FaultPlan::FaultPlan(FaultSpec spec)
    : spec_(std::move(spec)),
      armed_(spec_.scheduled.size(), 1),
      rng_(spec_.seed) {}

double FaultPlan::WearBoost(std::uint32_t pe_cycles) {
  if (spec_.wear_threshold_pe == 0 || pe_cycles <= spec_.wear_threshold_pe) {
    return 0.0;
  }
  counters_.wear_boosted_ops++;
  return spec_.wear_rber_slope *
         static_cast<double>(pe_cycles - spec_.wear_threshold_pe);
}

bool FaultPlan::TakeScheduled(sim::Time now, std::uint32_t die,
                              std::uint32_t block, FaultKind a, FaultKind b,
                              FaultKind* fired) {
  for (std::size_t i = 0; i < spec_.scheduled.size(); ++i) {
    if (!armed_[i]) continue;
    const ScheduledFault& sf = spec_.scheduled[i];
    if (sf.kind != a && sf.kind != b) continue;
    if (now < sf.at) continue;
    if (sf.die != kAnySite && sf.die != die) continue;
    if (sf.block != kAnySite && sf.block != block) continue;
    armed_[i] = 0;
    counters_.scheduled_fired++;
    *fired = sf.kind;
    return true;
  }
  return false;
}

ReadVerdict FaultPlan::OnRead(sim::Time now, std::uint32_t die,
                              std::uint32_t block, std::uint32_t pe_cycles) {
  ReadVerdict v;
  if (!spec_.enabled) return v;
  FaultKind fired = FaultKind::kReadCorrectable;
  if (TakeScheduled(now, die, block, FaultKind::kReadCorrectable,
                    FaultKind::kReadUncorrectable, &fired)) {
    // Scheduled faults are deterministic: charge the full retry budget.
    v.retry_steps = spec_.max_read_retries;
    v.uncorrectable = fired == FaultKind::kReadUncorrectable;
  } else {
    const double boost = WearBoost(pe_cycles);
    const double p_uc =
        std::min(1.0, spec_.read_uncorrectable_rate + boost / 16.0);
    const double p_c = std::min(1.0, spec_.read_correctable_rate + boost);
    // Zero-rate sites stay free of randomness (see OnProgram).
    const double u = (p_uc + p_c > 0.0) ? rng_.UniformDouble() : 1.0;
    if (u < p_uc) {
      v.retry_steps = spec_.max_read_retries;
      v.uncorrectable = true;
    } else if (u < p_uc + p_c) {
      // 1..budget voltage steps until the read corrects.
      v.retry_steps = 1 + static_cast<std::uint32_t>(
                              rng_.UniformU64(spec_.max_read_retries));
    }
  }
  if (v.uncorrectable) {
    counters_.uncorrectable_read_errors++;
  } else if (v.retry_steps > 0) {
    counters_.correctable_read_errors++;
  }
  counters_.read_retry_steps += v.retry_steps;
  return v;
}

ProgramVerdict FaultPlan::OnProgram(sim::Time now, std::uint32_t die,
                                    std::uint32_t block,
                                    std::uint32_t pe_cycles) {
  ProgramVerdict v;
  if (!spec_.enabled) return v;
  FaultKind fired = FaultKind::kProgramFail;
  if (TakeScheduled(now, die, block, FaultKind::kProgramFail,
                    FaultKind::kProgramFail, &fired)) {
    v.fail = true;
  } else {
    const double p =
        std::min(1.0, spec_.program_fail_rate + WearBoost(pe_cycles));
    // Zero-rate sites must not consume randomness: a plan with only read
    // faults configured renders the same read stream whether or not a
    // program site exists.
    if (p > 0.0) v.fail = rng_.UniformDouble() < p;
  }
  if (v.fail) counters_.program_failures++;
  return v;
}

}  // namespace zstor::fault
