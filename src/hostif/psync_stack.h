// Blocking POSIX-like stack (psync): the classic pread/pwrite path the
// paper's storage-API references measure as the slowest option ([14],
// [82] — POSIX I/O vs libaio vs io_uring vs SPDK). Each operation pays a
// full syscall round trip and the kernel block layer; there is no
// asynchronous submission, so concurrency requires more workers ("one
// thread per outstanding I/O").
#pragma once

#include <cstdint>

#include "hostif/stack.h"
#include "nvme/controller.h"
#include "nvme/queue_pair.h"
#include "sim/simulator.h"

namespace zstor::hostif {

class PsyncStack : public Stack {
 public:
  static constexpr HostCosts kDefaultCosts = {
      .submit = sim::Microseconds(2.6), .complete = sim::Microseconds(2.3)};

  PsyncStack(sim::Simulator& s, nvme::Controller& ctrl,
             std::uint32_t qp_depth = 4096, HostCosts costs = kDefaultCosts)
      : sim_(s), qp_(s, ctrl, qp_depth), costs_(costs), ctrl_(ctrl) {}

  PsyncStack(sim::Simulator& s, nvme::Controller& ctrl, const StackOptions& o)
      : PsyncStack(s, ctrl, o.qp_depth, o.costs.value_or(kDefaultCosts)) {
    if (o.telemetry != nullptr) AttachTelemetry(o.telemetry);
  }

  sim::Task<nvme::TimedCompletion> Submit(nvme::Command cmd) override {
    telemetry::Tracer* tr = trace();
    if (tr != nullptr && cmd.trace_id == 0) {
      cmd.trace_id = tr->NextId();
    }
    sim::Time start = sim_.now();
    // Syscall entry + kernel block layer on the way down...
    co_await sim_.Delay(costs_.submit);
    if (tr != nullptr) {
      tr->Span(start, sim_.now(), cmd.trace_id, telemetry::Layer::kHost,
               "host.submit", static_cast<std::int64_t>(cmd.opcode),
               static_cast<std::int64_t>(cmd.nlb));
    }
    nvme::TimedCompletion tc = co_await qp_.Issue(cmd);
    sim::Time device_done = tc.completed;
    // ...interrupt + completion path + syscall return on the way up.
    co_await sim_.Delay(costs_.complete);
    tc.submitted = start;
    tc.completed = sim_.now();
    if (tr != nullptr) {
      tr->Span(device_done, tc.completed, cmd.trace_id,
               telemetry::Layer::kHost, "host.complete");
      telem_->metrics().GetHistogram("host.latency_ns").Record(tc.latency());
    }
    co_return tc;
  }

  const nvme::NamespaceInfo& info() const override { return ctrl_.info(); }

  void AttachTelemetry(telemetry::Telemetry* t) override {
    telem_ = t;
    qp_.AttachTelemetry(t);
  }

 private:
  sim::Simulator& sim_;
  nvme::QueuePair qp_;
  HostCosts costs_;
  nvme::Controller& ctrl_;
};

}  // namespace zstor::hostif
