// The zone-granular RAID-0 address map shared by every striping layer.
//
// StripedStack (the classic single-simulator scale-out), MailboxStack
// and StripeLaneView (the parallel-engine split of the same namespace)
// must all agree on how logical zones land on devices — extracting the
// arithmetic into one value type keeps them provably consistent:
//
//   logical zone z  ->  device z % N, device zone z / N
#pragma once

#include <cstdint>

#include "nvme/types.h"

namespace zstor::hostif {

struct StripeMap {
  std::uint64_t zone_size_lbas = 0;
  std::uint32_t num_devices = 1;

  std::uint32_t LogicalZoneOf(nvme::Lba lba) const {
    return static_cast<std::uint32_t>(lba / zone_size_lbas);
  }
  /// Device index serving logical zone `lz`.
  std::uint32_t DeviceOf(std::uint32_t lz) const { return lz % num_devices; }
  /// The zone index `lz` maps to on its device.
  std::uint32_t DeviceZoneOf(std::uint32_t lz) const {
    return lz / num_devices;
  }
  /// Logical LBA -> LBA in DeviceOf(zone)'s address space.
  nvme::Lba ToDeviceLba(nvme::Lba logical) const {
    const std::uint32_t lz = LogicalZoneOf(logical);
    const nvme::Lba offset = logical - nvme::Lba{lz} * zone_size_lbas;
    return nvme::Lba{DeviceZoneOf(lz)} * zone_size_lbas + offset;
  }
  /// Device-space LBA on device `d` -> logical LBA (inverse of the
  /// above; used to translate append result LBAs and report entries).
  nvme::Lba ToLogicalLba(std::uint32_t d, nvme::Lba device_lba) const {
    const std::uint32_t dz =
        static_cast<std::uint32_t>(device_lba / zone_size_lbas);
    const nvme::Lba offset = device_lba - nvme::Lba{dz} * zone_size_lbas;
    const std::uint32_t lz = dz * num_devices + d;
    return nvme::Lba{lz} * zone_size_lbas + offset;
  }
};

}  // namespace zstor::hostif
