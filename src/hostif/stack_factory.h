// MakeStack: the one place a StackChoice becomes a concrete host stack.
//
// Before this factory existed, the switch over StackChoice was duplicated
// in the Testbed builder, the integration tests, and anything else that
// wanted "a stack of kind K" — each copy repeating the same constructor
// plumbing. Callers now say what they want (a choice + options) instead of
// how to build it:
//
//   auto made = hostif::MakeStack(StackChoice::kKernelMq, sim, dev,
//                                 {.qp_depth = 64});
//   made.kernel->scheduler_stats();   // non-null for kernel choices
#pragma once

#include <memory>

#include "hostif/kernel_stack.h"
#include "hostif/psync_stack.h"
#include "hostif/spdk_stack.h"
#include "hostif/stack.h"
#include "nvme/controller.h"
#include "sim/simulator.h"

namespace zstor::hostif {

/// A freshly built stack plus its concrete-typed side doors. `kernel` is
/// non-null for the kernel choices (scheduler stats live there).
struct MadeStack {
  std::unique_ptr<Stack> stack;
  KernelStack* kernel = nullptr;
};

inline MadeStack MakeStack(StackChoice choice, sim::Simulator& sim,
                           nvme::Controller& ctrl,
                           const StackOptions& opts = {}) {
  MadeStack out;
  switch (choice) {
    case StackChoice::kSpdk:
      out.stack = std::make_unique<SpdkStack>(sim, ctrl, opts);
      break;
    case StackChoice::kPsync:
      out.stack = std::make_unique<PsyncStack>(sim, ctrl, opts);
      break;
    case StackChoice::kKernelNone: {
      auto k = std::make_unique<KernelStack>(sim, ctrl, Scheduler::kNone,
                                             opts);
      out.kernel = k.get();
      out.stack = std::move(k);
      break;
    }
    case StackChoice::kKernelMq: {
      auto k = std::make_unique<KernelStack>(sim, ctrl,
                                             Scheduler::kMqDeadline, opts);
      out.kernel = k.get();
      out.stack = std::move(k);
      break;
    }
  }
  return out;
}

}  // namespace zstor::hostif
