// Host storage stacks: the software between the benchmark and the device.
//
// The paper uses two stacks (§III-A) and shows their costs matter:
//   * SPDK — polled userspace queue pairs, no scheduler, lowest overhead
//     (Obs. 2). One in-flight write per zone is the caller's problem.
//   * Linux kernel (io_uring, submission-queue polling) with either no
//     scheduler or mq-deadline. mq-deadline buffers writes per zone,
//     merges contiguous ones and dispatches them serially — the mechanism
//     behind Obs. 7's 293 KIOPS intra-zone write throughput.
#pragma once

#include <cstdint>

#include "nvme/queue_pair.h"
#include "nvme/types.h"
#include "sim/task.h"
#include "sim/time.h"
#include "telemetry/telemetry.h"

namespace zstor::hostif {

/// Per-command host-side costs. Submission cost delays the command before
/// it reaches the device; completion cost delays the caller after it.
struct HostCosts {
  sim::Time submit = 0;
  sim::Time complete = 0;
};

/// A host I/O stack. Latency reported by TimedCompletion spans host
/// submission through host completion (the application-observed latency).
class Stack {
 public:
  virtual ~Stack() = default;
  /// Issues one command through the stack and suspends to its completion.
  virtual sim::Task<nvme::TimedCompletion> Submit(nvme::Command cmd) = 0;
  virtual const nvme::NamespaceInfo& info() const = 0;
  /// Enables host-side tracing/metrics (non-owning; null disables).
  /// Implementations forward to their queue pair as well.
  virtual void AttachTelemetry(telemetry::Telemetry* t) { telem_ = t; }

 protected:
  /// The tracer to emit into, or nullptr when telemetry is disabled —
  /// call sites guard on this one pointer and cost nothing otherwise.
  telemetry::Tracer* trace() const {
    return telem_ != nullptr ? &telem_->tracer() : nullptr;
  }

  telemetry::Telemetry* telem_ = nullptr;
};

}  // namespace zstor::hostif
