// Host storage stacks: the software between the benchmark and the device.
//
// The paper uses two stacks (§III-A) and shows their costs matter:
//   * SPDK — polled userspace queue pairs, no scheduler, lowest overhead
//     (Obs. 2). One in-flight write per zone is the caller's problem.
//   * Linux kernel (io_uring, submission-queue polling) with either no
//     scheduler or mq-deadline. mq-deadline buffers writes per zone,
//     merges contiguous ones and dispatches them serially — the mechanism
//     behind Obs. 7's 293 KIOPS intra-zone write throughput.
#pragma once

#include <cstdint>
#include <optional>

#include "nvme/queue_pair.h"
#include "nvme/types.h"
#include "sim/task.h"
#include "sim/time.h"
#include "telemetry/telemetry.h"

namespace zstor::hostif {

/// Per-command host-side costs. Submission cost delays the command before
/// it reaches the device; completion cost delays the caller after it.
struct HostCosts {
  sim::Time submit = 0;
  sim::Time complete = 0;
};

/// Which host software stack services submissions (§III-A, plus the
/// blocking psync path of the paper's storage-API references).
enum class StackChoice { kSpdk, kKernelNone, kKernelMq, kPsync };

constexpr const char* ToString(StackChoice k) {
  switch (k) {
    case StackChoice::kSpdk: return "spdk";
    case StackChoice::kKernelNone: return "kernel-none";
    case StackChoice::kKernelMq: return "kernel-mq-deadline";
    case StackChoice::kPsync: return "psync";
  }
  return "?";
}

/// Everything a concrete stack's constructor used to take positionally,
/// collapsed into one options struct shared by all stacks (and by the
/// MakeStack factory in stack_factory.h). Defaults reproduce each stack's
/// calibrated behavior.
struct StackOptions {
  /// Queue-pair depth: the device-visible in-flight bound, per device.
  std::uint32_t qp_depth = 4096;
  /// Per-command host costs; unset = the stack kind's calibrated default
  /// (e.g. SpdkStack::kDefaultCosts).
  std::optional<HostCosts> costs;
  /// mq-deadline only: per-command scheduler cost and the block layer's
  /// maximum merged-request size.
  sim::Time scheduler_cost = sim::Microseconds(1.85);
  std::uint64_t max_merge_bytes = 128 * 1024;
  /// Attached to the stack (and its queue pair) on construction when
  /// non-null; equivalent to calling AttachTelemetry afterwards.
  telemetry::Telemetry* telemetry = nullptr;
};

/// A host I/O stack. Latency reported by TimedCompletion spans host
/// submission through host completion (the application-observed latency).
class Stack {
 public:
  virtual ~Stack() = default;
  /// Issues one command through the stack and suspends to its completion.
  virtual sim::Task<nvme::TimedCompletion> Submit(nvme::Command cmd) = 0;
  virtual const nvme::NamespaceInfo& info() const = 0;
  /// Enables host-side tracing/metrics (non-owning; null disables).
  /// Implementations forward to their queue pair as well.
  virtual void AttachTelemetry(telemetry::Telemetry* t) { telem_ = t; }

 protected:
  /// The tracer to emit into, or nullptr when telemetry is disabled —
  /// call sites guard on this one pointer and cost nothing otherwise.
  telemetry::Tracer* trace() const {
    return telem_ != nullptr ? &telem_->tracer() : nullptr;
  }

  telemetry::Telemetry* telem_ = nullptr;
};

}  // namespace zstor::hostif
