// StripedStack: one logical zoned namespace over N independently
// simulated devices — RAID-0 at zone granularity.
//
// Each backing device keeps its own full host stack (queue pair, host
// costs, firmware, NAND array), so per-device queue-depth bounds and
// FCP serialization still apply lane-by-lane; the striping layer itself
// charges no virtual time. The address map is round-robin by zone:
//
//   logical zone z  ->  device z % N, device zone z / N
//
// so a workload touching K consecutive logical zones spreads across
// min(K, N) devices, and throughput scales with N until the host-side
// workload (not the devices) is the bottleneck. This mirrors how zoned
// RAID-0 proposals stripe at zone (not LBA) granularity to keep the
// sequential-write rule intact per device: a logical zone IS a physical
// zone, just relocated.
//
// Cross-device semantics:
//   * I/O and per-zone management commands route to exactly one lane;
//     an I/O crossing a logical zone boundary is rejected host-side with
//     kZoneBoundaryError (it would otherwise silently span devices).
//   * Flush and select_all zone management broadcast to every lane and
//     complete when the slowest lane does; the first non-success status
//     (in lane order) is surfaced.
//   * Zone reports are gathered from every lane and re-interleaved in
//     logical zone order with zslba/write_pointer translated back into
//     the logical address space.
//
// What real zoned RAID would add that this deliberately does not: parity
// or mirroring (a lane failure here is surfaced, not repaired), write
// pointer resynchronization after crashes, and per-device capacity
// heterogeneity. See DESIGN.md §9.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "hostif/stack.h"
#include "hostif/stripe_map.h"
#include "nvme/types.h"
#include "sim/check.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "telemetry/telemetry.h"

namespace zstor::hostif {

/// Per-lane (per-device) traffic accounting, kept by the striping layer
/// itself so it works identically over any lane stack type.
struct LaneStats {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;        // completions with !ok()
  std::uint64_t in_flight = 0;     // instantaneous
  std::uint64_t max_in_flight = 0; // high-water mark
};

struct StripeStats {
  std::vector<LaneStats> lanes;
  /// I/O rejected host-side for crossing a logical zone boundary.
  std::uint64_t boundary_rejects = 0;

  /// Exports per-lane counters under the "stripe." prefix (the shared
  /// Describe protocol; see telemetry/metrics.h).
  void Describe(telemetry::MetricsRegistry& m) const {
    m.GetCounter("stripe.devices").Set(lanes.size());
    m.GetCounter("stripe.boundary_rejects").Set(boundary_rejects);
    for (std::size_t d = 0; d < lanes.size(); ++d) {
      const std::string p = "stripe.dev" + std::to_string(d) + ".";
      m.GetCounter(p + "issued").Set(lanes[d].issued);
      m.GetCounter(p + "completed").Set(lanes[d].completed);
      m.GetCounter(p + "errors").Set(lanes[d].errors);
      m.GetCounter(p + "max_in_flight").Set(lanes[d].max_in_flight);
    }
  }
};

namespace detail {

/// One lane's leg of a broadcast. A free coroutine (not a lambda) so the
/// frame owns its parameters; `out` and `wg` live in the caller's frame,
/// which stays suspended on the WaitGroup until every leg calls Done().
inline sim::Task<> RunBroadcastLane(Stack* lane, nvme::Command cmd,
                                    nvme::TimedCompletion* out,
                                    sim::WaitGroup* wg) {
  *out = co_await lane->Submit(cmd);
  wg->Done();
}

}  // namespace detail

class StripedStack : public Stack {
 public:
  /// Takes ownership of one fully built stack per device. All lanes must
  /// expose identical zoned geometry (same zone size/cap and LBA format);
  /// capacity and open/active budgets are summed into the merged view.
  StripedStack(sim::Simulator& s,
               std::vector<std::unique_ptr<Stack>> lanes)
      : sim_(s), lanes_(std::move(lanes)) {
    ZSTOR_CHECK_MSG(!lanes_.empty(), "StripedStack needs >= 1 device");
    const nvme::NamespaceInfo& first = lanes_.front()->info();
    ZSTOR_CHECK_MSG(first.zoned, "StripedStack stripes zoned namespaces");
    info_ = first;
    for (std::size_t d = 1; d < lanes_.size(); ++d) {
      const nvme::NamespaceInfo& ni = lanes_[d]->info();
      ZSTOR_CHECK_MSG(ni.zoned && ni.zone_size_lbas == first.zone_size_lbas &&
                          ni.zone_cap_lbas == first.zone_cap_lbas &&
                          ni.num_zones == first.num_zones &&
                          ni.format.lba_bytes == first.format.lba_bytes,
                      "striped lanes must have identical zoned geometry");
      info_.capacity_lbas += ni.capacity_lbas;
      info_.num_zones += ni.num_zones;
      info_.max_open_zones += ni.max_open_zones;
      info_.max_active_zones += ni.max_active_zones;
    }
    map_ = StripeMap{first.zone_size_lbas,
                     static_cast<std::uint32_t>(lanes_.size())};
    stats_.lanes.resize(lanes_.size());
  }

  sim::Task<nvme::TimedCompletion> Submit(nvme::Command cmd) override {
    telemetry::Tracer* tr = trace();
    if (tr != nullptr && cmd.trace_id == 0) {
      cmd.trace_id = tr->NextId();
    }
    switch (cmd.opcode) {
      case nvme::Opcode::kFlush:
        co_return co_await Broadcast(cmd);
      case nvme::Opcode::kZoneMgmtSend:
        if (cmd.select_all) co_return co_await Broadcast(cmd);
        co_return co_await RouteOne(cmd, tr);
      case nvme::Opcode::kZoneMgmtRecv:
        co_return co_await GatherReport(cmd);
      default:
        co_return co_await RouteOne(cmd, tr);
    }
  }

  const nvme::NamespaceInfo& info() const override { return info_; }

  void AttachTelemetry(telemetry::Telemetry* t) override {
    telem_ = t;
    for (auto& lane : lanes_) lane->AttachTelemetry(t);
  }

  std::size_t num_lanes() const { return lanes_.size(); }
  Stack& lane(std::size_t d) { return *lanes_[d]; }
  const Stack& lane(std::size_t d) const { return *lanes_[d]; }
  const StripeStats& stats() const { return stats_; }

  // --- the address map (stripe_map.h), exposed for tests and the
  // Testbed; the parallel engine's StripeLaneView shares the same math.

  const StripeMap& map() const { return map_; }
  std::uint32_t LogicalZoneOf(nvme::Lba lba) const {
    return map_.LogicalZoneOf(lba);
  }
  /// Device index serving logical zone `lz`.
  std::uint32_t DeviceOf(std::uint32_t lz) const { return map_.DeviceOf(lz); }
  /// The zone index `lz` maps to on its device.
  std::uint32_t DeviceZoneOf(std::uint32_t lz) const {
    return map_.DeviceZoneOf(lz);
  }
  /// Logical LBA -> LBA in DeviceOf(zone)'s address space.
  nvme::Lba ToDeviceLba(nvme::Lba logical) const {
    return map_.ToDeviceLba(logical);
  }
  /// Device-space LBA on device `d` -> logical LBA (inverse of the above;
  /// used to translate append result LBAs and report entries back).
  nvme::Lba ToLogicalLba(std::uint32_t d, nvme::Lba device_lba) const {
    return map_.ToLogicalLba(d, device_lba);
  }

 private:
  sim::Task<nvme::TimedCompletion> RouteOne(nvme::Command cmd,
                                            telemetry::Tracer* tr) {
    const std::uint32_t lz = LogicalZoneOf(cmd.slba);
    const nvme::Lba offset = cmd.slba - nvme::Lba{lz} * info_.zone_size_lbas;
    nvme::TimedCompletion tc;
    if (offset + cmd.nlb > info_.zone_size_lbas) {
      // In a single-device namespace this I/O would reach the controller
      // and fail there; striped, the tail would land on a different
      // device, so reject before any lane sees it.
      stats_.boundary_rejects++;
      tc.completion.status = nvme::Status::kZoneBoundaryError;
      tc.trace_id = cmd.trace_id;
      tc.submitted = sim_.now();
      tc.completed = sim_.now();
      co_return tc;
    }
    const std::uint32_t d = DeviceOf(lz);
    if (tr != nullptr) {
      tr->Instant(sim_.now(), cmd.trace_id, telemetry::Layer::kHost,
                  "stripe.route", static_cast<std::int64_t>(d),
                  static_cast<std::int64_t>(lz));
    }
    nvme::Command routed = cmd;
    routed.slba = ToDeviceLba(cmd.slba);
    LaneStats& ls = stats_.lanes[d];
    ls.issued++;
    ls.in_flight++;
    ls.max_in_flight = std::max(ls.max_in_flight, ls.in_flight);
    tc = co_await lanes_[d]->Submit(routed);
    ls.in_flight--;
    ls.completed++;
    if (!tc.completion.ok()) ls.errors++;
    if (cmd.opcode == nvme::Opcode::kAppend && tc.completion.ok()) {
      tc.completion.result_lba = ToLogicalLba(d, tc.completion.result_lba);
    }
    co_return tc;
  }

  /// Fans `cmd` out to every lane, joins on the slowest, surfaces the
  /// first non-success status in lane order.
  sim::Task<nvme::TimedCompletion> Broadcast(nvme::Command cmd) {
    const sim::Time start = sim_.now();
    std::vector<nvme::TimedCompletion> legs(lanes_.size());
    sim::WaitGroup wg(sim_);
    for (std::size_t d = 0; d < lanes_.size(); ++d) {
      LaneStats& ls = stats_.lanes[d];
      ls.issued++;
      ls.in_flight++;
      ls.max_in_flight = std::max(ls.max_in_flight, ls.in_flight);
      wg.Add();
      sim::Spawn(
          detail::RunBroadcastLane(lanes_[d].get(), cmd, &legs[d], &wg));
    }
    co_await wg.Wait();
    nvme::TimedCompletion tc;
    tc.trace_id = cmd.trace_id;
    for (std::size_t d = 0; d < lanes_.size(); ++d) {
      LaneStats& ls = stats_.lanes[d];
      ls.in_flight--;
      ls.completed++;
      if (!legs[d].completion.ok()) {
        ls.errors++;
        if (tc.completion.ok()) tc.completion.status = legs[d].completion.status;
      }
    }
    tc.submitted = start;
    tc.completed = sim_.now();
    co_return tc;
  }

  /// Full-report gather: every lane reports all of its zones (so legs are
  /// issued concurrently and join on the slowest), then descriptors are
  /// re-interleaved in logical zone order with addresses translated back.
  /// `cmd.slba`'s zone and `report_max` are applied to the logical view,
  /// matching single-device Zone Management Receive semantics.
  sim::Task<nvme::TimedCompletion> GatherReport(nvme::Command cmd) {
    const sim::Time start = sim_.now();
    nvme::Command full = cmd;
    full.slba = 0;
    full.report_max = 0;
    std::vector<nvme::TimedCompletion> legs(lanes_.size());
    sim::WaitGroup wg(sim_);
    for (std::size_t d = 0; d < lanes_.size(); ++d) {
      stats_.lanes[d].issued++;
      wg.Add();
      sim::Spawn(
          detail::RunBroadcastLane(lanes_[d].get(), full, &legs[d], &wg));
    }
    co_await wg.Wait();
    nvme::TimedCompletion tc;
    tc.trace_id = cmd.trace_id;
    for (std::size_t d = 0; d < lanes_.size(); ++d) {
      stats_.lanes[d].completed++;
      if (!legs[d].completion.ok()) {
        stats_.lanes[d].errors++;
        if (tc.completion.ok()) tc.completion.status = legs[d].completion.status;
      }
    }
    if (tc.completion.ok()) {
      const std::uint32_t first_lz = LogicalZoneOf(cmd.slba);
      for (std::uint32_t lz = first_lz; lz < info_.num_zones; ++lz) {
        if (cmd.report_max != 0 &&
            tc.completion.report.size() >= cmd.report_max) {
          break;
        }
        const std::uint32_t d = DeviceOf(lz);
        const std::uint32_t dz = DeviceZoneOf(lz);
        ZSTOR_CHECK(dz < legs[d].completion.report.size());
        nvme::ZoneDescriptor desc = legs[d].completion.report[dz];
        const nvme::Lba dev_zslba = desc.zslba;
        desc.zslba = nvme::Lba{lz} * info_.zone_size_lbas;
        desc.write_pointer = desc.zslba + (desc.write_pointer - dev_zslba);
        tc.completion.report.push_back(desc);
      }
    }
    tc.submitted = start;
    tc.completed = sim_.now();
    co_return tc;
  }

  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Stack>> lanes_;
  nvme::NamespaceInfo info_;
  StripeMap map_;
  StripeStats stats_;
};

}  // namespace zstor::hostif
