// SPDK-like stack: raw polled queue-pair access with minimal per-command
// cost, no I/O scheduler. Calibrated so a 4 KiB SPDK write lands at the
// paper's 11.36 us (device-internal 10.35 us + ~1.01 us host).
#pragma once

#include <cstdint>

#include "hostif/stack.h"
#include "nvme/controller.h"
#include "nvme/queue_pair.h"
#include "sim/simulator.h"

namespace zstor::hostif {

class SpdkStack : public Stack {
 public:
  /// `qp_depth` bounds device-visible in-flight commands; workloads
  /// normally control concurrency themselves, so the default is generous.
  SpdkStack(sim::Simulator& s, nvme::Controller& ctrl,
            std::uint32_t qp_depth = 4096,
            HostCosts costs = {.submit = sim::Microseconds(0.6),
                               .complete = sim::Microseconds(0.41)})
      : sim_(s), qp_(s, ctrl, qp_depth), costs_(costs), ctrl_(ctrl) {}

  sim::Task<nvme::TimedCompletion> Submit(nvme::Command cmd) override {
    sim::Time start = sim_.now();
    co_await sim_.Delay(costs_.submit);
    nvme::TimedCompletion tc = co_await qp_.Issue(cmd);
    co_await sim_.Delay(costs_.complete);
    tc.submitted = start;
    tc.completed = sim_.now();
    co_return tc;
  }

  const nvme::NamespaceInfo& info() const override { return ctrl_.info(); }

 private:
  sim::Simulator& sim_;
  nvme::QueuePair qp_;
  HostCosts costs_;
  nvme::Controller& ctrl_;
};

}  // namespace zstor::hostif
