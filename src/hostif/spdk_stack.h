// SPDK-like stack: raw polled queue-pair access with minimal per-command
// cost, no I/O scheduler. Calibrated so a 4 KiB SPDK write lands at the
// paper's 11.36 us (device-internal 10.35 us + ~1.01 us host).
#pragma once

#include <cstdint>

#include "hostif/stack.h"
#include "nvme/controller.h"
#include "nvme/queue_pair.h"
#include "sim/simulator.h"

namespace zstor::hostif {

class SpdkStack : public Stack {
 public:
  static constexpr HostCosts kDefaultCosts = {
      .submit = sim::Microseconds(0.6), .complete = sim::Microseconds(0.41)};

  /// `qp_depth` bounds device-visible in-flight commands; workloads
  /// normally control concurrency themselves, so the default is generous.
  SpdkStack(sim::Simulator& s, nvme::Controller& ctrl,
            std::uint32_t qp_depth = 4096, HostCosts costs = kDefaultCosts)
      : sim_(s), qp_(s, ctrl, qp_depth), costs_(costs), ctrl_(ctrl) {}

  SpdkStack(sim::Simulator& s, nvme::Controller& ctrl, const StackOptions& o)
      : SpdkStack(s, ctrl, o.qp_depth, o.costs.value_or(kDefaultCosts)) {
    if (o.telemetry != nullptr) AttachTelemetry(o.telemetry);
  }

  sim::Task<nvme::TimedCompletion> Submit(nvme::Command cmd) override {
    telemetry::Tracer* tr = trace();
    if (tr != nullptr && cmd.trace_id == 0) {
      cmd.trace_id = tr->NextId();
    }
    sim::Time start = sim_.now();
    co_await sim_.Delay(costs_.submit);
    if (tr != nullptr) {
      tr->Span(start, sim_.now(), cmd.trace_id, telemetry::Layer::kHost,
               "host.submit", static_cast<std::int64_t>(cmd.opcode),
               static_cast<std::int64_t>(cmd.nlb));
    }
    nvme::TimedCompletion tc = co_await qp_.Issue(cmd);
    sim::Time device_done = tc.completed;
    co_await sim_.Delay(costs_.complete);
    tc.submitted = start;
    tc.completed = sim_.now();
    if (tr != nullptr) {
      tr->Span(device_done, tc.completed, cmd.trace_id,
               telemetry::Layer::kHost, "host.complete");
      telem_->metrics().GetHistogram("host.latency_ns").Record(tc.latency());
    }
    co_return tc;
  }

  const nvme::NamespaceInfo& info() const override { return ctrl_.info(); }

  void AttachTelemetry(telemetry::Telemetry* t) override {
    telem_ = t;
    qp_.AttachTelemetry(t);
  }

 private:
  sim::Simulator& sim_;
  nvme::QueuePair qp_;
  HostCosts costs_;
  nvme::Controller& ctrl_;
};

}  // namespace zstor::hostif
