// Kernel-like stack (io_uring with SQ polling) with an optional
// mq-deadline scheduler.
//
// mq-deadline semantics for zoned writes (as in the Linux block layer):
// writes to a zone are staged per zone, contiguous staged writes are
// merged into one larger request, and a zone has at most one write in
// flight — which both preserves the sequential-write rule and produces
// the dramatic intra-zone write throughput of Obs. 7 (merged 4 KiB
// writes reach the device's bandwidth limit instead of its per-command
// rate).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "hostif/stack.h"
#include "nvme/controller.h"
#include "nvme/queue_pair.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace zstor::hostif {

enum class Scheduler { kNone, kMqDeadline };

struct SchedulerStats {
  std::uint64_t staged_writes = 0;     // writes that entered the scheduler
  std::uint64_t dispatched_writes = 0; // requests sent to the device
  std::uint64_t merged_writes = 0;     // writes coalesced into another
  double MergedFraction() const {
    return staged_writes == 0
               ? 0.0
               : static_cast<double>(merged_writes) /
                     static_cast<double>(staged_writes);
  }

  /// Exports scheduler counters under the "sched." prefix (the shared
  /// Describe protocol; see telemetry/metrics.h).
  void Describe(telemetry::MetricsRegistry& m) const {
    m.GetCounter("sched.staged_writes").Set(staged_writes);
    m.GetCounter("sched.dispatched_writes").Set(dispatched_writes);
    m.GetCounter("sched.merged_writes").Set(merged_writes);
    m.GetGauge("sched.merged_fraction").Set(MergedFraction());
  }
};

class KernelStack : public Stack {
 public:
  static constexpr HostCosts kDefaultCosts = {
      .submit = sim::Microseconds(1.2), .complete = sim::Microseconds(1.07)};

  KernelStack(sim::Simulator& s, nvme::Controller& ctrl, Scheduler sched,
              std::uint32_t qp_depth = 4096, HostCosts costs = kDefaultCosts,
              sim::Time scheduler_cost = sim::Microseconds(1.85),
              std::uint64_t max_merge_bytes = 128 * 1024)
      : sim_(s),
        ctrl_(ctrl),
        qp_(s, ctrl, qp_depth),
        sched_(sched),
        costs_(costs),
        scheduler_cost_(scheduler_cost),
        max_merge_bytes_(max_merge_bytes) {}

  KernelStack(sim::Simulator& s, nvme::Controller& ctrl, Scheduler sched,
              const StackOptions& o)
      : KernelStack(s, ctrl, sched, o.qp_depth,
                    o.costs.value_or(kDefaultCosts), o.scheduler_cost,
                    o.max_merge_bytes) {
    if (o.telemetry != nullptr) AttachTelemetry(o.telemetry);
  }

  sim::Task<nvme::TimedCompletion> Submit(nvme::Command cmd) override {
    telemetry::Tracer* tr = trace();
    if (tr != nullptr && cmd.trace_id == 0) {
      cmd.trace_id = tr->NextId();
    }
    sim::Time start = sim_.now();
    sim::Time overhead =
        costs_.submit +
        (sched_ == Scheduler::kMqDeadline ? scheduler_cost_ : 0);
    co_await sim_.Delay(overhead);
    if (tr != nullptr) {
      tr->Span(start, sim_.now(), cmd.trace_id, telemetry::Layer::kHost,
               "host.submit", static_cast<std::int64_t>(cmd.opcode),
               static_cast<std::int64_t>(cmd.nlb));
    }
    nvme::TimedCompletion tc;
    if (sched_ == Scheduler::kMqDeadline &&
        cmd.opcode == nvme::Opcode::kWrite && info().zoned) {
      sim::Time staged_at = sim_.now();
      tc.completion = co_await StageZonedWrite(cmd);
      tc.trace_id = cmd.trace_id;
      if (tr != nullptr) {
        // The whole scheduler round trip: staging, possibly merging into a
        // neighbor's request, device service of the dispatched batch.
        tr->Span(staged_at, sim_.now(), cmd.trace_id,
                 telemetry::Layer::kHost, "sched.wait",
                 static_cast<std::int64_t>(ZoneOf(cmd.slba)));
      }
    } else {
      tc = co_await qp_.Issue(cmd);
    }
    sim::Time device_done = sim_.now();
    co_await sim_.Delay(costs_.complete);
    tc.submitted = start;
    tc.completed = sim_.now();
    if (tr != nullptr) {
      tr->Span(device_done, tc.completed, cmd.trace_id,
               telemetry::Layer::kHost, "host.complete");
      telem_->metrics().GetHistogram("host.latency_ns").Record(tc.latency());
    }
    co_return tc;
  }

  const nvme::NamespaceInfo& info() const override { return ctrl_.info(); }
  const SchedulerStats& scheduler_stats() const { return sched_stats_; }

  void AttachTelemetry(telemetry::Telemetry* t) override {
    telem_ = t;
    qp_.AttachTelemetry(t);
  }

 private:
  /// One staged write. Owned by the coroutine frame of the waiter in
  /// StageZonedWrite — it outlives every queue/batch reference because the
  /// waiter only returns after `done` fires.
  struct Request {
    nvme::Command cmd;
    nvme::Completion completion;
    sim::OneShotEvent done;
    explicit Request(sim::Simulator& s, nvme::Command c)
        : cmd(c), done(s) {}
  };

  struct ZoneQueue {
    std::deque<Request*> staged;
    bool in_flight = false;
  };

  std::uint32_t ZoneOf(nvme::Lba lba) const {
    return static_cast<std::uint32_t>(lba / info().zone_size_lbas);
  }

  sim::Task<nvme::Completion> StageZonedWrite(nvme::Command cmd) {
    std::uint32_t zid = ZoneOf(cmd.slba);
    Request req(sim_, cmd);  // lives in this coroutine frame
    zones_[zid].staged.push_back(&req);
    sched_stats_.staged_writes++;
    MaybeDispatch(zid);
    co_await req.done.Wait();
    co_return req.completion;
  }

  void MaybeDispatch(std::uint32_t zid) {
    ZoneQueue& zq = zones_[zid];
    if (zq.in_flight || zq.staged.empty()) return;
    // Merge the longest contiguous run from the head, bounded by the
    // block layer's maximum request size.
    std::vector<Request*> batch;
    batch.push_back(zq.staged.front());
    zq.staged.pop_front();
    const std::uint32_t lba_bytes = info().format.lba_bytes;
    nvme::Lba end = batch[0]->cmd.slba + batch[0]->cmd.nlb;
    std::uint64_t bytes =
        static_cast<std::uint64_t>(batch[0]->cmd.nlb) * lba_bytes;
    while (!zq.staged.empty()) {
      Request& next = *zq.staged.front();
      std::uint64_t next_bytes =
          static_cast<std::uint64_t>(next.cmd.nlb) * lba_bytes;
      if (next.cmd.slba != end || bytes + next_bytes > max_merge_bytes_) {
        break;
      }
      end += next.cmd.nlb;
      bytes += next_bytes;
      sched_stats_.merged_writes++;
      batch.push_back(zq.staged.front());
      zq.staged.pop_front();
    }
    zq.in_flight = true;
    sched_stats_.dispatched_writes++;
    sim::Spawn(DispatchBatch(zid, std::move(batch)));
  }

  sim::Task<> DispatchBatch(std::uint32_t zid,
                            std::vector<Request*> batch) {
    nvme::Command merged = batch.front()->cmd;
    std::uint32_t nlb = 0;
    for (const Request* r : batch) nlb += r->cmd.nlb;
    merged.nlb = nlb;
    if (telemetry::Tracer* tr = trace(); tr != nullptr) {
      // The merged request is a new device-visible command; give it its
      // own id so device spans aren't misattributed to the head write.
      merged.trace_id = tr->NextId();
      tr->Instant(sim_.now(), merged.trace_id, telemetry::Layer::kHost,
                  "sched.dispatch", static_cast<std::int64_t>(zid),
                  static_cast<std::int64_t>(batch.size()));
    }
    nvme::TimedCompletion tc = co_await qp_.Issue(merged);
    for (Request* r : batch) {
      r->completion = tc.completion;
      r->done.Set();
    }
    zones_[zid].in_flight = false;
    MaybeDispatch(zid);
  }

  sim::Simulator& sim_;
  nvme::Controller& ctrl_;
  nvme::QueuePair qp_;
  Scheduler sched_;
  HostCosts costs_;
  sim::Time scheduler_cost_;
  std::uint64_t max_merge_bytes_;
  std::unordered_map<std::uint32_t, ZoneQueue> zones_;
  SchedulerStats sched_stats_;
};

}  // namespace zstor::hostif
