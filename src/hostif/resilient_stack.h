// ResilientStack: host-side error handling wrapped around any Stack.
//
// Real deployments do not hand raw NVMe completions to the application —
// the kernel (and SPDK's bdev layer) retries transient media errors,
// enforces per-command timeouts, and only surfaces an error once the
// retry budget is spent or the failure is clearly permanent. This
// decorator reproduces that layer in virtual time:
//
//   * classification — Classify() splits statuses into retryable
//     (uncorrectable reads, internal errors, host timeouts: a re-issued
//     command may succeed) and terminal (validation failures and
//     state-machine rejections: re-issuing the same command cannot help;
//     kWriteFault is terminal because the data is gone and the zone is
//     degraded — recovery is a rewrite elsewhere, a caller decision);
//   * retry policy — up to max_attempts issues of the same command with
//     exponential backoff in virtual time between attempts;
//   * per-attempt timeout — an attempt that outlives `timeout` fails with
//     kHostTimeout and is re-issued. The timed-out attempt is NOT
//     cancelled (commands in flight cannot be revoked from a real device
//     either); its eventual completion is dropped, and the retry can
//     therefore duplicate device work — exactly the hazard real timeout
//     handling has.
//   * controller-reset replay (DESIGN.md §11) — kDeviceReset means a
//     power loss interrupted the command and the device recovered with
//     some prefix of its effects durable. For zone appends the blind
//     re-issue would be wrong twice over: if the append actually landed
//     before the cut, retrying duplicates it. The stack therefore keeps a
//     per-zone expected-write-pointer cache (valid under the one
//     in-flight-append-per-zone discipline zobj and the bench harness
//     follow) and, before retrying, re-reads the zone's recovered write
//     pointer: if it already advanced past the append, the attempt is
//     settled as a success at the remembered LBA (`replayed_dupes`)
//     instead of being re-driven.
//
// All attempts share one trace id, so a traced command shows its full
// retry history: per-failed-attempt "host.retry" spans, "host.timeout"
// instants, and a "host.error" instant when the surfaced completion is an
// error (ztrace derives per-op-class retry counts and error rates from
// these). ResilienceStats speaks the shared Describe protocol under the
// "hostif." prefix.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "hostif/stack.h"
#include "nvme/queue_pair.h"
#include "sim/check.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "telemetry/telemetry.h"

namespace zstor::hostif {

/// How hard the host fights before surfacing an error to the caller.
struct RetryPolicy {
  /// Total issues of the command, including the first (>= 1).
  std::uint32_t max_attempts = 4;
  /// Virtual-time delay before the first re-issue...
  sim::Time backoff = sim::Microseconds(50);
  /// ...multiplied by this after every failed attempt.
  double backoff_multiplier = 2.0;
  /// Per-attempt timeout; 0 disables. Attempts that exceed it complete
  /// host-side with kHostTimeout and count as retryable.
  sim::Time timeout = 0;
};

enum class ErrorClass : std::uint8_t { kSuccess, kRetryable, kTerminal };

constexpr std::string_view ToString(ErrorClass c) {
  switch (c) {
    case ErrorClass::kSuccess: return "success";
    case ErrorClass::kRetryable: return "retryable";
    case ErrorClass::kTerminal: return "terminal";
  }
  return "unknown";
}

/// The host's triage of a completion status (see file comment).
constexpr ErrorClass Classify(nvme::Status s) {
  switch (s) {
    case nvme::Status::kSuccess:
      return ErrorClass::kSuccess;
    case nvme::Status::kMediaReadError:
    case nvme::Status::kInternalError:
    case nvme::Status::kHostTimeout:
    case nvme::Status::kDeviceReset:  // power-loss outage: device comes back
      return ErrorClass::kRetryable;
    default:
      return ErrorClass::kTerminal;
  }
}

struct ResilienceStats {
  std::uint64_t commands = 0;         // Submit() calls
  std::uint64_t attempts = 0;         // device issues (>= commands)
  std::uint64_t retries = 0;          // re-issues after a retryable error
  std::uint64_t timeouts = 0;         // attempts failed by the timeout
  std::uint64_t recovered = 0;        // commands that failed, then succeeded
  std::uint64_t terminal_errors = 0;  // gave up: terminal status
  std::uint64_t retries_exhausted = 0;  // gave up: attempt budget spent
  std::uint64_t device_resets_seen = 0;  // kDeviceReset completions observed
  std::uint64_t replayed_dupes = 0;   // appends settled by wp re-validation

  /// Exports every counter into the registry under the "hostif." prefix
  /// (the shared Describe protocol; see telemetry/metrics.h).
  void Describe(telemetry::MetricsRegistry& m) const {
    m.GetCounter("hostif.commands").Set(commands);
    m.GetCounter("hostif.attempts").Set(attempts);
    m.GetCounter("hostif.retries").Set(retries);
    m.GetCounter("hostif.timeouts").Set(timeouts);
    m.GetCounter("hostif.recovered").Set(recovered);
    m.GetCounter("hostif.terminal_errors").Set(terminal_errors);
    m.GetCounter("hostif.retries_exhausted").Set(retries_exhausted);
    m.GetCounter("hostif.device_resets_seen").Set(device_resets_seen);
    m.GetCounter("hostif.replayed_dupes").Set(replayed_dupes);
  }
};

namespace detail {

/// State shared between an attempt, its timeout watchdog, and the waiter.
/// Heap-held via shared_ptr because the loser of the race outlives the
/// Submit() frame that started it.
struct AttemptState {
  nvme::TimedCompletion tc{};
  bool settled = false;
  bool timed_out = false;
  sim::OneShotEvent done;
  explicit AttemptState(sim::Simulator& s) : done(s) {}
};

// Free coroutines (not lambdas): the frames own their parameters, so they
// stay valid after Submit() has moved on (see DESIGN.md on capture rules).

inline sim::Task<> RunAttempt(Stack* inner, nvme::Command cmd,
                              std::shared_ptr<AttemptState> st) {
  nvme::TimedCompletion tc = co_await inner->Submit(cmd);
  if (!st->settled) {
    st->settled = true;
    st->tc = tc;
    st->done.Set();
  }
  // Otherwise the attempt already timed out; the completion is dropped.
}

inline sim::Task<> ArmTimeout(sim::Simulator* s, sim::Time after,
                              std::shared_ptr<AttemptState> st) {
  co_await s->Delay(after);
  if (!st->settled) {
    st->settled = true;
    st->timed_out = true;
    st->done.Set();
  }
}

}  // namespace detail

class ResilientStack : public Stack {
 public:
  ResilientStack(sim::Simulator& s, Stack& inner, RetryPolicy policy = {})
      : sim_(s), inner_(inner), policy_(policy) {
    ZSTOR_CHECK_MSG(policy_.max_attempts >= 1,
                    "RetryPolicy needs at least one attempt");
    ZSTOR_CHECK(policy_.backoff_multiplier >= 1.0);
  }

  sim::Task<nvme::TimedCompletion> Submit(nvme::Command cmd) override {
    telemetry::Tracer* tr = trace();
    if (tr != nullptr && cmd.trace_id == 0) {
      // One id for the whole command: every attempt's device spans and the
      // retry spans below correlate under it.
      cmd.trace_id = tr->NextId();
    }
    const sim::Time start = sim_.now();
    stats_.commands++;
    sim::Time backoff = policy_.backoff;
    nvme::TimedCompletion tc;
    std::uint32_t attempt = 1;
    for (;; ++attempt) {
      stats_.attempts++;
      const sim::Time attempt_begin = sim_.now();
      tc = co_await IssueOnce(cmd, attempt, tr);
      const ErrorClass cls = Classify(tc.completion.status);
      if (cls == ErrorClass::kSuccess) {
        if (attempt > 1) stats_.recovered++;
        break;
      }
      if (cls == ErrorClass::kTerminal) {
        stats_.terminal_errors++;
        break;
      }
      if (tc.completion.status == nvme::Status::kDeviceReset) {
        stats_.device_resets_seen++;
        if (tr != nullptr) {
          tr->Instant(sim_.now(), cmd.trace_id, telemetry::Layer::kHost,
                      "host.reset", static_cast<std::int64_t>(attempt));
        }
        if (cmd.opcode == nvme::Opcode::kAppend) {
          std::optional<nvme::Lba> landed = co_await TryAppendReplay(cmd);
          if (landed.has_value()) {
            // The lost append is already durable at the expected LBA:
            // settle it instead of re-driving a duplicate.
            stats_.replayed_dupes++;
            stats_.recovered++;
            tc.completion.status = nvme::Status::kSuccess;
            tc.completion.result_lba = *landed;
            if (tr != nullptr) {
              tr->Instant(sim_.now(), cmd.trace_id, telemetry::Layer::kHost,
                          "host.replay_dupe",
                          static_cast<std::int64_t>(*landed),
                          static_cast<std::int64_t>(cmd.nlb));
            }
            break;
          }
        }
      }
      if (attempt >= policy_.max_attempts) {
        stats_.retries_exhausted++;
        break;
      }
      stats_.retries++;
      if (tr != nullptr) {
        // One span per spent (about-to-be-retried) attempt; ztrace counts
        // these to report per-command retry totals.
        tr->Span(attempt_begin, sim_.now(), cmd.trace_id,
                 telemetry::Layer::kHost, "host.retry",
                 static_cast<std::int64_t>(attempt),
                 static_cast<std::int64_t>(tc.completion.status));
      }
      if (backoff > 0) {
        co_await sim_.Delay(backoff);
        backoff = static_cast<sim::Time>(static_cast<double>(backoff) *
                                         policy_.backoff_multiplier);
      }
    }
    if (tr != nullptr && !tc.completion.ok()) {
      // Terminal or budget-exhausted: the error reached the caller.
      // ztrace uses these instants for per-op-class error rates.
      tr->Instant(sim_.now(), cmd.trace_id, telemetry::Layer::kHost,
                  "host.error",
                  static_cast<std::int64_t>(tc.completion.status),
                  static_cast<std::int64_t>(attempt));
    }
    if (tc.completion.ok()) NoteSuccess(cmd, tc.completion);
    // The caller-observed window covers every attempt and backoff.
    tc.trace_id = cmd.trace_id;
    tc.submitted = start;
    tc.completed = sim_.now();
    co_return tc;
  }

  const nvme::NamespaceInfo& info() const override { return inner_.info(); }

  void AttachTelemetry(telemetry::Telemetry* t) override {
    telem_ = t;
    inner_.AttachTelemetry(t);
  }

  const RetryPolicy& policy() const { return policy_; }
  const ResilienceStats& stats() const { return stats_; }

 private:
  sim::Task<nvme::TimedCompletion> IssueOnce(nvme::Command cmd,
                                             std::uint32_t attempt,
                                             telemetry::Tracer* tr) {
    if (policy_.timeout == 0) {
      co_return co_await inner_.Submit(cmd);
    }
    auto st = std::make_shared<detail::AttemptState>(sim_);
    sim::Spawn(detail::RunAttempt(&inner_, cmd, st));
    sim::Spawn(detail::ArmTimeout(&sim_, policy_.timeout, st));
    co_await st->done.Wait();
    if (!st->timed_out) co_return st->tc;
    stats_.timeouts++;
    if (tr != nullptr) {
      tr->Instant(sim_.now(), cmd.trace_id, telemetry::Layer::kHost,
                  "host.timeout", static_cast<std::int64_t>(attempt),
                  static_cast<std::int64_t>(policy_.timeout));
    }
    nvme::TimedCompletion out;
    out.completion.status = nvme::Status::kHostTimeout;
    out.trace_id = cmd.trace_id;
    co_return out;
  }

  /// Keeps the per-zone expected write pointer current. Appends teach it
  /// the next landing LBA; resets re-seed it at the zone start; finishes
  /// drop it (a finished zone takes no appends to dedupe).
  void NoteSuccess(const nvme::Command& cmd, const nvme::Completion& c) {
    const nvme::NamespaceInfo& ni = inner_.info();
    if (!ni.zoned || ni.zone_size_lbas == 0) return;
    if (cmd.opcode == nvme::Opcode::kAppend) {
      zone_wp_cache_[cmd.slba / ni.zone_size_lbas] =
          c.result_lba + cmd.nlb;
    } else if (cmd.opcode == nvme::Opcode::kZoneMgmtSend) {
      if (cmd.select_all) {
        zone_wp_cache_.clear();
      } else if (cmd.zone_action == nvme::ZoneAction::kReset) {
        zone_wp_cache_[cmd.slba / ni.zone_size_lbas] = cmd.slba;
      } else if (cmd.zone_action == nvme::ZoneAction::kFinish) {
        zone_wp_cache_.erase(cmd.slba / ni.zone_size_lbas);
      }
    }
  }

  /// After a kDeviceReset on an append: asks the recovered device for the
  /// zone's write pointer. Returns the landing LBA if the lost append is
  /// provably durable (wp advanced exactly past it), nullopt otherwise.
  /// Sound only while the caller keeps at most one append in flight per
  /// zone — the discipline zobj and the crash benches follow.
  sim::Task<std::optional<nvme::Lba>> TryAppendReplay(nvme::Command cmd) {
    const nvme::NamespaceInfo& ni = inner_.info();
    if (!ni.zoned || ni.zone_size_lbas == 0) co_return std::nullopt;
    auto it = zone_wp_cache_.find(cmd.slba / ni.zone_size_lbas);
    if (it == zone_wp_cache_.end()) co_return std::nullopt;
    const nvme::Lba expect = it->second;
    nvme::Command q;
    q.opcode = nvme::Opcode::kZoneMgmtRecv;
    q.slba = cmd.slba;
    q.report_max = 1;
    q.trace_id = cmd.trace_id;
    for (std::uint32_t i = 0; i < policy_.max_attempts; ++i) {
      nvme::TimedCompletion rtc = co_await inner_.Submit(q);
      if (rtc.completion.ok() && !rtc.completion.report.empty()) {
        const nvme::Lba wp = rtc.completion.report[0].write_pointer;
        it->second = wp;  // resync to the recovered truth
        if (wp == expect + cmd.nlb) co_return expect;
        co_return std::nullopt;  // lost (or torn): safe to re-drive
      }
      if (Classify(rtc.completion.status) == ErrorClass::kTerminal) break;
      if (policy_.backoff > 0) co_await sim_.Delay(policy_.backoff);
    }
    co_return std::nullopt;
  }

  sim::Simulator& sim_;
  Stack& inner_;
  RetryPolicy policy_;
  ResilienceStats stats_;
  /// Zone index -> expected write pointer after the last settled append.
  std::unordered_map<std::uint64_t, nvme::Lba> zone_wp_cache_;
};

}  // namespace zstor::hostif
