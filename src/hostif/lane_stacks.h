// The parallel engine's split of a striped namespace (DESIGN.md §12).
//
// Under ParallelSimulator the per-device host stacks live in per-device
// lanes, so the classic StripedStack cannot call them directly — a
// direct call would run device code on the coordinator's thread. Two
// adapters reconnect the layers through lane mailboxes:
//
//  * MailboxStack — the coordinator-side proxy for one device's stack.
//    StripedStack (and ResilientStack above it) are reused unchanged,
//    built over one MailboxStack per device: Submit posts the command
//    into the device lane as a kRequest, a serve coroutine runs it
//    against the real stack there, and the completion returns as a
//    kReply that resumes the coordinator coroutine. Each direction
//    charges one interconnect hop (the engine lookahead), so proxied
//    commands observe 2×hop extra latency relative to the classic
//    direct call — the price of the conservative window protocol, paid
//    only by traffic that actually crosses lanes.
//
//  * StripeLaneView — the device-side view for sharded workload
//    workers. A worker whose zones all live on one device runs inside
//    that device's lane and needs no cross-lane traffic at all; the
//    view presents the *logical* (striped) namespace geometry so specs,
//    zone slices and RNG streams are identical to the classic run, and
//    translates logical↔device LBAs with the same StripeMap arithmetic
//    StripedStack uses.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>

#include "hostif/stack.h"
#include "hostif/stripe_map.h"
#include "hostif/striped_stack.h"
#include "nvme/types.h"
#include "sim/check.h"
#include "sim/parallel_sim.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "telemetry/telemetry.h"

namespace zstor::hostif {

class MailboxStack;

namespace detail {

/// One proxied command, owned by the coordinator-side Submit frame.
struct RemoteOp {
  explicit RemoteOp(sim::Simulator& host_sim) : done(host_sim) {}
  nvme::TimedCompletion tc;
  sim::OneShotEvent done;
};

}  // namespace detail

/// Coordinator-side proxy for one device lane's host stack.
class MailboxStack : public Stack {
 public:
  MailboxStack(sim::ParallelSimulator& ps, std::uint32_t host_lane,
               std::uint32_t dev_lane, Stack& target)
      : ps_(ps),
        host_lane_(host_lane),
        dev_lane_(dev_lane),
        target_(target),
        info_(target.info()) {}

  sim::Task<nvme::TimedCompletion> Submit(nvme::Command cmd) override {
    telemetry::Tracer* tr = trace();
    if (tr != nullptr && cmd.trace_id == 0) cmd.trace_id = tr->NextId();
    const sim::Time start = ps_.lane(host_lane_).now();
    detail::RemoteOp op(ps_.lane(host_lane_));
    ps_.Post(host_lane_, dev_lane_, start + ps_.lookahead(),
             sim::MsgKind::kRequest, sim::EventFn([this, cmd, &op] {
               sim::Spawn(Serve(cmd, &op));
             }));
    co_await op.done.Wait();
    // Timestamps are rebased onto the coordinator's clock: submitted at
    // departure, completed when the reply lands (device service plus
    // one interconnect hop each way).
    op.tc.trace_id = cmd.trace_id;
    op.tc.submitted = start;
    op.tc.completed = ps_.lane(host_lane_).now();
    co_return std::move(op.tc);
  }

  const nvme::NamespaceInfo& info() const override { return info_; }

 private:
  /// Runs inside the device lane; `op` lives in the coordinator-side
  /// Submit frame, which stays suspended until the reply sets `done`.
  sim::Task<> Serve(nvme::Command cmd, detail::RemoteOp* op) {
    nvme::TimedCompletion tc = co_await target_.Submit(cmd);
    ps_.Post(dev_lane_, host_lane_,
             ps_.lane(dev_lane_).now() + ps_.lookahead(),
             sim::MsgKind::kReply,
             sim::EventFn([op, tc = std::move(tc)]() mutable {
               op->tc = std::move(tc);
               op->done.Set();
             }));
  }

  sim::ParallelSimulator& ps_;
  std::uint32_t host_lane_;
  std::uint32_t dev_lane_;
  Stack& target_;
  nvme::NamespaceInfo info_;
};

/// Device-lane view of the logical striped namespace over one device.
class StripeLaneView : public Stack {
 public:
  StripeLaneView(sim::Simulator& dev_sim, Stack& target, StripeMap map,
                 std::uint32_t dev, nvme::NamespaceInfo logical_info)
      : sim_(dev_sim),
        target_(target),
        map_(map),
        dev_(dev),
        info_(std::move(logical_info)) {}

  sim::Task<nvme::TimedCompletion> Submit(nvme::Command cmd) override {
    ZSTOR_CHECK_MSG(cmd.opcode != nvme::Opcode::kFlush && !cmd.select_all &&
                        cmd.opcode != nvme::Opcode::kZoneMgmtRecv,
                    "broadcast/gather commands must run on the coordinator");
    telemetry::Tracer* tr = trace();
    if (tr != nullptr && cmd.trace_id == 0) cmd.trace_id = tr->NextId();
    const std::uint32_t lz = map_.LogicalZoneOf(cmd.slba);
    const nvme::Lba offset = cmd.slba - nvme::Lba{lz} * map_.zone_size_lbas;
    nvme::TimedCompletion tc;
    if (offset + cmd.nlb > map_.zone_size_lbas) {
      // Same host-side rejection as StripedStack::RouteOne: the tail
      // would land on a different device.
      ++boundary_rejects_;
      tc.completion.status = nvme::Status::kZoneBoundaryError;
      tc.trace_id = cmd.trace_id;
      tc.submitted = sim_.now();
      tc.completed = sim_.now();
      co_return tc;
    }
    ZSTOR_CHECK_MSG(map_.DeviceOf(lz) == dev_,
                    "sharded worker routed to the wrong device lane");
    if (tr != nullptr) {
      tr->Instant(sim_.now(), cmd.trace_id, telemetry::Layer::kHost,
                  "stripe.route", static_cast<std::int64_t>(dev_),
                  static_cast<std::int64_t>(lz));
    }
    nvme::Command routed = cmd;
    routed.slba = map_.ToDeviceLba(cmd.slba);
    stats_.issued++;
    stats_.in_flight++;
    stats_.max_in_flight = std::max(stats_.max_in_flight, stats_.in_flight);
    tc = co_await target_.Submit(routed);
    stats_.in_flight--;
    stats_.completed++;
    if (!tc.completion.ok()) stats_.errors++;
    if (cmd.opcode == nvme::Opcode::kAppend && tc.completion.ok()) {
      tc.completion.result_lba = ToLogicalLba(tc.completion.result_lba);
    }
    co_return tc;
  }

  const nvme::NamespaceInfo& info() const override { return info_; }

  nvme::Lba ToLogicalLba(nvme::Lba device_lba) const {
    return map_.ToLogicalLba(dev_, device_lba);
  }

  /// Per-lane traffic seen by this view. NOT exported into any metrics
  /// registry here — the Testbed folds view stats into the coordinator
  /// StripedStack's StripeStats at the final describe, so "stripe.devN"
  /// counters account for both proxied and sharded traffic without
  /// double counting.
  const LaneStats& stats() const { return stats_; }
  std::uint64_t boundary_rejects() const { return boundary_rejects_; }

 private:
  sim::Simulator& sim_;
  Stack& target_;
  StripeMap map_;
  std::uint32_t dev_;
  nvme::NamespaceInfo info_;
  LaneStats stats_;
  std::uint64_t boundary_rejects_ = 0;
};

}  // namespace zstor::hostif
