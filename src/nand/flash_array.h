// The flash array: per-die and per-channel service with real queueing.
//
// Dies execute one cell operation (read/program/erase) at a time; channels
// carry one bus transfer at a time. All contention effects in the paper —
// read tails behind program queues, GC erase storms, parallel scaling across
// dies — arise from these two resources plus the timings in geometry.h.
//
// The array also enforces the physical flash contract (a deliberately
// checkable substrate for the FTL layers above):
//   * pages within a block must be programmed strictly sequentially,
//   * a page must be programmed before it is read,
//   * a block must be erased before its pages can be re-programmed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault_plan.h"
#include "nand/geometry.h"
#include "sim/resource.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "telemetry/telemetry.h"

namespace zstor::nand {

/// Outcome of one cell operation, as observed by the layer above. kOk is
/// the only value possible unless a fault::FaultPlan is attached.
enum class MediaStatus : std::uint8_t {
  kOk,
  kReadError,    // uncorrectable read: ECC exhausted after every retry step
  kProgramFail,  // program failed (or targeted an already-retired block)
};

struct FlashCounters {
  std::uint64_t page_reads = 0;
  std::uint64_t page_programs = 0;
  std::uint64_t block_erases = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_programmed = 0;
  // Fault-path outcomes (all zero without an attached fault plan).
  std::uint64_t read_retries = 0;       // correctable reads (retry episodes)
  std::uint64_t read_errors = 0;        // uncorrectable reads surfaced
  std::uint64_t program_failures = 0;   // failed page programs
  std::uint64_t blocks_retired = 0;     // blocks taken out of service
  // Crash/recovery activity (zero unless a power loss was injected).
  std::uint64_t recovery_probes = 0;    // ProbePage scans
  std::uint64_t crash_discarded_pages = 0;  // tail pages dropped at boot

  /// Exports every counter into the registry under the "nand." prefix
  /// (the shared Describe protocol; see telemetry/metrics.h).
  void Describe(telemetry::MetricsRegistry& m) const;
};

/// Per-die service accounting, fed by the die-held portion of each cell
/// operation. busy_ns / sim.now() is that die's utilization — the raw
/// material of the Die Utilization log page (nvme/log_page.h).
struct DieStats {
  std::uint64_t reads = 0;
  std::uint64_t programs = 0;
  std::uint64_t erases = 0;
  sim::Time busy_ns = 0;  // total time the die executed cell operations
};

class FlashArray {
 public:
  FlashArray(sim::Simulator& s, const Geometry& geo, const Timing& timing);

  const Geometry& geometry() const { return geo_; }
  const Timing& timing() const { return timing_; }
  const FlashCounters& counters() const { return counters_; }

  /// Enables die/channel-level tracing (non-owning; null disables). Die
  /// spans carry no command id — cell service is decoupled from commands
  /// by the write-back buffer; `a` holds the die index instead. `lane`
  /// tags this array's timeline records in striped multi-device runs.
  void AttachTelemetry(telemetry::Telemetry* t, std::uint32_t lane = 0) {
    telem_ = t;
    lane_ = lane;
  }

  /// Emits any still-open die_busy timeline windows. Called by the
  /// testbed at Finish(); a no-op without an attached timeline.
  void FlushDieWindows();

  /// Injects media faults into subsequent cell operations (non-owning;
  /// null disables — the default, under which every operation is kOk and
  /// timing is bit-identical to a build without fault support).
  void AttachFaultPlan(fault::FaultPlan* p) { faults_ = p; }

  /// Reads `bytes` (<= page size) from a programmed page: occupies the die
  /// for tR (plus any read-retry voltage steps under an attached fault
  /// plan), then the channel for the data-out transfer. kReadError means
  /// ECC gave up after the full retry budget; no data is transferred.
  sim::Task<MediaStatus> ReadPage(PageAddr addr, std::uint32_t bytes);

  /// Programs the next page of a block (addr.page must equal the block's
  /// write pointer): channel data-in transfer, then die busy for tPROG.
  /// A failing program still consumes the page slot (the write pointer
  /// advances) so queued follow-on programs keep the sequential contract;
  /// programs to a retired block fail immediately without die time.
  sim::Task<MediaStatus> ProgramPage(PageAddr addr);

  /// Erases a block: die busy for tBERS; resets the block write pointer.
  sim::Task<> EraseBlock(std::uint32_t die, std::uint32_t block);

  /// Recovery probe: senses whether `addr` holds programmed data, costing
  /// a full tR of die time (no channel transfer — the controller only
  /// inspects the ECC/meta region). Unlike ReadPage it is legal on
  /// unprogrammed pages; write-pointer rediscovery scans after a power
  /// loss are built from these. Returns true if the page is programmed.
  sim::Task<bool> ProbePage(PageAddr addr);

  /// Power-loss tail discard: drops pages [new_write_ptr, write_ptr) of a
  /// block — programs that were in flight (or torn) when power cut and
  /// that the controller's recovery scan refuses to trust. Models the
  /// controller remapping the partially-programmed word lines away; no
  /// die time, no P/E cycle. Never raises the write pointer; no-op on
  /// retired blocks.
  void CrashDiscardTail(std::uint32_t die, std::uint32_t block,
                        std::uint32_t new_write_ptr);

  /// Marks pages [0, upto_page) of a block as programmed without simulating
  /// the programs (no virtual time, no counters). Test/bench acceleration
  /// for pre-filling state whose write *history* does not matter — see
  /// DESIGN.md §6. Never lowers an existing write pointer.
  void DebugProgramRange(std::uint32_t die, std::uint32_t block,
                         std::uint32_t upto_page);

  /// Erases a block instantly (no die time) while still counting the P/E
  /// cycle. Models erases that firmware hides off the critical path (the
  /// paper: "the reset operation does not immediately force a block
  /// erasure" [74]).
  void DeferredEraseBlock(std::uint32_t die, std::uint32_t block);

  /// Block write pointer: the next page index to program (0 = empty block).
  std::uint32_t BlockWritePointer(std::uint32_t die,
                                  std::uint32_t block) const;
  /// Program/erase cycles endured by the block so far.
  std::uint32_t BlockPeCycles(std::uint32_t die, std::uint32_t block) const;

  /// Takes a block out of service after a program failure: its programmed
  /// pages stay readable, but further programs fail fast and erases are
  /// refused. Returns true if the block was newly retired (callers use
  /// this to charge spare-block accounting exactly once per block).
  bool MarkBlockRetired(std::uint32_t die, std::uint32_t block);
  bool BlockRetired(std::uint32_t die, std::uint32_t block) const;

  /// Queue length (in-service + waiting) at a die; used by tests and by
  /// utilization-aware policies.
  std::size_t DieQueueDepth(std::uint32_t die) const;

  /// Per-die service accounting, indexed by die; size == total_dies().
  const std::vector<DieStats>& die_stats() const { return die_stats_; }

  /// Aggregate program bandwidth achievable when all dies stream (bytes/s).
  double PeakProgramBandwidth() const;

 private:
  struct BlockState {
    std::uint32_t write_ptr = 0;
    std::uint32_t pe_cycles = 0;
    bool retired = false;
  };

  BlockState& Block(std::uint32_t die, std::uint32_t block);
  const BlockState& Block(std::uint32_t die, std::uint32_t block) const;
  void CheckAddr(std::uint32_t die, std::uint32_t block) const;

  sim::Time NoisyRead();
  sim::Time NoisyProgram();
  telemetry::Tracer* trace() const {
    return telem_ != nullptr ? &telem_->tracer() : nullptr;
  }
  telemetry::TimelineWriter* timeline() const {
    return telem_ != nullptr ? telem_->timeline() : nullptr;
  }
  /// Folds one die-held service interval [begin, end] into that die's
  /// pending die_busy window: extend it when the idle gap is below the
  /// writer's merge threshold, otherwise emit it and start a new one.
  void NoteDieService(std::uint32_t die, sim::Time begin, sim::Time end);
  void EmitMediaError(std::uint32_t die, std::uint32_t block);

  /// A pending (not yet emitted) die_busy window; `busy` sums the actual
  /// service time inside [begin, end] so utilization stays exact even
  /// though the window spans merged idle gaps.
  struct DieWindow {
    sim::Time begin = 0;
    sim::Time end = 0;
    sim::Time busy = 0;
    std::uint64_t ops = 0;
    bool open = false;
  };

  telemetry::Telemetry* telem_ = nullptr;
  std::uint32_t lane_ = 0;
  std::vector<DieWindow> die_windows_;
  fault::FaultPlan* faults_ = nullptr;
  sim::Simulator& sim_;
  Geometry geo_;
  Timing timing_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<sim::FifoResource>> dies_;
  std::vector<std::unique_ptr<sim::FifoResource>> channels_;
  std::vector<BlockState> blocks_;  // [die * blocks_per_die + block]
  std::vector<DieStats> die_stats_;
  FlashCounters counters_;
};

}  // namespace zstor::nand
