// Physical flash geometry: channels × dies × blocks × pages.
//
// The page is the program/read unit; the block is the erase unit; the die
// (LUN) is the concurrency unit — one operation in flight per die, which is
// what makes die-level queueing the source of read tail latencies under
// write load (§III-F of the paper).
#pragma once

#include <cstdint>

#include "sim/check.h"
#include "sim/time.h"

namespace zstor::nand {

/// Flat die index across all channels.
struct DieId {
  std::uint32_t value = 0;
  friend bool operator==(DieId, DieId) = default;
};

/// Physical page address.
struct PageAddr {
  std::uint32_t die = 0;
  std::uint32_t block = 0;  // block within the die
  std::uint32_t page = 0;   // page within the block
  friend bool operator==(PageAddr, PageAddr) = default;
};

struct Geometry {
  std::uint32_t channels = 8;
  std::uint32_t dies_per_channel = 4;
  std::uint32_t blocks_per_die = 256;
  std::uint32_t pages_per_block = 256;
  std::uint32_t page_bytes = 16 * 1024;

  std::uint32_t total_dies() const { return channels * dies_per_channel; }
  std::uint64_t total_blocks() const {
    return static_cast<std::uint64_t>(total_dies()) * blocks_per_die;
  }
  std::uint64_t pages_per_die() const {
    return static_cast<std::uint64_t>(blocks_per_die) * pages_per_block;
  }
  std::uint64_t block_bytes() const {
    return static_cast<std::uint64_t>(pages_per_block) * page_bytes;
  }
  std::uint64_t die_bytes() const { return pages_per_die() * page_bytes; }
  std::uint64_t total_bytes() const {
    return die_bytes() * total_dies();
  }

  std::uint32_t channel_of(DieId die) const {
    return die.value % channels;  // dies interleave round-robin on channels
  }

  void Validate() const {
    ZSTOR_CHECK(channels > 0 && dies_per_channel > 0);
    ZSTOR_CHECK(blocks_per_die > 0 && pages_per_block > 0);
    ZSTOR_CHECK(page_bytes > 0 && (page_bytes & (page_bytes - 1)) == 0);
  }
};

/// Flash operation timings. Calibrated so that the aggregate program
/// bandwidth of the ZN540-like geometry matches the paper's measured
/// ~1155 MiB/s device write bandwidth (32 dies × 16 KiB / tPROG).
struct Timing {
  sim::Time read_page = sim::Microseconds(68);     // tR
  sim::Time program_page = sim::Microseconds(433); // tPROG (effective)
  sim::Time erase_block = sim::Milliseconds(3.5);  // tBERS
  /// Channel bus transfer of one page (ONFI-style shared bus per channel).
  sim::Time bus_xfer_page = sim::Microseconds(3.2);
  /// Lognormal service noise on tR / tPROG (page-position and cell-state
  /// dependence in real NAND). Zero = deterministic (unit tests).
  double read_sigma = 0;
  double program_sigma = 0;
  std::uint64_t noise_seed = 0x4E414E44'534545Dull;  // "NAND SEED"
};

}  // namespace zstor::nand
