#include "nand/flash_array.h"

namespace zstor::nand {

using telemetry::Layer;

void FlashCounters::Describe(telemetry::MetricsRegistry& m) const {
  m.GetCounter("nand.page_reads").Set(page_reads);
  m.GetCounter("nand.page_programs").Set(page_programs);
  m.GetCounter("nand.block_erases").Set(block_erases);
  m.GetCounter("nand.bytes_read").Set(bytes_read);
  m.GetCounter("nand.bytes_programmed").Set(bytes_programmed);
  m.GetCounter("nand.read_retries").Set(read_retries);
  m.GetCounter("nand.read_errors").Set(read_errors);
  m.GetCounter("nand.program_failures").Set(program_failures);
  m.GetCounter("nand.blocks_retired").Set(blocks_retired);
  m.GetCounter("nand.recovery_probes").Set(recovery_probes);
  m.GetCounter("nand.crash_discarded_pages").Set(crash_discarded_pages);
}

FlashArray::FlashArray(sim::Simulator& s, const Geometry& geo,
                       const Timing& timing)
    : sim_(s), geo_(geo), timing_(timing), rng_(timing.noise_seed) {
  geo_.Validate();
  dies_.reserve(geo_.total_dies());
  for (std::uint32_t d = 0; d < geo_.total_dies(); ++d) {
    dies_.push_back(std::make_unique<sim::FifoResource>(s, 1));
  }
  channels_.reserve(geo_.channels);
  for (std::uint32_t c = 0; c < geo_.channels; ++c) {
    channels_.push_back(std::make_unique<sim::FifoResource>(s, 1));
  }
  blocks_.resize(geo_.total_dies() * static_cast<std::size_t>(geo_.blocks_per_die));
  die_stats_.resize(geo_.total_dies());
  die_windows_.resize(geo_.total_dies());
}

void FlashArray::NoteDieService(std::uint32_t die, sim::Time begin,
                                sim::Time end) {
  telemetry::TimelineWriter* tl = timeline();
  if (tl == nullptr) return;
  DieWindow& w = die_windows_[die];
  if (w.open && begin - w.end <= tl->die_merge_gap_ns()) {
    w.end = end;
    w.busy += end - begin;
    w.ops++;
    return;
  }
  if (w.open) {
    tl->DieBusy(w.begin, w.end - w.begin, telem_->timeline_label(), lane_,
                die, w.ops, w.busy);
  }
  w = DieWindow{begin, end, end - begin, 1, true};
}

void FlashArray::FlushDieWindows() {
  telemetry::TimelineWriter* tl = timeline();
  if (tl == nullptr) return;
  for (std::uint32_t die = 0; die < die_windows_.size(); ++die) {
    DieWindow& w = die_windows_[die];
    if (!w.open) continue;
    tl->DieBusy(w.begin, w.end - w.begin, telem_->timeline_label(), lane_,
                die, w.ops, w.busy);
    w = DieWindow{};
  }
}

void FlashArray::EmitMediaError(std::uint32_t die, std::uint32_t block) {
  if (telemetry::TimelineWriter* tl = timeline(); tl != nullptr) {
    tl->Window(sim_.now(), /*dur=*/0, telem_->timeline_label(), lane_,
               "media.error", static_cast<std::int64_t>(die),
               static_cast<std::int64_t>(block));
  }
}

FlashArray::BlockState& FlashArray::Block(std::uint32_t die,
                                          std::uint32_t block) {
  CheckAddr(die, block);
  return blocks_[static_cast<std::size_t>(die) * geo_.blocks_per_die + block];
}

const FlashArray::BlockState& FlashArray::Block(std::uint32_t die,
                                                std::uint32_t block) const {
  CheckAddr(die, block);
  return blocks_[static_cast<std::size_t>(die) * geo_.blocks_per_die + block];
}

void FlashArray::CheckAddr(std::uint32_t die, std::uint32_t block) const {
  ZSTOR_CHECK(die < geo_.total_dies());
  ZSTOR_CHECK(block < geo_.blocks_per_die);
}

sim::Task<MediaStatus> FlashArray::ReadPage(PageAddr addr,
                                            std::uint32_t bytes) {
  ZSTOR_CHECK(bytes > 0 && bytes <= geo_.page_bytes);
  ZSTOR_CHECK_MSG(addr.page < Block(addr.die, addr.block).write_ptr,
                  "read of an unprogrammed page");
  telemetry::Tracer* tr = trace();
  fault::ReadVerdict verdict;
  if (faults_ != nullptr) {
    verdict = faults_->OnRead(sim_.now(), addr.die, addr.block,
                              Block(addr.die, addr.block).pe_cycles);
  }
  sim::Time t0 = sim_.now();
  {
    auto die = co_await dies_[addr.die]->Acquire();
    sim::Time svc_begin = sim_.now();
    sim::Time t_read = NoisyRead();
    if (verdict.retry_steps > 0) {
      // Read-retry: the die re-senses with stepped voltages; every step
      // costs a full extra sensing pass.
      sim::Time t_retry = verdict.retry_steps *
                          faults_->spec().read_retry_penalty;
      if (tr != nullptr) {
        tr->Span(sim_.now() + t_read, sim_.now() + t_read + t_retry,
                 /*cmd=*/0, Layer::kNand, "die.read_retry",
                 static_cast<std::int64_t>(addr.die),
                 static_cast<std::int64_t>(verdict.retry_steps));
      }
      t_read += t_retry;
    }
    co_await sim_.Delay(t_read);
    die_stats_[addr.die].reads++;
    die_stats_[addr.die].busy_ns += t_read;
    NoteDieService(addr.die, svc_begin, sim_.now());
  }
  if (verdict.uncorrectable) {
    // ECC exhausted: nothing to transfer to the host.
    if (tr != nullptr) {
      tr->Instant(sim_.now(), /*cmd=*/0, Layer::kNand, "media.error",
                  static_cast<std::int64_t>(addr.die),
                  static_cast<std::int64_t>(addr.block));
    }
    EmitMediaError(addr.die, addr.block);
    counters_.page_reads++;
    counters_.read_errors++;
    co_return MediaStatus::kReadError;
  }
  {
    auto chan = co_await channels_[geo_.channel_of({addr.die})]->Acquire();
    // Bus time scales with the fraction of the page transferred.
    sim::Time xfer = timing_.bus_xfer_page * bytes / geo_.page_bytes;
    co_await sim_.Delay(xfer);
  }
  if (tr != nullptr) {
    tr->Span(t0, sim_.now(), /*cmd=*/0, Layer::kNand, "die.read",
             static_cast<std::int64_t>(addr.die),
             static_cast<std::int64_t>(bytes));
  }
  counters_.page_reads++;
  counters_.bytes_read += bytes;
  if (verdict.retry_steps > 0) counters_.read_retries++;
  co_return MediaStatus::kOk;
}

sim::Task<MediaStatus> FlashArray::ProgramPage(PageAddr addr) {
  BlockState& blk = Block(addr.die, addr.block);
  ZSTOR_CHECK_MSG(addr.page == blk.write_ptr,
                  "non-sequential program within a block");
  ZSTOR_CHECK(addr.page < geo_.pages_per_block);
  blk.write_ptr++;
  if (blk.retired) {
    // The slot is still consumed (queued follow-on programs must keep the
    // sequential contract), but the die refuses the operation outright.
    counters_.program_failures++;
    co_return MediaStatus::kProgramFail;
  }
  fault::ProgramVerdict verdict;
  if (faults_ != nullptr) {
    verdict = faults_->OnProgram(sim_.now(), addr.die, addr.block,
                                 blk.pe_cycles);
  }
  telemetry::Tracer* tr = trace();
  sim::Time t0 = sim_.now();
  {
    auto chan = co_await channels_[geo_.channel_of({addr.die})]->Acquire();
    co_await sim_.Delay(timing_.bus_xfer_page);
  }
  {
    auto die = co_await dies_[addr.die]->Acquire();
    sim::Time svc_begin = sim_.now();
    sim::Time t_prog = NoisyProgram();
    co_await sim_.Delay(t_prog);
    die_stats_[addr.die].programs++;
    die_stats_[addr.die].busy_ns += t_prog;
    NoteDieService(addr.die, svc_begin, sim_.now());
  }
  if (verdict.fail) {
    // The program-verify pass failed after the full tPROG was spent.
    if (tr != nullptr) {
      tr->Instant(sim_.now(), /*cmd=*/0, Layer::kNand, "media.error",
                  static_cast<std::int64_t>(addr.die),
                  static_cast<std::int64_t>(addr.block));
    }
    EmitMediaError(addr.die, addr.block);
    counters_.page_programs++;
    counters_.program_failures++;
    co_return MediaStatus::kProgramFail;
  }
  if (tr != nullptr) {
    tr->Span(t0, sim_.now(), /*cmd=*/0, Layer::kNand, "die.program",
             static_cast<std::int64_t>(addr.die),
             static_cast<std::int64_t>(geo_.page_bytes));
  }
  counters_.page_programs++;
  counters_.bytes_programmed += geo_.page_bytes;
  co_return MediaStatus::kOk;
}

sim::Task<bool> FlashArray::ProbePage(PageAddr addr) {
  ZSTOR_CHECK(addr.page < geo_.pages_per_block);
  sim::Time t0 = sim_.now();
  {
    auto die = co_await dies_[addr.die]->Acquire();
    sim::Time svc_begin = sim_.now();
    co_await sim_.Delay(timing_.read_page);
    die_stats_[addr.die].reads++;
    die_stats_[addr.die].busy_ns += timing_.read_page;
    NoteDieService(addr.die, svc_begin, sim_.now());
  }
  if (telemetry::Tracer* tr = trace(); tr != nullptr) {
    tr->Span(t0, sim_.now(), /*cmd=*/0, Layer::kNand, "die.probe",
             static_cast<std::int64_t>(addr.die),
             static_cast<std::int64_t>(addr.page));
  }
  counters_.recovery_probes++;
  co_return addr.page < Block(addr.die, addr.block).write_ptr;
}

void FlashArray::CrashDiscardTail(std::uint32_t die, std::uint32_t block,
                                  std::uint32_t new_write_ptr) {
  BlockState& blk = Block(die, block);
  if (blk.retired) return;
  if (new_write_ptr >= blk.write_ptr) return;
  counters_.crash_discarded_pages += blk.write_ptr - new_write_ptr;
  blk.write_ptr = new_write_ptr;
}

sim::Task<> FlashArray::EraseBlock(std::uint32_t die, std::uint32_t block) {
  BlockState& blk = Block(die, block);
  ZSTOR_CHECK_MSG(!blk.retired, "erase of a retired block");
  telemetry::Tracer* tr = trace();
  sim::Time t0 = sim_.now();
  {
    auto g = co_await dies_[die]->Acquire();
    sim::Time svc_begin = sim_.now();
    co_await sim_.Delay(timing_.erase_block);
    die_stats_[die].erases++;
    die_stats_[die].busy_ns += timing_.erase_block;
    NoteDieService(die, svc_begin, sim_.now());
  }
  if (tr != nullptr) {
    tr->Span(t0, sim_.now(), /*cmd=*/0, Layer::kNand, "die.erase",
             static_cast<std::int64_t>(die),
             static_cast<std::int64_t>(block));
  }
  blk.write_ptr = 0;
  blk.pe_cycles++;
  counters_.block_erases++;
}

sim::Time FlashArray::NoisyRead() {
  if (timing_.read_sigma == 0) return timing_.read_page;
  return static_cast<sim::Time>(
      static_cast<double>(timing_.read_page) *
      rng_.LogNormalNoise(timing_.read_sigma));
}

sim::Time FlashArray::NoisyProgram() {
  if (timing_.program_sigma == 0) return timing_.program_page;
  return static_cast<sim::Time>(
      static_cast<double>(timing_.program_page) *
      rng_.LogNormalNoise(timing_.program_sigma));
}

void FlashArray::DebugProgramRange(std::uint32_t die, std::uint32_t block,
                                   std::uint32_t upto_page) {
  ZSTOR_CHECK(upto_page <= geo_.pages_per_block);
  BlockState& blk = Block(die, block);
  if (blk.write_ptr < upto_page) blk.write_ptr = upto_page;
}

void FlashArray::DeferredEraseBlock(std::uint32_t die, std::uint32_t block) {
  BlockState& blk = Block(die, block);
  if (blk.retired) return;         // retired blocks are never recycled
  if (blk.write_ptr == 0) return;  // nothing was programmed
  blk.write_ptr = 0;
  blk.pe_cycles++;
  counters_.block_erases++;
}

std::uint32_t FlashArray::BlockWritePointer(std::uint32_t die,
                                            std::uint32_t block) const {
  return Block(die, block).write_ptr;
}

std::uint32_t FlashArray::BlockPeCycles(std::uint32_t die,
                                        std::uint32_t block) const {
  return Block(die, block).pe_cycles;
}

bool FlashArray::MarkBlockRetired(std::uint32_t die, std::uint32_t block) {
  BlockState& blk = Block(die, block);
  if (blk.retired) return false;
  blk.retired = true;
  counters_.blocks_retired++;
  return true;
}

bool FlashArray::BlockRetired(std::uint32_t die, std::uint32_t block) const {
  return Block(die, block).retired;
}

std::size_t FlashArray::DieQueueDepth(std::uint32_t die) const {
  ZSTOR_CHECK(die < geo_.total_dies());
  const auto& r = *dies_[die];
  return (r.free_slots() == 0 ? 1 : 0) + r.queue_length();
}

double FlashArray::PeakProgramBandwidth() const {
  return static_cast<double>(geo_.total_dies()) * geo_.page_bytes /
         sim::ToSeconds(timing_.program_page);
}

}  // namespace zstor::nand
