#include "ftl/conv_profile.h"

namespace zstor::ftl {

ConvProfile Sn640Profile() {
  ConvProfile p;  // header defaults are the calibrated values
  p.nand_timing.read_sigma = 0.08;
  p.nand_timing.program_sigma = 0.05;
  return p;
}

ConvProfile TinyConvProfile() {
  ConvProfile p;
  p.nand_geometry.channels = 2;
  p.nand_geometry.dies_per_channel = 2;
  p.nand_geometry.blocks_per_die = 24;  // 96 blocks, 24 MiB physical
  p.nand_geometry.pages_per_block = 16; // 256 KiB blocks
  p.op_fraction = 0.25;
  p.write_buffer_bytes = 1ull << 20;
  p.gc_low_blocks = 6;
  p.gc_high_blocks = 10;
  p.gc_workers = 2;
  p.io_sigma = 0;
  return p;
}

}  // namespace zstor::ftl
