// Profile for the conventional (non-zoned) NVMe SSD model — the WD
// Ultrastar DC SN640 stand-in used as the baseline in the paper's §III-F
// garbage-collection interference experiment (Fig. 6).
//
// The device shares the ZNS model's internal structure (firmware command
// processor, write-back buffer, NAND array) but replaces the zone state
// machine with a page-mapped FTL: 4 KiB mapping units packed into 16 KiB
// NAND pages, greedy (min-valid) victim selection, and device-initiated
// garbage collection — the defining difference from ZNS, where reclaim is
// host-triggered (the whole point of Obs. 11).
#pragma once

#include <cstdint>

#include "nand/geometry.h"
#include "sim/time.h"
#include "zns/profile.h"

namespace zstor::ftl {

struct ConvProfile {
  /// NAND array. Default: same channel/die structure as the ZN540 model
  /// but scaled down in capacity so GC steady state is reached in seconds
  /// of virtual time (DESIGN.md §6; GC dynamics depend on the *fraction*
  /// of free space, not absolute capacity).
  nand::Geometry nand_geometry{.channels = 8,
                               .dies_per_channel = 4,
                               .blocks_per_die = 80,  // 10 GiB physical
                               .pages_per_block = 256,
                               .page_bytes = 16 * 1024};
  nand::Timing nand_timing;

  /// Fraction of physical capacity reserved as overprovisioning; the
  /// logical (host-visible) capacity is physical * (1 - op_fraction).
  double op_fraction = 0.125;

  /// Firmware mapping unit (the LBA-facing granularity).
  std::uint32_t map_unit_bytes = 4096;

  /// Host-visible LBA format.
  std::uint32_t lba_bytes = 4096;

  std::uint64_t write_buffer_bytes = 320ull << 20;

  /// Same firmware command processor and post-stage cost structure as the
  /// ZNS model (the two drives in the paper share hardware platform).
  zns::FcpCosts fcp;
  zns::PostCosts post;
  double io_sigma = 0.045;

  /// Deallocate (TRIM) cost: command admission plus per-unit mapping
  /// updates — "the trim operation ... also incurs overheads due to
  /// metadata updates" (the paper's Obs. 10 analogy to zone reset).
  sim::Time trim_fixed = sim::Microseconds(5.0);
  sim::Time trim_per_unit = sim::Nanoseconds(60);

  /// GC policy: start when free blocks drop below `gc_low_blocks`, stop
  /// above `gc_high_blocks`; `gc_workers` victims migrate concurrently.
  /// Wide watermark hysteresis produces the boom–bust cycle of Fig. 6a:
  /// with GC idle the host bursts at device bandwidth until the pool
  /// drains to `gc_low_blocks`; GC then reclaims hard (competing with
  /// host I/O at the dies) up to `gc_high_blocks` and stops.
  std::uint32_t gc_low_blocks = 64;
  std::uint32_t gc_high_blocks = 240;
  std::uint32_t gc_workers = 24;

  /// Mapping-journal sync interval (DESIGN.md §11): volatile L2P deltas
  /// are buffered and flushed to flash every this many entries. Small
  /// values shrink the power-loss data-loss window and the recovery
  /// replay tail at the price of extra journal programs (write
  /// amplification); large values do the opposite. A GC block erase
  /// always forces a sync first — unsynced entries must never reference
  /// an erased block.
  std::uint32_t journal_sync_interval = 1024;
  /// Journal entries that fit one flash-programmed journal unit; each
  /// sync charges ceil(pending/entries) units of journal WA.
  std::uint32_t journal_entries_per_unit = 256;
  /// A full mapping-table checkpoint is written every this many journal
  /// syncs; recovery replays only the journal tail since the last
  /// checkpoint. Each checkpoint charges `checkpoint_units` of WA.
  std::uint32_t journal_checkpoint_syncs = 32;
  std::uint32_t checkpoint_units = 32;
  /// Fixed controller-boot cost after a power loss, before journal replay.
  sim::Time recovery_boot_cost = sim::Milliseconds(2.0);
  /// Replay cost per journal-tail entry (mapping rebuild is a metadata
  /// walk in controller SRAM fed by sequential journal reads).
  sim::Time recovery_per_entry = sim::Nanoseconds(250);

  std::uint64_t seed = 0xC0DE'2023'5E40'0001ull;

  std::uint64_t physical_bytes() const {
    return nand_geometry.total_bytes();
  }
  std::uint64_t logical_bytes() const {
    auto usable = static_cast<std::uint64_t>(
        static_cast<double>(physical_bytes()) * (1.0 - op_fraction));
    return usable - usable % map_unit_bytes;
  }
  std::uint32_t units_per_page() const {
    return nand_geometry.page_bytes / map_unit_bytes;
  }
};

/// Calibrated SN640-like profile (scaled capacity, matched bandwidth).
ConvProfile Sn640Profile();

/// Small geometry for fast unit tests.
ConvProfile TinyConvProfile();

}  // namespace zstor::ftl
