// ConvDevice: the conventional (page-mapped FTL) NVMe SSD model.
//
// Write path: FCP -> post stage -> write-back buffer; a drain process
// packs 4 KiB mapping units into 16 KiB NAND pages and programs them
// round-robin across dies. Overwrites invalidate the unit's old physical
// location. When the free-block pool runs low, background GC workers pick
// the fullest-garbage (min-valid) blocks, migrate the surviving units and
// erase — consuming the same dies and channels as host I/O, which is what
// collapses read/write throughput in the paper's Fig. 6.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ftl/conv_profile.h"
#include "nand/flash_array.h"
#include "nvme/controller.h"
#include "nvme/log_page.h"
#include "nvme/types.h"
#include "sim/resource.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "telemetry/telemetry.h"

namespace zstor::ftl {

struct ConvCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t deallocates = 0;
  std::uint64_t units_trimmed = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t host_units_programmed = 0;
  std::uint64_t gc_invocations = 0;  // MigrateAndErase passes launched
  std::uint64_t gc_units_migrated = 0;
  std::uint64_t gc_blocks_erased = 0;
  /// Commands rejected for host-side reasons (bad field/range).
  std::uint64_t host_rejects = 0;
  /// Commands completed with a media fault status (kMediaReadError...).
  std::uint64_t media_errors = 0;
  std::uint64_t read_faults = 0;     // uncorrectable NAND reads surfaced
  std::uint64_t write_faults = 0;    // NAND program failures absorbed
  std::uint64_t retired_blocks = 0;  // blocks taken out of service
  /// Page programs re-driven into a fresh block after a failure (host
  /// and GC paths; the FTL heals write faults transparently).
  std::uint64_t program_retries = 0;
  std::uint64_t flushes = 0;
  // Mapping journal (DESIGN.md §11). Journal/checkpoint programs are
  // charged as write-amplification units only — metadata programs ride
  // idle die bandwidth, so non-crash timing is unchanged.
  std::uint64_t journal_syncs = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t journal_units_written = 0;  // journal + checkpoint units
  // Power-loss crash/recovery (zero without injected crashes).
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t crash_lost_units = 0;    // buffered units rolled back
  std::uint64_t journal_reverted_entries = 0;  // unsynced deltas undone
  std::uint64_t recovery_replay_entries = 0;   // journal tail replayed
  std::uint64_t recovery_ns_total = 0;
  std::uint64_t reset_drops = 0;  // commands failed with kDeviceReset

  /// Write amplification: NAND unit programs (host data + GC migration +
  /// mapping journal/checkpoints) per host unit write.
  double WriteAmplification() const {
    return host_units_programmed == 0
               ? 1.0
               : 1.0 + (static_cast<double>(gc_units_migrated) +
                        static_cast<double>(journal_units_written)) /
                           static_cast<double>(host_units_programmed);
  }

  /// Exports every counter into the registry under the "conv." prefix
  /// (the shared Describe protocol; see telemetry/metrics.h).
  void Describe(telemetry::MetricsRegistry& m) const;
};

class ConvDevice : public nvme::Controller {
 public:
  ConvDevice(sim::Simulator& s, ConvProfile profile);

  const nvme::NamespaceInfo& info() const override { return info_; }
  sim::Task<nvme::Completion> Execute(const nvme::Command& cmd) override;

  /// Enables FTL-side tracing/metrics (non-owning; null disables). Also
  /// attaches the NAND array.
  void AttachTelemetry(telemetry::Telemetry* t);

  /// Injects media faults into the NAND backend (non-owning; null
  /// disables) and arms any scheduled power losses (`crash=US`).
  void AttachFaultPlan(fault::FaultPlan* p);

  /// Injects a power loss right now, then runs the modeled recovery.
  /// Loss semantics (DESIGN.md §11): buffered (un-programmed) host units
  /// roll back to their pre-write mapping, unsynced journal deltas are
  /// reverted, in-flight commands complete with kDeviceReset, and the
  /// recovery replays the journal tail since the last checkpoint —
  /// recovery time scales with journal_sync_interval.
  sim::Task<> CrashNow();

  const ConvProfile& profile() const { return profile_; }
  const ConvCounters& counters() const { return counters_; }
  /// Bumped by every power loss; see ZnsDevice::power_epoch().
  std::uint64_t power_epoch() const { return power_epoch_; }
  sim::Time last_recovery_ns() const { return last_recovery_ns_; }
  nand::FlashArray& flash() { return *flash_; }
  std::uint32_t free_blocks() const { return free_total_; }
  bool gc_active() const { return gc_running_ > 0; }

  // ---- log pages (nvme/log_page.h) ------------------------------------
  // Free introspection: no virtual time, no counter side effects.
  /// SMART-like page: host + media activity, GC stats, write amplification.
  nvme::SmartLog GetSmartLog() const;
  /// Per-die service counts and utilization.
  nvme::DieUtilLog GetDieUtilLog() const;

  /// Maps the whole logical space sequentially without simulated I/O —
  /// the "precondition the drive" step every SSD GC experiment needs
  /// (the paper's drives are aged; see DESIGN.md §6).
  void DebugPrefill();

 private:
  static constexpr std::uint32_t kUnmapped = ~0u;
  static constexpr std::uint32_t kInBuffer = ~0u - 1;

  struct Block {
    std::uint32_t valid = 0;          // live units in this block
    std::uint32_t write_ptr_units = 0;
    std::uint32_t inflight = 0;       // programs issued, mapping pending
    std::vector<std::uint64_t> valid_bitmap;  // one bit per unit slot
    bool open = false;                // currently receiving programs
    bool gc_busy = false;             // being migrated/erased
    bool retired = false;             // failed a program; out of service
  };

  // ---- unit/address arithmetic ---------------------------------------
  std::uint32_t units_per_block() const {
    return profile_.nand_geometry.pages_per_block * profile_.units_per_page();
  }
  std::uint32_t BlockIdOf(std::uint32_t die, std::uint32_t block) const {
    return die * profile_.nand_geometry.blocks_per_die + block;
  }
  std::uint32_t DieOfBlockId(std::uint32_t block_id) const {
    return block_id / profile_.nand_geometry.blocks_per_die;
  }
  std::uint32_t BlockOfBlockId(std::uint32_t block_id) const {
    return block_id % profile_.nand_geometry.blocks_per_die;
  }
  std::uint32_t PhysUnit(std::uint32_t block_id, std::uint32_t unit) const {
    return block_id * units_per_block() + unit;
  }

  // ---- FTL state mutation ---------------------------------------------
  void InvalidateUnit(std::uint32_t logical_unit);
  void MapUnit(std::uint32_t logical_unit, std::uint32_t phys_unit);
  bool TestValid(const Block& b, std::uint32_t unit) const;
  void SetValid(Block& b, std::uint32_t unit, bool v);

  /// Takes the next free block on a die (or any die); kUnmapped if none.
  std::uint32_t TakeFreeBlock(std::uint32_t preferred_die);

  /// Builds the free-block pool and GC reserve once the (optional)
  /// prefill has claimed its blocks. Runs lazily before the first I/O.
  void FinalizeLayout();

  // ---- data paths ------------------------------------------------------
  sim::Task<nvme::Completion> DoRead(nvme::Command cmd);
  sim::Task<nvme::Completion> DoWrite(nvme::Command cmd);
  sim::Task<nvme::Completion> DoDeallocate(nvme::Command cmd);
  /// Durability barrier: drains the write buffer (padding any partial
  /// page out to NAND) and force-syncs the mapping journal.
  sim::Task<nvme::Completion> DoFlush(nvme::Command cmd);
  /// `failed` (nullable) is set when the page read comes back bad — a
  /// fan-out read reports the command-level worst case through it.
  sim::Task<> ReadPhysPage(std::uint64_t page_id, sim::WaitGroup* wg,
                           nand::MediaStatus* failed);
  /// Admits one logical unit into the buffer and schedules programs.
  /// `epoch` is the power epoch of the issuing command; admission after a
  /// crash is a no-op (the command is failing with kDeviceReset anyway).
  sim::Task<> AdmitUnit(std::uint32_t logical_unit, std::uint64_t epoch);
  /// Programs one NAND page holding `units` pending logical units. A
  /// stale-epoch completion releases its resources without mapping —
  /// the crash already rolled those units back.
  sim::Task<> ProgramHostPage(std::vector<std::uint32_t> units,
                              std::uint64_t epoch);

  // ---- mapping journal & crash path (DESIGN.md §11) -------------------
  struct JournalEntry {
    std::uint32_t unit;
    std::uint32_t old_phys;  // kUnmapped when the unit was fresh
    std::uint32_t new_phys;  // kUnmapped for a trim
  };
  /// Records one L2P delta; auto-syncs every journal_sync_interval.
  void JournalAppend(std::uint32_t unit, std::uint32_t old_phys,
                     std::uint32_t new_phys);
  /// Makes all pending deltas durable, charging journal (and possibly
  /// checkpoint) write-amplification units.
  void SyncJournal();
  /// Drops stale pre-buffer references into a block about to be erased —
  /// once erased, the old copy cannot back a crash rollback.
  void ForgetBufferedOldInBlock(std::uint32_t block_id);
  sim::Task<> CrashDriver(std::vector<sim::Time> at);

  // Payload-tag store (integrity model; tag follows the data: committed
  // per physical unit at program time, copied by GC, reverted with the
  // journal). Allocated lazily on the first tagged write.
  void CommitTag(std::uint32_t phys_unit, std::uint64_t tag);
  std::uint64_t TagOfLogical(std::uint32_t logical_unit) const;
  /// Pops a free block (suspends while the pool is empty — this is the
  /// host-write stall that produces the Fig. 6a throughput collapses).
  sim::Task<std::uint32_t> AcquireFreeBlock(std::uint32_t preferred_die);
  void ReleaseErasedBlock(std::uint32_t block_id);

  // ---- GC ---------------------------------------------------------------
  void MaybeWakeGc();
  std::uint32_t PickVictim();
  /// Takes a (possibly partially filled) GC output block; full blocks are
  /// retired to the regular population and new ones come from the
  /// reserve. Output blocks are shared across migrations so no space
  /// leaks in partial blocks.
  std::uint32_t TakeGcOpenBlock();
  void ReturnGcOpenBlock(std::uint32_t block_id);
  sim::Task<> MigrateAndErase(std::uint32_t victim);
  sim::Task<> ReadVictimPage(nand::PageAddr addr, sim::WaitGroup* wg);
  /// Takes a retired block out of every allocation path (free pools never
  /// see it again; its valid units stay mapped and readable). Returns
  /// true if the block was newly retired.
  bool RetireBlock(std::uint32_t block_id);
  sim::Task<> GcProgramPage(
      std::uint32_t block_id, std::uint32_t page,
      std::vector<std::pair<std::uint32_t, std::uint32_t>> batch,
      sim::WaitGroup* wg, std::uint64_t epoch);

  sim::Time Noise(sim::Time t);
  telemetry::Tracer* trace() const {
    return telem_ != nullptr ? &telem_->tracer() : nullptr;
  }
  /// Same guard for timeline records (GC activity windows). A conv
  /// device is never striped, so its lane is always 0.
  telemetry::TimelineWriter* timeline() const {
    return telem_ != nullptr ? telem_->timeline() : nullptr;
  }

  telemetry::Telemetry* telem_ = nullptr;
  sim::Simulator& sim_;
  ConvProfile profile_;
  nvme::NamespaceInfo info_;
  std::unique_ptr<nand::FlashArray> flash_;
  sim::PriorityResource fcp_;
  sim::Semaphore buffer_slots_;      // units of buffered host data
  sim::Rng rng_;

  std::vector<std::uint32_t> l2p_;   // logical unit -> phys unit/sentinel
  std::vector<std::uint32_t> p2l_;   // phys unit -> logical unit/kUnmapped
  std::vector<Block> blocks_;        // by block id
  std::vector<std::deque<std::uint32_t>> free_blocks_;  // per die
  std::unique_ptr<sim::Semaphore> free_sem_;  // counts the host pool
  std::deque<std::uint32_t> gc_reserve_;      // GC-private blocks
  std::deque<std::uint32_t> gc_open_pool_;    // partial GC output blocks
  std::uint32_t free_total_ = 0;
  bool layout_done_ = false;

  /// Host write packing: units waiting to fill the next NAND page.
  std::vector<std::uint32_t> pending_units_;
  std::uint32_t next_die_rr_ = 0;  // round-robin allocation stream
  /// One allocation stream per die index; the stream's current block may
  /// physically live on another die when the preferred die has no free
  /// blocks.
  std::vector<std::uint32_t> host_open_block_;
  std::vector<std::unique_ptr<sim::FifoResource>> die_alloc_;

  std::uint32_t gc_running_ = 0;
  bool gc_target_active_ = false;
  ConvCounters counters_;
  sim::WaitGroup inflight_programs_;

  // ---- mapping journal & crash state (DESIGN.md §11) ------------------
  /// Unsynced L2P deltas: reverted (in reverse) by a power loss, made
  /// durable by SyncJournal. A GC erase force-syncs first, so no entry
  /// here ever references an erased block.
  std::vector<JournalEntry> journal_tail_;
  /// Synced entries since the last checkpoint — the recovery replay tail.
  std::uint64_t journal_entries_since_checkpoint_ = 0;
  std::uint32_t journal_syncs_since_checkpoint_ = 0;
  /// Pre-write mapping of every unit currently in the volatile buffer
  /// (l2p == kInBuffer): what a power loss rolls the unit back to.
  std::unordered_map<std::uint32_t, std::uint32_t> buffered_old_;
  /// Payload tags for buffered units, keyed by logical unit.
  std::unordered_map<std::uint32_t, std::uint64_t> pending_tags_;
  /// Payload tags by physical unit; empty until the first tagged write.
  std::vector<std::uint64_t> tags_by_phys_;
  fault::FaultPlan* faults_ = nullptr;
  bool crash_driver_armed_ = false;
  bool crashed_ = false;
  std::uint64_t power_epoch_ = 0;
  sim::Time last_recovery_ns_ = 0;
};

}  // namespace zstor::ftl
