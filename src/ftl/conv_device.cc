#include "ftl/conv_device.h"

#include <algorithm>

namespace zstor::ftl {

using nvme::Command;
using nvme::Completion;
using nvme::Opcode;
using nvme::Status;
using sim::Time;
using telemetry::Layer;

void ConvCounters::Describe(telemetry::MetricsRegistry& m) const {
  m.GetCounter("conv.reads").Set(reads);
  m.GetCounter("conv.writes").Set(writes);
  m.GetCounter("conv.deallocates").Set(deallocates);
  m.GetCounter("conv.units_trimmed").Set(units_trimmed);
  m.GetCounter("conv.bytes_read").Set(bytes_read);
  m.GetCounter("conv.bytes_written").Set(bytes_written);
  m.GetCounter("conv.host_units_programmed").Set(host_units_programmed);
  m.GetCounter("conv.gc_invocations").Set(gc_invocations);
  m.GetCounter("conv.gc_units_migrated").Set(gc_units_migrated);
  m.GetCounter("conv.gc_blocks_erased").Set(gc_blocks_erased);
  m.GetCounter("conv.host_rejects").Set(host_rejects);
  m.GetCounter("conv.media_errors").Set(media_errors);
  m.GetCounter("conv.read_faults").Set(read_faults);
  m.GetCounter("conv.write_faults").Set(write_faults);
  m.GetCounter("conv.retired_blocks").Set(retired_blocks);
  m.GetCounter("conv.program_retries").Set(program_retries);
  m.GetCounter("conv.flushes").Set(flushes);
  m.GetCounter("conv.journal_syncs").Set(journal_syncs);
  m.GetCounter("conv.checkpoints").Set(checkpoints);
  m.GetCounter("conv.journal_units_written").Set(journal_units_written);
  m.GetCounter("conv.crashes").Set(crashes);
  m.GetCounter("conv.recoveries").Set(recoveries);
  m.GetCounter("conv.crash_lost_units").Set(crash_lost_units);
  m.GetCounter("conv.journal_reverted_entries").Set(journal_reverted_entries);
  m.GetCounter("conv.recovery_replay_entries").Set(recovery_replay_entries);
  m.GetCounter("conv.recovery_ns_total").Set(recovery_ns_total);
  m.GetCounter("conv.reset_drops").Set(reset_drops);
  m.GetGauge("conv.write_amplification").Set(WriteAmplification());
}

void ConvDevice::AttachTelemetry(telemetry::Telemetry* t) {
  telem_ = t;
  flash_->AttachTelemetry(t);
}

void ConvDevice::AttachFaultPlan(fault::FaultPlan* p) {
  faults_ = p;
  flash_->AttachFaultPlan(p);
  if (p != nullptr && p->enabled() && !p->spec().crashes.empty() &&
      !crash_driver_armed_) {
    crash_driver_armed_ = true;
    sim::Spawn(CrashDriver(p->spec().crashes));
  }
}

nvme::SmartLog ConvDevice::GetSmartLog() const {
  nvme::SmartLog log;
  log.device = "conv";
  log.host_reads = counters_.reads;
  log.host_writes = counters_.writes;
  log.bytes_read = counters_.bytes_read;
  log.bytes_written = counters_.bytes_written;
  log.host_rejects = counters_.host_rejects;
  log.media_errors = counters_.media_errors;
  log.read_faults = counters_.read_faults;
  log.write_faults = counters_.write_faults;
  log.retired_blocks = counters_.retired_blocks;
  const nand::FlashCounters& fc = flash_->counters();
  log.media_read_retries = fc.read_retries;
  log.media_page_reads = fc.page_reads;
  log.media_page_programs = fc.page_programs;
  log.media_block_erases = fc.block_erases;
  log.media_bytes_read = fc.bytes_read;
  log.media_bytes_programmed = fc.bytes_programmed;
  log.gc_invocations = counters_.gc_invocations;
  log.gc_units_migrated = counters_.gc_units_migrated;
  log.gc_blocks_erased = counters_.gc_blocks_erased;
  log.write_amplification = counters_.WriteAmplification();
  return log;
}

nvme::DieUtilLog ConvDevice::GetDieUtilLog() const {
  nvme::DieUtilLog log;
  log.elapsed_ns = static_cast<std::uint64_t>(sim_.now());
  const std::vector<nand::DieStats>& stats = flash_->die_stats();
  log.dies.reserve(stats.size());
  for (std::uint32_t d = 0; d < stats.size(); ++d) {
    nvme::DieUtilEntry e;
    e.die = d;
    e.reads = stats[d].reads;
    e.programs = stats[d].programs;
    e.erases = stats[d].erases;
    e.busy_ns = static_cast<std::uint64_t>(stats[d].busy_ns);
    e.utilization = log.elapsed_ns == 0
                        ? 0.0
                        : static_cast<double>(e.busy_ns) /
                              static_cast<double>(log.elapsed_ns);
    log.dies.push_back(e);
  }
  return log;
}

ConvDevice::ConvDevice(sim::Simulator& s, ConvProfile profile)
    : sim_(s),
      profile_(std::move(profile)),
      fcp_(s, /*slots=*/1, /*priority_levels=*/2),
      buffer_slots_(s, std::max<std::uint64_t>(
                           1, profile_.write_buffer_bytes /
                                  profile_.map_unit_bytes)),
      rng_(profile_.seed),
      inflight_programs_(s) {
  profile_.nand_geometry.Validate();
  ZSTOR_CHECK_MSG(profile_.lba_bytes == profile_.map_unit_bytes,
                  "conventional model supports lba == map unit only");
  ZSTOR_CHECK(profile_.nand_geometry.page_bytes %
                  profile_.map_unit_bytes ==
              0);
  flash_ = std::make_unique<nand::FlashArray>(s, profile_.nand_geometry,
                                              profile_.nand_timing);
  const std::uint64_t logical_units =
      profile_.logical_bytes() / profile_.map_unit_bytes;
  const std::uint64_t phys_units =
      profile_.physical_bytes() / profile_.map_unit_bytes;
  l2p_.assign(logical_units, kUnmapped);
  p2l_.assign(phys_units, kUnmapped);
  blocks_.resize(profile_.nand_geometry.total_blocks());
  for (auto& b : blocks_) {
    b.valid_bitmap.assign((units_per_block() + 63) / 64, 0);
  }
  free_blocks_.resize(profile_.nand_geometry.total_dies());
  host_open_block_.assign(profile_.nand_geometry.total_dies(), kUnmapped);
  die_alloc_.reserve(profile_.nand_geometry.total_dies());
  for (std::uint32_t d = 0; d < profile_.nand_geometry.total_dies(); ++d) {
    die_alloc_.push_back(std::make_unique<sim::FifoResource>(s, 1));
  }

  info_.format.lba_bytes = profile_.lba_bytes;
  info_.capacity_lbas = profile_.logical_bytes() / profile_.lba_bytes;
  info_.zoned = false;
}

void ConvDevice::FinalizeLayout() {
  if (layout_done_) return;
  layout_done_ = true;
  // Blocks not claimed by a prefill go to the free pool; a small reserve
  // guarantees GC never deadlocks against host writes for blocks.
  std::uint32_t reserve_target = 2 * profile_.gc_workers + 2;
  std::uint64_t free_count = 0;
  for (std::uint32_t die = 0; die < profile_.nand_geometry.total_dies();
       ++die) {
    for (std::uint32_t blk = 0; blk < profile_.nand_geometry.blocks_per_die;
         ++blk) {
      std::uint32_t id = BlockIdOf(die, blk);
      if (blocks_[id].write_ptr_units != 0) continue;  // prefilled
      if (gc_reserve_.size() < reserve_target) {
        gc_reserve_.push_back(id);
      } else {
        free_blocks_[die].push_back(id);
        ++free_count;
      }
    }
  }
  free_total_ = static_cast<std::uint32_t>(free_count);
  free_sem_ = std::make_unique<sim::Semaphore>(sim_, free_count);
  ZSTOR_CHECK_MSG(free_total_ > profile_.gc_high_blocks,
                  "over-full prefill: no room for GC watermarks");
}

// ----------------------------------------------------------- FTL state

bool ConvDevice::TestValid(const Block& b, std::uint32_t unit) const {
  return (b.valid_bitmap[unit / 64] >> (unit % 64)) & 1;
}

void ConvDevice::SetValid(Block& b, std::uint32_t unit, bool v) {
  std::uint64_t mask = 1ull << (unit % 64);
  if (v) {
    b.valid_bitmap[unit / 64] |= mask;
  } else {
    b.valid_bitmap[unit / 64] &= ~mask;
  }
}

void ConvDevice::InvalidateUnit(std::uint32_t logical_unit) {
  std::uint32_t phys = l2p_[logical_unit];
  if (phys == kUnmapped || phys == kInBuffer) return;
  std::uint32_t block_id = phys / units_per_block();
  std::uint32_t unit = phys % units_per_block();
  Block& b = blocks_[block_id];
  ZSTOR_CHECK(TestValid(b, unit));
  SetValid(b, unit, false);
  ZSTOR_CHECK(b.valid > 0);
  b.valid--;
  p2l_[phys] = kUnmapped;
}

void ConvDevice::MapUnit(std::uint32_t logical_unit,
                         std::uint32_t phys_unit) {
  InvalidateUnit(logical_unit);
  l2p_[logical_unit] = phys_unit;
  p2l_[phys_unit] = logical_unit;
  Block& b = blocks_[phys_unit / units_per_block()];
  SetValid(b, phys_unit % units_per_block(), true);
  b.valid++;
}

sim::Task<std::uint32_t> ConvDevice::AcquireFreeBlock(
    std::uint32_t preferred_die) {
  if (free_total_ == 0) MaybeWakeGc();  // we are about to block on it
  co_await free_sem_->Acquire();
  if (crashed_) {
    // Woken by CrashNow's drain (power is out, GC will not replenish the
    // pool): consume the spurious permit and let the caller abort.
    co_return kUnmapped;
  }
  std::uint32_t dies = profile_.nand_geometry.total_dies();
  for (std::uint32_t i = 0; i < dies; ++i) {
    std::uint32_t die = (preferred_die + i) % dies;
    if (!free_blocks_[die].empty()) {
      std::uint32_t id = free_blocks_[die].front();
      free_blocks_[die].pop_front();
      --free_total_;
      MaybeWakeGc();
      co_return id;
    }
  }
  ZSTOR_CHECK_MSG(false, "free semaphore and pool out of sync");
}

void ConvDevice::ReleaseErasedBlock(std::uint32_t block_id) {
  std::uint32_t reserve_target = 2 * profile_.gc_workers + 2;
  if (gc_reserve_.size() < reserve_target) {
    gc_reserve_.push_back(block_id);
    return;
  }
  free_blocks_[DieOfBlockId(block_id)].push_back(block_id);
  ++free_total_;
  free_sem_->Release();
}

// ------------------------------------------------------------------ GC

void ConvDevice::MaybeWakeGc() {
  if (!layout_done_) return;
  if (!gc_target_active_ && free_total_ < profile_.gc_low_blocks) {
    gc_target_active_ = true;
  }
  if (gc_target_active_ && free_total_ >= profile_.gc_high_blocks) {
    gc_target_active_ = false;
  }
  if (!gc_target_active_) return;
  while (gc_running_ < profile_.gc_workers) {
    std::uint32_t victim = PickVictim();
    if (victim == kUnmapped) break;
    blocks_[victim].gc_busy = true;
    ++gc_running_;
    ++counters_.gc_invocations;
    if (telemetry::Tracer* tr = trace(); tr != nullptr) {
      tr->Instant(sim_.now(), /*cmd=*/0, Layer::kFtl, "gc.victim",
                  static_cast<std::int64_t>(victim),
                  static_cast<std::int64_t>(blocks_[victim].valid));
    }
    sim::Spawn(MigrateAndErase(victim));
  }
}

std::uint32_t ConvDevice::PickVictim() {
  // Greedy: the full block with the fewest valid units (most garbage).
  // Victims with negligible garbage are not worth the migration cost —
  // unless the host is actually blocked waiting for a free block, in
  // which case any reclaimable unit keeps the device live.
  bool host_starving = free_total_ == 0 ||
                       (free_sem_ != nullptr && free_sem_->waiting() > 0);
  std::uint32_t min_garbage =
      host_starving ? 1 : units_per_block() / 10;
  std::uint32_t best = kUnmapped;
  std::uint32_t best_valid = units_per_block();
  for (std::uint32_t id = 0; id < blocks_.size(); ++id) {
    const Block& b = blocks_[id];
    if (b.open || b.gc_busy || b.inflight > 0 || b.retired) continue;
    if (b.write_ptr_units != units_per_block()) continue;  // not full
    if (units_per_block() - b.valid < min_garbage) continue;
    if (b.valid < best_valid) {
      best_valid = b.valid;
      best = id;
    }
  }
  return best;
}

sim::Task<> ConvDevice::GcProgramPage(
    std::uint32_t block_id, std::uint32_t page,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> batch,
    sim::WaitGroup* wg, std::uint64_t epoch) {
  for (;;) {
    const nand::MediaStatus st = co_await flash_->ProgramPage(
        {DieOfBlockId(block_id), BlockOfBlockId(block_id), page});
    if (power_epoch_ != epoch) {
      // Power loss mid-migration: skip the remap — the victim copy is
      // still physically intact (the erase never runs on a stale pass)
      // and the mapping rollback already points there.
      blocks_[block_id].inflight--;
      wg->Done();
      co_return;
    }
    if (st == nand::MediaStatus::kOk) break;
    // Program failure: retire the output block and restage this batch
    // into a fresh GC block — survivors are still held in controller
    // memory, so GC heals the fault with no data loss.
    blocks_[block_id].inflight--;
    RetireBlock(block_id);
    counters_.program_retries++;
    const std::uint32_t upp = profile_.units_per_page();
    block_id = TakeGcOpenBlock();
    Block& ob = blocks_[block_id];
    page = ob.write_ptr_units / upp;
    ob.write_ptr_units += upp;
    ob.inflight++;
    ReturnGcOpenBlock(block_id);
  }
  std::uint32_t base = page * profile_.units_per_page();
  std::uint32_t slot = 0;
  for (auto [logical, old_phys] : batch) {
    // Skip units the host overwrote while we migrated them.
    if (l2p_[logical] == old_phys) {
      std::uint32_t phys = PhysUnit(block_id, base + slot);
      MapUnit(logical, phys);
      JournalAppend(logical, old_phys, phys);
      // The payload tag travels with the data.
      if (!tags_by_phys_.empty()) tags_by_phys_[phys] = tags_by_phys_[old_phys];
      counters_.gc_units_migrated++;
    }
    ++slot;
  }
  blocks_[block_id].inflight--;
  wg->Done();
}

std::uint32_t ConvDevice::TakeGcOpenBlock() {
  while (!gc_open_pool_.empty()) {
    std::uint32_t id = gc_open_pool_.front();
    gc_open_pool_.pop_front();
    if (!blocks_[id].retired) return id;
  }
  ZSTOR_CHECK_MSG(!gc_reserve_.empty(), "GC block reserve exhausted");
  std::uint32_t id = gc_reserve_.front();
  gc_reserve_.pop_front();
  blocks_[id].open = true;
  return id;
}

bool ConvDevice::RetireBlock(std::uint32_t block_id) {
  counters_.write_faults++;
  if (!flash_->MarkBlockRetired(DieOfBlockId(block_id),
                                BlockOfBlockId(block_id))) {
    return false;
  }
  Block& b = blocks_[block_id];
  b.retired = true;
  b.open = false;
  // Seal at "full" so no in-flight writer reserves another page on it.
  // Its valid units stay mapped (retired blocks remain readable); they
  // are never reclaimed — retirement is permanent capacity loss.
  b.write_ptr_units = units_per_block();
  counters_.retired_blocks++;
  for (auto& open : host_open_block_) {
    if (open == block_id) open = kUnmapped;
  }
  if (telemetry::Tracer* tr = trace(); tr != nullptr) {
    tr->Instant(sim_.now(), /*cmd=*/0, Layer::kFtl, "block.retired",
                static_cast<std::int64_t>(block_id),
                static_cast<std::int64_t>(counters_.retired_blocks));
  }
  return true;
}

void ConvDevice::ReturnGcOpenBlock(std::uint32_t block_id) {
  if (blocks_[block_id].write_ptr_units == units_per_block()) {
    blocks_[block_id].open = false;  // retired; GC-eligible later
  } else {
    gc_open_pool_.push_back(block_id);  // reused by the next migration
  }
}

sim::Task<> ConvDevice::ReadVictimPage(nand::PageAddr addr,
                                       sim::WaitGroup* wg) {
  co_await flash_->ReadPage(addr, profile_.nand_geometry.page_bytes);
  wg->Done();
}

sim::Task<> ConvDevice::MigrateAndErase(std::uint32_t victim) {
  Block& vb = blocks_[victim];
  const std::uint32_t die = DieOfBlockId(victim);
  const std::uint32_t blk = BlockOfBlockId(victim);
  const std::uint32_t upp = profile_.units_per_page();
  const std::uint64_t epoch0 = power_epoch_;
  telemetry::Tracer* tr = trace();
  sim::Time migrate_begin = sim_.now();

  // Phase 1 — pipelined page reads: all valid pages of the victim are
  // queued on its die at once (firmware pipelines GC reads). Units are
  // snapshotted at scan time; stale ones are dropped at remap.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> survivors;
  {
    sim::WaitGroup rwg(sim_);
    for (std::uint32_t page = 0;
         page < profile_.nand_geometry.pages_per_block; ++page) {
      bool any = false;
      for (std::uint32_t s = 0; s < upp; ++s) {
        std::uint32_t unit = page * upp + s;
        if (!TestValid(vb, unit)) continue;
        std::uint32_t phys = PhysUnit(victim, unit);
        survivors.emplace_back(p2l_[phys], phys);
        any = true;
      }
      if (!any) continue;
      rwg.Add();
      sim::Spawn(ReadVictimPage({die, blk, page}, &rwg));
    }
    co_await rwg.Wait();
  }

  // Phase 2 — parallel program-out: page batches fan out across dies.
  {
    sim::WaitGroup pwg(sim_);
    std::uint32_t open = kUnmapped;
    for (std::size_t i = 0; i < survivors.size(); i += upp) {
      std::vector<std::pair<std::uint32_t, std::uint32_t>> batch(
          survivors.begin() + static_cast<std::ptrdiff_t>(i),
          survivors.begin() + static_cast<std::ptrdiff_t>(
                                  std::min(i + upp, survivors.size())));
      if (open == kUnmapped ||
          blocks_[open].write_ptr_units == units_per_block()) {
        if (open != kUnmapped) ReturnGcOpenBlock(open);
        open = TakeGcOpenBlock();
      }
      Block& ob = blocks_[open];
      std::uint32_t page = ob.write_ptr_units / upp;
      ob.write_ptr_units += upp;
      ob.inflight++;
      pwg.Add();
      sim::Spawn(GcProgramPage(open, page, std::move(batch), &pwg, epoch0));
    }
    if (open != kUnmapped) ReturnGcOpenBlock(open);
    co_await pwg.Wait();
  }

  if (power_epoch_ != epoch0) {
    // Power loss during migration: abort without erasing. Whatever was
    // remapped before the cut was reverted by the journal rollback, so
    // the victim's valid units are intact and it stays GC-eligible for
    // the next pass. Pages consumed in the output block are dead space.
    vb.gc_busy = false;
    --gc_running_;
    MaybeWakeGc();
    co_return;
  }

  if (tr != nullptr) {
    tr->Span(migrate_begin, sim_.now(), /*cmd=*/0, Layer::kFtl,
             "gc.migrate", static_cast<std::int64_t>(victim),
             static_cast<std::int64_t>(survivors.size()));
  }
  if (telemetry::TimelineWriter* tl = timeline(); tl != nullptr) {
    tl->Window(migrate_begin, sim_.now() - migrate_begin,
               telem_->timeline_label(), /*lane=*/0, "gc.migrate",
               static_cast<std::int64_t>(victim),
               static_cast<std::int64_t>(survivors.size()));
  }

  // All surviving units moved; any remaining valid bits belong to host
  // overwrites that raced ahead (they already re-invalidated). Erase.
  // The erase destroys the old physical copies, so every unsynced journal
  // entry and buffered-write rollback origin must stop referencing this
  // block first: sync makes the migration mappings durable, and buffered
  // origins inside the victim degrade to kUnmapped (a crash between here
  // and the buffered program landing loses those units — they were
  // unflushed, so that is within the device's contract).
  SyncJournal();
  ForgetBufferedOldInBlock(victim);
  sim::Time erase_begin = sim_.now();
  co_await flash_->EraseBlock(die, blk);
  if (tr != nullptr) {
    tr->Span(erase_begin, sim_.now(), /*cmd=*/0, Layer::kFtl, "gc.erase",
             static_cast<std::int64_t>(victim));
  }
  if (telemetry::TimelineWriter* tl = timeline(); tl != nullptr) {
    tl->Window(erase_begin, sim_.now() - erase_begin,
               telem_->timeline_label(), /*lane=*/0, "gc.erase",
               static_cast<std::int64_t>(victim));
  }
  ZSTOR_CHECK(vb.valid == 0);
  std::fill(vb.valid_bitmap.begin(), vb.valid_bitmap.end(), 0);
  vb.write_ptr_units = 0;
  vb.gc_busy = false;
  counters_.gc_blocks_erased++;
  ReleaseErasedBlock(victim);
  --gc_running_;
  MaybeWakeGc();
}

// ------------------------------------------------------------ I/O paths

Time ConvDevice::Noise(Time t) {
  if (profile_.io_sigma == 0.0 || t == 0) return t;
  return static_cast<Time>(static_cast<double>(t) *
                           rng_.LogNormalNoise(profile_.io_sigma));
}

sim::Task<Completion> ConvDevice::Execute(const Command& cmd) {
  if (!layout_done_) FinalizeLayout();
  Completion c;
  if (crashed_) {
    // Power is out (or recovery is replaying the journal): fail fast and
    // let the host re-drive once the controller answers again.
    counters_.reset_drops++;
    c.status = Status::kDeviceReset;
    co_return c;
  }
  switch (cmd.opcode) {
    case Opcode::kRead:
      c = co_await DoRead(cmd);
      break;
    case Opcode::kWrite:
      c = co_await DoWrite(cmd);
      break;
    case Opcode::kDeallocate:
      c = co_await DoDeallocate(cmd);
      break;
    case Opcode::kFlush:
      c = co_await DoFlush(cmd);
      break;
    default:
      c.status = Status::kInvalidOpcode;
      break;
  }
  if (!c.ok()) {
    if (c.status == Status::kDeviceReset) {
      counters_.reset_drops++;  // lost to a power cut mid-flight
    } else if (nvme::IsMediaError(c.status)) {
      counters_.media_errors++;
    } else {
      counters_.host_rejects++;
    }
  }
  co_return c;
}

sim::Task<Completion> ConvDevice::DoRead(Command cmd) {
  if (cmd.nlb == 0) co_return Completion{.status = Status::kInvalidField};
  if (cmd.slba + cmd.nlb > info_.capacity_lbas) {
    co_return Completion{.status = Status::kLbaOutOfRange};
  }
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(cmd.nlb) * profile_.lba_bytes;
  const std::uint64_t epoch0 = power_epoch_;
  telemetry::Tracer* tr = trace();
  sim::Time t0 = sim_.now();
  {
    auto g = co_await fcp_.Acquire(0);
    sim::Time t1 = sim_.now();
    Time c = profile_.fcp.read;
    if (cmd.nlb > 1) c += profile_.fcp.per_extra_unit * (cmd.nlb - 1);
    co_await sim_.Delay(Noise(c));
    if (tr != nullptr) {
      tr->Span(t0, t1, cmd.trace_id, Layer::kFcp, "fcp.wait");
      tr->Span(t1, sim_.now(), cmd.trace_id, Layer::kFcp, "fcp.service",
               static_cast<std::int64_t>(bytes));
    }
  }
  if (power_epoch_ != epoch0) {
    co_return Completion{.status = Status::kDeviceReset};
  }
  sim::Time nand_begin = sim_.now();
  // Fetch each mapped unit's physical page; distinct pages in parallel.
  std::vector<std::uint64_t> pages;  // phys page ids
  for (std::uint32_t i = 0; i < cmd.nlb; ++i) {
    std::uint32_t phys = l2p_[cmd.slba + i];
    if (phys == kUnmapped || phys == kInBuffer) continue;
    std::uint64_t page_id = phys / profile_.units_per_page();
    if (std::find(pages.begin(), pages.end(), page_id) == pages.end()) {
      pages.push_back(page_id);
    }
  }
  nand::MediaStatus media = nand::MediaStatus::kOk;
  if (pages.size() == 1) {
    co_await ReadPhysPage(pages[0], nullptr, &media);
  } else if (!pages.empty()) {
    sim::WaitGroup wg(sim_);
    for (std::uint64_t p : pages) {
      wg.Add();
      // &media outlives the spawned reads: wg.Wait() joins them below.
      sim::Spawn(ReadPhysPage(p, &wg, &media));
    }
    co_await wg.Wait();
  }
  sim::Time post_begin = sim_.now();
  if (tr != nullptr) {
    tr->Span(nand_begin, post_begin, cmd.trace_id, Layer::kNand,
             "nand.read");
  }
  if (media == nand::MediaStatus::kReadError) {
    counters_.read_faults++;
    co_return Completion{.status = Status::kMediaReadError};
  }
  co_await sim_.Delay(
      Noise(profile_.post.read_fixed +
            static_cast<Time>(profile_.post.dma_ns_per_byte *
                              static_cast<double>(bytes))));
  if (tr != nullptr) {
    tr->Span(post_begin, sim_.now(), cmd.trace_id, Layer::kPost, "post",
             static_cast<std::int64_t>(bytes));
  }
  if (power_epoch_ != epoch0) {
    // Power cut during the host DMA: the transfer is torn.
    co_return Completion{.status = Status::kDeviceReset};
  }
  counters_.reads++;
  counters_.bytes_read += bytes;
  Completion done{.status = Status::kSuccess};
  if (cmd.payload_tag != 0) {
    // Integrity-check readback: what the mapping resolves to at
    // completion time (unmapped/trimmed units read as tag 0).
    done.payload_tags.resize(cmd.nlb);
    for (std::uint32_t i = 0; i < cmd.nlb; ++i) {
      done.payload_tags[i] =
          TagOfLogical(static_cast<std::uint32_t>(cmd.slba + i));
    }
  }
  co_return done;
}

sim::Task<> ConvDevice::ReadPhysPage(std::uint64_t page_id,
                                     sim::WaitGroup* wg,
                                     nand::MediaStatus* failed) {
  std::uint32_t block_id = static_cast<std::uint32_t>(
      page_id / profile_.nand_geometry.pages_per_block);
  std::uint32_t page = static_cast<std::uint32_t>(
      page_id % profile_.nand_geometry.pages_per_block);
  const nand::MediaStatus st = co_await flash_->ReadPage(
      {DieOfBlockId(block_id), BlockOfBlockId(block_id), page},
      profile_.map_unit_bytes);
  if (st != nand::MediaStatus::kOk && failed != nullptr) *failed = st;
  if (wg != nullptr) wg->Done();
}

sim::Task<Completion> ConvDevice::DoWrite(Command cmd) {
  if (cmd.nlb == 0) co_return Completion{.status = Status::kInvalidField};
  if (cmd.slba + cmd.nlb > info_.capacity_lbas) {
    co_return Completion{.status = Status::kLbaOutOfRange};
  }
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(cmd.nlb) * profile_.lba_bytes;
  const std::uint64_t epoch0 = power_epoch_;
  telemetry::Tracer* tr = trace();
  sim::Time t0 = sim_.now();
  {
    auto g = co_await fcp_.Acquire(0);
    sim::Time t1 = sim_.now();
    Time c = profile_.fcp.write;
    if (cmd.nlb > 1) c += profile_.fcp.per_extra_unit * (cmd.nlb - 1);
    co_await sim_.Delay(Noise(c));
    if (tr != nullptr) {
      tr->Span(t0, t1, cmd.trace_id, Layer::kFcp, "fcp.wait");
      tr->Span(t1, sim_.now(), cmd.trace_id, Layer::kFcp, "fcp.service",
               static_cast<std::int64_t>(bytes));
    }
    if (power_epoch_ != epoch0) {
      // Crashed before any state mutation: fail clean, nothing admitted.
      co_return Completion{.status = Status::kDeviceReset};
    }
    // Overwrites invalidate the previous physical locations now. The
    // pre-buffer mapping is remembered so a power loss before the
    // buffered data reaches flash can roll each unit back to its last
    // durable copy (emplace: a double-buffered unit keeps the *original*
    // durable phys, not the intermediate kInBuffer).
    for (std::uint32_t i = 0; i < cmd.nlb; ++i) {
      std::uint32_t u = static_cast<std::uint32_t>(cmd.slba + i);
      if (l2p_[u] != kInBuffer) buffered_old_.emplace(u, l2p_[u]);
      InvalidateUnit(u);
      l2p_[u] = kInBuffer;
      if (cmd.payload_tag != 0) pending_tags_[u] = cmd.payload_tag + i;
    }
  }
  sim::Time post_begin = sim_.now();
  co_await sim_.Delay(
      Noise(profile_.post.write_fixed +
            static_cast<Time>(profile_.post.dma_ns_per_byte *
                              static_cast<double>(bytes))));
  sim::Time admit_begin = sim_.now();
  if (tr != nullptr) {
    tr->Span(post_begin, admit_begin, cmd.trace_id, Layer::kPost, "post",
             static_cast<std::int64_t>(bytes));
  }
  for (std::uint32_t i = 0; i < cmd.nlb; ++i) {
    if (power_epoch_ != epoch0) break;  // crash rolled the rest back
    co_await AdmitUnit(static_cast<std::uint32_t>(cmd.slba + i), epoch0);
  }
  if (tr != nullptr) {
    // Non-zero when the write-back buffer is full or the device stalls
    // waiting for GC to free a block (the Fig. 6a collapse mechanism).
    tr->Span(admit_begin, sim_.now(), cmd.trace_id, Layer::kBuffer,
             "buffer.admit");
  }
  if (power_epoch_ != epoch0) {
    co_return Completion{.status = Status::kDeviceReset};
  }
  counters_.writes++;
  counters_.bytes_written += bytes;
  co_return Completion{.status = Status::kSuccess};
}

sim::Task<Completion> ConvDevice::DoDeallocate(Command cmd) {
  if (cmd.nlb == 0) co_return Completion{.status = Status::kInvalidField};
  if (cmd.slba + cmd.nlb > info_.capacity_lbas) {
    co_return Completion{.status = Status::kLbaOutOfRange};
  }
  const std::uint64_t epoch0 = power_epoch_;
  {
    auto g = co_await fcp_.Acquire(0);
    co_await sim_.Delay(
        Noise(profile_.trim_fixed + profile_.trim_per_unit * cmd.nlb));
    if (power_epoch_ != epoch0) {
      co_return Completion{.status = Status::kDeviceReset};
    }
    for (std::uint32_t i = 0; i < cmd.nlb; ++i) {
      std::uint32_t u = static_cast<std::uint32_t>(cmd.slba + i);
      if (l2p_[u] == kUnmapped) continue;
      // A trim is a mapping delta like any other: durable only once the
      // journal entry syncs. For an in-buffer unit, the delta supersedes
      // the buffered write, so its rollback origin transfers into the
      // journal entry and the buffered state is forgotten.
      if (l2p_[u] == kInBuffer) {
        auto it = buffered_old_.find(u);
        std::uint32_t origin = it != buffered_old_.end() ? it->second
                                                         : kUnmapped;
        if (it != buffered_old_.end()) buffered_old_.erase(it);
        pending_tags_.erase(u);
        JournalAppend(u, origin, kUnmapped);
      } else {
        JournalAppend(u, l2p_[u], kUnmapped);
      }
      InvalidateUnit(u);
      l2p_[u] = kUnmapped;  // also forgets in-buffer data
      counters_.units_trimmed++;
    }
  }
  counters_.deallocates++;
  co_return Completion{.status = Status::kSuccess};
}

sim::Task<Completion> ConvDevice::DoFlush(Command cmd) {
  // Flush: force the write-back buffer to flash (padding a partial NAND
  // page if needed) and sync the mapping journal — after completion a
  // power loss can no longer roll the flushed LBAs back.
  const std::uint64_t epoch0 = power_epoch_;
  telemetry::Tracer* tr = trace();
  sim::Time t0 = sim_.now();
  {
    auto g = co_await fcp_.Acquire(0);
    co_await sim_.Delay(Noise(profile_.fcp.write));
    if (tr != nullptr) {
      tr->Span(t0, sim_.now(), cmd.trace_id, Layer::kFcp, "fcp.service");
    }
  }
  if (power_epoch_ != epoch0) {
    co_return Completion{.status = Status::kDeviceReset};
  }
  if (!pending_units_.empty()) {
    std::vector<std::uint32_t> batch(pending_units_.begin(),
                                     pending_units_.end());
    pending_units_.clear();
    inflight_programs_.Add();
    sim::Spawn(ProgramHostPage(std::move(batch), epoch0));
  }
  co_await inflight_programs_.Wait();
  if (power_epoch_ != epoch0) {
    co_return Completion{.status = Status::kDeviceReset};
  }
  SyncJournal();
  counters_.flushes++;
  co_return Completion{.status = Status::kSuccess};
}

sim::Task<> ConvDevice::AdmitUnit(std::uint32_t logical_unit,
                                  std::uint64_t epoch) {
  co_await buffer_slots_.Acquire();
  if (power_epoch_ != epoch) {
    // Crashed while waiting for a buffer slot: the write's buffered state
    // was already rolled back, so admitting now would resurrect lost
    // data. Give the slot straight back.
    buffer_slots_.Release();
    co_return;
  }
  pending_units_.push_back(logical_unit);
  if (pending_units_.size() >= profile_.units_per_page()) {
    std::vector<std::uint32_t> batch(
        pending_units_.begin(),
        pending_units_.begin() + profile_.units_per_page());
    pending_units_.erase(pending_units_.begin(),
                         pending_units_.begin() + profile_.units_per_page());
    inflight_programs_.Add();
    sim::Spawn(ProgramHostPage(std::move(batch), epoch));
  }
}

sim::Task<> ConvDevice::ProgramHostPage(std::vector<std::uint32_t> units,
                                        std::uint64_t epoch) {
  const std::uint32_t dies = profile_.nand_geometry.total_dies();
  const std::uint32_t stream = next_die_rr_++ % dies;
  std::uint32_t block_id;
  std::uint32_t page;
  bool stale = false;
  for (;;) {
    {
      // Per-stream allocation lock: block lookup + page reservation is
      // atomic with respect to other programs on the same stream. (The
      // stream's block usually lives on the same-numbered die but may
      // come from another die under pressure.)
      auto g = co_await die_alloc_[stream]->Acquire();
      if (power_epoch_ != epoch) {
        stale = true;  // crashed while queued behind the allocator
      } else {
        block_id = host_open_block_[stream];
        if (block_id == kUnmapped ||
            blocks_[block_id].write_ptr_units == units_per_block()) {
          if (block_id != kUnmapped) blocks_[block_id].open = false;
          block_id = co_await AcquireFreeBlock(stream);
          if (block_id == kUnmapped) {
            stale = true;  // crash drained the free-block waiters
          } else {
            host_open_block_[stream] = block_id;
            blocks_[block_id].open = true;
          }
        }
        if (!stale) {
          Block& b = blocks_[block_id];
          page = b.write_ptr_units / profile_.units_per_page();
          b.write_ptr_units += profile_.units_per_page();
          b.inflight++;
          if (b.write_ptr_units == units_per_block()) {
            b.open = false;
            host_open_block_[stream] = kUnmapped;
          }
        }
      }
    }
    if (stale) break;
    const nand::MediaStatus st = co_await flash_->ProgramPage(
        {DieOfBlockId(block_id), BlockOfBlockId(block_id), page});
    blocks_[block_id].inflight--;
    if (power_epoch_ != epoch) {
      // The program raced a power loss. Whether the page physically
      // completed or tore is moot: it was never mapped, so the crash
      // rollback already reverted these units to their durable copies.
      // The reserved page stays consumed (dead space — crash-induced
      // write amplification).
      stale = true;
      break;
    }
    if (st == nand::MediaStatus::kOk) break;
    // Program failure: the units are still buffered, so retire the bad
    // block and re-drive the page into a fresh allocation — the fault is
    // invisible to the host beyond the extra latency.
    RetireBlock(block_id);
    counters_.program_retries++;
  }
  if (stale) {
    for (std::size_t i = 0; i < units.size(); ++i) buffer_slots_.Release();
    inflight_programs_.Done();
    co_return;
  }
  std::uint32_t base = page * profile_.units_per_page();
  for (std::uint32_t i = 0; i < units.size(); ++i) {
    std::uint32_t u = units[i];
    // Map only if this unit is still waiting on this buffered write (the
    // host may have overwritten it again while it sat in the buffer).
    if (l2p_[u] == kInBuffer) {
      std::uint32_t phys = PhysUnit(block_id, base + i);
      std::uint32_t origin = kUnmapped;
      if (auto it = buffered_old_.find(u); it != buffered_old_.end()) {
        origin = it->second;
        buffered_old_.erase(it);
      }
      MapUnit(u, phys);
      JournalAppend(u, origin, phys);
      if (auto it = pending_tags_.find(u); it != pending_tags_.end()) {
        CommitTag(phys, it->second);
        pending_tags_.erase(it);
      }
    }
    buffer_slots_.Release();
    counters_.host_units_programmed++;
  }
  inflight_programs_.Done();
}

// ------------------------------------- mapping journal & crash recovery

void ConvDevice::JournalAppend(std::uint32_t unit, std::uint32_t old_phys,
                               std::uint32_t new_phys) {
  journal_tail_.push_back({unit, old_phys, new_phys});
  if (journal_tail_.size() >= profile_.journal_sync_interval) SyncJournal();
}

void ConvDevice::SyncJournal() {
  if (journal_tail_.empty()) return;
  // Journal programs are charged as write amplification only — they ride
  // along host/GC programs on otherwise idle planes, so they are not
  // simulated as NAND occupancy (keeping non-crash timing identical to
  // the journal-less model this repo's calibration targets were fit on).
  const std::uint64_t units =
      (journal_tail_.size() + profile_.journal_entries_per_unit - 1) /
      profile_.journal_entries_per_unit;
  counters_.journal_units_written += units;
  counters_.journal_syncs++;
  journal_entries_since_checkpoint_ += journal_tail_.size();
  journal_tail_.clear();
  if (++journal_syncs_since_checkpoint_ >=
      profile_.journal_checkpoint_syncs) {
    counters_.journal_units_written += profile_.checkpoint_units;
    counters_.checkpoints++;
    journal_syncs_since_checkpoint_ = 0;
    journal_entries_since_checkpoint_ = 0;
  }
}

void ConvDevice::ForgetBufferedOldInBlock(std::uint32_t block_id) {
  const std::uint32_t lo = block_id * units_per_block();
  const std::uint32_t hi = lo + units_per_block();
  for (auto& [u, phys] : buffered_old_) {
    if (phys != kUnmapped && phys != kInBuffer && phys >= lo && phys < hi) {
      // The pre-buffer copy is about to be erased: if power fails before
      // the buffered rewrite lands, this unit has no durable copy left.
      phys = kUnmapped;
    }
  }
}

void ConvDevice::CommitTag(std::uint32_t phys_unit, std::uint64_t tag) {
  if (tags_by_phys_.empty()) tags_by_phys_.assign(p2l_.size(), 0);
  tags_by_phys_[phys_unit] = tag;
}

std::uint64_t ConvDevice::TagOfLogical(std::uint32_t logical_unit) const {
  const std::uint32_t phys = l2p_[logical_unit];
  if (phys == kUnmapped) return 0;
  if (phys == kInBuffer) {
    auto it = pending_tags_.find(logical_unit);
    return it != pending_tags_.end() ? it->second : 0;
  }
  return tags_by_phys_.empty() ? 0 : tags_by_phys_[phys];
}

sim::Task<> ConvDevice::CrashDriver(std::vector<sim::Time> at) {
  for (sim::Time t : at) {
    if (t > sim_.now()) co_await sim_.Delay(t - sim_.now());
    if (crashed_) continue;  // landed inside the previous outage: coalesce
    co_await CrashNow();
  }
}

sim::Task<> ConvDevice::CrashNow() {
  ZSTOR_CHECK_MSG(!crashed_, "nested crash");
  if (!layout_done_) FinalizeLayout();
  const sim::Time crash_time = sim_.now();
  crashed_ = true;
  ++power_epoch_;
  counters_.crashes++;
  telemetry::Tracer* tr = trace();
  if (tr != nullptr) {
    tr->Instant(crash_time, /*cmd=*/0, Layer::kFtl, "crash.power_loss",
                static_cast<std::int64_t>(power_epoch_));
  }
  // Host programs parked on the free-block semaphore would deadlock the
  // quiesce below (GC aborts on power loss, so nothing will replenish the
  // pool): wake them so they can observe the crash and bail out.
  if (free_sem_ != nullptr) {
    while (free_sem_->waiting() > 0) free_sem_->Release();
  }
  // Drain in-flight page programs in simulated time. The stale power
  // epoch stops each one from mapping anything; draining (rather than
  // tearing coroutines down) keeps buffer-slot and block accounting
  // exact, and the interval is folded into the outage window.
  co_await inflight_programs_.Wait();

  // --- volatile-state loss ------------------------------------------
  // 1. Buffered (unflushed) host writes: each kInBuffer unit reverts to
  //    its last durable pre-write mapping (or to unmapped if GC erased
  //    that copy while the rewrite sat in the buffer).
  std::uint64_t lost = 0;
  for (const auto& [u, origin] : buffered_old_) {
    if (l2p_[u] != kInBuffer) continue;
    ++lost;
    if (origin == kUnmapped) {
      l2p_[u] = kUnmapped;
    } else {
      MapUnit(u, origin);  // re-validates the old physical copy
    }
  }
  buffered_old_.clear();
  pending_tags_.clear();
  counters_.crash_lost_units += lost;
  for (std::size_t i = 0; i < pending_units_.size(); ++i) {
    buffer_slots_.Release();
  }
  pending_units_.clear();
  // 2. Unsynced journal tail: mapping deltas that never reached flash
  //    unwind in reverse, restoring the pre-delta chain (this runs after
  //    the buffered restore so a unit's kInBuffer -> P1 -> P0 history
  //    unwinds link by link).
  for (auto it = journal_tail_.rbegin(); it != journal_tail_.rend(); ++it) {
    ZSTOR_CHECK_MSG(l2p_[it->unit] == it->new_phys,
                    "journal chain out of order");
    if (it->new_phys != kUnmapped) {
      InvalidateUnit(it->unit);  // clears new_phys's valid bit and p2l
    }
    if (it->old_phys == kUnmapped) {
      l2p_[it->unit] = kUnmapped;
    } else {
      l2p_[it->unit] = it->old_phys;
      p2l_[it->old_phys] = it->unit;
      Block& b = blocks_[it->old_phys / units_per_block()];
      SetValid(b, it->old_phys % units_per_block(), true);
      b.valid++;
    }
  }
  counters_.journal_reverted_entries += journal_tail_.size();
  journal_tail_.clear();

  // --- recovery: boot + replay the synced tail since the checkpoint ---
  co_await sim_.Delay(profile_.recovery_boot_cost +
                      profile_.recovery_per_entry *
                          journal_entries_since_checkpoint_);
  counters_.recovery_replay_entries += journal_entries_since_checkpoint_;
  counters_.recoveries++;
  last_recovery_ns_ = sim_.now() - crash_time;
  counters_.recovery_ns_total += static_cast<std::uint64_t>(last_recovery_ns_);
  crashed_ = false;
  if (tr != nullptr) {
    tr->Instant(sim_.now(), /*cmd=*/0, Layer::kFtl, "recovery.done",
                static_cast<std::int64_t>(journal_entries_since_checkpoint_),
                static_cast<std::int64_t>(lost));
  }
  if (telemetry::TimelineWriter* tl = timeline(); tl != nullptr) {
    tl->Window(crash_time, 0, telem_->timeline_label(), /*lane=*/0,
               "crash.power_loss", static_cast<std::int64_t>(power_epoch_));
    tl->Window(crash_time, sim_.now() - crash_time, telem_->timeline_label(),
               /*lane=*/0, "recovery.replay",
               static_cast<std::int64_t>(journal_entries_since_checkpoint_),
               static_cast<std::int64_t>(lost));
  }
}

// ----------------------------------------------------------------- debug

void ConvDevice::DebugPrefill() {
  ZSTOR_CHECK_MSG(!layout_done_, "DebugPrefill must precede all I/O");
  const std::uint32_t dies = profile_.nand_geometry.total_dies();
  const std::uint32_t upp = profile_.units_per_page();
  const std::uint64_t logical_units = l2p_.size();
  for (std::uint64_t u = 0; u < logical_units; ++u) {
    std::uint64_t page_seq = u / upp;
    std::uint32_t die = static_cast<std::uint32_t>(page_seq % dies);
    std::uint64_t on_die_page = page_seq / dies;
    std::uint32_t blk = static_cast<std::uint32_t>(
        on_die_page / profile_.nand_geometry.pages_per_block);
    std::uint32_t page = static_cast<std::uint32_t>(
        on_die_page % profile_.nand_geometry.pages_per_block);
    ZSTOR_CHECK(blk < profile_.nand_geometry.blocks_per_die);
    std::uint32_t block_id = BlockIdOf(die, blk);
    Block& b = blocks_[block_id];
    std::uint32_t unit = page * upp + static_cast<std::uint32_t>(u % upp);
    std::uint32_t phys = PhysUnit(block_id, unit);
    l2p_[u] = phys;
    p2l_[phys] = static_cast<std::uint32_t>(u);
    SetValid(b, unit, true);
    b.valid++;
    if (b.write_ptr_units < unit + 1) b.write_ptr_units = unit + 1;
    flash_->DebugProgramRange(die, blk, page + 1);
  }
  // Round partially-written blocks up to "full" so they are GC-eligible.
  for (auto& b : blocks_) {
    if (b.write_ptr_units > 0) b.write_ptr_units = units_per_block();
  }
  FinalizeLayout();
}

}  // namespace zstor::ftl
