// Zone descriptor and the zone state machine (Fig. 1 of the paper).
//
// States follow the NVMe ZNS specification: a zone is *open* when it holds
// device write resources (implicitly after a write/append, or explicitly
// via the Open command), *active* when it is open or closed with a write
// pointer inside the zone. The max-open and max-active limits bound these
// two populations (14 each on the ZN540).
#pragma once

#include <cstdint>
#include <string_view>

#include "nvme/types.h"

namespace zstor::zns {

enum class ZoneState : std::uint8_t {
  kEmpty,
  kImplicitlyOpened,
  kExplicitlyOpened,
  kClosed,
  kFull,
  kReadOnly,
  kOffline,
};

constexpr std::string_view ToString(ZoneState s) {
  switch (s) {
    case ZoneState::kEmpty: return "Empty";
    case ZoneState::kImplicitlyOpened: return "ImplicitlyOpened";
    case ZoneState::kExplicitlyOpened: return "ExplicitlyOpened";
    case ZoneState::kClosed: return "Closed";
    case ZoneState::kFull: return "Full";
    case ZoneState::kReadOnly: return "ReadOnly";
    case ZoneState::kOffline: return "Offline";
  }
  return "Unknown";
}

constexpr bool IsOpen(ZoneState s) {
  return s == ZoneState::kImplicitlyOpened ||
         s == ZoneState::kExplicitlyOpened;
}

/// Open or closed-with-resources: counts against the max-active limit.
constexpr bool IsActive(ZoneState s) {
  return IsOpen(s) || s == ZoneState::kClosed;
}

struct Zone {
  ZoneState state = ZoneState::kEmpty;
  /// Write pointer as an offset (in bytes) from the start of the zone's
  /// data area. Equals zone capacity when the zone is full.
  std::uint64_t wp_bytes = 0;
  /// Bytes whose NAND programming completed (<= wp_bytes); the rest still
  /// sits in the device write-back buffer.
  std::uint64_t programmed_bytes = 0;
  /// Pages handed to the NAND drain but not yet programmed.
  std::uint32_t inflight_programs = 0;
  /// Set when the zone reached Full via the Finish command; resets of
  /// finished zones must also unmap the finish-marked region (Obs. 10).
  bool finished = false;
  /// Bytes of real data at the moment the zone was finished (the reset
  /// cost model distinguishes data from finish-padding).
  std::uint64_t data_bytes_at_finish = 0;
  /// Monotonic counter for LRU eviction of implicitly-opened zones.
  std::uint64_t opened_at_seq = 0;
  /// Set by a NAND program failure; the next write-class command on the
  /// zone (or a flush) completes kWriteFault to report the lost buffered
  /// data, then the flag clears.
  bool write_fault_pending = false;
  /// NAND blocks of this zone retired after program failures.
  std::uint32_t retired_blocks = 0;
};

}  // namespace zstor::zns
