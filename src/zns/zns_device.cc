#include "zns/zns_device.h"

#include <algorithm>
#include <cmath>

namespace zstor::zns {

using nvme::Command;
using nvme::Completion;
using nvme::Lba;
using nvme::Opcode;
using nvme::Status;
using nvme::ZoneAction;
using sim::Time;
using telemetry::Layer;

void ZnsCounters::Describe(telemetry::MetricsRegistry& m) const {
  m.GetCounter("zns.reads").Set(reads);
  m.GetCounter("zns.writes").Set(writes);
  m.GetCounter("zns.appends").Set(appends);
  m.GetCounter("zns.flushes").Set(flushes);
  m.GetCounter("zns.zone_reports").Set(zone_reports);
  m.GetCounter("zns.zones_worn_offline").Set(zones_worn_offline);
  m.GetCounter("zns.explicit_opens").Set(explicit_opens);
  m.GetCounter("zns.implicit_opens").Set(implicit_opens);
  m.GetCounter("zns.implicit_open_evictions").Set(implicit_open_evictions);
  m.GetCounter("zns.closes").Set(closes);
  m.GetCounter("zns.finishes").Set(finishes);
  m.GetCounter("zns.resets").Set(resets);
  m.GetCounter("zns.bytes_written").Set(bytes_written);
  m.GetCounter("zns.bytes_read").Set(bytes_read);
  m.GetCounter("zns.host_rejects").Set(host_rejects);
  m.GetCounter("zns.media_errors").Set(media_errors);
  m.GetCounter("zns.read_faults").Set(read_faults);
  m.GetCounter("zns.write_faults").Set(write_faults);
  m.GetCounter("zns.retired_blocks").Set(retired_blocks);
  m.GetCounter("zns.zones_degraded_readonly").Set(zones_degraded_readonly);
  m.GetCounter("zns.zones_failed_offline").Set(zones_failed_offline);
  m.GetCounter("zns.spare_blocks_used").Set(spare_blocks_used);
  m.GetCounter("zns.zone_transitions").Set(zone_transitions);
  m.GetCounter("zns.crashes").Set(crashes);
  m.GetCounter("zns.recoveries").Set(recoveries);
  m.GetCounter("zns.torn_pages").Set(torn_pages);
  m.GetCounter("zns.crash_lost_bytes").Set(crash_lost_bytes);
  m.GetCounter("zns.recovery_zone_scans").Set(recovery_zone_scans);
  m.GetCounter("zns.recovery_ns_total").Set(recovery_ns_total);
  m.GetCounter("zns.reset_drops").Set(reset_drops);
}

ZnsDevice::ZnsDevice(sim::Simulator& s, ZnsProfile profile,
                     std::uint32_t lba_bytes)
    : sim_(s),
      profile_(std::move(profile)),
      lba_bytes_(lba_bytes),
      fcp_(s, /*slots=*/1, /*priority_levels=*/2),
      buffer_slots_(s, std::max<std::uint64_t>(
                           1, profile_.write_buffer_bytes /
                                  profile_.nand_geometry.page_bytes)),
      rng_(profile_.seed),
      all_programs_(s) {
  ZSTOR_CHECK(lba_bytes_ > 0 && (lba_bytes_ & (lba_bytes_ - 1)) == 0);
  ZSTOR_CHECK(lba_bytes_ <= profile_.nand_geometry.page_bytes);
  ZSTOR_CHECK(profile_.zone_size_bytes % lba_bytes_ == 0);
  ZSTOR_CHECK(profile_.zone_cap_bytes % lba_bytes_ == 0);
  ZSTOR_CHECK(profile_.zone_cap_bytes <= profile_.zone_size_bytes);
  ZSTOR_CHECK(profile_.max_open_zones > 0);
  ZSTOR_CHECK(profile_.max_active_zones >= profile_.max_open_zones);
  zone_size_lbas_ = profile_.zone_size_bytes / lba_bytes_;
  zone_cap_lbas_ = profile_.zone_cap_bytes / lba_bytes_;

  if (profile_.use_nand_backend) {
    ZSTOR_CHECK(profile_.zone_cap_bytes %
                    profile_.nand_geometry.page_bytes ==
                0);
    // Every zone owns a fixed run of blocks on every die.
    ZSTOR_CHECK_MSG(
        static_cast<std::uint64_t>(profile_.blocks_per_zone_per_die()) *
                profile_.num_zones <=
            profile_.nand_geometry.blocks_per_die,
        "NAND geometry too small for the zone layout");
    flash_ = std::make_unique<nand::FlashArray>(s, profile_.nand_geometry,
                                                profile_.nand_timing);
  }

  zones_.resize(profile_.num_zones);
  next_program_page_.resize(profile_.num_zones, 0);
  settled_prefix_pages_.resize(profile_.num_zones, 0);
  settled_oo_pages_.resize(profile_.num_zones);
  zone_tags_.resize(profile_.num_zones);
  program_wg_.reserve(profile_.num_zones);
  for (std::uint32_t i = 0; i < profile_.num_zones; ++i) {
    program_wg_.push_back(std::make_unique<sim::WaitGroup>(s));
  }

  info_.format.lba_bytes = lba_bytes_;
  info_.capacity_lbas = zone_size_lbas_ * profile_.num_zones;
  info_.zoned = true;
  info_.zone_size_lbas = zone_size_lbas_;
  info_.zone_cap_lbas = zone_cap_lbas_;
  info_.num_zones = profile_.num_zones;
  info_.max_open_zones = profile_.max_open_zones;
  info_.max_active_zones = profile_.max_active_zones;
}

void ZnsDevice::AttachTelemetry(telemetry::Telemetry* t, std::uint32_t lane) {
  telem_ = t;
  lane_ = lane;
  if (flash_) flash_->AttachTelemetry(t, lane);
}

void ZnsDevice::AttachFaultPlan(fault::FaultPlan* p) {
  faults_ = p;
  if (flash_) flash_->AttachFaultPlan(p);
  if (p != nullptr && p->enabled() && !p->spec().crashes.empty() &&
      !crash_driver_armed_) {
    crash_driver_armed_ = true;
    sim::Spawn(CrashDriver(p->spec().crashes));
  }
}

// ---------------------------------------------------------------- helpers

std::uint32_t ZnsDevice::ZoneOfLba(Lba lba) const {
  return static_cast<std::uint32_t>(lba / zone_size_lbas_);
}

Lba ZnsDevice::ZoneStartLba(std::uint32_t zone) const {
  return static_cast<Lba>(zone) * zone_size_lbas_;
}

std::uint64_t ZnsDevice::ZoneDataOffsetBytes(Lba lba) const {
  return (lba - ZoneStartLba(ZoneOfLba(lba))) * lba_bytes_;
}

ZoneState ZnsDevice::GetZoneState(std::uint32_t zone) const {
  ZSTOR_CHECK(zone < zones_.size());
  return zones_[zone].state;
}

Lba ZnsDevice::ZoneWritePointerLba(std::uint32_t zone) const {
  ZSTOR_CHECK(zone < zones_.size());
  return ZoneStartLba(zone) + zones_[zone].wp_bytes / lba_bytes_;
}

std::uint64_t ZnsDevice::ZoneWrittenBytes(std::uint32_t zone) const {
  ZSTOR_CHECK(zone < zones_.size());
  return zones_[zone].wp_bytes;
}

nvme::SmartLog ZnsDevice::GetSmartLog() const {
  nvme::SmartLog log;
  log.device = "zns";
  log.host_reads = counters_.reads;
  log.host_writes = counters_.writes + counters_.appends;
  log.bytes_read = counters_.bytes_read;
  log.bytes_written = counters_.bytes_written;
  log.host_rejects = counters_.host_rejects;
  log.media_errors = counters_.media_errors;
  log.read_faults = counters_.read_faults;
  log.write_faults = counters_.write_faults;
  log.retired_blocks = counters_.retired_blocks;
  log.spare_blocks_used = counters_.spare_blocks_used;
  log.spare_blocks_total = profile_.spare_blocks;
  if (flash_ != nullptr) {
    const nand::FlashCounters& fc = flash_->counters();
    log.media_page_reads = fc.page_reads;
    log.media_page_programs = fc.page_programs;
    log.media_block_erases = fc.block_erases;
    log.media_bytes_read = fc.bytes_read;
    log.media_bytes_programmed = fc.bytes_programmed;
    log.media_read_retries = fc.read_retries;
  }
  log.zone_resets = counters_.resets;
  log.zone_finishes = counters_.finishes;
  log.zone_explicit_opens = counters_.explicit_opens;
  log.zone_implicit_opens = counters_.implicit_opens;
  log.zone_closes = counters_.closes;
  log.zone_transitions = counters_.zone_transitions;
  log.zones_worn_offline = counters_.zones_worn_offline;
  log.zones_degraded_readonly = counters_.zones_degraded_readonly;
  log.zones_failed_offline = counters_.zones_failed_offline;
  // Host-managed placement: the device never migrates data, so media
  // programs per host write is exactly 1.
  log.write_amplification = 1.0;
  return log;
}

nvme::ZoneReportLog ZnsDevice::GetZoneReportLog() const {
  nvme::ZoneReportLog log;
  log.num_zones = profile_.num_zones;
  log.open_zones = open_count_;
  log.active_zones = active_count_;
  log.max_open = profile_.max_open_zones;
  log.max_active = profile_.max_active_zones;
  log.zones.reserve(zones_.size());
  for (std::uint32_t z = 0; z < zones_.size(); ++z) {
    nvme::ZoneReportEntry e;
    e.zone = z;
    e.state_raw = static_cast<std::uint32_t>(zones_[z].state);
    e.state = std::string(ToString(zones_[z].state));
    e.zslba = ZoneStartLba(z);
    e.write_pointer = ZoneWritePointerLba(z);
    e.written_bytes = zones_[z].wp_bytes;
    e.cap_bytes = profile_.zone_cap_bytes;
    e.retired_blocks = zones_[z].retired_blocks;
    if (zones_[z].state == ZoneState::kReadOnly) log.read_only_zones++;
    if (zones_[z].state == ZoneState::kOffline) log.offline_zones++;
    log.zones.push_back(std::move(e));
  }
  return log;
}

nvme::DieUtilLog ZnsDevice::GetDieUtilLog() const {
  nvme::DieUtilLog log;
  log.elapsed_ns = static_cast<std::uint64_t>(sim_.now());
  if (flash_ == nullptr) return log;
  const std::vector<nand::DieStats>& stats = flash_->die_stats();
  log.dies.reserve(stats.size());
  for (std::uint32_t d = 0; d < stats.size(); ++d) {
    nvme::DieUtilEntry e;
    e.die = d;
    e.reads = stats[d].reads;
    e.programs = stats[d].programs;
    e.erases = stats[d].erases;
    e.busy_ns = static_cast<std::uint64_t>(stats[d].busy_ns);
    e.utilization = log.elapsed_ns == 0
                        ? 0.0
                        : static_cast<double>(e.busy_ns) /
                              static_cast<double>(log.elapsed_ns);
    log.dies.push_back(e);
  }
  return log;
}

Time ZnsDevice::Noise(Time t) {
  if (profile_.io_sigma == 0.0 || t == 0) return t;
  return static_cast<Time>(static_cast<double>(t) *
                           rng_.LogNormalNoise(profile_.io_sigma));
}

Time ZnsDevice::FcpIoCost(Opcode op, std::uint64_t bytes, std::uint32_t nlb,
                          Lba slba) const {
  const FcpCosts& f = profile_.fcp;
  Time c = 0;
  switch (op) {
    case Opcode::kRead: c = f.read; break;
    case Opcode::kWrite: c = f.write; break;
    case Opcode::kAppend: c = f.append; break;
    default: ZSTOR_CHECK_MSG(false, "not an I/O opcode");
  }
  std::uint64_t units = (bytes + f.map_unit_bytes - 1) / f.map_unit_bytes;
  if (units > 1) c += f.per_extra_unit * (units - 1);
  if (op != Opcode::kRead) {
    std::uint64_t off = ZoneDataOffsetBytes(slba);
    if (bytes % f.map_unit_bytes != 0 || off % f.map_unit_bytes != 0) {
      c += f.sub_unit_rmw;  // read-modify-write of a mapping unit
    }
    if (lba_bytes_ < f.map_unit_bytes) c += f.small_lba_per_lba * nlb;
  }
  return c;
}

Time ZnsDevice::ResetCost(const Zone& z, sim::Rng& rng) const {
  const ResetModel& m = profile_.reset;
  double noise =
      m.sigma == 0.0 ? 1.0 : rng.LogNormalNoise(m.sigma);
  if (z.wp_bytes == 0 && !z.finished) {
    return static_cast<Time>(static_cast<double>(m.empty_cost) * noise);
  }
  if (m.static_cost) {
    return static_cast<Time>(static_cast<double>(m.static_value) * noise);
  }
  // Occupancy is the *data* fraction; a finished zone pays an additional
  // term for unmapping the finish-padded remainder.
  double occ = static_cast<double>(z.finished ? z.data_bytes_at_finish
                                              : z.wp_bytes) /
               static_cast<double>(profile_.zone_cap_bytes);
  double cost = static_cast<double>(m.base) +
                static_cast<double>(m.coef) * std::pow(occ, m.exponent);
  if (z.finished) {
    cost += static_cast<double>(m.finished_extra_coef) * (1.0 - occ);
  }
  return static_cast<Time>(cost * noise);
}

nand::PageAddr ZnsDevice::AddrOfZonePage(std::uint32_t zone,
                                         std::uint64_t page_idx) const {
  const nand::Geometry& g = profile_.nand_geometry;
  std::uint32_t dies = g.total_dies();
  std::uint32_t die = static_cast<std::uint32_t>(page_idx % dies);
  std::uint64_t on_die = page_idx / dies;
  std::uint32_t block_in_zone =
      static_cast<std::uint32_t>(on_die / g.pages_per_block);
  ZSTOR_CHECK(block_in_zone < profile_.blocks_per_zone_per_die());
  return nand::PageAddr{
      .die = die,
      .block = zone * profile_.blocks_per_zone_per_die() + block_in_zone,
      .page = static_cast<std::uint32_t>(on_die % g.pages_per_block)};
}

bool ZnsDevice::DeviceIsIoQuiet() const {
  if (io_inflight_ != 0 || fcp_.total_queued() != 0 ||
      fcp_.free_slots() == 0) {
    return false;
  }
  if (!io_seen_) return true;
  // Quiet only if no I/O has touched the device for a full millisecond —
  // QD=1 submission gaps are microseconds, so ongoing workloads always
  // keep resets on the sliced background path.
  return sim_.now() >= last_io_time_ + sim::Milliseconds(1);
}

// --------------------------------------------------------- state machine

void ZnsDevice::SetZoneState(std::uint32_t zone, ZoneState next) {
  Zone& z = zones_[zone];
  ZoneState prev = z.state;
  if (prev == next) return;
  counters_.zone_transitions++;
  if (telemetry::Tracer* tr = trace(); tr != nullptr) {
    tr->Instant(sim_.now(), /*cmd=*/0, Layer::kZone, "zone.transition",
                static_cast<std::int64_t>(zone),
                (static_cast<std::int64_t>(prev) << 8) |
                    static_cast<std::int64_t>(next));
  }
  if (telemetry::TimelineWriter* tl = timeline(); tl != nullptr) {
    tl->ZoneState(sim_.now(), telem_->timeline_label(), lane_, zone,
                  ToString(prev), ToString(next));
  }
  if (IsOpen(prev) && !IsOpen(next)) {
    ZSTOR_CHECK(open_count_ > 0);
    --open_count_;
  } else if (!IsOpen(prev) && IsOpen(next)) {
    ++open_count_;
  }
  if (IsActive(prev) && !IsActive(next)) {
    ZSTOR_CHECK(active_count_ > 0);
    --active_count_;
  } else if (!IsActive(prev) && IsActive(next)) {
    ++active_count_;
  }
  z.state = next;
  ZSTOR_CHECK(open_count_ <= profile_.max_open_zones);
  ZSTOR_CHECK(active_count_ <= profile_.max_active_zones);
  ZSTOR_CHECK(open_count_ <= active_count_);
}

bool ZnsDevice::TakeOpenSlotWithEviction() {
  if (open_count_ < profile_.max_open_zones) return true;
  // At the open limit: the controller may close an implicitly-opened zone
  // to make room (NVMe ZNS 2.1.3); explicitly-opened zones are pinned.
  std::uint32_t victim = profile_.num_zones;
  std::uint64_t oldest = ~0ull;
  for (std::uint32_t i = 0; i < profile_.num_zones; ++i) {
    const Zone& z = zones_[i];
    if (z.state == ZoneState::kImplicitlyOpened &&
        z.opened_at_seq < oldest) {
      oldest = z.opened_at_seq;
      victim = i;
    }
  }
  if (victim == profile_.num_zones) return false;
  ZSTOR_CHECK(zones_[victim].wp_bytes > 0);  // implicit open implies I/O
  SetZoneState(victim, ZoneState::kClosed);
  counters_.implicit_open_evictions++;
  return true;
}

Status ZnsDevice::EnsureOpenForIo(std::uint32_t zone, bool& first_io) {
  Zone& z = zones_[zone];
  first_io = false;
  switch (z.state) {
    case ZoneState::kImplicitlyOpened:
    case ZoneState::kExplicitlyOpened:
      return Status::kSuccess;
    case ZoneState::kEmpty:
      if (active_count_ >= profile_.max_active_zones) {
        return Status::kTooManyActiveZones;
      }
      if (!TakeOpenSlotWithEviction()) return Status::kTooManyOpenZones;
      SetZoneState(zone, ZoneState::kImplicitlyOpened);
      z.opened_at_seq = ++open_seq_;
      counters_.implicit_opens++;
      first_io = true;
      return Status::kSuccess;
    case ZoneState::kClosed:
      if (!TakeOpenSlotWithEviction()) return Status::kTooManyOpenZones;
      SetZoneState(zone, ZoneState::kImplicitlyOpened);
      z.opened_at_seq = ++open_seq_;
      counters_.implicit_opens++;
      first_io = true;
      return Status::kSuccess;
    case ZoneState::kFull:
      return Status::kZoneIsFull;
    case ZoneState::kReadOnly:
      return Status::kZoneIsReadOnly;
    case ZoneState::kOffline:
      return Status::kZoneIsOffline;
  }
  return Status::kInvalidField;
}

void ZnsDevice::TransitionToFullLocked(std::uint32_t zone, bool via_finish) {
  Zone& z = zones_[zone];
  SetZoneState(zone, ZoneState::kFull);
  z.finished = via_finish;
  if (via_finish) {
    z.data_bytes_at_finish = z.wp_bytes;
    z.wp_bytes = profile_.zone_cap_bytes;
  }
}

// ------------------------------------------------------------- NAND path

sim::Task<> ZnsDevice::ProgramZonePage(std::uint32_t zone,
                                       std::uint64_t page_idx,
                                       std::uint64_t epoch) {
  const nand::PageAddr addr = AddrOfZonePage(zone, page_idx);
  const nand::MediaStatus st = co_await flash_->ProgramPage(addr);
  buffer_slots_.Release();
  Zone& z = zones_[zone];
  if (epoch == power_epoch_) {
    // The page slot is consumed even on failure (the write pointer already
    // advanced and follow-on pages were admitted behind it); the data loss
    // is reported to the host via kWriteFault, not by shrinking the zone.
    z.programmed_bytes += profile_.nand_geometry.page_bytes;
    NoteProgramSettled(zone, page_idx);
    if (st == nand::MediaStatus::kProgramFail) {
      HandleProgramFailure(zone, addr);
    }
  }
  // A program settling after a power loss (stale epoch) only returns its
  // resources: the crash already rolled the zone back and will discard
  // this page's NAND state, so mutating zone accounting here would
  // resurrect rolled-back bytes.
  ZSTOR_CHECK(z.inflight_programs > 0);
  z.inflight_programs--;
  program_wg_[zone]->Done();
  all_programs_.Done();
}

void ZnsDevice::NoteProgramSettled(std::uint32_t zone,
                                   std::uint64_t page_idx) {
  std::uint64_t& prefix = settled_prefix_pages_[zone];
  std::set<std::uint64_t>& oo = settled_oo_pages_[zone];
  if (page_idx == prefix) {
    ++prefix;
    // Drain any out-of-order completions the new prefix now reaches.
    while (!oo.empty() && *oo.begin() == prefix) {
      oo.erase(oo.begin());
      ++prefix;
    }
  } else if (page_idx > prefix) {
    oo.insert(page_idx);
  }
  // page_idx < prefix is impossible: pages are admitted once, in order.
}

void ZnsDevice::HandleProgramFailure(std::uint32_t zone,
                                     nand::PageAddr addr) {
  Zone& z = zones_[zone];
  counters_.write_faults++;
  z.write_fault_pending = true;
  flush_fault_pending_ = true;
  if (!flash_->MarkBlockRetired(addr.die, addr.block)) {
    return;  // fail-fast program on an already-retired block
  }
  z.retired_blocks++;
  counters_.retired_blocks++;
  if (z.state == ZoneState::kOffline) return;
  if (counters_.spare_blocks_used < profile_.spare_blocks) {
    // A spare absorbs the loss of redundancy; the zone keeps its data
    // readable but accepts no further writes.
    counters_.spare_blocks_used++;
    if (z.state != ZoneState::kReadOnly) {
      SetZoneState(zone, ZoneState::kReadOnly);
      counters_.zones_degraded_readonly++;
    }
  } else {
    // Spares exhausted: the device can no longer guarantee the zone.
    SetZoneState(zone, ZoneState::kOffline);
    counters_.zones_failed_offline++;
  }
}

sim::Task<> ZnsDevice::AdmitPrograms(std::uint32_t zone,
                                     std::uint64_t end_off_bytes,
                                     std::uint64_t epoch) {
  const std::uint64_t target =
      end_off_bytes / profile_.nand_geometry.page_bytes;
  while (epoch == power_epoch_ && next_program_page_[zone] < target) {
    co_await buffer_slots_.Acquire();  // backpressure when the buffer fills
    if (epoch != power_epoch_) {
      // Power was lost while we waited for a slot: the crash rolled
      // next_program_page_ back, the buffered data is gone, and the slot
      // we just got must go straight back.
      buffer_slots_.Release();
      break;
    }
    if (next_program_page_[zone] >= target) {
      // While this admitter waited for a slot, a concurrent admitter for
      // the same zone (a later append's admission loop) drove the shared
      // page cursor past our target: our pages are already admitted, and
      // taking one more would program past the zone's write pointer.
      buffer_slots_.Release();
      break;
    }
    std::uint64_t p = next_program_page_[zone]++;
    zones_[zone].inflight_programs++;
    program_wg_[zone]->Add();
    all_programs_.Add();
    sim::Spawn(ProgramZonePage(zone, p, epoch));
  }
}

sim::Task<> ZnsDevice::ReadOneZonePage(std::uint32_t zone,
                                       std::uint64_t page_idx,
                                       std::uint32_t bytes,
                                       sim::WaitGroup* wg,
                                       nand::MediaStatus* failed) {
  const nand::MediaStatus st =
      co_await flash_->ReadPage(AddrOfZonePage(zone, page_idx), bytes);
  if (st != nand::MediaStatus::kOk && failed != nullptr) *failed = st;
  wg->Done();
}

// --------------------------------------------------------------- command

nvme::Status ZnsDevice::ValidateIoRange(const Command& cmd,
                                        bool is_write) const {
  if (cmd.nlb == 0) return Status::kInvalidField;
  if (cmd.slba >= info_.capacity_lbas ||
      cmd.slba + cmd.nlb > info_.capacity_lbas) {
    return Status::kLbaOutOfRange;
  }
  if (ZoneOfLba(cmd.slba) != ZoneOfLba(cmd.slba + cmd.nlb - 1)) {
    return Status::kZoneBoundaryError;
  }
  if (is_write) {
    std::uint64_t off = ZoneDataOffsetBytes(cmd.slba);
    std::uint64_t bytes = static_cast<std::uint64_t>(cmd.nlb) * lba_bytes_;
    if (off + bytes > profile_.zone_cap_bytes) {
      return Status::kZoneBoundaryError;
    }
  }
  return Status::kSuccess;
}

sim::Task<Completion> ZnsDevice::Execute(const Command& cmd) {
  Completion c;
  if (crashed_) {
    // Power is out (or recovery is still running): fail fast. The host
    // sees the controller disappear and — via ResilientStack — re-drives
    // once it answers again.
    counters_.reset_drops++;
    c.status = Status::kDeviceReset;
    co_return c;
  }
  switch (cmd.opcode) {
    case Opcode::kRead:
      c = co_await DoRead(cmd);
      break;
    case Opcode::kWrite:
      c = co_await DoWrite(cmd);
      break;
    case Opcode::kAppend:
      c = co_await DoAppend(cmd);
      break;
    case Opcode::kZoneMgmtSend:
      c = co_await DoZoneMgmt(cmd);
      break;
    case Opcode::kZoneMgmtRecv:
      c = co_await DoReportZones(cmd);
      break;
    case Opcode::kFlush:
      c = co_await DoFlush(cmd.trace_id);
      break;
    default:
      c.status = Status::kInvalidOpcode;
      break;
  }
  if (!c.ok()) {
    if (c.status == Status::kDeviceReset) {
      counters_.reset_drops++;  // lost to a power cut mid-flight
    } else if (nvme::IsMediaError(c.status)) {
      counters_.media_errors++;
    } else {
      counters_.host_rejects++;
    }
  }
  co_return c;
}

sim::Task<Completion> ZnsDevice::DoRead(Command cmd) {
  if (Status st = ValidateIoRange(cmd, /*is_write=*/false);
      st != Status::kSuccess) {
    co_return Completion{.status = st};
  }
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(cmd.nlb) * lba_bytes_;
  const std::uint32_t zone = ZoneOfLba(cmd.slba);
  // Offline zones lost their data; ReadOnly zones still serve reads.
  if (zones_[zone].state == ZoneState::kOffline) {
    co_return Completion{.status = Status::kZoneIsOffline};
  }
  InflightGuard io_guard(*this);
  const std::uint64_t epoch0 = power_epoch_;
  telemetry::Tracer* tr = trace();
  sim::Time t0 = sim_.now();
  {
    auto g = co_await fcp_.Acquire(kPrioIo);
    sim::Time t1 = sim_.now();
    if (tr != nullptr) {
      tr->Span(t0, t1, cmd.trace_id, Layer::kFcp, "fcp.wait",
               static_cast<std::int64_t>(zone));
    }
    co_await sim_.Delay(
        Noise(FcpIoCost(Opcode::kRead, bytes, cmd.nlb, cmd.slba)));
    if (tr != nullptr) {
      tr->Span(t1, sim_.now(), cmd.trace_id, Layer::kFcp, "fcp.service",
               static_cast<std::int64_t>(zone),
               static_cast<std::int64_t>(bytes));
    }
  }
  if (power_epoch_ != epoch0) {
    co_return Completion{.status = Status::kDeviceReset};
  }
  sim::Time nand_begin = sim_.now();
  // NAND phase: fetch the pages that have actually been programmed; the
  // rest is served from the write-back buffer or as deallocated zeroes.
  nand::MediaStatus media = nand::MediaStatus::kOk;
  if (flash_) {
    const Zone& z = zones_[zone];
    const std::uint64_t pb = profile_.nand_geometry.page_bytes;
    std::uint64_t off = ZoneDataOffsetBytes(cmd.slba);
    std::uint64_t end = std::min(off + bytes, z.programmed_bytes);
    if (off < end) {
      std::uint64_t first_page = off / pb;
      std::uint64_t last_page = (end - 1) / pb;
      if (first_page == last_page) {
        media = co_await flash_->ReadPage(
            AddrOfZonePage(zone, first_page),
            static_cast<std::uint32_t>(end - off));
      } else {
        sim::WaitGroup wg(sim_);
        for (std::uint64_t p = first_page; p <= last_page; ++p) {
          std::uint64_t p_lo = std::max(off, p * pb);
          std::uint64_t p_hi = std::min(end, (p + 1) * pb);
          wg.Add();
          sim::Spawn(ReadOneZonePage(
              zone, p, static_cast<std::uint32_t>(p_hi - p_lo), &wg,
              &media));
        }
        co_await wg.Wait();
      }
    }
  }
  if (power_epoch_ != epoch0) {
    co_return Completion{.status = Status::kDeviceReset};
  }
  sim::Time post_begin = sim_.now();
  if (tr != nullptr && flash_) {
    // Zero-length when everything was served from the write-back buffer.
    tr->Span(nand_begin, post_begin, cmd.trace_id, Layer::kNand,
             "nand.read", static_cast<std::int64_t>(zone));
  }
  if (media == nand::MediaStatus::kReadError) {
    // ECC gave up on at least one page: the command fails; no host DMA.
    counters_.read_faults++;
    co_return Completion{.status = Status::kMediaReadError};
  }
  co_await sim_.Delay(
      Noise(profile_.post.read_fixed +
            static_cast<Time>(profile_.post.dma_ns_per_byte *
                              static_cast<double>(bytes))));
  if (tr != nullptr) {
    tr->Span(post_begin, sim_.now(), cmd.trace_id, Layer::kPost, "post",
             static_cast<std::int64_t>(bytes));
  }
  if (power_epoch_ != epoch0) {
    // Power cut during the host DMA: the transfer is torn; fail the read.
    co_return Completion{.status = Status::kDeviceReset};
  }
  counters_.reads++;
  counters_.bytes_read += bytes;
  Completion c{.status = Status::kSuccess};
  if (cmd.payload_tag != 0) {
    // Integrity-check readback: report what the medium actually holds at
    // completion time (LBAs never written — or rolled back by a crash —
    // read as tag 0).
    LoadTags(zone, ZoneDataOffsetBytes(cmd.slba), cmd.nlb, c.payload_tags);
  }
  co_return c;
}

sim::Task<Completion> ZnsDevice::DoWrite(Command cmd) {
  if (Status st = ValidateIoRange(cmd, /*is_write=*/true);
      st != Status::kSuccess) {
    co_return Completion{.status = st};
  }
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(cmd.nlb) * lba_bytes_;
  const std::uint32_t zone = ZoneOfLba(cmd.slba);
  InflightGuard io_guard(*this);
  const std::uint64_t epoch0 = power_epoch_;
  telemetry::Tracer* tr = trace();
  bool first_io = false;
  std::uint64_t end_off;
  sim::Time t0 = sim_.now();
  {
    auto g = co_await fcp_.Acquire(kPrioIo);
    sim::Time t1 = sim_.now();
    if (tr != nullptr) {
      tr->Span(t0, t1, cmd.trace_id, Layer::kFcp, "fcp.wait",
               static_cast<std::int64_t>(zone));
    }
    co_await sim_.Delay(
        Noise(FcpIoCost(Opcode::kWrite, bytes, cmd.nlb, cmd.slba)));
    if (tr != nullptr) {
      tr->Span(t1, sim_.now(), cmd.trace_id, Layer::kFcp, "fcp.service",
               static_cast<std::int64_t>(zone),
               static_cast<std::int64_t>(bytes));
    }
    if (power_epoch_ != epoch0) {
      // Power cut before the command reached the zone state machine:
      // nothing of it survives, not even buffered bytes.
      co_return Completion{.status = Status::kDeviceReset};
    }
    Zone& z = zones_[zone];
    if (z.write_fault_pending) {
      // Report the earlier program failure once; subsequent writes see
      // the zone's degraded state instead.
      z.write_fault_pending = false;
      co_return Completion{.status = Status::kWriteFault};
    }
    if (ZoneDataOffsetBytes(cmd.slba) != z.wp_bytes &&
        z.state != ZoneState::kFull) {
      co_return Completion{.status = Status::kZoneInvalidWrite};
    }
    if (Status st = EnsureOpenForIo(zone, first_io);
        st != Status::kSuccess) {
      co_return Completion{.status = st};
    }
    std::uint64_t off = z.wp_bytes;
    z.wp_bytes += bytes;
    end_off = z.wp_bytes;
    if (cmd.payload_tag != 0) StoreTags(zone, off, cmd.nlb, cmd.payload_tag);
    if (z.wp_bytes == profile_.zone_cap_bytes) {
      TransitionToFullLocked(zone, /*via_finish=*/false);
    }
  }
  sim::Time post_begin = sim_.now();
  Time post = profile_.post.write_fixed +
              static_cast<Time>(profile_.post.dma_ns_per_byte *
                                static_cast<double>(bytes));
  if (first_io) post += profile_.open_close.implicit_first_write_extra;
  co_await sim_.Delay(Noise(post));
  sim::Time admit_begin = sim_.now();
  if (tr != nullptr) {
    tr->Span(post_begin, admit_begin, cmd.trace_id, Layer::kPost, "post",
             static_cast<std::int64_t>(bytes), first_io ? 1 : 0);
  }
  if (power_epoch_ != epoch0) {
    // Power cut after the wp advanced but before the ack: the crash
    // rolled the zone back; the host must treat the write as not-done.
    co_return Completion{.status = Status::kDeviceReset};
  }
  if (flash_) {
    co_await AdmitPrograms(zone, end_off, epoch0);
  } else {
    zones_[zone].programmed_bytes = end_off;
  }
  if (tr != nullptr) {
    // Non-zero only when the write-back buffer is full and admission has
    // to wait for the NAND drain (the Obs. 9 throttling mechanism).
    tr->Span(admit_begin, sim_.now(), cmd.trace_id, Layer::kBuffer,
             "buffer.admit", static_cast<std::int64_t>(zone));
  }
  if (power_epoch_ != epoch0) {
    co_return Completion{.status = Status::kDeviceReset};
  }
  counters_.writes++;
  counters_.bytes_written += bytes;
  co_return Completion{.status = Status::kSuccess};
}

sim::Task<Completion> ZnsDevice::DoAppend(Command cmd) {
  if (Status st = ValidateIoRange(cmd, /*is_write=*/false);
      st != Status::kSuccess) {
    co_return Completion{.status = st};
  }
  if (cmd.slba != ZoneStartLba(ZoneOfLba(cmd.slba))) {
    co_return Completion{.status = Status::kInvalidField};  // needs ZSLBA
  }
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(cmd.nlb) * lba_bytes_;
  const std::uint32_t zone = ZoneOfLba(cmd.slba);
  InflightGuard io_guard(*this);
  const std::uint64_t epoch0 = power_epoch_;
  telemetry::Tracer* tr = trace();
  bool first_io = false;
  std::uint64_t assigned_off;
  std::uint64_t end_off;
  sim::Time t0 = sim_.now();
  {
    auto g = co_await fcp_.Acquire(kPrioIo);
    sim::Time t1 = sim_.now();
    if (tr != nullptr) {
      tr->Span(t0, t1, cmd.trace_id, Layer::kFcp, "fcp.wait",
               static_cast<std::int64_t>(zone));
    }
    co_await sim_.Delay(
        Noise(FcpIoCost(Opcode::kAppend, bytes, cmd.nlb, cmd.slba)));
    if (tr != nullptr) {
      tr->Span(t1, sim_.now(), cmd.trace_id, Layer::kFcp, "fcp.service",
               static_cast<std::int64_t>(zone),
               static_cast<std::int64_t>(bytes));
    }
    if (power_epoch_ != epoch0) {
      co_return Completion{.status = Status::kDeviceReset};
    }
    Zone& z = zones_[zone];
    if (z.write_fault_pending) {
      z.write_fault_pending = false;
      co_return Completion{.status = Status::kWriteFault};
    }
    if (z.wp_bytes + bytes > profile_.zone_cap_bytes &&
        z.state != ZoneState::kFull) {
      co_return Completion{.status = Status::kZoneBoundaryError};
    }
    if (Status st = EnsureOpenForIo(zone, first_io);
        st != Status::kSuccess) {
      co_return Completion{.status = st};
    }
    assigned_off = z.wp_bytes;
    z.wp_bytes += bytes;
    end_off = z.wp_bytes;
    if (cmd.payload_tag != 0) {
      StoreTags(zone, assigned_off, cmd.nlb, cmd.payload_tag);
    }
    if (z.wp_bytes == profile_.zone_cap_bytes) {
      TransitionToFullLocked(zone, /*via_finish=*/false);
    }
  }
  sim::Time post_begin = sim_.now();
  Time post = profile_.post.write_fixed +
              static_cast<Time>(profile_.post.dma_ns_per_byte *
                                static_cast<double>(bytes));
  if (bytes < profile_.post.substripe_threshold_bytes) {
    post += profile_.post.append_substripe_extra;
  }
  if (first_io) post += profile_.open_close.implicit_first_append_extra;
  co_await sim_.Delay(Noise(post));
  sim::Time admit_begin = sim_.now();
  if (tr != nullptr) {
    tr->Span(post_begin, admit_begin, cmd.trace_id, Layer::kPost, "post",
             static_cast<std::int64_t>(bytes), first_io ? 1 : 0);
  }
  if (power_epoch_ != epoch0) {
    co_return Completion{.status = Status::kDeviceReset};
  }
  if (flash_) {
    co_await AdmitPrograms(zone, end_off, epoch0);
  } else {
    zones_[zone].programmed_bytes =
        std::max(zones_[zone].programmed_bytes, end_off);
  }
  if (tr != nullptr) {
    tr->Span(admit_begin, sim_.now(), cmd.trace_id, Layer::kBuffer,
             "buffer.admit", static_cast<std::int64_t>(zone));
  }
  if (power_epoch_ != epoch0) {
    co_return Completion{.status = Status::kDeviceReset};
  }
  counters_.appends++;
  counters_.bytes_written += bytes;
  co_return Completion{
      .status = Status::kSuccess,
      .result_lba = ZoneStartLba(zone) + assigned_off / lba_bytes_};
}

sim::Task<Completion> ZnsDevice::DoZoneMgmt(Command cmd) {
  if (cmd.select_all) {
    if (cmd.zone_action != ZoneAction::kReset) {
      co_return Completion{.status = Status::kInvalidField};
    }
    co_return co_await DoResetAll(cmd.trace_id);
  }
  if (cmd.slba >= info_.capacity_lbas) {
    co_return Completion{.status = Status::kLbaOutOfRange};
  }
  const std::uint32_t zone = ZoneOfLba(cmd.slba);
  switch (cmd.zone_action) {
    case ZoneAction::kOpen: co_return co_await DoOpen(zone, cmd.trace_id);
    case ZoneAction::kClose: co_return co_await DoClose(zone, cmd.trace_id);
    case ZoneAction::kFinish: co_return co_await DoFinish(zone, cmd.trace_id);
    case ZoneAction::kReset: co_return co_await DoReset(zone, cmd.trace_id);
    case ZoneAction::kNone: break;
  }
  co_return Completion{.status = Status::kInvalidField};
}

sim::Task<Completion> ZnsDevice::DoOpen(std::uint32_t zone,
                                        std::uint64_t tid) {
  const std::uint64_t epoch0 = power_epoch_;
  sim::Time t0 = sim_.now();
  auto g = co_await fcp_.Acquire(kPrioIo);
  sim::Time t1 = sim_.now();
  co_await sim_.Delay(Noise(profile_.open_close.explicit_open));
  if (power_epoch_ != epoch0) {
    co_return Completion{.status = Status::kDeviceReset};
  }
  if (telemetry::Tracer* tr = trace(); tr != nullptr) {
    tr->Span(t0, t1, tid, Layer::kFcp, "fcp.wait",
             static_cast<std::int64_t>(zone));
    tr->Span(t1, sim_.now(), tid, Layer::kZone, "zone.open",
             static_cast<std::int64_t>(zone));
  }
  Zone& z = zones_[zone];
  switch (z.state) {
    case ZoneState::kExplicitlyOpened:
      co_return Completion{.status = Status::kSuccess};  // no-op
    case ZoneState::kImplicitlyOpened:
      SetZoneState(zone, ZoneState::kExplicitlyOpened);
      counters_.explicit_opens++;
      co_return Completion{.status = Status::kSuccess};
    case ZoneState::kEmpty:
      if (active_count_ >= profile_.max_active_zones) {
        co_return Completion{.status = Status::kTooManyActiveZones};
      }
      [[fallthrough]];
    case ZoneState::kClosed:
      if (!TakeOpenSlotWithEviction()) {
        co_return Completion{.status = Status::kTooManyOpenZones};
      }
      SetZoneState(zone, ZoneState::kExplicitlyOpened);
      z.opened_at_seq = ++open_seq_;
      counters_.explicit_opens++;
      co_return Completion{.status = Status::kSuccess};
    case ZoneState::kFull:
      co_return Completion{.status = Status::kZoneIsFull};
    case ZoneState::kReadOnly:
    case ZoneState::kOffline:
      co_return Completion{.status = Status::kZoneInvalidStateTransition};
  }
  co_return Completion{.status = Status::kInvalidField};
}

sim::Task<Completion> ZnsDevice::DoClose(std::uint32_t zone,
                                         std::uint64_t tid) {
  const std::uint64_t epoch0 = power_epoch_;
  sim::Time t0 = sim_.now();
  auto g = co_await fcp_.Acquire(kPrioIo);
  sim::Time t1 = sim_.now();
  co_await sim_.Delay(Noise(profile_.open_close.close));
  if (power_epoch_ != epoch0) {
    co_return Completion{.status = Status::kDeviceReset};
  }
  if (telemetry::Tracer* tr = trace(); tr != nullptr) {
    tr->Span(t0, t1, tid, Layer::kFcp, "fcp.wait",
             static_cast<std::int64_t>(zone));
    tr->Span(t1, sim_.now(), tid, Layer::kZone, "zone.close",
             static_cast<std::int64_t>(zone));
  }
  Zone& z = zones_[zone];
  switch (z.state) {
    case ZoneState::kClosed:
      co_return Completion{.status = Status::kSuccess};  // no-op
    case ZoneState::kImplicitlyOpened:
    case ZoneState::kExplicitlyOpened:
      // Closing a zone with nothing written returns it to Empty (it holds
      // no data to keep active resources for).
      SetZoneState(zone, z.wp_bytes == 0 ? ZoneState::kEmpty
                                         : ZoneState::kClosed);
      counters_.closes++;
      co_return Completion{.status = Status::kSuccess};
    default:
      co_return Completion{.status = Status::kZoneInvalidStateTransition};
  }
}

sim::Task<Completion> ZnsDevice::DoFinish(std::uint32_t zone,
                                          std::uint64_t tid) {
  const std::uint64_t epoch0 = power_epoch_;
  telemetry::Tracer* tr = trace();
  Zone& z = zones_[zone];
  {
    sim::Time t0 = sim_.now();
    auto g = co_await fcp_.Acquire(kPrioIo);
    sim::Time t1 = sim_.now();
    if (tr != nullptr) {
      tr->Span(t0, t1, tid, Layer::kFcp, "fcp.wait",
               static_cast<std::int64_t>(zone));
    }
    co_await sim_.Delay(Noise(profile_.fcp.write));  // command admission
    if (power_epoch_ != epoch0) {
      co_return Completion{.status = Status::kDeviceReset};
    }
    switch (z.state) {
      case ZoneState::kEmpty:
        co_return Completion{.status = Status::kZoneIsEmpty};
      case ZoneState::kFull:
        co_return Completion{.status = Status::kZoneIsFull};
      case ZoneState::kReadOnly:
      case ZoneState::kOffline:
        co_return Completion{.status = Status::kZoneInvalidStateTransition};
      case ZoneState::kImplicitlyOpened:
      case ZoneState::kExplicitlyOpened:
      case ZoneState::kClosed:
        break;
    }
  }
  // Quiesce in-flight NAND programs, then pad the remaining capacity.
  sim::Time quiesce_begin = sim_.now();
  co_await program_wg_[zone]->Wait();
  if (tr != nullptr) {
    tr->Span(quiesce_begin, sim_.now(), tid, Layer::kZone, "zone.quiesce",
             static_cast<std::int64_t>(zone));
  }
  if (power_epoch_ != epoch0) {
    co_return Completion{.status = Status::kDeviceReset};
  }
  if (z.state == ZoneState::kReadOnly || z.state == ZoneState::kOffline) {
    // An in-flight program failed while finish quiesced: the zone
    // degraded under us — report the buffered-data loss instead of
    // padding a zone that no longer accepts programs.
    z.write_fault_pending = false;
    co_return Completion{.status = Status::kWriteFault};
  }
  std::uint64_t remaining = profile_.zone_cap_bytes - z.wp_bytes;
  if (!profile_.finish.zero_cost) {
    Time pad =
        profile_.finish.base +
        static_cast<Time>(profile_.finish.per_byte_ns *
                          static_cast<double>(remaining));
    double noise = profile_.finish.sigma == 0.0
                       ? 1.0
                       : rng_.LogNormalNoise(profile_.finish.sigma);
    sim::Time pad_begin = sim_.now();
    co_await sim_.Delay(
        static_cast<Time>(static_cast<double>(pad) * noise));
    if (tr != nullptr) {
      tr->Span(pad_begin, sim_.now(), tid, Layer::kZone, "finish.pad",
               static_cast<std::int64_t>(zone),
               static_cast<std::int64_t>(remaining));
    }
    if (power_epoch_ != epoch0) {
      // Power cut mid-pad: nothing was marked programmed yet, so the
      // crash rollback saw the zone as it stood; just fail the command.
      co_return Completion{.status = Status::kDeviceReset};
    }
  }
  if (flash_) {
    // Mark the padded region programmed (the pad time above charged the
    // aggregate NAND cost; see DESIGN.md §6).
    const nand::Geometry& geo = profile_.nand_geometry;
    std::uint64_t total_pages = profile_.zone_cap_pages();
    std::uint32_t dies = geo.total_dies();
    for (std::uint32_t die = 0; die < dies; ++die) {
      std::uint64_t on_die_pages = total_pages / dies +
                                   (die < total_pages % dies ? 1 : 0);
      std::uint32_t bpz = profile_.blocks_per_zone_per_die();
      for (std::uint32_t b = 0; b < bpz && on_die_pages > 0; ++b) {
        std::uint32_t in_block = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            on_die_pages, geo.pages_per_block));
        flash_->DebugProgramRange(die, zone * bpz + b, in_block);
        on_die_pages -= in_block;
      }
    }
    next_program_page_[zone] = total_pages;
    settled_prefix_pages_[zone] = total_pages;
    settled_oo_pages_[zone].clear();
  }
  z.programmed_bytes = profile_.zone_cap_bytes;
  TransitionToFullLocked(zone, /*via_finish=*/true);
  counters_.finishes++;
  co_return Completion{.status = Status::kSuccess};
}

sim::Task<Completion> ZnsDevice::DoReset(std::uint32_t zone,
                                         std::uint64_t tid) {
  const std::uint64_t epoch0 = power_epoch_;
  telemetry::Tracer* tr = trace();
  Zone& z = zones_[zone];
  if (z.state == ZoneState::kReadOnly || z.state == ZoneState::kOffline) {
    co_return Completion{.status = Status::kZoneInvalidStateTransition};
  }
  // Quiesce in-flight NAND programs for this zone first.
  sim::Time quiesce_begin = sim_.now();
  co_await program_wg_[zone]->Wait();
  if (tr != nullptr) {
    tr->Span(quiesce_begin, sim_.now(), tid, Layer::kZone, "zone.quiesce",
             static_cast<std::int64_t>(zone));
  }
  if (power_epoch_ != epoch0) {
    co_return Completion{.status = Status::kDeviceReset};
  }
  if (z.state == ZoneState::kReadOnly || z.state == ZoneState::kOffline) {
    // The zone degraded while the reset quiesced (an in-flight program
    // failed): degraded zones are not resettable.
    z.write_fault_pending = false;
    co_return Completion{.status = Status::kWriteFault};
  }
  // The unmap work runs on the FCP at background priority, in slices so
  // small that host I/O never noticeably waits behind one (Obs. 12),
  // while concurrent I/O — which the FCP serves first — stretches the
  // reset's elapsed time by ~1/(1-rho) (Obs. 13). With no I/O in flight
  // at all, the remaining work is charged in one step (isolated resets,
  // e.g. the Fig. 5 sweep, stay cheap to simulate).
  Time work = ResetCost(z, rng_);
  if (profile_.reset.static_cost) {
    // Emulator-style static model (NVMeVirt): a flat charge with no
    // contention — precisely what makes such models miss Obs. 13.
    sim::Time b = sim_.now();
    co_await sim_.Delay(work);
    if (tr != nullptr) {
      tr->Span(b, sim_.now(), tid, Layer::kZone, "reset.bulk",
               static_cast<std::int64_t>(zone));
    }
  } else {
    const Time slice = std::max<Time>(profile_.reset.slice, 1);
    while (work > 0) {
      if (DeviceIsIoQuiet()) {
        sim::Time b = sim_.now();
        co_await sim_.Delay(work);
        if (tr != nullptr) {
          tr->Span(b, sim_.now(), tid, Layer::kZone, "reset.bulk",
                   static_cast<std::int64_t>(zone));
        }
        break;
      }
      Time this_slice = std::min(work, slice);
      {
        sim::Time b = sim_.now();
        auto g = co_await fcp_.Acquire(kPrioBackground);
        co_await sim_.Delay(this_slice);
        if (tr != nullptr) {
          // Includes the background-priority FCP wait: the stretch that
          // concurrent I/O imposes on the reset (Obs. 13).
          tr->Span(b, sim_.now(), tid, Layer::kZone, "reset.slice",
                   static_cast<std::int64_t>(zone),
                   static_cast<std::int64_t>(this_slice));
        }
      }
      work -= this_slice;
    }
  }
  if (power_epoch_ != epoch0) {
    // Power cut mid-unmap: the metadata wipe never committed — the crash
    // rollback left the zone's pre-reset state in place.
    co_return Completion{.status = Status::kDeviceReset};
  }
  // Metadata wiped; physical erases happen off the critical path.
  if (flash_) {
    std::uint32_t bpz = profile_.blocks_per_zone_per_die();
    for (std::uint32_t die = 0; die < profile_.nand_geometry.total_dies();
         ++die) {
      for (std::uint32_t b = 0; b < bpz; ++b) {
        flash_->DeferredEraseBlock(die, zone * bpz + b);
      }
    }
  }
  z.wp_bytes = 0;
  z.programmed_bytes = 0;
  z.finished = false;
  z.data_bytes_at_finish = 0;
  next_program_page_[zone] = 0;
  settled_prefix_pages_[zone] = 0;
  settled_oo_pages_[zone].clear();
  zone_tags_[zone].clear();
  if (ZoneWornOut(zone)) {
    // Endurance exhausted: the zone leaves service instead of returning
    // to Empty (flash P/E limits, §II-A).
    SetZoneState(zone, ZoneState::kOffline);
    counters_.zones_worn_offline++;
  } else {
    SetZoneState(zone, ZoneState::kEmpty);
  }
  counters_.resets++;
  if (telemetry::TimelineWriter* tl = timeline(); tl != nullptr) {
    // The whole reset service window, quiesce included: the interval
    // during which this reset could stretch concurrent host I/O.
    tl->Window(quiesce_begin, sim_.now() - quiesce_begin,
               telem_->timeline_label(), lane_, "zone.reset",
               static_cast<std::int64_t>(zone));
  }
  co_return Completion{.status = Status::kSuccess};
}

bool ZnsDevice::ZoneWornOut(std::uint32_t zone) const {
  if (profile_.pe_cycle_limit == 0 || !flash_) return false;
  std::uint32_t bpz = profile_.blocks_per_zone_per_die();
  for (std::uint32_t die = 0; die < profile_.nand_geometry.total_dies();
       ++die) {
    for (std::uint32_t b = 0; b < bpz; ++b) {
      if (flash_->BlockPeCycles(die, zone * bpz + b) >=
          profile_.pe_cycle_limit) {
        return true;
      }
    }
  }
  return false;
}

sim::Task<Completion> ZnsDevice::DoResetAll(std::uint64_t tid) {
  // Reset All Zones (select-all): every resettable zone, sequentially —
  // the device walks its zone table; per-zone costs apply as usual.
  for (std::uint32_t z = 0; z < profile_.num_zones; ++z) {
    ZoneState st = zones_[z].state;
    if (st == ZoneState::kReadOnly || st == ZoneState::kOffline) continue;
    if (st == ZoneState::kEmpty) continue;  // nothing to do
    Completion c = co_await DoReset(z, tid);
    if (!c.ok()) co_return c;
  }
  co_return Completion{.status = Status::kSuccess};
}

sim::Task<Completion> ZnsDevice::DoReportZones(Command cmd) {
  if (cmd.slba >= info_.capacity_lbas) {
    co_return Completion{.status = Status::kLbaOutOfRange};
  }
  std::uint32_t first = ZoneOfLba(cmd.slba);
  std::uint32_t count = profile_.num_zones - first;
  if (cmd.report_max != 0) {
    count = std::min(count, cmd.report_max);
  }
  const std::uint64_t epoch0 = power_epoch_;
  {
    sim::Time t0 = sim_.now();
    auto g = co_await fcp_.Acquire(kPrioIo);
    sim::Time t1 = sim_.now();
    co_await sim_.Delay(
        Noise(profile_.report_fixed + profile_.report_per_zone * count));
    if (telemetry::Tracer* tr = trace(); tr != nullptr) {
      tr->Span(t0, t1, cmd.trace_id, Layer::kFcp, "fcp.wait");
      tr->Span(t1, sim_.now(), cmd.trace_id, Layer::kFcp, "fcp.service",
               static_cast<std::int64_t>(count));
    }
  }
  if (power_epoch_ != epoch0) {
    co_return Completion{.status = Status::kDeviceReset};
  }
  Completion c;
  c.report.reserve(count);
  for (std::uint32_t z = first; z < first + count; ++z) {
    c.report.push_back(nvme::ZoneDescriptor{
        .zslba = ZoneStartLba(z),
        .write_pointer = ZoneWritePointerLba(z),
        .zone_cap_lbas = zone_cap_lbas_,
        .state_raw = static_cast<std::uint8_t>(zones_[z].state)});
  }
  counters_.zone_reports++;
  co_return c;
}

sim::Task<Completion> ZnsDevice::DoFlush(std::uint64_t tid) {
  const std::uint64_t epoch0 = power_epoch_;
  telemetry::Tracer* tr = trace();
  {
    sim::Time t0 = sim_.now();
    auto g = co_await fcp_.Acquire(kPrioIo);
    sim::Time t1 = sim_.now();
    co_await sim_.Delay(Noise(profile_.fcp.write));
    if (tr != nullptr) {
      tr->Span(t0, t1, tid, Layer::kFcp, "fcp.wait");
      tr->Span(t1, sim_.now(), tid, Layer::kFcp, "fcp.service");
    }
  }
  // Quiesce the NAND drain. Partial (sub-page) buffer contents stay in
  // the capacitor-backed buffer — they are already durable.
  sim::Time drain_begin = sim_.now();
  co_await all_programs_.Wait();
  if (tr != nullptr) {
    tr->Span(drain_begin, sim_.now(), tid, Layer::kBuffer, "buffer.drain");
  }
  if (power_epoch_ != epoch0) {
    // Power cut before the drain finished: the barrier cannot certify
    // durability for anything — the host must not trust this flush.
    co_return Completion{.status = Status::kDeviceReset};
  }
  counters_.flushes++;
  if (flush_fault_pending_) {
    // Some buffered data never reached NAND since the last flush: the
    // durability barrier cannot be honored in full.
    flush_fault_pending_ = false;
    co_return Completion{.status = Status::kWriteFault};
  }
  co_return Completion{.status = Status::kSuccess};
}

// ------------------------------------------------- crash/recovery (§11)

void ZnsDevice::StoreTags(std::uint32_t zone, std::uint64_t off_bytes,
                          std::uint32_t nlb, std::uint64_t first_tag) {
  ZSTOR_CHECK(off_bytes % lba_bytes_ == 0);
  std::vector<std::uint64_t>& tags = zone_tags_[zone];
  if (tags.empty()) tags.assign(zone_cap_lbas_, 0);
  const std::uint64_t first = off_bytes / lba_bytes_;
  ZSTOR_CHECK(first + nlb <= zone_cap_lbas_);
  for (std::uint32_t i = 0; i < nlb; ++i) tags[first + i] = first_tag + i;
}

void ZnsDevice::LoadTags(std::uint32_t zone, std::uint64_t off_bytes,
                         std::uint32_t nlb,
                         std::vector<std::uint64_t>& out) const {
  out.assign(nlb, 0);
  const std::vector<std::uint64_t>& tags = zone_tags_[zone];
  if (tags.empty()) return;
  const std::uint64_t first = off_bytes / lba_bytes_;
  for (std::uint32_t i = 0; i < nlb; ++i) {
    if (first + i < tags.size()) out[i] = tags[first + i];
  }
}

sim::Task<> ZnsDevice::CrashDriver(std::vector<sim::Time> at) {
  for (sim::Time t : at) {
    if (t > sim_.now()) co_await sim_.Delay(t - sim_.now());
    if (crashed_) continue;  // landed inside the previous outage: coalesce
    co_await CrashNow();
  }
}

std::uint64_t ZnsDevice::CrashRollbackZone(std::uint32_t zone) {
  Zone& z = zones_[zone];
  ZSTOR_CHECK(z.inflight_programs == 0);  // caller quiesced the drain
  if (z.state == ZoneState::kOffline) return 0;  // nothing left to lose
  const std::uint64_t pb = profile_.nand_geometry.page_bytes;
  if (!flash_) {
    // Profiles without a NAND backend (FEMU-like) model instant
    // durability: acked bytes survive, only the outage itself costs time.
    return 0;
  }
  // Everything settled out of order beyond the contiguous prefix is torn:
  // the recovery scan cannot distinguish it from the in-flight programs
  // power interrupted, so the controller discards the lot.
  const std::uint64_t prefix = settled_prefix_pages_[zone];
  counters_.torn_pages += settled_oo_pages_[zone].size();
  settled_oo_pages_[zone].clear();
  const std::uint64_t durable = prefix * pb;
  const std::uint64_t lost = z.wp_bytes > durable ? z.wp_bytes - durable : 0;
  // Discard the NAND tail of every zone block down to the durable prefix
  // (prefix pages stripe round-robin across the dies).
  const nand::Geometry& geo = profile_.nand_geometry;
  const std::uint32_t dies = geo.total_dies();
  const std::uint32_t bpz = profile_.blocks_per_zone_per_die();
  for (std::uint32_t die = 0; die < dies; ++die) {
    std::uint64_t on_die = prefix / dies + (die < prefix % dies ? 1 : 0);
    for (std::uint32_t b = 0; b < bpz; ++b) {
      const std::uint64_t block_lo =
          static_cast<std::uint64_t>(b) * geo.pages_per_block;
      const std::uint32_t keep = static_cast<std::uint32_t>(
          on_die > block_lo
              ? std::min<std::uint64_t>(on_die - block_lo,
                                        geo.pages_per_block)
              : 0);
      flash_->CrashDiscardTail(die, zone * bpz + b, keep);
    }
  }
  z.wp_bytes = durable;
  z.programmed_bytes = durable;
  next_program_page_[zone] = prefix;
  z.write_fault_pending = false;
  if (!zone_tags_[zone].empty()) {
    std::vector<std::uint64_t>& tags = zone_tags_[zone];
    for (std::uint64_t i = durable / lba_bytes_; i < tags.size(); ++i) {
      tags[i] = 0;
    }
  }
  // Recompute the zone state purely from the recovered write pointer —
  // the open/active sets were volatile controller state. Degraded zones
  // keep their sticky state.
  if (z.state != ZoneState::kReadOnly) {
    if (z.wp_bytes == 0) {
      z.finished = false;
      z.data_bytes_at_finish = 0;
      SetZoneState(zone, ZoneState::kEmpty);
    } else if (z.wp_bytes == profile_.zone_cap_bytes) {
      SetZoneState(zone, ZoneState::kFull);
    } else {
      z.finished = false;
      z.data_bytes_at_finish = 0;
      SetZoneState(zone, ZoneState::kClosed);
    }
  }
  return lost;
}

sim::Task<std::uint64_t> ZnsDevice::ScanZoneWritePointer(
    std::uint32_t zone) {
  // After the tail discard, programmed pages form a contiguous prefix in
  // zone-page order (the round-robin stripe preserves monotonicity), so a
  // binary search of ProbePage senses finds the write pointer in
  // O(log cap) die reads — the dominant per-zone recovery cost.
  std::uint64_t lo = 0;
  std::uint64_t hi = profile_.zone_cap_pages();
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const bool programmed =
        co_await flash_->ProbePage(AddrOfZonePage(zone, mid));
    if (programmed) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  co_return lo;
}

sim::Task<> ZnsDevice::CrashNow() {
  ZSTOR_CHECK_MSG(!crashed_, "power loss during recovery");
  const sim::Time crash_time = sim_.now();
  crashed_ = true;
  ++power_epoch_;
  counters_.crashes++;
  flush_fault_pending_ = false;  // pre-crash flush state is moot now
  telemetry::Tracer* tr = trace();
  if (tr != nullptr) {
    tr->Instant(crash_time, /*cmd=*/0, Layer::kZone, "crash.power_loss",
                static_cast<std::int64_t>(power_epoch_));
  }
  // Let the in-flight program population drain in simulated time: the
  // stale power epoch stops each one from touching zone state, and the
  // drain interval is folded into the outage window (a real controller
  // loses those programs instantly; draining keeps the buffer-slot and
  // wait-group accounting exact).
  co_await all_programs_.Wait();
  std::uint64_t lost = 0;
  for (std::uint32_t z = 0; z < profile_.num_zones; ++z) {
    lost += CrashRollbackZone(z);
  }
  counters_.crash_lost_bytes += lost;
  // Recovery: controller boot, then a per-zone metadata walk. Zones whose
  // durable metadata pins the write pointer (Empty, Full, Offline — and
  // degraded zones, whose state is checkpointed when they degrade) cost
  // only the walk; every other zone pays a write-pointer rediscovery
  // scan on the NAND array.
  co_await sim_.Delay(profile_.recovery_boot_cost);
  std::uint64_t scanned = 0;
  for (std::uint32_t z = 0; z < profile_.num_zones; ++z) {
    if (profile_.recovery_per_zone > 0) {
      co_await sim_.Delay(profile_.recovery_per_zone);
    }
    const Zone& zz = zones_[z];
    if (flash_ && zz.state == ZoneState::kClosed && zz.wp_bytes > 0) {
      const std::uint64_t found = co_await ScanZoneWritePointer(z);
      ZSTOR_CHECK_MSG(found == settled_prefix_pages_[z],
                      "recovery scan disagrees with the durable prefix");
      ++scanned;
    }
  }
  counters_.recovery_zone_scans += scanned;
  counters_.recoveries++;
  last_recovery_ns_ = sim_.now() - crash_time;
  counters_.recovery_ns_total += static_cast<std::uint64_t>(last_recovery_ns_);
  crashed_ = false;
  if (tr != nullptr) {
    tr->Instant(sim_.now(), /*cmd=*/0, Layer::kZone, "recovery.done",
                static_cast<std::int64_t>(scanned),
                static_cast<std::int64_t>(lost));
  }
  if (telemetry::TimelineWriter* tl = timeline(); tl != nullptr) {
    // Zero-length marker at the cut plus the full outage window — zmon
    // attributes the throughput dip to the latter.
    tl->Window(crash_time, 0, telem_->timeline_label(), lane_,
               "crash.power_loss",
               static_cast<std::int64_t>(power_epoch_));
    tl->Window(crash_time, sim_.now() - crash_time,
               telem_->timeline_label(), lane_, "recovery.scan",
               static_cast<std::int64_t>(scanned),
               static_cast<std::int64_t>(lost));
  }
}

// --------------------------------------------------------------- debug

void ZnsDevice::DebugFillZone(std::uint32_t zone, std::uint64_t bytes) {
  ZSTOR_CHECK(zone < zones_.size());
  Zone& z = zones_[zone];
  ZSTOR_CHECK_MSG(z.state == ZoneState::kEmpty,
                  "DebugFillZone requires an Empty zone");
  ZSTOR_CHECK(bytes <= profile_.zone_cap_bytes);
  ZSTOR_CHECK(bytes % lba_bytes_ == 0);
  if (bytes == 0) return;
  z.wp_bytes = bytes;
  z.programmed_bytes = bytes;
  const std::uint64_t pb = profile_.nand_geometry.page_bytes;
  std::uint64_t pages = (bytes + pb - 1) / pb;
  next_program_page_[zone] = bytes / pb;
  settled_prefix_pages_[zone] = bytes / pb;
  if (flash_) {
    const nand::Geometry& geo = profile_.nand_geometry;
    std::uint32_t dies = geo.total_dies();
    std::uint32_t bpz = profile_.blocks_per_zone_per_die();
    for (std::uint32_t die = 0; die < dies; ++die) {
      std::uint64_t on_die_pages =
          pages / dies + (die < pages % dies ? 1 : 0);
      for (std::uint32_t b = 0; b < bpz && on_die_pages > 0; ++b) {
        std::uint32_t in_block = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            on_die_pages, geo.pages_per_block));
        flash_->DebugProgramRange(die, zone * bpz + b, in_block);
        on_die_pages -= in_block;
      }
    }
  }
  if (bytes == profile_.zone_cap_bytes) {
    SetZoneState(zone, ZoneState::kFull);
  } else {
    ZSTOR_CHECK_MSG(active_count_ < profile_.max_active_zones,
                    "DebugFillZone: no active slot for a partial zone");
    SetZoneState(zone, ZoneState::kClosed);
  }
}

void ZnsDevice::DebugSetZoneState(std::uint32_t zone, ZoneState state) {
  ZSTOR_CHECK(zone < zones_.size());
  ZSTOR_CHECK_MSG(state == ZoneState::kReadOnly ||
                      state == ZoneState::kOffline,
                  "DebugSetZoneState only forces degraded states");
  SetZoneState(zone, state);
}

}  // namespace zstor::zns
