// Device profiles: every constant of the ZNS performance model in one
// place, with three presets.
//
//  * Zn540Profile()     — calibrated to the paper's measurements of the
//                         Western Digital Ultrastar DC ZN540 (see Table II
//                         and §5 of DESIGN.md for the calibration targets).
//  * FemuLikeProfile()  — reproduces FEMU's (lack of a) latency model for
//                         the §IV emulator-fidelity study: requests are as
//                         fast as the host permits, no NAND backend, no
//                         cost for zone transitions.
//  * NvmeVirtLikeProfile() — reproduces NVMeVirt's model: a real NAND
//                         timing model, but append priced identically to
//                         write, reset at a static NAND-erase cost, and no
//                         cost for open/close/finish.
//  * TinyProfile()      — scaled-down geometry for fast unit tests.
//
// The device-internal structure the constants parameterize:
//
//   host ──> FCP (serialized firmware command processor; priority queue,
//             I/O above background reset work) ──> post stage (DMA + fw
//             completion path, pipelined) ──> write-back buffer ──> NAND
//             dies (program drain; reads contend here)
//
// The FCP per-op costs set the device's saturation IOPS; the post stage
// sets the QD=1 latency floor; the NAND array sets the bandwidth ceiling
// and the read tails under load.
#pragma once

#include <cstdint>

#include "nand/geometry.h"
#include "sim/time.h"

namespace zstor::zns {

/// Serialized firmware command processor costs (device IOPS ceilings:
/// saturation IOPS for an op class = 1 / its FCP occupancy).
struct FcpCosts {
  sim::Time read = sim::Microseconds(2.36);    // -> ~424 KIOPS (Obs. 7)
  sim::Time write = sim::Microseconds(5.37);   // -> ~186 KIOPS (Obs. 7)
  sim::Time append = sim::Microseconds(7.58);  // -> ~132 KIOPS (Obs. 6/7)
  /// Extra FCP time per additional 4 KiB mapping unit beyond the first
  /// (large requests need more mapping work but amortize well).
  sim::Time per_extra_unit = sim::Microseconds(0.35);
  /// The firmware maps in 4 KiB units. A write/append smaller than (or not
  /// aligned to) one unit pays a read-modify-write of the unit's mapping —
  /// the mechanism behind Observation #1: a 512 B request on the 512 B LBA
  /// format is up to ~2x slower than a 4 KiB request on the 4 KiB format.
  sim::Time sub_unit_rmw = sim::Microseconds(9.5);
  /// Per-LBA tracking cost when the LBA is smaller than the mapping unit
  /// (a 4 KiB request on the 512 B format carries 8 LBAs).
  sim::Time small_lba_per_lba = sim::Microseconds(0.5);
  /// The firmware mapping unit.
  std::uint32_t map_unit_bytes = 4096;
};

/// Pipelined (non-serialized) per-command costs after the FCP.
struct PostCosts {
  sim::Time write_fixed = sim::Microseconds(3.7);
  sim::Time read_fixed = sim::Microseconds(0.5);
  /// Sub-stripe appends pay extra firmware work in the completion path;
  /// this makes 4 KiB appends slower than 8 KiB ones (Observation #3:
  /// 66 -> 69 KIOPS when doubling the request size).
  sim::Time append_substripe_extra = sim::Microseconds(2.4);
  std::uint64_t substripe_threshold_bytes = 8192;
  /// Host<->device DMA, ns per byte (PCIe 3.0 x4-ish: 3.2 GB/s).
  double dma_ns_per_byte = 0.3125;
};

/// Zone open/close costs (Observation #9).
struct ZoneOpenCosts {
  sim::Time explicit_open = sim::Microseconds(8.55);   // +1.01 host = 9.56
  sim::Time close = sim::Microseconds(10.0);           // +1.01 host = 11.01
  sim::Time implicit_first_write_extra = sim::Microseconds(2.02);
  sim::Time implicit_first_append_extra = sim::Microseconds(2.83);
};

/// Zone reset cost model (Observation #10, Fig. 5a). For a zone with
/// written fraction `occ` in (0, 1]:
///     cost = base + coef * occ^exponent          (unfinished)
///     cost += finished_extra_coef * (1 - occ)    (if the zone was
///                                                 finished first: finish
///                                                 extends the mapped
///                                                 region reset must unmap)
/// Calibrated: 11.60 ms at 50%, 16.19 ms at 100%, +3.08 ms at 50% for
/// finished zones. Empty zones pay only `empty_cost`.
/// If `static_cost` is set (NVMeVirt-like), every reset costs
/// `static_value` regardless of occupancy.
struct ResetModel {
  sim::Time empty_cost = sim::Microseconds(25);
  sim::Time base = sim::Milliseconds(2.5);
  sim::Time coef = sim::Milliseconds(13.69);
  double exponent = 0.589;
  sim::Time finished_extra_coef = sim::Milliseconds(6.16);
  bool static_cost = false;
  sim::Time static_value = sim::Milliseconds(3.5);  // one NAND block erase
  /// Reset metadata work executes on the FCP in background-priority slices
  /// this long. The slice is tiny compared to per-command I/O costs, so
  /// host I/O is essentially never delayed by a reset (Obs. 12) while
  /// concurrent I/O stretches the reset's elapsed time by ~1/(1-rho),
  /// rho being the FCP's I/O utilization (Obs. 13). When the device is
  /// fully idle the remaining work is charged in one step instead.
  sim::Time slice = sim::Microseconds(1);
  double sigma = 0.06;  // lognormal service noise
};

/// Zone finish cost model (Observation #10, Fig. 5b): the device pads the
/// zone's remaining capacity, so cost = base + per_byte * remaining_bytes.
/// Calibrated: 907.51 ms on an almost-empty zone, 3.07 ms on an almost-full
/// one. The padding rate (0.80 ns/B ~ 1.19 GiB/s) is the device's program
/// bandwidth — finishing IS writing the rest of the zone.
struct FinishModel {
  sim::Time base = sim::Milliseconds(3.07);
  double per_byte_ns = 0.801;
  double sigma = 0.03;
  bool zero_cost = false;  // emulators that do not model finish at all
};

struct ZnsProfile {
  // ---- namespace geometry -------------------------------------------
  std::uint64_t zone_size_bytes = 2048ull << 20;  // LBA-address span
  std::uint64_t zone_cap_bytes = 1077ull << 20;   // writable capacity
  std::uint32_t num_zones = 904;
  std::uint32_t max_open_zones = 14;
  std::uint32_t max_active_zones = 14;

  // ---- device internals ----------------------------------------------
  nand::Geometry nand_geometry;
  nand::Timing nand_timing;
  bool use_nand_backend = true;  // FEMU-like profiles bypass NAND entirely
  std::uint64_t write_buffer_bytes = 96ull << 20;
  FcpCosts fcp;
  PostCosts post;
  ZoneOpenCosts open_close;
  ResetModel reset;
  FinishModel finish;
  double io_sigma = 0.045;  // lognormal noise on I/O service segments
  std::uint64_t seed = 0x5EED'2023'C1A5'7E12ull;

  /// NAND endurance: when any of a zone's blocks reaches this many P/E
  /// cycles, the zone transitions to Offline at its next reset (flash has
  /// limited program/erase endurance — §II-A of the paper). 0 = unlimited.
  std::uint32_t pe_cycle_limit = 0;

  /// Spare-block budget for program-failure handling: each block retired
  /// after a failed program consumes one spare, and the owning zone
  /// degrades to ReadOnly. Once spares are exhausted, further failing
  /// zones go Offline instead. Only consulted when a fault plan actually
  /// retires blocks — with faults disabled the value is inert.
  std::uint32_t spare_blocks = 4;

  /// Zone-report cost model: fixed command admission plus a per-returned-
  /// descriptor metadata walk.
  sim::Time report_fixed = sim::Microseconds(6.0);
  sim::Time report_per_zone = sim::Nanoseconds(45);

  // ---- power-loss recovery (DESIGN.md §11) ----------------------------
  /// Fixed controller-boot cost after a power loss (firmware reload,
  /// metadata superblock read) before zone scanning starts.
  sim::Time recovery_boot_cost = sim::Milliseconds(2.0);
  /// Per-zone metadata inspection during recovery — charged for every
  /// zone; zones whose durable metadata already pins the write pointer
  /// (Empty, Full, Offline) cost only this, active zones additionally
  /// pay a binary-search ProbePage scan on the NAND array.
  sim::Time recovery_per_zone = sim::Microseconds(2.0);

  // ---- derived --------------------------------------------------------
  std::uint64_t stripe_unit_bytes() const {
    return nand_geometry.page_bytes;
  }
  std::uint64_t zone_cap_pages() const {
    return zone_cap_bytes / nand_geometry.page_bytes;
  }
  std::uint32_t blocks_per_zone_per_die() const {
    std::uint64_t per_die = (zone_cap_pages() + nand_geometry.total_dies() - 1) /
                            nand_geometry.total_dies();
    return static_cast<std::uint32_t>(
        (per_die + nand_geometry.pages_per_block - 1) /
        nand_geometry.pages_per_block);
  }
};

/// The calibrated WD Ultrastar DC ZN540 profile (Table II of the paper).
ZnsProfile Zn540Profile();

/// FEMU-like: no latency model at all (§IV).
ZnsProfile FemuLikeProfile();

/// NVMeVirt-like: NAND-timing-based model, but append == write, static
/// reset cost, and free open/close/finish (§IV).
ZnsProfile NvmeVirtLikeProfile();

/// Small geometry (16 zones of 4 MiB) for fast unit tests.
ZnsProfile TinyProfile();

}  // namespace zstor::zns
