// ZnsDevice: the simulated ZNS SSD — the core model of this repository.
//
// Implements the NVMe ZNS command set (read, write, zone append, zone
// management send: open/close/finish/reset) over the internal structure
// described in profile.h:
//
//   * a serialized firmware command processor (FCP) with strict priority —
//     I/O commands above background reset work — whose per-op costs set
//     the device's saturation IOPS per op class;
//   * a pipelined post stage (DMA + firmware completion path) that sets
//     the QD=1 latency floor;
//   * a write-back buffer draining to the NAND array, whose program
//     bandwidth caps sustained write/append throughput and whose die
//     queues produce read tail latency under write load;
//   * the full Fig.-1 zone state machine with max-open / max-active
//     limits, implicit opens (with the measured first-I/O penalty), and
//     LRU eviction of implicitly-opened zones at the open limit;
//   * occupancy-dependent reset and finish cost models executed in
//     background-priority slices on the FCP.
//
// Thread model: everything runs on one Simulator; concurrency is
// coroutine-level (many Execute() calls in flight).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "nand/flash_array.h"
#include "nvme/controller.h"
#include "nvme/log_page.h"
#include "nvme/types.h"
#include "sim/resource.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "telemetry/telemetry.h"
#include "zns/profile.h"
#include "zns/zone.h"

namespace zstor::zns {

struct ZnsCounters {
  std::uint64_t reads = 0;
  std::uint64_t flushes = 0;
  std::uint64_t zone_reports = 0;
  std::uint64_t zones_worn_offline = 0;
  std::uint64_t writes = 0;
  std::uint64_t appends = 0;
  std::uint64_t explicit_opens = 0;
  std::uint64_t implicit_opens = 0;
  std::uint64_t implicit_open_evictions = 0;
  std::uint64_t closes = 0;
  std::uint64_t finishes = 0;
  std::uint64_t resets = 0;
  std::uint64_t bytes_written = 0;   // via write + append
  std::uint64_t bytes_read = 0;
  /// Commands rejected for host-side reasons (bad range, wrong state,
  /// limits) — caller bugs, not device faults.
  std::uint64_t host_rejects = 0;
  /// Commands completed with a media/hardware fault status
  /// (kMediaReadError / kWriteFault / kInternalError).
  std::uint64_t media_errors = 0;
  std::uint64_t read_faults = 0;     // uncorrectable NAND reads surfaced
  std::uint64_t write_faults = 0;    // NAND program failures observed
  std::uint64_t retired_blocks = 0;  // blocks taken out of service
  std::uint64_t zones_degraded_readonly = 0;
  std::uint64_t zones_failed_offline = 0;  // via spare exhaustion
  std::uint64_t spare_blocks_used = 0;
  std::uint64_t zone_transitions = 0;  // zone state-machine edges taken
  // Power-loss crash/recovery (DESIGN.md §11; zero without injected
  // crashes).
  std::uint64_t crashes = 0;           // power losses endured
  std::uint64_t recoveries = 0;        // recoveries completed
  std::uint64_t torn_pages = 0;        // out-of-order settled pages dropped
  std::uint64_t crash_lost_bytes = 0;  // acked-but-volatile bytes dropped
  std::uint64_t recovery_zone_scans = 0;  // zones probed for their wp
  std::uint64_t recovery_ns_total = 0;    // summed power-loss->ready spans
  std::uint64_t reset_drops = 0;  // commands failed with kDeviceReset

  /// Exports every counter into the registry under the "zns." prefix
  /// (the shared Describe protocol; see telemetry/metrics.h).
  void Describe(telemetry::MetricsRegistry& m) const;
};

class ZnsDevice : public nvme::Controller {
 public:
  /// `lba_bytes` selects the namespace LBA format (512 or 4096 in the
  /// paper's experiments; any power of two <= the NAND page works).
  ZnsDevice(sim::Simulator& s, ZnsProfile profile,
            std::uint32_t lba_bytes = 4096);

  const nvme::NamespaceInfo& info() const override { return info_; }
  sim::Task<nvme::Completion> Execute(const nvme::Command& cmd) override;

  /// Enables device-side tracing/metrics (non-owning; null disables).
  /// Also attaches the NAND array so die-level service is visible.
  /// `lane` tags this device's timeline records in striped runs.
  void AttachTelemetry(telemetry::Telemetry* t, std::uint32_t lane = 0);

  /// Injects media faults into the NAND backend (non-owning; null
  /// disables — no-op for profiles without a NAND backend) and arms any
  /// scheduled power losses (`crash=US` in the fault grammar); those fire
  /// even on an otherwise idle device.
  void AttachFaultPlan(fault::FaultPlan* p);

  /// Injects a power loss right now, then runs the modeled recovery
  /// (controller boot + per-zone write-pointer rediscovery). Loss
  /// semantics (DESIGN.md §11): every write-buffer byte not yet settled
  /// on NAND is gone, out-of-order settled pages beyond the contiguous
  /// durable prefix are torn (discarded), and every in-flight command
  /// completes with kDeviceReset. Completes when the device accepts
  /// commands again; scheduled crashes funnel through here.
  sim::Task<> CrashNow();

  // ---- introspection --------------------------------------------------
  const ZnsProfile& profile() const { return profile_; }
  const ZnsCounters& counters() const { return counters_; }
  ZoneState GetZoneState(std::uint32_t zone) const;
  /// Write pointer as an absolute LBA (== ZSLBA when the zone is empty).
  nvme::Lba ZoneWritePointerLba(std::uint32_t zone) const;
  /// Bytes written to the zone's data area so far.
  std::uint64_t ZoneWrittenBytes(std::uint32_t zone) const;
  std::uint32_t open_zone_count() const { return open_count_; }
  std::uint32_t active_zone_count() const { return active_count_; }
  /// Bumped by every power loss; commands in flight across a bump complete
  /// with kDeviceReset (their pre-crash progress was rolled back).
  std::uint64_t power_epoch() const { return power_epoch_; }
  /// Elapsed virtual time of the most recent power-loss -> ready span.
  sim::Time last_recovery_ns() const { return last_recovery_ns_; }
  nvme::Lba ZoneStartLba(std::uint32_t zone) const;
  std::uint32_t ZoneOfLba(nvme::Lba lba) const;
  /// Null when the profile bypasses the NAND backend (FEMU-like).
  nand::FlashArray* flash() { return flash_.get(); }

  // ---- log pages (nvme/log_page.h) ------------------------------------
  // Free introspection: no virtual time, no counter side effects — unlike
  // the ReportZones *command*, which models the real report cost.
  /// SMART-like health/activity page (host + media + zone-mgmt activity).
  nvme::SmartLog GetSmartLog() const;
  /// Per-zone state + occupancy, mirroring the zone state machine.
  nvme::ZoneReportLog GetZoneReportLog() const;
  /// Per-die service counts and utilization; empty when the profile
  /// bypasses the NAND backend.
  nvme::DieUtilLog GetDieUtilLog() const;
  /// Free write-back buffer capacity in NAND pages (0 = writes are being
  /// throttled at the NAND drain rate).
  std::uint64_t buffer_free_pages() const { return buffer_slots_.available(); }

  // ---- test/bench acceleration ---------------------------------------
  /// Sets a zone's occupancy directly, with NAND state marked consistently
  /// but no simulated I/O (see DESIGN.md §6 "Fill acceleration"). The zone
  /// must be Empty. A partially-filled zone becomes Closed (and consumes
  /// an active slot — callers must respect max_active); a full fill makes
  /// it Full.
  void DebugFillZone(std::uint32_t zone, std::uint64_t bytes);

  /// Forces a zone into a degraded state (kReadOnly or kOffline only) so
  /// tests can exercise the otherwise fault-gated state-machine arms
  /// without configuring a fault plan. Open/active accounting follows the
  /// normal transition rules.
  void DebugSetZoneState(std::uint32_t zone, ZoneState state);

 private:
  static constexpr std::uint32_t kPrioIo = 0;
  static constexpr std::uint32_t kPrioBackground = 1;

  // Command handlers. `tid` is the command's telemetry trace id (0 when
  // tracing is off or the caller didn't thread one through).
  sim::Task<nvme::Completion> DoRead(nvme::Command cmd);
  sim::Task<nvme::Completion> DoWrite(nvme::Command cmd);
  sim::Task<nvme::Completion> DoAppend(nvme::Command cmd);
  sim::Task<nvme::Completion> DoZoneMgmt(nvme::Command cmd);
  sim::Task<nvme::Completion> DoOpen(std::uint32_t zone, std::uint64_t tid);
  sim::Task<nvme::Completion> DoClose(std::uint32_t zone, std::uint64_t tid);
  sim::Task<nvme::Completion> DoFinish(std::uint32_t zone, std::uint64_t tid);
  sim::Task<nvme::Completion> DoReset(std::uint32_t zone, std::uint64_t tid);
  sim::Task<nvme::Completion> DoResetAll(std::uint64_t tid);
  sim::Task<nvme::Completion> DoReportZones(nvme::Command cmd);
  sim::Task<nvme::Completion> DoFlush(std::uint64_t tid);
  /// True when any of the zone's NAND blocks has exhausted its endurance.
  bool ZoneWornOut(std::uint32_t zone) const;

  // State-machine helpers (called while holding the FCP).
  nvme::Status EnsureOpenForIo(std::uint32_t zone, bool& first_io);
  bool TakeOpenSlotWithEviction();
  void SetZoneState(std::uint32_t zone, ZoneState next);
  void TransitionToFullLocked(std::uint32_t zone, bool via_finish);

  // Cost model helpers.
  sim::Time FcpIoCost(nvme::Opcode op, std::uint64_t bytes,
                      std::uint32_t nlb, nvme::Lba slba) const;
  sim::Time ResetCost(const Zone& z, sim::Rng& rng) const;
  sim::Time Noise(sim::Time t);

  // NAND path. `epoch` is the power epoch the program was admitted under;
  // a program completing after a crash (stale epoch) releases its
  // resources but must not touch zone state — the crash rolled it back.
  nand::PageAddr AddrOfZonePage(std::uint32_t zone,
                                std::uint64_t page_idx) const;
  sim::Task<> ProgramZonePage(std::uint32_t zone, std::uint64_t page_idx,
                              std::uint64_t epoch);
  /// `failed` (nullable) is set to the page's MediaStatus when not kOk —
  /// a fan-out read reports the command-level worst case through it.
  sim::Task<> ReadOneZonePage(std::uint32_t zone, std::uint64_t page_idx,
                              std::uint32_t bytes, sim::WaitGroup* wg,
                              nand::MediaStatus* failed);
  /// Retires the failed block, charges spare accounting, and degrades the
  /// owning zone (ReadOnly; Offline once spares are exhausted).
  void HandleProgramFailure(std::uint32_t zone, nand::PageAddr addr);
  /// Dispatches NAND programs for all fully-covered pages up to
  /// `end_off_bytes`, waiting on buffer-slot admission (backpressure).
  /// Stops early (without dispatching) if a power loss lands while it
  /// waits for a slot — the crash already rolled the zone back.
  sim::Task<> AdmitPrograms(std::uint32_t zone, std::uint64_t end_off_bytes,
                            std::uint64_t epoch);

  // Crash/recovery path (DESIGN.md §11).
  /// Waits out the fault plan's scheduled crash times in order, firing
  /// CrashNow() at each. Spawned once by AttachFaultPlan.
  sim::Task<> CrashDriver(std::vector<sim::Time> at);
  /// Marks a settled (completed, pass or fail) program for durable-prefix
  /// tracking: extends the contiguous prefix or records an out-of-order
  /// page that a crash would tear.
  void NoteProgramSettled(std::uint32_t zone, std::uint64_t page_idx);
  /// Applies power-loss semantics to one zone: rolls wp/programmed bytes
  /// back to the durable prefix, discards the NAND tail, truncates payload
  /// tags, and recomputes the zone state from the recovered wp. Returns
  /// bytes of acked-but-volatile data lost.
  std::uint64_t CrashRollbackZone(std::uint32_t zone);
  /// Post-boot write-pointer rediscovery for one active zone: binary-
  /// search ProbePage scan over the zone's page span (costs real die
  /// time). Returns the discovered page count; CHECKed against the
  /// tracked durable prefix.
  sim::Task<std::uint64_t> ScanZoneWritePointer(std::uint32_t zone);

  // Payload-tag store (self-describing data-integrity model; nvme/types.h
  // Command::payload_tag). Tag vectors are allocated lazily per zone —
  // only workloads that tag their writes pay the memory.
  void StoreTags(std::uint32_t zone, std::uint64_t off_bytes,
                 std::uint32_t nlb, std::uint64_t first_tag);
  void LoadTags(std::uint32_t zone, std::uint64_t off_bytes,
                std::uint32_t nlb, std::vector<std::uint64_t>& out) const;

  // Validation.
  nvme::Status ValidateIoRange(const nvme::Command& cmd, bool is_write) const;
  std::uint64_t ZoneDataOffsetBytes(nvme::Lba lba) const;

  sim::Simulator& sim_;
  ZnsProfile profile_;
  nvme::NamespaceInfo info_;
  std::uint32_t lba_bytes_;
  std::uint64_t zone_size_lbas_;
  std::uint64_t zone_cap_lbas_;

  std::unique_ptr<nand::FlashArray> flash_;
  sim::PriorityResource fcp_;
  sim::Semaphore buffer_slots_;  // in NAND pages
  sim::Rng rng_;

  std::vector<Zone> zones_;
  /// Next zone data page (stripe unit) to hand to the NAND drain.
  std::vector<std::uint64_t> next_program_page_;
  /// Durable-prefix tracking per zone: the contiguous count of settled
  /// NAND programs from page 0 (what a power loss preserves), plus the
  /// set of pages settled out of order beyond it (torn on a crash —
  /// multi-die striping completes programs in die-queue order, not page
  /// order).
  std::vector<std::uint64_t> settled_prefix_pages_;
  std::vector<std::set<std::uint64_t>> settled_oo_pages_;
  /// Per-zone payload tags, indexed by in-zone LBA; empty until the first
  /// tagged write touches the zone.
  std::vector<std::vector<std::uint64_t>> zone_tags_;
  /// Joins in-flight NAND programs per zone (reset/finish quiesce on it).
  std::vector<std::unique_ptr<sim::WaitGroup>> program_wg_;
  /// Joins ALL in-flight NAND programs (flush quiesces on it).
  sim::WaitGroup all_programs_;

  /// RAII tracking of I/O commands currently executing. Reset work only
  /// takes its bulk fast-path when the device has been I/O-quiet for a
  /// while — brief QD=1 submission gaps must not let a reset skip the
  /// background-priority slicing that produces Obs. 13.
  struct InflightGuard {
    ZnsDevice& dev;
    explicit InflightGuard(ZnsDevice& d) : dev(d) {
      ++dev.io_inflight_;
      dev.io_seen_ = true;
      dev.last_io_time_ = dev.sim_.now();
    }
    ~InflightGuard() { dev.last_io_time_ = dev.sim_.now(); --dev.io_inflight_; }
    InflightGuard(const InflightGuard&) = delete;
    InflightGuard& operator=(const InflightGuard&) = delete;
  };

  bool DeviceIsIoQuiet() const;

  /// The tracer to emit into, or nullptr when telemetry is disabled —
  /// every emit site guards on this pointer and costs nothing otherwise.
  telemetry::Tracer* trace() const {
    return telem_ != nullptr ? &telem_->tracer() : nullptr;
  }
  /// Same guard for timeline records (zone lifecycle, reset windows).
  telemetry::TimelineWriter* timeline() const {
    return telem_ != nullptr ? telem_->timeline() : nullptr;
  }

  telemetry::Telemetry* telem_ = nullptr;
  std::uint32_t lane_ = 0;
  fault::FaultPlan* faults_ = nullptr;
  bool crash_driver_armed_ = false;
  /// True from power loss until recovery completes; Execute fast-fails
  /// new commands with kDeviceReset meanwhile.
  bool crashed_ = false;
  std::uint64_t power_epoch_ = 0;
  sim::Time last_recovery_ns_ = 0;
  /// Set by any program failure, cleared by the next flush: flush reports
  /// buffered-data loss even when the host never rewrites the zone.
  bool flush_fault_pending_ = false;
  std::uint32_t io_inflight_ = 0;
  bool io_seen_ = false;
  sim::Time last_io_time_ = 0;
  std::uint32_t open_count_ = 0;
  std::uint32_t active_count_ = 0;
  std::uint64_t open_seq_ = 0;
  ZnsCounters counters_;
};

}  // namespace zstor::zns
