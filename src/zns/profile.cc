#include "zns/profile.h"

namespace zstor::zns {

ZnsProfile Zn540Profile() {
  ZnsProfile p;  // defaults in profile.h are the ZN540 calibration
  p.nand_geometry.channels = 8;
  p.nand_geometry.dies_per_channel = 4;
  p.nand_geometry.page_bytes = 16 * 1024;
  p.nand_geometry.pages_per_block = 256;  // 4 MiB blocks
  // 904 zones x 9 blocks/zone/die; rounded up to a power-of-two count.
  p.nand_geometry.blocks_per_die = 8192;
  p.nand_timing.read_sigma = 0.08;     // tR varies by page position
  p.nand_timing.program_sigma = 0.05;  // tPROG cell-state dependence
  return p;
}

ZnsProfile FemuLikeProfile() {
  ZnsProfile p = Zn540Profile();
  // FEMU emulates no request latency: commands complete as fast as the
  // host (CPU + DRAM) permits. A token sub-microsecond cost stands in for
  // the emulator's own software path.
  p.use_nand_backend = false;
  p.fcp.read = p.fcp.write = p.fcp.append = sim::Microseconds(0.3);
  p.fcp.per_extra_unit = 0;
  p.fcp.sub_unit_rmw = 0;
  p.fcp.small_lba_per_lba = 0;
  p.post.write_fixed = p.post.read_fixed = sim::Microseconds(0.2);
  p.post.append_substripe_extra = 0;
  p.post.dma_ns_per_byte = 0.002;  // in-memory copy, effectively free
  p.open_close = {.explicit_open = 0,
                  .close = 0,
                  .implicit_first_write_extra = 0,
                  .implicit_first_append_extra = 0};
  p.reset.static_cost = true;
  p.reset.static_value = sim::Microseconds(1);  // metadata in DRAM
  p.reset.empty_cost = sim::Microseconds(1);
  p.reset.sigma = 0;
  p.finish.zero_cost = true;
  p.io_sigma = 0;
  return p;
}

ZnsProfile NvmeVirtLikeProfile() {
  ZnsProfile p = Zn540Profile();
  // NVMeVirt has an explicit channel/NAND timing model that distinguishes
  // read from write, but prices append identically to write, uses a static
  // NAND-erase cost for reset, and does not model open/close/finish.
  p.fcp.append = p.fcp.write;
  p.post.append_substripe_extra = 0;
  p.open_close = {.explicit_open = 0,
                  .close = 0,
                  .implicit_first_write_extra = 0,
                  .implicit_first_append_extra = 0};
  p.reset.static_cost = true;
  p.reset.static_value = sim::Milliseconds(3.5);  // one NAND erase
  p.reset.sigma = 0;
  p.finish.zero_cost = true;
  return p;
}

ZnsProfile TinyProfile() {
  ZnsProfile p;
  p.zone_size_bytes = 4ull << 20;  // 4 MiB span
  p.zone_cap_bytes = 3ull << 20;   // 3 MiB writable
  p.num_zones = 16;
  p.max_open_zones = 3;
  p.max_active_zones = 5;
  p.nand_geometry.channels = 2;
  p.nand_geometry.dies_per_channel = 2;
  p.nand_geometry.page_bytes = 16 * 1024;
  p.nand_geometry.pages_per_block = 16;  // 256 KiB blocks
  p.nand_geometry.blocks_per_die = 48;   // 16 zones x 3 blocks/zone/die
  p.write_buffer_bytes = 1ull << 20;
  return p;
}

}  // namespace zstor::zns
