#include "harness/result_writer.h"

#include <cstdio>
#include <limits>
#include <utility>

#include "sim/check.h"
#include "telemetry/json.h"

namespace zstor::harness {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}  // namespace

ResultPoint::ResultPoint()
    : mean_ns(kNan), p50_ns(kNan), p95_ns(kNan), p99_ns(kNan), wa(kNan) {}

ResultSeries& ResultSeries::Add(double x, double value) {
  ResultPoint p;
  p.x = x;
  p.value = value;
  points_.push_back(std::move(p));
  return *this;
}

ResultSeries& ResultSeries::Add(double x, double value,
                                const sim::LatencyHistogram& h) {
  Add(x, value);
  ResultPoint& p = points_.back();
  p.samples = h.count();
  if (h.count() > 0) {
    p.mean_ns = h.mean_ns();
    p.p50_ns = h.p50_ns();
    p.p95_ns = h.p95_ns();
    p.p99_ns = h.p99_ns();
  }
  return *this;
}

ResultSeries& ResultSeries::AddLabeled(std::string label, double x,
                                       double value) {
  Add(x, value);
  points_.back().label = std::move(label);
  return *this;
}

ResultSeries& ResultSeries::AddLabeled(std::string label, double x,
                                       double value,
                                       const sim::LatencyHistogram& h) {
  Add(x, value, h);
  points_.back().label = std::move(label);
  return *this;
}

ResultSeries& ResultSeries::WithParts(std::vector<double> parts) {
  ZSTOR_CHECK_MSG(!points_.empty(), "WithParts needs a point to attach to");
  points_.back().parts = std::move(parts);
  return *this;
}

ResultSeries& ResultSeries::WithWa(double wa) {
  ZSTOR_CHECK_MSG(!points_.empty(), "WithWa needs a point to attach to");
  points_.back().wa = wa;
  return *this;
}

void ResultWriter::Config(const std::string& key, const std::string& value) {
  std::string rendered = telemetry::JsonQuoted(value);
  for (auto& [k, v] : config_) {
    if (k == key) {
      v = std::move(rendered);
      return;
    }
  }
  config_.emplace_back(key, std::move(rendered));
}

void ResultWriter::Config(const std::string& key, double value) {
  std::string rendered;
  telemetry::AppendJsonNumber(rendered, value);
  for (auto& [k, v] : config_) {
    if (k == key) {
      v = std::move(rendered);
      return;
    }
  }
  config_.emplace_back(key, std::move(rendered));
}

void ResultWriter::SetMeta(const std::string& key, double value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  meta_.emplace_back(key, value);
}

ResultSeries& ResultWriter::Series(const std::string& name,
                                   const std::string& unit) {
  for (auto& s : series_) {
    if (s.name() == name) return s;
  }
  series_.emplace_back(name, unit);
  return series_.back();
}

std::string ResultWriter::ToJson() const {
  using telemetry::AppendJsonNumber;
  using telemetry::AppendJsonString;
  std::string out = "{\"bench\":";
  AppendJsonString(out, bench_);
  out += ",\"schema_version\":3,\"config\":{";
  for (std::size_t i = 0; i < config_.size(); ++i) {
    if (i > 0) out += ",";
    AppendJsonString(out, config_[i].first);
    out += ":";
    out += config_[i].second;
  }
  out += "}";
  if (!meta_.empty()) {
    out += ",\"meta\":{";
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      if (i > 0) out += ",";
      AppendJsonString(out, meta_[i].first);
      out += ":";
      AppendJsonNumber(out, meta_[i].second);
    }
    out += "}";
  }
  out += ",\"series\":[";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const ResultSeries& s = series_[i];
    if (i > 0) out += ",";
    out += "{\"name\":";
    AppendJsonString(out, s.name());
    out += ",\"unit\":";
    AppendJsonString(out, s.unit());
    out += ",\"points\":[";
    const auto& pts = s.points();
    for (std::size_t j = 0; j < pts.size(); ++j) {
      const ResultPoint& p = pts[j];
      if (j > 0) out += ",";
      out += "{\"x\":";
      AppendJsonNumber(out, p.x);
      if (!p.label.empty()) {
        out += ",\"label\":";
        AppendJsonString(out, p.label);
      }
      out += ",\"value\":";
      AppendJsonNumber(out, p.value);
      out += ",\"samples\":";
      AppendJsonNumber(out, static_cast<double>(p.samples));
      out += ",\"mean_ns\":";
      AppendJsonNumber(out, p.mean_ns);
      out += ",\"p50_ns\":";
      AppendJsonNumber(out, p.p50_ns);
      out += ",\"p95_ns\":";
      AppendJsonNumber(out, p.p95_ns);
      out += ",\"p99_ns\":";
      AppendJsonNumber(out, p.p99_ns);
      if (p.wa == p.wa) {  // NaN = absent: "wa" is only emitted when set
        out += ",\"wa\":";
        AppendJsonNumber(out, p.wa);
      }
      if (!p.parts.empty()) {
        out += ",\"parts\":[";
        for (std::size_t k = 0; k < p.parts.size(); ++k) {
          if (k > 0) out += ",";
          AppendJsonNumber(out, p.parts[k]);
        }
        out += "]";
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

bool ResultWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot open results file %s\n",
                 path.c_str());
    return false;
  }
  std::string json = ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace zstor::harness
