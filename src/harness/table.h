// Fixed-width table printing for bench binaries: every bench prints the
// paper's rows/series with a "paper=" reference column so measured vs
// published values line up visually, plus optional CSV output.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace zstor::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& AddRow(std::vector<std::string> cells);
  /// Prints with column alignment to stdout.
  void Print() const;
  /// Comma-separated form (for piping into plotting scripts).
  std::string Csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
std::string Fmt(double v, int decimals = 2);
std::string FmtUs(double us);
std::string FmtMs(double ms);
std::string FmtKiops(double kiops);
std::string FmtMibps(double mibps);

/// Prints a section banner ("== Figure 2a — ... ==").
void Banner(const std::string& title);

/// Renders a telemetry snapshot as a table: one row per metric, with the
/// histogram columns (mean/p50/p95/p99, in us) filled only for histogram
/// metrics. The same path telemetry JSON export uses, so table and
/// --metrics output always agree.
Table SnapshotTable(const telemetry::Snapshot& snap);

}  // namespace zstor::harness
