#include "harness/gc_experiment.h"

#include <memory>
#include <vector>

#include "harness/testbed.h"
#include "workload/runner.h"

namespace zstor::harness {

using nvme::Opcode;
using workload::JobResult;
using workload::JobSpec;

namespace {

GcExperimentResult Summarize(const JobResult& writer, const JobResult& reader,
                             std::size_t skip_bins) {
  GcExperimentResult out;
  out.write_series = writer.series;
  out.read_series = reader.series;
  const double kMiB = 1024.0 * 1024.0;
  // Interior bins only: the first bins are warmup, the final bin is a
  // partial drain tail.
  auto interior = [&](const sim::TimeSeries& ts) {
    sim::Welford m;
    for (std::size_t i = skip_bins; i + 1 < ts.num_bins(); ++i) {
      m.Record(ts.BinRate(i));
    }
    return m;
  };
  sim::Welford w = interior(writer.series);
  sim::Welford r = interior(reader.series);
  out.write_mibps_mean = w.mean() / kMiB;
  out.write_cv = w.cv();
  out.read_mibps_mean = r.mean() / kMiB;
  out.read_cv = r.cv();
  out.read_p95_us = reader.latency.p95_ns() / 1000.0;
  return out;
}

JobSpec WriterSpec(double rate_mibps, sim::Time duration) {
  JobSpec writer;
  writer.op = Opcode::kWrite;  // overridden for ZNS
  writer.random = true;
  writer.request_bytes = 128 * 1024;
  writer.queue_depth = 8;
  writer.workers = 4;
  writer.duration = duration;
  writer.warmup = duration / 4;
  writer.series_bin = sim::Seconds(1);
  if (rate_mibps > 0) {
    writer.rate_bytes_per_sec = rate_mibps * 1024 * 1024;
  }
  return writer;
}

JobSpec ReaderSpec(sim::Time duration) {
  JobSpec reader;
  reader.op = Opcode::kRead;
  reader.random = true;
  reader.request_bytes = 4096;
  reader.queue_depth = 32;
  reader.duration = duration;
  reader.warmup = duration / 4;
  reader.series_bin = sim::Seconds(1);
  return reader;
}

}  // namespace

GcExperimentResult RunConvGcExperiment(double rate_mibps,
                                       sim::Time duration,
                                       std::size_t skip_bins) {
  Testbed tb = TestbedBuilder()
                   .WithConvProfile(ftl::Sn640Profile())
                   .WithLabel("gc-conv")
                   .Build();
  tb.conv()->DebugPrefill();  // aged drive: GC pressure from first overwrite
  auto results =
      tb.RunJobs({WriterSpec(rate_mibps, duration), ReaderSpec(duration)});
  GcExperimentResult out = Summarize(results[0], results[1], skip_bins);
  out.write_amplification = tb.conv()->counters().WriteAmplification();
  return out;
}

GcExperimentResult RunZnsGcExperiment(double rate_mibps,
                                      sim::Time duration,
                                      std::size_t skip_bins) {
  Testbed tb = TestbedBuilder()
                   .WithZnsProfile(zns::Zn540Profile())
                   .WithLabel("gc-zns")
                   .Build();
  zns::ZnsDevice& dev = *tb.zns();

  // Writers: appends over private zone pools, resetting full zones
  // themselves (host-side GC). 4 workers x 3 zones = 12 active zones,
  // within the device's max-active limit of 14.
  JobSpec writer = WriterSpec(rate_mibps, duration);
  writer.op = Opcode::kAppend;
  writer.partition_zones = true;
  writer.on_full = JobSpec::OnFull::kReset;
  writer.zones = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};

  // Reader: separate, pre-filled full zones (no active slots needed).
  JobSpec reader = ReaderSpec(duration);
  std::uint32_t read_base = dev.profile().num_zones / 2;
  for (std::uint32_t z = read_base; z < read_base + 8; ++z) {
    dev.DebugFillZone(z, dev.profile().zone_cap_bytes);
    reader.zones.push_back(z);
  }

  auto results = tb.RunJobs({writer, reader});
  return Summarize(results[0], results[1], skip_bins);
}

double ReadOnlyP95Us(bool use_zns) {
  TestbedBuilder builder;
  if (use_zns) {
    builder.WithZnsProfile(zns::Zn540Profile()).WithLabel("read-only-zns");
  } else {
    builder.WithConvProfile(ftl::Sn640Profile()).WithLabel("read-only-conv");
  }
  Testbed tb = builder.Build();
  JobSpec reader = ReaderSpec(sim::Milliseconds(500));
  reader.queue_depth = 1;
  if (use_zns) {
    std::uint32_t base = tb.zns()->profile().num_zones / 2;
    tb.FillZones(base, 8);
    reader.zones = tb.ZoneList(base, 8);
  } else {
    tb.conv()->DebugPrefill();
  }
  return tb.RunJob(reader).latency.p95_ns() / 1000.0;
}

}  // namespace zstor::harness
