#include "harness/parallel.h"

#include <atomic>
#include <cstdio>
#include <thread>

#include "harness/bench_flags.h"

namespace zstor::harness {

int SweepJobs() {
  BenchEnv& env = BenchEnv::Get();
  int jobs = env.jobs_requested();
  if (jobs == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    jobs = hw == 0 ? 1 : static_cast<int>(hw);
  }
  if (jobs > 1 && env.telemetry_requested()) {
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "warning: --jobs reduced to 1: telemetry flags route all "
                   "testbeds through one sink\n");
    }
    jobs = 1;
  }
  return jobs;
}

namespace detail {

void RunIndexed(std::size_t n,
                const std::function<void(std::size_t)>& body) {
  std::size_t jobs = static_cast<std::size_t>(SweepJobs());
  if (jobs > n) jobs = n;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      body(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs - 1);
  for (std::size_t t = 0; t + 1 < jobs; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is the last worker
  for (auto& th : pool) th.join();
}

}  // namespace detail

void ParallelTasks(std::vector<std::function<void()>> tasks) {
  detail::RunIndexed(tasks.size(), [&](std::size_t i) { tasks[i](); });
}

}  // namespace zstor::harness
