// Process-wide telemetry plumbing for bench binaries: every bench calls
// InitBench(argc, argv) first thing in main(), which strips the shared
// flags
//
//   --trace=FILE     append every testbed's trace events to FILE (JSONL,
//                    one object per event; schema in DESIGN.md §7)
//   --metrics=FILE   write a JSON array of labeled metrics snapshots,
//                    one element per testbed, at process exit
//
// and leaves the rest of argv untouched for the bench's own parsing.
// Testbeds built without an explicit TelemetryConfig pick these up
// automatically (see testbed.h), so `bench_fig2_latency --trace=t.jsonl`
// traces every experiment the bench runs with zero per-bench code.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.h"

namespace zstor::harness {

/// Parses and removes --trace=/--metrics= from argv; registers an atexit
/// hook that flushes the shared sink and writes the metrics file. Safe to
/// call once per process (subsequent calls only re-parse flags).
void InitBench(int& argc, char** argv);

/// Flushes the shared trace sink and writes the metrics file. Idempotent;
/// runs automatically at exit after InitBench().
void FinishBench();

/// The singleton holding what the flags configured.
class BenchEnv {
 public:
  static BenchEnv& Get();

  /// True when either flag was given: freshly built testbeds should
  /// enable telemetry and report here.
  bool telemetry_requested() const {
    return !trace_path_.empty() || !metrics_path_.empty();
  }
  /// The shared JSONL sink (opened lazily); null when --trace is absent.
  telemetry::TraceSink* shared_sink();
  const std::string& metrics_path() const { return metrics_path_; }

  /// Collects one testbed's frozen snapshot for the metrics file.
  void AddSnapshot(std::string label, telemetry::Snapshot snap);

  /// A default label for the next unlabeled testbed ("testbed-N").
  std::string NextLabel();

  void Finish();

 private:
  friend void InitBench(int& argc, char** argv);

  std::string trace_path_;
  std::string metrics_path_;
  std::unique_ptr<telemetry::JsonlFileSink> sink_;
  std::vector<std::pair<std::string, telemetry::Snapshot>> snapshots_;
  int label_seq_ = 0;
  bool finished_ = false;
};

}  // namespace zstor::harness
