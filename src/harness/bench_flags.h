// Process-wide telemetry plumbing for bench binaries: every bench calls
// InitBench(argc, argv) first thing in main(), which strips the shared
// flags
//
//   --trace=FILE     append every testbed's trace events to FILE (JSONL,
//                    one object per event; schema in DESIGN.md §7)
//   --metrics=FILE   write a JSON array of labeled metrics snapshots,
//                    one element per testbed, at process exit
//   --json=FILE      write the bench's machine-readable results (the
//                    harness::ResultWriter document; schema in
//                    DESIGN.md §7) at process exit
//   --logpages=FILE  write a JSON array of labeled per-testbed NVMe-style
//                    log pages (SMART / Zone Report / Die Utilization) at
//                    process exit
//   --faults=SPEC    inject media faults into every testbed the bench
//                    builds (grammar in fault/fault_plan.h; e.g.
//                    "seed=7,read_uc=1e-4,prog=1e-3")
//   --timeline=FILE  append every testbed's timeline records to FILE
//                    (JSONL: periodic metric samples, zone state
//                    changes, die-busy and GC/reset/fault windows;
//                    schema in DESIGN.md §10 — analyze with tools/zmon)
//   --sample-interval=DUR
//                    virtual-time cadence of the timeline's periodic
//                    samples (suffix ns/us/ms/s; a bare number means
//                    milliseconds; default 100ms)
//   --jobs=N         run independent sweep points on N worker threads
//                    (0 = one per hardware thread; default 1). Output is
//                    byte-identical for every N — see harness/parallel.h.
//                    Ignored (forced to 1, with a warning) when a
//                    telemetry flag is active, because testbeds then
//                    funnel snapshots into this process-wide singleton.
//   --sim-threads=N  run each multi-device ZNS testbed's simulation on
//                    the parallel per-device-lane engine with N worker
//                    threads (sim/parallel_sim.h; default 0 = classic
//                    serial engine). Output is byte-identical for every
//                    N >= 1 because N=1 executes the same bounded-window
//                    schedule serially. Composes with --jobs: sweep
//                    points fan out across jobs, devices across sim
//                    threads within each point.
//
// and leaves the rest of argv untouched for the bench's own parsing.
// Testbeds built without an explicit TelemetryConfig pick these up
// automatically (see testbed.h), so `bench_fig2_latency --trace=t.jsonl`
// traces every experiment the bench runs with zero per-bench code.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_plan.h"
#include "harness/result_writer.h"
#include "telemetry/telemetry.h"

namespace zstor::harness {

/// Parses and removes the shared flags from argv; registers an atexit
/// hook that flushes the shared sink and writes the output files. Safe to
/// call once per process (subsequent calls only re-parse flags).
void InitBench(int& argc, char** argv);

/// Flushes the shared trace sink and writes the output files. Idempotent;
/// runs automatically at exit after InitBench().
void FinishBench();

/// The singleton holding what the flags configured.
class BenchEnv {
 public:
  static BenchEnv& Get();

  /// True when any snapshot-producing flag was given: freshly built
  /// testbeds should enable telemetry and report here. (--json alone does
  /// not force telemetry: results are recorded by the bench itself.)
  bool telemetry_requested() const {
    return !trace_path_.empty() || !metrics_path_.empty() ||
           !logpages_path_.empty() || !timeline_path_.empty();
  }
  /// True when --timeline was given: freshly built testbeds stream
  /// timeline records into the shared writer and run a MetricSampler.
  bool timeline_requested() const { return !timeline_path_.empty(); }
  /// The --sample-interval value (virtual ns; default 100 ms).
  sim::Time sample_interval() const { return sample_interval_; }
  /// The shared timeline writer (opened lazily); null when --timeline is
  /// absent.
  telemetry::TimelineWriter* shared_timeline();
  /// True when --logpages was given: testbeds dump their device log pages
  /// here on Finish().
  bool logpages_requested() const { return !logpages_path_.empty(); }
  /// True when --faults was given: freshly built testbeds inject this
  /// fault spec (builder-level WithFaults overrides it per testbed).
  bool faults_requested() const { return fault_spec_.enabled; }
  const fault::FaultSpec& fault_spec() const { return fault_spec_; }
  /// The raw --jobs value (0 = auto-detect). Use harness::SweepJobs()
  /// (parallel.h), which resolves auto-detect and the telemetry clamp.
  int jobs_requested() const { return jobs_; }
  /// The --sim-threads value: worker threads for the parallel
  /// discrete-event engine inside each multi-device testbed (testbed.h).
  /// 0 (default) = classic single-simulator engine; N >= 1 = parallel
  /// engine with N workers (N=1 runs the same window schedule serially,
  /// so output is byte-identical for every N >= 1). Orthogonal to
  /// --jobs, which parallelizes across independent sweep points.
  int sim_threads_requested() const { return sim_threads_; }
  /// The shared JSONL sink (opened lazily); null when --trace is absent.
  telemetry::TraceSink* shared_sink();
  const std::string& metrics_path() const { return metrics_path_; }
  const std::string& json_path() const { return json_path_; }

  /// The process-wide result document (also via harness::Results()).
  ResultWriter& results() { return results_; }

  /// Collects one testbed's frozen snapshot for the metrics file.
  void AddSnapshot(std::string label, telemetry::Snapshot snap);
  /// Collects one testbed's log-pages JSON object for the logpages file.
  void AddLogPages(std::string label, std::string logpages_json);

  /// A default label for the next unlabeled testbed ("testbed-N").
  std::string NextLabel();

  /// Disambiguates repeated testbed labels for the shared timeline: a
  /// bench that rebuilds same-labeled testbeds across sweep points (each
  /// restarting virtual time at 0) would otherwise merge them into one
  /// ambiguous record group. First use returns `base`, repeats get
  /// "base#2", "base#3", ...
  std::string UniqueTimelineLabel(const std::string& base);

  void Finish();

 private:
  friend void InitBench(int& argc, char** argv);

  std::string trace_path_;
  std::string metrics_path_;
  std::string json_path_;
  std::string logpages_path_;
  std::string timeline_path_;
  sim::Time sample_interval_ = sim::Milliseconds(100);
  fault::FaultSpec fault_spec_;  // enabled=false until --faults parses
  int jobs_ = 1;
  int sim_threads_ = 0;
  std::chrono::steady_clock::time_point wall_start_{};
  bool wall_start_set_ = false;
  std::unique_ptr<telemetry::JsonlFileSink> sink_;
  std::unique_ptr<telemetry::TimelineWriter> timeline_;
  std::vector<std::pair<std::string, telemetry::Snapshot>> snapshots_;
  std::vector<std::pair<std::string, std::string>> logpages_;
  ResultWriter results_;
  std::map<std::string, int> timeline_label_uses_;
  int label_seq_ = 0;
  bool finished_ = false;
};

}  // namespace zstor::harness
