#include "harness/bench_flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "telemetry/json.h"

namespace zstor::harness {

namespace {

/// Returns the value if `arg` is "--NAME=VALUE", else nullptr.
const char* MatchFlag(const char* arg, const char* name) {
  std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

/// argv[0] without directories: the bench's name for the results file.
std::string Basename(const char* argv0) {
  if (argv0 == nullptr) return "bench";
  const char* slash = std::strrchr(argv0, '/');
  return slash != nullptr ? slash + 1 : argv0;
}

/// Parses "100ms" / "2s" / "500us" / "1500ns"; a bare number means
/// milliseconds. Returns false on garbage or a non-positive duration.
bool ParseDuration(const char* s, sim::Time* out) {
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (end == s || v <= 0) return false;
  double scale;
  if (std::strcmp(end, "ns") == 0) {
    scale = 1.0;
  } else if (std::strcmp(end, "us") == 0) {
    scale = 1e3;
  } else if (std::strcmp(end, "ms") == 0 || *end == '\0') {
    scale = 1e6;
  } else if (std::strcmp(end, "s") == 0) {
    scale = 1e9;
  } else {
    return false;
  }
  *out = static_cast<sim::Time>(v * scale);
  return *out > 0;
}

}  // namespace

BenchEnv& BenchEnv::Get() {
  static BenchEnv env;
  return env;
}

ResultWriter& Results() { return BenchEnv::Get().results(); }

telemetry::TraceSink* BenchEnv::shared_sink() {
  if (trace_path_.empty()) return nullptr;
  if (sink_ == nullptr) {
    sink_ = std::make_unique<telemetry::JsonlFileSink>(trace_path_);
    if (!sink_->ok()) {
      std::fprintf(stderr, "warning: cannot open trace file %s\n",
                   trace_path_.c_str());
    }
  }
  return sink_.get();
}

telemetry::TimelineWriter* BenchEnv::shared_timeline() {
  if (timeline_path_.empty()) return nullptr;
  if (timeline_ == nullptr) {
    timeline_ = std::make_unique<telemetry::TimelineWriter>(timeline_path_);
    timeline_->set_die_merge_gap_ns(
        telemetry::TimelineWriter::DefaultMergeGap(sample_interval_));
  }
  return timeline_.get();
}

void BenchEnv::AddSnapshot(std::string label, telemetry::Snapshot snap) {
  snapshots_.emplace_back(std::move(label), std::move(snap));
}

void BenchEnv::AddLogPages(std::string label, std::string logpages_json) {
  logpages_.emplace_back(std::move(label), std::move(logpages_json));
}

std::string BenchEnv::NextLabel() {
  return "testbed-" + std::to_string(label_seq_++);
}

std::string BenchEnv::UniqueTimelineLabel(const std::string& base) {
  int n = ++timeline_label_uses_[base];
  return n == 1 ? base : base + "#" + std::to_string(n);
}

void BenchEnv::Finish() {
  if (finished_) return;
  finished_ = true;
  if (wall_start_set_) {
    // Self-timed real elapsed ms since InitBench: the raw material for
    // the multi-device speedup gate (tools/compare_results.py indexes
    // "meta.wall_ms"). Identity checks normalize this field away.
    std::chrono::duration<double, std::milli> wall =
        std::chrono::steady_clock::now() - wall_start_;
    results_.SetMeta("wall_ms", wall.count());
  }
  if (!metrics_path_.empty()) {
    std::FILE* f = std::fopen(metrics_path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot open metrics file %s\n",
                   metrics_path_.c_str());
    } else {
      std::fputs("[\n", f);
      for (std::size_t i = 0; i < snapshots_.size(); ++i) {
        // Labels are usually identifiers, but WithLabel() accepts
        // anything — escape.
        std::fprintf(f, "  {\"label\": %s, \"metrics\": %s}%s\n",
                     telemetry::JsonQuoted(snapshots_[i].first).c_str(),
                     snapshots_[i].second.ToJson().c_str(),
                     i + 1 < snapshots_.size() ? "," : "");
      }
      std::fputs("]\n", f);
      std::fclose(f);
    }
  }
  if (!logpages_path_.empty()) {
    std::FILE* f = std::fopen(logpages_path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot open logpages file %s\n",
                   logpages_path_.c_str());
    } else {
      std::fputs("[\n", f);
      for (std::size_t i = 0; i < logpages_.size(); ++i) {
        std::fprintf(f, "  {\"label\": %s, \"logpages\": %s}%s\n",
                     telemetry::JsonQuoted(logpages_[i].first).c_str(),
                     logpages_[i].second.c_str(),
                     i + 1 < logpages_.size() ? "," : "");
      }
      std::fputs("]\n", f);
      std::fclose(f);
    }
  }
  if (!json_path_.empty()) {
    results_.WriteFile(json_path_);
  }
  if (sink_ != nullptr) sink_->Flush();
  if (timeline_ != nullptr) timeline_->Flush();
}

void FinishBench() { BenchEnv::Get().Finish(); }

void InitBench(int& argc, char** argv) {
  // Construct the singleton BEFORE registering the atexit hook: local
  // statics are destroyed in reverse construction order interleaved with
  // atexit handlers, so the hook must be the later registration or it
  // would run against an already-destroyed BenchEnv.
  BenchEnv& env = BenchEnv::Get();
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit(FinishBench);
  }
  if (!env.wall_start_set_) {
    env.wall_start_ = std::chrono::steady_clock::now();
    env.wall_start_set_ = true;
  }
  if (env.results_.bench().empty() && argc > 0) {
    env.results_.set_bench(Basename(argv[0]));
  }
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = MatchFlag(argv[i], "--trace")) {
      env.trace_path_ = v;
    } else if (const char* m = MatchFlag(argv[i], "--metrics")) {
      env.metrics_path_ = m;
    } else if (const char* j = MatchFlag(argv[i], "--json")) {
      env.json_path_ = j;
    } else if (const char* lp = MatchFlag(argv[i], "--logpages")) {
      env.logpages_path_ = lp;
    } else if (const char* tl = MatchFlag(argv[i], "--timeline")) {
      env.timeline_path_ = tl;
    } else if (const char* si = MatchFlag(argv[i], "--sample-interval")) {
      if (!ParseDuration(si, &env.sample_interval_)) {
        std::fprintf(stderr, "error: bad --sample-interval value: %s\n", si);
        std::exit(2);
      }
    } else if (const char* fs = MatchFlag(argv[i], "--faults")) {
      std::string error;
      if (!fault::ParseFaultSpec(fs, &env.fault_spec_, &error)) {
        std::fprintf(stderr, "error: bad --faults spec: %s\n",
                     error.c_str());
        std::exit(2);
      }
    } else if (const char* jb = MatchFlag(argv[i], "--jobs")) {
      char* end = nullptr;
      long n = std::strtol(jb, &end, 10);
      if (end == jb || *end != '\0' || n < 0) {
        std::fprintf(stderr, "error: bad --jobs value: %s\n", jb);
        std::exit(2);
      }
      env.jobs_ = static_cast<int>(n);
    } else if (const char* st = MatchFlag(argv[i], "--sim-threads")) {
      char* end = nullptr;
      long n = std::strtol(st, &end, 10);
      if (end == st || *end != '\0' || n < 0) {
        std::fprintf(stderr, "error: bad --sim-threads value: %s\n", st);
        std::exit(2);
      }
      env.sim_threads_ = static_cast<int>(n);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
}

}  // namespace zstor::harness
