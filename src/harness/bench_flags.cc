#include "harness/bench_flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace zstor::harness {

namespace {

/// Returns the value if `arg` is "--NAME=VALUE", else nullptr.
const char* MatchFlag(const char* arg, const char* name) {
  std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

}  // namespace

BenchEnv& BenchEnv::Get() {
  static BenchEnv env;
  return env;
}

telemetry::TraceSink* BenchEnv::shared_sink() {
  if (trace_path_.empty()) return nullptr;
  if (sink_ == nullptr) {
    sink_ = std::make_unique<telemetry::JsonlFileSink>(trace_path_);
    if (!sink_->ok()) {
      std::fprintf(stderr, "warning: cannot open trace file %s\n",
                   trace_path_.c_str());
    }
  }
  return sink_.get();
}

void BenchEnv::AddSnapshot(std::string label, telemetry::Snapshot snap) {
  snapshots_.emplace_back(std::move(label), std::move(snap));
}

std::string BenchEnv::NextLabel() {
  return "testbed-" + std::to_string(label_seq_++);
}

void BenchEnv::Finish() {
  if (finished_) return;
  finished_ = true;
  if (!metrics_path_.empty()) {
    std::FILE* f = std::fopen(metrics_path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot open metrics file %s\n",
                   metrics_path_.c_str());
    } else {
      std::fputs("[\n", f);
      for (std::size_t i = 0; i < snapshots_.size(); ++i) {
        // Labels come from WithLabel()/NextLabel(): identifiers, no
        // JSON-hostile characters to escape.
        std::fprintf(f, "  {\"label\": \"%s\", \"metrics\": %s}%s\n",
                     snapshots_[i].first.c_str(),
                     snapshots_[i].second.ToJson().c_str(),
                     i + 1 < snapshots_.size() ? "," : "");
      }
      std::fputs("]\n", f);
      std::fclose(f);
    }
  }
  if (sink_ != nullptr) sink_->Flush();
}

void FinishBench() { BenchEnv::Get().Finish(); }

void InitBench(int& argc, char** argv) {
  // Construct the singleton BEFORE registering the atexit hook: local
  // statics are destroyed in reverse construction order interleaved with
  // atexit handlers, so the hook must be the later registration or it
  // would run against an already-destroyed BenchEnv.
  BenchEnv& env = BenchEnv::Get();
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit(FinishBench);
  }
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = MatchFlag(argv[i], "--trace")) {
      env.trace_path_ = v;
    } else if (const char* m = MatchFlag(argv[i], "--metrics")) {
      env.metrics_path_ = m;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
}

}  // namespace zstor::harness
