// Canned experiment protocols shared by the calibration tests and the
// bench binaries. Each function builds a fresh simulator + device + stack,
// runs the paper's protocol, and returns the measured quantities.
//
// Protocol choices that the paper leaves implicit (exact queue depths,
// durations) are centralized here and documented in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/testbed.h"
#include "nvme/types.h"
#include "sim/stats.h"
#include "workload/job.h"
#include "zns/profile.h"

namespace zstor::harness {

/// Historical name for the stack selector, now shared with the Testbed
/// facade (see testbed.h).
using StackKind = StackChoice;

inline const char* ToString(StackKind k) { return zstor::ToString(k); }

/// QD=1 single-op latency through a host stack (Fig. 2). Returns the mean
/// latency in microseconds over `ops` back-to-back operations (the first
/// operation per zone is excluded: it pays the one-time implicit-open
/// cost, which Obs. 9 measures separately).
double Qd1LatencyUs(const zns::ZnsProfile& profile, StackKind stack,
                    nvme::Opcode op, std::uint64_t request_bytes,
                    std::uint32_t lba_bytes, int ops = 200);

/// QD=1 throughput vs request size via SPDK (Fig. 3). KIOPS.
double Qd1Kiops(const zns::ZnsProfile& profile, nvme::Opcode op,
                std::uint64_t request_bytes);

/// Intra-zone scalability (Fig. 4a): one zone, one worker, variable QD.
/// Reads and appends use SPDK; writes use the kernel stack with
/// mq-deadline (the only stack that can keep multiple writes in flight on
/// one zone, §III-D). Reads are random over a pre-filled zone.
workload::JobResult IntraZone(const zns::ZnsProfile& profile,
                              nvme::Opcode op, std::uint64_t request_bytes,
                              std::uint32_t qd,
                              double* merged_fraction = nullptr);

/// Inter-zone scalability (Fig. 4b/4c): one worker per zone at QD 1, all
/// via SPDK. Reads are random over pre-filled zones.
workload::JobResult InterZone(const zns::ZnsProfile& profile,
                              nvme::Opcode op, std::uint64_t request_bytes,
                              std::uint32_t zones);

/// Obs. 9: explicit open / close / first-write / first-append costs (us),
/// measured end-to-end through SPDK.
struct OpenCloseCosts {
  double explicit_open_us = 0;
  double close_us = 0;
  double implicit_write_extra_us = 0;
  double implicit_append_extra_us = 0;
};
OpenCloseCosts MeasureOpenClose(const zns::ZnsProfile& profile);

/// Fig. 5: reset/finish latency (ms) at a given occupancy, via SPDK, on
/// zones pre-filled with DebugFillZone (see DESIGN.md §6). Averaged over
/// `zones_per_point` zones (paper: 3000 resets across runs).
double ResetLatencyMs(const zns::ZnsProfile& profile, double occupancy,
                      bool finish_first, int zones_per_point = 12);
double FinishLatencyMs(const zns::ZnsProfile& profile, double occupancy,
                       int zones_per_point = 6);

/// Fig. 7 / Obs. 12-13: resets of full zones on the first half of the
/// device concurrent with an I/O workload on the second half.
struct ResetInterferenceResult {
  double reset_p95_ms = 0;
  double reset_mean_ms = 0;
  double io_mean_us = 0;   // mean latency of the concurrent I/O (0 if none)
  std::uint64_t resets = 0;
};
/// `op` = kRead (random, QD 12), kWrite (sequential, QD 1) or kAppend
/// (sequential, QD 1); anything else means reset-only (the baseline).
ResetInterferenceResult ResetInterference(const zns::ZnsProfile& profile,
                                          nvme::Opcode op,
                                          std::uint32_t reset_zones = 24);

/// Appendix Fig. 8 point: latency/throughput at a queue depth.
struct QdPoint {
  double kiops = 0;
  double mean_latency_us = 0;
  double p95_latency_us = 0;
};
QdPoint AppendQdPoint(const zns::ZnsProfile& profile,
                      std::uint64_t request_bytes, std::uint32_t qd);
QdPoint WriteQdPoint(const zns::ZnsProfile& profile,
                     std::uint64_t request_bytes, std::uint32_t qd);

}  // namespace zstor::harness
