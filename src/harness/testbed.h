// The one-stop experiment facade: a Testbed owns a simulator, a device
// (ZNS or conventional), a host stack and — optionally — a telemetry
// bundle, wired together so benches and tests stop copy-pasting the same
// construction boilerplate.
//
//   auto tb = zstor::TestbedBuilder()
//                 .WithZnsProfile(zns::Zn540Profile())
//                 .WithStack(zstor::StackChoice::kSpdk)
//                 .WithTelemetry({.trace_path = "run.jsonl"})
//                 .Build();
//   auto r = tb.RunJob(spec);        // described into tb's metrics
//   tb.Finish();                     // flush trace, write metrics JSON
//
// When no explicit telemetry config is given, Build() consults the
// process-wide BenchEnv (see bench_flags.h): a bench invoked with
// --trace=FILE / --metrics=FILE gets tracing on every testbed it builds,
// all sharing one JSONL sink, with per-testbed metrics snapshots written
// at exit.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "ftl/conv_device.h"
#include "hostif/kernel_stack.h"
#include "hostif/resilient_stack.h"
#include "nvme/log_page.h"
#include "hostif/stack.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"
#include "workload/job.h"
#include "zns/profile.h"
#include "zns/zns_device.h"

namespace zstor {

/// Which host software stack services submissions (§III-A).
enum class StackChoice { kSpdk, kKernelNone, kKernelMq };

const char* ToString(StackChoice k);

/// How a testbed's telemetry is surfaced. All fields optional; an
/// all-default config still enables metrics collection (no trace sink).
struct TelemetryConfig {
  /// Append trace events to this JSONL file ("" = no file sink).
  std::string trace_path;
  /// Keep the last N events in an in-memory ring instead (tests and
  /// post-hoc inspection). Takes precedence over trace_path.
  std::size_t ring_capacity = 0;
  /// Write a metrics-snapshot JSON object here on Finish().
  std::string metrics_path;
};

class TestbedBuilder;

/// Owns one experiment's worth of simulated hardware + host stack.
/// Movable (members are heap-allocated, so internal references stay
/// valid); destruction runs Finish() if the caller didn't.
class Testbed {
 public:
  Testbed(Testbed&&) = default;
  Testbed& operator=(Testbed&&) = default;
  ~Testbed();

  sim::Simulator& sim() { return *sim_; }
  hostif::Stack& stack() { return *stack_; }
  /// The device as its generic NVMe face.
  nvme::Controller& controller();
  /// Concrete device accessors; null when the testbed holds the other
  /// kind (a testbed has exactly one device).
  zns::ZnsDevice* zns() { return zns_.get(); }
  ftl::ConvDevice* conv() { return conv_.get(); }
  /// Non-null only for StackChoice::kKernelMq (scheduler stats live here).
  hostif::KernelStack* kernel() { return kernel_; }
  /// Null when telemetry is disabled.
  telemetry::Telemetry* telemetry() { return telem_.get(); }
  /// The injected fault plan; null when faults are disabled.
  fault::FaultPlan* faults() { return faults_.get(); }
  /// The host retry layer; null unless faults or WithRetryPolicy enabled
  /// it. When non-null, stack() IS this wrapper.
  hostif::ResilientStack* resilient() { return resilient_; }
  /// Null unless TelemetryConfig::ring_capacity was set.
  telemetry::RingBufferSink* ring() { return ring_; }

  // ---- experiment conveniences ---------------------------------------
  /// DebugFillZone over [first, first+count) (ZNS testbeds only).
  void FillZones(std::uint32_t first, std::uint32_t count);
  std::vector<std::uint32_t> ZoneList(std::uint32_t first,
                                      std::uint32_t count) const;
  /// Runs a workload job to completion; the result is additionally
  /// Describe()d into this testbed's metrics when telemetry is on.
  workload::JobResult RunJob(const workload::JobSpec& spec);
  std::vector<workload::JobResult> RunJobs(
      const std::vector<workload::JobSpec>& specs);

  /// Batch-exports every layer's counters (device, NAND, scheduler) into
  /// the registry and freezes it. Requires telemetry.
  telemetry::Snapshot TakeSnapshot();

  // ---- NVMe-style log pages (nvme/log_page.h) ------------------------
  // Live device introspection: free (no virtual time, no counters), works
  // with or without telemetry.
  /// The device's SMART-like log (either device kind).
  nvme::SmartLog Smart() const;
  /// Per-zone state + occupancy (ZNS testbeds only; checked).
  nvme::ZoneReportLog ZoneReport() const;
  /// Per-die utilization (either device kind).
  nvme::DieUtilLog DieUtil() const;
  /// All of the device's log pages as one JSON object:
  /// {"smart": ..., "die_util": ..., "zone_report": ...?}.
  std::string LogPagesJson() const;
  /// Writes LogPagesJson() to `path` (+ newline); false if unopenable.
  bool WriteLogPages(const std::string& path) const;

  /// Idempotent teardown: snapshot + metrics-file write (or hand-off to
  /// the BenchEnv collector) and trace flush. Called by the destructor.
  void Finish();

 private:
  friend class TestbedBuilder;
  Testbed() = default;

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<telemetry::Telemetry> telem_;
  std::unique_ptr<fault::FaultPlan> faults_;
  std::unique_ptr<zns::ZnsDevice> zns_;
  std::unique_ptr<ftl::ConvDevice> conv_;
  /// The raw stack when a ResilientStack wraps it (stack_ is the wrapper
  /// then); empty otherwise.
  std::unique_ptr<hostif::Stack> inner_stack_;
  std::unique_ptr<hostif::Stack> stack_;
  hostif::ResilientStack* resilient_ = nullptr;
  hostif::KernelStack* kernel_ = nullptr;
  telemetry::RingBufferSink* ring_ = nullptr;  // owned by telem_
  std::string label_;
  std::string metrics_path_;
  bool report_to_env_ = false;
  bool logpages_to_env_ = false;
  bool finished_ = false;
};

class TestbedBuilder {
 public:
  /// Selects the simulated ZNS device (the default, with Zn540Profile()).
  TestbedBuilder& WithZnsProfile(const zns::ZnsProfile& p);
  /// Selects the conventional (device-side GC) device instead.
  TestbedBuilder& WithConvProfile(const ftl::ConvProfile& p);
  TestbedBuilder& WithStack(StackChoice s);
  /// Namespace LBA format (ZNS only; the conventional model is 4 KiB).
  TestbedBuilder& WithLbaBytes(std::uint32_t lba_bytes);
  /// Queue-pair depth (device-visible in-flight bound).
  TestbedBuilder& WithQueueDepth(std::uint32_t qp_depth);
  /// Explicitly enables telemetry with this config (otherwise Build()
  /// consults the BenchEnv --trace/--metrics flags).
  TestbedBuilder& WithTelemetry(TelemetryConfig cfg);
  /// Names this testbed's snapshot in shared metrics output.
  TestbedBuilder& WithLabel(std::string label);
  /// Injects media faults per `spec` (overrides the BenchEnv --faults
  /// flag, which otherwise applies to every built testbed). The testbed
  /// owns the FaultPlan. Also enables the host retry layer unless
  /// WithRetryPolicy set one explicitly.
  TestbedBuilder& WithFaults(const fault::FaultSpec& spec);
  /// Wraps the host stack in a hostif::ResilientStack with this policy
  /// (retries, backoff, per-attempt timeout).
  TestbedBuilder& WithRetryPolicy(const hostif::RetryPolicy& policy);

  Testbed Build();

 private:
  std::optional<zns::ZnsProfile> zns_profile_;
  std::optional<ftl::ConvProfile> conv_profile_;
  StackChoice stack_ = StackChoice::kSpdk;
  std::uint32_t lba_bytes_ = 4096;
  std::uint32_t qp_depth_ = 4096;
  std::optional<TelemetryConfig> telem_cfg_;
  std::optional<fault::FaultSpec> fault_spec_;
  std::optional<hostif::RetryPolicy> retry_policy_;
  std::string label_;
};

}  // namespace zstor
