// The one-stop experiment facade: a Testbed owns a simulator, one or
// more devices (ZNS, possibly striped; or conventional), a host stack
// and — optionally — a telemetry bundle, wired together so benches and
// tests stop copy-pasting the same construction boilerplate.
//
//   auto tb = zstor::TestbedBuilder()
//                 .WithZnsProfile(zns::Zn540Profile())
//                 .WithStack(zstor::StackChoice::kSpdk)
//                 .WithTelemetry({.trace_path = "run.jsonl"})
//                 .Build();
//   auto r = tb.RunJob(spec);        // described into tb's metrics
//   tb.Finish();                     // flush trace, write metrics JSON
//
// Multi-device: .WithDevices(n) builds n identical ZNS devices, each with
// its own host-stack lane, striped into one logical namespace by
// hostif::StripedStack (logical zone z -> device z % n). Log pages and
// FillZones aggregate/route across devices transparently.
//
// When no explicit telemetry config is given, Build() consults the
// process-wide BenchEnv (see bench_flags.h): a bench invoked with
// --trace=FILE / --metrics=FILE gets tracing on every testbed it builds,
// all sharing one JSONL sink, with per-testbed metrics snapshots written
// at exit.
//
// Parallel engine: .WithSimThreads(n) (or the --sim-threads=N flag) runs
// a multi-device ZNS testbed on sim::ParallelSimulator — lane 0 hosts
// the coordinator (StripedStack over MailboxStack proxies, ResilientStack,
// rate-limited/broadcast workload workers), lanes 1..n each own one
// device plus its host-stack slice, and workload workers whose zones all
// live on one device run inside that device's lane against a
// StripeLaneView (hostif/lane_stacks.h). Output — results, trace,
// timeline, metrics — is byte-identical for every n >= 1 (DESIGN.md §12).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "ftl/conv_device.h"
#include "hostif/kernel_stack.h"
#include "hostif/lane_stacks.h"
#include "hostif/resilient_stack.h"
#include "hostif/stack.h"
#include "hostif/stack_factory.h"
#include "hostif/striped_stack.h"
#include "nvme/log_page.h"
#include "sim/parallel_sim.h"
#include "sim/simulator.h"
#include "telemetry/sampler.h"
#include "telemetry/telemetry.h"
#include "workload/job.h"
#include "workload/runner.h"
#include "zns/profile.h"
#include "zns/zns_device.h"

namespace zstor {

/// Which host software stack services submissions (§III-A). The enum and
/// its ToString live with the stacks (hostif/stack.h) and are re-exported
/// here for the many call sites that spell them zstor::StackChoice.
using StackChoice = hostif::StackChoice;
using hostif::ToString;

/// How a testbed's telemetry is surfaced. All fields optional; an
/// all-default config still enables metrics collection (no trace sink).
struct TelemetryConfig {
  /// Append trace events to this JSONL file ("" = no file sink).
  std::string trace_path;
  /// Keep the last N events in an in-memory ring instead (tests and
  /// post-hoc inspection). Takes precedence over trace_path.
  std::size_t ring_capacity = 0;
  /// Write a metrics-snapshot JSON object here on Finish().
  std::string metrics_path;
  /// Append timeline records (DESIGN.md §10) to this JSONL file and run
  /// a telemetry::MetricSampler at `sample_interval` ("" = no timeline).
  std::string timeline_path;
  /// Capture timeline records into this string instead of a file (tests;
  /// takes precedence over timeline_path). Non-owning.
  std::string* timeline_capture = nullptr;
  /// Virtual-time cadence of the timeline's periodic metric samples.
  sim::Time sample_interval = sim::Milliseconds(100);
};

class TestbedBuilder;

/// Owns one experiment's worth of simulated hardware + host stack.
/// Movable (members are heap-allocated, so internal references stay
/// valid); destruction runs Finish() if the caller didn't.
class Testbed {
 public:
  Testbed(Testbed&&) = default;
  Testbed& operator=(Testbed&&) = default;
  ~Testbed();

  /// The host-side simulator: the only one in classic mode, the
  /// coordinator lane under the parallel engine.
  sim::Simulator& sim() { return psim_ != nullptr ? psim_->lane(0) : *sim_; }
  hostif::Stack& stack() { return *stack_; }
  /// The parallel engine; null in classic (single-simulator) mode.
  sim::ParallelSimulator* parallel_sim() { return psim_.get(); }
  /// Resolved worker-thread count for the parallel engine (>= 1), or 0
  /// in classic mode.
  int sim_threads() const { return sim_threads_; }
  /// Device 0 as its generic NVMe face (the only device unless
  /// WithDevices(n > 1) was used).
  nvme::Controller& controller();
  /// Concrete device accessors; null when the testbed holds the other
  /// kind. zns() is device 0; zns(d) indexes the striped set.
  zns::ZnsDevice* zns() { return zns_devs_.empty() ? nullptr : zns_devs_.front().get(); }
  zns::ZnsDevice* zns(std::size_t d) { return zns_devs_[d].get(); }
  std::size_t num_devices() const {
    return conv_ != nullptr ? 1 : zns_devs_.size();
  }
  ftl::ConvDevice* conv() { return conv_.get(); }
  /// The zone-striping layer; non-null only when WithDevices(n > 1).
  hostif::StripedStack* striped() { return striped_; }
  /// Non-null only for StackChoice::kKernelMq on a single device
  /// (scheduler stats live here).
  hostif::KernelStack* kernel() { return kernel_; }
  /// Null when telemetry is disabled.
  telemetry::Telemetry* telemetry() { return telem_.get(); }
  /// The periodic timeline sampler; null unless a timeline is configured
  /// (TelemetryConfig::timeline_* or the --timeline flag).
  telemetry::MetricSampler* sampler() { return sampler_.get(); }
  /// The injected fault plan; null when faults are disabled. Under the
  /// parallel engine faults are per-device plans instead (a shared plan's
  /// RNG would race across lanes) — this stays null; see lane_faults().
  fault::FaultPlan* faults() { return faults_.get(); }
  /// Device d's private fault plan (parallel mode with faults enabled;
  /// null otherwise).
  fault::FaultPlan* lane_faults(std::size_t d) {
    return d < lane_faults_.size() ? lane_faults_[d].get() : nullptr;
  }
  /// Device d's lane-side view of the logical namespace (parallel mode
  /// only; null otherwise). Sharded workload workers submit here.
  hostif::StripeLaneView* lane_view(std::size_t d) {
    return d < lane_views_.size() ? lane_views_[d].get() : nullptr;
  }
  /// Device d's lane-local telemetry bundle (parallel mode with
  /// telemetry; null otherwise).
  telemetry::Telemetry* lane_telemetry(std::size_t d) {
    return d < lane_telems_.size() ? lane_telems_[d].get() : nullptr;
  }
  /// The host retry layer; null unless faults or WithRetryPolicy enabled
  /// it. When non-null, stack() IS this wrapper.
  hostif::ResilientStack* resilient() { return resilient_; }
  /// Null unless TelemetryConfig::ring_capacity was set.
  telemetry::RingBufferSink* ring() { return ring_; }

  // ---- experiment conveniences ---------------------------------------
  /// DebugFillZone over logical zones [first, first+count) (ZNS testbeds
  /// only). Multi-device: each logical zone is filled on the device the
  /// stripe maps it to.
  void FillZones(std::uint32_t first, std::uint32_t count);
  std::vector<std::uint32_t> ZoneList(std::uint32_t first,
                                      std::uint32_t count) const;
  /// Runs a workload job to completion; the result is additionally
  /// Describe()d into this testbed's metrics when telemetry is on.
  workload::JobResult RunJob(const workload::JobSpec& spec);
  std::vector<workload::JobResult> RunJobs(
      const std::vector<workload::JobSpec>& specs);
  /// Starts the periodic timeline sampler(s) if configured. RunJob does
  /// this implicitly; benches that Spawn their own flows and drive
  /// sim().Run() directly must call it first or the timeline degenerates
  /// to a single final sample.
  void EnsureSamplersRunning();

  /// Batch-exports every layer's counters (device, NAND, scheduler,
  /// stripe) into the registry and freezes it. Multi-device testbeds
  /// export device/NAND counters summed across devices. Requires
  /// telemetry.
  telemetry::Snapshot TakeSnapshot();

  // ---- NVMe-style log pages (nvme/log_page.h) ------------------------
  // Live device introspection: free (no virtual time, no counters), works
  // with or without telemetry. Multi-device testbeds serve the aggregated
  // view: SMART counters summed, zone report in logical zone order with
  // stripe-translated addresses, die utilization concatenated with die
  // indices offset per device.
  /// The device's SMART-like log (either device kind).
  nvme::SmartLog Smart() const;
  /// Per-zone state + occupancy (ZNS testbeds only; checked).
  nvme::ZoneReportLog ZoneReport() const;
  /// Per-die utilization (either device kind).
  nvme::DieUtilLog DieUtil() const;
  /// All of the device's log pages as one JSON object:
  /// {"smart": ..., "die_util": ..., "zone_report": ...?}.
  std::string LogPagesJson() const;
  /// Writes LogPagesJson() to `path` (+ newline); false if unopenable.
  bool WriteLogPages(const std::string& path) const;

  /// Idempotent teardown: snapshot + metrics-file write (or hand-off to
  /// the BenchEnv collector) and trace flush. Called by the destructor.
  void Finish();

 private:
  friend class TestbedBuilder;
  Testbed() = default;

  // Member order is destruction order in reverse: simulators outlive
  // telemetry, telemetry outlives devices, devices outlive the stacks
  // built over them, stacks outlive the views built over *them*.
  std::unique_ptr<sim::Simulator> sim_;  // null under the parallel engine
  std::unique_ptr<sim::ParallelSimulator> psim_;  // null in classic mode
  /// In parallel mode, the real (file/ring/shared) sink and timeline
  /// that lane shards replay into at Finish; the bundles themselves hold
  /// per-lane ShardSinks / capture writers during the run.
  std::unique_ptr<telemetry::TraceSink> final_sink_owned_;
  std::unique_ptr<telemetry::TimelineWriter> final_timeline_owned_;
  telemetry::TraceSink* final_sink_ = nullptr;
  telemetry::TimelineWriter* final_timeline_ = nullptr;
  /// Capture targets for the per-lane timeline writers (heap-allocated so
  /// the writers' pointers survive Testbed moves). [0] = coordinator.
  std::vector<std::unique_ptr<std::string>> lane_tl_captures_;
  std::unique_ptr<telemetry::Telemetry> telem_;
  /// Per-device-lane telemetry bundles (parallel mode with telemetry).
  std::vector<std::unique_ptr<telemetry::Telemetry>> lane_telems_;
  std::unique_ptr<telemetry::MetricSampler> sampler_;
  std::vector<std::unique_ptr<telemetry::MetricSampler>> lane_samplers_;
  std::unique_ptr<fault::FaultPlan> faults_;
  /// Per-device fault plans (parallel mode; faults_ stays null there).
  std::vector<std::unique_ptr<fault::FaultPlan>> lane_faults_;
  /// The ZNS device set: exactly one unless built WithDevices(n > 1);
  /// empty for conventional testbeds.
  std::vector<std::unique_ptr<zns::ZnsDevice>> zns_devs_;
  std::unique_ptr<ftl::ConvDevice> conv_;
  /// The raw stack when a ResilientStack wraps it (stack_ is the wrapper
  /// then); empty otherwise.
  std::unique_ptr<hostif::Stack> inner_stack_;
  std::unique_ptr<hostif::Stack> stack_;
  /// Parallel mode: device d's real host stack (lives in lane d+1; the
  /// coordinator's StripedStack holds MailboxStack proxies to these) and
  /// the lane-side logical view sharded workers submit to.
  std::vector<std::unique_ptr<hostif::Stack>> lane_stacks_;
  std::vector<std::unique_ptr<hostif::StripeLaneView>> lane_views_;
  hostif::ResilientStack* resilient_ = nullptr;
  hostif::KernelStack* kernel_ = nullptr;
  hostif::StripedStack* striped_ = nullptr;  // owned via stack_/inner_stack_
  telemetry::RingBufferSink* ring_ = nullptr;  // owned by telem_ (classic)
                                               // or final_sink_owned_
  telemetry::ShardSink* coord_shard_ = nullptr;      // owned by telem_
  std::vector<telemetry::ShardSink*> lane_shards_;   // owned by lane_telems_
  std::string label_;
  std::string metrics_path_;
  int sim_threads_ = 0;
  bool lanes_merged_ = false;
  bool report_to_env_ = false;
  bool logpages_to_env_ = false;
  bool finished_ = false;

  workload::JobResult RunSharded(const workload::JobSpec& spec);
  std::vector<std::unique_ptr<workload::Job>> StartSharded(
      const workload::JobSpec& spec);
  workload::JobResult JoinSharded(
      std::vector<std::unique_ptr<workload::Job>>& parts);
  hostif::StripeStats CombinedStripeStats() const;
  void MergeLaneTelemetry();
};

class TestbedBuilder {
 public:
  /// Selects the simulated ZNS device (the default, with Zn540Profile()).
  TestbedBuilder& WithZnsProfile(const zns::ZnsProfile& p);
  /// Selects the conventional (device-side GC) device instead.
  TestbedBuilder& WithConvProfile(const ftl::ConvProfile& p);
  /// Builds n identical ZNS devices behind a hostif::StripedStack (n = 1,
  /// the default, keeps the classic single-device wiring). Each device
  /// gets its own host-stack lane and a distinct noise seed. Incompatible
  /// with WithConvProfile.
  TestbedBuilder& WithDevices(std::uint32_t n);
  TestbedBuilder& WithStack(StackChoice s);
  /// Host-stack construction options (per-device queue depth, host costs,
  /// scheduler tuning). Applied to every lane in a multi-device testbed.
  TestbedBuilder& WithStackOptions(const hostif::StackOptions& opts);
  /// Namespace LBA format (ZNS only; the conventional model is 4 KiB).
  TestbedBuilder& WithLbaBytes(std::uint32_t lba_bytes);
  /// Queue-pair depth (device-visible in-flight bound, per device);
  /// shorthand for the StackOptions field.
  TestbedBuilder& WithQueueDepth(std::uint32_t qp_depth);
  /// Explicitly enables telemetry with this config (otherwise Build()
  /// consults the BenchEnv --trace/--metrics flags).
  TestbedBuilder& WithTelemetry(TelemetryConfig cfg);
  /// Names this testbed's snapshot in shared metrics output.
  TestbedBuilder& WithLabel(std::string label);
  /// Injects media faults per `spec` (overrides the BenchEnv --faults
  /// flag, which otherwise applies to every built testbed). The testbed
  /// owns the FaultPlan. Also enables the host retry layer unless
  /// WithRetryPolicy set one explicitly.
  TestbedBuilder& WithFaults(const fault::FaultSpec& spec);
  /// Wraps the host stack in a hostif::ResilientStack with this policy
  /// (retries, backoff, per-attempt timeout).
  TestbedBuilder& WithRetryPolicy(const hostif::RetryPolicy& policy);
  /// Runs the simulation on the parallel per-device-lane engine with n
  /// worker threads (n >= 1; n = 1 executes the identical window
  /// schedule serially, so output is byte-identical for every n).
  /// Overrides the --sim-threads flag, which otherwise applies. Only
  /// effective on multi-device ZNS testbeds; single-device and
  /// conventional testbeds always use the classic engine.
  TestbedBuilder& WithSimThreads(int n);
  /// The virtual-time host<->device interconnect hop charged to each
  /// cross-lane message under the parallel engine — also the engine's
  /// conservative-synchronization lookahead. Default 250 ns.
  TestbedBuilder& WithLookahead(sim::Time hop);

  Testbed Build();

 private:
  std::optional<zns::ZnsProfile> zns_profile_;
  std::optional<ftl::ConvProfile> conv_profile_;
  std::uint32_t num_devices_ = 1;
  StackChoice stack_ = StackChoice::kSpdk;
  hostif::StackOptions stack_opts_;
  std::uint32_t lba_bytes_ = 4096;
  std::optional<TelemetryConfig> telem_cfg_;
  std::optional<fault::FaultSpec> fault_spec_;
  std::optional<hostif::RetryPolicy> retry_policy_;
  std::optional<int> sim_threads_;
  sim::Time lookahead_ = 250;  // ns
  std::string label_;
};

}  // namespace zstor
