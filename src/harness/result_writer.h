// Machine-readable bench results: every bench binary records the numbers
// behind its printed tables into a process-wide ResultWriter, and
// `--json=FILE` (see bench_flags.h) dumps them as one JSON document.
//
// Schema (DESIGN.md §7):
//
//   {
//     "bench": "bench_fig2_latency",
//     "schema_version": 3,
//     "config": {"device": "zn540", "runtime_s": 2},
//     "series": [
//       {"name": "randread-qd1", "unit": "us",
//        "points": [
//          {"x": 4096, "label": "4KiB", "value": 13.2,
//           "samples": 50000, "mean_ns": 13200.0, "p50_ns": ...,
//           "p95_ns": ..., "p99_ns": ...,
//           "wa": 3.4,                    // optional (v3): the point's
//                                         // write amplification
//           "parts": [6.6, 6.6]}]}       // optional (v2): per-component
//     ]                                   // breakdown of `value`, e.g.
//   }                                     // per-device throughput
//
// Latency fields are null when a point has no histogram attached (or the
// histogram is empty): absent data must never read as zero latency.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.h"

namespace zstor::harness {

/// One measured point: x locates it on the series' axis, `value` is the
/// headline number in the series' unit, the *_ns fields carry the full
/// latency distribution when one was measured (NaN = absent = JSON null).
struct ResultPoint {
  double x = 0.0;
  std::string label;  // optional human name for x ("qd=4", "zns")
  double value = 0.0;
  std::uint64_t samples = 0;
  double mean_ns, p50_ns, p95_ns, p99_ns;  // NaN when no histogram
  /// Optional write amplification at this point (schema v3) — total
  /// device write traffic per byte of user data. NaN = absent (never
  /// emitted); KV/GC benches attach it via WithWa().
  double wa;
  /// Optional per-component breakdown of `value` (schema v2) — e.g. one
  /// entry per striped device. Emitted only when non-empty.
  std::vector<double> parts;

  ResultPoint();
};

/// A named sequence of points sharing one unit ("us", "kiops", "MiB/s").
class ResultSeries {
 public:
  ResultSeries(std::string name, std::string unit)
      : name_(std::move(name)), unit_(std::move(unit)) {}

  /// Records a point with no latency distribution.
  ResultSeries& Add(double x, double value);
  /// Records a point plus the percentiles of `h` (ignored when empty).
  ResultSeries& Add(double x, double value, const sim::LatencyHistogram& h);
  /// As Add(), with a human-readable label for x.
  ResultSeries& AddLabeled(std::string label, double x, double value);
  ResultSeries& AddLabeled(std::string label, double x, double value,
                           const sim::LatencyHistogram& h);
  /// Attaches a per-component breakdown to the most recently added point
  /// (requires one; checked).
  ResultSeries& WithParts(std::vector<double> parts);
  /// Attaches a write-amplification figure to the most recently added
  /// point (requires one; checked).
  ResultSeries& WithWa(double wa);

  const std::string& name() const { return name_; }
  const std::string& unit() const { return unit_; }
  const std::vector<ResultPoint>& points() const { return points_; }

 private:
  std::string name_;
  std::string unit_;
  std::vector<ResultPoint> points_;
};

/// The per-process result document. Benches reach it through
/// harness::Results() (owned by BenchEnv, named after argv[0]); tests may
/// build standalone instances.
class ResultWriter {
 public:
  void set_bench(std::string name) { bench_ = std::move(name); }
  const std::string& bench() const { return bench_; }

  /// Records a config key (last write wins; insertion order preserved).
  void Config(const std::string& key, const std::string& value);
  void Config(const std::string& key, double value);

  /// Records a run-environment measurement (last write wins) — emitted as
  /// a top-level "meta" object, separate from "config" so identity checks
  /// can normalize it away. The canonical key is "wall_ms", the bench's
  /// real elapsed time, stamped by BenchEnv::Finish for the speedup gate.
  void SetMeta(const std::string& key, double value);

  /// Gets or creates the series with this name. The unit is set on
  /// creation; later calls may pass "" to mean "whatever it already is".
  ResultSeries& Series(const std::string& name, const std::string& unit = "");

  bool empty() const { return series_.empty() && config_.empty(); }

  std::string ToJson() const;
  /// Writes ToJson() + newline; returns false (with a warning on stderr)
  /// when the file cannot be opened.
  bool WriteFile(const std::string& path) const;

 private:
  std::string bench_;
  // key -> pre-rendered JSON value (escaped string or number literal).
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, double>> meta_;
  std::vector<ResultSeries> series_;
};

/// The process-wide writer benches record into; see bench_flags.h.
ResultWriter& Results();

}  // namespace zstor::harness
