#include "harness/experiments.h"

#include <memory>

#include "sim/check.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "workload/runner.h"
#include "zns/zns_device.h"

namespace zstor::harness {

using nvme::Opcode;
using sim::Time;
using workload::JobResult;
using workload::JobSpec;

namespace {

/// One experiment's worth of simulated hardware + host stack. Telemetry
/// rides along automatically when the bench was started with --trace /
/// --metrics (see bench_flags.h).
Testbed MakeBench(const zns::ZnsProfile& profile, StackKind kind,
                  const char* label, std::uint32_t lba_bytes = 4096) {
  return TestbedBuilder()
      .WithZnsProfile(profile)
      .WithStack(kind)
      .WithLbaBytes(lba_bytes)
      .WithLabel(label)
      .Build();
}

}  // namespace

double Qd1LatencyUs(const zns::ZnsProfile& profile, StackKind kind,
                    Opcode op, std::uint64_t request_bytes,
                    std::uint32_t lba_bytes, int ops) {
  Testbed b = MakeBench(profile, kind, "qd1-latency", lba_bytes);
  const auto nlb =
      static_cast<std::uint32_t>(request_bytes / lba_bytes);
  sim::Welford lat;
  auto body = [&]() -> sim::Task<> {
    nvme::Lba wp = 0;
    for (int i = 0; i < ops + 1; ++i) {
      nvme::Command cmd{.opcode = op, .slba = op == Opcode::kAppend ? 0 : wp,
                        .nlb = nlb};
      auto tc = co_await b.stack().Submit(cmd);
      ZSTOR_CHECK_MSG(tc.completion.ok(), "QD1 op failed");
      wp += nlb;
      if (i > 0) lat.Record(static_cast<double>(tc.latency()));
    }
  };
  auto t = body();
  b.sim().Run();
  return lat.mean() / 1000.0;
}

double Qd1Kiops(const zns::ZnsProfile& profile, Opcode op,
                std::uint64_t request_bytes) {
  // Synchronous requests: throughput is the inverse of latency (§III-C) —
  // but measured at steady state. Large requests outrun the NAND drain
  // until the write-back buffer fills, so warm past the buffer first.
  Testbed b = MakeBench(profile, StackKind::kSpdk, "qd1-kiops");
  zns::ZnsDevice& dev = *b.zns();
  const std::uint32_t nlb = static_cast<std::uint32_t>(request_bytes / 4096);
  const std::uint64_t cap_lbas = dev.info().zone_cap_lbas;
  auto meas_ops = static_cast<std::uint64_t>(std::max<std::uint64_t>(
      300, 3 * profile.write_buffer_bytes / request_bytes));
  sim::Time t0 = 0, t1 = 0;
  auto body = [&]() -> sim::Task<> {
    std::uint32_t zone = 0;
    std::uint64_t off = 0;  // LBA offset within the zone
    auto issue_one = [&]() -> sim::Task<> {
      if (off + nlb > cap_lbas) {  // roll to the next zone
        ++zone;
        off = 0;
      }
      nvme::Command cmd{
          .opcode = op,
          .slba = dev.ZoneStartLba(zone) + (op == Opcode::kAppend ? 0 : off),
          .nlb = nlb};
      auto tc = co_await b.stack().Submit(cmd);
      ZSTOR_CHECK(tc.completion.ok());
      off += nlb;
    };
    // Warm until either the write-back buffer has filled (the drain now
    // paces us) or its occupancy has stopped growing (demand below the
    // drain rate: no transient to outlast).
    const std::uint64_t total_pages =
        profile.write_buffer_bytes / profile.nand_geometry.page_bytes;
    std::uint64_t occ_prev = 0;
    for (std::uint64_t i = 0;; ++i) {
      std::uint64_t occ = total_pages - dev.buffer_free_pages();
      if (occ >= total_pages - total_pages / 16) break;  // ~full: throttled
      if (i >= 3000 && i % 3000 == 0) {
        if (occ <= occ_prev + 16) break;  // occupancy flat: no transient
        occ_prev = occ;
      }
      if (i >= 300'000) break;  // safety bound
      co_await issue_one();
    }
    t0 = b.sim().now();
    for (std::uint64_t i = 0; i < meas_ops; ++i) co_await issue_one();
    t1 = b.sim().now();
  };
  auto t = body();
  b.sim().Run();
  return static_cast<double>(meas_ops) / sim::ToSeconds(t1 - t0) / 1000.0;
}

workload::JobResult IntraZone(const zns::ZnsProfile& profile, Opcode op,
                              std::uint64_t request_bytes, std::uint32_t qd,
                              double* merged_fraction) {
  StackKind kind =
      op == Opcode::kWrite ? StackKind::kKernelMq : StackKind::kSpdk;
  Testbed b = MakeBench(profile, kind, "intra-zone");
  JobSpec spec;
  spec.op = op;
  spec.request_bytes = request_bytes;
  spec.queue_depth = qd;
  spec.zones = {0};
  spec.on_full = JobSpec::OnFull::kStop;
  if (op == Opcode::kRead) {
    b.FillZones(0, 1);
    spec.random = true;
    spec.duration = sim::Milliseconds(400);
    spec.warmup = sim::Milliseconds(100);
  } else if (op == Opcode::kWrite) {
    // Merged writes can exceed the NAND drain rate; measure after the
    // write-back buffer reaches steady state.
    spec.duration = sim::Milliseconds(700);
    spec.warmup = sim::Milliseconds(350);
  } else {
    // Large appends can outrun the NAND drain; measure past the
    // write-back buffer transient.
    spec.duration = sim::Milliseconds(700);
    spec.warmup = sim::Milliseconds(350);
  }
  JobResult r = b.RunJob(spec);
  if (merged_fraction != nullptr) {
    *merged_fraction =
        b.kernel() != nullptr ? b.kernel()->scheduler_stats().MergedFraction()
                              : 0.0;
  }
  return r;
}

workload::JobResult InterZone(const zns::ZnsProfile& profile, Opcode op,
                              std::uint64_t request_bytes,
                              std::uint32_t zones) {
  Testbed b = MakeBench(profile, StackKind::kSpdk, "inter-zone");
  JobSpec spec;
  spec.op = op;
  spec.request_bytes = request_bytes;
  spec.queue_depth = 1;
  spec.workers = zones;
  spec.partition_zones = true;
  spec.on_full = JobSpec::OnFull::kAdvance;
  if (op == Opcode::kRead) {
    b.FillZones(0, zones);
    spec.random = true;
    spec.zones = b.ZoneList(0, zones);
    spec.duration = sim::Milliseconds(500);
    spec.warmup = sim::Milliseconds(200);
  } else {
    // Writers outrun the NAND drain only slightly at some request sizes,
    // so the write-back buffer transient can last ~0.5 s: measure well
    // past it. Two zones per worker so nobody runs out of capacity.
    spec.zones = b.ZoneList(0, 2 * zones);
    spec.duration = sim::Milliseconds(1600);
    spec.warmup = sim::Milliseconds(1100);
  }
  return b.RunJob(spec);
}

OpenCloseCosts MeasureOpenClose(const zns::ZnsProfile& profile) {
  OpenCloseCosts out;
  const int kZones = 10;
  {  // explicit open + close
    Testbed b = MakeBench(profile, StackKind::kSpdk, "open-close");
    sim::Welford open_us, close_us;
    auto body = [&]() -> sim::Task<> {
      for (std::uint32_t z = 0; z < kZones; ++z) {
        nvme::Lba zslba = b.zns()->ZoneStartLba(z);
        auto o = co_await b.stack().Submit(
            {.opcode = Opcode::kZoneMgmtSend,
             .slba = zslba,
             .zone_action = nvme::ZoneAction::kOpen});
        open_us.Record(static_cast<double>(o.latency()));
        (void)co_await b.stack().Submit(
            {.opcode = Opcode::kWrite, .slba = zslba, .nlb = 1});
        auto c = co_await b.stack().Submit(
            {.opcode = Opcode::kZoneMgmtSend,
             .slba = zslba,
             .zone_action = nvme::ZoneAction::kClose});
        close_us.Record(static_cast<double>(c.latency()));
      }
    };
    auto t = body();
    b.sim().Run();
    out.explicit_open_us = open_us.mean() / 1000.0;
    out.close_us = close_us.mean() / 1000.0;
  }
  {  // implicit-open penalty: first vs second write/append on fresh zones
    Testbed b = MakeBench(profile, StackKind::kSpdk, "implicit-open");
    sim::Welford first_w, second_w, first_a, second_a;
    auto body = [&]() -> sim::Task<> {
      auto reset = [&](std::uint32_t z) -> sim::Task<> {
        auto r = co_await b.stack().Submit(
            {.opcode = Opcode::kZoneMgmtSend,
             .slba = b.zns()->ZoneStartLba(z),
             .zone_action = nvme::ZoneAction::kReset});
        ZSTOR_CHECK(r.completion.ok());
      };
      for (std::uint32_t z = 0; z < kZones; ++z) {
        nvme::Lba zslba = b.zns()->ZoneStartLba(z);
        auto w1 = co_await b.stack().Submit(
            {.opcode = Opcode::kWrite, .slba = zslba, .nlb = 1});
        auto w2 = co_await b.stack().Submit(
            {.opcode = Opcode::kWrite, .slba = zslba + 1, .nlb = 1});
        ZSTOR_CHECK(w1.completion.ok() && w2.completion.ok());
        first_w.Record(static_cast<double>(w1.latency()));
        second_w.Record(static_cast<double>(w2.latency()));
        co_await reset(z);  // stay well under the active-zone limit
      }
      for (std::uint32_t z = 0; z < kZones; ++z) {
        nvme::Lba zslba = b.zns()->ZoneStartLba(z);
        auto a1 = co_await b.stack().Submit(
            {.opcode = Opcode::kAppend, .slba = zslba, .nlb = 1});
        auto a2 = co_await b.stack().Submit(
            {.opcode = Opcode::kAppend, .slba = zslba, .nlb = 1});
        ZSTOR_CHECK(a1.completion.ok() && a2.completion.ok());
        first_a.Record(static_cast<double>(a1.latency()));
        second_a.Record(static_cast<double>(a2.latency()));
        co_await reset(z);
      }
    };
    auto t = body();
    b.sim().Run();
    out.implicit_write_extra_us = (first_w.mean() - second_w.mean()) / 1000.0;
    out.implicit_append_extra_us =
        (first_a.mean() - second_a.mean()) / 1000.0;
  }
  return out;
}

double ResetLatencyMs(const zns::ZnsProfile& profile, double occupancy,
                      bool finish_first, int zones_per_point) {
  Testbed b = MakeBench(profile, StackKind::kSpdk, "reset-latency");
  std::uint64_t cap = profile.zone_cap_bytes;
  auto bytes = static_cast<std::uint64_t>(
      occupancy * static_cast<double>(cap));
  bytes -= bytes % 4096;
  sim::Welford ms;
  auto body = [&](std::uint32_t z) -> sim::Task<> {
    if (finish_first && bytes < cap) {
      auto f = co_await b.stack().Submit(
          {.opcode = Opcode::kZoneMgmtSend,
           .slba = b.zns()->ZoneStartLba(z),
           .zone_action = nvme::ZoneAction::kFinish});
      ZSTOR_CHECK(f.completion.ok());
    }
    // Paper protocol: pause for the device to stabilize before reset.
    co_await b.sim().Delay(sim::Milliseconds(1));
    auto r = co_await b.stack().Submit(
        {.opcode = Opcode::kZoneMgmtSend,
         .slba = b.zns()->ZoneStartLba(z),
         .zone_action = nvme::ZoneAction::kReset});
    ZSTOR_CHECK(r.completion.ok());
    ms.Record(sim::ToMilliseconds(r.latency()));
  };
  // Fill-then-reset per zone keeps the active count at one, so an
  // arbitrary number of zones can be swept (the paper resets 3000).
  for (std::uint32_t z = 0; static_cast<int>(ms.count()) < zones_per_point;
       ++z) {
    ZSTOR_CHECK(z < profile.num_zones);
    if (bytes > 0) b.zns()->DebugFillZone(z, bytes);
    auto t = body(z);
    b.sim().Run();
  }
  return ms.mean();
}

double FinishLatencyMs(const zns::ZnsProfile& profile, double occupancy,
                       int zones_per_point) {
  Testbed b = MakeBench(profile, StackKind::kSpdk, "finish-latency");
  std::uint64_t cap = profile.zone_cap_bytes;
  auto bytes = static_cast<std::uint64_t>(
      occupancy * static_cast<double>(cap));
  bytes -= bytes % 4096;
  if (bytes == 0) bytes = 4096;            // "< 0.1%": one page
  if (bytes >= cap) bytes = cap - 4096;    // "~100%": all but one page
  sim::Welford ms;
  auto body = [&](std::uint32_t z) -> sim::Task<> {
    auto f = co_await b.stack().Submit(
        {.opcode = Opcode::kZoneMgmtSend,
         .slba = b.zns()->ZoneStartLba(z),
         .zone_action = nvme::ZoneAction::kFinish});
    ZSTOR_CHECK(f.completion.ok());
    ms.Record(sim::ToMilliseconds(f.latency()));
    // Recycle so the next batch has active slots.
    auto r = co_await b.stack().Submit(
        {.opcode = Opcode::kZoneMgmtSend,
         .slba = b.zns()->ZoneStartLba(z),
         .zone_action = nvme::ZoneAction::kReset});
    ZSTOR_CHECK(r.completion.ok());
  };
  for (std::uint32_t z = 0; static_cast<int>(ms.count()) < zones_per_point;
       ++z) {
    ZSTOR_CHECK(z < profile.num_zones);
    b.zns()->DebugFillZone(z, bytes);
    auto t = body(z);
    b.sim().Run();
  }
  return ms.mean();
}

ResetInterferenceResult ResetInterference(const zns::ZnsProfile& profile,
                                          Opcode op,
                                          std::uint32_t reset_zones) {
  Testbed b = MakeBench(profile, StackKind::kSpdk, "reset-interference");
  // First half of the device: full zones to reset. Second half: I/O.
  b.FillZones(0, reset_zones);
  std::uint32_t io_zone = profile.num_zones / 2;

  JobSpec reset_job;
  reset_job.op = Opcode::kZoneMgmtSend;
  reset_job.zone_action = nvme::ZoneAction::kReset;
  reset_job.zones = b.ZoneList(0, reset_zones);
  reset_job.duration = sim::Seconds(30);  // ends when zones run out

  std::vector<std::pair<hostif::Stack*, JobSpec>> jobs;
  jobs.emplace_back(&b.stack(), reset_job);

  bool with_io = op == Opcode::kRead || op == Opcode::kWrite ||
                 op == Opcode::kAppend;
  if (with_io) {
    JobSpec io_job;
    io_job.op = op;
    io_job.request_bytes = 4096;
    if (op == Opcode::kRead) {
      // Random reads need data: pre-fill the I/O region.
      b.FillZones(io_zone, 8);
      io_job.random = true;
      io_job.queue_depth = 12;
      io_job.zones = b.ZoneList(io_zone, 8);
    } else {
      io_job.queue_depth = 1;
      io_job.zones = b.ZoneList(io_zone, 8);
      io_job.on_full = JobSpec::OnFull::kAdvance;
    }
    io_job.duration = sim::Seconds(30);
    jobs.emplace_back(&b.stack(), io_job);
  }

  // Run until the reset job exhausts its zone list, then stop the I/O
  // job and drain.
  std::vector<workload::JobResult> results;
  {
    std::vector<std::unique_ptr<workload::Job>> running;
    for (auto& [stack, spec] : jobs) {
      running.push_back(
          std::make_unique<workload::Job>(b.sim(), *stack, spec));
      running.back()->Start();
    }
    while (!running[0]->Done() && !b.sim().idle()) {
      b.sim().RunUntil(b.sim().now() + sim::Milliseconds(10));
    }
    for (auto& j : running) j->Stop();
    b.sim().Run();
    for (auto& j : running) results.push_back(j->result());
  }

  ResetInterferenceResult out;
  out.reset_p95_ms = results[0].latency.p95_ns() / 1e6;
  out.reset_mean_ms = results[0].latency.mean_ns() / 1e6;
  out.resets = results[0].ops;
  if (with_io) out.io_mean_us = results[1].latency.mean_ns() / 1e3;
  return out;
}

QdPoint AppendQdPoint(const zns::ZnsProfile& profile,
                      std::uint64_t request_bytes, std::uint32_t qd) {
  JobResult r = IntraZone(profile, Opcode::kAppend, request_bytes, qd);
  return {r.Kiops(), r.latency.mean_ns() / 1e3, r.latency.p95_ns() / 1e3};
}

QdPoint WriteQdPoint(const zns::ZnsProfile& profile,
                     std::uint64_t request_bytes, std::uint32_t qd) {
  JobResult r = IntraZone(profile, Opcode::kWrite, request_bytes, qd);
  return {r.Kiops(), r.latency.mean_ns() / 1e3, r.latency.p95_ns() / 1e3};
}

}  // namespace zstor::harness
