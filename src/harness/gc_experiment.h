// The §III-F garbage-collection interference experiment (Fig. 6 and the
// read-tail numbers): a rate-limited random write workload (4 workers,
// 128 KiB requests, QD 8) concurrent with random 4 KiB reads, run against
// either the conventional (device-side GC) or the ZNS (host-side reset)
// model. On ZNS the writers append to their own zone pools and reset full
// zones themselves — the benchmark IS the garbage collector, exactly as
// the paper prescribes.
#pragma once

#include "sim/stats.h"
#include "sim/time.h"

namespace zstor::harness {

struct GcExperimentResult {
  sim::TimeSeries write_series{sim::Seconds(1)};  // bytes per second bin
  sim::TimeSeries read_series{sim::Seconds(1)};
  double write_mibps_mean = 0;
  double write_cv = 0;  // coefficient of variation across time bins
  double read_mibps_mean = 0;
  double read_cv = 0;
  double read_p95_us = 0;
  double write_amplification = 1.0;  // conventional device only
};

/// `rate_mibps` caps the write workload's bandwidth (0 = unlimited, i.e.
/// the paper's 100% = ~1155 MiB/s case). `skip_bins` bins of warmup are
/// excluded from the mean/CV statistics (GC needs time to reach steady
/// state on the conventional drive).
GcExperimentResult RunConvGcExperiment(double rate_mibps,
                                       sim::Time duration,
                                       std::size_t skip_bins = 2);
GcExperimentResult RunZnsGcExperiment(double rate_mibps,
                                      sim::Time duration,
                                      std::size_t skip_bins = 2);

/// Read-only baseline p95 (the paper's 81.41 us reference).
double ReadOnlyP95Us(bool zns);

}  // namespace zstor::harness
