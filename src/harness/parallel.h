// ParallelSweep: run independent sweep points of a bench concurrently
// without changing a single byte of output.
//
// Every figure bench is a loop over sweep points (queue depths, request
// sizes, zone counts, ...). The points are independent by construction —
// each one builds its own Simulator + Testbed and seeds its own RNG — so
// they can run on worker threads. The determinism rules that keep
// `--json` byte-identical for every `--jobs=N` (tested by
// tests/harness/jobs_identity_test.sh):
//
//  1. Workers only COMPUTE. fn(i) returns a plain result struct; it must
//     not touch the process-wide ResultWriter, tables, or stdout. (The
//     guides below don't apply under telemetry flags: SweepJobs() then
//     clamps to 1, because testbeds funnel snapshots into the BenchEnv
//     singleton.)
//  2. Recording happens after the sweep, on the calling thread, in index
//     order — ParallelSweep returns results ordered by index, never by
//     completion.
//  3. Seeds derive from the sweep-point index (or its parameters), never
//     from global mutable state, so point i is the same experiment no
//     matter which worker runs it.
//
// Wall-clock scales with physical cores; on a single-core host the pool
// degenerates to the serial loop (plus one atomic per point).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace zstor::harness {

/// The resolved worker count for sweeps: `--jobs=N` (0 = one per
/// hardware thread), forced to 1 with a one-time warning when a
/// telemetry flag is active.
int SweepJobs();

namespace detail {
/// Runs body(i) for every i in [0, n) on up to SweepJobs() threads
/// (work-stealing via one shared atomic index). Serial when jobs == 1.
void RunIndexed(std::size_t n, const std::function<void(std::size_t)>& body);
}  // namespace detail

/// Runs fn(i) for i in [0, n) concurrently and returns the results in
/// index order. R must be default-constructible (sweep results are plain
/// structs of numbers). See the determinism rules above: fn must only
/// compute; record the returned values serially afterwards.
template <typename Fn>
auto ParallelSweep(std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> out(n);
  detail::RunIndexed(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Heterogeneous variant for benches whose "sweep points" are a handful
/// of differently-shaped experiments: runs every task concurrently, each
/// writing its result into storage it captured. Same determinism rules.
void ParallelTasks(std::vector<std::function<void()>> tasks);

}  // namespace zstor::harness
