#include "harness/table.h"

#include <algorithm>
#include <cstdio>

#include "sim/check.h"

namespace zstor::harness {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::AddRow(std::vector<std::string> cells) {
  ZSTOR_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::Print() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("  ");
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::string sep;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(width[c], '-') + "  ";
  }
  std::printf("  %s\n", sep.c_str());
  for (const auto& row : rows_) print_row(row);
  std::printf("\n");
}

std::string Table::Csv() const {
  auto join = [](const std::vector<std::string>& row) {
    std::string out;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ",";
      out += row[i];
    }
    return out + "\n";
  };
  std::string out = join(headers_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

std::string Fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string FmtUs(double us) { return Fmt(us) + "us"; }
std::string FmtMs(double ms) { return Fmt(ms) + "ms"; }
std::string FmtKiops(double kiops) { return Fmt(kiops, 1) + "K"; }
std::string FmtMibps(double mibps) { return Fmt(mibps, 1) + "MiB/s"; }

void Banner(const std::string& title) {
  std::printf("\n== %s ==\n\n", title.c_str());
}

Table SnapshotTable(const telemetry::Snapshot& snap) {
  Table t({"metric", "kind", "value", "mean", "p50", "p95", "p99"});
  auto us = [](double ns) { return FmtUs(ns / 1000.0); };
  for (const auto& m : snap.metrics) {
    if (m.kind == "histogram") {
      t.AddRow({m.name, m.kind, Fmt(m.value, 0), us(m.mean), us(m.p50),
                us(m.p95), us(m.p99)});
    } else {
      t.AddRow({m.name, m.kind,
                m.kind == "counter" ? Fmt(m.value, 0) : Fmt(m.value, 3), "",
                "", "", ""});
    }
  }
  return t;
}

}  // namespace zstor::harness
